// scenerec_cli: end-to-end command-line interface covering the full model
// lifecycle with persistent checkpoints.
//
//   train      generate (or load) a dataset, train a model, save a
//              checkpoint and report test metrics
//   evaluate   reload a checkpoint and re-run the ranking evaluation
//              (sampled and full protocols)
//   recommend  reload a checkpoint and print top-N items for a user
//
// The dataset and split are reproducible from (--dataset|--data_dir,
// --scale, --data_seed), so separate invocations see identical graphs —
// which is what makes checkpoints from `train` loadable by the other
// commands. Examples:
//
//   ./scenerec_cli train --model=SceneRec --ckpt=/tmp/sr.ckpt --epochs=8
//   ./scenerec_cli evaluate --model=SceneRec --ckpt=/tmp/sr.ckpt
//   ./scenerec_cli recommend --model=SceneRec --ckpt=/tmp/sr.ckpt --user=11

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/malloc_tuning.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "data/tsv_io.h"
#include "eval/top_n.h"
#include "models/factory.h"
#include "models/scene_rec.h"
#include "nn/serialization.h"
#include "retrieval/index_builder.h"
#include "retrieval/two_stage.h"
#include "train/trainer.h"

namespace {

using namespace scenerec;

struct CliContext {
  Dataset dataset;
  LeaveOneOutSplit split;
  UserItemGraph train_graph;
  SceneGraph scene_graph;
  std::unique_ptr<Recommender> model;
};

/// Builds the ANN candidate index selected by --retrieval over the model's
/// exported item embeddings (docs/retrieval.md).
StatusOr<std::unique_ptr<ItemIndex>> BuildRetrievalIndex(
    const FlagParser& flags, Recommender& model) {
  SCENEREC_ASSIGN_OR_RETURN(IndexKind kind,
                            ParseIndexKind(flags.GetString("retrieval")));
  IndexBuildConfig config;
  config.kind = kind;
  config.nlist = flags.GetInt64("nlist");
  config.nprobe = flags.GetInt64("nprobe");
  return IndexBuilder(config).Build(model);
}

/// Fills `context` in place. In-place construction matters: the model holds
/// pointers to context.train_graph / context.scene_graph, so the context
/// must never be moved once the model exists.
Status BuildContext(const FlagParser& flags, CliContext& context) {
  const uint64_t data_seed =
      static_cast<uint64_t>(flags.GetInt64("data_seed"));
  if (!flags.GetString("data_dir").empty()) {
    SCENEREC_ASSIGN_OR_RETURN(context.dataset,
                              LoadDatasetTsv(flags.GetString("data_dir")));
  } else {
    JdPreset preset = JdPreset::kElectronics;
    bool found = false;
    for (JdPreset p : AllJdPresets()) {
      if (flags.GetString("dataset") == JdPresetName(p)) {
        preset = p;
        found = true;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown dataset preset: " +
                                     flags.GetString("dataset"));
    }
    SCENEREC_ASSIGN_OR_RETURN(
        context.dataset,
        GenerateSyntheticDataset(
            MakeJdConfig(preset, flags.GetDouble("scale")), data_seed));
  }
  Rng split_rng(data_seed ^ 0x9e3779b97f4a7c15ULL);
  SCENEREC_ASSIGN_OR_RETURN(
      context.split,
      MakeLeaveOneOutSplit(context.dataset, flags.GetInt64("negatives"),
                           split_rng));
  context.train_graph =
      UserItemGraph::Build(context.dataset.num_users,
                           context.dataset.num_items, context.split.train);
  context.scene_graph = context.dataset.BuildSceneGraph();

  ModelFactoryConfig factory_config;
  factory_config.embedding_dim = flags.GetInt64("dim");
  factory_config.seed = data_seed + 17;
  ModelContext model_context{&context.train_graph, &context.scene_graph};
  SCENEREC_ASSIGN_OR_RETURN(
      context.model,
      MakeRecommender(flags.GetString("model"), model_context,
                      factory_config));
  return Status::OK();
}

int Train(const FlagParser& flags, CliContext& context) {
  TrainConfig config;
  config.epochs = flags.GetInt64("epochs");
  config.learning_rate =
      flags.GetDouble("lr") > 0
          ? static_cast<float>(flags.GetDouble("lr"))
          : bench::TunedLearningRate(context.model->name());
  config.optimizer = flags.GetString("optimizer");
  config.seed = static_cast<uint64_t>(flags.GetInt64("data_seed")) + 23;
  config.verbose = flags.GetBool("verbose");
  config.threads = flags.GetInt64("threads");
  config.telemetry = telemetry::Telemetry::Enabled();
  config.trace = trace::Trace::Enabled();
  auto result =
      TrainAndEvaluate(*context.model, context.split, context.train_graph,
                       config);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::printf("%s on %s: val NDCG@10 %.4f | test NDCG@10 %.4f HR@10 %.4f "
              "MRR %.4f (%lld epochs, %.1fs)\n",
              context.model->name().c_str(), context.dataset.name.c_str(),
              result->best_validation.ndcg, result->test.ndcg,
              result->test.hr, result->test.mrr,
              static_cast<long long>(result->epochs_run),
              result->train_seconds);
  const std::string ckpt = flags.GetString("ckpt");
  if (!ckpt.empty()) {
    if (Status s = SaveCheckpoint(*context.model, context.model->name(), ckpt);
        !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
    std::printf("checkpoint written to %s\n", ckpt.c_str());
  }
  return 0;
}

int Evaluate(const FlagParser& flags, CliContext& context) {
  context.model->OnEvalBegin();
  ThreadPool* pool = DefaultThreadPool();
  if (pool->num_threads() <= 1 ||
      !context.model->PrepareParallelScoring(*pool)) {
    pool = nullptr;
  }
  RankingMetrics sampled =
      EvaluateRanking(context.model->Scorer(), context.split.test, 10, pool);
  std::printf("sampled-negatives protocol: NDCG@10 %.4f HR@10 %.4f MRR %.4f "
              "(%lld users)\n",
              sampled.ndcg, sampled.hr, sampled.mrr,
              static_cast<long long>(sampled.num_instances));
  if (flags.GetBool("full_ranking")) {
    RankingMetrics full =
        EvaluateFullRanking(context.model->Scorer(), context.train_graph,
                            context.split.test, 10, pool);
    std::printf("full-vocabulary protocol:   NDCG@10 %.4f HR@10 %.4f MRR %.4f\n",
                full.ndcg, full.hr, full.mrr);
  }
  // Retrieval quality protocol: recall@100 of the selected ANN backend
  // against the exact reference index, over every user.
  if (!flags.GetString("retrieval").empty()) {
    auto index = BuildRetrievalIndex(flags, *context.model);
    if (!index.ok()) {
      std::cerr << index.status().ToString() << "\n";
      return 1;
    }
    IndexBuildConfig exact_config;
    auto exact = IndexBuilder(exact_config).Build(*context.model);
    if (!exact.ok()) {
      std::cerr << exact.status().ToString() << "\n";
      return 1;
    }
    std::vector<int64_t> users(
        static_cast<size_t>(context.dataset.num_users));
    for (size_t u = 0; u < users.size(); ++u) {
      users[u] = static_cast<int64_t>(u);
    }
    const int64_t k = std::min<int64_t>(100, context.dataset.num_items);
    const double recall = RetrievalRecallAtK(*context.model, *index.value(),
                                             *exact.value(), k, users);
    std::printf("retrieval backend %-9s recall@%lld vs exact: %.4f\n",
                index.value()->name().c_str(), static_cast<long long>(k),
                recall);
  }
  return 0;
}

int Recommend(const FlagParser& flags, CliContext& context) {
  const int64_t user =
      flags.GetInt64("user") % context.dataset.num_users;
  context.model->OnEvalBegin();
  std::vector<Recommendation> recommendations;
  if (!flags.GetString("retrieval").empty()) {
    // Two-stage serving: ANN candidate generation, then exact rerank.
    auto index = BuildRetrievalIndex(flags, *context.model);
    if (!index.ok()) {
      std::cerr << index.status().ToString() << "\n";
      return 1;
    }
    SearchStats stats;
    recommendations =
        TwoStageTopN(*context.model, *index.value(), context.train_graph,
                     user, flags.GetInt64("top_n"),
                     flags.GetInt64("candidates"), &stats);
    std::printf("two-stage retrieval (%s): %lld lists probed, %lld items "
                "scanned, %lld candidates rescored\n",
                index.value()->name().c_str(),
                static_cast<long long>(stats.lists_probed),
                static_cast<long long>(stats.items_scanned),
                static_cast<long long>(stats.rescored));
  } else {
    recommendations =
        TopNRecommendations(context.model->Scorer(), context.train_graph,
                            user, flags.GetInt64("top_n"));
  }
  std::printf("top-%zu recommendations for user %lld (%s):\n",
              recommendations.size(), static_cast<long long>(user),
              context.model->name().c_str());
  auto* scene_rec = dynamic_cast<SceneRec*>(context.model.get());
  for (const Recommendation& rec : recommendations) {
    std::printf("  item %-6lld category %-4lld score %8.3f",
                static_cast<long long>(rec.item),
                static_cast<long long>(
                    context.scene_graph.CategoryOfItem(rec.item)),
                rec.score);
    if (scene_rec != nullptr) {
      std::printf("  scene-attention %6.3f",
                  scene_rec->AverageAttentionScore(user, rec.item));
    }
    std::printf("\n");
  }
  return 0;
}

int Run(int argc, char** argv) {
  TuneAllocatorForTraining();

  FlagParser flags;
  flags.AddString("model", "SceneRec", "model name (see models/factory.h)");
  flags.AddString("dataset", "Electronics", "JD preset (used without --data_dir)");
  flags.AddString("data_dir", "", "load a TSV dataset instead of generating");
  flags.AddDouble("scale", 0.02, "synthetic dataset scale");
  flags.AddInt64("data_seed", 42, "dataset + split seed (must match across commands)");
  flags.AddInt64("negatives", 100, "negatives per evaluation instance");
  flags.AddInt64("dim", 32, "embedding dimension");
  flags.AddInt64("epochs", 8, "training epochs (train)");
  flags.AddDouble("lr", 0.0, "learning rate; 0 = per-model tuned default");
  flags.AddString("optimizer", "rmsprop", "sgd | rmsprop | adagrad | adam");
  flags.AddString("ckpt", "", "checkpoint path (written by train, read by others)");
  flags.AddInt64("user", 0, "user id (recommend)");
  flags.AddInt64("top_n", 10, "recommendations to print (recommend)");
  flags.AddString("retrieval", "",
                  "two-stage ANN backend: exact | exact_sq8 | ivf | ivf_sq8; "
                  "empty = full-catalog scoring (recommend/evaluate)");
  flags.AddInt64("candidates", 200,
                 "candidates retrieved before exact rerank (recommend)");
  flags.AddInt64("nprobe", 8, "IVF lists probed per query");
  flags.AddInt64("nlist", 0, "IVF list count; 0 = sqrt(num_items)");
  flags.AddBool("full_ranking", false, "also run the all-items protocol (evaluate)");
  flags.AddBool("verbose", false, "per-epoch logging");
  flags.AddInt64("threads", 1,
                 "worker threads for training/evaluation; 0 = all hardware "
                 "threads, 1 = serial (bitwise-reproducible)");
  flags.AddImplicitString("telemetry", "", "-",
                          "collect runtime telemetry; bare dumps JSON to "
                          "stdout at exit, =path.json writes a file");
  flags.AddImplicitString("trace", "", "-",
                          "record a span timeline (Chrome trace-event JSON, "
                          "loads in chrome://tracing); bare dumps to stdout "
                          "at exit, =path.json writes a file");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Help();
    return 1;
  }
  if (flags.GetInt64("threads") < 0) {
    std::cerr << "--threads must be non-negative (0 = hardware concurrency)\n";
    return 1;
  }
  SetDefaultThreadPoolThreads(flags.GetInt64("threads"));
  const std::string telemetry_sink = flags.GetString("telemetry");
  if (!telemetry_sink.empty()) telemetry::Telemetry::SetEnabled(true);
  const std::string trace_sink = flags.GetString("trace");
  if (!trace_sink.empty()) trace::Trace::Start();
  if (flags.positional().size() != 1) {
    std::cerr << "usage: scenerec_cli <train|evaluate|recommend> [flags]\n"
              << flags.Help();
    return 1;
  }
  CliContext context;
  if (Status s = BuildContext(flags, context); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }

  const std::string command = flags.positional()[0];
  int code = 1;
  if (command == "train") {
    code = Train(flags, context);
  } else if (command == "evaluate" || command == "recommend") {
    // evaluate / recommend restore the checkpoint first.
    const std::string ckpt = flags.GetString("ckpt");
    if (ckpt.empty()) {
      std::cerr << command << " requires --ckpt\n";
      return 1;
    }
    if (Status s =
            LoadCheckpoint(*context.model, context.model->name(), ckpt);
        !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
    code = command == "evaluate" ? Evaluate(flags, context)
                                 : Recommend(flags, context);
  } else {
    std::cerr << "unknown command: " << command << "\n";
    return 1;
  }

  // Dump telemetry even when the command failed: the counters are exactly
  // what you want when diagnosing a diverged or slow run.
  if (!telemetry_sink.empty()) {
    if (telemetry_sink == "-") {
      std::cout << telemetry::Telemetry::ToJson();
    } else if (Status s = telemetry::Telemetry::WriteJsonFile(telemetry_sink);
               !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    } else {
      std::printf("telemetry written to %s\n", telemetry_sink.c_str());
    }
  }
  // Same contract for the trace: dump even on failure — the timeline of a
  // run that diverged or stalled is exactly the one worth looking at.
  if (!trace_sink.empty()) {
    if (trace_sink == "-") {
      std::cout << trace::Trace::ToChromeJson();
    } else if (Status s = trace::Trace::WriteChromeTrace(trace_sink);
               !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    } else {
      std::printf("trace written to %s\n", trace_sink.c_str());
    }
    // Self-time table goes to stderr so `--trace | gzip` style stdout
    // captures stay valid JSON.
    if (flags.GetBool("verbose")) {
      std::cerr << trace::Trace::SelfTimeSummary();
    }
  }
  return code;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
