// Explainable recommendations: the workflow behind the paper's Figure 3
// case study, packaged as a serving-side tool. For one user it prints the
// top-N recommendations and, for each, WHY in scene terms: which scenes the
// candidate shares with the user's interaction history, and the scene-based
// attention score that quantifies the overlap ("item i is recommended
// because its category complements the user-interacted items' categories in
// the same scene" — Section 5.4.3).
//
//   ./examples/explain_recommendation [--user=3] [--top_n=5]
//       [--dataset=Electronics] [--scale=0.02] [--epochs=6]

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <set>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/malloc_tuning.h"
#include "eval/top_n.h"
#include "models/scene_rec.h"
#include "train/trainer.h"

namespace {

using namespace scenerec;

int Run(int argc, char** argv) {
  TuneAllocatorForTraining();

  FlagParser flags;
  flags.AddInt64("user", 3, "user to explain recommendations for");
  flags.AddInt64("top_n", 5, "recommendations to show");
  flags.AddString("dataset", "Electronics", "JD preset name");
  flags.AddDouble("scale", 0.02, "dataset scale");
  flags.AddInt64("epochs", 6, "training epochs");
  flags.AddInt64("dim", 32, "embedding dimension");
  flags.AddInt64("seed", 42, "RNG seed");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Help();
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed"));

  JdPreset preset = JdPreset::kElectronics;
  for (JdPreset p : AllJdPresets()) {
    if (flags.GetString("dataset") == JdPresetName(p)) preset = p;
  }
  auto prepared_or =
      bench::PrepareJdDataset(preset, flags.GetDouble("scale"), seed);
  if (!prepared_or.ok()) {
    std::cerr << prepared_or.status().ToString() << "\n";
    return 1;
  }
  bench::PreparedDataset prepared = std::move(prepared_or).value();
  const SceneGraph& scene = prepared.scene_graph;

  SceneRecConfig model_config;
  model_config.embedding_dim = flags.GetInt64("dim");
  Rng model_rng(seed + 1);
  SceneRec model(&prepared.train_graph, &scene, model_config, model_rng);
  TrainConfig train_config;
  train_config.epochs = flags.GetInt64("epochs");
  train_config.learning_rate = 2e-3f;
  train_config.seed = seed + 2;
  auto result = TrainAndEvaluate(model, prepared.split, prepared.train_graph,
                                 train_config);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::printf("Trained SceneRec on %s (test NDCG@10 %.3f)\n\n",
              prepared.dataset.name.c_str(), result->test.ndcg);

  const int64_t user =
      flags.GetInt64("user") % prepared.dataset.num_users;
  auto history = prepared.train_graph.ItemsOfUser(user);
  std::printf("User u%lld interacted with %zu items.\n",
              static_cast<long long>(user), history.size());

  // The user's scene profile: how often each scene covers a history item.
  std::map<int64_t, int64_t> scene_profile;
  for (int64_t item : history) {
    for (int64_t s : scene.ScenesOfItem(item)) scene_profile[s]++;
  }
  std::vector<std::pair<int64_t, int64_t>> profile(scene_profile.begin(),
                                                   scene_profile.end());
  std::sort(profile.begin(), profile.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("Dominant scenes in the history:");
  for (size_t i = 0; i < profile.size() && i < 5; ++i) {
    std::printf(" s%lld(x%lld)", static_cast<long long>(profile[i].first),
                static_cast<long long>(profile[i].second));
  }
  std::printf("\n\n");

  model.OnEvalBegin();
  auto recommendations = TopNRecommendations(
      model.Scorer(), prepared.train_graph, user, flags.GetInt64("top_n"));
  std::printf("Top-%zu recommendations with scene explanations:\n\n",
              recommendations.size());
  for (const Recommendation& rec : recommendations) {
    const int64_t category = scene.CategoryOfItem(rec.item);
    std::printf("item i%-6lld (category c%lld)  score %.3f  attention %.3f\n",
                static_cast<long long>(rec.item),
                static_cast<long long>(category), rec.score,
                model.AverageAttentionScore(user, rec.item));
    // Which of the user's dominant scenes contain this item's category?
    std::set<int64_t> candidate_scenes;
    for (int64_t s : scene.ScenesOfItem(rec.item)) {
      candidate_scenes.insert(s);
    }
    std::printf("  shared scenes:");
    int shown = 0;
    for (const auto& [s, count] : profile) {
      if (candidate_scenes.count(s)) {
        std::printf(" s%lld(x%lld)", static_cast<long long>(s),
                    static_cast<long long>(count));
        if (++shown >= 4) break;
      }
    }
    if (shown == 0) std::printf(" none (pure collaborative signal)");
    // Peer categories in the first shared scene — the "complement" story.
    for (const auto& [s, count] : profile) {
      if (candidate_scenes.count(s)) {
        std::printf("\n  scene s%lld completes categories:",
                    static_cast<long long>(s));
        int peers = 0;
        for (int64_t c : scene.CategoriesOfScene(s)) {
          if (c == category) continue;
          std::printf(" c%lld", static_cast<long long>(c));
          if (++peers >= 6) break;
        }
        break;
      }
    }
    std::printf("\n\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
