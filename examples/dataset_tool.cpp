// Dataset tool: generate synthetic scene-based datasets, save them as TSV,
// reload them, and print statistics — the data-management workflow for
// anyone who wants to plug their own data into the library (write the same
// six TSV files and call LoadDatasetTsv).
//
//   ./examples/dataset_tool generate --dir=/tmp/scenerec_data
//       [--dataset=Electronics] [--scale=0.02] [--seed=42]
//   ./examples/dataset_tool inspect  --dir=/tmp/scenerec_data

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/malloc_tuning.h"
#include "data/synthetic.h"
#include "data/tsv_io.h"
#include "graph/stats.h"

namespace {

using namespace scenerec;

int Run(int argc, char** argv) {
  TuneAllocatorForTraining();

  FlagParser flags;
  flags.AddString("dir", "/tmp/scenerec_data", "dataset directory");
  flags.AddString("dataset", "Electronics", "JD preset name (generate)");
  flags.AddDouble("scale", 0.02, "dataset scale (generate)");
  flags.AddInt64("seed", 42, "RNG seed (generate)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Help();
    return 1;
  }
  if (flags.positional().size() != 1) {
    std::cerr << "usage: dataset_tool <generate|inspect> --dir=...\n"
              << flags.Help();
    return 1;
  }
  const std::string command = flags.positional()[0];
  const std::string dir = flags.GetString("dir");

  if (command == "generate") {
    JdPreset preset = JdPreset::kElectronics;
    for (JdPreset p : AllJdPresets()) {
      if (flags.GetString("dataset") == JdPresetName(p)) preset = p;
    }
    auto dataset_or = GenerateSyntheticDataset(
        MakeJdConfig(preset, flags.GetDouble("scale")),
        static_cast<uint64_t>(flags.GetInt64("seed")));
    if (!dataset_or.ok()) {
      std::cerr << dataset_or.status().ToString() << "\n";
      return 1;
    }
    if (Status s = SaveDatasetTsv(dataset_or.value(), dir); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
    std::printf("Wrote %s to %s:\n%s", dataset_or->name.c_str(), dir.c_str(),
                FormatStatsTable(dataset_or->Stats()).c_str());
    std::printf("\nFiles: meta.tsv interactions.tsv item_category.tsv "
                "item_item.tsv category_category.tsv category_scene.tsv\n");
    return 0;
  }
  if (command == "inspect") {
    auto dataset_or = LoadDatasetTsv(dir);
    if (!dataset_or.ok()) {
      std::cerr << dataset_or.status().ToString() << "\n";
      return 1;
    }
    const Dataset& dataset = dataset_or.value();
    std::cout << FormatStatsTable(dataset.Stats());
    SceneGraph graph = dataset.BuildSceneGraph();
    std::printf("\nScene-graph validation: %s\n",
                graph.Validate().ToString().c_str());
    // Degree distribution summary of the item layer.
    int64_t max_degree = 0, isolated = 0;
    for (int64_t i = 0; i < graph.num_items(); ++i) {
      const int64_t degree =
          static_cast<int64_t>(graph.ItemNeighbors(i).size());
      max_degree = std::max(max_degree, degree);
      isolated += (degree == 0);
    }
    std::printf("item layer: max degree %lld, %lld isolated items\n",
                static_cast<long long>(max_degree),
                static_cast<long long>(isolated));
    return 0;
  }
  std::cerr << "unknown command: " << command << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
