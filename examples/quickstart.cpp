// Quickstart: generate a small scene-based dataset, train SceneRec, and
// print ranked recommendations for one user.
//
//   ./examples/quickstart [--seed=42] [--epochs=5] [--dim=32] [--verbose]

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/logging.h"
#include "common/malloc_tuning.h"
#include "common/stopwatch.h"
#include "data/split.h"
#include "eval/top_n.h"
#include "data/synthetic.h"
#include "graph/stats.h"
#include "models/scene_rec.h"
#include "nn/serialization.h"
#include "train/trainer.h"

namespace {

int Run(int argc, char** argv) {
  using namespace scenerec;
  TuneAllocatorForTraining();

  FlagParser flags;
  flags.AddInt64("seed", 42, "RNG seed");
  flags.AddInt64("epochs", 5, "training epochs");
  flags.AddInt64("dim", 32, "embedding dimension");
  flags.AddBool("verbose", false, "log per-epoch metrics");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Help();
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed"));

  // 1. Generate a small synthetic scene-based dataset.
  SyntheticConfig config;
  config.name = "quickstart";
  config.num_users = 120;
  config.num_items = 900;
  config.num_categories = 40;
  config.num_scenes = 25;
  config.sessions_per_user = 6;
  auto dataset_or = GenerateSyntheticDataset(config, seed);
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status().ToString() << "\n";
    return 1;
  }
  Dataset dataset = std::move(dataset_or).value();
  std::cout << "Generated dataset:\n"
            << FormatStatsTable(dataset.Stats()) << "\n";

  // 2. Leave-one-out split (Section 5.3 protocol).
  Rng rng(seed);
  auto split_or = MakeLeaveOneOutSplit(dataset, /*num_negatives=*/100, rng);
  if (!split_or.ok()) {
    std::cerr << split_or.status().ToString() << "\n";
    return 1;
  }
  LeaveOneOutSplit split = std::move(split_or).value();
  std::cout << "Split: " << split.train.size() << " train interactions, "
            << split.validation.size() << " validation users, "
            << split.test.size() << " test users\n\n";

  // 3. Build the graphs (training interactions only) and the model.
  UserItemGraph train_graph =
      UserItemGraph::Build(dataset.num_users, dataset.num_items, split.train);
  SceneGraph scene_graph = dataset.BuildSceneGraph();

  SceneRecConfig model_config;
  model_config.embedding_dim = flags.GetInt64("dim");
  Rng model_rng(seed + 1);
  SceneRec model(&train_graph, &scene_graph, model_config, model_rng);
  std::cout << "SceneRec with " << model.NumParameters()
            << " trainable parameters\n";

  // 4. Train with BPR + RMSProp.
  TrainConfig train_config;
  train_config.epochs = flags.GetInt64("epochs");
  train_config.verbose = flags.GetBool("verbose");
  train_config.seed = seed + 2;
  Stopwatch stopwatch;
  auto result_or = TrainAndEvaluate(model, split, train_graph, train_config);
  if (!result_or.ok()) {
    std::cerr << result_or.status().ToString() << "\n";
    return 1;
  }
  TrainResult result = std::move(result_or).value();
  std::printf("Trained %lld epochs in %.1fs\n",
              static_cast<long long>(result.epochs_run),
              stopwatch.ElapsedSeconds());
  std::printf("Validation: NDCG@10 %.4f  HR@10 %.4f (best epoch %lld)\n",
              result.best_validation.ndcg, result.best_validation.hr,
              static_cast<long long>(result.best_epoch + 1));
  std::printf("Test:       NDCG@10 %.4f  HR@10 %.4f\n\n", result.test.ndcg,
              result.test.hr);

  // 5. Checkpoint the trained model and prove a fresh instance restores it.
  const std::string checkpoint = "/tmp/scenerec_quickstart.ckpt";
  if (Status s = SaveCheckpoint(model, model.name(), checkpoint); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    return 1;
  }
  {
    Rng fresh_rng(seed + 100);
    SceneRec restored(&train_graph, &scene_graph, model_config, fresh_rng);
    if (Status s = LoadCheckpoint(restored, model.name(), checkpoint);
        !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    }
    restored.OnEvalBegin();
    model.OnEvalBegin();
    std::printf("Checkpoint round trip: score(0, 0) %.4f == %.4f\n\n",
                model.Score(0, 0), restored.Score(0, 0));
  }

  // 6. Recommend: top-5 unseen items for one user (the serving path).
  const int64_t user = 7;
  std::cout << "Top-5 recommendations for user " << user << ":\n";
  for (const Recommendation& rec :
       TopNRecommendations(model.Scorer(), train_graph, user, 5)) {
    std::printf(
        "  item %lld (category %lld)  score %.3f  avg scene attention %.3f\n",
        static_cast<long long>(rec.item),
        static_cast<long long>(scene_graph.CategoryOfItem(rec.item)),
        rec.score, model.AverageAttentionScore(user, rec.item));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
