// Compares a chosen subset of recommenders on one dataset — a lightweight
// interactive version of the Table 2 benchmark for experimenting with
// hyper-parameters from the command line.
//
//   ./examples/model_comparison [--models=BPR-MF,NGCF,SceneRec]
//       [--dataset=Electronics] [--scale=0.02] [--epochs=6] [--dim=32]
//       [--lr=0] [--verbose]

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/malloc_tuning.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "common/string_util.h"
#include "retrieval/index_builder.h"
#include "retrieval/two_stage.h"

namespace {

using namespace scenerec;

int Run(int argc, char** argv) {
  TuneAllocatorForTraining();

  FlagParser flags;
  flags.AddString("models", "BPR-MF,NGCF,SceneRec",
                  "comma-separated Table 2 model names");
  flags.AddString("dataset", "Electronics", "JD preset name");
  flags.AddDouble("scale", 0.02, "dataset scale");
  flags.AddInt64("epochs", 6, "training epochs");
  flags.AddInt64("dim", 32, "embedding dimension");
  flags.AddDouble("lr", 0.0, "learning rate; 0 = per-model tuned default");
  flags.AddInt64("seed", 42, "RNG seed");
  flags.AddString("retrieval", "",
                  "also report two-stage retrieval recall@100 vs the exact "
                  "backend: exact | exact_sq8 | ivf | ivf_sq8");
  flags.AddInt64("nprobe", 8, "IVF lists probed per query");
  flags.AddInt64("nlist", 0, "IVF list count; 0 = sqrt(num_items)");
  flags.AddBool("verbose", false, "per-epoch logging");
  flags.AddInt64("threads", 1,
                 "worker threads for training/evaluation; 0 = all hardware "
                 "threads, 1 = serial (bitwise-reproducible)");
  flags.AddImplicitString("telemetry", "", "-",
                          "collect runtime telemetry; bare dumps JSON to "
                          "stdout at exit, =path.json writes a file");
  flags.AddImplicitString("trace", "", "-",
                          "record a span timeline (Chrome trace-event JSON); "
                          "bare dumps to stdout at exit, =path.json writes "
                          "a file");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Help();
    return 1;
  }
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  if (flags.GetInt64("threads") < 0) {
    std::cerr << "--threads must be non-negative (0 = hardware concurrency)\n";
    return 1;
  }
  SetDefaultThreadPoolThreads(flags.GetInt64("threads"));
  const std::string telemetry_sink = flags.GetString("telemetry");
  if (!telemetry_sink.empty()) telemetry::Telemetry::SetEnabled(true);
  const std::string trace_sink = flags.GetString("trace");
  if (!trace_sink.empty()) trace::Trace::Start();

  JdPreset preset = JdPreset::kElectronics;
  for (JdPreset p : AllJdPresets()) {
    if (flags.GetString("dataset") == JdPresetName(p)) preset = p;
  }
  auto prepared_or =
      bench::PrepareJdDataset(preset, flags.GetDouble("scale"), seed);
  if (!prepared_or.ok()) {
    std::cerr << prepared_or.status().ToString() << "\n";
    return 1;
  }
  bench::PreparedDataset prepared = std::move(prepared_or).value();
  std::printf("dataset %s: %lld users, %lld items, %zu train interactions\n\n",
              prepared.dataset.name.c_str(),
              static_cast<long long>(prepared.dataset.num_users),
              static_cast<long long>(prepared.dataset.num_items),
              prepared.split.train.size());

  ModelFactoryConfig factory_config;
  factory_config.embedding_dim = flags.GetInt64("dim");
  factory_config.seed = seed + 17;

  const std::string retrieval = flags.GetString("retrieval");
  std::printf("%-16s | %-9s %-9s | %-9s %-7s", "Model", "NDCG@10", "HR@10",
              "train s", "epochs");
  if (!retrieval.empty()) std::printf(" | %-10s", "recall@100");
  std::printf("\n%s\n", std::string(retrieval.empty() ? 60 : 74, '-').c_str());
  for (const std::string& name : Split(flags.GetString("models"), ',')) {
    TrainConfig train_config;
    train_config.epochs = flags.GetInt64("epochs");
    train_config.seed = seed + 23;
    train_config.verbose = flags.GetBool("verbose");
    train_config.threads = flags.GetInt64("threads");
    train_config.telemetry = telemetry::Telemetry::Enabled();
    train_config.trace = trace::Trace::Enabled();
    train_config.learning_rate =
        flags.GetDouble("lr") > 0.0
            ? static_cast<float>(flags.GetDouble("lr"))
            : bench::TunedLearningRate(name);
    std::unique_ptr<Recommender> model;
    auto cell = bench::RunCell(name, prepared, factory_config, train_config,
                               retrieval.empty() ? nullptr : &model);
    if (!cell.ok()) {
      std::cerr << name << ": " << cell.status().ToString() << "\n";
      continue;
    }
    std::printf("%-16s | %-9.4f %-9.4f | %-9.1f %-7lld", name.c_str(),
                cell->test.ndcg, cell->test.hr, cell->train_seconds,
                static_cast<long long>(cell->epochs_run));
    if (!retrieval.empty()) {
      // Retrieval quality of the TRAINED embeddings: recall@100 of the
      // selected backend against the exact reference (docs/retrieval.md).
      auto kind = ParseIndexKind(retrieval);
      if (!kind.ok()) {
        std::cerr << "\n" << kind.status().ToString() << "\n";
        return 1;
      }
      if (model == nullptr || !model->SupportsRetrievalEmbeddings()) {
        std::printf(" | %-10s", "n/a");
      } else {
        model->OnEvalBegin();
        IndexBuildConfig config;
        config.kind = kind.value();
        config.nlist = flags.GetInt64("nlist");
        config.nprobe = flags.GetInt64("nprobe");
        auto index = IndexBuilder(config).Build(*model);
        auto exact = IndexBuilder().Build(*model);
        if (!index.ok() || !exact.ok()) {
          std::cerr << "\n"
                    << (index.ok() ? exact : index).status().ToString()
                    << "\n";
          return 1;
        }
        std::vector<int64_t> users(
            static_cast<size_t>(prepared.dataset.num_users));
        for (size_t u = 0; u < users.size(); ++u) {
          users[u] = static_cast<int64_t>(u);
        }
        const int64_t k = std::min<int64_t>(100, prepared.dataset.num_items);
        std::printf(" | %-10.4f",
                    RetrievalRecallAtK(*model, *index.value(), *exact.value(),
                                       k, users));
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  if (!telemetry_sink.empty()) {
    if (telemetry_sink == "-") {
      std::cout << telemetry::Telemetry::ToJson();
    } else if (Status s = telemetry::Telemetry::WriteJsonFile(telemetry_sink);
               !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    } else {
      std::printf("telemetry written to %s\n", telemetry_sink.c_str());
    }
  }
  if (!trace_sink.empty()) {
    if (trace_sink == "-") {
      std::cout << trace::Trace::ToChromeJson();
    } else if (Status s = trace::Trace::WriteChromeTrace(trace_sink);
               !s.ok()) {
      std::cerr << s.ToString() << "\n";
      return 1;
    } else {
      std::printf("trace written to %s\n", trace_sink.c_str());
    }
    if (flags.GetBool("verbose")) {
      std::cerr << trace::Trace::SelfTimeSummary();
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
