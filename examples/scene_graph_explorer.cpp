// Scene-graph explorer: builds the 3-layer scene-based graph for a JD-style
// dataset and walks the hierarchy interactively from the command line,
// mirroring the structure of Figure 1 in the paper.
//
//   ./examples/scene_graph_explorer [--dataset=Electronics] [--scale=0.02]
//       [--scene=3] [--category=5] [--item=42]
//
// For the chosen entities it prints: the scene's member categories, the
// category's scenes/related categories/items, and the item's category,
// scenes and most similar items — i.e. every relation L_item, L_cate,
// L_ic, L_cs of Definition 3.3.

#include <cstdio>
#include <iostream>

#include "common/flags.h"
#include "common/malloc_tuning.h"
#include "data/synthetic.h"
#include "graph/stats.h"

namespace {

using namespace scenerec;

void PrintSpan(const char* label, std::span<const int64_t> ids,
               size_t limit = 12) {
  std::printf("  %s [%zu]:", label, ids.size());
  for (size_t i = 0; i < ids.size() && i < limit; ++i) {
    std::printf(" %lld", static_cast<long long>(ids[i]));
  }
  if (ids.size() > limit) std::printf(" ...");
  std::printf("\n");
}

int Run(int argc, char** argv) {
  TuneAllocatorForTraining();

  FlagParser flags;
  flags.AddString("dataset", "Electronics", "JD preset name");
  flags.AddDouble("scale", 0.02, "dataset scale");
  flags.AddInt64("seed", 42, "RNG seed");
  flags.AddInt64("scene", 3, "scene id to inspect");
  flags.AddInt64("category", 5, "category id to inspect");
  flags.AddInt64("item", 42, "item id to inspect");
  if (Status s = flags.Parse(argc, argv); !s.ok()) {
    std::cerr << s.ToString() << "\n" << flags.Help();
    return 1;
  }

  JdPreset preset = JdPreset::kElectronics;
  for (JdPreset p : AllJdPresets()) {
    if (flags.GetString("dataset") == JdPresetName(p)) preset = p;
  }
  auto dataset_or = GenerateSyntheticDataset(
      MakeJdConfig(preset, flags.GetDouble("scale")),
      static_cast<uint64_t>(flags.GetInt64("seed")));
  if (!dataset_or.ok()) {
    std::cerr << dataset_or.status().ToString() << "\n";
    return 1;
  }
  const Dataset dataset = std::move(dataset_or).value();
  const SceneGraph graph = dataset.BuildSceneGraph();
  if (Status s = graph.Validate(); !s.ok()) {
    std::cerr << "scene graph invalid: " << s.ToString() << "\n";
    return 1;
  }

  std::cout << FormatStatsTable(dataset.Stats()) << "\n";

  const int64_t scene = flags.GetInt64("scene") % graph.num_scenes();
  std::printf("=== Scene s%lld ===\n", static_cast<long long>(scene));
  PrintSpan("member categories", graph.CategoriesOfScene(scene));
  std::printf("\n");

  const int64_t category =
      flags.GetInt64("category") % graph.num_categories();
  std::printf("=== Category c%lld ===\n", static_cast<long long>(category));
  PrintSpan("scenes CS(c)", graph.ScenesOfCategory(category));
  PrintSpan("related categories CC(c)", graph.CategoryNeighbors(category));
  PrintSpan("items", graph.ItemsOfCategory(category));
  std::printf("\n");

  const int64_t item = flags.GetInt64("item") % graph.num_items();
  std::printf("=== Item i%lld ===\n", static_cast<long long>(item));
  std::printf("  category C(i): c%lld\n",
              static_cast<long long>(graph.CategoryOfItem(item)));
  PrintSpan("scenes IS(i)", graph.ScenesOfItem(item));
  PrintSpan("co-view neighbors II(i)", graph.ItemNeighbors(item));

  // Scene overlap between the item's neighbors and the item itself: the
  // quantity SceneRec's attention (eqs. 9-11) keys on.
  auto item_scenes = graph.ScenesOfItem(item);
  std::printf("\n  neighbor scene overlap (drives attention weights):\n");
  size_t shown = 0;
  for (int64_t neighbor : graph.ItemNeighbors(item)) {
    if (shown++ >= 8) break;
    auto neighbor_scenes = graph.ScenesOfItem(neighbor);
    int shared = 0;
    for (int64_t a : item_scenes) {
      for (int64_t b : neighbor_scenes) shared += (a == b);
    }
    std::printf("    i%-6lld (c%-4lld): %d shared scenes\n",
                static_cast<long long>(neighbor),
                static_cast<long long>(graph.CategoryOfItem(neighbor)),
                shared);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
