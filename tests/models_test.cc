#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "models/cmn.h"
#include "models/factory.h"
#include "models/item_rank.h"
#include "models/kgat.h"
#include "models/ncf.h"
#include "models/neighbor_util.h"
#include "models/ngcf.h"
#include "models/pinsage.h"
#include "models/propagation.h"
#include "models/scene_rec.h"
#include "tensor/ops.h"

namespace scenerec {
namespace {

/// Shared tiny dataset fixture for all model tests.
class ModelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.name = "models-test";
    config.num_users = 20;
    config.num_items = 80;
    config.num_categories = 8;
    config.num_scenes = 5;
    config.sessions_per_user = 4;
    config.session_length = 5;
    auto result = GenerateSyntheticDataset(config, 99);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    dataset_ = std::move(result).value();
    ui_graph_ = dataset_.BuildUserItemGraph();
    scene_graph_ = dataset_.BuildSceneGraph();
  }

  /// Checks the full training contract of a model: finite scores, a finite
  /// batch loss, and gradients reaching every parameter after Backward.
  void CheckTrainingContract(Recommender& model) {
    Tensor score = model.ScoreForTraining(1, 2);
    EXPECT_EQ(score.num_elements(), 1);
    EXPECT_TRUE(std::isfinite(score.scalar())) << model.name();

    std::vector<BprTriple> batch{{0, 1, 2},  {1, 3, 4},  {2, 5, 6},
                                 {3, 7, 8},  {4, 9, 10}, {5, 11, 12},
                                 {6, 13, 14}, {7, 15, 16}};
    model.ZeroGrad();
    Tensor loss = model.BatchLoss(batch);
    EXPECT_TRUE(std::isfinite(loss.scalar())) << model.name();
    EXPECT_GT(loss.scalar(), 0.0f) << model.name();
    Backward(loss);

    int params_with_grad = 0;
    int params_total = 0;
    for (const Tensor& p : model.Parameters()) {
      ++params_total;
      if (p.grad().empty()) continue;
      float magnitude = 0.0f;
      for (float g : p.grad()) magnitude += std::fabs(g);
      if (magnitude > 0.0f) ++params_with_grad;
    }
    // Nearly every parameter group should receive gradient from one batch.
    // Structural exceptions exist: an output-layer bias cancels exactly in a
    // pairwise BPR loss (identical contribution to both scores), and paths
    // shared between the positive and negative branch (e.g. the user tower)
    // cancel when piecewise-linear activation patterns happen to coincide.
    EXPECT_GT(params_with_grad, 0) << model.name();
    EXPECT_GE(params_with_grad, params_total - 3)
        << model.name() << ": too many dead parameters";
  }

  /// Checks that inference scoring is deterministic and matches across calls.
  void CheckDeterministicInference(Recommender& model) {
    model.OnEvalBegin();
    const float a = model.Score(3, 7);
    const float b = model.Score(3, 7);
    EXPECT_EQ(a, b) << model.name();
    EXPECT_TRUE(std::isfinite(a));
  }

  Dataset dataset_;
  UserItemGraph ui_graph_;
  SceneGraph scene_graph_;
};

TEST_F(ModelsTest, BprMfContract) {
  Rng rng(1);
  BprMf model(ui_graph_.num_users(), ui_graph_.num_items(), 16, rng);
  EXPECT_EQ(model.name(), "BPR-MF");
  CheckTrainingContract(model);
  CheckDeterministicInference(model);
}

TEST_F(ModelsTest, BprMfFastScoreMatchesTrainingScore) {
  Rng rng(2);
  BprMf model(ui_graph_.num_users(), ui_graph_.num_items(), 16, rng);
  NoGradGuard no_grad;
  for (int64_t u = 0; u < 3; ++u) {
    for (int64_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(model.Score(u, i), model.ScoreForTraining(u, i).scalar(),
                  1e-5);
    }
  }
}

TEST_F(ModelsTest, NcfContract) {
  Rng rng(3);
  Ncf model(ui_graph_.num_users(), ui_graph_.num_items(), 8, rng);
  EXPECT_EQ(model.name(), "NCF");
  CheckTrainingContract(model);
  CheckDeterministicInference(model);
}

TEST_F(ModelsTest, CmnContract) {
  Rng rng(4);
  Cmn model(&ui_graph_, 16, /*max_neighbors=*/8, rng);
  EXPECT_EQ(model.name(), "CMN");
  CheckTrainingContract(model);
  CheckDeterministicInference(model);
}

TEST_F(ModelsTest, PinSageContract) {
  Rng rng(5);
  PinSage model(&ui_graph_, 16, /*fanout1=*/4, /*fanout2=*/8, rng);
  EXPECT_EQ(model.name(), "PinSAGE");
  CheckTrainingContract(model);
  CheckDeterministicInference(model);
}

TEST_F(ModelsTest, NgcfContract) {
  Rng rng(6);
  Ngcf model(&ui_graph_, 16, /*depth=*/2, rng);
  EXPECT_EQ(model.name(), "NGCF");
  CheckTrainingContract(model);
  CheckDeterministicInference(model);
}

TEST_F(ModelsTest, NgcfCachedScoreMatchesTrainingScore) {
  Rng rng(7);
  Ngcf model(&ui_graph_, 8, 2, rng);
  model.OnEvalBegin();
  NoGradGuard no_grad;
  for (int64_t u = 0; u < 3; ++u) {
    for (int64_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(model.Score(u, i), model.ScoreForTraining(u, i).scalar(),
                  1e-3);
    }
  }
}

TEST_F(ModelsTest, NgcfMessageDropoutTrainsAndEvalIsClean) {
  Rng rng(60);
  Ngcf model(&ui_graph_, 8, 2, rng, /*message_dropout=*/0.3f);
  CheckTrainingContract(model);
  // Dropout must be inactive at inference: scores are deterministic.
  model.OnEvalBegin();
  EXPECT_EQ(model.Score(0, 1), model.Score(0, 1));
  // And two consecutive TRAINING losses on the same batch differ (different
  // dropout masks).
  std::vector<BprTriple> batch{{0, 1, 2}, {1, 3, 4}};
  const float a = model.BatchLoss(batch).scalar();
  const float b = model.BatchLoss(batch).scalar();
  EXPECT_NE(a, b);
}

TEST_F(ModelsTest, KgatContract) {
  Rng rng(8);
  Kgat model(&ui_graph_, &scene_graph_, 16, /*depth=*/2, rng);
  EXPECT_EQ(model.name(), "KGAT");
  CheckTrainingContract(model);
  CheckDeterministicInference(model);
}

TEST_F(ModelsTest, KgatAttentionChangesWithEmbeddings) {
  Rng rng(9);
  Kgat model(&ui_graph_, &scene_graph_, 8, 1, rng);
  model.OnEvalBegin();
  const float before = model.Score(0, 1);
  // Perturb the entity embeddings and refresh attention: score must change.
  for (Tensor& p : model.Parameters()) {
    for (float& v : p.mutable_value()) v += 0.1f;
  }
  model.OnEpochBegin();
  model.OnEvalBegin();
  const float after = model.Score(0, 1);
  EXPECT_NE(before, after);
}

TEST_F(ModelsTest, SceneRecContract) {
  Rng rng(10);
  SceneRecConfig config;
  config.embedding_dim = 16;
  config.max_neighbors = 8;
  SceneRec model(&ui_graph_, &scene_graph_, config, rng);
  EXPECT_EQ(model.name(), "SceneRec");
  CheckTrainingContract(model);
  CheckDeterministicInference(model);
}

TEST_F(ModelsTest, SceneRecVariantsNamedCorrectly) {
  Rng rng(11);
  SceneRecConfig config;
  config.embedding_dim = 8;

  config.use_item_item = false;
  SceneRec noitem(&ui_graph_, &scene_graph_, config, rng);
  EXPECT_EQ(noitem.name(), "SceneRec-noitem");

  config.use_item_item = true;
  config.use_scene = false;
  SceneRec nosce(&ui_graph_, &scene_graph_, config, rng);
  EXPECT_EQ(nosce.name(), "SceneRec-nosce");

  config.use_scene = true;
  config.use_attention = false;
  SceneRec noatt(&ui_graph_, &scene_graph_, config, rng);
  EXPECT_EQ(noatt.name(), "SceneRec-noatt");
}

TEST_F(ModelsTest, SceneRecVariantsSatisfyContract) {
  for (const char* name :
       {"SceneRec-noitem", "SceneRec-nosce", "SceneRec-noatt"}) {
    ModelContext context{&ui_graph_, &scene_graph_};
    ModelFactoryConfig config;
    config.embedding_dim = 8;
    config.max_neighbors = 6;
    auto model_or = MakeRecommender(name, context, config);
    ASSERT_TRUE(model_or.ok()) << name;
    CheckTrainingContract(**model_or);
    CheckDeterministicInference(**model_or);
  }
}

TEST_F(ModelsTest, SceneRecVariantsHaveDifferentParameterCounts) {
  ModelContext context{&ui_graph_, &scene_graph_};
  ModelFactoryConfig config;
  config.embedding_dim = 8;
  auto full = MakeRecommender("SceneRec", context, config);
  auto nosce = MakeRecommender("SceneRec-nosce", context, config);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(nosce.ok());
  // Removing category/scene layers removes their embeddings and fusion.
  EXPECT_GT((*full)->NumParameters(), (*nosce)->NumParameters());
}

TEST_F(ModelsTest, SceneRecAttentionScoreReflectsSharedScenes) {
  Rng rng(12);
  SceneRecConfig config;
  config.embedding_dim = 8;
  SceneRec model(&ui_graph_, &scene_graph_, config, rng);
  // The attention score is a cosine in [-1, 1] and deterministic.
  const float a = model.AverageAttentionScore(0, 5);
  const float b = model.AverageAttentionScore(0, 5);
  EXPECT_EQ(a, b);
  EXPECT_GE(a, -1.001f);
  EXPECT_LE(a, 1.001f);
}

TEST_F(ModelsTest, FactoryBuildsEveryTable2Model) {
  ModelContext context{&ui_graph_, &scene_graph_};
  ModelFactoryConfig config;
  config.embedding_dim = 8;
  config.ncf_dim = 4;
  config.gnn_depth = 1;
  config.max_neighbors = 6;
  for (const std::string& name : Table2ModelNames()) {
    auto model_or = MakeRecommender(name, context, config);
    ASSERT_TRUE(model_or.ok()) << name << ": " << model_or.status().ToString();
    EXPECT_EQ((*model_or)->name(), name);
    EXPECT_GT((*model_or)->NumParameters(), 0);
  }
  EXPECT_EQ(Table2ModelNames().size(), 10u);
}

TEST_F(ModelsTest, FactoryRejectsUnknownAndMissingGraphs) {
  ModelContext context{&ui_graph_, &scene_graph_};
  ModelFactoryConfig config;
  EXPECT_FALSE(MakeRecommender("SVD++", context, config).ok());

  ModelContext no_scene{&ui_graph_, nullptr};
  EXPECT_FALSE(MakeRecommender("KGAT", no_scene, config).ok());
  EXPECT_FALSE(MakeRecommender("SceneRec", no_scene, config).ok());
  EXPECT_TRUE(MakeRecommender("BPR-MF", no_scene, config).ok());

  ModelContext nothing{nullptr, nullptr};
  EXPECT_FALSE(MakeRecommender("BPR-MF", nothing, config).ok());
}

TEST_F(ModelsTest, KgcnContract) {
  ModelContext context{&ui_graph_, &scene_graph_};
  ModelFactoryConfig config;
  config.embedding_dim = 16;
  config.max_neighbors = 6;
  auto model = MakeRecommender("KGCN", context, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->name(), "KGCN");
  CheckTrainingContract(**model);
  CheckDeterministicInference(**model);
}

TEST_F(ModelsTest, KgcnRequiresSceneGraph) {
  ModelContext no_scene{&ui_graph_, nullptr};
  ModelFactoryConfig config;
  EXPECT_FALSE(MakeRecommender("KGCN", no_scene, config).ok());
}

TEST_F(ModelsTest, GcmcContract) {
  ModelContext context{&ui_graph_, nullptr};
  ModelFactoryConfig config;
  config.embedding_dim = 16;
  auto model = MakeRecommender("GCMC", context, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->name(), "GCMC");
  CheckTrainingContract(**model);
  CheckDeterministicInference(**model);
}

TEST_F(ModelsTest, GcmcCachedScoreMatchesTrainingScore) {
  ModelContext context{&ui_graph_, nullptr};
  ModelFactoryConfig config;
  config.embedding_dim = 8;
  auto model = MakeRecommender("GCMC", context, config);
  ASSERT_TRUE(model.ok());
  (*model)->OnEvalBegin();
  NoGradGuard no_grad;
  for (int64_t u = 0; u < 3; ++u) {
    for (int64_t i = 0; i < 3; ++i) {
      EXPECT_NEAR((*model)->Score(u, i),
                  (*model)->ScoreForTraining(u, i).scalar(), 1e-4);
    }
  }
}

// -- Training-free reference baselines ---------------------------------------------

TEST_F(ModelsTest, ItemPopScoresByDegree) {
  ModelContext context{&ui_graph_, nullptr};
  ModelFactoryConfig config;
  auto model = MakeRecommender("ItemPop", context, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->name(), "ItemPop");
  // Score equals the training degree, independent of the user.
  for (int64_t item = 0; item < 10; ++item) {
    EXPECT_FLOAT_EQ((*model)->Score(0, item),
                    static_cast<float>(ui_graph_.ItemDegree(item)));
    EXPECT_FLOAT_EQ((*model)->Score(5, item), (*model)->Score(0, item));
  }
  // Its BatchLoss is a zero-gradient constant so the trainer can run it.
  std::vector<BprTriple> batch{{0, 1, 2}};
  (*model)->ZeroGrad();
  Tensor loss = (*model)->BatchLoss(batch);
  EXPECT_FLOAT_EQ(loss.scalar(), 0.0f);
  Backward(loss);  // must not crash
}

TEST_F(ModelsTest, ItemRankFavorsCoConsumedItems) {
  ModelContext context{&ui_graph_, nullptr};
  ModelFactoryConfig config;
  auto model = MakeRecommender("ItemRank", context, config);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ((*model)->name(), "ItemRank");
  // Items the user interacted with keep probability mass (restart); an item
  // co-consumed with the user's items must outscore a random item that is
  // never co-consumed with them.
  const int64_t user = 0;
  auto history = ui_graph_.ItemsOfUser(user);
  ASSERT_FALSE(history.empty());
  const float own = (*model)->Score(user, history[0]);
  EXPECT_GT(own, 0.0f);
  // Scores are a probability-like vector: non-negative everywhere.
  for (int64_t item = 0; item < ui_graph_.num_items(); item += 7) {
    EXPECT_GE((*model)->Score(user, item), 0.0f);
  }
  // Deterministic (cached) scoring.
  EXPECT_EQ((*model)->Score(user, 3), (*model)->Score(user, 3));
}

TEST(ItemRankStructureTest, WalksReachCoConsumedItems) {
  // Hand-built graph: user 0 consumed {0, 1}. Other users connect item 0
  // with item 2 (co-consumption), while item 3 is consumed by one unrelated
  // user only — no walk from user 0's items can reach it.
  UserItemGraph graph = UserItemGraph::Build(
      4, 4,
      {{0, 0}, {0, 1}, {1, 0}, {1, 2}, {2, 0}, {2, 2}, {3, 3}});
  ItemRank model(&graph, /*alpha=*/0.85, /*iterations=*/15);

  // Restart mass keeps the user's own items on top.
  EXPECT_GT(model.Score(0, 0), model.Score(0, 2));
  // The co-consumed item is reachable, the disconnected item is not.
  EXPECT_GT(model.Score(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(model.Score(0, 3), 0.0f);
  // A different user's ranking differs (personalized walks).
  EXPECT_GT(model.Score(3, 3), model.Score(3, 0));
}

// -- Propagation graphs -----------------------------------------------------------

TEST_F(ModelsTest, UserItemPropagationGraphIsSymmetric) {
  PropagationGraph prop = BuildUserItemPropagationGraph(ui_graph_);
  EXPECT_EQ(prop.num_nodes(), ui_graph_.num_users() + ui_graph_.num_items());
  EXPECT_EQ(prop.adjacency.num_edges(), 2 * ui_graph_.num_interactions());
  // Every user-item edge has its mirror.
  for (int64_t u = 0; u < ui_graph_.num_users(); ++u) {
    for (int64_t i : ui_graph_.ItemsOfUser(u)) {
      EXPECT_TRUE(prop.adjacency.HasEdge(prop.UserNode(u), prop.ItemNode(i)));
      EXPECT_TRUE(prop.adjacency.HasEdge(prop.ItemNode(i), prop.UserNode(u)));
    }
  }
  // Normalization weights are 1/sqrt(d_s d_t) in (0, 1].
  ASSERT_EQ(static_cast<int64_t>(prop.norm_weights->size()),
            prop.adjacency.num_edges());
  for (float w : *prop.norm_weights) {
    EXPECT_GT(w, 0.0f);
    EXPECT_LE(w, 1.0f);
  }
}

TEST_F(ModelsTest, KgatGraphContainsSceneEntities) {
  KgatGraph kg = BuildKgatGraph(ui_graph_, scene_graph_);
  EXPECT_EQ(kg.propagation.num_extra, scene_graph_.num_scenes());
  EXPECT_EQ(static_cast<int64_t>(kg.edge_relation.size()),
            kg.propagation.adjacency.num_edges());
  // At least one item-scene edge with the right relation tags.
  std::set<int32_t> relations(kg.edge_relation.begin(),
                              kg.edge_relation.end());
  EXPECT_TRUE(relations.count(KgatGraph::kRelationInteract));
  EXPECT_TRUE(relations.count(KgatGraph::kRelationBelongsTo));
  EXPECT_TRUE(relations.count(KgatGraph::kRelationIncludes));
}

// -- Neighbor capping ----------------------------------------------------------------

TEST(NeighborUtilTest, ReturnsAllWhenUnderCap) {
  std::vector<int64_t> neighbors{1, 2, 3};
  auto capped = CapNeighbors(neighbors, 10, nullptr);
  EXPECT_EQ(capped, neighbors);
}

TEST(NeighborUtilTest, DeterministicStrideWithoutRng) {
  std::vector<int64_t> neighbors;
  for (int64_t i = 0; i < 100; ++i) neighbors.push_back(i);
  auto a = CapNeighbors(neighbors, 10, nullptr);
  auto b = CapNeighbors(neighbors, 10, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 10u);
  // Spread across the range, not just a prefix.
  EXPECT_GT(a.back(), 50);
}

TEST(NeighborUtilTest, RandomSampleDistinctWithRng) {
  std::vector<int64_t> neighbors;
  for (int64_t i = 0; i < 50; ++i) neighbors.push_back(i * 2);
  Rng rng(13);
  auto sample = CapNeighbors(neighbors, 12, &rng);
  EXPECT_EQ(sample.size(), 12u);
  std::set<int64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 12u);
  for (int64_t v : sample) EXPECT_EQ(v % 2, 0);
}

// -- SpMM --------------------------------------------------------------------------

TEST(SpMMTest, MatchesDenseAggregation) {
  // adjacency: node0 -> {1, 2}; node1 -> {0}; node2 -> {}.
  CsrGraph adj = CsrGraph::FromEdges(
      3, 3, {{0, 1, 1.0f}, {0, 2, 0.5f}, {1, 0, 2.0f}});
  Tensor x = Tensor::FromVector(Shape({3, 2}), {1, 2, 3, 4, 5, 6},
                                /*requires_grad=*/true);
  Tensor out = SpMM(&adj, nullptr, x);
  // row0 = 1*[3,4] + 0.5*[5,6] = [5.5, 7]; row1 = 2*[1,2]; row2 = 0.
  EXPECT_FLOAT_EQ(out.at(0, 0), 5.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(2, 1), 0.0f);

  // Backward: d x = A^T g with g = all ones.
  Backward(Sum(out));
  // x row0 receives from node1 (w=2): 2; row1 from node0 (w=1): 1;
  // row2 from node0 (w=0.5): 0.5.
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 1.0f);
  EXPECT_FLOAT_EQ(x.grad()[4], 0.5f);
}

TEST(SpMMTest, CustomEdgeWeightsOverrideCsrWeights) {
  CsrGraph adj = CsrGraph::FromEdges(2, 2, {{0, 1, 100.0f}});
  auto weights = std::make_shared<const std::vector<float>>(
      std::vector<float>{0.25f});
  Tensor x = Tensor::FromVector(Shape({2, 1}), {3.0f, 8.0f});
  Tensor out = SpMM(&adj, weights, x);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2.0f);  // 0.25 * 8
}

}  // namespace
}  // namespace scenerec
