// Tests for the two-stage retrieval subsystem (src/retrieval/,
// docs/retrieval.md): exact-backend bitwise parity with
// TopNRecommendations, IVF recall@100 against the exact reference for
// every exporting factory model, live-vs-snapshot index build identity,
// int8 quantization error bounds, degenerate catalogs, and concurrent
// queries against one shared index (the TSan-critical sweep, via
// tools/check.sh).

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <system_error>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/top_n.h"
#include "graph/bipartite_graph.h"
#include "models/factory.h"
#include "nn/snapshot.h"
#include "retrieval/exact_index.h"
#include "retrieval/index_builder.h"
#include "retrieval/ivf_index.h"
#include "retrieval/quantize.h"
#include "retrieval/two_stage.h"

namespace scenerec {
namespace {

/// Factory models that export retrieval embeddings, with the fidelity each
/// declares (docs/retrieval.md).
struct SupportedModel {
  const char* name;
  RetrievalFidelity fidelity;
};

std::vector<SupportedModel> SupportingModels() {
  return {{"BPR-MF", RetrievalFidelity::kExactScores},
          {"GCMC", RetrievalFidelity::kExactScores},
          {"ItemPop", RetrievalFidelity::kExactScores},
          {"NGCF", RetrievalFidelity::kFaithfulRanking},
          {"KGAT", RetrievalFidelity::kFaithfulRanking},
          {"SceneRec", RetrievalFidelity::kProxy},
          {"SceneRec-noitem", RetrievalFidelity::kProxy},
          {"SceneRec-nosce", RetrievalFidelity::kProxy},
          {"SceneRec-noatt", RetrievalFidelity::kProxy}};
}

std::vector<std::string> NonSupportingModels() {
  return {"NCF", "CMN", "PinSAGE", "KGCN", "ItemRank"};
}

class RetrievalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A catalog wide enough that recall@100 is a real subset (not the
    // whole catalog) yet small enough to build every factory model.
    SyntheticConfig config;
    config.name = "retrieval-test";
    config.num_users = 60;
    config.num_items = 300;
    config.num_categories = 8;
    config.num_scenes = 5;
    config.sessions_per_user = 4;
    config.session_length = 5;
    auto dataset = GenerateSyntheticDataset(config, 99);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
    Rng rng(1);
    auto split = MakeLeaveOneOutSplit(dataset_, /*num_negatives=*/20, rng);
    ASSERT_TRUE(split.ok());
    split_ = std::move(split).value();
    train_graph_ = UserItemGraph::Build(dataset_.num_users, dataset_.num_items,
                                        split_.train);
    scene_graph_ = dataset_.BuildSceneGraph();
  }

  ModelContext Context() const {
    ModelContext context;
    context.user_item = &train_graph_;
    context.scene = &scene_graph_;
    return context;
  }

  static ModelFactoryConfig FactoryConfig() {
    ModelFactoryConfig config;
    config.embedding_dim = 16;
    config.ncf_dim = 8;
    config.max_neighbors = 8;
    return config;
  }

  std::unique_ptr<Recommender> Make(const std::string& name) {
    auto model = MakeRecommender(name, Context(), FactoryConfig());
    EXPECT_TRUE(model.ok()) << name << ": " << model.status().ToString();
    return model.ok() ? std::move(model).value() : nullptr;
  }

  static std::unique_ptr<ItemIndex> BuildIndex(Recommender& model,
                                               IndexKind kind) {
    IndexBuildConfig config;
    config.kind = kind;
    auto index = IndexBuilder(config).Build(model);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    return index.ok() ? std::move(index).value() : nullptr;
  }

  std::vector<int64_t> AllUsers() const {
    std::vector<int64_t> users(static_cast<size_t>(dataset_.num_users));
    for (size_t u = 0; u < users.size(); ++u) {
      users[u] = static_cast<int64_t>(u);
    }
    return users;
  }

  Dataset dataset_;
  LeaveOneOutSplit split_;
  UserItemGraph train_graph_;
  SceneGraph scene_graph_;
};

// -- Export support matrix -----------------------------------------------------

TEST_F(RetrievalTest, SupportMatrixAndDeclaredFidelity) {
  for (const SupportedModel& entry : SupportingModels()) {
    SCOPED_TRACE(entry.name);
    std::unique_ptr<Recommender> model = Make(entry.name);
    ASSERT_NE(model, nullptr);
    ASSERT_TRUE(model->SupportsRetrievalEmbeddings());
    RetrievalEmbeddings emb = model->ExportItemEmbeddings();
    EXPECT_EQ(emb.num_items, dataset_.num_items);
    EXPECT_EQ(emb.dim, model->RetrievalDim());
    EXPECT_EQ(static_cast<int>(emb.fidelity),
              static_cast<int>(entry.fidelity));
    ASSERT_NE(emb.items, nullptr);
  }
  for (const std::string& name : NonSupportingModels()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Recommender> model = Make(name);
    ASSERT_NE(model, nullptr);
    EXPECT_FALSE(model->SupportsRetrievalEmbeddings());
    auto index = IndexBuilder().Build(*model);
    EXPECT_FALSE(index.ok());
  }
}

// -- Exact backend: bitwise parity with serving --------------------------------

// Under kExactScores fidelity the exact backend's candidate scores must be
// bitwise equal to Score(user, item): Gemv row r IS the fixed-order
// kernels::Dot the model itself uses.
TEST_F(RetrievalTest, ExactIndexScoresBitwiseEqualModelScores) {
  for (const SupportedModel& entry : SupportingModels()) {
    if (entry.fidelity != RetrievalFidelity::kExactScores) continue;
    SCOPED_TRACE(entry.name);
    std::unique_ptr<Recommender> model = Make(entry.name);
    ASSERT_NE(model, nullptr);
    model->OnEvalBegin();
    std::unique_ptr<ItemIndex> index = BuildIndex(*model, IndexKind::kExact);
    ASSERT_NE(index, nullptr);
    std::vector<float> query(static_cast<size_t>(index->dim()));
    std::vector<RetrievalCandidate> out;
    for (int64_t user : {int64_t{0}, int64_t{31}, int64_t{59}}) {
      model->WriteRetrievalQuery(user, query);
      index->Search(query, 50, &out);
      ASSERT_EQ(out.size(), 50u);
      for (const RetrievalCandidate& c : out) {
        // EXPECT_EQ, not NEAR: candidate generation must not change
        // numerics for exact-score models.
        ASSERT_EQ(c.score, model->Score(user, c.item))
            << "user " << user << " item " << c.item;
      }
    }
  }
}

// The acceptance gate: the exact backend driven through TwoStageTopN with a
// full candidate budget returns the identical list (items AND scores) to
// the full-catalog TopNRecommendations path — for EVERY exporting model,
// because the rerank stage rescores with exact ScoreBlock.
TEST_F(RetrievalTest, TwoStageFullBudgetIdenticalToTopNForAllModels) {
  for (const SupportedModel& entry : SupportingModels()) {
    SCOPED_TRACE(entry.name);
    std::unique_ptr<Recommender> model = Make(entry.name);
    ASSERT_NE(model, nullptr);
    model->OnEvalBegin();
    std::unique_ptr<ItemIndex> index = BuildIndex(*model, IndexKind::kExact);
    ASSERT_NE(index, nullptr);
    for (int64_t user : {int64_t{0}, int64_t{17}, int64_t{59}}) {
      const auto want =
          TopNRecommendations(model->BlockScorer(), train_graph_, user, 10);
      const auto got = TwoStageTopN(*model, *index, train_graph_, user, 10,
                                    /*num_candidates=*/dataset_.num_items);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].item, want[i].item) << "rank " << i;
        EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
      }
    }
  }
}

// Int8 rescoring restores exact index scores: the sq8 exact backend's final
// scores are bitwise equal to the float backend's for the items both
// return.
TEST_F(RetrievalTest, Sq8RescoredScoresAreExact) {
  std::unique_ptr<Recommender> model = Make("BPR-MF");
  ASSERT_NE(model, nullptr);
  std::unique_ptr<ItemIndex> fp32 = BuildIndex(*model, IndexKind::kExact);
  std::unique_ptr<ItemIndex> sq8 = BuildIndex(*model, IndexKind::kExactSq8);
  ASSERT_NE(fp32, nullptr);
  ASSERT_NE(sq8, nullptr);
  std::vector<float> query(static_cast<size_t>(fp32->dim()));
  std::vector<RetrievalCandidate> want, got;
  SearchStats stats;
  for (int64_t user : {int64_t{3}, int64_t{42}}) {
    model->WriteRetrievalQuery(user, query);
    fp32->Search(query, 20, &want);
    sq8->Search(query, 20, &got, &stats);
    EXPECT_GE(stats.rescored, 20);
    std::vector<float> exact_by_item(
        static_cast<size_t>(dataset_.num_items),
        std::numeric_limits<float>::quiet_NaN());
    for (const RetrievalCandidate& c : want) {
      exact_by_item[static_cast<size_t>(c.item)] = c.score;
    }
    for (const RetrievalCandidate& c : got) {
      if (std::isnan(exact_by_item[static_cast<size_t>(c.item)])) continue;
      ASSERT_EQ(c.score, exact_by_item[static_cast<size_t>(c.item)])
          << "item " << c.item;
    }
  }
}

// -- IVF: recall against the exact reference -----------------------------------

// The quality protocol of the PR: for every exporting factory model, IVF
// reaches recall@100 >= 0.95 against the exact backend over all users.
// Everything is seeded, so this is deterministic.
//
// This fixture is the HARD regime for IVF — k is a third of the catalog
// and untrained embeddings have no cluster structure — so the documented
// unstructured-data setting nprobe ~= 0.8 * nlist applies (here 14 of 17;
// docs/retrieval.md). On clustered embeddings a small fixed nprobe
// suffices; bench_retrieval measures that regime at 50k items.
TEST_F(RetrievalTest, IvfRecallAt100AtLeast095ForAllModels) {
  const std::vector<int64_t> users = AllUsers();
  for (const SupportedModel& entry : SupportingModels()) {
    SCOPED_TRACE(entry.name);
    std::unique_ptr<Recommender> model = Make(entry.name);
    ASSERT_NE(model, nullptr);
    model->OnEvalBegin();
    std::unique_ptr<ItemIndex> exact = BuildIndex(*model, IndexKind::kExact);
    IndexBuildConfig config;
    config.kind = IndexKind::kIvf;
    config.nprobe = 14;
    auto ivf = IndexBuilder(config).Build(*model);
    ASSERT_TRUE(ivf.ok()) << ivf.status().ToString();
    ASSERT_NE(exact, nullptr);
    const double recall =
        RetrievalRecallAtK(*model, *ivf.value(), *exact, 100, users);
    EXPECT_GE(recall, 0.95) << entry.name << " recall@100 = " << recall;
  }
}

// Probing every list makes IVF exhaustive: recall 1.0 and the same
// candidate lists as the exact backend (scores are the same Dot).
TEST_F(RetrievalTest, IvfWithFullProbeMatchesExact) {
  std::unique_ptr<Recommender> model = Make("BPR-MF");
  ASSERT_NE(model, nullptr);
  RetrievalEmbeddings emb = model->ExportItemEmbeddings();
  IvfIndex::Options opt;
  opt.nprobe = dataset_.num_items;  // clamped to nlist
  IvfIndex ivf(std::move(emb), opt);
  EXPECT_EQ(ivf.nprobe(), ivf.nlist());
  std::unique_ptr<ItemIndex> exact = BuildIndex(*model, IndexKind::kExact);
  std::vector<float> query(static_cast<size_t>(exact->dim()));
  std::vector<RetrievalCandidate> want, got;
  SearchStats stats;
  for (int64_t user : {int64_t{5}, int64_t{28}}) {
    model->WriteRetrievalQuery(user, query);
    exact->Search(query, 30, &want);
    ivf.Search(query, 30, &got, &stats);
    EXPECT_EQ(stats.lists_probed, ivf.nlist());
    EXPECT_EQ(stats.items_scanned, dataset_.num_items);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].item, want[i].item) << "rank " << i;
      EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
    }
  }
}

// set_nprobe is the post-build recall/latency knob: more probes never scan
// fewer items, and the structure CSR is well-formed.
TEST_F(RetrievalTest, IvfStructureAndNprobeKnob) {
  std::unique_ptr<Recommender> model = Make("BPR-MF");
  ASSERT_NE(model, nullptr);
  IvfIndex ivf(model->ExportItemEmbeddings(), IvfIndex::Options{});
  ASSERT_GT(ivf.nlist(), 1);
  ASSERT_EQ(ivf.list_offsets().size(),
            static_cast<size_t>(ivf.nlist()) + 1);
  EXPECT_EQ(ivf.list_offsets().front(), 0);
  EXPECT_EQ(ivf.list_offsets().back(), dataset_.num_items);
  ASSERT_EQ(ivf.list_items().size(),
            static_cast<size_t>(dataset_.num_items));
  // Each list holds ascending ids; the union is the whole catalog.
  std::vector<bool> seen(static_cast<size_t>(dataset_.num_items), false);
  for (int64_t l = 0; l < ivf.nlist(); ++l) {
    for (int64_t i = ivf.list_offsets()[l]; i < ivf.list_offsets()[l + 1];
         ++i) {
      const int64_t item = ivf.list_items()[i];
      ASSERT_FALSE(seen[static_cast<size_t>(item)]);
      seen[static_cast<size_t>(item)] = true;
      if (i > ivf.list_offsets()[l]) {
        ASSERT_LT(ivf.list_items()[i - 1], item);
      }
    }
  }

  std::vector<float> query(static_cast<size_t>(ivf.dim()));
  model->WriteRetrievalQuery(7, query);
  std::vector<RetrievalCandidate> out;
  SearchStats narrow, wide;
  ivf.set_nprobe(1);
  ivf.Search(query, 10, &out, &narrow);
  EXPECT_EQ(narrow.lists_probed, 1);
  ivf.set_nprobe(ivf.nlist());
  ivf.Search(query, 10, &out, &wide);
  EXPECT_GE(wide.items_scanned, narrow.items_scanned);
}

// -- Build determinism: live model vs mmap'd snapshot --------------------------

TEST_F(RetrievalTest, LiveAndSnapshotBuildsAreBitIdentical) {
  char tmpl[] = "/tmp/scenerec_retr_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;
  const std::string path = dir + "/m.srsnap";

  std::unique_ptr<Recommender> live = Make("BPR-MF");
  ASSERT_NE(live, nullptr);
  ASSERT_TRUE(WriteSnapshot(*live, "BPR-MF", /*version=*/1, path).ok());

  IndexBuildConfig config;
  config.kind = IndexKind::kIvfSq8;
  const IndexBuilder builder(config);
  auto live_or = builder.Build(*live);
  ASSERT_TRUE(live_or.ok()) << live_or.status().ToString();
  std::unique_ptr<Recommender> mapped;
  auto snap_or =
      builder.BuildFromSnapshot(path, Context(), FactoryConfig(), &mapped);
  ASSERT_TRUE(snap_or.ok()) << snap_or.status().ToString();
  ASSERT_NE(mapped, nullptr);

  const auto* a = dynamic_cast<const IvfIndex*>(live_or.value().get());
  const auto* b = dynamic_cast<const IvfIndex*>(snap_or.value().get());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  // Same seeded k-means over the same parameters: every structure field is
  // bit-identical, down to the int8 codes.
  ASSERT_EQ(a->nlist(), b->nlist());
  ASSERT_EQ(a->centroids().size(), b->centroids().size());
  for (size_t i = 0; i < a->centroids().size(); ++i) {
    ASSERT_EQ(a->centroids()[i], b->centroids()[i]) << "centroid elt " << i;
  }
  ASSERT_TRUE(std::equal(a->list_offsets().begin(), a->list_offsets().end(),
                         b->list_offsets().begin()));
  ASSERT_TRUE(std::equal(a->list_items().begin(), a->list_items().end(),
                         b->list_items().begin()));
  ASSERT_NE(a->quantizer(), nullptr);
  ASSERT_NE(b->quantizer(), nullptr);
  EXPECT_EQ(a->quantizer()->codes(), b->quantizer()->codes());
  EXPECT_EQ(a->quantizer()->scales(), b->quantizer()->scales());
  EXPECT_EQ(a->quantizer()->zeros(), b->quantizer()->zeros());

  // And the snapshot-backed index serves the same results.
  std::vector<float> query(static_cast<size_t>(a->dim()));
  live->WriteRetrievalQuery(11, query);
  std::vector<RetrievalCandidate> want, got;
  a->Search(query, 25, &want);
  b->Search(query, 25, &got);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(want[i].item, got[i].item);
    EXPECT_EQ(want[i].score, got[i].score);
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// -- Concurrency: one index, many querying threads -----------------------------

// Search is const and allocation-local; a single index must serve
// concurrent queries with results identical to the serial ones. This is
// the TSan target.
TEST_F(RetrievalTest, ConcurrentSearchesMatchSerialResults) {
  std::unique_ptr<Recommender> model = Make("BPR-MF");
  ASSERT_NE(model, nullptr);
  std::unique_ptr<ItemIndex> index = BuildIndex(*model, IndexKind::kIvfSq8);
  ASSERT_NE(index, nullptr);

  const int64_t num_users = dataset_.num_users;
  std::vector<std::vector<float>> queries(static_cast<size_t>(num_users));
  std::vector<std::vector<RetrievalCandidate>> serial(
      static_cast<size_t>(num_users));
  for (int64_t u = 0; u < num_users; ++u) {
    queries[u].resize(static_cast<size_t>(index->dim()));
    model->WriteRetrievalQuery(u, queries[u]);
    index->Search(queries[u], 20, &serial[u]);
  }

  const int64_t kRounds = 4;
  std::vector<std::vector<RetrievalCandidate>> parallel(
      static_cast<size_t>(num_users * kRounds));
  ThreadPool pool(4);
  pool.ParallelFor(num_users * kRounds, /*grain=*/1,
                   [&](int64_t begin, int64_t end) {
                     for (int64_t i = begin; i < end; ++i) {
                       const int64_t u = i % num_users;
                       index->Search(queries[u], 20, &parallel[i]);
                     }
                   });
  for (int64_t i = 0; i < num_users * kRounds; ++i) {
    const auto& want = serial[i % num_users];
    const auto& got = parallel[i];
    ASSERT_EQ(got.size(), want.size()) << "query " << i;
    for (size_t r = 0; r < want.size(); ++r) {
      ASSERT_EQ(got[r].item, want[r].item) << "query " << i << " rank " << r;
      ASSERT_EQ(got[r].score, want[r].score);
    }
  }
}

// -- Int8 quantization bounds --------------------------------------------------

TEST(Sq8MatrixTest, RoundTripErrorWithinHalfScale) {
  const int64_t rows = 50, dim = 16;
  Rng rng(7);
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (float& v : data) {
    v = static_cast<float>(rng.NextDouble() * 4.0 - 2.0);
  }
  // A constant column exercises the degenerate-dimension path (scale 1.0).
  for (int64_t r = 0; r < rows; ++r) {
    data[static_cast<size_t>(r * dim + 5)] = 0.25f;
  }
  Sq8Matrix m(data.data(), rows, dim);
  ASSERT_EQ(m.num_rows(), rows);
  ASSERT_EQ(m.dim(), dim);
  EXPECT_EQ(m.scales()[5], 1.0f);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t d = 0; d < dim; ++d) {
      const float v = data[static_cast<size_t>(r * dim + d)];
      const float bound = m.scales()[static_cast<size_t>(d)] * 0.5f + 1e-5f;
      EXPECT_LE(std::abs(m.Dequantized(r, d) - v), bound)
          << "row " << r << " dim " << d;
    }
  }
}

TEST(Sq8MatrixTest, ApproxScoreWithinAnalyticBound) {
  const int64_t rows = 40, dim = 24;
  Rng rng(11);
  std::vector<float> data(static_cast<size_t>(rows * dim));
  for (float& v : data) {
    v = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  }
  Sq8Matrix m(data.data(), rows, dim);
  std::vector<float> query(static_cast<size_t>(dim));
  for (float& v : query) {
    v = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
  }
  const Sq8Matrix::EncodedQuery eq = m.EncodeQuery(query);

  // Error decomposition (quantize.h): item-code error contributes at most
  // sum_d |q_d| s_d / 2; query-code error at most qscale/2 * sum_d code_d.
  for (int64_t r = 0; r < rows; ++r) {
    double exact = 0.0;
    double bound = 1e-4;
    for (int64_t d = 0; d < dim; ++d) {
      exact += static_cast<double>(query[static_cast<size_t>(d)]) *
               data[static_cast<size_t>(r * dim + d)];
      bound += 0.5 * std::abs(query[static_cast<size_t>(d)]) *
               m.scales()[static_cast<size_t>(d)];
      bound += 0.5 * static_cast<double>(eq.scale) *
               m.codes()[static_cast<size_t>(r * dim + d)];
    }
    EXPECT_NEAR(m.Score(eq, r), exact, bound) << "row " << r;
  }

  // The batched scan is the same arithmetic as the per-row score.
  std::vector<float> batched(static_cast<size_t>(rows));
  m.ScoreRows(eq, 0, rows, batched.data());
  for (int64_t r = 0; r < rows; ++r) {
    EXPECT_EQ(batched[static_cast<size_t>(r)], m.Score(eq, r)) << "row " << r;
  }
}

// -- Degenerate inputs ---------------------------------------------------------

TEST_F(RetrievalTest, CatalogSmallerThanKReturnsWholeCatalog) {
  std::unique_ptr<Recommender> model = Make("BPR-MF");
  ASSERT_NE(model, nullptr);
  for (IndexKind kind : {IndexKind::kExact, IndexKind::kExactSq8,
                         IndexKind::kIvf, IndexKind::kIvfSq8}) {
    SCOPED_TRACE(IndexKindName(kind));
    std::unique_ptr<ItemIndex> index = BuildIndex(*model, kind);
    ASSERT_NE(index, nullptr);
    std::vector<float> query(static_cast<size_t>(index->dim()));
    model->WriteRetrievalQuery(0, query);
    std::vector<RetrievalCandidate> out;
    index->Search(query, 100000, &out);
    if (kind == IndexKind::kExact || kind == IndexKind::kExactSq8) {
      EXPECT_EQ(out.size(), static_cast<size_t>(dataset_.num_items));
    } else {
      // IVF still only scans the probed lists.
      EXPECT_LE(out.size(), static_cast<size_t>(dataset_.num_items));
      EXPECT_FALSE(out.empty());
    }
    // Strict serving order either way.
    for (size_t i = 1; i < out.size(); ++i) {
      ASSERT_TRUE(BetterCandidate(out[i - 1], out[i])) << "rank " << i;
    }
  }
}

TEST(RetrievalEdgeTest, EmptyEmbeddingsYieldEmptyResults) {
  RetrievalEmbeddings empty;
  empty.dim = 4;
  ExactIndex exact(std::move(empty));
  std::vector<float> query(4, 1.0f);
  std::vector<RetrievalCandidate> out = {{1, 2.0f}};
  exact.Search(query, 10, &out);
  EXPECT_TRUE(out.empty());

  RetrievalEmbeddings empty2;
  empty2.dim = 4;
  IvfIndex ivf(std::move(empty2), IvfIndex::Options{});
  out = {{1, 2.0f}};
  ivf.Search(query, 10, &out);
  EXPECT_TRUE(out.empty());
}

TEST_F(RetrievalTest, TwoStageWithFullyInteractedUser) {
  std::unique_ptr<Recommender> model = Make("BPR-MF");
  ASSERT_NE(model, nullptr);
  std::unique_ptr<ItemIndex> index = BuildIndex(*model, IndexKind::kExact);
  ASSERT_NE(index, nullptr);

  // User 0 interacted with everything except item 3: the filter leaves
  // exactly one candidate.
  std::vector<Interaction> interactions;
  for (int64_t item = 0; item < dataset_.num_items; ++item) {
    if (item != 3) interactions.push_back({0, item});
  }
  UserItemGraph all_but_one =
      UserItemGraph::Build(dataset_.num_users, dataset_.num_items,
                           interactions);
  auto recs = TwoStageTopN(*model, *index, all_but_one, 0, 10, 50);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].item, 3);
  EXPECT_EQ(recs[0].score, model->Score(0, 3));

  // ... and with every item interacted, the result is empty.
  interactions.push_back({0, 3});
  UserItemGraph all = UserItemGraph::Build(
      dataset_.num_users, dataset_.num_items, interactions);
  EXPECT_TRUE(TwoStageTopN(*model, *index, all, 0, 10, 50).empty());
}

TEST_F(RetrievalTest, TwoStageStatsAccounting) {
  std::unique_ptr<Recommender> model = Make("BPR-MF");
  ASSERT_NE(model, nullptr);
  std::unique_ptr<ItemIndex> index = BuildIndex(*model, IndexKind::kIvf);
  ASSERT_NE(index, nullptr);
  SearchStats stats;
  const auto recs =
      TwoStageTopN(*model, *index, train_graph_, 2, 10, 64, &stats);
  EXPECT_FALSE(recs.empty());
  EXPECT_GT(stats.lists_probed, 0);
  EXPECT_GT(stats.items_scanned, 0);
  EXPECT_GT(stats.rescored, 0);
  EXPECT_LE(stats.rescored, 64);
}

// -- MultiSearch: the batched sweep must be invisible in results ---------------

void ExpectSameCandidates(const std::vector<RetrievalCandidate>& got,
                          const std::vector<RetrievalCandidate>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].item, want[i].item) << "rank " << i;
    // EXPECT_EQ, not NEAR: batching queries must not change a bit.
    ASSERT_EQ(got[i].score, want[i].score) << "rank " << i;
  }
}

// Every backend: (*outs)[q] must be bitwise Search(queries[q], ks[q]) —
// the exact backends through their shared-sweep override (GemvMulti tiles
// plus bounded selection), IVF through the base-class per-query loop.
// BPR-MF exports an item bias, so the biased offer path is covered too;
// mixed ks cover the bounded heap at k=1, mid-size and k > catalog.
TEST_F(RetrievalTest, MultiSearchBitwiseEqualsSearchForAllBackends) {
  std::unique_ptr<Recommender> model = Make("BPR-MF");
  ASSERT_NE(model, nullptr);
  model->OnEvalBegin();
  const std::vector<int64_t> users = {0, 7, 13, 21, 34, 42, 55, 58, 59};
  const std::vector<int64_t> ks = {1, 5, 50, 299, 300, 100000, 17, 2, 64};
  for (IndexKind kind : {IndexKind::kExact, IndexKind::kExactSq8,
                         IndexKind::kIvf, IndexKind::kIvfSq8}) {
    SCOPED_TRACE(IndexKindName(kind));
    std::unique_ptr<ItemIndex> index = BuildIndex(*model, kind);
    ASSERT_NE(index, nullptr);
    const int64_t dim = index->dim();
    std::vector<float> queries(users.size() * static_cast<size_t>(dim));
    for (size_t q = 0; q < users.size(); ++q) {
      model->WriteRetrievalQuery(
          users[q], std::span<float>(queries.data() + q * dim,
                                     static_cast<size_t>(dim)));
    }
    std::vector<std::vector<RetrievalCandidate>> outs;
    std::vector<SearchStats> stats;
    index->MultiSearch(queries, ks, &outs, &stats);
    ASSERT_EQ(outs.size(), users.size());
    ASSERT_EQ(stats.size(), users.size());
    std::vector<RetrievalCandidate> want;
    SearchStats want_stats;
    for (size_t q = 0; q < users.size(); ++q) {
      SCOPED_TRACE("query " + std::to_string(q));
      index->Search(std::span<const float>(queries.data() + q * dim,
                                           static_cast<size_t>(dim)),
                    ks[q], &want, &want_stats);
      ExpectSameCandidates(outs[q], want);
      EXPECT_EQ(stats[q].lists_probed, want_stats.lists_probed);
      EXPECT_EQ(stats[q].items_scanned, want_stats.items_scanned);
      EXPECT_EQ(stats[q].rescored, want_stats.rescored);
    }
  }
}

TEST_F(RetrievalTest, MultiSearchEmptyBatchAndReusedOutputs) {
  std::unique_ptr<Recommender> model = Make("BPR-MF");
  ASSERT_NE(model, nullptr);
  std::unique_ptr<ItemIndex> index = BuildIndex(*model, IndexKind::kExact);
  ASSERT_NE(index, nullptr);
  // Stale outputs must be cleared/resized, not appended to.
  std::vector<std::vector<RetrievalCandidate>> outs(3);
  outs[0] = {{1, 2.0f}};
  index->MultiSearch({}, {}, &outs);
  EXPECT_TRUE(outs.empty());
  std::vector<float> query(static_cast<size_t>(index->dim()));
  model->WriteRetrievalQuery(0, query);
  outs.assign(2, {{9, 9.0f}});
  const int64_t ks[] = {4};
  index->MultiSearch(query, ks, &outs);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].size(), 4u);
}

// Stage 1 of the serving daemon's coalesced batches: each user's candidate
// list from the one-sweep batch must be exactly the per-user list —
// including duplicate users within one batch.
TEST_F(RetrievalTest, RetrieveCandidatesBatchMatchesPerUser) {
  std::unique_ptr<Recommender> model = Make("BPR-MF");
  ASSERT_NE(model, nullptr);
  model->OnEvalBegin();
  for (IndexKind kind : {IndexKind::kExact, IndexKind::kIvf}) {
    SCOPED_TRACE(IndexKindName(kind));
    std::unique_ptr<ItemIndex> index = BuildIndex(*model, kind);
    ASSERT_NE(index, nullptr);
    std::vector<int64_t> users = AllUsers();
    users.push_back(0);   // duplicates are scored independently
    users.push_back(42);
    const auto batch = RetrieveCandidatesBatch(*model, *index, train_graph_,
                                               users, /*num_candidates=*/32);
    ASSERT_EQ(batch.size(), users.size());
    for (size_t i = 0; i < users.size(); ++i) {
      const auto want = RetrieveCandidates(*model, *index, train_graph_,
                                           users[i], 32);
      EXPECT_EQ(batch[i], want) << "user " << users[i];
    }
  }
}

}  // namespace
}  // namespace scenerec
