#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/scene_mining.h"
#include "data/synthetic.h"

namespace scenerec {
namespace {

// A planted two-cluster co-occurrence graph: categories {0,1,2} and {3,4,5}
// strongly intra-connected, weak (or no) cross edges.
std::vector<Edge> TwoClusters(float cross_weight = 0.0f) {
  std::vector<Edge> edges{
      {0, 1, 10.0f}, {1, 2, 10.0f}, {0, 2, 10.0f},
      {3, 4, 10.0f}, {4, 5, 10.0f}, {3, 5, 10.0f},
  };
  if (cross_weight > 0.0f) edges.push_back({2, 3, cross_weight});
  return edges;
}

TEST(SceneMiningTest, RecoversPlantedClusters) {
  SceneMiningConfig config;
  auto scenes = MineScenes(6, TwoClusters(), config);
  ASSERT_TRUE(scenes.ok()) << scenes.status().ToString();
  // Both planted communities should appear as scenes.
  std::set<std::vector<int64_t>> found(scenes->begin(), scenes->end());
  EXPECT_TRUE(found.count({0, 1, 2}))
      << "scenes: " << scenes->size();
  EXPECT_TRUE(found.count({3, 4, 5}));
}

TEST(SceneMiningTest, WeakBridgeDoesNotMergeClusters) {
  SceneMiningConfig config;
  auto scenes = MineScenes(6, TwoClusters(/*cross_weight=*/0.5f), config);
  ASSERT_TRUE(scenes.ok());
  // No mined scene should span both clusters completely.
  for (const auto& members : *scenes) {
    const bool has_left =
        std::find(members.begin(), members.end(), 0) != members.end();
    const bool has_right =
        std::find(members.begin(), members.end(), 5) != members.end();
    EXPECT_FALSE(has_left && has_right)
        << "merged scene of size " << members.size();
  }
}

TEST(SceneMiningTest, OverlappingCategoryJoinsBothScenes) {
  // Category 6 ("Batteries") connects strongly to both clusters.
  std::vector<Edge> edges = TwoClusters();
  edges.push_back({6, 0, 8.0f});
  edges.push_back({6, 1, 8.0f});
  edges.push_back({6, 3, 8.0f});
  edges.push_back({6, 4, 8.0f});
  SceneMiningConfig config;
  auto scenes = MineScenes(7, edges, config);
  ASSERT_TRUE(scenes.ok());
  int membership = 0;
  for (const auto& members : *scenes) {
    membership +=
        std::find(members.begin(), members.end(), 6) != members.end();
  }
  EXPECT_GE(membership, 2) << "overlapping category should join >= 2 scenes";
}

TEST(SceneMiningTest, DeterministicAcrossCalls) {
  SceneMiningConfig config;
  auto a = MineScenes(6, TwoClusters(1.0f), config);
  auto b = MineScenes(6, TwoClusters(1.0f), config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SceneMiningTest, SizeFiltersApply) {
  SceneMiningConfig config;
  config.min_scene_size = 4;  // planted clusters have size 3
  auto scenes = MineScenes(6, TwoClusters(), config);
  ASSERT_TRUE(scenes.ok());
  for (const auto& members : *scenes) {
    EXPECT_GE(members.size(), 4u);
  }
}

TEST(SceneMiningTest, RejectsBadInputs) {
  SceneMiningConfig config;
  EXPECT_FALSE(MineScenes(0, {}, config).ok());
  EXPECT_FALSE(MineScenes(3, {{0, 7, 1.0f}}, config).ok());
  EXPECT_FALSE(MineScenes(3, {{0, 1, -1.0f}}, config).ok());
  SceneMiningConfig bad = config;
  bad.expansion_threshold = 0.0;
  EXPECT_FALSE(MineScenes(3, {{0, 1, 1.0f}}, bad).ok());
  bad = config;
  bad.max_scene_size = 0;
  EXPECT_FALSE(MineScenes(3, {{0, 1, 1.0f}}, bad).ok());
  bad = config;
  bad.seed_weight_floor = 1.5;
  EXPECT_FALSE(MineScenes(3, {{0, 1, 1.0f}}, bad).ok());
  bad = config;
  bad.max_memberships_per_category = 0;
  EXPECT_FALSE(MineScenes(3, {{0, 1, 1.0f}}, bad).ok());
}

TEST(SceneMiningTest, MinedScenesOnSyntheticDataAreValid) {
  // End to end: mine scenes from a synthetic dataset's category co-view
  // layer and install them; the result must be a valid dataset whose scene
  // layer still covers every category.
  SyntheticConfig config;
  config.num_users = 30;
  config.num_items = 200;
  config.num_categories = 15;
  config.num_scenes = 6;
  config.sessions_per_user = 6;
  auto dataset = GenerateSyntheticDataset(config, 3);
  ASSERT_TRUE(dataset.ok());

  SceneMiningConfig mining;
  auto scenes = MineScenes(dataset->num_categories,
                           dataset->category_category_edges, mining);
  ASSERT_TRUE(scenes.ok());
  ASSERT_FALSE(scenes->empty());

  Dataset mined = dataset.value();
  ASSERT_TRUE(ApplyMinedScenes(*scenes, dataset->category_category_edges,
                               &mined)
                  .ok());
  EXPECT_EQ(mined.num_scenes, static_cast<int64_t>(scenes->size()));
  EXPECT_TRUE(mined.Validate().ok());
  // Every category belongs to at least one scene.
  std::vector<bool> covered(static_cast<size_t>(mined.num_categories), false);
  for (const Edge& e : mined.category_scene_edges) {
    covered[static_cast<size_t>(e.src)] = true;
  }
  for (bool c : covered) EXPECT_TRUE(c);
  // The scene graph built from mined scenes validates too.
  EXPECT_TRUE(mined.BuildSceneGraph().Validate().ok());
}

TEST(SceneMiningTest, ApplyRejectsEmptyAndInvalid) {
  SyntheticConfig config;
  config.num_users = 20;
  config.num_items = 100;
  config.num_categories = 8;
  config.num_scenes = 4;
  auto dataset = GenerateSyntheticDataset(config, 5);
  ASSERT_TRUE(dataset.ok());
  Dataset copy = dataset.value();
  EXPECT_FALSE(ApplyMinedScenes({}, {}, &copy).ok());
  EXPECT_FALSE(ApplyMinedScenes({{0, 99}}, {}, &copy).ok());
}

}  // namespace
}  // namespace scenerec
