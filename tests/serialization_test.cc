#include <cstdio>
#include <cstdlib>
#include <unistd.h>

#include <gtest/gtest.h>

#include "nn/embedding.h"
#include "nn/mlp.h"
#include "nn/serialization.h"
#include "tensor/ops.h"
#include "tests/test_util.h"

namespace scenerec {
namespace {

std::string TempPath() {
  char path_template[] = "/tmp/scenerec_ckpt_XXXXXX";
  const int fd = ::mkstemp(path_template);
  EXPECT_GE(fd, 0);
  if (fd >= 0) ::close(fd);
  return path_template;
}

TEST(SerializationTest, RoundTripRestoresValues) {
  Rng rng(1);
  Mlp original({4, 8, 2}, Activation::kTanh, Activation::kNone, rng);
  const std::string path = TempPath();
  ASSERT_TRUE(SaveCheckpoint(original, "mlp", path).ok());

  Rng rng2(999);  // different init
  Mlp restored({4, 8, 2}, Activation::kTanh, Activation::kNone, rng2);
  Tensor x = Tensor::RandomUniform(Shape({4}), -1, 1, rng);
  // Outputs differ before loading, match after.
  const auto before = restored.Forward(x).value();
  const auto want = original.Forward(x).value();
  bool identical_before = true;
  for (size_t i = 0; i < want.size(); ++i) {
    identical_before = identical_before && before[i] == want[i];
  }
  EXPECT_FALSE(identical_before);

  ASSERT_TRUE(LoadCheckpoint(restored, "mlp", path).ok());
  testing::ExpectVectorNear(restored.Forward(x).value(), want, 1e-7f);
  ::remove(path.c_str());
}

TEST(SerializationTest, LargeEmbeddingRoundTrip) {
  Rng rng(2);
  Embedding original(5000, 32, rng);
  const std::string path = TempPath();
  ASSERT_TRUE(SaveCheckpoint(original, "emb", path).ok());
  Rng rng2(3);
  Embedding restored(5000, 32, rng2);
  ASSERT_TRUE(LoadCheckpoint(restored, "emb", path).ok());
  EXPECT_EQ(restored.table().value(), original.table().value());
  ::remove(path.c_str());
}

TEST(SerializationTest, TagMismatchRejected) {
  Rng rng(4);
  Embedding module(10, 4, rng);
  const std::string path = TempPath();
  ASSERT_TRUE(SaveCheckpoint(module, "model-a", path).ok());
  Status s = LoadCheckpoint(module, "model-b", path);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  ::remove(path.c_str());
}

TEST(SerializationTest, ShapeMismatchRejected) {
  Rng rng(5);
  Embedding small(10, 4, rng);
  Embedding big(10, 8, rng);
  const std::string path = TempPath();
  ASSERT_TRUE(SaveCheckpoint(small, "emb", path).ok());
  Status s = LoadCheckpoint(big, "emb", path);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  ::remove(path.c_str());
}

TEST(SerializationTest, ParameterCountMismatchRejected) {
  Rng rng(6);
  Mlp one_layer({4, 2}, Activation::kNone, Activation::kNone, rng);
  Mlp two_layers({4, 3, 2}, Activation::kNone, Activation::kNone, rng);
  const std::string path = TempPath();
  ASSERT_TRUE(SaveCheckpoint(one_layer, "mlp", path).ok());
  EXPECT_FALSE(LoadCheckpoint(two_layers, "mlp", path).ok());
  ::remove(path.c_str());
}

TEST(SerializationTest, GarbageFileRejected) {
  const std::string path = TempPath();
  {
    FILE* f = ::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    ::fputs("definitely not a checkpoint", f);
    ::fclose(f);
  }
  Rng rng(7);
  Embedding module(5, 2, rng);
  Status s = LoadCheckpoint(module, "emb", path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  ::remove(path.c_str());
}

// Error messages must identify WHICH tensor failed and in WHICH file, so a
// bad checkpoint in a directory of dozens is diagnosable from the status
// alone.
TEST(SerializationTest, ShapeMismatchNamesTensorIndexAndPath) {
  Rng rng(20);
  Mlp saved({4, 8, 2}, Activation::kTanh, Activation::kNone, rng);
  Mlp wider({4, 16, 2}, Activation::kTanh, Activation::kNone, rng);
  const std::string path = TempPath();
  ASSERT_TRUE(SaveCheckpoint(saved, "mlp", path).ok());
  Status s = LoadCheckpoint(wider, "mlp", path);
  ASSERT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("tensor 0"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find(path), std::string::npos) << s.message();
  ::remove(path.c_str());
}

TEST(SerializationTest, TagMismatchNamesPath) {
  Rng rng(21);
  Embedding module(10, 4, rng);
  const std::string path = TempPath();
  ASSERT_TRUE(SaveCheckpoint(module, "model-a", path).ok());
  Status s = LoadCheckpoint(module, "model-b", path);
  ASSERT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find(path), std::string::npos) << s.message();
  ::remove(path.c_str());
}

// SaveCheckpoint publishes atomically: when the write cannot complete (the
// target directory does not exist), nothing appears under the final name.
TEST(SerializationTest, FailedSaveLeavesNoPartialFile) {
  Rng rng(22);
  Embedding module(10, 4, rng);
  const std::string path = "/tmp/scenerec_no_such_dir/deep/ckpt";
  ASSERT_FALSE(SaveCheckpoint(module, "emb", path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

TEST(SerializationTest, MissingFileRejected) {
  Rng rng(8);
  Embedding module(5, 2, rng);
  Status s = LoadCheckpoint(module, "emb", "/tmp/scenerec_no_such_ckpt");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(SerializationTest, TruncatedFileRejected) {
  Rng rng(9);
  Embedding module(100, 16, rng);
  const std::string path = TempPath();
  ASSERT_TRUE(SaveCheckpoint(module, "emb", path).ok());
  // Truncate the file to half its size.
  std::FILE* f = ::fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  ::fseek(f, 0, SEEK_END);
  const long size = ::ftell(f);
  ::fclose(f);
  ASSERT_EQ(::truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(LoadCheckpoint(module, "emb", path).ok());
  ::remove(path.c_str());
}

}  // namespace
}  // namespace scenerec
