// Tests for the parallel execution layer: ThreadPool semantics, concurrent
// autograd accumulation, sharded training vs. serial training, and parallel
// vs. serial evaluation equivalence.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/sampler.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/bpr_mf.h"
#include "models/scene_rec.h"
#include "tensor/ops.h"
#include "train/grid_search.h"
#include "train/trainer.h"

namespace scenerec {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit tests
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, /*grain=*/7, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroIterationsRunsNothing) {
  ThreadPool pool(4);
  std::atomic<bool> ran{false};
  pool.ParallelFor(0, 1, [&](int64_t, int64_t) { ran = true; });
  EXPECT_FALSE(ran.load());
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  int64_t sum = 0;  // not atomic: single-threaded by contract
  pool.ParallelFor(100, 10, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 100 * 99 / 2);
}

TEST(ThreadPoolTest, PropagatesChunkException) {
  ThreadPool pool(4);
  std::atomic<int64_t> executed{0};
  try {
    pool.ParallelFor(64, 1, [&](int64_t begin, int64_t end) {
      executed.fetch_add(end - begin);
      if (begin <= 13 && 13 < end) throw std::runtime_error("chunk failure");
    });
    FAIL() << "ParallelFor swallowed the chunk exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk failure");
  }
  // The contract promises the loop never leaves work half-dispatched.
  EXPECT_EQ(executed.load(), 64);
  // The pool is still usable after an exception.
  std::atomic<int64_t> after{0};
  pool.ParallelFor(10, 1,
                   [&](int64_t b, int64_t e) { after.fetch_add(e - b); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(8, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      std::atomic<int64_t> local{0};
      // On a worker this runs inline; on the caller lane it shares the pool.
      pool.ParallelFor(10, 1, [&](int64_t b, int64_t e) {
        local.fetch_add(e - b);
      });
      total.fetch_add(local.load());
    }
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(ThreadPoolTest, InWorkerThreadFalseOutsidePools) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  ThreadPool pool(2);
  pool.ParallelFor(4, 1, [](int64_t, int64_t) {});
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1);
  EXPECT_EQ(ResolveThreadCount(0), ThreadPool::HardwareConcurrency());
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(5), 5);
}

TEST(ThreadPoolTest, DefaultPoolFollowsConfiguredSize) {
  SetDefaultThreadPoolThreads(3);
  EXPECT_EQ(DefaultThreadPool()->num_threads(), 3);
  SetDefaultThreadPoolThreads(1);
  EXPECT_EQ(DefaultThreadPool()->num_threads(), 1);
}

// ---------------------------------------------------------------------------
// Concurrent autograd accumulation
// ---------------------------------------------------------------------------

// Many independent graphs run Backward concurrently into one shared leaf;
// the accumulated gradient must equal the serial sum (the per-use
// contributions are identical floats, so the sum is order-independent here).
TEST(ParallelAutogradTest, ConcurrentBackwardMatchesSerial) {
  Rng rng(7);
  Tensor w = Tensor::RandomUniform({8, 4}, -1.0f, 1.0f, rng,
                                   /*requires_grad=*/true);
  auto loss_for = [&w](int64_t g) {
    Tensor r = Row(w, g % 8);
    return Sum(Mul(r, r));
  };
  constexpr int64_t kGraphs = 32;

  w.ZeroGrad();
  for (int64_t g = 0; g < kGraphs; ++g) Backward(loss_for(g));
  const std::vector<float> serial = w.grad();

  w.ZeroGrad();
  ThreadPool pool(4);
  pool.ParallelFor(kGraphs, 1, [&](int64_t begin, int64_t end) {
    for (int64_t g = begin; g < end; ++g) Backward(loss_for(g));
  });
  ASSERT_EQ(w.grad().size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_NEAR(w.grad()[i], serial[i], 1e-5f) << "component " << i;
  }
}

// ---------------------------------------------------------------------------
// Training / evaluation fixture (mirrors train_test.cc)
// ---------------------------------------------------------------------------

class ParallelTrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.name = "parallel-test";
    config.num_users = 40;
    config.num_items = 150;
    config.num_categories = 10;
    config.num_scenes = 6;
    config.sessions_per_user = 5;
    config.session_length = 6;
    auto dataset = GenerateSyntheticDataset(config, 77);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
    Rng rng(1);
    auto split = MakeLeaveOneOutSplit(dataset_, /*num_negatives=*/50, rng);
    ASSERT_TRUE(split.ok());
    split_ = std::move(split).value();
    train_graph_ = UserItemGraph::Build(dataset_.num_users, dataset_.num_items,
                                        split_.train);
    scene_graph_ = dataset_.BuildSceneGraph();
  }

  Dataset dataset_;
  LeaveOneOutSplit split_;
  UserItemGraph train_graph_;
  SceneGraph scene_graph_;
};

TEST_F(ParallelTrainTest, ConfigRejectsNegativeThreads) {
  TrainConfig config;
  config.threads = -1;
  EXPECT_FALSE(config.Validate().ok());
  config.threads = 0;  // 0 = hardware concurrency is valid
  EXPECT_TRUE(config.Validate().ok());
}

// Sharded training sees the exact same batches as serial training (the shard
// generators derive from an independent stream), so for a sampling-free model
// like BPR-MF the two runs differ only by float summation order. Losses and
// metrics must agree within a small tolerance.
TEST_F(ParallelTrainTest, ShardedTrainingMatchesSerialWithinTolerance) {
  auto run = [&](int64_t threads) {
    Rng rng(2);
    BprMf model(dataset_.num_users, dataset_.num_items, 16, rng);
    TrainConfig config;
    config.epochs = 4;
    config.learning_rate = 5e-3f;
    config.patience = 0;
    config.threads = threads;
    auto result = TrainAndEvaluate(model, split_, train_graph_, config);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  };
  const TrainResult serial = run(1);
  const TrainResult parallel = run(4);

  ASSERT_EQ(serial.epoch_losses.size(), parallel.epoch_losses.size());
  for (size_t i = 0; i < serial.epoch_losses.size(); ++i) {
    EXPECT_NEAR(serial.epoch_losses[i], parallel.epoch_losses[i],
                0.02 * serial.epoch_losses[i] + 1e-3)
        << "epoch " << i;
  }
  EXPECT_NEAR(serial.test.ndcg, parallel.test.ndcg, 0.05);
  EXPECT_NEAR(serial.test.hr, parallel.test.hr, 0.08);
  EXPECT_NEAR(serial.test.mrr, parallel.test.mrr, 0.05);
}

// Parallel evaluation reduces per-instance metrics in instance order, so it
// is bitwise identical to the serial protocol.
TEST_F(ParallelTrainTest, ParallelEvaluationIsBitwiseIdentical) {
  Rng rng(3);
  BprMf model(dataset_.num_users, dataset_.num_items, 16, rng);
  model.OnEvalBegin();
  const RankingMetrics serial =
      EvaluateRanking(model.Scorer(), split_.test, 10, nullptr);
  const RankingMetrics serial_full = EvaluateFullRanking(
      model.Scorer(), train_graph_, split_.test, 10, nullptr);

  ThreadPool pool(4);
  ASSERT_TRUE(model.PrepareParallelScoring(pool));
  const RankingMetrics parallel =
      EvaluateRanking(model.Scorer(), split_.test, 10, &pool);
  const RankingMetrics parallel_full = EvaluateFullRanking(
      model.Scorer(), train_graph_, split_.test, 10, &pool);

  EXPECT_DOUBLE_EQ(serial.hr, parallel.hr);
  EXPECT_DOUBLE_EQ(serial.ndcg, parallel.ndcg);
  EXPECT_DOUBLE_EQ(serial.mrr, parallel.mrr);
  EXPECT_EQ(serial.num_instances, parallel.num_instances);
  EXPECT_DOUBLE_EQ(serial_full.hr, parallel_full.hr);
  EXPECT_DOUBLE_EQ(serial_full.ndcg, parallel_full.ndcg);
  EXPECT_DOUBLE_EQ(serial_full.mrr, parallel_full.mrr);
}

// With sampling disabled (max_neighbors above every degree) SceneRec's
// forward pass is deterministic, so the sum of shard losses over a partition
// must equal the serial batch loss up to float summation order.
TEST_F(ParallelTrainTest, SceneRecShardLossesSumToSerialLoss) {
  SceneRecConfig config;
  config.embedding_dim = 8;
  config.max_neighbors = 100000;
  Rng rng(5);
  SceneRec model(&train_graph_, &scene_graph_, config, rng);

  Rng batch_rng(9);
  BprBatcher batcher(split_.train, train_graph_);
  std::vector<BprTriple> triples = batcher.NextEpoch(batch_rng);
  ASSERT_GE(triples.size(), 24u);
  triples.resize(24);
  const std::span<const BprTriple> batch(triples);

  const float serial_loss = model.BatchLoss(batch).scalar();

  model.PrepareShards(3);
  float shard_sum = 0.0f;
  for (int64_t s = 0; s < 3; ++s) {
    Rng shard_rng(100 + static_cast<uint64_t>(s));
    shard_sum +=
        model.BatchLossShard(batch.subspan(static_cast<size_t>(s) * 8, 8), s,
                             shard_rng)
            .scalar();
  }
  EXPECT_NEAR(shard_sum, serial_loss, 2e-3f * std::abs(serial_loss) + 1e-4f);
}

// PrepareParallelScoring precomputes the same cache entries Score() would
// fill lazily, with identical arithmetic per entry, so parallel SceneRec
// evaluation matches the serial sweep bitwise.
TEST_F(ParallelTrainTest, SceneRecParallelScoringMatchesSerial) {
  SceneRecConfig config;
  config.embedding_dim = 8;
  Rng rng(6);
  SceneRec model(&train_graph_, &scene_graph_, config, rng);

  model.OnEvalBegin();
  const RankingMetrics serial =
      EvaluateRanking(model.Scorer(), split_.test, 10, nullptr);

  ThreadPool pool(4);
  model.OnEvalBegin();
  ASSERT_TRUE(model.PrepareParallelScoring(pool));
  const RankingMetrics parallel =
      EvaluateRanking(model.Scorer(), split_.test, 10, &pool);

  EXPECT_DOUBLE_EQ(serial.hr, parallel.hr);
  EXPECT_DOUBLE_EQ(serial.ndcg, parallel.ndcg);
  EXPECT_DOUBLE_EQ(serial.mrr, parallel.mrr);
}

// Cells of a parallel grid search train serially (threads=1 in the base
// config), so the sweep must reproduce the serial grid bitwise — including
// tie-breaking on the best cell.
TEST_F(ParallelTrainTest, ParallelGridSearchMatchesSerial) {
  auto run_grid = [&](int64_t default_pool_threads) {
    SetDefaultThreadPoolThreads(default_pool_threads);
    Rng rng(21);
    ModelBuilder builder = [&]() -> std::unique_ptr<Recommender> {
      return std::make_unique<BprMf>(dataset_.num_users, dataset_.num_items,
                                     8, rng);
    };
    TrainConfig config;
    config.epochs = 2;
    config.patience = 0;
    auto result = GridSearch(builder, split_, train_graph_, config,
                             {5e-3f, 1e-2f}, {0.0f, 1e-5f});
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    SetDefaultThreadPoolThreads(1);
    return std::move(result).value();
  };
  const GridSearchResult serial = run_grid(1);
  const GridSearchResult parallel = run_grid(2);

  ASSERT_EQ(serial.entries.size(), parallel.entries.size());
  for (size_t i = 0; i < serial.entries.size(); ++i) {
    EXPECT_EQ(serial.entries[i].learning_rate,
              parallel.entries[i].learning_rate);
    EXPECT_EQ(serial.entries[i].weight_decay,
              parallel.entries[i].weight_decay);
    EXPECT_DOUBLE_EQ(serial.entries[i].validation.ndcg,
                     parallel.entries[i].validation.ndcg);
    EXPECT_DOUBLE_EQ(serial.entries[i].test.ndcg,
                     parallel.entries[i].test.ndcg);
  }
  EXPECT_EQ(serial.best.learning_rate, parallel.best.learning_rate);
  EXPECT_EQ(serial.best.weight_decay, parallel.best.weight_decay);
  EXPECT_DOUBLE_EQ(serial.best.validation.ndcg, parallel.best.validation.ndcg);
}

}  // namespace
}  // namespace scenerec
