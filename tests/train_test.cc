#include <cmath>
#include <cstdio>
#include <limits>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/telemetry.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "models/bpr_mf.h"
#include "models/factory.h"
#include "nn/serialization.h"
#include "tensor/ops.h"
#include "train/grid_search.h"
#include "train/trainer.h"

namespace scenerec {
namespace {

/// End-to-end training fixture on a small but learnable dataset.
class TrainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.name = "train-test";
    config.num_users = 40;
    config.num_items = 150;
    config.num_categories = 10;
    config.num_scenes = 6;
    config.sessions_per_user = 5;
    config.session_length = 6;
    auto dataset = GenerateSyntheticDataset(config, 77);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
    Rng rng(1);
    auto split = MakeLeaveOneOutSplit(dataset_, /*num_negatives=*/50, rng);
    ASSERT_TRUE(split.ok());
    split_ = std::move(split).value();
    train_graph_ = UserItemGraph::Build(dataset_.num_users, dataset_.num_items,
                                        split_.train);
    scene_graph_ = dataset_.BuildSceneGraph();
  }

  Dataset dataset_;
  LeaveOneOutSplit split_;
  UserItemGraph train_graph_;
  SceneGraph scene_graph_;
};

TEST_F(TrainTest, ConfigValidation) {
  TrainConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.epochs = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TrainConfig();
  config.learning_rate = -1.0f;
  EXPECT_FALSE(config.Validate().ok());
  config = TrainConfig();
  config.batch_size = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = TrainConfig();
  config.weight_decay = -0.1f;
  EXPECT_FALSE(config.Validate().ok());
}

TEST_F(TrainTest, BprMfLearnsAboveRandom) {
  Rng rng(2);
  BprMf model(dataset_.num_users, dataset_.num_items, 16, rng);
  TrainConfig config;
  config.epochs = 8;
  config.learning_rate = 5e-3f;
  config.patience = 0;
  auto result = TrainAndEvaluate(model, split_, train_graph_, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Random ranking over 51 candidates gives HR@10 ~ 10/51 ~ 0.196.
  EXPECT_GT(result->test.hr, 0.25);
  EXPECT_GT(result->best_validation.ndcg, 0.1);
  EXPECT_EQ(result->epochs_run, 8);
  EXPECT_EQ(result->epoch_losses.size(), 8u);
  EXPECT_EQ(result->epoch_validations.size(), 8u);
  // The recorded learning curve peaks at best_validation.
  double peak = 0;
  for (const RankingMetrics& m : result->epoch_validations) {
    peak = std::max(peak, m.ndcg);
  }
  EXPECT_DOUBLE_EQ(peak, result->best_validation.ndcg);
  // Loss should decrease from first to best epoch.
  EXPECT_LT(result->epoch_losses.back(), result->epoch_losses.front());
}

TEST_F(TrainTest, TrainingIsDeterministic) {
  auto run = [&]() {
    Rng rng(3);
    BprMf model(dataset_.num_users, dataset_.num_items, 8, rng);
    TrainConfig config;
    config.epochs = 3;
    config.seed = 5;
    auto result = TrainAndEvaluate(model, split_, train_graph_, config);
    EXPECT_TRUE(result.ok());
    return result->test;
  };
  RankingMetrics a = run();
  RankingMetrics b = run();
  EXPECT_DOUBLE_EQ(a.ndcg, b.ndcg);
  EXPECT_DOUBLE_EQ(a.hr, b.hr);
}

TEST_F(TrainTest, EarlyStoppingRespectsPatience) {
  Rng rng(4);
  BprMf model(dataset_.num_users, dataset_.num_items, 8, rng);
  TrainConfig config;
  config.epochs = 50;
  config.patience = 2;
  config.learning_rate = 1e-1f;  // aggressive: will plateau quickly
  auto result = TrainAndEvaluate(model, split_, train_graph_, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->epochs_run, 50);
  EXPECT_GE(result->epochs_run, 3);
}

TEST_F(TrainTest, ModelSelectionRestoresBestWeights) {
  Rng rng(5);
  BprMf model(dataset_.num_users, dataset_.num_items, 8, rng);
  TrainConfig config;
  config.epochs = 6;
  config.patience = 0;
  auto result = TrainAndEvaluate(model, split_, train_graph_, config);
  ASSERT_TRUE(result.ok());
  // The model was left at the best-validation snapshot: re-evaluating the
  // validation set now must reproduce best_validation.
  model.OnEvalBegin();
  RankingMetrics revalidated =
      EvaluateRanking(model.Scorer(), split_.validation, config.eval_k);
  EXPECT_NEAR(revalidated.ndcg, result->best_validation.ndcg, 1e-9);
  EXPECT_NEAR(revalidated.hr, result->best_validation.hr, 1e-9);
}

TEST_F(TrainTest, SceneRecTrainsEndToEnd) {
  ModelContext context{&train_graph_, &scene_graph_};
  ModelFactoryConfig factory_config;
  factory_config.embedding_dim = 16;
  factory_config.max_neighbors = 8;
  auto model = MakeRecommender("SceneRec", context, factory_config);
  ASSERT_TRUE(model.ok());
  TrainConfig config;
  config.epochs = 3;
  config.patience = 0;
  auto result = TrainAndEvaluate(**model, split_, train_graph_, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->test.hr, 0.2);
  EXPECT_TRUE(std::isfinite(result->epoch_losses.back()));
}

TEST_F(TrainTest, LrDecayValidation) {
  TrainConfig config;
  config.lr_decay = 0.0f;
  EXPECT_FALSE(config.Validate().ok());
  config.lr_decay = 1.5f;
  EXPECT_FALSE(config.Validate().ok());
  config.lr_decay = 0.9f;
  EXPECT_TRUE(config.Validate().ok());
}

TEST_F(TrainTest, LrDecayTrainsAndDiffersFromConstantLr) {
  auto run = [&](float decay) {
    Rng rng(9);
    BprMf model(dataset_.num_users, dataset_.num_items, 8, rng);
    TrainConfig config;
    config.epochs = 5;
    config.patience = 0;
    config.learning_rate = 1e-2f;
    config.lr_decay = decay;
    auto result = TrainAndEvaluate(model, split_, train_graph_, config);
    EXPECT_TRUE(result.ok());
    return result->epoch_losses;
  };
  auto constant = run(1.0f);
  auto decayed = run(0.5f);
  ASSERT_EQ(constant.size(), decayed.size());
  // First epoch identical (decay applies from the second epoch on).
  EXPECT_DOUBLE_EQ(constant[0], decayed[0]);
  // Later epochs diverge.
  EXPECT_NE(constant.back(), decayed.back());
}

TEST_F(TrainTest, CheckpointWrittenAtBestEpoch) {
  Rng rng(11);
  BprMf model(dataset_.num_users, dataset_.num_items, 8, rng);
  char path_template[] = "/tmp/scenerec_train_ckpt_XXXXXX";
  const int fd = ::mkstemp(path_template);
  ASSERT_GE(fd, 0);
  ::close(fd);
  TrainConfig config;
  config.epochs = 4;
  config.learning_rate = 5e-3f;
  config.checkpoint_path = path_template;
  auto result = TrainAndEvaluate(model, split_, train_graph_, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The checkpoint restores the best-validation weights into a new model,
  // which then reproduces the reported test metrics exactly.
  Rng rng2(999);
  BprMf restored(dataset_.num_users, dataset_.num_items, 8, rng2);
  ASSERT_TRUE(LoadCheckpoint(restored, restored.name(), path_template).ok());
  restored.OnEvalBegin();
  RankingMetrics test =
      EvaluateRanking(restored.Scorer(), split_.test, config.eval_k);
  EXPECT_NEAR(test.ndcg, result->test.ndcg, 1e-9);
  EXPECT_NEAR(test.hr, result->test.hr, 1e-9);
  ::remove(path_template);
}

TEST_F(TrainTest, FullRankingProtocolRunsOnTrainedModel) {
  Rng rng(10);
  BprMf model(dataset_.num_users, dataset_.num_items, 8, rng);
  TrainConfig config;
  config.epochs = 4;
  config.learning_rate = 5e-3f;
  auto result = TrainAndEvaluate(model, split_, train_graph_, config);
  ASSERT_TRUE(result.ok());
  model.OnEvalBegin();
  RankingMetrics full = EvaluateFullRanking(model.Scorer(), train_graph_,
                                            split_.test, 10);
  EXPECT_EQ(full.num_instances, static_cast<int64_t>(split_.test.size()));
  // Full ranking against all 150 items is strictly harder than ranking
  // against 50 sampled negatives.
  EXPECT_LE(full.hr, result->test.hr + 1e-9);
  EXPECT_GT(full.mrr, 0.0);
}

TEST_F(TrainTest, RejectsEmptyTrainingSet) {
  Rng rng(6);
  BprMf model(dataset_.num_users, dataset_.num_items, 8, rng);
  LeaveOneOutSplit empty;
  TrainConfig config;
  auto result = TrainAndEvaluate(model, empty, train_graph_, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(TrainTest, GridSearchPicksBestValidationCell) {
  auto builder = [&]() -> std::unique_ptr<Recommender> {
    Rng rng(7);
    return std::make_unique<BprMf>(dataset_.num_users, dataset_.num_items, 8,
                                   rng);
  };
  TrainConfig base;
  base.epochs = 3;
  base.patience = 0;
  auto result = GridSearch(builder, split_, train_graph_, base,
                           {1e-3f, 1e-2f}, {0.0f, 1e-4f});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->entries.size(), 4u);
  double best = -1.0;
  for (const GridSearchEntry& e : result->entries) {
    best = std::max(best, e.validation.ndcg);
  }
  EXPECT_DOUBLE_EQ(result->best.validation.ndcg, best);
}

/// Minimal Recommender whose loss goes NaN after `finite_batches` batches —
/// a stand-in for a diverged model.
class NanLossModel : public Recommender {
 public:
  explicit NanLossModel(int64_t finite_batches)
      : finite_batches_(finite_batches),
        param_(Tensor::Scalar(0.1f, /*requires_grad=*/true)) {}

  std::string name() const override { return "NanLossStub"; }
  void CollectParameters(std::vector<Tensor>* out) const override {
    out->push_back(param_);
  }
  Tensor ScoreForTraining(int64_t, int64_t) override { return param_; }
  Tensor BatchLoss(std::span<const BprTriple> batch) override {
    ++batches_;
    const float factor =
        batches_ > finite_batches_ ? std::numeric_limits<float>::quiet_NaN()
                                   : static_cast<float>(batch.size());
    return Scale(param_, factor);
  }
  float Score(int64_t, int64_t) override { return 0.0f; }

 private:
  int64_t finite_batches_;
  int64_t batches_ = 0;
  Tensor param_;
};

/// Loss stays finite but every inference score is NaN — the shape of a model
/// whose eval cache diverged.
class NanScoreModel : public Recommender {
 public:
  NanScoreModel() : param_(Tensor::Scalar(0.1f, /*requires_grad=*/true)) {}

  std::string name() const override { return "NanScoreStub"; }
  void CollectParameters(std::vector<Tensor>* out) const override {
    out->push_back(param_);
  }
  Tensor ScoreForTraining(int64_t, int64_t) override { return param_; }
  Tensor BatchLoss(std::span<const BprTriple> batch) override {
    return Scale(param_, static_cast<float>(batch.size()));
  }
  float Score(int64_t, int64_t) override {
    return std::numeric_limits<float>::quiet_NaN();
  }

 private:
  Tensor param_;
};

TEST_F(TrainTest, NonFiniteLossAbortsTraining) {
  telemetry::Telemetry::SetEnabled(true);
  telemetry::Telemetry::Reset();
  NanLossModel model(/*finite_batches=*/3);
  TrainConfig config;
  config.epochs = 5;
  auto result = TrainAndEvaluate(model, split_, train_graph_, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_GE(telemetry::Telemetry::Snapshot().CounterValue(
                "train/nonfinite_loss"),
            1u);
  telemetry::Telemetry::Reset();
  telemetry::Telemetry::SetEnabled(false);
}

TEST_F(TrainTest, NonFiniteValidationAbortsTraining) {
  // Pre-fix behavior: NaN scores rank the positive at 0 (all comparisons
  // false), NDCG came back 1.0, and the diverged model won model selection.
  // Now the evaluator reports NaN and the trainer must fail loudly.
  NanScoreModel model;
  TrainConfig config;
  config.epochs = 3;
  auto result = TrainAndEvaluate(model, split_, train_graph_, config);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_F(TrainTest, EarlyStopRestoresExactBestEpochWeights) {
  // Run A: long horizon with early stopping and a checkpoint. Run B: fresh
  // identically-seeded model trained for exactly best_epoch + 1 epochs.
  // Training is deterministic, so A's restored weights must equal B's
  // final-best weights bitwise, and the checkpoint must reproduce A's test
  // metrics exactly.
  char path_template[] = "/tmp/scenerec_earlystop_ckpt_XXXXXX";
  const int fd = ::mkstemp(path_template);
  ASSERT_GE(fd, 0);
  ::close(fd);

  TrainConfig config;
  config.epochs = 30;
  config.patience = 2;
  config.learning_rate = 1e-1f;  // aggressive: plateaus (and stops) quickly
  config.checkpoint_path = path_template;
  Rng rng_a(21);
  BprMf model_a(dataset_.num_users, dataset_.num_items, 8, rng_a);
  auto result_a = TrainAndEvaluate(model_a, split_, train_graph_, config);
  ASSERT_TRUE(result_a.ok()) << result_a.status().ToString();
  ASSERT_LT(result_a->epochs_run, 30) << "early stopping never fired";
  ASSERT_GE(result_a->best_epoch, 0);

  TrainConfig config_b;
  config_b.epochs = result_a->best_epoch + 1;
  config_b.patience = 0;
  config_b.learning_rate = config.learning_rate;
  Rng rng_b(21);
  BprMf model_b(dataset_.num_users, dataset_.num_items, 8, rng_b);
  auto result_b = TrainAndEvaluate(model_b, split_, train_graph_, config_b);
  ASSERT_TRUE(result_b.ok());
  EXPECT_EQ(result_b->best_epoch, result_a->best_epoch);

  // Both models now hold their best-validation snapshots — the same epoch's
  // weights, reached by identical deterministic trajectories.
  const std::vector<Tensor> params_a = model_a.Parameters();
  const std::vector<Tensor> params_b = model_b.Parameters();
  ASSERT_EQ(params_a.size(), params_b.size());
  for (size_t i = 0; i < params_a.size(); ++i) {
    EXPECT_EQ(params_a[i].value(), params_b[i].value()) << "param " << i;
  }

  // The checkpoint (written when validation last improved) reloads into a
  // third model that reproduces A's reported metrics exactly.
  Rng rng_c(9999);
  BprMf restored(dataset_.num_users, dataset_.num_items, 8, rng_c);
  ASSERT_TRUE(LoadCheckpoint(restored, restored.name(), path_template).ok());
  restored.OnEvalBegin();
  RankingMetrics val =
      EvaluateRanking(restored.Scorer(), split_.validation, config.eval_k);
  RankingMetrics test =
      EvaluateRanking(restored.Scorer(), split_.test, config.eval_k);
  EXPECT_DOUBLE_EQ(val.ndcg, result_a->best_validation.ndcg);
  EXPECT_DOUBLE_EQ(test.ndcg, result_a->test.ndcg);
  EXPECT_DOUBLE_EQ(test.hr, result_a->test.hr);
  ::remove(path_template);
}

TEST_F(TrainTest, GridSearchRejectsEmptyGrid) {
  auto builder = [&]() -> std::unique_ptr<Recommender> {
    Rng rng(8);
    return std::make_unique<BprMf>(dataset_.num_users, dataset_.num_items, 8,
                                   rng);
  };
  TrainConfig base;
  EXPECT_FALSE(GridSearch(builder, split_, train_graph_, base, {}, {0.0f}).ok());
}

}  // namespace
}  // namespace scenerec
