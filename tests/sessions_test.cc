#include <set>

#include <gtest/gtest.h>

#include "data/sessions.h"

namespace scenerec {
namespace {

// Categories: items 0,1 -> cat 0; items 2,3 -> cat 1.
const std::vector<int64_t> kItemCategory{0, 0, 1, 1};

TEST(SessionsTest, AllPairsWithinSessionCoView) {
  std::vector<ViewSession> sessions{{0, {0, 2, 3}}};
  CoViewConfig config;
  auto graphs = BuildCoViewGraphs(sessions, kItemCategory, 2, config);
  ASSERT_TRUE(graphs.ok()) << graphs.status().ToString();
  // Pairs: (0,2), (0,3), (2,3) — symmetric -> 6 directed edges.
  EXPECT_EQ(graphs->item_item_edges.size(), 6u);
  // Category pairs: (0,1) from (0,2) and (0,3); (2,3) same category.
  EXPECT_EQ(graphs->category_category_edges.size(), 2u);
}

TEST(SessionsTest, WindowLimitsPairs) {
  std::vector<ViewSession> sessions{{0, {0, 1, 2, 3}}};
  CoViewConfig config;
  config.window = 1;  // only adjacent pairs: (0,1), (1,2), (2,3)
  auto graphs = BuildCoViewGraphs(sessions, kItemCategory, 2, config);
  ASSERT_TRUE(graphs.ok());
  EXPECT_EQ(graphs->item_item_edges.size(), 6u);  // 3 pairs symmetric
  // (0,3) must NOT be connected.
  for (const Edge& e : graphs->item_item_edges) {
    EXPECT_FALSE(e.src == 0 && e.dst == 3);
  }
}

TEST(SessionsTest, RepeatedViewsDoNotSelfLoop) {
  std::vector<ViewSession> sessions{{0, {1, 1, 1}}};
  CoViewConfig config;
  auto graphs = BuildCoViewGraphs(sessions, kItemCategory, 2, config);
  ASSERT_TRUE(graphs.ok());
  EXPECT_TRUE(graphs->item_item_edges.empty());
}

TEST(SessionsTest, TopKKeepsMostCoViewedNeighbors) {
  // Items 2 and 3 each co-view BOTH 0 (once) and 1 (twice); with k=1 they
  // keep only item 1. Items 0 and 1 keep their strongest neighbor. Unlike
  // the k=all case, the (0,2)/(0,3) pairs must disappear entirely: neither
  // direction survives its source's top-1 cut, so symmetrization cannot
  // reintroduce them.
  std::vector<ViewSession> sessions{
      {0, {0, 1}}, {1, {2, 1}},   {1, {2, 1}}, {2, {2, 0}},
      {3, {3, 1}}, {3, {3, 1}},   {4, {3, 0}}, {5, {0, 1}},
  };
  CoViewConfig config;
  config.max_item_neighbors = 1;
  auto graphs = BuildCoViewGraphs(sessions, kItemCategory, 2, config);
  ASSERT_TRUE(graphs.ok());
  bool has_21 = false, has_31 = false;
  for (const Edge& e : graphs->item_item_edges) {
    EXPECT_FALSE(e.src == 2 && e.dst == 0) << "truncated edge survived";
    EXPECT_FALSE(e.src == 3 && e.dst == 0) << "truncated edge survived";
    has_21 = has_21 || (e.src == 2 && e.dst == 1);
    has_31 = has_31 || (e.src == 3 && e.dst == 1);
  }
  EXPECT_TRUE(has_21);
  EXPECT_TRUE(has_31);
}

TEST(SessionsTest, SymmetrizationMayExceedTopKBudget) {
  // Documented pipeline property: per-source top-K runs BEFORE
  // symmetrization (as in Section 5.1), so a hub kept by many sources can
  // end up with more than K neighbors after the reverse edges are added.
  std::vector<ViewSession> sessions{
      {0, {0, 1}}, {1, {0, 2}}, {2, {0, 3}},
      {3, {1, 2}}, {3, {1, 2}},  // items 1,2 prefer each other over 0
  };
  CoViewConfig config;
  config.max_item_neighbors = 1;
  auto graphs = BuildCoViewGraphs(sessions, kItemCategory, 2, config);
  ASSERT_TRUE(graphs.ok());
  int64_t item0_degree = 0;
  for (const Edge& e : graphs->item_item_edges) {
    item0_degree += (e.src == 0);
  }
  // Item 0's own cut keeps one neighbor, but 3 still keeps 0.
  EXPECT_GE(item0_degree, 2);
}

TEST(SessionsTest, FinalEdgesAreUnitWeightAndSymmetric) {
  std::vector<ViewSession> sessions{{0, {0, 2}}, {1, {0, 2}}, {2, {2, 3}}};
  auto graphs = BuildCoViewGraphs(sessions, kItemCategory, 2, CoViewConfig());
  ASSERT_TRUE(graphs.ok());
  std::set<std::pair<int64_t, int64_t>> edges;
  for (const Edge& e : graphs->item_item_edges) {
    EXPECT_FLOAT_EQ(e.weight, 1.0f);
    edges.insert({e.src, e.dst});
  }
  for (const auto& [src, dst] : edges) {
    EXPECT_TRUE(edges.count({dst, src})) << src << "->" << dst;
  }
}

TEST(SessionsTest, RejectsBadInput) {
  CoViewConfig config;
  EXPECT_FALSE(BuildCoViewGraphs({{0, {7}}}, kItemCategory, 2, config).ok());
  EXPECT_FALSE(BuildCoViewGraphs({}, {}, 2, config).ok());
  EXPECT_FALSE(BuildCoViewGraphs({}, {0, 5}, 2, config).ok());
  CoViewConfig bad;
  bad.max_item_neighbors = 0;
  EXPECT_FALSE(BuildCoViewGraphs({}, kItemCategory, 2, bad).ok());
  bad = config;
  bad.window = -1;
  EXPECT_FALSE(BuildCoViewGraphs({}, kItemCategory, 2, bad).ok());
}

TEST(SessionsTest, ClicksDeduplicated) {
  std::vector<ViewSession> sessions{
      {0, {1, 2, 1}}, {0, {2}}, {1, {3}}};
  auto clicks = ClicksFromSessions(sessions);
  ASSERT_EQ(clicks.size(), 3u);
  EXPECT_EQ(clicks[0], (std::pair<int64_t, int64_t>{0, 1}));
  EXPECT_EQ(clicks[1], (std::pair<int64_t, int64_t>{0, 2}));
  EXPECT_EQ(clicks[2], (std::pair<int64_t, int64_t>{1, 3}));
}

TEST(SessionsTest, EmptySessionsYieldEmptyGraphs) {
  auto graphs = BuildCoViewGraphs({}, kItemCategory, 2, CoViewConfig());
  ASSERT_TRUE(graphs.ok());
  EXPECT_TRUE(graphs->item_item_edges.empty());
  EXPECT_TRUE(graphs->category_category_edges.empty());
  EXPECT_TRUE(ClicksFromSessions({}).empty());
}

}  // namespace
}  // namespace scenerec
