#include <gtest/gtest.h>

#include "graph/bipartite_graph.h"
#include "graph/csr.h"
#include "graph/scene_graph.h"
#include "graph/stats.h"

namespace scenerec {
namespace {

// -- CsrGraph ------------------------------------------------------------------

TEST(CsrGraphTest, EmptyGraph) {
  CsrGraph g = CsrGraph::FromEdges(3, 3, {});
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.OutDegree(0), 0);
  EXPECT_TRUE(g.Neighbors(2).empty());
}

TEST(CsrGraphTest, NeighborsSortedAndQueryable) {
  CsrGraph g = CsrGraph::FromEdges(
      3, 4, {{0, 3, 1.0f}, {0, 1, 2.0f}, {2, 0, 1.0f}, {0, 2, 0.5f}});
  ASSERT_EQ(g.OutDegree(0), 3);
  auto n = g.Neighbors(0);
  EXPECT_EQ(n[0], 1);
  EXPECT_EQ(n[1], 2);
  EXPECT_EQ(n[2], 3);
  auto w = g.Weights(0);
  EXPECT_FLOAT_EQ(w[0], 2.0f);
  EXPECT_FLOAT_EQ(w[1], 0.5f);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 0));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(CsrGraphTest, DuplicateEdgesMergeWeights) {
  CsrGraph g =
      CsrGraph::FromEdges(2, 2, {{0, 1, 1.0f}, {0, 1, 2.5f}, {0, 1, 0.5f}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FLOAT_EQ(g.Weights(0)[0], 4.0f);
}

TEST(CsrGraphTest, WeightOfEdge) {
  CsrGraph g = CsrGraph::FromEdges(2, 3, {{0, 1, 2.5f}, {0, 2, 1.0f}});
  EXPECT_FLOAT_EQ(g.WeightOfEdge(0, 1), 2.5f);
  EXPECT_FLOAT_EQ(g.WeightOfEdge(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(g.WeightOfEdge(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(g.WeightOfEdge(1, 1), 0.0f);
}

TEST(CsrGraphTest, MeanOutDegree) {
  CsrGraph g = CsrGraph::FromEdges(4, 4, {{0, 1, 1}, {0, 2, 1}, {1, 0, 1}});
  EXPECT_DOUBLE_EQ(g.MeanOutDegree(), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(CsrGraph().MeanOutDegree(), 0.0);
}

TEST(KeepTopKTest, KeepsHighestWeights) {
  std::vector<Edge> edges{
      {0, 1, 1.0f}, {0, 2, 5.0f}, {0, 3, 3.0f}, {1, 0, 2.0f}};
  auto kept = KeepTopKPerSource(edges, 2);
  // Source 0 keeps dst 2 (w=5) and 3 (w=3); source 1 keeps its only edge.
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].dst, 2);
  EXPECT_EQ(kept[1].dst, 3);
  EXPECT_EQ(kept[2].src, 1);
}

TEST(KeepTopKTest, TieBreaksByLowerDst) {
  std::vector<Edge> edges{{0, 5, 1.0f}, {0, 2, 1.0f}, {0, 9, 1.0f}};
  auto kept = KeepTopKPerSource(edges, 2);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].dst, 2);
  EXPECT_EQ(kept[1].dst, 5);
}

TEST(MakeSymmetricTest, AddsReverses) {
  auto edges = MakeSymmetric({{0, 1, 1.0f}, {2, 2, 3.0f}});
  // Self loop is not duplicated.
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[2].src, 1);
  EXPECT_EQ(edges[2].dst, 0);
}

// -- UserItemGraph ----------------------------------------------------------------

TEST(UserItemGraphTest, BothOrientations) {
  UserItemGraph g = UserItemGraph::Build(
      3, 4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_users(), 3);
  EXPECT_EQ(g.num_items(), 4);
  EXPECT_EQ(g.num_interactions(), 4);
  auto items = g.ItemsOfUser(0);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], 1);
  EXPECT_EQ(items[1], 2);
  auto users = g.UsersOfItem(2);
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0], 0);
  EXPECT_EQ(users[1], 1);
  EXPECT_TRUE(g.HasInteraction(2, 3));
  EXPECT_FALSE(g.HasInteraction(2, 0));
  EXPECT_EQ(g.UserDegree(2), 1);
  EXPECT_EQ(g.ItemDegree(0), 0);
}

TEST(UserItemGraphTest, DuplicateInteractionsCollapse) {
  UserItemGraph g = UserItemGraph::Build(1, 2, {{0, 1}, {0, 1}});
  EXPECT_EQ(g.num_interactions(), 1);
}

// -- SceneGraph --------------------------------------------------------------------

SceneGraph SmallSceneGraph() {
  // 4 items, 3 categories, 2 scenes.
  // item->category: 0->0, 1->0, 2->1, 3->2
  // scenes: s0 = {c0, c1}, s1 = {c1, c2}
  return SceneGraph::Build(
      4, 3, 2, {0, 0, 1, 2},
      /*item_item=*/{{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}},
      /*cat_cat=*/{{0, 1, 1}, {1, 0, 1}},
      /*cat_scene=*/{{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {2, 1, 1}});
}

TEST(SceneGraphTest, HierarchyAccessors) {
  SceneGraph g = SmallSceneGraph();
  EXPECT_EQ(g.num_items(), 4);
  EXPECT_EQ(g.num_categories(), 3);
  EXPECT_EQ(g.num_scenes(), 2);
  EXPECT_EQ(g.CategoryOfItem(1), 0);
  EXPECT_EQ(g.CategoryOfItem(3), 2);

  auto neighbors = g.ItemNeighbors(1);
  ASSERT_EQ(neighbors.size(), 2u);
  EXPECT_EQ(neighbors[0], 0);
  EXPECT_EQ(neighbors[1], 2);

  auto cats = g.CategoryNeighbors(0);
  ASSERT_EQ(cats.size(), 1u);
  EXPECT_EQ(cats[0], 1);

  auto scenes_c1 = g.ScenesOfCategory(1);
  ASSERT_EQ(scenes_c1.size(), 2u);

  // IS(item) goes through the item's category.
  auto scenes_item0 = g.ScenesOfItem(0);  // category 0 -> scene 0 only
  ASSERT_EQ(scenes_item0.size(), 1u);
  EXPECT_EQ(scenes_item0[0], 0);

  auto members = g.CategoriesOfScene(1);
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], 1);
  EXPECT_EQ(members[1], 2);

  auto items_c0 = g.ItemsOfCategory(0);
  ASSERT_EQ(items_c0.size(), 2u);
}

TEST(SceneGraphTest, ValidatePasses) {
  EXPECT_TRUE(SmallSceneGraph().Validate().ok());
}

TEST(SceneGraphTest, ValidateRejectsSelfLoop) {
  SceneGraph g = SceneGraph::Build(2, 1, 1, {0, 0},
                                   /*item_item=*/{{0, 0, 1}},
                                   /*cat_cat=*/{},
                                   /*cat_scene=*/{{0, 0, 1}});
  EXPECT_FALSE(g.Validate().ok());
}

// -- SceneGraphBuilder -----------------------------------------------------------

TEST(SceneGraphBuilderTest, BuildsFromCoViews) {
  SceneGraphBuilder builder(3, 2, 1);
  builder.SetItemCategory(0, 0);
  builder.SetItemCategory(1, 0);
  builder.SetItemCategory(2, 1);
  builder.AddItemCoView(0, 1, 5.0f);
  builder.AddItemCoView(1, 2, 1.0f);
  builder.AddCategoryCoView(0, 1, 2.0f);
  builder.AddCategoryToScene(0, 0);
  builder.AddCategoryToScene(1, 0);
  auto graph_or = builder.Build();
  ASSERT_TRUE(graph_or.ok()) << graph_or.status().ToString();
  const SceneGraph& g = graph_or.value();
  EXPECT_TRUE(g.item_item().HasEdge(0, 1));
  EXPECT_TRUE(g.item_item().HasEdge(1, 0));
  EXPECT_TRUE(g.item_item().HasEdge(1, 2));
  EXPECT_TRUE(g.category_category().HasEdge(0, 1));
  EXPECT_EQ(g.ScenesOfCategory(0).size(), 1u);
}

TEST(SceneGraphBuilderTest, TopKTruncationApplies) {
  SceneGraphBuilder builder(5, 1, 1);
  for (int64_t i = 0; i < 5; ++i) builder.SetItemCategory(i, 0);
  builder.AddCategoryToScene(0, 0);
  builder.set_max_item_neighbors(2);
  // Item 0 co-views all others with increasing weight.
  builder.AddItemCoView(0, 1, 1.0f);
  builder.AddItemCoView(0, 2, 2.0f);
  builder.AddItemCoView(0, 3, 3.0f);
  builder.AddItemCoView(0, 4, 4.0f);
  auto graph_or = builder.Build();
  ASSERT_TRUE(graph_or.ok());
  const SceneGraph& g = graph_or.value();
  // Top-2 by weight from item 0's perspective: items 4 and 3. (Reverse
  // direction edges may add more from other sources' truncation.)
  EXPECT_TRUE(g.item_item().HasEdge(0, 4));
  EXPECT_TRUE(g.item_item().HasEdge(0, 3));
}

TEST(SceneGraphBuilderTest, MissingCategoryFails) {
  SceneGraphBuilder builder(2, 1, 1);
  builder.SetItemCategory(0, 0);
  builder.AddCategoryToScene(0, 0);
  // item 1 has no category.
  EXPECT_FALSE(builder.Build().ok());
}

TEST(SceneGraphBuilderTest, SelfCoViewIgnored) {
  SceneGraphBuilder builder(2, 1, 1);
  builder.SetItemCategory(0, 0);
  builder.SetItemCategory(1, 0);
  builder.AddCategoryToScene(0, 0);
  builder.AddItemCoView(0, 0, 10.0f);
  auto graph_or = builder.Build();
  ASSERT_TRUE(graph_or.ok());
  EXPECT_EQ(graph_or.value().num_item_item_edges(), 0);
}

// -- Stats -------------------------------------------------------------------------

TEST(StatsTest, CountsMatchTable1Layout) {
  UserItemGraph ui = UserItemGraph::Build(3, 4, {{0, 1}, {1, 2}, {2, 3}});
  SceneGraph scene = SmallSceneGraph();
  DatasetStats stats = ComputeStats("TestSet", ui, scene);
  EXPECT_EQ(stats.num_users, 3);
  EXPECT_EQ(stats.num_items, 4);
  EXPECT_EQ(stats.user_item_edges, 3);
  EXPECT_EQ(stats.item_item_edges, 4);
  EXPECT_EQ(stats.item_category_edges, 4);
  EXPECT_EQ(stats.category_category_edges, 2);
  EXPECT_EQ(stats.scene_category_edges, 4);
  std::string table = FormatStatsTable(stats);
  EXPECT_NE(table.find("TestSet"), std::string::npos);
  EXPECT_NE(table.find("User-Item"), std::string::npos);
  EXPECT_NE(table.find("Scene-Category"), std::string::npos);
}

}  // namespace
}  // namespace scenerec
