// Cross-module integration tests: the full pipeline from data generation
// through serialization, splitting, training, evaluation and inference —
// exercising the same paths as the paper-reproduction benchmarks but at
// unit-test scale.

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "data/synthetic.h"
#include "data/tsv_io.h"
#include "models/factory.h"
#include "models/scene_rec.h"
#include "train/trainer.h"

namespace scenerec {
namespace {

TEST(IntegrationTest, SaveLoadTrainRoundTrip) {
  // Generate -> save -> load -> the loaded dataset trains identically to
  // the original (graphs and splits are byte-identical).
  SyntheticConfig config;
  config.num_users = 25;
  config.num_items = 120;
  config.num_categories = 10;
  config.num_scenes = 6;
  config.sessions_per_user = 4;
  auto original = GenerateSyntheticDataset(config, 5);
  ASSERT_TRUE(original.ok());

  char dir_template[] = "/tmp/scenerec_integ_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  ASSERT_TRUE(SaveDatasetTsv(original.value(), dir_template).ok());
  auto loaded = LoadDatasetTsv(dir_template);
  ASSERT_TRUE(loaded.ok());

  auto run = [](const Dataset& dataset) {
    Rng rng(3);
    auto split = MakeLeaveOneOutSplit(dataset, 30, rng);
    EXPECT_TRUE(split.ok());
    UserItemGraph graph = UserItemGraph::Build(
        dataset.num_users, dataset.num_items, split->train);
    ModelContext context{&graph, nullptr};
    ModelFactoryConfig factory_config;
    factory_config.embedding_dim = 8;
    auto model = MakeRecommender("BPR-MF", context, factory_config);
    EXPECT_TRUE(model.ok());
    TrainConfig train_config;
    train_config.epochs = 2;
    auto result = TrainAndEvaluate(**model, *split, graph, train_config);
    EXPECT_TRUE(result.ok());
    return result->test.ndcg;
  };
  EXPECT_DOUBLE_EQ(run(original.value()), run(loaded.value()));
}

TEST(IntegrationTest, PreparedDatasetPipeline) {
  auto prepared = bench::PrepareJdDataset(JdPreset::kFoodDrink, 0.01, 11);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared->dataset.name, "Food & Drink");
  // Train graph excludes exactly the 2 * num_users held-out positives.
  EXPECT_EQ(prepared->train_graph.num_interactions() +
                2 * prepared->dataset.num_users,
            static_cast<int64_t>(prepared->dataset.interactions.size()));
  EXPECT_TRUE(prepared->scene_graph.Validate().ok());
}

TEST(IntegrationTest, RunCellDeterminism) {
  auto prepared = bench::PrepareJdDataset(JdPreset::kElectronics, 0.01, 13);
  ASSERT_TRUE(prepared.ok());
  ModelFactoryConfig factory_config;
  factory_config.embedding_dim = 8;
  factory_config.max_neighbors = 6;
  TrainConfig train_config;
  train_config.epochs = 2;
  auto a = bench::RunCell("SceneRec", *prepared, factory_config, train_config);
  auto b = bench::RunCell("SceneRec", *prepared, factory_config, train_config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->test.ndcg, b->test.ndcg);
  EXPECT_DOUBLE_EQ(a->test.hr, b->test.hr);
}

TEST(IntegrationTest, TunedLearningRateCoversAllModels) {
  for (const std::string& name : Table2ModelNames()) {
    EXPECT_GT(bench::TunedLearningRate(name), 0.0f) << name;
    EXPECT_LE(bench::TunedLearningRate(name), 0.1f) << name;
  }
}

TEST(IntegrationTest, SceneRecBeatsRandomScoringOnCoherentData) {
  // The core end-to-end claim at test scale: on scene-coherent data a
  // briefly trained SceneRec ranks held-out positives far above chance.
  auto prepared = bench::PrepareJdDataset(JdPreset::kElectronics, 0.015, 21);
  ASSERT_TRUE(prepared.ok());
  ModelFactoryConfig factory_config;
  factory_config.embedding_dim = 16;
  factory_config.max_neighbors = 8;
  TrainConfig train_config;
  train_config.epochs = 4;
  train_config.learning_rate = 2e-3f;
  auto cell =
      bench::RunCell("SceneRec", *prepared, factory_config, train_config);
  ASSERT_TRUE(cell.ok()) << cell.status().ToString();
  // Chance HR@10 with 100 negatives is ~0.099; require a clear margin.
  EXPECT_GT(cell->test.hr, 0.2);
  EXPECT_GT(cell->test.ndcg, 0.08);
}

TEST(IntegrationTest, AttentionTracksSceneOverlap) {
  // SceneRec's scene-based attention logit (cosine of summed scene
  // embeddings) must on average be higher for item pairs whose categories
  // share a scene than for pairs with disjoint scene sets — even before
  // training, and the case-study bench relies on it after training.
  auto prepared = bench::PrepareJdDataset(JdPreset::kElectronics, 0.01, 31);
  ASSERT_TRUE(prepared.ok());
  SceneRecConfig config;
  config.embedding_dim = 16;
  Rng rng(7);
  SceneRec model(&prepared->train_graph, &prepared->scene_graph, config, rng);

  // Quick training pass so the embeddings carry signal.
  TrainConfig train_config;
  train_config.epochs = 3;
  train_config.learning_rate = 2e-3f;
  auto result = TrainAndEvaluate(model, prepared->split,
                                 prepared->train_graph, train_config);
  ASSERT_TRUE(result.ok());

  const SceneGraph& scene = prepared->scene_graph;
  auto shares_scene = [&](int64_t a, int64_t b) {
    for (int64_t sa : scene.ScenesOfItem(a)) {
      for (int64_t sb : scene.ScenesOfItem(b)) {
        if (sa == sb) return true;
      }
    }
    return false;
  };

  // Correlate, over (user, candidate) pairs, the fraction of the user's
  // history that shares a scene with the candidate against the model's
  // average attention score. A positive correlation is what Figure 3's
  // case study visualizes.
  std::vector<double> shared_fraction, attention_score;
  model.OnEvalBegin();
  for (int64_t user = 0; user < std::min<int64_t>(
                             20, prepared->dataset.num_users);
       ++user) {
    auto history = prepared->train_graph.ItemsOfUser(user);
    if (history.empty()) continue;
    for (int64_t item = 0; item < prepared->dataset.num_items; item += 11) {
      double shared = 0;
      for (int64_t h : history) shared += shares_scene(item, h);
      shared_fraction.push_back(shared / static_cast<double>(history.size()));
      attention_score.push_back(model.AverageAttentionScore(user, item));
    }
  }
  ASSERT_GT(shared_fraction.size(), 50u);
  // Pearson correlation.
  const double n = static_cast<double>(shared_fraction.size());
  double mean_x = 0, mean_y = 0;
  for (size_t i = 0; i < shared_fraction.size(); ++i) {
    mean_x += shared_fraction[i];
    mean_y += attention_score[i];
  }
  mean_x /= n;
  mean_y /= n;
  double cov = 0, var_x = 0, var_y = 0;
  for (size_t i = 0; i < shared_fraction.size(); ++i) {
    const double dx = shared_fraction[i] - mean_x;
    const double dy = attention_score[i] - mean_y;
    cov += dx * dy;
    var_x += dx * dx;
    var_y += dy * dy;
  }
  ASSERT_GT(var_x, 0.0) << "no variance in scene overlap across candidates";
  ASSERT_GT(var_y, 0.0);
  const double correlation = cov / std::sqrt(var_x * var_y);
  EXPECT_GT(correlation, 0.1)
      << "attention should track scene overlap with the user's history";
}

}  // namespace
}  // namespace scenerec
