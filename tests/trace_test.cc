// Tests for the span-tracing layer (common/trace.h): ring-buffer overflow
// semantics, parent attribution across ThreadPool workers (the TSan-critical
// path), duration floors, disabled-mode no-ops, and the Chrome trace-event
// export produced by a real multi-threaded training run.

#include "common/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "models/factory.h"
#include "train/trainer.h"

namespace scenerec {
namespace {

using trace::Trace;
using trace::TraceSnapshot;
using trace::TraceSpan;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Trace::Start();  // default options
    Trace::Reset();
  }
  void TearDown() override {
    Trace::Start();  // restore default options for later-created threads
    Trace::Stop();
    Trace::Reset();
  }
};

std::vector<const TraceSpan*> SpansNamed(const TraceSnapshot& snap,
                                         const std::string& name) {
  std::vector<const TraceSpan*> out;
  for (const TraceSpan& s : snap.spans) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

const TraceSpan* FindById(const TraceSnapshot& snap, uint64_t id) {
  for (const TraceSpan& s : snap.spans) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

TEST_F(TraceTest, DisabledScopesAreNoops) {
  Trace::Stop();
  {
    trace::SpanScope span("trace_test/disabled", "test");
    EXPECT_FALSE(span.armed());
    EXPECT_EQ(span.id(), 0u);
    TRACE_SCOPE("trace_test/disabled_macro");
    TRACE_SCOPE_F("trace_test/disabled_fmt", "i=%d", 7);
  }
  EXPECT_TRUE(Trace::Snapshot().spans.empty());
}

TEST_F(TraceTest, RecordsNestedSpansWithParentIds) {
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    trace::SpanScope outer("trace_test/outer", "test");
    ASSERT_TRUE(outer.armed());
    outer_id = outer.id();
    trace::SpanScope inner("trace_test/inner", "test", trace::Floor::kNone,
                           "k=%d", 42);
    inner_id = inner.id();
    ASSERT_NE(inner_id, 0u);
  }
  const TraceSnapshot snap = Trace::Snapshot();
  const TraceSpan* outer = FindById(snap, outer_id);
  const TraceSpan* inner = FindById(snap, inner_id);
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->parent_id, outer_id);
  EXPECT_EQ(inner->args, "k=42");
  // The child is fully contained in the parent's interval.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCountsDrops) {
  telemetry::Telemetry::SetEnabled(true);
  telemetry::Telemetry::Reset();
  trace::TraceOptions tiny;
  tiny.buffer_capacity = 8;
  Trace::Start(tiny);
  Trace::Reset();
  // Options apply to buffers created after Start, so record from a fresh
  // thread whose ring is guaranteed to have the tiny capacity.
  std::thread recorder([] {
    for (int i = 0; i < 20; ++i) {
      trace::SpanScope span("trace_test/overflow", "test", trace::Floor::kNone,
                            "i=%d", i);
    }
  });
  recorder.join();

  const TraceSnapshot snap = Trace::Snapshot();
  const auto retained = SpansNamed(snap, "trace_test/overflow");
  ASSERT_EQ(retained.size(), 8u);
  // Drop-oldest: the survivors are exactly the 8 most recent spans, in order.
  for (size_t i = 0; i < retained.size(); ++i) {
    EXPECT_EQ(retained[i]->args, "i=" + std::to_string(12 + i));
  }
  EXPECT_EQ(Trace::DroppedSpans(), 12u);
  EXPECT_EQ(snap.dropped_spans, 12u);
  // The drops are also visible as a telemetry counter, so a telemetry dump
  // flags a truncated trace even when nobody looks at the trace itself.
  const telemetry::TelemetrySnapshot tsnap = telemetry::Telemetry::Snapshot();
  EXPECT_EQ(tsnap.CounterValue("trace/dropped_spans"), 12u);
  telemetry::Telemetry::SetEnabled(false);
  telemetry::Telemetry::Reset();
}

TEST_F(TraceTest, DurationFloorSuppressesShortSpans) {
  trace::TraceOptions opts;
  opts.op_floor_ns = 1000ull * 1000 * 1000 * 60;  // one minute: nothing passes
  Trace::Start(opts);
  Trace::Reset();
  {
    trace::SpanScope floored("trace_test/floored", "op", trace::Floor::kOp);
    ASSERT_TRUE(floored.armed());
  }
  { trace::SpanScope kept("trace_test/kept", "op", trace::Floor::kNone); }
  const TraceSnapshot snap = Trace::Snapshot();
  EXPECT_TRUE(SpansNamed(snap, "trace_test/floored").empty());
  EXPECT_EQ(SpansNamed(snap, "trace_test/kept").size(), 1u);
}

// The TSan-critical path: worker rings written concurrently with the
// caller's, chunk spans parented under the dispatching caller's span via
// SpanContext propagation, snapshot taken at quiescence after the join.
TEST_F(TraceTest, ParallelForNestsWorkerChunksUnderDispatchSpan) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  std::atomic<int> distinct{0};
  uint64_t root_id = 0;
  {
    trace::SpanScope root("trace_test/dispatch", "test");
    root_id = root.id();
    pool.ParallelFor(64, /*grain=*/1, [&](int64_t begin, int64_t end) {
      {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
        distinct.store(static_cast<int>(seen.size()),
                       std::memory_order_relaxed);
      }
      // Rendezvous: hold the first chunk hostage until a second thread has
      // entered the loop, so at least two rings receive chunk spans even on
      // a single-CPU machine.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (distinct.load(std::memory_order_relaxed) < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
      TRACE_SCOPE("trace_test/body");
      (void)begin;
      (void)end;
    });
  }
  ASSERT_GE(seen.size(), 2u) << "rendezvous timed out with one thread";

  const TraceSnapshot snap = Trace::Snapshot();
  const auto dispatches = SpansNamed(snap, "pool/parallel_for");
  ASSERT_EQ(dispatches.size(), 1u);
  EXPECT_EQ(dispatches[0]->parent_id, root_id);

  const auto chunks = SpansNamed(snap, "pool/chunk");
  ASSERT_GE(chunks.size(), 2u);
  std::set<uint32_t> chunk_tids;
  std::set<uint64_t> chunk_ids;
  for (const TraceSpan* chunk : chunks) {
    EXPECT_EQ(chunk->parent_id, dispatches[0]->id);
    chunk_tids.insert(chunk->tid);
    chunk_ids.insert(chunk->id);
  }
  EXPECT_GE(chunk_tids.size(), 2u)
      << "chunk spans should land on at least two threads";
  for (const TraceSpan* body : SpansNamed(snap, "trace_test/body")) {
    EXPECT_TRUE(chunk_ids.count(body->parent_id) == 1)
        << "body span not parented under a chunk span";
  }
}

// Every complete event emitted by the exporter must carry the Chrome
// trace-event required keys on one line. `events` gets the count of ph:"X"
// lines so callers can assert the file was non-trivial.
void ValidateChromeTraceLines(const std::string& json, size_t* events) {
  *events = 0;
  std::istringstream lines(json);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ph\": \"X\"") == std::string::npos) continue;
    ++*events;
    for (const char* key :
         {"\"name\": ", "\"cat\": ", "\"pid\": ", "\"tid\": ", "\"ts\": ",
          "\"dur\": ", "\"args\": "}) {
      EXPECT_NE(line.find(key), std::string::npos)
          << "event line missing " << key << ": " << line;
    }
  }
}

TEST_F(TraceTest, ChromeTraceExportFromMultiThreadedTraining) {
  auto prepared = bench::PrepareJdDataset(JdPreset::kElectronics, 0.01, 11);
  ASSERT_TRUE(prepared.ok());
  ModelContext context{&prepared->train_graph, &prepared->scene_graph};
  ModelFactoryConfig factory_config;
  factory_config.embedding_dim = 8;
  auto model = MakeRecommender("BPR-MF", context, factory_config);
  ASSERT_TRUE(model.ok());
  TrainConfig config;
  config.epochs = 2;
  config.patience = 0;
  config.threads = 4;
  config.trace = true;
  auto result = TrainAndEvaluate(**model, prepared->split,
                                 prepared->train_graph, config);
  ASSERT_TRUE(result.ok());

  const TraceSnapshot snap = Trace::Snapshot();
  // Trainer phases, nested per-op spans, and pool chunks are all present.
  // Early-run spans can legitimately rotate out of the rings, so only spans
  // that finish near the end of the run are asserted on.
  for (const char* name :
       {"trainer/epoch", "trainer/forward", "trainer/backward",
        "trainer/optimizer", "trainer/eval", "autograd/backward",
        "eval/ranking", "pool/parallel_for", "pool/chunk", "arena/reset"}) {
    EXPECT_FALSE(SpansNamed(snap, name).empty()) << "missing span " << name;
  }
  std::set<uint32_t> tids;
  size_t parented_ops = 0;
  for (const TraceSpan& s : snap.spans) {
    tids.insert(s.tid);
    if ((s.cat == "op" || s.cat == "bwd") && s.parent_id != 0) ++parented_ops;
  }
  EXPECT_GE(tids.size(), 2u) << "expected spans from at least two threads";
  EXPECT_GT(parented_ops, 0u) << "per-op spans should nest under a parent";
  // Chunk spans nest under the dispatching ParallelFor.
  std::set<uint64_t> dispatch_ids;
  for (const TraceSpan* d : SpansNamed(snap, "pool/parallel_for")) {
    dispatch_ids.insert(d->id);
  }
  size_t nested_chunks = 0;
  for (const TraceSpan* chunk : SpansNamed(snap, "pool/chunk")) {
    if (dispatch_ids.count(chunk->parent_id) == 1) ++nested_chunks;
  }
  EXPECT_GT(nested_chunks, 0u);

  // Schema round-trip through the file exporter.
  char path_template[] = "/tmp/scenerec_trace_XXXXXX";
  const int fd = ::mkstemp(path_template);
  ASSERT_GE(fd, 0);
  ::close(fd);
  ASSERT_TRUE(Trace::WriteChromeTrace(path_template).ok());
  std::ifstream in(path_template);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  std::remove(path_template);

  ASSERT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u)
      << "export must open a traceEvents array";
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos)
      << "metadata (process/thread name) events missing";
  EXPECT_NE(json.find("\"name\": \"trainer/epoch\""), std::string::npos);
  size_t events = 0;
  ValidateChromeTraceLines(json, &events);
  EXPECT_EQ(events, snap.spans.size());
  // Structurally well-formed: braces and brackets balance (no brace-bearing
  // payloads exist — names are identifiers, args are "k=v" pairs).
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);

  const std::string summary = Trace::SelfTimeSummary();
  EXPECT_NE(summary.find("self"), std::string::npos);
  EXPECT_NE(summary.find("trainer/"), std::string::npos);
}

}  // namespace
}  // namespace scenerec
