#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tests/test_util.h"

namespace scenerec {
namespace {

using testing::ExpectGradientsClose;

// Numerical-vs-analytic gradient checks for every differentiable op. Each
// test wires the op into a scalar loss (via Sum/Mean of a projection) and
// compares Backward's output against central finite differences.

Tensor RandomVec(int64_t n, Rng& rng) {
  return Tensor::RandomUniform(Shape({n}), -1.0f, 1.0f, rng,
                               /*requires_grad=*/true);
}

Tensor RandomMat(int64_t r, int64_t c, Rng& rng) {
  return Tensor::RandomUniform(Shape({r, c}), -1.0f, 1.0f, rng,
                               /*requires_grad=*/true);
}

/// A fixed projection vector to turn vector outputs into a scalar loss with
/// non-uniform weights (catches transposed/mixed-up gradients that a plain
/// Sum would mask).
Tensor Projection(int64_t n) {
  std::vector<float> v(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i)] = 0.3f + 0.2f * static_cast<float>(i % 5);
  }
  return Tensor::FromVector(Shape({n}), std::move(v));
}

TEST(GradCheckTest, Add) {
  Rng rng(1);
  Tensor a = RandomVec(5, rng), b = RandomVec(5, rng);
  ExpectGradientsClose(
      [&] { return Dot(Add(a, b), Projection(5)); }, {a, b});
}

TEST(GradCheckTest, AddBiasBroadcast) {
  Rng rng(2);
  Tensor a = RandomMat(3, 4, rng);
  Tensor bias = RandomVec(4, rng);
  ExpectGradientsClose(
      [&] { return Dot(SumRows(Add(a, bias)), Projection(4)); }, {a, bias});
}

TEST(GradCheckTest, Sub) {
  Rng rng(3);
  Tensor a = RandomVec(4, rng), b = RandomVec(4, rng);
  ExpectGradientsClose(
      [&] { return Dot(Sub(a, b), Projection(4)); }, {a, b});
}

TEST(GradCheckTest, Mul) {
  Rng rng(4);
  Tensor a = RandomVec(4, rng), b = RandomVec(4, rng);
  ExpectGradientsClose(
      [&] { return Dot(Mul(a, b), Projection(4)); }, {a, b});
}

TEST(GradCheckTest, Div) {
  Rng rng(5);
  Tensor a = RandomVec(4, rng);
  // Keep the denominator away from zero.
  Tensor b = Tensor::RandomUniform(Shape({4}), 0.5f, 1.5f, rng, true);
  ExpectGradientsClose(
      [&] { return Dot(Div(a, b), Projection(4)); }, {a, b});
}

TEST(GradCheckTest, ScaleAndAddScalar) {
  Rng rng(6);
  Tensor a = RandomVec(4, rng);
  ExpectGradientsClose(
      [&] { return Dot(Scale(AddScalar(a, 0.7f), -2.5f), Projection(4)); },
      {a});
}

TEST(GradCheckTest, Sigmoid) {
  Rng rng(7);
  Tensor a = RandomVec(5, rng);
  ExpectGradientsClose(
      [&] { return Dot(Sigmoid(a), Projection(5)); }, {a});
}

TEST(GradCheckTest, Tanh) {
  Rng rng(8);
  Tensor a = RandomVec(5, rng);
  ExpectGradientsClose([&] { return Dot(Tanh(a), Projection(5)); }, {a});
}

TEST(GradCheckTest, ReluAwayFromKink) {
  Rng rng(9);
  // Keep values away from 0 where ReLU is non-differentiable.
  std::vector<float> v{0.8f, -0.6f, 1.2f, -1.5f, 0.4f};
  Tensor a = Tensor::FromVector(Shape({5}), v, true);
  ExpectGradientsClose([&] { return Dot(Relu(a), Projection(5)); }, {a});
}

TEST(GradCheckTest, LeakyReluAwayFromKink) {
  std::vector<float> v{0.8f, -0.6f, 1.2f, -1.5f, 0.4f};
  Tensor a = Tensor::FromVector(Shape({5}), v, true);
  ExpectGradientsClose(
      [&] { return Dot(LeakyRelu(a, 0.1f), Projection(5)); }, {a});
}

TEST(GradCheckTest, Softplus) {
  Rng rng(10);
  Tensor a = RandomVec(5, rng);
  ExpectGradientsClose([&] { return Dot(Softplus(a), Projection(5)); }, {a});
}

TEST(GradCheckTest, ExpLog) {
  Rng rng(11);
  Tensor a = Tensor::RandomUniform(Shape({4}), 0.5f, 2.0f, rng, true);
  ExpectGradientsClose([&] { return Dot(Exp(a), Projection(4)); }, {a});
  ExpectGradientsClose([&] { return Dot(Log(a), Projection(4)); }, {a});
}

TEST(GradCheckTest, Sqrt) {
  Rng rng(12);
  Tensor a = Tensor::RandomUniform(Shape({4}), 0.5f, 2.0f, rng, true);
  ExpectGradientsClose([&] { return Dot(Sqrt(a), Projection(4)); }, {a});
}

TEST(GradCheckTest, SumAndMean) {
  Rng rng(13);
  Tensor a = RandomMat(2, 3, rng);
  ExpectGradientsClose([&] { return Sum(a); }, {a});
  ExpectGradientsClose([&] { return Mean(a); }, {a});
}

TEST(GradCheckTest, SumRowsMeanRows) {
  Rng rng(14);
  Tensor a = RandomMat(3, 4, rng);
  ExpectGradientsClose(
      [&] { return Dot(SumRows(a), Projection(4)); }, {a});
  ExpectGradientsClose(
      [&] { return Dot(MeanRows(a), Projection(4)); }, {a});
}

TEST(GradCheckTest, MatMulBothSides) {
  Rng rng(15);
  Tensor a = RandomMat(3, 4, rng);
  Tensor b = RandomMat(4, 2, rng);
  ExpectGradientsClose(
      [&] { return Dot(SumRows(MatMul(a, b)), Projection(2)); }, {a, b});
}

TEST(GradCheckTest, MatVecBothSides) {
  Rng rng(16);
  Tensor w = RandomMat(3, 5, rng);
  Tensor x = RandomVec(5, rng);
  ExpectGradientsClose(
      [&] { return Dot(MatVec(w, x), Projection(3)); }, {w, x});
}

TEST(GradCheckTest, Dot) {
  Rng rng(17);
  Tensor a = RandomVec(6, rng), b = RandomVec(6, rng);
  ExpectGradientsClose([&] { return Dot(a, b); }, {a, b});
}

TEST(GradCheckTest, CosineSimilarity) {
  Rng rng(18);
  Tensor a = RandomVec(5, rng), b = RandomVec(5, rng);
  ExpectGradientsClose([&] { return CosineSimilarity(a, b); }, {a, b});
}

TEST(GradCheckTest, Concat) {
  Rng rng(19);
  Tensor a = RandomVec(2, rng), b = RandomVec(3, rng);
  ExpectGradientsClose(
      [&] { return Dot(Concat({a, b}), Projection(5)); }, {a, b});
}

TEST(GradCheckTest, StackScalars) {
  Rng rng(20);
  Tensor a = Tensor::Scalar(rng.NextFloat(-1, 1), true);
  Tensor b = Tensor::Scalar(rng.NextFloat(-1, 1), true);
  ExpectGradientsClose(
      [&] { return Dot(Stack({a, b, a}), Projection(3)); }, {a, b});
}

TEST(GradCheckTest, StackRows) {
  Rng rng(21);
  Tensor a = RandomVec(3, rng), b = RandomVec(3, rng);
  ExpectGradientsClose(
      [&] { return Dot(SumRows(StackRows({a, b})), Projection(3)); }, {a, b});
}

TEST(GradCheckTest, RowSlice) {
  Rng rng(22);
  Tensor a = RandomMat(4, 3, rng);
  ExpectGradientsClose([&] { return Dot(Row(a, 2), Projection(3)); }, {a});
}

TEST(GradCheckTest, Reshape) {
  Rng rng(23);
  Tensor a = RandomMat(2, 3, rng);
  ExpectGradientsClose(
      [&] { return Dot(Reshape(a, Shape({6})), Projection(6)); }, {a});
}

TEST(GradCheckTest, GatherWithDuplicateIndices) {
  Rng rng(24);
  Tensor table = RandomMat(5, 3, rng);
  ExpectGradientsClose(
      [&] {
        return Dot(SumRows(Gather(table, {1, 3, 1})), Projection(3));
      },
      {table});
}

TEST(GradCheckTest, Softmax) {
  Rng rng(25);
  Tensor logits = RandomVec(5, rng);
  ExpectGradientsClose(
      [&] { return Dot(Softmax(logits), Projection(5)); }, {logits});
}

TEST(GradCheckTest, WeightedSumRows) {
  Rng rng(26);
  Tensor rows = RandomMat(4, 3, rng);
  Tensor w = RandomVec(4, rng);
  ExpectGradientsClose(
      [&] { return Dot(WeightedSumRows(rows, w), Projection(3)); },
      {rows, w});
}

TEST(GradCheckTest, ScaleByScalarTensor) {
  Rng rng(32);
  Tensor a = RandomVec(5, rng);
  Tensor s = Tensor::Scalar(rng.NextFloat(0.5f, 1.5f), true);
  ExpectGradientsClose(
      [&] { return Dot(ScaleBy(a, s), Projection(5)); }, {a, s});
}

TEST(GradCheckTest, MaxRowsAwayFromTies) {
  // Distinct values so the argmax is stable under the finite-difference
  // perturbation.
  Tensor a = Tensor::FromVector(Shape({3, 2}), {0.1f, 0.9f, 0.5f, 0.2f,
                                                 0.3f, 0.4f},
                                /*requires_grad=*/true);
  ExpectGradientsClose([&] { return Dot(MaxRows(a), Projection(2)); }, {a});
}

TEST(GradCheckTest, L2NormalizeRows) {
  Rng rng(30);
  Tensor a = Tensor::RandomUniform(Shape({3, 4}), 0.5f, 1.5f, rng, true);
  ExpectGradientsClose(
      [&] { return Dot(SumRows(L2NormalizeRows(a)), Projection(4)); }, {a});
}

TEST(GradCheckTest, DropoutMaskIsConsistent) {
  // The dropout mask must be identical in forward and backward: gradient of
  // sum(dropout(x)) w.r.t. x equals the mask itself.
  Rng rng(31);
  Tensor a = Tensor::RandomUniform(Shape({50}), 0.5f, 1.5f, rng, true);
  Tensor dropped = Dropout(a, 0.4f, rng);
  Backward(Sum(dropped));
  for (size_t i = 0; i < a.grad().size(); ++i) {
    const float mask = dropped.value()[i] / a.value()[i];
    EXPECT_NEAR(a.grad()[i], mask, 1e-4) << "element " << i;
  }
}

TEST(GradCheckTest, BprPairLoss) {
  Rng rng(27);
  Tensor pos = Tensor::Scalar(rng.NextFloat(-1, 1), true);
  Tensor neg = Tensor::Scalar(rng.NextFloat(-1, 1), true);
  ExpectGradientsClose([&] { return BprPairLoss(pos, neg); }, {pos, neg});
}

TEST(GradCheckTest, AttentionPattern) {
  // The full scene-attention composition used by SceneRec: cosine logits
  // over neighbor summaries -> softmax -> weighted aggregation.
  Rng rng(28);
  Tensor query = RandomVec(4, rng);
  Tensor key0 = RandomVec(4, rng);
  Tensor key1 = RandomVec(4, rng);
  Tensor values = RandomMat(2, 4, rng);
  ExpectGradientsClose(
      [&] {
        Tensor logits = Stack({CosineSimilarity(query, key0),
                               CosineSimilarity(query, key1)});
        Tensor alpha = Softmax(logits);
        return Dot(WeightedSumRows(values, alpha), Projection(4));
      },
      {query, key0, key1, values});
}

TEST(GradCheckTest, DeepComposition) {
  // A miniature two-layer network end to end.
  Rng rng(29);
  Tensor w1 = RandomMat(4, 3, rng);
  Tensor b1 = RandomVec(4, rng);
  Tensor w2 = RandomMat(2, 4, rng);
  Tensor b2 = RandomVec(2, rng);
  Tensor x = RandomVec(3, rng);
  ExpectGradientsClose(
      [&] {
        Tensor h = Tanh(Add(MatVec(w1, x), b1));
        Tensor y = Add(MatVec(w2, h), b2);
        return Sum(Mul(y, y));
      },
      {w1, b1, w2, b2, x});
}

}  // namespace
}  // namespace scenerec
