#include <algorithm>
#include <cstdio>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/sampler.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tsv_io.h"

namespace scenerec {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig config;
  config.name = "unit";
  config.num_users = 30;
  config.num_items = 200;
  config.num_categories = 12;
  config.num_scenes = 8;
  config.sessions_per_user = 5;
  config.session_length = 6;
  return config;
}

// -- Synthetic generator ------------------------------------------------------

TEST(SyntheticTest, GeneratesValidDataset) {
  auto result = GenerateSyntheticDataset(SmallConfig(), 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = result.value();
  EXPECT_EQ(d.num_users, 30);
  EXPECT_EQ(d.num_items, 200);
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_GT(d.interactions.size(), 0u);
  EXPECT_GT(d.item_item_edges.size(), 0u);
  EXPECT_GT(d.category_scene_edges.size(), 0u);
}

TEST(SyntheticTest, DeterministicForSameSeed) {
  auto a = GenerateSyntheticDataset(SmallConfig(), 7);
  auto b = GenerateSyntheticDataset(SmallConfig(), 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().interactions, b.value().interactions);
  EXPECT_EQ(a.value().item_category, b.value().item_category);
  EXPECT_EQ(a.value().item_item_edges.size(),
            b.value().item_item_edges.size());
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  auto a = GenerateSyntheticDataset(SmallConfig(), 1);
  auto b = GenerateSyntheticDataset(SmallConfig(), 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().interactions, b.value().interactions);
}

TEST(SyntheticTest, EveryUserHasMinimumInteractions) {
  auto result = GenerateSyntheticDataset(SmallConfig(), 3);
  ASSERT_TRUE(result.ok());
  std::vector<int64_t> counts(30, 0);
  for (const Interaction& x : result.value().interactions) {
    counts[static_cast<size_t>(x.user)]++;
  }
  for (int64_t c : counts) EXPECT_GE(c, 5);
}

TEST(SyntheticTest, SceneCoherenceSignalPresent) {
  // Items clicked by a user should concentrate in that user's active scenes:
  // the fraction of a user's clicks whose category shares a scene with the
  // category of another of the user's clicks must be far above random.
  auto result = GenerateSyntheticDataset(SmallConfig(), 11);
  ASSERT_TRUE(result.ok());
  const Dataset& d = result.value();
  SceneGraph scene = d.BuildSceneGraph();

  auto scenes_of_item = [&](int64_t item) {
    auto span = scene.ScenesOfItem(item);
    return std::set<int64_t>(span.begin(), span.end());
  };

  std::vector<std::vector<int64_t>> by_user(static_cast<size_t>(d.num_users));
  for (const Interaction& x : d.interactions) {
    by_user[static_cast<size_t>(x.user)].push_back(x.item);
  }
  double coherent = 0, total = 0;
  for (const auto& items : by_user) {
    for (size_t a = 0; a + 1 < items.size() && a < 10; ++a) {
      auto sa = scenes_of_item(items[a]);
      auto sb = scenes_of_item(items[a + 1]);
      bool shares = false;
      for (int64_t s : sa) {
        if (sb.count(s)) {
          shares = true;
          break;
        }
      }
      coherent += shares;
      total += 1;
    }
  }
  ASSERT_GT(total, 0);
  // With 8 scenes and 2-4 active per user, random pairs share scenes far
  // less often than scene-coherent sessions produce.
  EXPECT_GT(coherent / total, 0.35);
}

TEST(SyntheticTest, ConfigValidationCatchesBadRanges) {
  SyntheticConfig config = SmallConfig();
  config.max_categories_per_scene = 100;  // > num_categories
  EXPECT_FALSE(GenerateSyntheticDataset(config, 1).ok());
  config = SmallConfig();
  config.in_scene_prob = 1.5;
  EXPECT_FALSE(GenerateSyntheticDataset(config, 1).ok());
  config = SmallConfig();
  config.min_interactions_per_user = 2;
  EXPECT_FALSE(GenerateSyntheticDataset(config, 1).ok());
  config = SmallConfig();
  config.session_length = 1;
  EXPECT_FALSE(GenerateSyntheticDataset(config, 1).ok());
}

TEST(SyntheticTest, JdPresetsShapeFollowsTable1) {
  // At scale 1.0 the presets match the paper's entity counts exactly.
  SyntheticConfig full = MakeJdConfig(JdPreset::kBabyToy, 1.0);
  EXPECT_EQ(full.num_users, 4521);
  EXPECT_EQ(full.num_items, 51759);
  EXPECT_EQ(full.num_categories, 103);
  EXPECT_EQ(full.num_scenes, 323);

  SyntheticConfig electronics = MakeJdConfig(JdPreset::kElectronics, 1.0);
  EXPECT_EQ(electronics.num_scenes, 54);
  SyntheticConfig fashion = MakeJdConfig(JdPreset::kFashion, 1.0);
  EXPECT_EQ(fashion.num_scenes, 438);

  // Scaling shrinks users/items but keeps taxonomy sizes.
  SyntheticConfig small = MakeJdConfig(JdPreset::kBabyToy, 0.02);
  EXPECT_LT(small.num_users, 100);
  EXPECT_EQ(small.num_categories, 103);
  EXPECT_EQ(small.num_scenes, 323);
  EXPECT_EQ(JdPresetName(JdPreset::kFoodDrink), std::string("Food & Drink"));
  EXPECT_EQ(AllJdPresets().size(), 4u);
}

TEST(SyntheticTest, GeneratedPresetIsTrainableScale) {
  auto result =
      GenerateSyntheticDataset(MakeJdConfig(JdPreset::kElectronics, 0.01), 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = result.value();
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.name, "Electronics");
  EXPECT_GE(d.num_users, 38);
  EXPECT_GE(d.num_items, 400);
}

// -- Dataset validation -------------------------------------------------------

TEST(DatasetTest, ValidateCatchesBadCategory) {
  auto result = GenerateSyntheticDataset(SmallConfig(), 1);
  ASSERT_TRUE(result.ok());
  Dataset d = std::move(result).value();
  d.item_category[0] = 99;  // out of range
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesDuplicateInteraction) {
  auto result = GenerateSyntheticDataset(SmallConfig(), 1);
  ASSERT_TRUE(result.ok());
  Dataset d = std::move(result).value();
  d.interactions.push_back(d.interactions.front());
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, ValidateCatchesEmptyScene) {
  auto result = GenerateSyntheticDataset(SmallConfig(), 1);
  ASSERT_TRUE(result.ok());
  Dataset d = std::move(result).value();
  d.num_scenes += 1;  // new scene with no categories
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, GraphsAreConsistent) {
  auto result = GenerateSyntheticDataset(SmallConfig(), 9);
  ASSERT_TRUE(result.ok());
  const Dataset& d = result.value();
  UserItemGraph ui = d.BuildUserItemGraph();
  SceneGraph scene = d.BuildSceneGraph();
  EXPECT_EQ(ui.num_interactions(),
            static_cast<int64_t>(d.interactions.size()));
  EXPECT_TRUE(scene.Validate().ok());
  DatasetStats stats = d.Stats();
  EXPECT_EQ(stats.num_users, d.num_users);
  EXPECT_EQ(stats.item_category_edges, d.num_items);
}

// -- Leave-one-out split --------------------------------------------------------

TEST(SplitTest, PartitionsInteractions) {
  auto result = GenerateSyntheticDataset(SmallConfig(), 13);
  ASSERT_TRUE(result.ok());
  const Dataset& d = result.value();
  Rng rng(1);
  auto split_or = MakeLeaveOneOutSplit(d, 50, rng);
  ASSERT_TRUE(split_or.ok()) << split_or.status().ToString();
  const LeaveOneOutSplit& split = split_or.value();

  EXPECT_EQ(split.validation.size(), static_cast<size_t>(d.num_users));
  EXPECT_EQ(split.test.size(), static_cast<size_t>(d.num_users));
  EXPECT_EQ(split.train.size() + 2 * static_cast<size_t>(d.num_users),
            d.interactions.size());

  // Held-out positives are not in train for the same user.
  std::set<std::pair<int64_t, int64_t>> train_set;
  for (const Interaction& x : split.train) {
    train_set.insert({x.user, x.item});
  }
  for (size_t u = 0; u < split.validation.size(); ++u) {
    const auto& v = split.validation[u];
    const auto& t = split.test[u];
    EXPECT_EQ(v.user, static_cast<int64_t>(u));
    EXPECT_EQ(train_set.count({v.user, v.positive_item}), 0u);
    EXPECT_EQ(train_set.count({t.user, t.positive_item}), 0u);
    EXPECT_NE(v.positive_item, t.positive_item);
  }
}

TEST(SplitTest, NegativesAreUnobservedAndDistinct) {
  auto result = GenerateSyntheticDataset(SmallConfig(), 17);
  ASSERT_TRUE(result.ok());
  const Dataset& d = result.value();
  std::set<std::pair<int64_t, int64_t>> observed;
  for (const Interaction& x : d.interactions) {
    observed.insert({x.user, x.item});
  }
  Rng rng(2);
  auto split_or = MakeLeaveOneOutSplit(d, 100, rng);
  ASSERT_TRUE(split_or.ok());
  for (const EvalInstance& inst : split_or.value().test) {
    EXPECT_EQ(inst.negative_items.size(), 100u);
    std::set<int64_t> unique(inst.negative_items.begin(),
                             inst.negative_items.end());
    EXPECT_EQ(unique.size(), 100u);
    for (int64_t item : inst.negative_items) {
      EXPECT_EQ(observed.count({inst.user, item}), 0u)
          << "user " << inst.user << " item " << item;
    }
  }
}

TEST(SplitTest, RejectsTooManyNegatives) {
  auto result = GenerateSyntheticDataset(SmallConfig(), 19);
  ASSERT_TRUE(result.ok());
  Rng rng(3);
  EXPECT_FALSE(MakeLeaveOneOutSplit(result.value(), 200, rng).ok());
  EXPECT_FALSE(MakeLeaveOneOutSplit(result.value(), 0, rng).ok());
}

TEST(SplitTest, RejectsUsersWithTooFewInteractions) {
  Dataset d;
  d.name = "tiny";
  d.num_users = 1;
  d.num_items = 10;
  d.num_categories = 1;
  d.num_scenes = 1;
  d.interactions = {{0, 0}, {0, 1}};  // only 2
  d.item_category.assign(10, 0);
  d.category_scene_edges = {{0, 0, 1.0f}};
  ASSERT_TRUE(d.Validate().ok());
  Rng rng(4);
  EXPECT_FALSE(MakeLeaveOneOutSplit(d, 5, rng).ok());
}

// -- Negative sampler / batcher ---------------------------------------------------

TEST(SamplerTest, NegativesNeverObserved) {
  UserItemGraph g = UserItemGraph::Build(2, 10, {{0, 1}, {0, 3}, {1, 2}});
  NegativeSampler sampler(g);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    int64_t neg = sampler.SampleNegative(0, rng);
    EXPECT_NE(neg, 1);
    EXPECT_NE(neg, 3);
    EXPECT_GE(neg, 0);
    EXPECT_LT(neg, 10);
  }
}

TEST(SamplerTest, EpochCoversAllTrainInteractions) {
  std::vector<Interaction> train{{0, 1}, {0, 3}, {1, 2}};
  UserItemGraph g = UserItemGraph::Build(2, 10, train);
  BprBatcher batcher(train, g);
  Rng rng(6);
  auto triples = batcher.NextEpoch(rng);
  ASSERT_EQ(triples.size(), 3u);
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const BprTriple& t : triples) {
    seen.insert({t.user, t.positive_item});
    EXPECT_FALSE(g.HasInteraction(t.user, t.negative_item));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(SamplerTest, EpochsAreShuffledDifferently) {
  std::vector<Interaction> train;
  for (int64_t i = 0; i < 50; ++i) train.push_back({0, i});
  UserItemGraph g = UserItemGraph::Build(1, 100, train);
  BprBatcher batcher(train, g);
  Rng rng(7);
  auto epoch1 = batcher.NextEpoch(rng);
  auto epoch2 = batcher.NextEpoch(rng);
  bool any_different = false;
  for (size_t i = 0; i < epoch1.size(); ++i) {
    if (epoch1[i].positive_item != epoch2[i].positive_item) {
      any_different = true;
      break;
    }
  }
  EXPECT_TRUE(any_different);
}

// -- TSV round trip ---------------------------------------------------------------

TEST(TsvIoTest, RoundTripPreservesDataset) {
  auto result = GenerateSyntheticDataset(SmallConfig(), 23);
  ASSERT_TRUE(result.ok());
  const Dataset& original = result.value();

  char dir_template[] = "/tmp/scenerec_tsv_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir(dir_template);

  ASSERT_TRUE(SaveDatasetTsv(original, dir).ok());
  auto loaded_or = LoadDatasetTsv(dir);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const Dataset& loaded = loaded_or.value();

  EXPECT_EQ(loaded.name, original.name);
  EXPECT_EQ(loaded.num_users, original.num_users);
  EXPECT_EQ(loaded.num_items, original.num_items);
  EXPECT_EQ(loaded.num_categories, original.num_categories);
  EXPECT_EQ(loaded.num_scenes, original.num_scenes);
  EXPECT_EQ(loaded.interactions, original.interactions);
  EXPECT_EQ(loaded.item_category, original.item_category);
  EXPECT_EQ(loaded.item_item_edges.size(), original.item_item_edges.size());
  EXPECT_EQ(loaded.category_category_edges.size(),
            original.category_category_edges.size());
  EXPECT_EQ(loaded.category_scene_edges.size(),
            original.category_scene_edges.size());
}

TEST(TsvIoTest, LoadMissingDirectoryFails) {
  auto result = LoadDatasetTsv("/tmp/scenerec_does_not_exist_12345");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(TsvIoTest, FuzzedFilesNeverCrash) {
  // Robustness sweep: overwrite each file of a valid dataset with random
  // garbage; LoadDatasetTsv must return an error Status (or, for benign
  // mutations, a dataset that still validates) — never crash.
  auto result = GenerateSyntheticDataset(SmallConfig(), 29);
  ASSERT_TRUE(result.ok());
  char dir_template[] = "/tmp/scenerec_fuzz_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir(dir_template);
  ASSERT_TRUE(SaveDatasetTsv(result.value(), dir).ok());

  const char* files[] = {"meta.tsv",           "interactions.tsv",
                         "item_category.tsv",  "item_item.tsv",
                         "category_category.tsv", "category_scene.tsv"};
  Rng rng(31);
  for (const char* file : files) {
    for (int trial = 0; trial < 8; ++trial) {
      // Re-save the pristine dataset, then corrupt one file.
      ASSERT_TRUE(SaveDatasetTsv(result.value(), dir).ok());
      std::string garbage;
      const int64_t lines = rng.NextInt(1, 6);
      for (int64_t l = 0; l < lines; ++l) {
        const int64_t length = rng.NextInt(0, 40);
        for (int64_t c = 0; c < length; ++c) {
          garbage.push_back(
              static_cast<char>(' ' + rng.NextInt(95)));
        }
        garbage.push_back('\n');
      }
      FILE* f = ::fopen((dir + "/" + file).c_str(), "w");
      ASSERT_NE(f, nullptr);
      ::fputs(garbage.c_str(), f);
      ::fclose(f);
      auto loaded = LoadDatasetTsv(dir);
      if (loaded.ok()) {
        EXPECT_TRUE(loaded->Validate().ok());
      }
    }
  }
}

TEST(TsvIoTest, LoadCorruptMetaFails) {
  char dir_template[] = "/tmp/scenerec_tsv_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir(dir_template);
  {
    FILE* f = ::fopen((dir + "/meta.tsv").c_str(), "w");
    ASSERT_NE(f, nullptr);
    ::fputs("num_users\tnot_a_number\n", f);
    ::fclose(f);
  }
  EXPECT_FALSE(LoadDatasetTsv(dir).ok());
}

}  // namespace
}  // namespace scenerec
