// Parameterized end-to-end learning test: every trainable model in the
// factory must rank held-out positives meaningfully above chance after a
// short training run on scene-coherent data. This is the repository's
// broadest regression net — a change that silently breaks any model's
// gradient flow or scoring path fails here.

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "models/factory.h"
#include "train/trainer.h"

namespace scenerec {
namespace {

struct LearningCase {
  const char* model;
  // Minimum test HR@10 with 50 sampled negatives. Chance is 10/51 ~ 0.196.
  double min_hr;
  float learning_rate;
};

class ModelLearning : public ::testing::TestWithParam<LearningCase> {
 protected:
  static const bench::PreparedDataset& Prepared() {
    // One shared dataset for the whole sweep (expensive to regenerate).
    static const bench::PreparedDataset* const kPrepared = [] {
      auto prepared =
          bench::PrepareJdDataset(JdPreset::kElectronics, 0.018, 7,
                                  /*num_negatives=*/50);
      SCENEREC_CHECK(prepared.ok()) << prepared.status().ToString();
      return new bench::PreparedDataset(std::move(prepared).value());
    }();
    return *kPrepared;
  }
};

TEST_P(ModelLearning, BeatsRandomRanking) {
  const LearningCase& param = GetParam();
  ModelFactoryConfig factory_config;
  factory_config.embedding_dim = 16;
  factory_config.ncf_dim = 8;
  factory_config.gnn_depth = 2;
  factory_config.max_neighbors = 8;
  TrainConfig train_config;
  train_config.epochs = 8;
  train_config.learning_rate = param.learning_rate;
  auto cell = bench::RunCell(param.model, Prepared(), factory_config,
                             train_config);
  ASSERT_TRUE(cell.ok()) << param.model << ": " << cell.status().ToString();
  EXPECT_GT(cell->test.hr, param.min_hr)
      << param.model << " NDCG " << cell->test.ndcg;
  EXPECT_GT(cell->test.ndcg, 0.05) << param.model;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelLearning,
    ::testing::Values(
        // Chance HR@10 here is ~0.196; require a clear margin for the
        // personalized models and a loose floor for the weak reference
        // baselines.
        LearningCase{"BPR-MF", 0.24, 5e-3f},
        LearningCase{"NCF", 0.24, 1e-2f},
        LearningCase{"CMN", 0.20, 5e-3f},
        LearningCase{"PinSAGE", 0.24, 1e-3f},
        LearningCase{"NGCF", 0.24, 1e-3f},
        LearningCase{"GCMC", 0.24, 2e-3f},
        LearningCase{"KGAT", 0.22, 2e-3f},
        LearningCase{"KGCN", 0.22, 2e-3f},
        LearningCase{"SceneRec", 0.26, 2e-3f},
        LearningCase{"SceneRec-noitem", 0.24, 2e-3f},
        LearningCase{"SceneRec-nosce", 0.24, 2e-3f},
        LearningCase{"SceneRec-noatt", 0.24, 2e-3f}),
    [](const ::testing::TestParamInfo<LearningCase>& info) {
      std::string name = info.param.model;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace scenerec
