// Cross-model equivalence tests for the block-scoring path
// (docs/serving.md): for every factory model — batching fast paths and
// per-pair fallbacks alike — ScoreBlock must be bitwise equal to per-pair
// Score(), and the block-based ranking/serving entry points must reproduce
// the per-pair results exactly, serial and parallel. Runs under TSan (the
// parallel block sweep) and ASan+UBSan (span/buffer arithmetic) via
// tools/check.sh.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "eval/top_n.h"
#include "graph/bipartite_graph.h"
#include "models/factory.h"
#include "models/scene_rec.h"

namespace scenerec {
namespace {

/// Every factory-constructible model: the Table 2 grid (including the
/// SceneRec ablation variants) plus the two reference baselines.
std::vector<std::string> AllModelNames() {
  std::vector<std::string> names = Table2ModelNames();
  names.push_back("KGCN");
  names.push_back("GCMC");
  names.push_back("ItemPop");
  names.push_back("ItemRank");
  return names;
}

class ScoringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.name = "scoring-test";
    config.num_users = 30;
    config.num_items = 90;
    config.num_categories = 8;
    config.num_scenes = 5;
    config.sessions_per_user = 4;
    config.session_length = 5;
    auto dataset = GenerateSyntheticDataset(config, 99);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
    Rng rng(1);
    auto split = MakeLeaveOneOutSplit(dataset_, /*num_negatives=*/20, rng);
    ASSERT_TRUE(split.ok());
    split_ = std::move(split).value();
    train_graph_ = UserItemGraph::Build(dataset_.num_users, dataset_.num_items,
                                        split_.train);
    scene_graph_ = dataset_.BuildSceneGraph();
  }

  std::unique_ptr<Recommender> Make(const std::string& name) {
    ModelContext context;
    context.user_item = &train_graph_;
    context.scene = &scene_graph_;
    ModelFactoryConfig config;
    config.embedding_dim = 16;
    config.ncf_dim = 8;
    config.max_neighbors = 8;
    auto model = MakeRecommender(name, context, config);
    EXPECT_TRUE(model.ok()) << name << ": " << model.status().ToString();
    return model.ok() ? std::move(model).value() : nullptr;
  }

  std::vector<int64_t> AllItems() const {
    std::vector<int64_t> items(static_cast<size_t>(dataset_.num_items));
    for (size_t i = 0; i < items.size(); ++i) {
      items[i] = static_cast<int64_t>(i);
    }
    return items;
  }

  Dataset dataset_;
  LeaveOneOutSplit split_;
  UserItemGraph train_graph_;
  SceneGraph scene_graph_;
};

// The core contract: out[r] of one full-catalog block is bitwise equal to
// the per-pair Score, for every factory model (fast path or fallback).
TEST_F(ScoringTest, ScoreBlockIsBitwiseEqualToPerPairScoreForAllModels) {
  for (const std::string& name : AllModelNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Recommender> model = Make(name);
    ASSERT_NE(model, nullptr);
    model->OnEvalBegin();
    const std::vector<int64_t> items = AllItems();
    std::vector<float> block(items.size());
    for (int64_t user : {int64_t{0}, int64_t{7}, int64_t{29}}) {
      model->ScoreBlock(user, items, block);
      for (size_t r = 0; r < items.size(); ++r) {
        // EXPECT_EQ, not NEAR: the block path must not change numerics.
        ASSERT_EQ(block[r], model->Score(user, items[r]))
            << "user " << user << " item " << items[r];
      }
    }
  }
}

// Same contract when Score() runs first and fills the lazy eval caches the
// block path then reads (the reverse fill order of the test above).
TEST_F(ScoringTest, ScoreBlockMatchesAfterPerPairWarmedCaches) {
  std::unique_ptr<Recommender> model = Make("SceneRec");
  ASSERT_NE(model, nullptr);
  ASSERT_TRUE(model->SupportsBlockScoring());
  model->OnEvalBegin();
  const std::vector<int64_t> items = AllItems();
  std::vector<float> expected(items.size());
  for (size_t r = 0; r < items.size(); ++r) {
    expected[r] = model->Score(3, items[r]);
  }
  std::vector<float> block(items.size());
  model->ScoreBlock(3, items, block);
  for (size_t r = 0; r < items.size(); ++r) {
    ASSERT_EQ(block[r], expected[r]) << "item " << items[r];
  }
}

// Edge case: an empty candidate block is a no-op for every model.
TEST_F(ScoringTest, EmptyBlockIsNoOp) {
  for (const std::string& name : AllModelNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Recommender> model = Make(name);
    ASSERT_NE(model, nullptr);
    model->OnEvalBegin();
    model->ScoreBlock(0, std::span<const int64_t>(), std::span<float>());
  }
}

// Full-ranking metrics are bitwise identical between the per-pair ScoreFn
// path and the block path, for a batching model and a fallback model.
TEST_F(ScoringTest, FullRankingMetricsIdenticalAcrossPaths) {
  for (const char* name : {"SceneRec", "BPR-MF", "NGCF", "NCF"}) {
    SCOPED_TRACE(name);
    std::unique_ptr<Recommender> model = Make(name);
    ASSERT_NE(model, nullptr);
    model->OnEvalBegin();
    const RankingMetrics per_pair = EvaluateFullRanking(
        model->Scorer(), train_graph_, split_.test, 10, nullptr);
    const RankingMetrics block = EvaluateFullRanking(
        model->BlockScorer(), train_graph_, split_.test, 10, nullptr);
    EXPECT_DOUBLE_EQ(per_pair.hr, block.hr);
    EXPECT_DOUBLE_EQ(per_pair.ndcg, block.ndcg);
    EXPECT_DOUBLE_EQ(per_pair.mrr, block.mrr);
    EXPECT_EQ(per_pair.num_instances, block.num_instances);
  }
}

// Sampled-protocol metrics likewise.
TEST_F(ScoringTest, SampledRankingMetricsIdenticalAcrossPaths) {
  for (const char* name : {"SceneRec-noatt", "KGAT", "ItemRank"}) {
    SCOPED_TRACE(name);
    std::unique_ptr<Recommender> model = Make(name);
    ASSERT_NE(model, nullptr);
    model->OnEvalBegin();
    const RankingMetrics per_pair =
        EvaluateRanking(model->Scorer(), split_.test, 10, nullptr);
    model->OnEvalBegin();
    const RankingMetrics block =
        EvaluateRanking(model->BlockScorer(), split_.test, 10, nullptr);
    EXPECT_DOUBLE_EQ(per_pair.hr, block.hr);
    EXPECT_DOUBLE_EQ(per_pair.ndcg, block.ndcg);
    EXPECT_DOUBLE_EQ(per_pair.mrr, block.mrr);
  }
}

// Parallel block scoring (concurrent ScoreBlock on pool threads, reading
// the caches PrepareParallelScoring filled) reproduces the serial per-pair
// metrics bitwise. This is the TSan-critical sweep.
TEST_F(ScoringTest, ParallelBlockFullRankingMatchesSerialPerPair) {
  for (const char* name :
       {"SceneRec", "SceneRec-nosce", "BPR-MF", "GCMC"}) {
    SCOPED_TRACE(name);
    std::unique_ptr<Recommender> model = Make(name);
    ASSERT_NE(model, nullptr);
    model->OnEvalBegin();
    const RankingMetrics serial = EvaluateFullRanking(
        model->Scorer(), train_graph_, split_.test, 10, nullptr);
    ThreadPool pool(4);
    ASSERT_TRUE(model->PrepareParallelScoring(pool));
    const RankingMetrics parallel = EvaluateFullRanking(
        model->BlockScorer(), train_graph_, split_.test, 10, &pool);
    EXPECT_DOUBLE_EQ(serial.hr, parallel.hr);
    EXPECT_DOUBLE_EQ(serial.ndcg, parallel.ndcg);
    EXPECT_DOUBLE_EQ(serial.mrr, parallel.mrr);
  }
}

// Top-N serving: the block path with partial selection returns the exact
// list of the per-pair path, for every model.
TEST_F(ScoringTest, TopNIdenticalAcrossPathsForAllModels) {
  for (const std::string& name : AllModelNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Recommender> model = Make(name);
    ASSERT_NE(model, nullptr);
    model->OnEvalBegin();
    for (int64_t user : {int64_t{0}, int64_t{11}}) {
      const auto per_pair =
          TopNRecommendations(model->Scorer(), train_graph_, user, 10);
      const auto block =
          TopNRecommendations(model->BlockScorer(), train_graph_, user, 10);
      ASSERT_EQ(per_pair.size(), block.size());
      for (size_t i = 0; i < per_pair.size(); ++i) {
        EXPECT_EQ(per_pair[i].item, block[i].item) << "rank " << i;
        EXPECT_EQ(per_pair[i].score, block[i].score) << "rank " << i;
      }
    }
  }
}

// Masked-to-nothing edge case: when the user has interacted with everything
// except the positive, the full-ranking candidate list is just the positive
// (rank 0, perfect metrics) and Top-N has one candidate.
TEST_F(ScoringTest, FullyMaskedCatalogEdgeCase) {
  std::vector<Interaction> interactions;
  for (int64_t item = 0; item < 5; ++item) {
    if (item != 3) interactions.push_back({0, item});
  }
  UserItemGraph graph = UserItemGraph::Build(1, 5, interactions);
  std::vector<EvalInstance> instances(1);
  instances[0] = {0, 3, {}};
  BlockScoreFn score = BlockScorerFromPairs(
      [](int64_t, int64_t item) { return static_cast<float>(item); });
  const RankingMetrics m = EvaluateFullRanking(score, graph, instances, 10);
  EXPECT_DOUBLE_EQ(m.hr, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0);

  const auto recs = TopNRecommendations(score, graph, 0, 10);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].item, 3);
}

}  // namespace
}  // namespace scenerec
