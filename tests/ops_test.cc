#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tests/test_util.h"

namespace scenerec {
namespace {

using testing::ExpectGradientsClose;
using testing::ExpectVectorNear;

// Forward-value tests for every op. Gradient correctness is covered
// separately in grad_check_test.cc.

TEST(OpsForwardTest, Add) {
  Tensor a = Tensor::FromVector(Shape({3}), {1, 2, 3});
  Tensor b = Tensor::FromVector(Shape({3}), {10, 20, 30});
  ExpectVectorNear(Add(a, b).value(), {11, 22, 33});
}

TEST(OpsForwardTest, AddBiasBroadcast) {
  Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector(Shape({3}), {10, 20, 30});
  ExpectVectorNear(Add(a, bias).value(), {11, 22, 33, 14, 25, 36});
}

TEST(OpsForwardTest, SubMulDiv) {
  Tensor a = Tensor::FromVector(Shape({2}), {6, 8});
  Tensor b = Tensor::FromVector(Shape({2}), {2, 4});
  ExpectVectorNear(Sub(a, b).value(), {4, 4});
  ExpectVectorNear(Mul(a, b).value(), {12, 32});
  ExpectVectorNear(Div(a, b).value(), {3, 2});
}

TEST(OpsForwardTest, ScaleAddScalarNeg) {
  Tensor a = Tensor::FromVector(Shape({2}), {1, -2});
  ExpectVectorNear(Scale(a, 3.0f).value(), {3, -6});
  ExpectVectorNear(AddScalar(a, 1.5f).value(), {2.5f, -0.5f});
  ExpectVectorNear(Neg(a).value(), {-1, 2});
}

TEST(OpsForwardTest, SigmoidKnownValues) {
  Tensor a = Tensor::FromVector(Shape({3}), {0.0f, 100.0f, -100.0f});
  auto v = Sigmoid(a).value();
  EXPECT_NEAR(v[0], 0.5f, 1e-6);
  EXPECT_NEAR(v[1], 1.0f, 1e-6);
  EXPECT_NEAR(v[2], 0.0f, 1e-6);
}

TEST(OpsForwardTest, TanhReluLeakyRelu) {
  Tensor a = Tensor::FromVector(Shape({2}), {1.0f, -2.0f});
  EXPECT_NEAR(Tanh(a).at(0), std::tanh(1.0f), 1e-6);
  ExpectVectorNear(Relu(a).value(), {1.0f, 0.0f});
  ExpectVectorNear(LeakyRelu(a, 0.1f).value(), {1.0f, -0.2f});
}

TEST(OpsForwardTest, SoftplusStableAtExtremes) {
  Tensor a = Tensor::FromVector(Shape({3}), {0.0f, 50.0f, -50.0f});
  auto v = Softplus(a).value();
  EXPECT_NEAR(v[0], std::log(2.0f), 1e-6);
  EXPECT_NEAR(v[1], 50.0f, 1e-4);
  EXPECT_NEAR(v[2], 0.0f, 1e-6);
  EXPECT_TRUE(std::isfinite(v[1]));
}

TEST(OpsForwardTest, ExpLogSqrt) {
  Tensor a = Tensor::FromVector(Shape({2}), {0.0f, 1.0f});
  ExpectVectorNear(Exp(a).value(), {1.0f, std::exp(1.0f)});
  Tensor b = Tensor::FromVector(Shape({2}), {1.0f, std::exp(2.0f)});
  ExpectVectorNear(Log(b).value(), {0.0f, 2.0f}, 1e-4f);
  Tensor c = Tensor::FromVector(Shape({2}), {4.0f, 9.0f});
  ExpectVectorNear(Sqrt(c).value(), {2.0f, 3.0f});
}

TEST(OpsForwardTest, SumMean) {
  Tensor a = Tensor::FromVector(Shape({4}), {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).scalar(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).scalar(), 2.5f);
}

TEST(OpsForwardTest, SumRowsMeanRows) {
  Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  ExpectVectorNear(SumRows(a).value(), {5, 7, 9});
  ExpectVectorNear(MeanRows(a).value(), {2.5f, 3.5f, 4.5f});
}

TEST(OpsForwardTest, MatMul) {
  Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape({3, 2}), {7, 8, 9, 10, 11, 12});
  // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
  ExpectVectorNear(MatMul(a, b).value(), {58, 64, 139, 154});
}

TEST(OpsForwardTest, MatVec) {
  Tensor w = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor x = Tensor::FromVector(Shape({3}), {1, 0, -1});
  ExpectVectorNear(MatVec(w, x).value(), {-2, -2});
}

TEST(OpsForwardTest, Dot) {
  Tensor a = Tensor::FromVector(Shape({3}), {1, 2, 3});
  Tensor b = Tensor::FromVector(Shape({3}), {4, -5, 6});
  EXPECT_FLOAT_EQ(Dot(a, b).scalar(), 12.0f);
}

TEST(OpsForwardTest, CosineSimilarityKnownValues) {
  Tensor a = Tensor::FromVector(Shape({2}), {1, 0});
  Tensor b = Tensor::FromVector(Shape({2}), {0, 1});
  EXPECT_NEAR(CosineSimilarity(a, b).scalar(), 0.0f, 1e-5);
  Tensor c = Tensor::FromVector(Shape({2}), {2, 0});
  EXPECT_NEAR(CosineSimilarity(a, c).scalar(), 1.0f, 1e-4);
  Tensor d = Tensor::FromVector(Shape({2}), {-3, 0});
  EXPECT_NEAR(CosineSimilarity(a, d).scalar(), -1.0f, 1e-4);
}

TEST(OpsForwardTest, CosineSimilarityZeroVectorIsFinite) {
  Tensor a = Tensor::FromVector(Shape({2}), {0, 0});
  Tensor b = Tensor::FromVector(Shape({2}), {1, 1});
  float v = CosineSimilarity(a, b).scalar();
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(v, 0.0f, 1e-3);
}

TEST(OpsForwardTest, Concat) {
  Tensor a = Tensor::FromVector(Shape({2}), {1, 2});
  Tensor b = Tensor::FromVector(Shape({3}), {3, 4, 5});
  Tensor c = Concat({a, b});
  EXPECT_EQ(c.shape(), Shape({5}));
  ExpectVectorNear(c.value(), {1, 2, 3, 4, 5});
}

TEST(OpsForwardTest, StackScalars) {
  Tensor s = Stack({Tensor::Scalar(1), Tensor::Scalar(2), Tensor::Scalar(3)});
  EXPECT_EQ(s.shape(), Shape({3}));
  ExpectVectorNear(s.value(), {1, 2, 3});
}

TEST(OpsForwardTest, StackRows) {
  Tensor r0 = Tensor::FromVector(Shape({2}), {1, 2});
  Tensor r1 = Tensor::FromVector(Shape({2}), {3, 4});
  Tensor m = StackRows({r0, r1});
  EXPECT_EQ(m.shape(), Shape({2, 2}));
  ExpectVectorNear(m.value(), {1, 2, 3, 4});
}

TEST(OpsForwardTest, RowSlice) {
  Tensor a = Tensor::FromVector(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
  ExpectVectorNear(Row(a, 1).value(), {3, 4});
  ExpectVectorNear(Row(a, 2).value(), {5, 6});
}

TEST(OpsForwardTest, Reshape) {
  Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, Shape({6}));
  EXPECT_EQ(r.shape(), Shape({6}));
  ExpectVectorNear(r.value(), {1, 2, 3, 4, 5, 6});
}

TEST(OpsForwardTest, GatherRowsWithDuplicates) {
  Tensor table = Tensor::FromVector(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
  Tensor g = Gather(table, {2, 0, 2});
  EXPECT_EQ(g.shape(), Shape({3, 2}));
  ExpectVectorNear(g.value(), {5, 6, 1, 2, 5, 6});
}

TEST(OpsForwardTest, SoftmaxNormalizes) {
  Tensor logits = Tensor::FromVector(Shape({3}), {1.0f, 2.0f, 3.0f});
  auto p = Softmax(logits).value();
  float sum = p[0] + p[1] + p[2];
  EXPECT_NEAR(sum, 1.0f, 1e-6);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(OpsForwardTest, SoftmaxStableForLargeLogits) {
  Tensor logits = Tensor::FromVector(Shape({2}), {1000.0f, 1000.0f});
  auto p = Softmax(logits).value();
  EXPECT_NEAR(p[0], 0.5f, 1e-6);
  EXPECT_NEAR(p[1], 0.5f, 1e-6);
}

TEST(OpsForwardTest, WeightedSumRows) {
  Tensor rows = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor w = Tensor::FromVector(Shape({2}), {0.25f, 0.75f});
  ExpectVectorNear(WeightedSumRows(rows, w).value(),
                   {3.25f, 4.25f, 5.25f});
}

TEST(OpsForwardTest, MaxRows) {
  Tensor a = Tensor::FromVector(Shape({3, 2}), {1, 9, 5, 2, 3, 4});
  ExpectVectorNear(MaxRows(a).value(), {5, 9});
}

TEST(OpsForwardTest, MaxRowsGradientGoesToArgmax) {
  Tensor a = Tensor::FromVector(Shape({2, 2}), {1, 9, 5, 2},
                                /*requires_grad=*/true);
  Backward(Sum(MaxRows(a)));
  ExpectVectorNear(a.grad(), {0, 1, 1, 0});
}

TEST(OpsForwardTest, L2NormalizeRowsUnitNorm) {
  Tensor a = Tensor::FromVector(Shape({2, 2}), {3, 4, 0, 5});
  auto v = L2NormalizeRows(a).value();
  EXPECT_NEAR(v[0], 0.6f, 1e-5);
  EXPECT_NEAR(v[1], 0.8f, 1e-5);
  EXPECT_NEAR(v[2], 0.0f, 1e-5);
  EXPECT_NEAR(v[3], 1.0f, 1e-5);
}

TEST(OpsForwardTest, L2NormalizeZeroRowIsFinite) {
  Tensor a = Tensor::FromVector(Shape({1, 3}), {0, 0, 0});
  const std::vector<float> values = L2NormalizeRows(a).value();
  for (float v : values) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(OpsForwardTest, DropoutZeroRateIsIdentity) {
  Rng rng(1);
  Tensor a = Tensor::FromVector(Shape({4}), {1, 2, 3, 4});
  ExpectVectorNear(Dropout(a, 0.0f, rng).value(), {1, 2, 3, 4});
}

TEST(OpsForwardTest, DropoutKeepsExpectationAndZeroesSome) {
  Rng rng(2);
  Tensor a = Tensor::Full(Shape({10000}), 1.0f);
  auto v = Dropout(a, 0.3f, rng).value();
  int64_t zeros = 0;
  double sum = 0;
  for (float x : v) {
    if (x == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(x, 1.0f / 0.7f, 1e-5);
    }
    sum += x;
  }
  EXPECT_NEAR(zeros / 10000.0, 0.3, 0.02);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.03);
}

TEST(OpsForwardTest, BprPairLossValues) {
  // pos >> neg -> loss near 0; pos << neg -> loss near (neg - pos).
  Tensor big = BprPairLoss(Tensor::Scalar(10.0f), Tensor::Scalar(-10.0f));
  EXPECT_NEAR(big.scalar(), 0.0f, 1e-4);
  Tensor bad = BprPairLoss(Tensor::Scalar(-10.0f), Tensor::Scalar(10.0f));
  EXPECT_NEAR(bad.scalar(), 20.0f, 1e-3);
  Tensor even = BprPairLoss(Tensor::Scalar(1.0f), Tensor::Scalar(1.0f));
  EXPECT_NEAR(even.scalar(), std::log(2.0f), 1e-5);
}

// -- Fused / batched ops ------------------------------------------------------

TEST(FusedOpsTest, LinearActMatchesComposition) {
  Rng rng(11);
  Tensor w = Tensor::RandomUniform(Shape({3, 4}), -1, 1, rng);
  Tensor x = Tensor::RandomUniform(Shape({4}), -1, 1, rng);
  Tensor b = Tensor::RandomUniform(Shape({3}), -1, 1, rng);
  Tensor composed = Sigmoid(Add(MatVec(w, x), b));
  Tensor fused = LinearSigmoid(w, x, b);
  EXPECT_EQ(fused.shape(), Shape({3}));
  ExpectVectorNear(fused.value(), composed.value(), 1e-6f);
}

TEST(FusedOpsTest, LinearActRowsBitwiseEqualsSingleRows) {
  Rng rng(12);
  Tensor w = Tensor::RandomUniform(Shape({5, 7}), -1, 1, rng);
  Tensor b = Tensor::RandomUniform(Shape({5}), -1, 1, rng);
  Tensor xs = Tensor::RandomUniform(Shape({4, 7}), -1, 1, rng);
  Tensor batched = LinearActRows(w, xs, b, kernels::FusedAct::kLeakyRelu);
  ASSERT_EQ(batched.shape(), Shape({4, 5}));
  for (int64_t r = 0; r < 4; ++r) {
    Tensor single =
        LinearAct(w, Row(xs, r), b, kernels::FusedAct::kLeakyRelu);
    for (int64_t j = 0; j < 5; ++j) {
      // Bitwise equality: the batched path must use the identical per-row
      // kernel (the parallel-vs-serial eval tests depend on this).
      EXPECT_EQ(batched.at(r * 5 + j), single.at(j)) << r << "," << j;
    }
  }
}

TEST(FusedOpsTest, MatVecBatchBitwiseEqualsMatVec) {
  Rng rng(13);
  Tensor w = Tensor::RandomUniform(Shape({6, 3}), -1, 1, rng);
  Tensor xs = Tensor::RandomUniform(Shape({5, 3}), -1, 1, rng);
  Tensor batched = MatVecBatch(w, xs);
  ASSERT_EQ(batched.shape(), Shape({5, 6}));
  for (int64_t r = 0; r < 5; ++r) {
    Tensor single = MatVec(w, Row(xs, r));
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_EQ(batched.at(r * 6 + j), single.at(j)) << r << "," << j;
    }
  }
}

TEST(FusedOpsTest, FusedCosineMatchesUnfused) {
  Rng rng(14);
  Tensor a = Tensor::RandomUniform(Shape({9}), -1, 1, rng);
  Tensor b = Tensor::RandomUniform(Shape({9}), -1, 1, rng);
  EXPECT_NEAR(CosineSimilarity(a, b).scalar(),
              CosineSimilarityUnfused(a, b).scalar(), 1e-5f);
}

TEST(FusedOpsTest, ConcatColsValues) {
  Tensor a = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(Shape({2, 3}), {5, 6, 7, 8, 9, 10});
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.shape(), Shape({2, 5}));
  ExpectVectorNear(c.value(), {1, 2, 5, 6, 7, 3, 4, 8, 9, 10});
}

TEST(FusedOpsTest, GatherRowsValues) {
  Tensor a = Tensor::FromVector(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), Shape({3, 2}));
  ExpectVectorNear(g.value(), {5, 6, 1, 2, 5, 6});
}

// -- Gradient checks for the fused / batched ops ------------------------------

TEST(FusedOpsGradTest, LinearActAllActivations) {
  const kernels::FusedAct acts[] = {
      kernels::FusedAct::kNone, kernels::FusedAct::kSigmoid,
      kernels::FusedAct::kTanh, kernels::FusedAct::kRelu,
      kernels::FusedAct::kLeakyRelu};
  for (kernels::FusedAct act : acts) {
    Rng rng(20 + static_cast<int>(act));
    Tensor w = Tensor::RandomUniform(Shape({3, 4}), -1, 1, rng, true);
    Tensor x = Tensor::RandomUniform(Shape({4}), 0.1f, 1, rng, true);
    Tensor b = Tensor::RandomUniform(Shape({3}), -1, 1, rng, true);
    ExpectGradientsClose([&] { return Sum(LinearAct(w, x, b, act)); },
                         {w, x, b});
  }
}

TEST(FusedOpsGradTest, LinearSigmoid) {
  Rng rng(25);
  Tensor w = Tensor::RandomUniform(Shape({2, 5}), -1, 1, rng, true);
  Tensor x = Tensor::RandomUniform(Shape({5}), -1, 1, rng, true);
  Tensor b = Tensor::RandomUniform(Shape({2}), -1, 1, rng, true);
  ExpectGradientsClose([&] { return Sum(LinearSigmoid(w, x, b)); }, {w, x, b});
}

TEST(FusedOpsGradTest, LinearActRows) {
  Rng rng(26);
  Tensor w = Tensor::RandomUniform(Shape({3, 4}), -1, 1, rng, true);
  Tensor xs = Tensor::RandomUniform(Shape({5, 4}), 0.1f, 1, rng, true);
  Tensor b = Tensor::RandomUniform(Shape({3}), -1, 1, rng, true);
  ExpectGradientsClose(
      [&] {
        return Sum(LinearActRows(w, xs, b, kernels::FusedAct::kTanh));
      },
      {w, xs, b});
}

TEST(FusedOpsGradTest, MatVecBatch) {
  Rng rng(27);
  Tensor w = Tensor::RandomUniform(Shape({4, 3}), -1, 1, rng, true);
  Tensor xs = Tensor::RandomUniform(Shape({6, 3}), -1, 1, rng, true);
  ExpectGradientsClose([&] { return Sum(MatVecBatch(w, xs)); }, {w, xs});
}

TEST(FusedOpsGradTest, FusedCosineSimilarity) {
  Rng rng(28);
  Tensor a = Tensor::RandomUniform(Shape({6}), -1, 1, rng, true);
  Tensor b = Tensor::RandomUniform(Shape({6}), -1, 1, rng, true);
  ExpectGradientsClose([&] { return CosineSimilarity(a, b); }, {a, b});
}

TEST(FusedOpsGradTest, FusedCosineSimilarityNearZeroVectors) {
  // The eps-regularized gradient must stay finite and match finite
  // differences even when one input is (almost) the zero vector.
  Tensor a = Tensor::FromVector(Shape({3}), {1e-3f, -1e-3f, 1e-3f},
                                /*requires_grad=*/true);
  Tensor b = Tensor::FromVector(Shape({3}), {0.5f, -0.25f, 1.0f},
                                /*requires_grad=*/true);
  ExpectGradientsClose([&] { return CosineSimilarity(a, b); }, {a, b},
                       /*eps=*/1e-4f, /*rtol=*/8e-2f, /*atol=*/5e-3f);
}

TEST(FusedOpsGradTest, ConcatCols) {
  Rng rng(29);
  Tensor a = Tensor::RandomUniform(Shape({3, 2}), -1, 1, rng, true);
  Tensor b = Tensor::RandomUniform(Shape({3, 4}), -1, 1, rng, true);
  ExpectGradientsClose([&] { return Sum(ConcatCols(a, b)); }, {a, b});
}

TEST(FusedOpsGradTest, GatherRowsWithDuplicates) {
  Rng rng(30);
  Tensor a = Tensor::RandomUniform(Shape({4, 3}), -1, 1, rng, true);
  ExpectGradientsClose(
      [&] { return Sum(GatherRows(a, {1, 3, 1, 0})); }, {a});
}

// -- Vectorized kernels vs scalar references ----------------------------------

// Shapes straddling the 8-lane accumulator bank and the 4-row GEMM tile:
// 1 and 3 exercise pure tails, 17 a bank plus tail, 63/65 straddle the
// 64-element boundary.
const int64_t kKernelSizes[] = {1, 3, 17, 63, 65};

std::vector<float> RandomVec(int64_t n, Rng& rng) {
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.NextDouble()) * 2.0f - 1.0f;
  return v;
}

void ExpectNearRel(const std::vector<float>& got,
                   const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const float tol = 1e-5f + 1e-4f * std::fabs(want[i]);
    EXPECT_NEAR(got[i], want[i], tol) << "at index " << i;
  }
}

TEST(KernelEquivalenceTest, DotMatchesRef) {
  Rng rng(40);
  for (int64_t n : kKernelSizes) {
    std::vector<float> a = RandomVec(n, rng);
    std::vector<float> b = RandomVec(n, rng);
    const float want = kernels::DotRef(a.data(), b.data(), n);
    const float got = kernels::Dot(a.data(), b.data(), n);
    EXPECT_NEAR(got, want, 1e-5f + 1e-4f * std::fabs(want)) << "n=" << n;
  }
}

TEST(KernelEquivalenceTest, GemvMatchesRef) {
  Rng rng(41);
  for (int64_t m : kKernelSizes) {
    for (int64_t n : kKernelSizes) {
      std::vector<float> w = RandomVec(m * n, rng);
      std::vector<float> x = RandomVec(n, rng);
      std::vector<float> want(static_cast<size_t>(m));
      std::vector<float> got(static_cast<size_t>(m));
      kernels::GemvRef(w.data(), m, n, x.data(), want.data());
      kernels::Gemv(w.data(), m, n, x.data(), got.data());
      ExpectNearRel(got, want);
    }
  }
}

TEST(KernelEquivalenceTest, GemvTAccumMatchesRef) {
  Rng rng(42);
  for (int64_t m : kKernelSizes) {
    for (int64_t n : kKernelSizes) {
      std::vector<float> w = RandomVec(m * n, rng);
      std::vector<float> g = RandomVec(m, rng);
      std::vector<float> want = RandomVec(n, rng);
      std::vector<float> got = want;
      kernels::GemvTAccumRef(w.data(), m, n, g.data(), want.data());
      kernels::GemvTAccum(w.data(), m, n, g.data(), got.data());
      ExpectNearRel(got, want);
    }
  }
}

TEST(KernelEquivalenceTest, GerAccumMatchesRef) {
  Rng rng(43);
  for (int64_t m : kKernelSizes) {
    for (int64_t n : kKernelSizes) {
      std::vector<float> g = RandomVec(m, rng);
      std::vector<float> x = RandomVec(n, rng);
      std::vector<float> want = RandomVec(m * n, rng);
      std::vector<float> got = want;
      kernels::GerAccumRef(g.data(), x.data(), m, n, want.data());
      kernels::GerAccum(g.data(), x.data(), m, n, got.data());
      ExpectNearRel(got, want);
    }
  }
}

TEST(KernelEquivalenceTest, GemmMatchesRef) {
  Rng rng(44);
  for (int64_t m : kKernelSizes) {
    for (int64_t n : kKernelSizes) {
      const int64_t k = 65 - (m % 3);  // vary k a little too
      std::vector<float> a = RandomVec(m * k, rng);
      std::vector<float> b = RandomVec(k * n, rng);
      std::vector<float> want(static_cast<size_t>(m * n));
      std::vector<float> got(static_cast<size_t>(m * n));
      kernels::GemmRef(a.data(), b.data(), want.data(), m, k, n);
      kernels::Gemm(a.data(), b.data(), got.data(), m, k, n);
      ExpectNearRel(got, want);
    }
  }
}

TEST(KernelEquivalenceTest, GemmNTAccumMatchesRef) {
  Rng rng(45);
  for (int64_t m : kKernelSizes) {
    const int64_t n = 33;
    const int64_t k = 17;
    std::vector<float> g = RandomVec(m * n, rng);
    std::vector<float> b = RandomVec(k * n, rng);
    std::vector<float> want = RandomVec(m * k, rng);
    std::vector<float> got = want;
    kernels::GemmNTAccumRef(g.data(), b.data(), want.data(), m, n, k);
    kernels::GemmNTAccum(g.data(), b.data(), got.data(), m, n, k);
    ExpectNearRel(got, want);
  }
}

TEST(KernelEquivalenceTest, GemmTNAccumMatchesRef) {
  Rng rng(46);
  for (int64_t n : kKernelSizes) {
    const int64_t m = 33;
    const int64_t k = 17;
    std::vector<float> a = RandomVec(m * k, rng);
    std::vector<float> g = RandomVec(m * n, rng);
    std::vector<float> want = RandomVec(k * n, rng);
    std::vector<float> got = want;
    kernels::GemmTNAccumRef(a.data(), g.data(), want.data(), m, k, n);
    kernels::GemmTNAccum(a.data(), g.data(), got.data(), m, k, n);
    ExpectNearRel(got, want);
  }
}

TEST(KernelEquivalenceTest, GemvRowsBitwiseEqualsGemv) {
  Rng rng(47);
  const int64_t m = 5, n = 17, rows = 4;
  std::vector<float> w = RandomVec(m * n, rng);
  std::vector<float> xs = RandomVec(rows * n, rng);
  std::vector<float> batched(static_cast<size_t>(rows * m));
  kernels::GemvRows(w.data(), m, n, xs.data(), rows, batched.data());
  for (int64_t r = 0; r < rows; ++r) {
    std::vector<float> single(static_cast<size_t>(m));
    kernels::Gemv(w.data(), m, n, xs.data() + r * n, single.data());
    for (int64_t i = 0; i < m; ++i) {
      EXPECT_EQ(batched[static_cast<size_t>(r * m + i)],
                single[static_cast<size_t>(i)])
          << r << "," << i;
    }
  }
}

TEST(KernelEquivalenceTest, GemvMultiMatchesRef) {
  Rng rng(50);
  for (int64_t m : kKernelSizes) {
    for (int64_t n : kKernelSizes) {
      const int64_t nq = 5;
      std::vector<float> w = RandomVec(m * n, rng);
      std::vector<float> xs = RandomVec(nq * n, rng);
      std::vector<float> want(static_cast<size_t>(nq * m));
      std::vector<float> got(static_cast<size_t>(nq * m));
      kernels::GemvMultiRef(w.data(), m, n, xs.data(), nq, want.data());
      kernels::GemvMulti(w.data(), m, n, xs.data(), nq, got.data());
      ExpectNearRel(got, want);
    }
  }
}

// nq = 1..9 covers every dispatch shape: the scalar remainder alone, the
// 4-query SSE2/AVX2 group plus remainders, and the 8-query AVX2 group
// plus a trailing query. Bitwise — GemvMulti's contract is that batching
// queries cannot change a single bit of any result.
TEST(KernelEquivalenceTest, GemvMultiBitwiseEqualsGemv) {
  Rng rng(51);
  for (int64_t nq = 1; nq <= 9; ++nq) {
    for (int64_t n : {17LL, 64LL}) {
      const int64_t m = 37;
      std::vector<float> w = RandomVec(m * n, rng);
      std::vector<float> xs = RandomVec(nq * n, rng);
      std::vector<float> batched(static_cast<size_t>(nq * m));
      kernels::GemvMulti(w.data(), m, n, xs.data(), nq, batched.data());
      for (int64_t q = 0; q < nq; ++q) {
        std::vector<float> single(static_cast<size_t>(m));
        kernels::Gemv(w.data(), m, n, xs.data() + q * n, single.data());
        for (int64_t i = 0; i < m; ++i) {
          EXPECT_EQ(batched[static_cast<size_t>(q * m + i)],
                    single[static_cast<size_t>(i)])
              << "nq=" << nq << " n=" << n << " q=" << q << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelEquivalenceTest, GemvMultiEmptyMatrix) {
  Rng rng(52);
  const int64_t n = 8, nq = 6;
  std::vector<float> xs = RandomVec(nq * n, rng);
  std::vector<float> ys(1, 123.0f);  // must stay untouched for m = 0
  kernels::GemvMulti(nullptr, 0, n, xs.data(), nq, ys.data());
  EXPECT_EQ(ys[0], 123.0f);
}

TEST(KernelEquivalenceTest, DotQ8MatchesRefExactly) {
  Rng rng(48);
  for (int64_t n : kKernelSizes) {
    std::vector<int8_t> q(static_cast<size_t>(n));
    std::vector<uint8_t> c(static_cast<size_t>(n));
    for (int8_t& v : q) {
      v = static_cast<int8_t>(static_cast<int64_t>(rng.NextInt(255)) - 127);
    }
    for (uint8_t& v : c) v = static_cast<uint8_t>(rng.NextInt(256));
    // Integer accumulation is exact, so unlike the float kernels the
    // vectorized and reference paths must agree bitwise.
    EXPECT_EQ(kernels::DotQ8(q.data(), c.data(), n),
              kernels::DotQ8Ref(q.data(), c.data(), n))
        << "n=" << n;
  }
}

TEST(KernelEquivalenceTest, GemvQ8MatchesRefExactly) {
  Rng rng(49);
  for (int64_t rows : kKernelSizes) {
    const int64_t n = 33;
    std::vector<uint8_t> codes(static_cast<size_t>(rows * n));
    std::vector<int8_t> q(static_cast<size_t>(n));
    for (uint8_t& v : codes) v = static_cast<uint8_t>(rng.NextInt(256));
    for (int8_t& v : q) {
      v = static_cast<int8_t>(static_cast<int64_t>(rng.NextInt(255)) - 127);
    }
    std::vector<int32_t> want(static_cast<size_t>(rows));
    std::vector<int32_t> got(static_cast<size_t>(rows));
    kernels::GemvQ8Ref(codes.data(), rows, n, q.data(), want.data());
    kernels::GemvQ8(codes.data(), rows, n, q.data(), got.data());
    EXPECT_EQ(got, want) << "rows=" << rows;
  }
}

TEST(KernelEquivalenceTest, DotQ8ExtremesDoNotOverflow) {
  // 65536 products of 127*255 is the documented worst case; the int32
  // accumulator holds it with room to spare.
  const int64_t n = 1 << 16;
  std::vector<int8_t> q(static_cast<size_t>(n), int8_t{127});
  std::vector<uint8_t> c(static_cast<size_t>(n), uint8_t{255});
  EXPECT_EQ(kernels::DotQ8(q.data(), c.data(), n),
            static_cast<int32_t>(n) * 127 * 255);
}

// -- Arena-backed autograd ----------------------------------------------------

TEST(ArenaOpsTest, OpsAllocateFromActiveArenaAndLeafGradsStayOnHeap) {
  Tensor w = Tensor::FromVector(Shape({2, 2}), {1, 2, 3, 4},
                                /*requires_grad=*/true);
  Tensor loss;
  const Arena* arena = nullptr;
  {
    ArenaScope scope;
    arena = CurrentArena();
    ASSERT_NE(arena, nullptr);
    Tensor x = Tensor::FromVector(Shape({2}), {1, -1});
    loss = Sum(MatVec(w, x));
    EXPECT_TRUE(arena->Owns(loss.value().data()));
    Backward(loss);
    // Leaf gradients feed the optimizer across the arena reset boundary, so
    // they must live on the heap even while a scope is active.
    EXPECT_FALSE(arena->Owns(w.grad().data()));
  }
  // Reset-on-entry: values stay readable after the scope exits (the trainer
  // reads shard losses after the parallel join).
  EXPECT_FLOAT_EQ(loss.scalar(), -2.0f);  // (1-2) + (3-4)
  ExpectVectorNear(w.grad(), {1, -1, 1, -1});
}

TEST(ArenaOpsTest, ScopedStepsProduceSameResultsAsHeap) {
  Rng rng(50);
  Tensor w = Tensor::RandomUniform(Shape({4, 4}), -1, 1, rng, true);
  Tensor b = Tensor::RandomUniform(Shape({4}), -1, 1, rng, true);
  Tensor x = Tensor::RandomUniform(Shape({4}), -1, 1, rng);

  Tensor heap_loss = Sum(LinearSigmoid(w, x, b));
  Backward(heap_loss);
  const std::vector<float> heap_grad = w.grad();
  w.ZeroGrad();
  b.ZeroGrad();

  float arena_loss = 0.0f;
  {
    ArenaScope scope;
    Tensor loss = Sum(LinearSigmoid(w, x, b));
    Backward(loss);
    arena_loss = loss.scalar();
  }
  EXPECT_FLOAT_EQ(arena_loss, heap_loss.scalar());
  for (size_t i = 0; i < heap_grad.size(); ++i) {
    EXPECT_FLOAT_EQ(w.grad()[i], heap_grad[i]) << i;
  }
}

TEST(ArenaOpsTest, ScopeReentryReclaimsMemory) {
  size_t used_after_first = 0;
  {
    ArenaScope scope;
    Tensor a = Tensor::Zeros(Shape({1024}));
    used_after_first = CurrentArena()->bytes_used();
    EXPECT_GE(used_after_first, 1024 * sizeof(float));
  }
  {
    ArenaScope scope;
    // Entry reset: the previous step's bytes are reclaimed before this
    // scope allocates anything.
    EXPECT_EQ(CurrentArena()->bytes_used(), 0u);
    Tensor b = Tensor::Zeros(Shape({1024}));
    EXPECT_EQ(CurrentArena()->bytes_used(), used_after_first);
  }
}

}  // namespace
}  // namespace scenerec
