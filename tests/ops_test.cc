#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "tests/test_util.h"

namespace scenerec {
namespace {

using testing::ExpectVectorNear;

// Forward-value tests for every op. Gradient correctness is covered
// separately in grad_check_test.cc.

TEST(OpsForwardTest, Add) {
  Tensor a = Tensor::FromVector(Shape({3}), {1, 2, 3});
  Tensor b = Tensor::FromVector(Shape({3}), {10, 20, 30});
  ExpectVectorNear(Add(a, b).value(), {11, 22, 33});
}

TEST(OpsForwardTest, AddBiasBroadcast) {
  Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromVector(Shape({3}), {10, 20, 30});
  ExpectVectorNear(Add(a, bias).value(), {11, 22, 33, 14, 25, 36});
}

TEST(OpsForwardTest, SubMulDiv) {
  Tensor a = Tensor::FromVector(Shape({2}), {6, 8});
  Tensor b = Tensor::FromVector(Shape({2}), {2, 4});
  ExpectVectorNear(Sub(a, b).value(), {4, 4});
  ExpectVectorNear(Mul(a, b).value(), {12, 32});
  ExpectVectorNear(Div(a, b).value(), {3, 2});
}

TEST(OpsForwardTest, ScaleAddScalarNeg) {
  Tensor a = Tensor::FromVector(Shape({2}), {1, -2});
  ExpectVectorNear(Scale(a, 3.0f).value(), {3, -6});
  ExpectVectorNear(AddScalar(a, 1.5f).value(), {2.5f, -0.5f});
  ExpectVectorNear(Neg(a).value(), {-1, 2});
}

TEST(OpsForwardTest, SigmoidKnownValues) {
  Tensor a = Tensor::FromVector(Shape({3}), {0.0f, 100.0f, -100.0f});
  auto v = Sigmoid(a).value();
  EXPECT_NEAR(v[0], 0.5f, 1e-6);
  EXPECT_NEAR(v[1], 1.0f, 1e-6);
  EXPECT_NEAR(v[2], 0.0f, 1e-6);
}

TEST(OpsForwardTest, TanhReluLeakyRelu) {
  Tensor a = Tensor::FromVector(Shape({2}), {1.0f, -2.0f});
  EXPECT_NEAR(Tanh(a).at(0), std::tanh(1.0f), 1e-6);
  ExpectVectorNear(Relu(a).value(), {1.0f, 0.0f});
  ExpectVectorNear(LeakyRelu(a, 0.1f).value(), {1.0f, -0.2f});
}

TEST(OpsForwardTest, SoftplusStableAtExtremes) {
  Tensor a = Tensor::FromVector(Shape({3}), {0.0f, 50.0f, -50.0f});
  auto v = Softplus(a).value();
  EXPECT_NEAR(v[0], std::log(2.0f), 1e-6);
  EXPECT_NEAR(v[1], 50.0f, 1e-4);
  EXPECT_NEAR(v[2], 0.0f, 1e-6);
  EXPECT_TRUE(std::isfinite(v[1]));
}

TEST(OpsForwardTest, ExpLogSqrt) {
  Tensor a = Tensor::FromVector(Shape({2}), {0.0f, 1.0f});
  ExpectVectorNear(Exp(a).value(), {1.0f, std::exp(1.0f)});
  Tensor b = Tensor::FromVector(Shape({2}), {1.0f, std::exp(2.0f)});
  ExpectVectorNear(Log(b).value(), {0.0f, 2.0f}, 1e-4f);
  Tensor c = Tensor::FromVector(Shape({2}), {4.0f, 9.0f});
  ExpectVectorNear(Sqrt(c).value(), {2.0f, 3.0f});
}

TEST(OpsForwardTest, SumMean) {
  Tensor a = Tensor::FromVector(Shape({4}), {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(a).scalar(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(a).scalar(), 2.5f);
}

TEST(OpsForwardTest, SumRowsMeanRows) {
  Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  ExpectVectorNear(SumRows(a).value(), {5, 7, 9});
  ExpectVectorNear(MeanRows(a).value(), {2.5f, 3.5f, 4.5f});
}

TEST(OpsForwardTest, MatMul) {
  Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape({3, 2}), {7, 8, 9, 10, 11, 12});
  // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
  ExpectVectorNear(MatMul(a, b).value(), {58, 64, 139, 154});
}

TEST(OpsForwardTest, MatVec) {
  Tensor w = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor x = Tensor::FromVector(Shape({3}), {1, 0, -1});
  ExpectVectorNear(MatVec(w, x).value(), {-2, -2});
}

TEST(OpsForwardTest, Dot) {
  Tensor a = Tensor::FromVector(Shape({3}), {1, 2, 3});
  Tensor b = Tensor::FromVector(Shape({3}), {4, -5, 6});
  EXPECT_FLOAT_EQ(Dot(a, b).scalar(), 12.0f);
}

TEST(OpsForwardTest, CosineSimilarityKnownValues) {
  Tensor a = Tensor::FromVector(Shape({2}), {1, 0});
  Tensor b = Tensor::FromVector(Shape({2}), {0, 1});
  EXPECT_NEAR(CosineSimilarity(a, b).scalar(), 0.0f, 1e-5);
  Tensor c = Tensor::FromVector(Shape({2}), {2, 0});
  EXPECT_NEAR(CosineSimilarity(a, c).scalar(), 1.0f, 1e-4);
  Tensor d = Tensor::FromVector(Shape({2}), {-3, 0});
  EXPECT_NEAR(CosineSimilarity(a, d).scalar(), -1.0f, 1e-4);
}

TEST(OpsForwardTest, CosineSimilarityZeroVectorIsFinite) {
  Tensor a = Tensor::FromVector(Shape({2}), {0, 0});
  Tensor b = Tensor::FromVector(Shape({2}), {1, 1});
  float v = CosineSimilarity(a, b).scalar();
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_NEAR(v, 0.0f, 1e-3);
}

TEST(OpsForwardTest, Concat) {
  Tensor a = Tensor::FromVector(Shape({2}), {1, 2});
  Tensor b = Tensor::FromVector(Shape({3}), {3, 4, 5});
  Tensor c = Concat({a, b});
  EXPECT_EQ(c.shape(), Shape({5}));
  ExpectVectorNear(c.value(), {1, 2, 3, 4, 5});
}

TEST(OpsForwardTest, StackScalars) {
  Tensor s = Stack({Tensor::Scalar(1), Tensor::Scalar(2), Tensor::Scalar(3)});
  EXPECT_EQ(s.shape(), Shape({3}));
  ExpectVectorNear(s.value(), {1, 2, 3});
}

TEST(OpsForwardTest, StackRows) {
  Tensor r0 = Tensor::FromVector(Shape({2}), {1, 2});
  Tensor r1 = Tensor::FromVector(Shape({2}), {3, 4});
  Tensor m = StackRows({r0, r1});
  EXPECT_EQ(m.shape(), Shape({2, 2}));
  ExpectVectorNear(m.value(), {1, 2, 3, 4});
}

TEST(OpsForwardTest, RowSlice) {
  Tensor a = Tensor::FromVector(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
  ExpectVectorNear(Row(a, 1).value(), {3, 4});
  ExpectVectorNear(Row(a, 2).value(), {5, 6});
}

TEST(OpsForwardTest, Reshape) {
  Tensor a = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(a, Shape({6}));
  EXPECT_EQ(r.shape(), Shape({6}));
  ExpectVectorNear(r.value(), {1, 2, 3, 4, 5, 6});
}

TEST(OpsForwardTest, GatherRowsWithDuplicates) {
  Tensor table = Tensor::FromVector(Shape({3, 2}), {1, 2, 3, 4, 5, 6});
  Tensor g = Gather(table, {2, 0, 2});
  EXPECT_EQ(g.shape(), Shape({3, 2}));
  ExpectVectorNear(g.value(), {5, 6, 1, 2, 5, 6});
}

TEST(OpsForwardTest, SoftmaxNormalizes) {
  Tensor logits = Tensor::FromVector(Shape({3}), {1.0f, 2.0f, 3.0f});
  auto p = Softmax(logits).value();
  float sum = p[0] + p[1] + p[2];
  EXPECT_NEAR(sum, 1.0f, 1e-6);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(OpsForwardTest, SoftmaxStableForLargeLogits) {
  Tensor logits = Tensor::FromVector(Shape({2}), {1000.0f, 1000.0f});
  auto p = Softmax(logits).value();
  EXPECT_NEAR(p[0], 0.5f, 1e-6);
  EXPECT_NEAR(p[1], 0.5f, 1e-6);
}

TEST(OpsForwardTest, WeightedSumRows) {
  Tensor rows = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  Tensor w = Tensor::FromVector(Shape({2}), {0.25f, 0.75f});
  ExpectVectorNear(WeightedSumRows(rows, w).value(),
                   {3.25f, 4.25f, 5.25f});
}

TEST(OpsForwardTest, MaxRows) {
  Tensor a = Tensor::FromVector(Shape({3, 2}), {1, 9, 5, 2, 3, 4});
  ExpectVectorNear(MaxRows(a).value(), {5, 9});
}

TEST(OpsForwardTest, MaxRowsGradientGoesToArgmax) {
  Tensor a = Tensor::FromVector(Shape({2, 2}), {1, 9, 5, 2},
                                /*requires_grad=*/true);
  Backward(Sum(MaxRows(a)));
  ExpectVectorNear(a.grad(), {0, 1, 1, 0});
}

TEST(OpsForwardTest, L2NormalizeRowsUnitNorm) {
  Tensor a = Tensor::FromVector(Shape({2, 2}), {3, 4, 0, 5});
  auto v = L2NormalizeRows(a).value();
  EXPECT_NEAR(v[0], 0.6f, 1e-5);
  EXPECT_NEAR(v[1], 0.8f, 1e-5);
  EXPECT_NEAR(v[2], 0.0f, 1e-5);
  EXPECT_NEAR(v[3], 1.0f, 1e-5);
}

TEST(OpsForwardTest, L2NormalizeZeroRowIsFinite) {
  Tensor a = Tensor::FromVector(Shape({1, 3}), {0, 0, 0});
  const std::vector<float> values = L2NormalizeRows(a).value();
  for (float v : values) {
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

TEST(OpsForwardTest, DropoutZeroRateIsIdentity) {
  Rng rng(1);
  Tensor a = Tensor::FromVector(Shape({4}), {1, 2, 3, 4});
  ExpectVectorNear(Dropout(a, 0.0f, rng).value(), {1, 2, 3, 4});
}

TEST(OpsForwardTest, DropoutKeepsExpectationAndZeroesSome) {
  Rng rng(2);
  Tensor a = Tensor::Full(Shape({10000}), 1.0f);
  auto v = Dropout(a, 0.3f, rng).value();
  int64_t zeros = 0;
  double sum = 0;
  for (float x : v) {
    if (x == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(x, 1.0f / 0.7f, 1e-5);
    }
    sum += x;
  }
  EXPECT_NEAR(zeros / 10000.0, 0.3, 0.02);
  EXPECT_NEAR(sum / 10000.0, 1.0, 0.03);
}

TEST(OpsForwardTest, BprPairLossValues) {
  // pos >> neg -> loss near 0; pos << neg -> loss near (neg - pos).
  Tensor big = BprPairLoss(Tensor::Scalar(10.0f), Tensor::Scalar(-10.0f));
  EXPECT_NEAR(big.scalar(), 0.0f, 1e-4);
  Tensor bad = BprPairLoss(Tensor::Scalar(-10.0f), Tensor::Scalar(10.0f));
  EXPECT_NEAR(bad.scalar(), 20.0f, 1e-3);
  Tensor even = BprPairLoss(Tensor::Scalar(1.0f), Tensor::Scalar(1.0f));
  EXPECT_NEAR(even.scalar(), std::log(2.0f), 1e-5);
}

}  // namespace
}  // namespace scenerec
