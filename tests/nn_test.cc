#include <cmath>

#include <gtest/gtest.h>

#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "tests/test_util.h"

namespace scenerec {
namespace {

// -- Linear ---------------------------------------------------------------------

TEST(LinearTest, OutputShapeAndParams) {
  Rng rng(1);
  Linear layer(8, 4, Activation::kNone, rng);
  Tensor x = Tensor::RandomUniform(Shape({8}), -1, 1, rng);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.shape(), Shape({4}));
  EXPECT_EQ(layer.NumParameters(), 8 * 4 + 4);
}

TEST(LinearTest, IdentityWhenWeightsAreIdentity) {
  Rng rng(2);
  Linear layer(2, 2, Activation::kNone, rng);
  // Overwrite weights with identity and bias with zero.
  auto& w = const_cast<Tensor&>(layer.weight()).mutable_value();
  w = {1, 0, 0, 1};
  Tensor x = Tensor::FromVector(Shape({2}), {3.0f, -4.0f});
  testing::ExpectVectorNear(layer.Forward(x).value(), {3.0f, -4.0f});
}

TEST(LinearTest, ActivationApplied) {
  Rng rng(3);
  Linear layer(2, 2, Activation::kRelu, rng);
  auto& w = const_cast<Tensor&>(layer.weight()).mutable_value();
  w = {1, 0, 0, 1};
  Tensor x = Tensor::FromVector(Shape({2}), {3.0f, -4.0f});
  testing::ExpectVectorNear(layer.Forward(x).value(), {3.0f, 0.0f});
}

TEST(LinearTest, GradientsFlowToParameters) {
  Rng rng(4);
  Linear layer(3, 2, Activation::kTanh, rng);
  Tensor x = Tensor::RandomUniform(Shape({3}), -1, 1, rng, true);
  std::vector<Tensor> params = layer.Parameters();
  params.push_back(x);
  testing::ExpectGradientsClose(
      [&] { return Sum(Mul(layer.Forward(x), layer.Forward(x))); }, params);
}

// -- Mlp -----------------------------------------------------------------------

TEST(MlpTest, LayerDimsChain) {
  Rng rng(5);
  Mlp mlp({10, 8, 4, 1}, Activation::kLeakyRelu, Activation::kNone, rng);
  EXPECT_EQ(mlp.num_layers(), 3u);
  EXPECT_EQ(mlp.in_dim(), 10);
  EXPECT_EQ(mlp.out_dim(), 1);
  Tensor x = Tensor::RandomUniform(Shape({10}), -1, 1, rng);
  EXPECT_EQ(mlp.Forward(x).shape(), Shape({1}));
}

TEST(MlpTest, ParameterCount) {
  Rng rng(6);
  Mlp mlp({4, 3, 2}, Activation::kRelu, Activation::kNone, rng);
  EXPECT_EQ(mlp.NumParameters(), (4 * 3 + 3) + (3 * 2 + 2));
}

TEST(MlpTest, GradCheckEndToEnd) {
  Rng rng(7);
  Mlp mlp({3, 4, 1}, Activation::kTanh, Activation::kNone, rng);
  Tensor x = Tensor::RandomUniform(Shape({3}), -1, 1, rng, true);
  std::vector<Tensor> params = mlp.Parameters();
  params.push_back(x);
  testing::ExpectGradientsClose(
      [&] {
        Tensor y = mlp.Forward(x);
        return Mul(Reshape(y, Shape()), Reshape(y, Shape()));
      },
      params);
}

// -- Embedding -------------------------------------------------------------------

TEST(EmbeddingTest, LookupShapes) {
  Rng rng(8);
  Embedding emb(10, 4, rng);
  EXPECT_EQ(emb.Lookup(3).shape(), Shape({4}));
  EXPECT_EQ(emb.LookupMany({1, 2, 3}).shape(), Shape({3, 4}));
  EXPECT_EQ(emb.NumParameters(), 40);
}

TEST(EmbeddingTest, LookupMatchesTableRow) {
  Rng rng(9);
  Embedding emb(5, 3, rng);
  Tensor row = emb.Lookup(2);
  for (int j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(row.at(j), emb.table().at(2, j));
  }
}

TEST(EmbeddingTest, GradientsAreSparse) {
  Rng rng(10);
  Embedding emb(100, 4, rng);
  Tensor loss = Sum(emb.LookupMany({7, 42}));
  Backward(loss);
  const Tensor& table = emb.table();
  EXPECT_EQ(table.touched_rows().size(), 2u);
  // Only rows 7 and 42 have gradients.
  for (int64_t r = 0; r < 100; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 4; ++c) sum += std::fabs(table.grad()[r * 4 + c]);
    if (r == 7 || r == 42) {
      EXPECT_GT(sum, 0.0f) << "row " << r;
    } else {
      EXPECT_FLOAT_EQ(sum, 0.0f) << "row " << r;
    }
  }
}

// Regression: moving an Embedding (e.g. the owning model is relocated when
// a vector reallocates) must not detach the table an optimizer already
// collected, and the moved-from instance must stay fully usable. Moves
// share the ParamTable backend, so both instances expose the SAME tensor
// and the lazy touched_rows() update path keeps seeing fresh gradients.
TEST(EmbeddingTest, MoveSharesTableAndKeepsOptimizerHandlesLive) {
  Rng rng(12);
  Embedding original(20, 4, rng);
  // An optimizer collects its handles before the move.
  std::vector<Tensor> collected = original.Parameters();
  ASSERT_EQ(collected.size(), 1u);

  Embedding moved = std::move(original);
  // Both instances expose the same underlying table node...
  EXPECT_EQ(moved.table().node(), collected[0].node());
  EXPECT_EQ(original.table().node(), collected[0].node());
  EXPECT_EQ(original.vocab(), 20);

  // ...and gradients produced through EITHER instance land in the handle
  // the optimizer holds, touched rows included.
  Backward(Sum(moved.LookupMany({3})));
  Backward(Sum(original.LookupMany({9})));
  ASSERT_EQ(collected[0].touched_rows().size(), 2u);
  float sum3 = 0, sum9 = 0;
  for (int64_t c = 0; c < 4; ++c) {
    sum3 += std::fabs(collected[0].grad()[3 * 4 + c]);
    sum9 += std::fabs(collected[0].grad()[9 * 4 + c]);
  }
  EXPECT_GT(sum3, 0.0f);
  EXPECT_GT(sum9, 0.0f);

  // Move-assignment shares the same way.
  Rng rng2(13);
  Embedding other(20, 4, rng2);
  other = std::move(moved);
  EXPECT_EQ(other.table().node(), collected[0].node());
  EXPECT_EQ(moved.table().node(), collected[0].node());
}

// -- Optimizers -------------------------------------------------------------------

/// Minimizes f(w) = sum((w - target)^2) and returns final w.
template <typename Opt, typename... Args>
std::vector<float> MinimizeQuadratic(float lr, int steps, Args... args) {
  Rng rng(11);
  Tensor w = Tensor::RandomUniform(Shape({4}), -1, 1, rng, true);
  Tensor target = Tensor::FromVector(Shape({4}), {1.0f, -2.0f, 0.5f, 3.0f});
  OptimizerOptions options;
  options.learning_rate = lr;
  Opt opt({w}, options, args...);
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    Tensor diff = Sub(w, target);
    Backward(Sum(Mul(diff, diff)));
    opt.Step();
  }
  return w.value();
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  auto w = MinimizeQuadratic<SgdOptimizer>(0.1f, 200);
  testing::ExpectVectorNear(w, {1.0f, -2.0f, 0.5f, 3.0f}, 1e-3f);
}

TEST(OptimizerTest, SgdMomentumConverges) {
  auto w = MinimizeQuadratic<SgdOptimizer>(0.05f, 200, 0.9f);
  testing::ExpectVectorNear(w, {1.0f, -2.0f, 0.5f, 3.0f}, 1e-2f);
}

TEST(OptimizerTest, RmsPropConvergesOnQuadratic) {
  auto w = MinimizeQuadratic<RmsPropOptimizer>(0.05f, 500);
  testing::ExpectVectorNear(w, {1.0f, -2.0f, 0.5f, 3.0f}, 5e-2f);
}

TEST(OptimizerTest, AdagradConvergesOnQuadratic) {
  auto w = MinimizeQuadratic<AdagradOptimizer>(0.5f, 500);
  testing::ExpectVectorNear(w, {1.0f, -2.0f, 0.5f, 3.0f}, 5e-2f);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  auto w = MinimizeQuadratic<AdamOptimizer>(0.1f, 500);
  testing::ExpectVectorNear(w, {1.0f, -2.0f, 0.5f, 3.0f}, 5e-2f);
}

TEST(OptimizerTest, WeightDecayShrinksParameters) {
  Tensor w = Tensor::FromVector(Shape({2}), {1.0f, -1.0f}, true);
  OptimizerOptions options;
  options.learning_rate = 0.1f;
  options.weight_decay = 1.0f;
  SgdOptimizer opt({w}, options);
  // Loss is constant zero: only weight decay acts.
  for (int i = 0; i < 10; ++i) {
    opt.ZeroGrad();
    Backward(Mul(Sum(Mul(w, w)), Tensor::Scalar(0.0f)));
    opt.Step();
  }
  EXPECT_LT(std::fabs(w.at(0)), 1.0f);
  EXPECT_LT(std::fabs(w.at(1)), 1.0f);
  EXPECT_NEAR(w.at(0), std::pow(0.9f, 10), 1e-4);
}

TEST(OptimizerTest, SparseUpdateTouchesOnlyGatheredRows) {
  Rng rng(12);
  Embedding emb(50, 2, rng);
  std::vector<float> before = emb.table().value();
  OptimizerOptions options;
  options.learning_rate = 0.5f;
  SgdOptimizer opt(emb.Parameters(), options);
  opt.ZeroGrad();
  Backward(Sum(emb.LookupMany({3, 9})));
  opt.Step();
  const auto& after = emb.table().value();
  for (int64_t r = 0; r < 50; ++r) {
    bool changed = after[r * 2] != before[r * 2] ||
                   after[r * 2 + 1] != before[r * 2 + 1];
    EXPECT_EQ(changed, r == 3 || r == 9) << "row " << r;
  }
}

TEST(OptimizerTest, GradClippingBoundsStep) {
  Tensor w = Tensor::FromVector(Shape({1}), {0.0f}, true);
  OptimizerOptions options;
  options.learning_rate = 1.0f;
  options.clip_norm = 0.5f;
  SgdOptimizer opt({w}, options);
  opt.ZeroGrad();
  // Gradient of 100*w is 100, far above the clip threshold.
  Backward(Mul(Tensor::Scalar(100.0f), Reshape(w, Shape())));
  opt.Step();
  EXPECT_NEAR(w.at(0), -0.5f, 1e-5);
}

TEST(OptimizerTest, SkipsParametersWithoutGradients) {
  Tensor used = Tensor::FromVector(Shape({1}), {1.0f}, true);
  Tensor unused = Tensor::FromVector(Shape({1}), {5.0f}, true);
  OptimizerOptions options;
  options.learning_rate = 0.1f;
  options.weight_decay = 1.0f;  // Would shrink `unused` if (wrongly) visited.
  SgdOptimizer opt({used, unused}, options);
  opt.ZeroGrad();
  Backward(Reshape(used, Shape()));
  opt.Step();
  EXPECT_FLOAT_EQ(unused.at(0), 5.0f);
  EXPECT_LT(used.at(0), 1.0f);
}

TEST(OptimizerTest, LazySparseUpdateMatchesDenseUpdateForSgd) {
  // For a stateless optimizer (plain SGD, no weight decay) the lazy
  // touched-rows path must produce exactly the same table as a dense scan:
  // untouched rows have zero gradient and no state to evolve. (Stateful
  // optimizers like RMSProp intentionally differ: lazy mode freezes the
  // second-moment cache of untouched rows — the standard lazy semantics.)
  Rng rng_a(21), rng_b(21);
  Embedding sparse_emb(30, 4, rng_a);
  Embedding dense_emb(30, 4, rng_b);
  ASSERT_EQ(sparse_emb.table().value(), dense_emb.table().value());

  OptimizerOptions options;
  options.learning_rate = 0.1f;
  SgdOptimizer sparse_opt(sparse_emb.Parameters(), options);
  SgdOptimizer dense_opt(dense_emb.Parameters(), options);

  Rng pick(5);
  for (int step = 0; step < 10; ++step) {
    std::vector<int64_t> ids{static_cast<int64_t>(pick.NextInt(30)),
                             static_cast<int64_t>(pick.NextInt(30))};
    // Sparse path: gradients land through Gather, tracked rows only.
    sparse_opt.ZeroGrad();
    Backward(Sum(sparse_emb.LookupMany(ids)));
    sparse_opt.Step();
    // Dense path: write the same gradient manually, then clear the
    // touched-row list so the optimizer takes the dense branch.
    dense_opt.ZeroGrad();
    Backward(Sum(dense_emb.LookupMany(ids)));
    Tensor table = dense_emb.table();
    table.node()->touched_rows.clear();
    dense_opt.Step();
  }
  const auto& a = sparse_emb.table().value();
  const auto& b = dense_emb.table().value();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a[i], b[i]) << "element " << i;
  }
}

TEST(NoGradTest, OpsBuildNoGraphUnderGuard) {
  Tensor w = Tensor::FromVector(Shape({2}), {1.0f, 2.0f}, true);
  NoGradGuard guard;
  Tensor y = Mul(w, w);
  // No inputs recorded, no gradient requirement: the graph is not built.
  EXPECT_TRUE(y.node()->inputs.empty());
  EXPECT_FALSE(y.requires_grad());
  EXPECT_FLOAT_EQ(y.at(0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(1), 4.0f);
}

TEST(NoGradTest, GuardIsScopedAndNestable) {
  Tensor w = Tensor::FromVector(Shape({2}), {1.0f, 2.0f}, true);
  EXPECT_FALSE(NoGradGuard::enabled());
  {
    NoGradGuard outer;
    EXPECT_TRUE(NoGradGuard::enabled());
    {
      NoGradGuard inner;
      EXPECT_TRUE(NoGradGuard::enabled());
    }
    EXPECT_TRUE(NoGradGuard::enabled());
  }
  EXPECT_FALSE(NoGradGuard::enabled());
  // Graph construction resumes after the guard.
  Tensor y = Mul(w, w);
  EXPECT_TRUE(y.requires_grad());
  EXPECT_EQ(y.node()->inputs.size(), 2u);
}

TEST(OptimizerTest, FactoryByName) {
  Rng rng(13);
  Tensor w = Tensor::RandomUniform(Shape({2}), -1, 1, rng, true);
  OptimizerOptions options;
  EXPECT_TRUE(MakeOptimizer("sgd", {w}, options).ok());
  EXPECT_TRUE(MakeOptimizer("rmsprop", {w}, options).ok());
  EXPECT_TRUE(MakeOptimizer("adam", {w}, options).ok());
  EXPECT_TRUE(MakeOptimizer("adagrad", {w}, options).ok());
  EXPECT_FALSE(MakeOptimizer("adadelta", {w}, options).ok());
}

TEST(OptimizerTest, RmsPropAdaptsStepToGradientScale) {
  // Two coordinates with very different gradient magnitudes should move by
  // comparable amounts under RMSProp (unlike plain SGD).
  Tensor w = Tensor::FromVector(Shape({2}), {0.0f, 0.0f}, true);
  OptimizerOptions options;
  options.learning_rate = 0.01f;
  RmsPropOptimizer opt({w}, options);
  Tensor scale = Tensor::FromVector(Shape({2}), {100.0f, 0.01f});
  for (int i = 0; i < 10; ++i) {
    opt.ZeroGrad();
    Backward(Sum(Mul(scale, w)));
    opt.Step();
  }
  const float move0 = std::fabs(w.at(0));
  const float move1 = std::fabs(w.at(1));
  EXPECT_GT(move1, move0 * 0.5f);
  EXPECT_LT(move1, move0 * 2.0f);
}

}  // namespace
}  // namespace scenerec
