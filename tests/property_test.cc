// Property-based tests: invariants checked over sweeps of random seeds and
// sizes using parameterized gtest. These complement the example-based unit
// tests with "for all" style guarantees on the core substrates.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "graph/csr.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace scenerec {
namespace {

// -- Softmax invariants over random inputs -----------------------------------

class SoftmaxProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoftmaxProperty, SumsToOneAndPreservesOrder) {
  Rng rng(GetParam());
  const int64_t n = 1 + static_cast<int64_t>(rng.NextInt(30));
  Tensor logits = Tensor::RandomUniform(Shape({n}), -20.0f, 20.0f, rng);
  auto p = Softmax(logits).value();
  double sum = 0;
  for (float v : p) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
  // Monotone: higher logit -> higher probability.
  const auto& l = logits.value();
  for (size_t i = 0; i < l.size(); ++i) {
    for (size_t j = 0; j < l.size(); ++j) {
      if (l[i] > l[j]) {
        EXPECT_GE(p[i], p[j]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoftmaxProperty,
                         ::testing::Range<uint64_t>(0, 16));

// -- Sigmoid/softplus identities ----------------------------------------------

class ActivationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ActivationProperty, SoftplusIsIntegralOfSigmoid) {
  // softplus(x) - softplus(-x) == x (exact identity).
  Rng rng(GetParam());
  Tensor x = Tensor::RandomUniform(Shape({16}), -30.0f, 30.0f, rng);
  auto sp_pos = Softplus(x).value();
  auto sp_neg = Softplus(Neg(x)).value();
  for (size_t i = 0; i < sp_pos.size(); ++i) {
    EXPECT_NEAR(sp_pos[i] - sp_neg[i], x.value()[i], 1e-4);
  }
}

TEST_P(ActivationProperty, SigmoidSymmetry) {
  // sigmoid(x) + sigmoid(-x) == 1.
  Rng rng(GetParam() + 1000);
  Tensor x = Tensor::RandomUniform(Shape({16}), -30.0f, 30.0f, rng);
  auto pos = Sigmoid(x).value();
  auto neg = Sigmoid(Neg(x)).value();
  for (size_t i = 0; i < pos.size(); ++i) {
    EXPECT_NEAR(pos[i] + neg[i], 1.0f, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActivationProperty,
                         ::testing::Range<uint64_t>(0, 8));

// -- Cosine similarity bounds ---------------------------------------------------

class CosineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CosineProperty, BoundedAndScaleInvariant) {
  Rng rng(GetParam());
  const int64_t n = 2 + static_cast<int64_t>(rng.NextInt(30));
  Tensor a = Tensor::RandomUniform(Shape({n}), -2.0f, 2.0f, rng);
  Tensor b = Tensor::RandomUniform(Shape({n}), -2.0f, 2.0f, rng);
  const float c = CosineSimilarity(a, b).scalar();
  EXPECT_GE(c, -1.0001f);
  EXPECT_LE(c, 1.0001f);
  // Scaling either argument by a positive constant leaves cosine unchanged.
  const float scaled = CosineSimilarity(Scale(a, 3.7f), b).scalar();
  EXPECT_NEAR(c, scaled, 2e-3);
  // cos(a, a) == 1 for non-degenerate a.
  float norm = 0;
  for (float v : a.value()) norm += v * v;
  if (norm > 0.1f) {
    EXPECT_NEAR(CosineSimilarity(a, a).scalar(), 1.0f, 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CosineProperty,
                         ::testing::Range<uint64_t>(0, 16));

// -- CSR graph vs. reference adjacency matrix -----------------------------------

class CsrProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsrProperty, MatchesDenseReference) {
  Rng rng(GetParam());
  const int64_t n = 2 + static_cast<int64_t>(rng.NextInt(20));
  const int64_t num_edges = static_cast<int64_t>(rng.NextInt(60));
  std::vector<Edge> edges;
  std::vector<std::vector<float>> reference(
      static_cast<size_t>(n), std::vector<float>(static_cast<size_t>(n), 0));
  for (int64_t e = 0; e < num_edges; ++e) {
    const int64_t s = static_cast<int64_t>(rng.NextInt(n));
    const int64_t t = static_cast<int64_t>(rng.NextInt(n));
    const float w = rng.NextFloat(0.1f, 2.0f);
    edges.push_back({s, t, w});
    reference[static_cast<size_t>(s)][static_cast<size_t>(t)] += w;
  }
  CsrGraph graph = CsrGraph::FromEdges(n, n, edges);
  for (int64_t s = 0; s < n; ++s) {
    auto neighbors = graph.Neighbors(s);
    auto weights = graph.Weights(s);
    // Sorted, no duplicates.
    EXPECT_TRUE(std::is_sorted(neighbors.begin(), neighbors.end()));
    EXPECT_EQ(std::adjacent_find(neighbors.begin(), neighbors.end()),
              neighbors.end());
    // Weights match the dense reference, and every nonzero cell appears.
    int64_t nonzero = 0;
    for (int64_t t = 0; t < n; ++t) {
      nonzero += reference[static_cast<size_t>(s)][static_cast<size_t>(t)] > 0;
      EXPECT_EQ(graph.HasEdge(s, t),
                reference[static_cast<size_t>(s)][static_cast<size_t>(t)] > 0);
    }
    EXPECT_EQ(static_cast<int64_t>(neighbors.size()), nonzero);
    for (size_t j = 0; j < neighbors.size(); ++j) {
      EXPECT_FLOAT_EQ(
          weights[j],
          reference[static_cast<size_t>(s)][static_cast<size_t>(neighbors[j])]);
    }
  }
}

TEST_P(CsrProperty, SpMMMatchesDenseProduct) {
  Rng rng(GetParam() + 500);
  const int64_t n = 2 + static_cast<int64_t>(rng.NextInt(12));
  const int64_t d = 1 + static_cast<int64_t>(rng.NextInt(6));
  std::vector<Edge> edges;
  std::vector<std::vector<float>> dense(
      static_cast<size_t>(n), std::vector<float>(static_cast<size_t>(n), 0));
  for (int64_t e = 0; e < n * 3; ++e) {
    const int64_t s = static_cast<int64_t>(rng.NextInt(n));
    const int64_t t = static_cast<int64_t>(rng.NextInt(n));
    const float w = rng.NextFloat(-1.0f, 1.0f);
    edges.push_back({s, t, w});
    dense[static_cast<size_t>(s)][static_cast<size_t>(t)] += w;
  }
  CsrGraph adj = CsrGraph::FromEdges(n, n, edges);
  Tensor x = Tensor::RandomUniform(Shape({n, d}), -1, 1, rng);
  Tensor out = SpMM(&adj, nullptr, x);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < d; ++c) {
      float want = 0;
      for (int64_t t = 0; t < n; ++t) {
        want += dense[static_cast<size_t>(i)][static_cast<size_t>(t)] *
                x.at(t, c);
      }
      EXPECT_NEAR(out.at(i, c), want, 1e-4) << "row " << i << " col " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsrProperty,
                         ::testing::Range<uint64_t>(0, 12));

// -- Ranking metric invariants -----------------------------------------------------

class RankingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RankingProperty, RankMatchesSortReference) {
  Rng rng(GetParam());
  const int64_t n = 1 + static_cast<int64_t>(rng.NextInt(100));
  std::vector<float> negatives;
  for (int64_t i = 0; i < n; ++i) {
    negatives.push_back(rng.NextFloat(-5.0f, 5.0f));
  }
  const float positive = rng.NextFloat(-5.0f, 5.0f);
  const PositiveRank rank = RankOfPositive(positive, negatives);
  // Reference: sort descending; num_above is where the positive's tie block
  // starts, num_tied is that block's length.
  std::vector<float> sorted = negatives;
  std::sort(sorted.begin(), sorted.end(), std::greater<float>());
  int64_t reference = 0;
  while (reference < n && sorted[static_cast<size_t>(reference)] > positive) {
    ++reference;
  }
  int64_t reference_tied = 0;
  while (reference + reference_tied < n &&
         sorted[static_cast<size_t>(reference + reference_tied)] == positive) {
    ++reference_tied;
  }
  EXPECT_EQ(rank.num_above, reference);
  EXPECT_EQ(rank.num_tied, reference_tied);
  EXPECT_GE(rank.num_above, 0);
  EXPECT_LE(rank.WorstRank(), n);
  // Tie-aware metrics stay in [0, 1], are bounded by the best-case exact
  // rank, and HR > 0 iff NDCG > 0 (some tie placement lands inside k).
  for (int64_t k : {1, 5, 10}) {
    EXPECT_EQ(HitRatioAtK(rank, k) > 0, NdcgAtK(rank, k) > 0);
    EXPECT_LE(NdcgAtK(rank, k), NdcgAtK(rank.BestRank(), k));
    EXPECT_LE(NdcgAtK(rank, k), 1.0);
    EXPECT_GE(HitRatioAtK(rank, k), 0.0);
    EXPECT_LE(HitRatioAtK(rank, k), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankingProperty,
                         ::testing::Range<uint64_t>(0, 20));

// -- Generator invariants over seeds and presets --------------------------------

struct GeneratorCase {
  uint64_t seed;
  JdPreset preset;
};

class GeneratorProperty : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(GeneratorProperty, StructuralInvariants) {
  const GeneratorCase param = GetParam();
  auto result = GenerateSyntheticDataset(MakeJdConfig(param.preset, 0.01),
                                         param.seed);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Dataset& d = result.value();
  ASSERT_TRUE(d.Validate().ok());

  // Item-item edges are symmetric.
  std::set<std::pair<int64_t, int64_t>> edge_set;
  for (const Edge& e : d.item_item_edges) edge_set.insert({e.src, e.dst});
  for (const Edge& e : d.item_item_edges) {
    EXPECT_TRUE(edge_set.count({e.dst, e.src}))
        << e.src << "->" << e.dst << " missing reverse";
  }
  // Leave-one-out feasible for every user.
  std::vector<int64_t> per_user(static_cast<size_t>(d.num_users), 0);
  for (const Interaction& x : d.interactions) {
    per_user[static_cast<size_t>(x.user)]++;
  }
  for (int64_t c : per_user) EXPECT_GE(c, 3);
  // Every category has at least one item and one scene.
  std::vector<bool> category_has_item(static_cast<size_t>(d.num_categories));
  for (int64_t c : d.item_category) {
    category_has_item[static_cast<size_t>(c)] = true;
  }
  std::vector<bool> category_has_scene(static_cast<size_t>(d.num_categories));
  for (const Edge& e : d.category_scene_edges) {
    category_has_scene[static_cast<size_t>(e.src)] = true;
  }
  for (int64_t c = 0; c < d.num_categories; ++c) {
    EXPECT_TRUE(category_has_item[static_cast<size_t>(c)]) << "category " << c;
    EXPECT_TRUE(category_has_scene[static_cast<size_t>(c)]) << "category " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPresets, GeneratorProperty,
    ::testing::Values(GeneratorCase{1, JdPreset::kBabyToy},
                      GeneratorCase{2, JdPreset::kElectronics},
                      GeneratorCase{3, JdPreset::kFashion},
                      GeneratorCase{4, JdPreset::kFoodDrink},
                      GeneratorCase{99, JdPreset::kElectronics},
                      GeneratorCase{12345, JdPreset::kFashion}));

// -- Split invariants over seeds ---------------------------------------------------

class SplitProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SplitProperty, PartitionIsExactAndDisjoint) {
  SyntheticConfig config;
  config.num_users = 25;
  config.num_items = 150;
  config.num_categories = 10;
  config.num_scenes = 6;
  config.sessions_per_user = 4;
  auto dataset = GenerateSyntheticDataset(config, GetParam());
  ASSERT_TRUE(dataset.ok());
  Rng rng(GetParam() * 31 + 7);
  auto split = MakeLeaveOneOutSplit(dataset.value(), 40, rng);
  ASSERT_TRUE(split.ok());

  // train + {validation, test} positives == all interactions, no overlap.
  std::set<std::pair<int64_t, int64_t>> all;
  for (const Interaction& x : dataset->interactions) {
    all.insert({x.user, x.item});
  }
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const Interaction& x : split->train) {
    EXPECT_TRUE(all.count({x.user, x.item}));
    EXPECT_TRUE(seen.insert({x.user, x.item}).second);
  }
  for (const auto& inst : split->validation) {
    EXPECT_TRUE(all.count({inst.user, inst.positive_item}));
    EXPECT_TRUE(seen.insert({inst.user, inst.positive_item}).second);
  }
  for (const auto& inst : split->test) {
    EXPECT_TRUE(all.count({inst.user, inst.positive_item}));
    EXPECT_TRUE(seen.insert({inst.user, inst.positive_item}).second);
  }
  EXPECT_EQ(seen.size(), all.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitProperty,
                         ::testing::Range<uint64_t>(0, 8));

// -- Optimizer property: any optimizer reduces a convex loss ------------------------

class OptimizerProperty
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(OptimizerProperty, ReducesConvexLoss) {
  const auto& [name, seed] = GetParam();
  Rng rng(seed);
  Tensor w = Tensor::RandomUniform(Shape({6}), -2, 2, rng, true);
  Tensor target = Tensor::RandomUniform(Shape({6}), -1, 1, rng);
  OptimizerOptions options;
  options.learning_rate = name == "sgd" ? 0.05f : 0.02f;
  auto optimizer = MakeOptimizer(name, {w}, options);
  ASSERT_TRUE(optimizer.ok());
  auto loss_value = [&]() {
    Tensor diff = Sub(w, target);
    return Sum(Mul(diff, diff));
  };
  const float before = loss_value().scalar();
  for (int i = 0; i < 100; ++i) {
    (*optimizer)->ZeroGrad();
    Backward(loss_value());
    (*optimizer)->Step();
  }
  const float after = loss_value().scalar();
  EXPECT_LT(after, before * 0.5f) << name << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    All, OptimizerProperty,
    ::testing::Combine(::testing::Values("sgd", "rmsprop", "adam"),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace scenerec
