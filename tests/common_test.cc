#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/rng.h"
#include "common/socket_server.h"
#include "common/status.h"
#include "common/status_or.h"
#include "common/string_util.h"

namespace scenerec {
namespace {

// -- Status -------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dim");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dim");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dim");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_NE(Status::NotFound("x"), Status::NotFound("y"));
  EXPECT_NE(Status::NotFound("x"), Status::IOError("x"));
  EXPECT_EQ(Status::OK(), Status());
}

Status FailsThenPropagates() {
  SCENEREC_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

// -- StatusOr -----------------------------------------------------------------

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  SCENEREC_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(StatusOrTest, AssignOrReturnChains) {
  StatusOr<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd.
  EXPECT_FALSE(Quarter(7).ok());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(5);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> v = std::move(result).value();
  EXPECT_EQ(*v, 5);
}

// -- Rng ------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next64() == b.Next64());
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextIntInBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextInt(17);
    EXPECT_LT(v, 17u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LT(v, 5);
  }
}

TEST(RngTest, NextIntCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[rng.NextZipf(10, 1.2)]++;
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[1], counts[8]);
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(100, 10);
    std::set<uint64_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (uint64_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SplitIndependentStreams) {
  Rng parent(29);
  Rng child = parent.Split();
  // Child diverges from parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.Next64() == child.Next64());
  EXPECT_LT(same, 3);
}

// -- AliasSampler ----------------------------------------------------------------

TEST(AliasSamplerTest, MatchesWeights) {
  AliasSampler sampler({1.0, 2.0, 3.0, 4.0});
  Rng rng(31);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[sampler.Sample(rng)]++;
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / double(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / double(n), 0.4, 0.015);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  AliasSampler sampler({0.0, 1.0, 0.0, 1.0});
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    uint64_t s = sampler.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleElement) {
  AliasSampler sampler({2.5});
  Rng rng(41);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

// -- string_util -------------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitNoDelimiter) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\r\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("no_space"), "no_space");
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("4x").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.5").value(), 0.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3").value(), -1e-3);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%s=%d", "x", 3), "x=3");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringUtilTest, FormatFixed) {
  EXPECT_EQ(FormatFixed(0.42984, 4), "0.4298");
}

TEST(StringUtilTest, FormatWithCommas) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(3002806), "3,002,806");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

// -- FlagParser -----------------------------------------------------------------

TEST(FlagParserTest, DefaultsWithoutArgs) {
  FlagParser flags;
  flags.AddInt64("seed", 42, "seed");
  flags.AddDouble("lr", 0.01, "learning rate");
  flags.AddBool("verbose", false, "verbosity");
  flags.AddString("name", "default", "name");
  char arg0[] = "prog";
  char* argv[] = {arg0};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt64("seed"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr"), 0.01);
  EXPECT_FALSE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetString("name"), "default");
}

TEST(FlagParserTest, ParsesEqualsAndSpaceForms) {
  FlagParser flags;
  flags.AddInt64("seed", 0, "");
  flags.AddDouble("lr", 0.0, "");
  char a0[] = "prog", a1[] = "--seed=7", a2[] = "--lr", a3[] = "0.5";
  char* argv[] = {a0, a1, a2, a3};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  EXPECT_EQ(flags.GetInt64("seed"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr"), 0.5);
}

TEST(FlagParserTest, BoolWithoutValueMeansTrue) {
  FlagParser flags;
  flags.AddBool("verbose", false, "");
  char a0[] = "prog", a1[] = "--verbose";
  char* argv[] = {a0, a1};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser flags;
  flags.AddInt64("seed", 0, "");
  char a0[] = "prog", a1[] = "--sede=3";
  char* argv[] = {a0, a1};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, BadValueRejected) {
  FlagParser flags;
  flags.AddInt64("seed", 0, "");
  char a0[] = "prog", a1[] = "--seed=abc";
  char* argv[] = {a0, a1};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, ImplicitStringBareAndExplicitForms) {
  FlagParser flags;
  flags.AddImplicitString("telemetry", "", "all", "telemetry selector");
  {
    char a0[] = "prog", a1[] = "--telemetry";
    char* argv[] = {a0, a1};
    ASSERT_TRUE(flags.Parse(2, argv).ok());
    EXPECT_EQ(flags.GetString("telemetry"), "all");
  }
  FlagParser explicit_flags;
  explicit_flags.AddImplicitString("telemetry", "", "all", "telemetry selector");
  char a0[] = "prog", a1[] = "--telemetry=counters";
  char* argv[] = {a0, a1};
  ASSERT_TRUE(explicit_flags.Parse(2, argv).ok());
  EXPECT_EQ(explicit_flags.GetString("telemetry"), "counters");
}

// Regression: "--telemetry=" used to silently set the empty string, which
// disabled the feature the caller was trying to switch on. It is now an
// error that names the flag and both valid spellings.
TEST(FlagParserTest, ImplicitStringRejectsEmptyValueAfterEquals) {
  FlagParser flags;
  flags.AddImplicitString("telemetry", "", "all", "telemetry selector");
  char a0[] = "prog", a1[] = "--telemetry=";
  char* argv[] = {a0, a1};
  Status status = flags.Parse(2, argv);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("--telemetry"), std::string::npos)
      << status.ToString();
  // Plain string flags still accept an explicitly empty value.
  FlagParser plain;
  plain.AddString("name", "default", "");
  char b0[] = "prog", b1[] = "--name=";
  char* argv2[] = {b0, b1};
  ASSERT_TRUE(plain.Parse(2, argv2).ok());
  EXPECT_EQ(plain.GetString("name"), "");
}

TEST(FlagParserTest, PositionalCollected) {
  FlagParser flags;
  flags.AddInt64("seed", 0, "");
  char a0[] = "prog", a1[] = "input.tsv", a2[] = "--seed=1", a3[] = "out";
  char* argv[] = {a0, a1, a2, a3};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.tsv");
  EXPECT_EQ(flags.positional()[1], "out");
}

// -- UnixSocketServer ---------------------------------------------------------

std::string TestSocketPath(const char* name) {
  return ::testing::TempDir() + "/scenerec_" + name + "_" +
         std::to_string(::getpid()) + ".sock";
}

TEST(UnixSocketServerTest, RequestResponseRoundTrip) {
  const std::string path = TestSocketPath("roundtrip");
  UnixSocketServer server;
  ASSERT_TRUE(server
                  .Start(path,
                         [](const std::string& verb) {
                           return StatusOr<std::string>("got:" + verb);
                         })
                  .ok());
  EXPECT_TRUE(server.running());
  auto reply = UnixSocketRequest(path, "stats");
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply.value(), "got:stats");
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(UnixSocketServerTest, BinaryPayloadSurvivesFraming) {
  // The OK frame is length-prefixed, so payloads with newlines and NULs
  // must round-trip byte-exactly.
  std::string payload = "line1\nline2\n";
  payload += '\0';
  payload += "tail";
  const std::string path = TestSocketPath("binary");
  UnixSocketServer server;
  ASSERT_TRUE(server
                  .Start(path,
                         [payload](const std::string&) {
                           return StatusOr<std::string>(payload);
                         })
                  .ok());
  auto reply = UnixSocketRequest(path, "x");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().size(), payload.size());
  EXPECT_EQ(reply.value(), payload);
}

TEST(UnixSocketServerTest, HandlerErrorBecomesErrFrame) {
  const std::string path = TestSocketPath("err");
  UnixSocketServer server;
  ASSERT_TRUE(server
                  .Start(path,
                         [](const std::string& verb) -> StatusOr<std::string> {
                           return Status::NotFound("no verb " + verb);
                         })
                  .ok());
  auto reply = UnixSocketRequest(path, "bogus");
  ASSERT_FALSE(reply.ok());
  EXPECT_NE(reply.status().ToString().find("no verb bogus"),
            std::string::npos);
}

TEST(UnixSocketServerTest, ConnectToMissingSocketFails) {
  EXPECT_FALSE(UnixSocketRequest(TestSocketPath("nobody"), "stats",
                                 /*timeout_ms=*/200)
                   .ok());
}

TEST(UnixSocketServerTest, RejectsOverlongPath) {
  UnixSocketServer server;
  const Status status = server.Start(
      std::string(300, 'x'),
      [](const std::string&) { return StatusOr<std::string>(""); });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(UnixSocketServerTest, ConcurrentClientsEachGetTheirReply) {
  const std::string path = TestSocketPath("concurrent");
  UnixSocketServer server;
  ASSERT_TRUE(server
                  .Start(path,
                         [](const std::string& verb) {
                           return StatusOr<std::string>("echo:" + verb);
                         })
                  .ok());
  constexpr int kClients = 8;
  constexpr int kPerClient = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const std::string verb =
            "v" + std::to_string(c) + "_" + std::to_string(i);
        auto reply = UnixSocketRequest(path, verb);
        if (!reply.ok() || reply.value() != "echo:" + verb) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(UnixSocketServerTest, StopUnlinksPathAndAllowsRestart) {
  const std::string path = TestSocketPath("restart");
  UnixSocketServer server;
  auto handler = [](const std::string&) {
    return StatusOr<std::string>("pong");
  };
  ASSERT_TRUE(server.Start(path, handler).ok());
  ASSERT_TRUE(UnixSocketRequest(path, "ping").ok());
  server.Stop();
  EXPECT_FALSE(UnixSocketRequest(path, "ping", /*timeout_ms=*/200).ok());
  // The same object restarts on the same (now unlinked) path.
  ASSERT_TRUE(server.Start(path, handler).ok());
  auto reply = UnixSocketRequest(path, "ping");
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value(), "pong");
  server.Stop();
}

}  // namespace
}  // namespace scenerec
