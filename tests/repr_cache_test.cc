// Tests for the demand-paged representation cache (src/common/repr_cache.h,
// docs/serving.md#warmup): lookup/insert round trips, version-tagged lazy
// invalidation, the deterministic clock / second-chance eviction order,
// capacity accounting across shard layouts, and a concurrent hammer that
// tools/check.sh runs under TSan and ASan.

#include "common/repr_cache.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace scenerec {
namespace {

std::vector<float> Row(int64_t dim, float fill) {
  return std::vector<float>(static_cast<size_t>(dim), fill);
}

TEST(ReprCacheTest, InsertThenLookupRoundTripsTheRow) {
  ReprCache cache({/*capacity=*/8, /*dim=*/4});
  std::vector<float> out(4, -1.0f);
  EXPECT_FALSE(cache.Lookup(7, /*version=*/1, out));

  cache.Insert(7, 1, Row(4, 0.5f));
  ASSERT_TRUE(cache.Lookup(7, 1, out));
  for (float v : out) EXPECT_EQ(v, 0.5f);

  // Re-insert overwrites in place — no second slot consumed.
  cache.Insert(7, 1, Row(4, 2.5f));
  ASSERT_TRUE(cache.Lookup(7, 1, out));
  for (float v : out) EXPECT_EQ(v, 2.5f);
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(ReprCacheTest, VersionMismatchIsAMissAndReinsertReclaimsTheSlot) {
  ReprCache cache({/*capacity=*/4, /*dim=*/2});
  std::vector<float> out(2);
  cache.Insert(3, /*version=*/1, Row(2, 1.0f));
  ASSERT_TRUE(cache.Lookup(3, 1, out));

  // A publish bumps the version: the resident v1 entry must NOT serve v2.
  EXPECT_FALSE(cache.Lookup(3, /*version=*/2, out));

  // Re-inserting under v2 refreshes the same slot; v1 is gone, v2 serves.
  cache.Insert(3, 2, Row(2, 7.0f));
  ASSERT_TRUE(cache.Lookup(3, 2, out));
  EXPECT_EQ(out[0], 7.0f);
  EXPECT_FALSE(cache.Lookup(3, 1, out));
  EXPECT_EQ(cache.stats().entries, 1);
}

// Single shard makes the clock deterministic: insert sets the ref bit, a
// sweep clears set bits (second chance) and evicts the first cold slot.
TEST(ReprCacheTest, ClockEvictionGivesHitEntriesASecondChance) {
  ReprCache cache({/*capacity=*/4, /*dim=*/1, /*num_shards=*/1});
  std::vector<float> out(1);
  for (int64_t k = 0; k < 4; ++k) cache.Insert(k, 1, Row(1, float(k)));

  // All four ref bits are set, so the first eviction sweeps a full lap
  // (clearing every bit) and lands back on slot 0: key 0 is the victim.
  cache.Insert(4, 1, Row(1, 4.0f));
  EXPECT_FALSE(cache.Lookup(0, 1, out));
  EXPECT_TRUE(cache.Lookup(4, 1, out));

  // Hit key 2, then insert twice more. The hand sits at slot 1: key 1 is
  // cold and goes first; key 2's fresh ref bit earns it a reprieve, so the
  // next victim is key 3.
  ASSERT_TRUE(cache.Lookup(2, 1, out));
  cache.Insert(5, 1, Row(1, 5.0f));
  EXPECT_FALSE(cache.Lookup(1, 1, out));
  cache.Insert(6, 1, Row(1, 6.0f));
  EXPECT_FALSE(cache.Lookup(3, 1, out));
  EXPECT_TRUE(cache.Lookup(2, 1, out));

  const ReprCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 4);
  EXPECT_EQ(stats.evictions, 3u);
}

TEST(ReprCacheTest, CapacityBoundsResidencyAcrossShardLayouts) {
  for (int64_t shards : {int64_t{1}, int64_t{4}, int64_t{16}}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    // 10 is not a multiple of any power-of-two shard count > 1: the exact
    // split must still hand out precisely 10 slots in total.
    ReprCache cache({/*capacity=*/10, /*dim=*/3, shards});
    for (int64_t k = 0; k < 100; ++k) cache.Insert(k, 1, Row(3, float(k)));
    const ReprCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 10);
    EXPECT_EQ(stats.bytes, 10 * 3 * int64_t{sizeof(float)});
    EXPECT_EQ(stats.capacity_bytes, 10 * 3 * int64_t{sizeof(float)});
    EXPECT_EQ(stats.insertions, 100u);
    EXPECT_EQ(stats.evictions, 90u);
  }
}

TEST(ReprCacheTest, ClearDropsEverythingAndSlotsAreReusable) {
  ReprCache cache({/*capacity=*/8, /*dim=*/2, /*num_shards=*/2});
  for (int64_t k = 0; k < 8; ++k) cache.Insert(k, 1, Row(2, float(k)));
  EXPECT_EQ(cache.stats().entries, 8);

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().bytes, 0);
  std::vector<float> out(2);
  for (int64_t k = 0; k < 8; ++k) EXPECT_FALSE(cache.Lookup(k, 1, out));

  cache.Insert(42, 2, Row(2, 42.0f));
  ASSERT_TRUE(cache.Lookup(42, 2, out));
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(ReprCacheTest, ShardCountRoundsDownAndClampsToCapacity) {
  // Requested 16 shards but only 3 slots: every shard must own >= 1 slot,
  // so the count clamps to floor_pow2(3) = 2.
  ReprCache small({/*capacity=*/3, /*dim=*/1, /*num_shards=*/16});
  EXPECT_EQ(small.num_shards(), 2);
  // Non-power-of-two requests round down.
  ReprCache rounded({/*capacity=*/64, /*dim=*/1, /*num_shards=*/12});
  EXPECT_EQ(rounded.num_shards(), 8);
}

// Concurrent readers and writers over a keyspace larger than capacity:
// every successful Lookup must return the exact row Insert wrote for that
// (key, version) — a key-derived pattern makes torn or misrouted rows
// detectable. check.sh runs this under TSan; the locking is per shard, so
// this is the test that would catch a slot race.
TEST(ReprCacheTest, ConcurrentHammerReturnsOnlyFullyWrittenRows) {
  constexpr int64_t kDim = 8;
  constexpr int64_t kKeys = 256;
  ReprCache cache({/*capacity=*/64, kDim, /*num_shards=*/4});
  std::atomic<uint64_t> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      std::vector<float> row(kDim);
      std::vector<float> out(kDim);
      for (int iter = 0; iter < 2000; ++iter) {
        const int64_t key = (iter * 31 + t * 17) % kKeys;
        const uint64_t version = 1 + static_cast<uint64_t>(key % 3);
        for (int64_t d = 0; d < kDim; ++d) {
          row[static_cast<size_t>(d)] =
              static_cast<float>(key * 1000 + static_cast<int64_t>(version) *
                                                  100 + d);
        }
        if (cache.Lookup(key, version, out)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          for (int64_t d = 0; d < kDim; ++d) {
            ASSERT_EQ(out[static_cast<size_t>(d)],
                      row[static_cast<size_t>(d)])
                << "key " << key << " version " << version << " dim " << d;
          }
        } else {
          cache.Insert(key, version, row);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_GT(hits.load(), 0u);
  const ReprCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, 64);
  EXPECT_EQ(stats.hits, hits.load());
}

}  // namespace
}  // namespace scenerec
