#include "common/telemetry.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/thread_pool.h"

namespace scenerec {
namespace telemetry {
namespace {

/// Every test runs with a clean, enabled registry and leaves telemetry
/// disabled afterwards (other test binaries assume the disabled default).
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Telemetry::SetEnabled(true);
    Telemetry::Reset();
  }
  void TearDown() override {
    Telemetry::Reset();
    Telemetry::SetEnabled(false);
  }
};

// -- Histogram buckets -------------------------------------------------------

TEST(HistogramBucketTest, Log2BucketEdges) {
  EXPECT_EQ(HistogramBucket(0), 0);
  EXPECT_EQ(HistogramBucket(1), 1);
  EXPECT_EQ(HistogramBucket(2), 2);
  EXPECT_EQ(HistogramBucket(3), 2);
  EXPECT_EQ(HistogramBucket(4), 3);
  EXPECT_EQ(HistogramBucket(1023), 10);
  EXPECT_EQ(HistogramBucket(1024), 11);
  EXPECT_EQ(HistogramBucket(UINT64_MAX), kHistogramBuckets - 1);
  // Every bucket's [low, high] range (both bounds inclusive) maps back to
  // that bucket. Buckets 0 and 1 share low 0, so start at 2.
  for (int b = 2; b < kHistogramBuckets; ++b) {
    EXPECT_EQ(HistogramBucket(HistogramBucketLow(b)), b) << "bucket " << b;
    EXPECT_EQ(HistogramBucket(HistogramBucketHigh(b)), b) << "bucket " << b;
  }
}

TEST(HistogramDataTest, RecordMergeAndStats) {
  HistogramData a;
  a.Record(10);
  a.Record(100);
  HistogramData b;
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 1110u);
  EXPECT_EQ(a.max, 1000u);
  EXPECT_DOUBLE_EQ(a.Mean(), 1110.0 / 3.0);
}

TEST(HistogramDataTest, PercentilesAreMonotoneAndBounded) {
  HistogramData h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const double p50 = h.Percentile(0.50);
  const double p90 = h.Percentile(0.90);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max));
  // Log-scale buckets: p50 of uniform 1..1000 lands in the [512, 1024)
  // bucket's neighborhood — accept a loose factor-of-2 band.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_DOUBLE_EQ(HistogramData{}.Percentile(0.5), 0.0);
}

// -- Counters / gauges / enabled gate ----------------------------------------

TEST_F(TelemetryTest, CounterAccumulatesOnOneThread) {
  Counter c = RegisterCounter("test/basic_counter");
  c.Add();
  c.Add(41);
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/basic_counter"), 42u);
}

TEST_F(TelemetryTest, RegistrationIsIdempotentByName) {
  Counter a = RegisterCounter("test/same_counter");
  Counter b = RegisterCounter("test/same_counter");
  a.Add(1);
  b.Add(2);
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/same_counter"), 3u);
}

TEST_F(TelemetryTest, DisabledUpdatesAreDropped) {
  Counter c = RegisterCounter("test/disabled_counter");
  Telemetry::SetEnabled(false);
  c.Add(100);
  Telemetry::SetEnabled(true);
  c.Add(1);
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/disabled_counter"), 1u);
}

TEST_F(TelemetryTest, GaugeAggregationModes) {
  Gauge sum = RegisterGauge("test/sum_gauge", GaugeAgg::kSum);
  Gauge peak = RegisterGauge("test/max_gauge", GaugeAgg::kMax);
  sum.Set(7);
  peak.RaiseTo(10);
  peak.RaiseTo(5);  // lower: must not regress the thread's value
  std::thread other([&] {
    sum.Set(3);
    peak.RaiseTo(20);
  });
  other.join();
  TelemetrySnapshot snapshot = Telemetry::Snapshot();
  EXPECT_EQ(snapshot.GaugeValue("test/sum_gauge"), 10u);   // 7 + 3
  EXPECT_EQ(snapshot.GaugeValue("test/max_gauge"), 20u);  // max(10, 20)
}

TEST_F(TelemetryTest, SnapshotAfterResetIsZero) {
  Counter c = RegisterCounter("test/reset_counter");
  Histogram h = RegisterHistogram("test/reset_hist", "ns");
  c.Add(5);
  h.Record(123);
  std::thread exited([&] { c.Add(50); });
  exited.join();  // lands in the retired totals
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/reset_counter"), 55u);
  Telemetry::Reset();
  TelemetrySnapshot snapshot = Telemetry::Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test/reset_counter"), 0u);
  const HistogramSample* hist = snapshot.FindHistogram("test/reset_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, 0u);
  // And the metric is still usable after the reset.
  c.Add(2);
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/reset_counter"), 2u);
}

TEST_F(TelemetryTest, ExitedThreadContributionsSurvive) {
  Counter c = RegisterCounter("test/retired_counter");
  Histogram h = RegisterHistogram("test/retired_hist", "ns");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      c.Add(static_cast<uint64_t>(t + 1));
      h.Record(static_cast<uint64_t>(100 * (t + 1)));
    });
  }
  for (std::thread& t : threads) t.join();
  TelemetrySnapshot snapshot = Telemetry::Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test/retired_counter"), 1u + 2 + 3 + 4);
  const HistogramSample* hist = snapshot.FindHistogram("test/retired_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, 4u);
  EXPECT_EQ(hist->data.sum, 1000u);
  EXPECT_EQ(hist->data.max, 400u);
}

// -- Merge across pool workers (run under TSan in tools/check.sh) ------------

TEST_F(TelemetryTest, CountsMergeAcrossPoolWorkers) {
  Counter c = RegisterCounter("test/pool_counter");
  Histogram h = RegisterHistogram("test/pool_hist", "items");
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  pool.ParallelFor(kN, /*grain=*/64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      c.Add(1);
      h.Record(static_cast<uint64_t>(i % 97));
    }
  });
  TelemetrySnapshot snapshot = Telemetry::Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test/pool_counter"),
            static_cast<uint64_t>(kN));
  const HistogramSample* hist = snapshot.FindHistogram("test/pool_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, static_cast<uint64_t>(kN));
}

TEST_F(TelemetryTest, SnapshotRacesWithWritersCleanly) {
  // Scrape while workers write: values may be mid-update (stale) but every
  // read is well-defined — this is the TSan-critical path.
  Counter c = RegisterCounter("test/racing_counter");
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)Telemetry::Snapshot();
    }
  });
  pool.ParallelFor(100000, /*grain=*/256, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) c.Add(1);
  });
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/racing_counter"), 100000u);
}

// -- ScopedTimer -------------------------------------------------------------

TEST_F(TelemetryTest, ScopedTimerRecordsElapsed) {
  Histogram h = RegisterHistogram("test/timer_hist", "ns");
  {
    ScopedTimer timer(h);
    volatile uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<uint64_t>(i);
  }
  const TelemetrySnapshot snapshot = Telemetry::Snapshot();
  const HistogramSample* hist = snapshot.FindHistogram("test/timer_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, 1u);
  EXPECT_GT(hist->data.sum, 0u);
}

TEST_F(TelemetryTest, ScopedTimerDisabledRecordsNothing) {
  Histogram h = RegisterHistogram("test/timer_off_hist", "ns");
  Telemetry::SetEnabled(false);
  {
    ScopedTimer timer(h);
    EXPECT_EQ(timer.ElapsedNs(), 0u);
  }
  Telemetry::SetEnabled(true);
  const TelemetrySnapshot snapshot = Telemetry::Snapshot();
  const HistogramSample* hist = snapshot.FindHistogram("test/timer_off_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, 0u);
}

// -- JSON --------------------------------------------------------------------

/// Tiny structural checker: enough JSON awareness to verify the dump's
/// schema without a parser dependency.
bool JsonHasKey(const std::string& json, const std::string& key) {
  return json.find('"' + key + '"') != std::string::npos;
}

std::string JsonScalarAfterKey(const std::string& json,
                               const std::string& key) {
  const size_t at = json.find('"' + key + "\":");
  if (at == std::string::npos) return "";
  size_t begin = at + key.size() + 3;
  while (begin < json.size() && json[begin] == ' ') ++begin;
  size_t end = begin;
  while (end < json.size() && json[end] != ',' && json[end] != '}' &&
         json[end] != '\n') {
    ++end;
  }
  return json.substr(begin, end - begin);
}

TEST_F(TelemetryTest, JsonRoundTripSchema) {
  Counter c = RegisterCounter("test/json_counter");
  Gauge g = RegisterGauge("test/json_gauge", GaugeAgg::kMax);
  Histogram h = RegisterHistogram("test/json_hist", "bytes");
  c.Add(7);
  g.RaiseTo(99);
  h.Record(64);
  h.Record(64);
  const std::string json = Telemetry::ToJson();

  // Top-level sections.
  EXPECT_TRUE(JsonHasKey(json, "counters"));
  EXPECT_TRUE(JsonHasKey(json, "gauges"));
  EXPECT_TRUE(JsonHasKey(json, "histograms"));
  // Scalar values round-trip.
  EXPECT_EQ(JsonScalarAfterKey(json, "test/json_counter"), "7");
  EXPECT_EQ(JsonScalarAfterKey(json, "test/json_gauge"), "99");
  // Histogram object schema.
  EXPECT_TRUE(JsonHasKey(json, "unit"));
  EXPECT_TRUE(JsonHasKey(json, "p50"));
  EXPECT_TRUE(JsonHasKey(json, "p99"));
  EXPECT_TRUE(JsonHasKey(json, "buckets"));
  const size_t hist_at = json.find("\"test/json_hist\"");
  ASSERT_NE(hist_at, std::string::npos);
  EXPECT_EQ(JsonScalarAfterKey(json.substr(hist_at), "count"), "2");
  EXPECT_EQ(JsonScalarAfterKey(json.substr(hist_at), "sum"), "128");
  // Both 64-valued samples land in the [64, 127] bucket.
  EXPECT_NE(json.find("[64, 127, 2]"), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TelemetryTest, WriteJsonFileRoundTrip) {
  Counter c = RegisterCounter("test/file_counter");
  c.Add(3);
  const std::string path = ::testing::TempDir() + "/telemetry_test.json";
  ASSERT_TRUE(Telemetry::WriteJsonFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, Telemetry::ToJson());
  EXPECT_EQ(JsonScalarAfterKey(contents, "test/file_counter"), "3");
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, WriteJsonFileFailsOnBadPath) {
  EXPECT_FALSE(
      Telemetry::WriteJsonFile("/nonexistent-dir/telemetry.json").ok());
}

}  // namespace
}  // namespace telemetry
}  // namespace scenerec
