#include "common/telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/thread_pool.h"
#include "common/windowed_histogram.h"

namespace scenerec {
namespace telemetry {
namespace {

/// Every test runs with a clean, enabled registry and leaves telemetry
/// disabled afterwards (other test binaries assume the disabled default).
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Telemetry::SetEnabled(true);
    Telemetry::Reset();
  }
  void TearDown() override {
    Telemetry::Reset();
    Telemetry::SetEnabled(false);
  }
};

// -- Histogram buckets -------------------------------------------------------

TEST(HistogramBucketTest, Log2BucketEdges) {
  EXPECT_EQ(HistogramBucket(0), 0);
  EXPECT_EQ(HistogramBucket(1), 1);
  EXPECT_EQ(HistogramBucket(2), 2);
  EXPECT_EQ(HistogramBucket(3), 2);
  EXPECT_EQ(HistogramBucket(4), 3);
  EXPECT_EQ(HistogramBucket(1023), 10);
  EXPECT_EQ(HistogramBucket(1024), 11);
  EXPECT_EQ(HistogramBucket(UINT64_MAX), kHistogramBuckets - 1);
  // Every bucket's [low, high] range (both bounds inclusive) maps back to
  // that bucket. Buckets 0 and 1 share low 0, so start at 2.
  for (int b = 2; b < kHistogramBuckets; ++b) {
    EXPECT_EQ(HistogramBucket(HistogramBucketLow(b)), b) << "bucket " << b;
    EXPECT_EQ(HistogramBucket(HistogramBucketHigh(b)), b) << "bucket " << b;
  }
}

TEST(HistogramDataTest, RecordMergeAndStats) {
  HistogramData a;
  a.Record(10);
  a.Record(100);
  HistogramData b;
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 1110u);
  EXPECT_EQ(a.max, 1000u);
  EXPECT_DOUBLE_EQ(a.Mean(), 1110.0 / 3.0);
}

TEST(HistogramDataTest, PercentilesAreMonotoneAndBounded) {
  HistogramData h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const double p50 = h.Percentile(0.50);
  const double p90 = h.Percentile(0.90);
  const double p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, static_cast<double>(h.max));
  // Log-scale buckets: p50 of uniform 1..1000 lands in the [512, 1024)
  // bucket's neighborhood — accept a loose factor-of-2 band.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_DOUBLE_EQ(HistogramData{}.Percentile(0.5), 0.0);
}

// -- Counters / gauges / enabled gate ----------------------------------------

TEST_F(TelemetryTest, CounterAccumulatesOnOneThread) {
  Counter c = RegisterCounter("test/basic_counter");
  c.Add();
  c.Add(41);
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/basic_counter"), 42u);
}

TEST_F(TelemetryTest, RegistrationIsIdempotentByName) {
  Counter a = RegisterCounter("test/same_counter");
  Counter b = RegisterCounter("test/same_counter");
  a.Add(1);
  b.Add(2);
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/same_counter"), 3u);
}

TEST_F(TelemetryTest, DisabledUpdatesAreDropped) {
  Counter c = RegisterCounter("test/disabled_counter");
  Telemetry::SetEnabled(false);
  c.Add(100);
  Telemetry::SetEnabled(true);
  c.Add(1);
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/disabled_counter"), 1u);
}

TEST_F(TelemetryTest, GaugeAggregationModes) {
  Gauge sum = RegisterGauge("test/sum_gauge", GaugeAgg::kSum);
  Gauge peak = RegisterGauge("test/max_gauge", GaugeAgg::kMax);
  sum.Set(7);
  peak.RaiseTo(10);
  peak.RaiseTo(5);  // lower: must not regress the thread's value
  std::thread other([&] {
    sum.Set(3);
    peak.RaiseTo(20);
  });
  other.join();
  TelemetrySnapshot snapshot = Telemetry::Snapshot();
  EXPECT_EQ(snapshot.GaugeValue("test/sum_gauge"), 10u);   // 7 + 3
  EXPECT_EQ(snapshot.GaugeValue("test/max_gauge"), 20u);  // max(10, 20)
}

TEST_F(TelemetryTest, SnapshotAfterResetIsZero) {
  Counter c = RegisterCounter("test/reset_counter");
  Histogram h = RegisterHistogram("test/reset_hist", "ns");
  c.Add(5);
  h.Record(123);
  std::thread exited([&] { c.Add(50); });
  exited.join();  // lands in the retired totals
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/reset_counter"), 55u);
  Telemetry::Reset();
  TelemetrySnapshot snapshot = Telemetry::Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test/reset_counter"), 0u);
  const HistogramSample* hist = snapshot.FindHistogram("test/reset_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, 0u);
  // And the metric is still usable after the reset.
  c.Add(2);
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/reset_counter"), 2u);
}

TEST_F(TelemetryTest, ExitedThreadContributionsSurvive) {
  Counter c = RegisterCounter("test/retired_counter");
  Histogram h = RegisterHistogram("test/retired_hist", "ns");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      c.Add(static_cast<uint64_t>(t + 1));
      h.Record(static_cast<uint64_t>(100 * (t + 1)));
    });
  }
  for (std::thread& t : threads) t.join();
  TelemetrySnapshot snapshot = Telemetry::Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test/retired_counter"), 1u + 2 + 3 + 4);
  const HistogramSample* hist = snapshot.FindHistogram("test/retired_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, 4u);
  EXPECT_EQ(hist->data.sum, 1000u);
  EXPECT_EQ(hist->data.max, 400u);
}

// -- Merge across pool workers (run under TSan in tools/check.sh) ------------

TEST_F(TelemetryTest, CountsMergeAcrossPoolWorkers) {
  Counter c = RegisterCounter("test/pool_counter");
  Histogram h = RegisterHistogram("test/pool_hist", "items");
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  pool.ParallelFor(kN, /*grain=*/64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      c.Add(1);
      h.Record(static_cast<uint64_t>(i % 97));
    }
  });
  TelemetrySnapshot snapshot = Telemetry::Snapshot();
  EXPECT_EQ(snapshot.CounterValue("test/pool_counter"),
            static_cast<uint64_t>(kN));
  const HistogramSample* hist = snapshot.FindHistogram("test/pool_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, static_cast<uint64_t>(kN));
}

TEST_F(TelemetryTest, SnapshotRacesWithWritersCleanly) {
  // Scrape while workers write: values may be mid-update (stale) but every
  // read is well-defined — this is the TSan-critical path.
  Counter c = RegisterCounter("test/racing_counter");
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)Telemetry::Snapshot();
    }
  });
  pool.ParallelFor(100000, /*grain=*/256, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) c.Add(1);
  });
  stop.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_EQ(Telemetry::Snapshot().CounterValue("test/racing_counter"), 100000u);
}

// -- ScopedTimer -------------------------------------------------------------

TEST_F(TelemetryTest, ScopedTimerRecordsElapsed) {
  Histogram h = RegisterHistogram("test/timer_hist", "ns");
  {
    ScopedTimer timer(h);
    volatile uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<uint64_t>(i);
  }
  const TelemetrySnapshot snapshot = Telemetry::Snapshot();
  const HistogramSample* hist = snapshot.FindHistogram("test/timer_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, 1u);
  EXPECT_GT(hist->data.sum, 0u);
}

TEST_F(TelemetryTest, ScopedTimerDisabledRecordsNothing) {
  Histogram h = RegisterHistogram("test/timer_off_hist", "ns");
  Telemetry::SetEnabled(false);
  {
    ScopedTimer timer(h);
    EXPECT_EQ(timer.ElapsedNs(), 0u);
  }
  Telemetry::SetEnabled(true);
  const TelemetrySnapshot snapshot = Telemetry::Snapshot();
  const HistogramSample* hist = snapshot.FindHistogram("test/timer_off_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->data.count, 0u);
}

// -- JSON --------------------------------------------------------------------

/// Tiny structural checker: enough JSON awareness to verify the dump's
/// schema without a parser dependency.
bool JsonHasKey(const std::string& json, const std::string& key) {
  return json.find('"' + key + '"') != std::string::npos;
}

std::string JsonScalarAfterKey(const std::string& json,
                               const std::string& key) {
  const size_t at = json.find('"' + key + "\":");
  if (at == std::string::npos) return "";
  size_t begin = at + key.size() + 3;
  while (begin < json.size() && json[begin] == ' ') ++begin;
  size_t end = begin;
  while (end < json.size() && json[end] != ',' && json[end] != '}' &&
         json[end] != '\n') {
    ++end;
  }
  return json.substr(begin, end - begin);
}

TEST_F(TelemetryTest, JsonRoundTripSchema) {
  Counter c = RegisterCounter("test/json_counter");
  Gauge g = RegisterGauge("test/json_gauge", GaugeAgg::kMax);
  Histogram h = RegisterHistogram("test/json_hist", "bytes");
  c.Add(7);
  g.RaiseTo(99);
  h.Record(64);
  h.Record(64);
  const std::string json = Telemetry::ToJson();

  // Top-level sections.
  EXPECT_TRUE(JsonHasKey(json, "counters"));
  EXPECT_TRUE(JsonHasKey(json, "gauges"));
  EXPECT_TRUE(JsonHasKey(json, "histograms"));
  // Scalar values round-trip.
  EXPECT_EQ(JsonScalarAfterKey(json, "test/json_counter"), "7");
  EXPECT_EQ(JsonScalarAfterKey(json, "test/json_gauge"), "99");
  // Histogram object schema.
  EXPECT_TRUE(JsonHasKey(json, "unit"));
  EXPECT_TRUE(JsonHasKey(json, "p50"));
  EXPECT_TRUE(JsonHasKey(json, "p99"));
  EXPECT_TRUE(JsonHasKey(json, "buckets"));
  const size_t hist_at = json.find("\"test/json_hist\"");
  ASSERT_NE(hist_at, std::string::npos);
  EXPECT_EQ(JsonScalarAfterKey(json.substr(hist_at), "count"), "2");
  EXPECT_EQ(JsonScalarAfterKey(json.substr(hist_at), "sum"), "128");
  // Both 64-valued samples land in the [64, 127] bucket.
  EXPECT_NE(json.find("[64, 127, 2]"), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TelemetryTest, WriteJsonFileRoundTrip) {
  Counter c = RegisterCounter("test/file_counter");
  c.Add(3);
  const std::string path = ::testing::TempDir() + "/telemetry_test.json";
  ASSERT_TRUE(Telemetry::WriteJsonFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  // The "process" line carries live uptime/RSS and differs between any two
  // scrapes; compare everything after it.
  auto metrics_part = [](const std::string& json) {
    const size_t at = json.find("\"counters\"");
    return at == std::string::npos ? json : json.substr(at);
  };
  EXPECT_EQ(metrics_part(contents), metrics_part(Telemetry::ToJson()));
  EXPECT_NE(contents.find("\"process\""), std::string::npos);
  EXPECT_EQ(JsonScalarAfterKey(contents, "test/file_counter"), "3");
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, WriteJsonFileFailsOnBadPath) {
  EXPECT_FALSE(
      Telemetry::WriteJsonFile("/nonexistent-dir/telemetry.json").ok());
}

// -- Process sample -----------------------------------------------------------

TEST_F(TelemetryTest, SnapshotCarriesProcessSample) {
  const TelemetrySnapshot a = Telemetry::Snapshot();
  EXPECT_GT(a.process.mono_ns, 0u);
  EXPECT_GT(a.process.uptime_seconds, 0.0);
  EXPECT_GT(a.process.rss_bytes, 0u);  // /proc/self/statm exists on Linux
  const TelemetrySnapshot b = Telemetry::Snapshot();
  // The monotonic timestamp is what rate computations diff over.
  EXPECT_GT(b.process.mono_ns, a.process.mono_ns);
  const std::string json = a.ToJson();
  EXPECT_NE(json.find("\"process\""), std::string::npos);
  EXPECT_NE(json.find("\"rss_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"mono_ns\""), std::string::npos);
}

// -- Prometheus exposition ----------------------------------------------------

TEST_F(TelemetryTest, ToPrometheusRendersAllKindsWithSanitizedNames) {
  Counter c = RegisterCounter("prom/test_counter");
  Gauge g = RegisterGauge("prom/test_gauge", GaugeAgg::kSum);
  Histogram h = RegisterHistogram("prom/test_hist", "ns");
  c.Add(7);
  g.Set(42);
  h.Record(3);    // bucket [2, 3]
  h.Record(100);  // bucket [64, 127]
  const std::string text = Telemetry::ToPrometheus();
  // '/' sanitizes to '_' and everything gets the scenerec_ prefix.
  EXPECT_NE(text.find("# TYPE scenerec_prom_test_counter counter\n"
                      "scenerec_prom_test_counter 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("scenerec_prom_test_gauge 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scenerec_prom_test_hist histogram"),
            std::string::npos);
  // Cumulative le buckets: the [2,3] bucket holds 1, by [64,127] both.
  EXPECT_NE(text.find("scenerec_prom_test_hist_bucket{le=\"3\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("scenerec_prom_test_hist_bucket{le=\"127\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("scenerec_prom_test_hist_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("scenerec_prom_test_hist_sum 103\n"),
            std::string::npos);
  EXPECT_NE(text.find("scenerec_prom_test_hist_count 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("scenerec_process_uptime_seconds "),
            std::string::npos);
}

// -- HistogramDelta -----------------------------------------------------------

TEST(HistogramDeltaTest, SubtractsMonotoneFieldsExactly) {
  HistogramData prev;
  prev.Record(10);
  prev.Record(1000);
  HistogramData cur = prev;
  cur.Record(20);
  cur.Record(500);
  const HistogramData d = HistogramDelta(cur, prev);
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.sum, 520u);
  EXPECT_EQ(d.buckets[HistogramBucket(20)], 1u);
  EXPECT_EQ(d.buckets[HistogramBucket(500)], 1u);
  // Interval max is bounded by the highest non-empty delta bucket's edge,
  // clamped to the cumulative max (1000 here, from prev).
  EXPECT_GE(d.max, 500u);
  EXPECT_LE(d.max, 1000u);
}

TEST(HistogramDeltaTest, RestartsFromCurrentAfterReset) {
  HistogramData prev;
  prev.Record(10);
  prev.Record(10);
  HistogramData cur;  // registry was Reset: counts went backwards
  cur.Record(7);
  const HistogramData d = HistogramDelta(cur, prev);
  EXPECT_EQ(d.count, 1u);
  EXPECT_EQ(d.sum, 7u);
}

TEST(HistogramDeltaTest, IdenticalSnapshotsYieldEmptyDelta) {
  HistogramData cur;
  cur.Record(64);
  const HistogramData d = HistogramDelta(cur, cur);
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.sum, 0u);
  EXPECT_EQ(d.max, 0u);
}

// -- WindowedHistograms -------------------------------------------------------

/// Builds a snapshot holding exactly one histogram, for deterministic
/// window tests that don't touch the process registry.
TelemetrySnapshot OneHistSnapshot(const std::string& name,
                                  const HistogramData& data) {
  TelemetrySnapshot snap;
  snap.histograms.push_back({name, "ns", data});
  return snap;
}

TEST(WindowedHistogramsTest, FirstTickBaselinesBootHistory) {
  WindowedHistograms windows({/*interval_ns=*/100, /*num_intervals=*/4});
  HistogramData cumulative;
  for (int i = 0; i < 50; ++i) cumulative.Record(8);  // pre-endpoint boot
  windows.Tick(OneHistSnapshot("h", cumulative), /*now_ns=*/1000);
  const auto view = windows.Window("h");
  ASSERT_TRUE(view.found);
  EXPECT_EQ(view.data.count, 0u);  // boot history stays out of the window
  EXPECT_FALSE(windows.Window("unknown").found);
}

TEST(WindowedHistogramsTest, WindowMergeMatchesSerialReference) {
  WindowedHistograms windows({/*interval_ns=*/100, /*num_intervals=*/10});
  HistogramData cumulative;
  windows.Tick(OneHistSnapshot("h", cumulative), 0);
  HistogramData reference;  // everything recorded after the baseline
  uint64_t now = 0;
  for (int tick = 1; tick <= 8; ++tick) {
    now += 100;
    for (int i = 0; i < tick; ++i) {
      const uint64_t v = static_cast<uint64_t>(tick) * 10;
      cumulative.Record(v);
      reference.Record(v);
    }
    windows.Tick(OneHistSnapshot("h", cumulative), now);
  }
  const auto view = windows.Window("h");
  ASSERT_TRUE(view.found);
  EXPECT_EQ(view.data.count, reference.count);
  EXPECT_EQ(view.data.sum, reference.sum);
  for (int b = 0; b < kHistogramBuckets; ++b) {
    EXPECT_EQ(view.data.buckets[b], reference.buckets[b]) << "bucket " << b;
  }
  EXPECT_EQ(view.data.Percentile(0.5), reference.Percentile(0.5));
  EXPECT_EQ(view.window_ns, 800u);
}

TEST(WindowedHistogramsTest, RotationEvictsSlotsPastTheWindow) {
  WindowedHistograms windows({/*interval_ns=*/100, /*num_intervals=*/3});
  HistogramData cumulative;
  windows.Tick(OneHistSnapshot("h", cumulative), 0);
  cumulative.Record(11);
  windows.Tick(OneHistSnapshot("h", cumulative), 100);  // slot 1: 1 sample
  EXPECT_EQ(windows.Window("h").data.count, 1u);
  cumulative.Record(22);
  cumulative.Record(22);
  windows.Tick(OneHistSnapshot("h", cumulative), 200);  // slot 2: 2 samples
  EXPECT_EQ(windows.Window("h").data.count, 3u);
  // Advancing to slot 4 rolls past slot 1 (ring of 3): its sample leaves.
  windows.Tick(OneHistSnapshot("h", cumulative), 400);
  EXPECT_EQ(windows.Window("h").data.count, 2u);
  // A gap longer than the whole ring drains the window to empty.
  windows.Tick(OneHistSnapshot("h", cumulative), 5000);
  EXPECT_EQ(windows.Window("h").data.count, 0u);
  EXPECT_EQ(windows.MaxWindowNs(), 300u);
}

TEST(WindowedHistogramsTest, LateRegisteredHistogramBaselinesAtFirstSight) {
  WindowedHistograms windows({/*interval_ns=*/100, /*num_intervals=*/4});
  HistogramData first;
  windows.Tick(OneHistSnapshot("a", first), 0);
  // "b" appears at tick 2 with pre-existing history: that history must
  // baseline out, exactly like the first tick does for "a".
  HistogramData late;
  for (int i = 0; i < 30; ++i) late.Record(5);
  TelemetrySnapshot snap = OneHistSnapshot("a", first);
  snap.histograms.push_back({"b", "ns", late});
  windows.Tick(snap, 100);
  EXPECT_EQ(windows.Window("b").data.count, 0u);
  late.Record(9);
  snap = OneHistSnapshot("a", first);
  snap.histograms.push_back({"b", "ns", late});
  windows.Tick(snap, 200);
  EXPECT_EQ(windows.Window("b").data.count, 1u);
  const std::vector<std::string> names = windows.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST_F(TelemetryTest, WindowedConcurrentRecordWhileScraping) {
  // Hot-path threads hammer a real registry histogram while another thread
  // ticks and queries the window — the TSan gate (tools/check.sh) runs
  // this binary, so any unsynchronized access here is a CI failure.
  Histogram h = RegisterHistogram("windowed/concurrent_ns", "ns");
  WindowedHistograms windows({/*interval_ns=*/100'000, /*num_intervals=*/8});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop] {
      uint64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        h.Record(v = (v * 2862933555777941757ULL + 3037000493ULL) % 4096);
      }
    });
  }
  uint64_t now = 0;
  uint64_t peak_count = 0;
  for (int i = 0; i < 200; ++i) {
    now += 50'000;
    windows.Tick(Telemetry::Snapshot(), now);
    const auto view = windows.Window("windowed/concurrent_ns");
    EXPECT_TRUE(view.found);
    peak_count = std::max(peak_count, view.data.count);
    // Yield between scrapes so the writers make progress even on a
    // single-core machine; otherwise this loop can starve them and every
    // post-baseline delta is legitimately empty.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  EXPECT_GT(peak_count, 0u);
}

}  // namespace
}  // namespace telemetry
}  // namespace scenerec
