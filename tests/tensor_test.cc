#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"
#include "tests/test_util.h"

namespace scenerec {
namespace {

using testing::ExpectVectorNear;

// -- Shape ----------------------------------------------------------------------

TEST(ShapeTest, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.num_elements(), 1);
  EXPECT_EQ(s.ToString(), "[]");
}

TEST(ShapeTest, VectorAndMatrix) {
  Shape v({5});
  EXPECT_EQ(v.rank(), 1);
  EXPECT_EQ(v.dim(0), 5);
  EXPECT_EQ(v.num_elements(), 5);
  Shape m({3, 4});
  EXPECT_EQ(m.rank(), 2);
  EXPECT_EQ(m.num_elements(), 12);
  EXPECT_EQ(m.ToString(), "[3, 4]");
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({6}), Shape({2, 3}));
  EXPECT_EQ(Shape(), Shape());
}

// -- Tensor factories --------------------------------------------------------------

TEST(TensorTest, ZerosAndFull) {
  Tensor z = Tensor::Zeros(Shape({2, 2}));
  ExpectVectorNear(z.value(), {0, 0, 0, 0});
  Tensor f = Tensor::Full(Shape({3}), 1.5f);
  ExpectVectorNear(f.value(), {1.5f, 1.5f, 1.5f});
  EXPECT_FALSE(z.requires_grad());
}

TEST(TensorTest, ScalarFactory) {
  Tensor s = Tensor::Scalar(3.25f);
  EXPECT_EQ(s.shape().rank(), 0);
  EXPECT_FLOAT_EQ(s.scalar(), 3.25f);
}

TEST(TensorTest, FromVectorAndAccessors) {
  Tensor t = Tensor::FromVector(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1);
  EXPECT_FLOAT_EQ(t.at(0, 2), 3);
  EXPECT_FLOAT_EQ(t.at(1, 1), 5);
  EXPECT_EQ(t.num_elements(), 6);
}

TEST(TensorTest, RandomUniformWithinBounds) {
  Rng rng(1);
  Tensor t = Tensor::RandomUniform(Shape({1000}), -0.5f, 0.5f, rng);
  for (float v : t.value()) {
    EXPECT_GE(v, -0.5f);
    EXPECT_LT(v, 0.5f);
  }
}

TEST(TensorTest, RandomNormalStddev) {
  Rng rng(2);
  Tensor t = Tensor::RandomNormal(Shape({20000}), 0.1f, rng);
  double sq = 0.0;
  for (float v : t.value()) sq += double(v) * v;
  EXPECT_NEAR(std::sqrt(sq / 20000.0), 0.1, 0.01);
}

TEST(TensorTest, XavierBound) {
  Rng rng(3);
  Tensor w = Tensor::XavierUniform(64, 64, rng);
  EXPECT_TRUE(w.requires_grad());
  const float bound = std::sqrt(6.0f / 128.0f);
  for (float v : w.value()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(TensorTest, HandleSharesStorage) {
  Tensor a = Tensor::Zeros(Shape({2}));
  Tensor b = a;  // alias
  b.mutable_value()[0] = 7.0f;
  EXPECT_FLOAT_EQ(a.at(0), 7.0f);
}

// -- Backward mechanics ----------------------------------------------------------

TEST(TensorTest, BackwardAccumulatesAcrossCalls) {
  Tensor x = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor loss1 = Mul(x, x);
  Backward(loss1);
  EXPECT_NEAR(x.grad()[0], 4.0f, 1e-5);
  Tensor loss2 = Mul(x, x);
  Backward(loss2);
  EXPECT_NEAR(x.grad()[0], 8.0f, 1e-5);  // accumulated
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(TensorTest, DiamondGraphGradient) {
  // y = (x + x) * x = 2x^2, dy/dx = 4x.
  Tensor x = Tensor::Scalar(3.0f, /*requires_grad=*/true);
  Tensor s = Add(x, x);
  Tensor y = Mul(s, x);
  Backward(y);
  EXPECT_NEAR(x.grad()[0], 12.0f, 1e-4);
}

TEST(TensorTest, NoGradThroughFrozenTensor) {
  Tensor x = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor frozen = Tensor::Scalar(5.0f, /*requires_grad=*/false);
  Tensor y = Mul(x, frozen);
  Backward(y);
  EXPECT_NEAR(x.grad()[0], 5.0f, 1e-5);
  EXPECT_TRUE(frozen.grad().empty());
}

TEST(TensorTest, ReusedSubgraphCountsTwice) {
  // y = s + s with s = x*x: dy/dx = 4x.
  Tensor x = Tensor::Scalar(2.0f, /*requires_grad=*/true);
  Tensor s = Mul(x, x);
  Tensor y = Add(s, s);
  Backward(y);
  EXPECT_NEAR(x.grad()[0], 8.0f, 1e-5);
}

TEST(TensorTest, SparseZeroGradClearsTouchedRowsOnly) {
  Tensor table =
      Tensor::FromVector(Shape({4, 2}), {1, 1, 2, 2, 3, 3, 4, 4},
                         /*requires_grad=*/true);
  Tensor g = Gather(table, {1, 3});
  Tensor loss = Sum(g);
  Backward(loss);
  EXPECT_EQ(table.touched_rows().size(), 2u);
  EXPECT_FLOAT_EQ(table.grad()[2], 1.0f);  // row 1
  EXPECT_FLOAT_EQ(table.grad()[6], 1.0f);  // row 3
  table.ZeroGrad();
  EXPECT_TRUE(table.touched_rows().empty());
  for (float v : table.grad()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(TensorTest, DebugStringMentionsShape) {
  Tensor t = Tensor::FromVector(Shape({2}), {1.0f, 2.0f});
  EXPECT_NE(t.DebugString().find("[2]"), std::string::npos);
}

}  // namespace
}  // namespace scenerec
