#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <span>
#include <utility>

#include <gtest/gtest.h>

#include "eval/evaluator.h"
#include "eval/top_n.h"
#include "graph/bipartite_graph.h"
#include "eval/metrics.h"

namespace scenerec {
namespace {

// -- RankOfPositive ----------------------------------------------------------

TEST(MetricsTest, RankCountsStrictlyGreater) {
  EXPECT_EQ(RankOfPositive(0.9f, {0.1f, 0.2f, 0.3f}).num_above, 0);
  EXPECT_EQ(RankOfPositive(0.25f, {0.1f, 0.2f, 0.3f}).num_above, 1);
  EXPECT_EQ(RankOfPositive(0.0f, {0.1f, 0.2f, 0.3f}).num_above, 3);
  EXPECT_EQ(RankOfPositive(0.25f, {0.1f, 0.2f, 0.3f}).num_tied, 0);
}

TEST(MetricsTest, TiesAreCountedSeparately) {
  const PositiveRank rank = RankOfPositive(0.5f, {0.5f, 0.5f, 0.7f, 0.1f});
  EXPECT_EQ(rank.num_above, 1);
  EXPECT_EQ(rank.num_tied, 2);
  EXPECT_EQ(rank.BestRank(), 1);
  EXPECT_EQ(rank.WorstRank(), 3);
}

TEST(MetricsTest, EmptyNegativesRankZero) {
  const PositiveRank rank = RankOfPositive(0.5f, {});
  EXPECT_EQ(rank.num_above, 0);
  EXPECT_EQ(rank.num_tied, 0);
}

TEST(MetricsTest, TiedMetricsAverageOverRandomTieOrder) {
  // Positive tied with both negatives: rank is uniform over {0, 1, 2}.
  const PositiveRank rank = RankOfPositive(0.5f, {0.5f, 0.5f});
  EXPECT_DOUBLE_EQ(HitRatioAtK(rank, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(HitRatioAtK(rank, 2), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(HitRatioAtK(rank, 3), 1.0);
  EXPECT_DOUBLE_EQ(
      NdcgAtK(rank, 10),
      (1.0 + 1.0 / std::log2(3.0) + 1.0 / std::log2(4.0)) / 3.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(rank), (1.0 + 0.5 + 1.0 / 3.0) / 3.0);
}

TEST(MetricsTest, TieAwareMetricsReduceToExactWithoutTies) {
  const PositiveRank rank = RankOfPositive(0.5f, {0.9f, 0.8f, 0.1f});
  EXPECT_DOUBLE_EQ(HitRatioAtK(rank, 10), HitRatioAtK(int64_t{2}, 10));
  EXPECT_DOUBLE_EQ(NdcgAtK(rank, 10), NdcgAtK(int64_t{2}, 10));
  EXPECT_DOUBLE_EQ(ReciprocalRank(rank), ReciprocalRank(int64_t{2}));
}

TEST(MetricsTest, TieHitRatioBelowCutoffIsZero) {
  // All tie placements land at rank >= k: no credit at all.
  PositiveRank rank;
  rank.num_above = 5;
  rank.num_tied = 3;
  EXPECT_DOUBLE_EQ(HitRatioAtK(rank, 5), 0.0);
  EXPECT_DOUBLE_EQ(NdcgAtK(rank, 5), 0.0);
}

// -- HR / NDCG ------------------------------------------------------------------

TEST(MetricsTest, HitRatioCutoff) {
  EXPECT_DOUBLE_EQ(HitRatioAtK(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(HitRatioAtK(9, 10), 1.0);
  EXPECT_DOUBLE_EQ(HitRatioAtK(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(HitRatioAtK(100, 10), 0.0);
}

TEST(MetricsTest, NdcgPositionDiscount) {
  EXPECT_DOUBLE_EQ(NdcgAtK(0, 10), 1.0);                     // 1/log2(2)
  EXPECT_DOUBLE_EQ(NdcgAtK(1, 10), 1.0 / std::log2(3.0));
  EXPECT_DOUBLE_EQ(NdcgAtK(9, 10), 1.0 / std::log2(11.0));
  EXPECT_DOUBLE_EQ(NdcgAtK(10, 10), 0.0);
  EXPECT_GT(NdcgAtK(0, 10), NdcgAtK(1, 10));
  EXPECT_GT(NdcgAtK(1, 10), NdcgAtK(9, 10));
}

// -- EvaluateRanking ---------------------------------------------------------------

TEST(EvaluatorTest, PerfectModelScoresOne) {
  // Score = 1 for the positive item, 0 otherwise.
  std::vector<EvalInstance> instances;
  for (int64_t u = 0; u < 5; ++u) {
    EvalInstance inst;
    inst.user = u;
    inst.positive_item = 100 + u;
    for (int64_t n = 0; n < 20; ++n) inst.negative_items.push_back(n);
    instances.push_back(inst);
  }
  auto score = [](int64_t, int64_t item) {
    return item >= 100 ? 1.0f : 0.0f;
  };
  RankingMetrics m = EvaluateRanking(score, instances, 10);
  EXPECT_DOUBLE_EQ(m.hr, 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);
  EXPECT_EQ(m.num_instances, 5);
}

TEST(EvaluatorTest, WorstModelScoresZero) {
  std::vector<EvalInstance> instances(1);
  instances[0].user = 0;
  instances[0].positive_item = 999;
  for (int64_t n = 0; n < 30; ++n) instances[0].negative_items.push_back(n);
  auto score = [](int64_t, int64_t item) {
    return item == 999 ? -1.0f : 1.0f;
  };
  RankingMetrics m = EvaluateRanking(score, instances, 10);
  EXPECT_DOUBLE_EQ(m.hr, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 0.0);
}

TEST(EvaluatorTest, MidRankGivesPartialCredit) {
  // Exactly 4 negatives outrank the positive -> rank 4 -> hit, discounted.
  std::vector<EvalInstance> instances(1);
  instances[0].user = 0;
  instances[0].positive_item = 50;
  for (int64_t n = 0; n < 10; ++n) instances[0].negative_items.push_back(n);
  auto score = [](int64_t, int64_t item) {
    if (item == 50) return 0.5f;
    return item < 4 ? 1.0f : 0.0f;
  };
  RankingMetrics m = EvaluateRanking(score, instances, 10);
  EXPECT_DOUBLE_EQ(m.hr, 1.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0 / std::log2(6.0));
}

TEST(EvaluatorTest, ConstantScorerIsNotPerfect) {
  // A model scoring every item identically must not look perfect: with N
  // tied negatives, HR@k is the chance a random tie order places the
  // positive in the top k, i.e. k / (N + 1).
  std::vector<EvalInstance> instances(1);
  instances[0].user = 0;
  instances[0].positive_item = 100;
  for (int64_t n = 0; n < 19; ++n) instances[0].negative_items.push_back(n);
  auto score = [](int64_t, int64_t) { return 0.5f; };
  RankingMetrics m = EvaluateRanking(score, instances, 10);
  EXPECT_DOUBLE_EQ(m.hr, 10.0 / 20.0);
  EXPECT_LT(m.ndcg, 1.0);
  EXPECT_GT(m.ndcg, 0.0);
}

TEST(EvaluatorTest, NonFiniteScoresPoisonMetrics) {
  // A diverged model emitting NaN must not rank as perfect (NaN comparisons
  // are all false, so the positive would count zero negatives above it).
  std::vector<EvalInstance> instances(1);
  instances[0] = {0, 100, {1, 2, 3}};
  auto score = [](int64_t, int64_t item) {
    return item == 100 ? std::numeric_limits<float>::quiet_NaN() : 0.0f;
  };
  RankingMetrics m = EvaluateRanking(score, instances, 10);
  EXPECT_TRUE(std::isnan(m.hr));
  EXPECT_TRUE(std::isnan(m.ndcg));
  EXPECT_TRUE(std::isnan(m.mrr));
}

TEST(EvaluatorTest, FullRankingNonFiniteScoresPoisonMetrics) {
  UserItemGraph train = UserItemGraph::Build(1, 6, {{0, 0}});
  std::vector<EvalInstance> instances(1);
  instances[0] = {0, 2, {}};
  auto score = [](int64_t, int64_t item) {
    return item == 4 ? std::numeric_limits<float>::infinity() : 0.5f;
  };
  RankingMetrics m = EvaluateFullRanking(score, train, instances, 2);
  EXPECT_TRUE(std::isnan(m.ndcg));
}

TEST(EvaluatorTest, FullRankingGivesTiedItemsExpectedCredit) {
  // 1 user, 4 items, no training interactions beyond item 0. Items 1..3 all
  // tie with the positive (item 2): rank uniform over {0, 1, 2}.
  UserItemGraph train = UserItemGraph::Build(1, 4, {{0, 0}});
  std::vector<EvalInstance> instances(1);
  instances[0] = {0, 2, {}};
  auto score = [](int64_t, int64_t) { return 1.0f; };
  RankingMetrics m = EvaluateFullRanking(score, train, instances, 1);
  EXPECT_DOUBLE_EQ(m.hr, 1.0 / 3.0);
}

TEST(EvaluatorTest, EmptyInstances) {
  RankingMetrics m =
      EvaluateRanking([](int64_t, int64_t) { return 0.0f; }, {}, 10);
  EXPECT_EQ(m.num_instances, 0);
  EXPECT_DOUBLE_EQ(m.hr, 0.0);
}

TEST(MetricsTest, ReciprocalRank) {
  EXPECT_DOUBLE_EQ(ReciprocalRank(0), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(1), 0.5);
  EXPECT_DOUBLE_EQ(ReciprocalRank(9), 0.1);
}

TEST(EvaluatorTest, MrrReported) {
  std::vector<EvalInstance> instances(1);
  instances[0] = {0, 50, {1, 2, 3}};
  // Two negatives outrank the positive -> rank 2 -> MRR 1/3.
  auto score = [](int64_t, int64_t item) {
    if (item == 50) return 0.5f;
    return item <= 2 ? 1.0f : 0.0f;
  };
  RankingMetrics m = EvaluateRanking(score, instances, 10);
  EXPECT_DOUBLE_EQ(m.mrr, 1.0 / 3.0);
}

TEST(EvaluatorTest, FullRankingMasksTrainingItems) {
  // 1 user, 6 items. Training items: {0, 1}. Held-out positive: 2.
  UserItemGraph train = UserItemGraph::Build(1, 6, {{0, 0}, {0, 1}});
  std::vector<EvalInstance> instances(1);
  instances[0] = {0, 2, {}};  // negatives ignored by the full protocol
  // Scores: training items highest (would outrank if not masked), then item
  // 3, then the positive, then 4, 5.
  auto score = [](int64_t, int64_t item) {
    switch (item) {
      case 0:
      case 1:
        return 10.0f;
      case 3:
        return 5.0f;
      case 2:
        return 4.0f;
      default:
        return 1.0f;
    }
  };
  RankingMetrics m = EvaluateFullRanking(score, train, instances, 2);
  // Only item 3 outranks the positive among non-train candidates -> rank 1.
  EXPECT_DOUBLE_EQ(m.hr, 1.0);
  EXPECT_DOUBLE_EQ(m.mrr, 0.5);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0 / std::log2(3.0));
}

TEST(EvaluatorTest, FullRankingHarderThanSampled) {
  // With many strong distractors outside the 100-negative sample, the full
  // protocol must report a lower-or-equal HR than the sampled one.
  UserItemGraph train = UserItemGraph::Build(1, 200, {{0, 0}});
  std::vector<EvalInstance> instances(1);
  EvalInstance& inst = instances[0];
  inst.user = 0;
  inst.positive_item = 199;
  for (int64_t i = 1; i <= 20; ++i) inst.negative_items.push_back(i);
  // Items 100..198 all outrank the positive but are not in the sample.
  auto score = [](int64_t, int64_t item) {
    if (item == 199) return 50.0f;
    return item >= 100 ? 100.0f : 0.0f;
  };
  RankingMetrics sampled = EvaluateRanking(score, instances, 10);
  RankingMetrics full = EvaluateFullRanking(score, train, instances, 10);
  EXPECT_DOUBLE_EQ(sampled.hr, 1.0);
  EXPECT_DOUBLE_EQ(full.hr, 0.0);  // rank 99
  EXPECT_LE(full.hr, sampled.hr);
}

TEST(EvaluatorTest, AveragesAcrossInstances) {
  // One hit at rank 0, one miss.
  std::vector<EvalInstance> instances(2);
  instances[0] = {0, 100, {1, 2}};
  instances[1] = {1, 200, {1, 2}};
  auto score = [](int64_t, int64_t item) {
    if (item == 100) return 2.0f;  // top
    if (item == 200) return -2.0f;  // below all negatives
    return 0.0f;
  };
  RankingMetrics m = EvaluateRanking(score, instances, 1);
  EXPECT_DOUBLE_EQ(m.hr, 0.5);
  EXPECT_DOUBLE_EQ(m.ndcg, 0.5);
}

// -- TopNRecommendations -------------------------------------------------------

TEST(TopNTest, ExcludesTrainingItemsAndSortsByScore) {
  UserItemGraph train = UserItemGraph::Build(1, 6, {{0, 0}, {0, 5}});
  auto score = [](int64_t, int64_t item) {
    return static_cast<float>(item);  // higher id = higher score
  };
  auto recs = TopNRecommendations(score, train, 0, 3);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].item, 4);  // 5 excluded (training item)
  EXPECT_EQ(recs[1].item, 3);
  EXPECT_EQ(recs[2].item, 2);
  EXPECT_FLOAT_EQ(recs[0].score, 4.0f);
}

TEST(TopNTest, TiesBrokenByLowerItemId) {
  UserItemGraph train = UserItemGraph::Build(1, 5, {{0, 0}});
  auto score = [](int64_t, int64_t) { return 1.0f; };
  auto recs = TopNRecommendations(score, train, 0, 2);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 1);
  EXPECT_EQ(recs[1].item, 2);
}

TEST(TopNTest, FewerCandidatesThanN) {
  UserItemGraph train =
      UserItemGraph::Build(1, 3, {{0, 0}, {0, 1}});
  auto score = [](int64_t, int64_t) { return 0.0f; };
  auto recs = TopNRecommendations(score, train, 0, 10);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].item, 2);
}

// -- Block-scoring path --------------------------------------------------------

/// Deterministic per-pair scorer shared by the block-path tests.
float HashScore(int64_t user, int64_t item) {
  return static_cast<float>(((user * 31 + item) * 2654435761u) % 1000) -
         500.0f;
}

TEST(EvaluatorTest, BlockScoreFnMatchesPerPairAdapters) {
  std::vector<EvalInstance> instances(3);
  instances[0] = {0, 7, {1, 2, 3}};
  instances[1] = {1, 9, {4, 5, 6}};
  instances[2] = {2, 11, {1, 5, 9}};
  BlockScoreFn block = [](int64_t user, std::span<const int64_t> items,
                          std::span<float> out) {
    for (size_t r = 0; r < items.size(); ++r) {
      out[r] = HashScore(user, items[r]);
    }
  };
  RankingMetrics per_pair = EvaluateRanking(ScoreFn(HashScore), instances, 2);
  RankingMetrics blocked = EvaluateRanking(block, instances, 2);
  EXPECT_DOUBLE_EQ(per_pair.hr, blocked.hr);
  EXPECT_DOUBLE_EQ(per_pair.ndcg, blocked.ndcg);
  EXPECT_DOUBLE_EQ(per_pair.mrr, blocked.mrr);
}

TEST(EvaluatorTest, FullRankingChunksBlocksAtScoreBlockSize) {
  // Catalog larger than two chunks: every dispatched block must respect
  // kScoreBlockSize, and chunking must not change the metrics.
  const int64_t num_items = 2 * kScoreBlockSize + 357;
  UserItemGraph train = UserItemGraph::Build(1, num_items, {{0, 0}});
  std::vector<EvalInstance> instances(1);
  instances[0] = {0, 42, {}};
  size_t max_block = 0;
  int64_t scored = 0;
  BlockScoreFn block = [&](int64_t user, std::span<const int64_t> items,
                           std::span<float> out) {
    max_block = std::max(max_block, items.size());
    scored += static_cast<int64_t>(items.size());
    for (size_t r = 0; r < items.size(); ++r) {
      out[r] = HashScore(user, items[r]);
    }
  };
  RankingMetrics blocked = EvaluateFullRanking(block, train, instances, 10);
  EXPECT_LE(max_block, static_cast<size_t>(kScoreBlockSize));
  EXPECT_EQ(scored, num_items - 1);  // full catalog minus the masked item 0
  RankingMetrics per_pair =
      EvaluateFullRanking(ScoreFn(HashScore), train, instances, 10);
  EXPECT_DOUBLE_EQ(per_pair.hr, blocked.hr);
  EXPECT_DOUBLE_EQ(per_pair.ndcg, blocked.ndcg);
  EXPECT_DOUBLE_EQ(per_pair.mrr, blocked.mrr);
}

TEST(EvaluatorTest, BlockScorerFromPairsForwardsEveryCandidate) {
  BlockScoreFn block = BlockScorerFromPairs(ScoreFn(HashScore));
  std::vector<int64_t> items = {5, 0, 9};
  std::vector<float> out(items.size());
  block(3, items, out);
  for (size_t r = 0; r < items.size(); ++r) {
    EXPECT_EQ(out[r], HashScore(3, items[r]));
  }
  block(3, std::span<const int64_t>(), std::span<float>());  // no-op
}

TEST(TopNTest, PartialSelectionMatchesFullSortWithTies) {
  // Catalog wider than a block, scores drawn from a tiny value set so the
  // nth_element pivot region is full of ties; the partial selection must
  // still return exactly the full-sort prefix (score desc, lower id first).
  const int64_t num_items = kScoreBlockSize + 123;
  UserItemGraph train = UserItemGraph::Build(1, num_items, {{0, 3}});
  auto score = [](int64_t, int64_t item) {
    return static_cast<float>(item % 7);
  };
  auto recs = TopNRecommendations(ScoreFn(score), train, 0, 25);

  std::vector<std::pair<float, int64_t>> expected;
  for (int64_t i = 0; i < num_items; ++i) {
    if (i == 3) continue;
    expected.push_back({score(0, i), i});
  }
  std::sort(expected.begin(), expected.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  ASSERT_EQ(recs.size(), 25u);
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].item, expected[i].second) << "rank " << i;
    EXPECT_EQ(recs[i].score, expected[i].first) << "rank " << i;
  }
}

// -- Candidate-span overload (the shared two-stage selection routine) ----------

TEST(TopNTest, CandidateSpanOverloadMatchesGraphPath) {
  // Unmasked full catalog through the span overload equals the graph
  // overload for a user with no training interactions to mask.
  UserItemGraph train = UserItemGraph::Build(2, 40, {{1, 0}});
  BlockScoreFn block = BlockScorerFromPairs(ScoreFn(HashScore));
  std::vector<int64_t> all(40);
  for (int64_t i = 0; i < 40; ++i) all[i] = i;
  const auto want = TopNRecommendations(block, train, 0, 7);
  const auto got = TopNRecommendations(block, 0, all, 7);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
  }
}

TEST(TopNTest, CandidateSpanOverloadSelectsOnlyFromCandidates) {
  BlockScoreFn block = BlockScorerFromPairs(
      ScoreFn([](int64_t, int64_t item) { return static_cast<float>(item); }));
  const std::vector<int64_t> candidates = {9, 2, 14, 5};
  const auto recs = TopNRecommendations(block, 0, candidates, 3);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].item, 14);
  EXPECT_EQ(recs[1].item, 9);
  EXPECT_EQ(recs[2].item, 5);
}

TEST(TopNTest, CandidateSpanOverloadEdgeCases) {
  BlockScoreFn block = BlockScorerFromPairs(
      ScoreFn([](int64_t, int64_t) { return 1.0f; }));
  // Empty candidate span -> empty result.
  EXPECT_TRUE(
      TopNRecommendations(block, 0, std::span<const int64_t>(), 5).empty());
  // Fewer candidates than n -> all of them, ties by lower id.
  const std::vector<int64_t> two = {8, 4};
  const auto recs = TopNRecommendations(block, 0, two, 5);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].item, 4);
  EXPECT_EQ(recs[1].item, 8);
}

// Candidate spans wider than one scoring block are chunked exactly like
// the full-catalog path.
TEST(TopNTest, CandidateSpanOverloadChunksAtScoreBlockSize) {
  const int64_t num_candidates = kScoreBlockSize + 77;
  std::vector<int64_t> candidates(static_cast<size_t>(num_candidates));
  for (int64_t i = 0; i < num_candidates; ++i) candidates[i] = i;
  size_t max_block = 0;
  BlockScoreFn block = [&](int64_t user, std::span<const int64_t> items,
                           std::span<float> out) {
    max_block = std::max(max_block, items.size());
    for (size_t r = 0; r < items.size(); ++r) {
      out[r] = HashScore(user, items[r]);
    }
  };
  const auto recs = TopNRecommendations(block, 1, candidates, 20);
  EXPECT_LE(max_block, static_cast<size_t>(kScoreBlockSize));
  ASSERT_EQ(recs.size(), 20u);
  for (size_t i = 1; i < recs.size(); ++i) {
    ASSERT_TRUE(recs[i - 1].score > recs[i].score ||
                (recs[i - 1].score == recs[i].score &&
                 recs[i - 1].item < recs[i].item));
  }
}

// Regression: retrieval backends can hand back the same item from several
// probe lists. A duplicated candidate must be scored once and occupy at
// most one rank -- previously the duplicate crowded a distinct item out of
// the Top-N.
TEST(TopNTest, CandidateSpanOverloadDedupesRepeatedCandidates) {
  std::map<int64_t, int> times_scored;
  BlockScoreFn block = [&](int64_t, std::span<const int64_t> items,
                           std::span<float> out) {
    for (size_t r = 0; r < items.size(); ++r) {
      ++times_scored[items[r]];
      out[r] = static_cast<float>(items[r]);
    }
  };
  // 14 (the top item) and 9 appear multiple times; 2 and 5 once each.
  const std::vector<int64_t> with_dups = {14, 9, 2, 14, 9, 5, 14};
  const auto got = TopNRecommendations(block, 0, with_dups, 3);
  for (const auto& [item, count] : times_scored) {
    EXPECT_EQ(count, 1) << "item " << item << " scored more than once";
  }
  // The duplicate of 14 must not shadow rank 2's distinct item.
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].item, 14);
  EXPECT_EQ(got[1].item, 9);
  EXPECT_EQ(got[2].item, 5);
  // And the result is identical to passing the deduplicated span directly.
  const std::vector<int64_t> unique = {14, 9, 2, 5};
  const auto want = TopNRecommendations(block, 0, unique, 3);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].item, want[i].item) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;
  }
}

// All-duplicate span collapses to a single recommendation, and n <= 0
// yields an empty list without invoking the scorer.
TEST(TopNTest, CandidateSpanOverloadDegenerateDupAndZeroN) {
  int calls = 0;
  BlockScoreFn block = [&](int64_t, std::span<const int64_t> items,
                           std::span<float> out) {
    ++calls;
    for (size_t r = 0; r < items.size(); ++r) out[r] = 1.0f;
  };
  const std::vector<int64_t> same = {7, 7, 7, 7};
  const auto recs = TopNRecommendations(block, 0, same, 3);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].item, 7);
  calls = 0;
  EXPECT_TRUE(TopNRecommendations(block, 0, same, 0).empty());
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace scenerec
