#ifndef SCENEREC_TESTS_TEST_UTIL_H_
#define SCENEREC_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/grad_check.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace scenerec {
namespace testing {

/// Verifies autograd gradients of `forward` against central finite
/// differences for every element of every tensor in `params`, via the
/// library's own CheckGradients (tensor/grad_check.h).
///
/// `forward` must rebuild the computation graph from the *current* values of
/// the parameter tensors and return a scalar loss. Parameters must have
/// requires_grad set.
inline void ExpectGradientsClose(const std::function<Tensor()>& forward,
                                 std::vector<Tensor> params, float eps = 2e-3f,
                                 float rtol = 4e-2f, float atol = 2e-3f) {
  auto report =
      CheckGradients(forward, std::move(params), eps, rtol, atol);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->passed) << report->ToString();
}

/// EXPECT_NEAR over all elements of two float vectors.
inline void ExpectVectorNear(const std::vector<float>& got,
                             const std::vector<float>& want,
                             float tol = 1e-5f) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], tol) << "at index " << i;
  }
}

}  // namespace testing
}  // namespace scenerec

#endif  // SCENEREC_TESTS_TEST_UTIL_H_
