// End-to-end tests of the persistent parameter store (nn/snapshot.h,
// models/factory.h OpenRecommenderFromSnapshot, models/model_handle.h):
// round-trip bitwise score identity for every factory model, crash-safety
// and corruption rejection, SnapshotStore versioning/retention, and the
// non-blocking hot-swap path under a concurrent Top-N load. The swap test
// runs under TSan and the drain tests under ASan via tools/check.sh.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "graph/bipartite_graph.h"
#include "models/factory.h"
#include "models/model_handle.h"
#include "nn/embedding.h"
#include "nn/snapshot.h"
#include "tensor/tensor.h"

namespace scenerec {
namespace {

std::string TempDir() {
  char tmpl[] = "/tmp/scenerec_snap_XXXXXX";
  EXPECT_NE(::mkdtemp(tmpl), nullptr);
  return tmpl;
}

void RemoveTree(const std::string& dir) {
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

/// Every factory-constructible model, including the parameter-free
/// baselines (their snapshots have an empty manifest).
std::vector<std::string> AllModelNames() {
  std::vector<std::string> names = Table2ModelNames();
  names.push_back("KGCN");
  names.push_back("GCMC");
  names.push_back("ItemPop");
  names.push_back("ItemRank");
  return names;
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.name = "snapshot-test";
    config.num_users = 30;
    config.num_items = 90;
    config.num_categories = 8;
    config.num_scenes = 5;
    config.sessions_per_user = 4;
    config.session_length = 5;
    auto dataset = GenerateSyntheticDataset(config, 99);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
    Rng rng(1);
    auto split = MakeLeaveOneOutSplit(dataset_, /*num_negatives=*/20, rng);
    ASSERT_TRUE(split.ok());
    split_ = std::move(split).value();
    train_graph_ = UserItemGraph::Build(dataset_.num_users, dataset_.num_items,
                                        split_.train);
    scene_graph_ = dataset_.BuildSceneGraph();
    dir_ = TempDir();
  }

  void TearDown() override { RemoveTree(dir_); }

  ModelContext Context() const {
    ModelContext context;
    context.user_item = &train_graph_;
    context.scene = &scene_graph_;
    return context;
  }

  static ModelFactoryConfig FactoryConfig() {
    ModelFactoryConfig config;
    config.embedding_dim = 16;
    config.ncf_dim = 8;
    config.max_neighbors = 8;
    return config;
  }

  std::unique_ptr<Recommender> Make(const std::string& name) {
    auto model = MakeRecommender(name, Context(), FactoryConfig());
    EXPECT_TRUE(model.ok()) << name << ": " << model.status().ToString();
    return model.ok() ? std::move(model).value() : nullptr;
  }

  std::vector<int64_t> AllItems() const {
    std::vector<int64_t> items(static_cast<size_t>(dataset_.num_items));
    for (size_t i = 0; i < items.size(); ++i) {
      items[i] = static_cast<int64_t>(i);
    }
    return items;
  }

  Dataset dataset_;
  LeaveOneOutSplit split_;
  UserItemGraph train_graph_;
  SceneGraph scene_graph_;
  std::string dir_;
};

// The tentpole contract: a model opened zero-copy from a snapshot scores
// bitwise identically to the in-RAM model the snapshot was written from —
// per-pair and block path — for EVERY factory model.
TEST_F(SnapshotTest, OpenedModelScoresBitwiseIdenticalForAllModels) {
  for (const std::string& name : AllModelNames()) {
    SCOPED_TRACE(name);
    std::unique_ptr<Recommender> writer = Make(name);
    ASSERT_NE(writer, nullptr);
    const std::string path = dir_ + "/" + name + ".srsnap";
    ASSERT_TRUE(WriteSnapshot(*writer, name, /*version=*/1, path).ok());

    auto opened = OpenRecommenderFromSnapshot(path, Context(), FactoryConfig());
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Recommender> mapped = std::move(opened).value();
    EXPECT_EQ(mapped->name(), name);

    writer->OnEvalBegin();
    mapped->OnEvalBegin();
    const std::vector<int64_t> items = AllItems();
    std::vector<float> want(items.size()), got(items.size());
    for (int64_t user : {int64_t{0}, int64_t{13}, int64_t{29}}) {
      writer->ScoreBlock(user, items, want);
      mapped->ScoreBlock(user, items, got);
      for (size_t r = 0; r < items.size(); ++r) {
        // EXPECT_EQ, not NEAR: zero-copy serving must not change numerics.
        ASSERT_EQ(got[r], want[r]) << "user " << user << " item " << items[r];
        ASSERT_EQ(mapped->Score(user, items[r]), want[r]);
      }
    }
  }
}

// Zero-copy means zero-copy: every parameter of an opened model views the
// mapping (borrowed) at a kSnapshotAlignment-aligned address, and no
// parameter accepts gradients.
TEST_F(SnapshotTest, OpenedModelParametersAreBorrowedAndAligned) {
  std::unique_ptr<Recommender> writer = Make("BPR-MF");
  const std::string path = dir_ + "/a.srsnap";
  ASSERT_TRUE(WriteSnapshot(*writer, "BPR-MF", 1, path).ok());
  auto opened = OpenRecommenderFromSnapshot(path, Context(), FactoryConfig());
  ASSERT_TRUE(opened.ok());
  const std::vector<Tensor> params = opened.value()->Parameters();
  ASSERT_FALSE(params.empty());
  for (const Tensor& p : params) {
    EXPECT_TRUE(p.borrowed());
    EXPECT_FALSE(p.requires_grad());
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p.value().data()) %
                  static_cast<uintptr_t>(kSnapshotAlignment),
              0u);
  }
}

TEST_F(SnapshotTest, ManifestRecordsTagVersionAndShapes) {
  Rng rng(5);
  Embedding emb(12, 6, rng);
  const std::string path = dir_ + "/emb.srsnap";
  ASSERT_TRUE(WriteSnapshot(emb, "emb", /*version=*/7, path).ok());
  auto snapshot = Snapshot::Open(path);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value()->tag(), "emb");
  EXPECT_EQ(snapshot.value()->version(), 7u);
  ASSERT_EQ(snapshot.value()->tensors().size(), 1u);
  EXPECT_EQ(snapshot.value()->tensors()[0].shape, Shape({12, 6}));
  EXPECT_EQ(snapshot.value()->tensors()[0].offset % kSnapshotAlignment, 0);
}

// A View pins the mapping: the snapshot handle can be dropped while the
// tensor lives, and reads through the tensor stay valid. Under ASan a
// premature munmap here is a hard error, not a flaky read.
TEST_F(SnapshotTest, ViewPinsMappingAfterSnapshotHandleDropped) {
  Rng rng(6);
  Embedding emb(10, 4, rng);
  const std::string path = dir_ + "/pin.srsnap";
  ASSERT_TRUE(WriteSnapshot(emb, "emb", 1, path).ok());
  Tensor view;
  float expected = 0.0f;
  {
    auto snapshot = Snapshot::Open(path);
    ASSERT_TRUE(snapshot.ok());
    view = snapshot.value()->View(0);
    expected = view.value()[0];
  }  // snapshot handle gone; the view's buffer owner keeps the file mapped
  EXPECT_TRUE(view.borrowed());
  EXPECT_EQ(view.value()[0], expected);
  EXPECT_EQ(view.value()[0], emb.table().value()[0]);
}

// Drain-after-swap: destroying an opened model while one of its parameter
// tensors is still held must keep the mapping alive until that last reader
// drops (the ModelHandle retirement contract). ASan gate material.
TEST_F(SnapshotTest, MappingSurvivesModelDestructionUntilLastReaderDrains) {
  std::unique_ptr<Recommender> writer = Make("BPR-MF");
  const std::string path = dir_ + "/drain.srsnap";
  ASSERT_TRUE(WriteSnapshot(*writer, "BPR-MF", 1, path).ok());
  auto opened = OpenRecommenderFromSnapshot(path, Context(), FactoryConfig());
  ASSERT_TRUE(opened.ok());
  std::shared_ptr<Recommender> mapped = std::move(opened).value();
  const Tensor reader = mapped->Parameters()[0];
  const float expected = reader.value()[0];
  mapped.reset();  // the model is gone; `reader` must still be readable
  EXPECT_EQ(reader.value()[0], expected);
}

TEST_F(SnapshotTest, MappedEmbeddingBackendServesLookups) {
  Rng rng(8);
  Embedding trained(14, 4, rng);
  const std::string path = dir_ + "/table.srsnap";
  ASSERT_TRUE(WriteSnapshot(trained, "emb", 1, path).ok());
  auto snapshot = Snapshot::Open(path);
  ASSERT_TRUE(snapshot.ok());
  Embedding served(
      std::make_shared<MappedParamTable>(snapshot.value()->View(0)));
  EXPECT_FALSE(served.backend()->trainable());
  EXPECT_EQ(served.vocab(), 14);
  EXPECT_EQ(served.dim(), 4);
  for (int64_t id : {int64_t{0}, int64_t{13}}) {
    const Tensor got = served.Lookup(id);
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_EQ(got.at(c), trained.table().at(id, c));
    }
  }
}

// -- Corruption and error paths -----------------------------------------

TEST_F(SnapshotTest, BadMagicRejected) {
  const std::string path = dir_ + "/garbage";
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a snapshot but long enough to have a header",
             f);
  std::fclose(f);
  auto snapshot = Snapshot::Open(path);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(snapshot.status().message().find("SRSNAP1"), std::string::npos);
}

TEST_F(SnapshotTest, MissingFileRejected) {
  auto snapshot = Snapshot::Open(dir_ + "/no_such_file.srsnap");
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kIOError);
}

TEST_F(SnapshotTest, TruncatedHeaderRejected) {
  Rng rng(9);
  Embedding emb(10, 4, rng);
  const std::string path = dir_ + "/trunc_header.srsnap";
  ASSERT_TRUE(WriteSnapshot(emb, "emb", 1, path).ok());
  ASSERT_EQ(::truncate(path.c_str(), 20), 0);  // mid-manifest
  auto snapshot = Snapshot::Open(path);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_NE(snapshot.status().message().find(path), std::string::npos);
}

// A file cut inside a data page must be rejected AT OPEN with an error
// naming the tensor and path — never discovered later as a SIGBUS while
// scoring against the mapping.
TEST_F(SnapshotTest, TruncatedDataPageRejectedNamingTensorAndPath) {
  Rng rng(10);
  Embedding emb(100, 16, rng);
  const std::string path = dir_ + "/trunc_data.srsnap";
  ASSERT_TRUE(WriteSnapshot(emb, "emb", 1, path).ok());
  int64_t end = 0;
  {
    auto intact = Snapshot::Open(path);
    ASSERT_TRUE(intact.ok());
    end = intact.value()->tensors()[0].offset +
          intact.value()->tensors()[0].num_floats * 4;
  }  // unmap before truncating
  ASSERT_EQ(::truncate(path.c_str(), end / 2), 0);
  auto snapshot = Snapshot::Open(path);
  ASSERT_FALSE(snapshot.ok());
  EXPECT_EQ(snapshot.status().code(), StatusCode::kIOError);
  EXPECT_NE(snapshot.status().message().find("tensor 0"), std::string::npos);
  EXPECT_NE(snapshot.status().message().find(path), std::string::npos);
}

TEST_F(SnapshotTest, BindRejectsShapeMismatchNamingTensorAndPath) {
  Rng rng(11);
  Embedding small(10, 4, rng);
  Embedding big(10, 8, rng);
  const std::string path = dir_ + "/shape.srsnap";
  ASSERT_TRUE(WriteSnapshot(small, "emb", 1, path).ok());
  auto snapshot = Snapshot::Open(path);
  ASSERT_TRUE(snapshot.ok());
  Status s = BindSnapshot(big, snapshot.value());
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("tensor 0"), std::string::npos);
  EXPECT_NE(s.message().find(path), std::string::npos);
  // All-or-nothing: the model must not be left half-bound.
  EXPECT_FALSE(big.table().borrowed());
}

TEST_F(SnapshotTest, OpenFromSnapshotRejectsUnknownTag) {
  Rng rng(12);
  Embedding emb(10, 4, rng);
  const std::string path = dir_ + "/unknown.srsnap";
  ASSERT_TRUE(WriteSnapshot(emb, "NotAModel", 1, path).ok());
  auto opened = OpenRecommenderFromSnapshot(path, Context(), FactoryConfig());
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

// Atomicity: a failed write must leave no file under the final name (and a
// successful write replaces the old version in one rename).
TEST_F(SnapshotTest, FailedWriteNeverObservableUnderFinalName) {
  Rng rng(13);
  Embedding emb(10, 4, rng);
  const std::string path = dir_ + "/no_dir/deep/x.srsnap";
  EXPECT_FALSE(WriteSnapshot(emb, "emb", 1, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
}

// -- SnapshotStore ------------------------------------------------------

TEST_F(SnapshotTest, StoreWritesMonotonicVersionsAndPrunes) {
  Rng rng(14);
  Embedding emb(10, 4, rng);
  SnapshotStore store(dir_ + "/store", /*retain=*/2);
  for (uint64_t want = 1; want <= 4; ++want) {
    auto version = store.Write(emb, "emb");
    ASSERT_TRUE(version.ok());
    EXPECT_EQ(version.value(), want);
  }
  // Only the newest two survive, and Latest points at the newest.
  EXPECT_FALSE(std::filesystem::exists(store.PathFor(1)));
  EXPECT_FALSE(std::filesystem::exists(store.PathFor(2)));
  EXPECT_TRUE(std::filesystem::exists(store.PathFor(3)));
  EXPECT_TRUE(std::filesystem::exists(store.PathFor(4)));
  auto latest = store.LatestPath();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest.value(), store.PathFor(4));
}

// A prune that cannot delete an old snapshot must not fail the write; it
// bumps snapshot/prune_failures and leaves the obstruction in place. The
// obstruction here is a non-empty directory wearing a snapshot filename,
// which std::filesystem::remove refuses to delete.
TEST_F(SnapshotTest, StorePruneFailureCountsAndKeepsWriting) {
  Rng rng(16);
  Embedding emb(10, 4, rng);
  SnapshotStore store(dir_ + "/prunefail", /*retain=*/1);
  auto v1 = store.Write(emb, "emb");
  ASSERT_TRUE(v1.ok());
  const std::string victim = store.PathFor(v1.value());
  telemetry::Telemetry::SetEnabled(true);
  std::error_code ec;
  std::filesystem::remove(victim, ec);
  ASSERT_FALSE(ec);
  ASSERT_TRUE(std::filesystem::create_directory(victim, ec));
  { std::ofstream blocker(victim + "/blocker"); blocker << "x"; }

  const uint64_t before =
      telemetry::Telemetry::Snapshot().CounterValue("snapshot/prune_failures");
  auto v2 = store.Write(emb, "emb");
  ASSERT_TRUE(v2.ok());  // the new snapshot still lands
  EXPECT_TRUE(std::filesystem::exists(store.PathFor(v2.value())));
  EXPECT_TRUE(std::filesystem::exists(victim));  // obstruction survives
  const uint64_t after =
      telemetry::Telemetry::Snapshot().CounterValue("snapshot/prune_failures");
  EXPECT_EQ(after, before + 1);

  // Clearing the obstruction lets the next write prune it normally.
  std::filesystem::remove_all(victim, ec);
  auto v3 = store.Write(emb, "emb");
  ASSERT_TRUE(v3.ok());
  EXPECT_FALSE(std::filesystem::exists(store.PathFor(v2.value())));
  EXPECT_EQ(
      telemetry::Telemetry::Snapshot().CounterValue("snapshot/prune_failures"),
      after);
  telemetry::Telemetry::SetEnabled(false);
}

// Version ids survive process restarts: a new store over the same directory
// continues after the highest existing version, even when older versions
// were pruned.
TEST_F(SnapshotTest, StoreResumesVersioningAcrossInstances) {
  Rng rng(15);
  Embedding emb(10, 4, rng);
  {
    SnapshotStore store(dir_ + "/resume", /*retain=*/1);
    ASSERT_TRUE(store.Write(emb, "emb").ok());
    ASSERT_TRUE(store.Write(emb, "emb").ok());
  }
  SnapshotStore fresh(dir_ + "/resume", /*retain=*/1);
  auto version = fresh.Write(emb, "emb");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version.value(), 3u);
}

TEST_F(SnapshotTest, EmptyStoreHasNoLatest) {
  SnapshotStore store(dir_ + "/empty");
  auto latest = store.LatestPath();
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
}

// -- Hot swap -----------------------------------------------------------

// The non-blocking swap contract under real concurrency (TSan gate): worker
// lanes run Top-N requests through the handle while the main lane publishes
// a snapshot-bound replacement mid-stream. Every request must return one
// model's results in full — either version, never a mixture — and the swap
// must not wait for the readers.
TEST_F(SnapshotTest, HotSwapUnderConcurrentTopNServesConsistentResults) {
  std::unique_ptr<Recommender> v1 = Make("BPR-MF");
  const std::string path = dir_ + "/swap.srsnap";
  // v2 = different parameters (other seed), served from a snapshot.
  ModelFactoryConfig v2_config = FactoryConfig();
  v2_config.seed = 1234;
  auto v2_writer = MakeRecommender("BPR-MF", Context(), v2_config);
  ASSERT_TRUE(v2_writer.ok());
  ASSERT_TRUE(WriteSnapshot(*v2_writer.value(), "BPR-MF", 2, path).ok());
  auto opened = OpenRecommenderFromSnapshot(path, Context(), v2_config);
  ASSERT_TRUE(opened.ok());
  std::shared_ptr<Recommender> v2 = std::move(opened).value();

  const int64_t n = 10;
  const int64_t user = 3;
  v1->OnEvalBegin();
  v2->OnEvalBegin();
  const auto expect_v1 =
      TopNRecommendations(v1->BlockScorer(), train_graph_, user, n);
  const auto expect_v2 =
      TopNRecommendations(v2->BlockScorer(), train_graph_, user, n);
  ASSERT_FALSE(expect_v1.empty());
  ASSERT_FALSE(expect_v2.empty());
  // The two versions must actually disagree for the test to mean anything.
  bool differ = false;
  for (size_t i = 0; i < expect_v1.size() && !differ; ++i) {
    differ = expect_v1[i].item != expect_v2[i].item ||
             expect_v1[i].score != expect_v2[i].score;
  }
  ASSERT_TRUE(differ);

  ModelHandle handle(std::shared_ptr<Recommender>(std::move(v1)));
  constexpr int64_t kRequests = 64;
  std::atomic<int64_t> matched_v1{0}, matched_v2{0}, torn{0};
  ThreadPool pool(4);
  pool.ParallelFor(kRequests, /*grain=*/1, [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      if (r == kRequests / 2) {
        handle.Publish(v2);  // hot swap mid-stream, no pause for readers
        continue;
      }
      const auto got = TopNFromHandle(handle, train_graph_, user, n);
      const auto same = [&](const std::vector<Recommendation>& want) {
        if (got.size() != want.size()) return false;
        for (size_t i = 0; i < got.size(); ++i) {
          if (got[i].item != want[i].item || got[i].score != want[i].score) {
            return false;
          }
        }
        return true;
      };
      if (same(expect_v1)) {
        matched_v1.fetch_add(1);
      } else if (same(expect_v2)) {
        matched_v2.fetch_add(1);
      } else {
        torn.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(matched_v1.load() + matched_v2.load(), kRequests - 1);
  // After the swap the handle serves v2 — the next request sees the new
  // version immediately.
  const auto after = TopNFromHandle(handle, train_graph_, user, n);
  ASSERT_EQ(after.size(), expect_v2.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].item, expect_v2[i].item);
    EXPECT_EQ(after[i].score, expect_v2[i].score);
  }
  EXPECT_EQ(handle.swap_count(), 1u);
}

}  // namespace
}  // namespace scenerec
