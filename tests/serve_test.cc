// Tests for the serving daemon (src/serve/server.h, docs/serving.md#daemon)
// and its MPMC admission queue (src/common/mpmc_queue.h): queue semantics
// under concurrency and shutdown, bitwise identity of daemon results
// against the library serving paths — with coalescing on and off, from
// concurrent clients — hot swap under live traffic (full-catalog and
// retrieval mode, where model and index must swap as one unit), and clean
// stop semantics. tools/check.sh runs this binary under TSan and ASan.

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mpmc_queue.h"
#include "common/rng.h"
#include "common/socket_server.h"
#include "common/telemetry.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "eval/top_n.h"
#include "graph/bipartite_graph.h"
#include "models/factory.h"
#include "retrieval/index_builder.h"
#include "retrieval/two_stage.h"
#include "serve/observe.h"
#include "serve/server.h"

namespace scenerec {
namespace {

// -- MpmcQueue -----------------------------------------------------------------

TEST(MpmcQueueTest, FifoOrderAndSize) {
  MpmcQueue<int> q(8);
  EXPECT_EQ(q.capacity(), 8u);
  EXPECT_EQ(q.size(), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 5u);
  int v = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(MpmcQueueTest, CloseRejectsPushesAndDrainsAcceptedItems) {
  MpmcQueue<int> q(8);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(3));
  // Accepted work survives the close; only then does Pop report shutdown.
  int v = -1;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(q.Pop(&v));
  q.Close();  // idempotent
}

TEST(MpmcQueueTest, PopUntilTimesOutOnEmptyQueue) {
  MpmcQueue<int> q(2);
  int v = -1;
  EXPECT_FALSE(q.PopUntil(&v, std::chrono::steady_clock::now() +
                                  std::chrono::milliseconds(5)));
  ASSERT_TRUE(q.Push(7));
  EXPECT_TRUE(q.PopUntil(&v, std::chrono::steady_clock::now()));
  EXPECT_EQ(v, 7);
}

TEST(MpmcQueueTest, BackpressureBlocksProducerUntilConsumerPops) {
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.Push(2));
    second_pushed.store(true);
  });
  // The queue is full: the producer must still be blocked in Push.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  int v = -1;
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  ASSERT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
}

TEST(MpmcQueueTest, ConcurrentProducersAndConsumersDeliverEachItemOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  MpmcQueue<int> q(16);
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s.store(0);
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int v = -1;
      while (q.Pop(&v)) seen[static_cast<size_t>(v)].fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  q.Close();
  for (std::thread& t : consumers) t.join();
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "item " << i;
  }
}

// -- Serving daemon ------------------------------------------------------------

constexpr int64_t kTopN = 8;
constexpr int64_t kCandidates = 16;

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.name = "serve-test";
    config.num_users = 40;
    config.num_items = 160;
    config.num_categories = 6;
    config.num_scenes = 5;
    config.sessions_per_user = 4;
    config.session_length = 5;
    auto dataset = GenerateSyntheticDataset(config, 77);
    ASSERT_TRUE(dataset.ok());
    dataset_ = std::move(dataset).value();
    Rng rng(3);
    auto split = MakeLeaveOneOutSplit(dataset_, /*num_negatives=*/10, rng);
    ASSERT_TRUE(split.ok());
    split_ = std::move(split).value();
    graph_ = UserItemGraph::Build(dataset_.num_users, dataset_.num_items,
                                  split_.train);
    scene_graph_ = dataset_.BuildSceneGraph();
  }

  /// Distinct seeds give genuinely different parameters — a hot swap
  /// between them is observable in every user's Top-N list.
  std::shared_ptr<Recommender> MakeModel(const std::string& name,
                                         uint64_t seed) {
    ModelContext context;
    context.user_item = &graph_;
    context.scene = &scene_graph_;
    ModelFactoryConfig config;
    config.embedding_dim = 16;
    config.max_neighbors = 8;
    config.seed = seed;
    auto model = MakeRecommender(name, context, config);
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    if (!model.ok()) return nullptr;
    std::shared_ptr<Recommender> shared = std::move(model).value();
    shared->OnEvalBegin();
    return shared;
  }

  std::vector<std::vector<Recommendation>> FullCatalogExpected(
      Recommender& model) const {
    std::vector<std::vector<Recommendation>> expected(
        static_cast<size_t>(dataset_.num_users));
    for (int64_t u = 0; u < dataset_.num_users; ++u) {
      expected[static_cast<size_t>(u)] =
          TopNRecommendations(model.BlockScorer(), graph_, u, kTopN);
    }
    return expected;
  }

  std::vector<std::vector<Recommendation>> RetrievalExpected(
      Recommender& model, const ItemIndex& index) const {
    std::vector<std::vector<Recommendation>> expected(
        static_cast<size_t>(dataset_.num_users));
    for (int64_t u = 0; u < dataset_.num_users; ++u) {
      expected[static_cast<size_t>(u)] = TwoStageTopN(
          model, index, graph_, u, kTopN, kCandidates);
    }
    return expected;
  }

  static void ExpectSameList(const std::vector<Recommendation>& got,
                             const std::vector<Recommendation>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].item, want[i].item) << "rank " << i;
      ASSERT_EQ(got[i].score, want[i].score) << "rank " << i;
    }
  }

  /// Drives every user `rounds` times from `threads` concurrent clients,
  /// checking each result bitwise against `expected`.
  void Drive(serve::Server& server, int threads, int rounds,
             const std::vector<std::vector<Recommendation>>& expected) {
    const int64_t total = dataset_.num_users * rounds;
    std::atomic<int64_t> next{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < threads; ++t) {
      clients.emplace_back([&] {
        std::vector<Recommendation> got;
        for (;;) {
          const int64_t seq = next.fetch_add(1);
          if (seq >= total) break;
          const int64_t user = seq % dataset_.num_users;
          ASSERT_TRUE(server.TopN(user, &got));
          ExpectSameList(got, expected[static_cast<size_t>(user)]);
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }

  static serve::ServerConfig Config(int64_t max_batch,
                                    int64_t num_candidates) {
    serve::ServerConfig config;
    config.top_n = kTopN;
    config.max_batch = max_batch;
    config.max_delay_us = 100;
    config.queue_capacity = 32;
    config.num_candidates = num_candidates;
    return config;
  }

  Dataset dataset_;
  LeaveOneOutSplit split_;
  UserItemGraph graph_;
  SceneGraph scene_graph_;
};

// Coalescing must be invisible in results: per-request (max_batch=1) and
// batched admission, driven by concurrent clients, both return exactly the
// library path's lists for every user. Covers the cross-user ScoreRows
// flattening (SceneRec) and the plain per-user path (BPR-MF).
TEST_F(ServeTest, FullCatalogBitwiseMatchesLibraryForBatchedAndSequential) {
  for (const char* name : {"BPR-MF", "SceneRec"}) {
    SCOPED_TRACE(name);
    std::shared_ptr<Recommender> model = MakeModel(name, 11);
    ASSERT_NE(model, nullptr);
    const auto expected = FullCatalogExpected(*model);
    for (int64_t max_batch : {int64_t{1}, int64_t{8}}) {
      SCOPED_TRACE("max_batch=" + std::to_string(max_batch));
      serve::Server server(Config(max_batch, 0), graph_);
      server.Publish(model);
      server.Start();
      Drive(server, /*threads=*/4, /*rounds=*/3, expected);
      server.Stop();
      const serve::Server::Stats stats = server.stats();
      EXPECT_EQ(stats.requests, static_cast<uint64_t>(
          dataset_.num_users * 3));
      EXPECT_EQ(stats.rejected, 0u);
      if (max_batch == 1) {
        EXPECT_EQ(stats.max_batch, 1u);
      } else {
        EXPECT_LE(stats.max_batch, 8u);
      }
    }
  }
}

// Retrieval mode: one MultiSearch sweep per coalesced batch must still
// produce TwoStageTopN's exact lists.
TEST_F(ServeTest, RetrievalModeBitwiseMatchesTwoStageTopN) {
  std::shared_ptr<Recommender> model = MakeModel("BPR-MF", 12);
  ASSERT_NE(model, nullptr);
  auto index_or = IndexBuilder().Build(*model);
  ASSERT_TRUE(index_or.ok());
  std::shared_ptr<const ItemIndex> index = std::move(index_or).value();
  const auto expected = RetrievalExpected(*model, *index);
  for (int64_t max_batch : {int64_t{1}, int64_t{8}}) {
    SCOPED_TRACE("max_batch=" + std::to_string(max_batch));
    serve::Server server(Config(max_batch, kCandidates), graph_);
    server.Publish(model, index);
    server.Start();
    Drive(server, /*threads=*/4, /*rounds=*/3, expected);
    server.Stop();
  }
}

// Hot swap under live traffic: every in-flight result must be ENTIRELY
// version A or ENTIRELY version B (each request's list equals one of the
// two library lists bit-for-bit — a torn batch would match neither), and
// once the publish has happened requests eventually settle on B.
TEST_F(ServeTest, HotSwapUnderLiveTrafficNeverTearsResults) {
  std::shared_ptr<Recommender> model_a = MakeModel("BPR-MF", 21);
  std::shared_ptr<Recommender> model_b = MakeModel("BPR-MF", 22);
  ASSERT_NE(model_a, nullptr);
  ASSERT_NE(model_b, nullptr);
  const auto expected_a = FullCatalogExpected(*model_a);
  const auto expected_b = FullCatalogExpected(*model_b);
  // The swap must be observable, or the test is vacuous.
  bool differs = false;
  for (int64_t u = 0; u < dataset_.num_users && !differs; ++u) {
    const auto& a = expected_a[static_cast<size_t>(u)];
    const auto& b = expected_b[static_cast<size_t>(u)];
    if (a.size() != b.size()) { differs = true; break; }
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].item != b[i].item || a[i].score != b[i].score) {
        differs = true;
        break;
      }
    }
  }
  ASSERT_TRUE(differs);

  auto matches = [](const std::vector<Recommendation>& got,
                    const std::vector<Recommendation>& want) {
    if (got.size() != want.size()) return false;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].item != want[i].item || got[i].score != want[i].score) {
        return false;
      }
    }
    return true;
  };

  serve::Server server(Config(/*max_batch=*/4, 0), graph_);
  server.Publish(model_a);
  server.Start();

  std::atomic<int64_t> next{0};
  std::atomic<int64_t> version_a_hits{0};
  std::atomic<int64_t> version_b_hits{0};
  const int64_t total = dataset_.num_users * 10;
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      std::vector<Recommendation> got;
      for (;;) {
        const int64_t seq = next.fetch_add(1);
        if (seq >= total) break;
        const int64_t user = seq % dataset_.num_users;
        ASSERT_TRUE(server.TopN(user, &got));
        const bool is_a = matches(got, expected_a[static_cast<size_t>(user)]);
        const bool is_b = matches(got, expected_b[static_cast<size_t>(user)]);
        ASSERT_TRUE(is_a || is_b) << "torn result for user " << user;
        (is_a ? version_a_hits : version_b_hits).fetch_add(1);
      }
    });
  }
  // Swap mid-traffic, from yet another thread (Publish is thread-safe).
  std::thread publisher([&] {
    while (next.load() < total / 4) std::this_thread::yield();
    server.Publish(model_b);
  });
  publisher.join();
  for (std::thread& t : clients) t.join();

  // After the swap has drained, serving is pure B.
  std::vector<Recommendation> got;
  for (int64_t u = 0; u < dataset_.num_users; ++u) {
    ASSERT_TRUE(server.TopN(u, &got));
    ExpectSameList(got, expected_b[static_cast<size_t>(u)]);
  }
  server.Stop();
  EXPECT_EQ(server.stats().publishes, 2u);
  EXPECT_GT(version_b_hits.load(), 0);
  EXPECT_EQ(version_a_hits.load() + version_b_hits.load(), total);
}

// Retrieval-mode swap: model and index swap as ONE unit. Pairing model B
// with index A (or vice versa) would produce lists matching neither
// library path; every result must be pure A or pure B here too.
TEST_F(ServeTest, RetrievalHotSwapKeepsModelAndIndexPaired) {
  std::shared_ptr<Recommender> model_a = MakeModel("BPR-MF", 31);
  std::shared_ptr<Recommender> model_b = MakeModel("BPR-MF", 32);
  ASSERT_NE(model_a, nullptr);
  ASSERT_NE(model_b, nullptr);
  auto index_a_or = IndexBuilder().Build(*model_a);
  auto index_b_or = IndexBuilder().Build(*model_b);
  ASSERT_TRUE(index_a_or.ok());
  ASSERT_TRUE(index_b_or.ok());
  std::shared_ptr<const ItemIndex> index_a = std::move(index_a_or).value();
  std::shared_ptr<const ItemIndex> index_b = std::move(index_b_or).value();
  const auto expected_a = RetrievalExpected(*model_a, *index_a);
  const auto expected_b = RetrievalExpected(*model_b, *index_b);

  auto matches = [](const std::vector<Recommendation>& got,
                    const std::vector<Recommendation>& want) {
    if (got.size() != want.size()) return false;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].item != want[i].item || got[i].score != want[i].score) {
        return false;
      }
    }
    return true;
  };

  serve::Server server(Config(/*max_batch=*/4, kCandidates), graph_);
  server.Publish(model_a, index_a);
  server.Start();
  std::atomic<int64_t> next{0};
  const int64_t total = dataset_.num_users * 8;
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      std::vector<Recommendation> got;
      for (;;) {
        const int64_t seq = next.fetch_add(1);
        if (seq >= total) break;
        const int64_t user = seq % dataset_.num_users;
        ASSERT_TRUE(server.TopN(user, &got));
        ASSERT_TRUE(matches(got, expected_a[static_cast<size_t>(user)]) ||
                    matches(got, expected_b[static_cast<size_t>(user)]))
            << "torn model/index pairing for user " << user;
      }
    });
  }
  std::thread publisher([&] {
    while (next.load() < total / 4) std::this_thread::yield();
    server.Publish(model_b, index_b);
  });
  publisher.join();
  for (std::thread& t : clients) t.join();
  std::vector<Recommendation> got;
  for (int64_t u = 0; u < dataset_.num_users; ++u) {
    ASSERT_TRUE(server.TopN(u, &got));
    ExpectSameList(got, expected_b[static_cast<size_t>(u)]);
  }
  server.Stop();
}

TEST_F(ServeTest, StopDrainsAcceptedRequestsThenRejects) {
  std::shared_ptr<Recommender> model = MakeModel("BPR-MF", 41);
  ASSERT_NE(model, nullptr);
  const auto expected = FullCatalogExpected(*model);
  serve::Server server(Config(/*max_batch=*/4, 0), graph_);
  server.Publish(model);
  server.Start();
  Drive(server, /*threads=*/2, /*rounds=*/1, expected);
  server.Stop();
  // Stop is idempotent and post-stop requests are rejected with *out
  // untouched.
  server.Stop();
  std::vector<Recommendation> got = {{123, 4.5f}};
  EXPECT_FALSE(server.TopN(0, &got));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].item, 123);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST_F(ServeTest, ServesEmptyListsBeforeFirstPublishAndForTopNZero) {
  // No model published: the daemon answers (empty), it does not crash or
  // hang.
  {
    serve::Server server(Config(/*max_batch=*/2, 0), graph_);
    server.Start();
    std::vector<Recommendation> got = {{1, 1.0f}};
    ASSERT_TRUE(server.TopN(0, &got));
    EXPECT_TRUE(got.empty());
    server.Stop();
  }
  // top_n = 0 is a valid config: every request yields an empty list.
  {
    std::shared_ptr<Recommender> model = MakeModel("BPR-MF", 51);
    ASSERT_NE(model, nullptr);
    serve::ServerConfig config = Config(/*max_batch=*/2, 0);
    config.top_n = 0;
    serve::Server server(config, graph_);
    server.Publish(model);
    server.Start();
    std::vector<Recommendation> got = {{1, 1.0f}};
    ASSERT_TRUE(server.TopN(3, &got));
    EXPECT_TRUE(got.empty());
    server.Stop();
  }
}

// -- Observability plane -------------------------------------------------------

namespace {
uint64_t RequestHistCount() {
  telemetry::TelemetrySnapshot snapshot = telemetry::Telemetry::Snapshot();
  const telemetry::HistogramSample* hist = snapshot.FindHistogram("serve/request_ns");
  return hist == nullptr ? 0 : hist->data.count;
}
}  // namespace

// Regression test for the rejected-request accounting fix: a submission
// rejected at admission (queue closed) must not record into
// `serve/request_ns` — only requests that actually got an answer count
// toward latency percentiles and the SLO.
TEST_F(ServeTest, RejectedRequestsDoNotRecordLatency) {
  telemetry::Telemetry::Reset();
  telemetry::Telemetry::SetEnabled(true);
  std::shared_ptr<Recommender> model = MakeModel("BPR-MF", 61);
  ASSERT_NE(model, nullptr);
  serve::Server server(Config(/*max_batch=*/4, 0), graph_);
  server.Publish(model);
  server.Start();
  std::vector<Recommendation> got;
  for (int64_t u = 0; u < 5; ++u) ASSERT_TRUE(server.TopN(u, &got));
  const uint64_t accepted = RequestHistCount();
  EXPECT_EQ(accepted, 5u);
  server.Stop();
  EXPECT_FALSE(server.TopN(0, &got));
  EXPECT_FALSE(server.TopN(1, &got));
  EXPECT_EQ(server.stats().rejected, 2u);
  EXPECT_EQ(RequestHistCount(), accepted);
  telemetry::Telemetry::SetEnabled(false);
  telemetry::Telemetry::Reset();
}

// Queue-wait / exec breakdown: both histograms record once per request and
// the ticket carries a consistent view (id unique, wait + exec <= total
// round trip implied by both being populated).
TEST_F(ServeTest, RequestTicketsCarryBreakdownAndUniqueIds) {
  telemetry::Telemetry::Reset();
  telemetry::Telemetry::SetEnabled(true);
  std::shared_ptr<Recommender> model = MakeModel("BPR-MF", 62);
  ASSERT_NE(model, nullptr);
  serve::Server server(Config(/*max_batch=*/4, 0), graph_);
  server.Publish(model);
  server.Start();
  std::vector<Recommendation> got;
  std::set<uint64_t> ids;
  for (int64_t u = 0; u < 8; ++u) {
    serve::Server::RequestTicket ticket;
    ASSERT_TRUE(server.TopN(u, &got, &ticket));
    EXPECT_GT(ticket.id, 0u);
    EXPECT_GT(ticket.batch_seq, 0u);
    EXPECT_GT(ticket.exec_ns, 0u);
    ids.insert(ticket.id);
  }
  EXPECT_EQ(ids.size(), 8u);
  telemetry::TelemetrySnapshot snapshot = telemetry::Telemetry::Snapshot();
  const telemetry::HistogramSample* wait = snapshot.FindHistogram("serve/queue_wait_ns");
  const telemetry::HistogramSample* exec = snapshot.FindHistogram("serve/exec_ns");
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(wait->data.count, 8u);
  EXPECT_EQ(exec->data.count, 8u);
  server.Stop();
  telemetry::Telemetry::SetEnabled(false);
  telemetry::Telemetry::Reset();
}

// The stats endpoint answers every verb — in process and over the real
// socket — while results stay bitwise identical to the library path.
TEST_F(ServeTest, StatsEndpointServesVerbsWithBitwiseIdenticalResults) {
  telemetry::Telemetry::Reset();
  telemetry::Telemetry::SetEnabled(true);
  std::shared_ptr<Recommender> model = MakeModel("BPR-MF", 63);
  ASSERT_NE(model, nullptr);
  const auto expected = FullCatalogExpected(*model);
  serve::ServerConfig config = Config(/*max_batch=*/4, 0);
  config.stats_socket = ::testing::TempDir() + "serve_test_stats_" +
                        std::to_string(getpid()) + ".sock";
  config.stats_window_ms = 50;
  serve::Server server(config, graph_);
  server.Publish(model);
  server.Start();
  ASSERT_NE(server.stats_endpoint(), nullptr);
  Drive(server, /*threads=*/4, /*rounds=*/2, expected);

  auto stats = server.stats_endpoint()->Handle("stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats.value().find("\"windows\""), std::string::npos);
  EXPECT_NE(stats.value().find("\"slo\""), std::string::npos);
  auto healthz = server.stats_endpoint()->Handle("healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_NE(healthz.value().find("\"ok\": true"), std::string::npos);
  auto metrics = server.stats_endpoint()->Handle("metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().find("scenerec_serve_daemon_requests"),
            std::string::npos);
  EXPECT_FALSE(server.stats_endpoint()->Handle("bogus").ok());

  auto vars = UnixSocketRequest(config.stats_socket, "vars");
  ASSERT_TRUE(vars.ok()) << vars.status().ToString();
  EXPECT_NE(vars.value().find("server requests "), std::string::npos);
  auto trace = UnixSocketRequest(config.stats_socket, "trace");
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace.value().find("serve/exec"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(UnixSocketRequest(config.stats_socket, "vars").ok());
  telemetry::Telemetry::SetEnabled(false);
  telemetry::Telemetry::Reset();
}

// An unreachable SLO target degrades health without affecting answers; a
// zero target leaves the tracker disabled and healthz green.
TEST_F(ServeTest, SloTargetBlownDegradesHealthzButNotResults) {
  std::shared_ptr<Recommender> model = MakeModel("BPR-MF", 64);
  ASSERT_NE(model, nullptr);
  const auto expected = FullCatalogExpected(*model);
  serve::ServerConfig config = Config(/*max_batch=*/4, 0);
  config.stats_socket = ::testing::TempDir() + "serve_test_slo_" +
                        std::to_string(getpid()) + ".sock";
  config.slo_target_p99_us = 1;  // 1us: every real request breaches
  serve::Server server(config, graph_);
  server.Publish(model);
  server.Start();
  Drive(server, /*threads=*/2, /*rounds=*/1, expected);
  serve::SloTracker::State state = server.slo().state();
  EXPECT_TRUE(state.enabled);
  EXPECT_GT(state.total, 0u);
  EXPECT_GT(state.over_target, 0u);
  EXPECT_GT(state.budget_burn, 1.0);
  EXPECT_FALSE(state.ok);
  auto healthz = server.stats_endpoint()->Handle("healthz");
  ASSERT_TRUE(healthz.ok());
  EXPECT_NE(healthz.value().find("\"ok\": false"), std::string::npos);
  EXPECT_NE(healthz.value().find("degraded"), std::string::npos);
  server.Stop();

  serve::Server plain(Config(/*max_batch=*/4, 0), graph_);
  plain.Publish(model);
  plain.Start();
  std::vector<Recommendation> got;
  ASSERT_TRUE(plain.TopN(0, &got));
  EXPECT_FALSE(plain.slo().state().enabled);
  EXPECT_TRUE(plain.slo().state().ok);
  plain.Stop();
}

// -- Lazy warm-up / demand-paged user cache (docs/serving.md#warmup) ----------

// The contract the whole feature rests on: lazy warm-up must be BITWISE
// invisible in results. Two servers over the same SceneRec model — one full
// warm-up, one demand-paged — must return identical lists for every user,
// from concurrent clients, including when the cache is too small to hold
// the user set (constant eviction churn on the hot path).
TEST_F(ServeTest, LazyWarmupBitwiseMatchesFullWarmup) {
  std::shared_ptr<Recommender> model = MakeModel("SceneRec", 71);
  ASSERT_NE(model, nullptr);
  ASSERT_TRUE(model->SupportsUserReprCache());
  const auto expected = FullCatalogExpected(*model);
  for (int64_t cache_entries :
       {dataset_.num_users * 2, dataset_.num_users / 8}) {
    SCOPED_TRACE("user_cache_entries=" + std::to_string(cache_entries));
    serve::ServerConfig config = Config(/*max_batch=*/4, 0);
    config.warmup = serve::ServerConfig::Warmup::kLazy;
    config.user_cache_entries = cache_entries;
    serve::Server server(config, graph_);
    server.Publish(model);
    server.Start();
    Drive(server, /*threads=*/4, /*rounds=*/4, expected);
    server.Stop();
    const ReprCache::Stats cache = server.user_cache_stats();
    EXPECT_GT(cache.misses, 0u);  // demand paging actually happened
    EXPECT_LE(cache.entries, cache_entries);
    if (cache_entries < dataset_.num_users) {
      EXPECT_GT(cache.evictions, 0u);  // the tiny cache really churned
    } else {
      EXPECT_GT(cache.hits, 0u);  // rounds 2..4 served from residency
    }
  }
}

// Hot swap onto a COLD cache under live traffic: version-tagged entries
// mean a swap invalidates lazily, so the first post-swap touch of every
// user recomputes under the new parameters. No result may mix versions,
// and after the swap drains serving is pure B.
TEST_F(ServeTest, LazyWarmupHotSwapOnColdCacheNeverTearsResults) {
  std::shared_ptr<Recommender> model_a = MakeModel("SceneRec", 81);
  std::shared_ptr<Recommender> model_b = MakeModel("SceneRec", 82);
  ASSERT_NE(model_a, nullptr);
  ASSERT_NE(model_b, nullptr);
  const auto expected_a = FullCatalogExpected(*model_a);
  const auto expected_b = FullCatalogExpected(*model_b);

  auto matches = [](const std::vector<Recommendation>& got,
                    const std::vector<Recommendation>& want) {
    if (got.size() != want.size()) return false;
    for (size_t i = 0; i < got.size(); ++i) {
      if (got[i].item != want[i].item || got[i].score != want[i].score) {
        return false;
      }
    }
    return true;
  };

  serve::ServerConfig config = Config(/*max_batch=*/4, 0);
  config.warmup = serve::ServerConfig::Warmup::kLazy;
  config.user_cache_entries = dataset_.num_users / 4;  // eviction stays live
  serve::Server server(config, graph_);
  server.Publish(model_a);
  server.Start();

  std::atomic<int64_t> next{0};
  std::atomic<int64_t> version_b_hits{0};
  const int64_t total = dataset_.num_users * 10;
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      std::vector<Recommendation> got;
      for (;;) {
        const int64_t seq = next.fetch_add(1);
        if (seq >= total) break;
        // Skewed mix: half the traffic concentrates on 5 hot users (well
        // inside the 10-entry cache, so residency pays off), half cycles
        // the whole catalog (so eviction churn never stops). A pure
        // round-robin sweep over 40 users through 10 slots is the
        // pathological cyclic pattern — every access would miss.
        const int64_t user = (seq & 1) != 0 ? seq % dataset_.num_users
                                            : (seq >> 1) % 5;
        ASSERT_TRUE(server.TopN(user, &got));
        const bool is_a = matches(got, expected_a[static_cast<size_t>(user)]);
        const bool is_b = matches(got, expected_b[static_cast<size_t>(user)]);
        ASSERT_TRUE(is_a || is_b)
            << "stale-cache or torn result for user " << user;
        if (is_b) version_b_hits.fetch_add(1);
      }
    });
  }
  std::thread publisher([&] {
    while (next.load() < total / 4) std::this_thread::yield();
    server.Publish(model_b);
  });
  publisher.join();
  for (std::thread& t : clients) t.join();

  // Every user — whether its entry is resident-stale, resident-fresh, or
  // evicted — must now serve version B exactly.
  std::vector<Recommendation> got;
  for (int64_t u = 0; u < dataset_.num_users; ++u) {
    ASSERT_TRUE(server.TopN(u, &got));
    ExpectSameList(got, expected_b[static_cast<size_t>(u)]);
  }
  server.Stop();
  EXPECT_GT(version_b_hits.load(), 0);
  const ReprCache::Stats cache = server.user_cache_stats();
  EXPECT_GT(cache.hits, 0u);
  EXPECT_GT(cache.evictions, 0u);
  EXPECT_LE(cache.entries, config.user_cache_entries);
}

// Models without a user-repr capability fall back to full warm-up
// silently: lazy mode must neither crash (the base-class CHECK) nor change
// results, and the cache stats must stay empty.
TEST_F(ServeTest, LazyWarmupFallsBackToFullForUnsupportedModels) {
  std::shared_ptr<Recommender> model = MakeModel("BPR-MF", 91);
  ASSERT_NE(model, nullptr);
  ASSERT_FALSE(model->SupportsUserReprCache());
  const auto expected = FullCatalogExpected(*model);
  serve::ServerConfig config = Config(/*max_batch=*/4, 0);
  config.warmup = serve::ServerConfig::Warmup::kLazy;
  serve::Server server(config, graph_);
  server.Publish(model);
  server.Start();
  Drive(server, /*threads=*/2, /*rounds=*/2, expected);
  server.Stop();
  const ReprCache::Stats cache = server.user_cache_stats();
  EXPECT_EQ(cache.capacity_bytes, 0);
  EXPECT_EQ(cache.hits + cache.misses, 0u);
}

}  // namespace
}  // namespace scenerec
