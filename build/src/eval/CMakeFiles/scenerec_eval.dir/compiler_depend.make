# Empty compiler generated dependencies file for scenerec_eval.
# This may be replaced when dependencies are built.
