file(REMOVE_RECURSE
  "CMakeFiles/scenerec_eval.dir/evaluator.cc.o"
  "CMakeFiles/scenerec_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/scenerec_eval.dir/metrics.cc.o"
  "CMakeFiles/scenerec_eval.dir/metrics.cc.o.d"
  "CMakeFiles/scenerec_eval.dir/top_n.cc.o"
  "CMakeFiles/scenerec_eval.dir/top_n.cc.o.d"
  "libscenerec_eval.a"
  "libscenerec_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenerec_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
