file(REMOVE_RECURSE
  "libscenerec_eval.a"
)
