# Empty compiler generated dependencies file for scenerec_tensor.
# This may be replaced when dependencies are built.
