file(REMOVE_RECURSE
  "CMakeFiles/scenerec_tensor.dir/grad_check.cc.o"
  "CMakeFiles/scenerec_tensor.dir/grad_check.cc.o.d"
  "CMakeFiles/scenerec_tensor.dir/ops.cc.o"
  "CMakeFiles/scenerec_tensor.dir/ops.cc.o.d"
  "CMakeFiles/scenerec_tensor.dir/shape.cc.o"
  "CMakeFiles/scenerec_tensor.dir/shape.cc.o.d"
  "CMakeFiles/scenerec_tensor.dir/tensor.cc.o"
  "CMakeFiles/scenerec_tensor.dir/tensor.cc.o.d"
  "libscenerec_tensor.a"
  "libscenerec_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenerec_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
