file(REMOVE_RECURSE
  "libscenerec_tensor.a"
)
