file(REMOVE_RECURSE
  "CMakeFiles/scenerec_train.dir/grid_search.cc.o"
  "CMakeFiles/scenerec_train.dir/grid_search.cc.o.d"
  "CMakeFiles/scenerec_train.dir/trainer.cc.o"
  "CMakeFiles/scenerec_train.dir/trainer.cc.o.d"
  "libscenerec_train.a"
  "libscenerec_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenerec_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
