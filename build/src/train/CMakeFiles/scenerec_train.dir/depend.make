# Empty dependencies file for scenerec_train.
# This may be replaced when dependencies are built.
