file(REMOVE_RECURSE
  "libscenerec_train.a"
)
