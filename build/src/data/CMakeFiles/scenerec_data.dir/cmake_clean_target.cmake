file(REMOVE_RECURSE
  "libscenerec_data.a"
)
