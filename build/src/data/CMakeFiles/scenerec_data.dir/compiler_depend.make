# Empty compiler generated dependencies file for scenerec_data.
# This may be replaced when dependencies are built.
