file(REMOVE_RECURSE
  "CMakeFiles/scenerec_data.dir/dataset.cc.o"
  "CMakeFiles/scenerec_data.dir/dataset.cc.o.d"
  "CMakeFiles/scenerec_data.dir/sampler.cc.o"
  "CMakeFiles/scenerec_data.dir/sampler.cc.o.d"
  "CMakeFiles/scenerec_data.dir/scene_mining.cc.o"
  "CMakeFiles/scenerec_data.dir/scene_mining.cc.o.d"
  "CMakeFiles/scenerec_data.dir/sessions.cc.o"
  "CMakeFiles/scenerec_data.dir/sessions.cc.o.d"
  "CMakeFiles/scenerec_data.dir/split.cc.o"
  "CMakeFiles/scenerec_data.dir/split.cc.o.d"
  "CMakeFiles/scenerec_data.dir/synthetic.cc.o"
  "CMakeFiles/scenerec_data.dir/synthetic.cc.o.d"
  "CMakeFiles/scenerec_data.dir/tsv_io.cc.o"
  "CMakeFiles/scenerec_data.dir/tsv_io.cc.o.d"
  "libscenerec_data.a"
  "libscenerec_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenerec_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
