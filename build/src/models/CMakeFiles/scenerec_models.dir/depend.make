# Empty dependencies file for scenerec_models.
# This may be replaced when dependencies are built.
