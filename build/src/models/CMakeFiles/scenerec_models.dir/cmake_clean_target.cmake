file(REMOVE_RECURSE
  "libscenerec_models.a"
)
