
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/bpr_mf.cc" "src/models/CMakeFiles/scenerec_models.dir/bpr_mf.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/bpr_mf.cc.o.d"
  "/root/repo/src/models/cmn.cc" "src/models/CMakeFiles/scenerec_models.dir/cmn.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/cmn.cc.o.d"
  "/root/repo/src/models/factory.cc" "src/models/CMakeFiles/scenerec_models.dir/factory.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/factory.cc.o.d"
  "/root/repo/src/models/gcmc.cc" "src/models/CMakeFiles/scenerec_models.dir/gcmc.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/gcmc.cc.o.d"
  "/root/repo/src/models/item_pop.cc" "src/models/CMakeFiles/scenerec_models.dir/item_pop.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/item_pop.cc.o.d"
  "/root/repo/src/models/item_rank.cc" "src/models/CMakeFiles/scenerec_models.dir/item_rank.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/item_rank.cc.o.d"
  "/root/repo/src/models/kgat.cc" "src/models/CMakeFiles/scenerec_models.dir/kgat.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/kgat.cc.o.d"
  "/root/repo/src/models/kgcn.cc" "src/models/CMakeFiles/scenerec_models.dir/kgcn.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/kgcn.cc.o.d"
  "/root/repo/src/models/ncf.cc" "src/models/CMakeFiles/scenerec_models.dir/ncf.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/ncf.cc.o.d"
  "/root/repo/src/models/neighbor_util.cc" "src/models/CMakeFiles/scenerec_models.dir/neighbor_util.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/neighbor_util.cc.o.d"
  "/root/repo/src/models/ngcf.cc" "src/models/CMakeFiles/scenerec_models.dir/ngcf.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/ngcf.cc.o.d"
  "/root/repo/src/models/pinsage.cc" "src/models/CMakeFiles/scenerec_models.dir/pinsage.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/pinsage.cc.o.d"
  "/root/repo/src/models/propagation.cc" "src/models/CMakeFiles/scenerec_models.dir/propagation.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/propagation.cc.o.d"
  "/root/repo/src/models/recommender.cc" "src/models/CMakeFiles/scenerec_models.dir/recommender.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/recommender.cc.o.d"
  "/root/repo/src/models/scene_rec.cc" "src/models/CMakeFiles/scenerec_models.dir/scene_rec.cc.o" "gcc" "src/models/CMakeFiles/scenerec_models.dir/scene_rec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/scenerec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/scenerec_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/scenerec_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/scenerec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/scenerec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scenerec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
