file(REMOVE_RECURSE
  "CMakeFiles/scenerec_models.dir/bpr_mf.cc.o"
  "CMakeFiles/scenerec_models.dir/bpr_mf.cc.o.d"
  "CMakeFiles/scenerec_models.dir/cmn.cc.o"
  "CMakeFiles/scenerec_models.dir/cmn.cc.o.d"
  "CMakeFiles/scenerec_models.dir/factory.cc.o"
  "CMakeFiles/scenerec_models.dir/factory.cc.o.d"
  "CMakeFiles/scenerec_models.dir/gcmc.cc.o"
  "CMakeFiles/scenerec_models.dir/gcmc.cc.o.d"
  "CMakeFiles/scenerec_models.dir/item_pop.cc.o"
  "CMakeFiles/scenerec_models.dir/item_pop.cc.o.d"
  "CMakeFiles/scenerec_models.dir/item_rank.cc.o"
  "CMakeFiles/scenerec_models.dir/item_rank.cc.o.d"
  "CMakeFiles/scenerec_models.dir/kgat.cc.o"
  "CMakeFiles/scenerec_models.dir/kgat.cc.o.d"
  "CMakeFiles/scenerec_models.dir/kgcn.cc.o"
  "CMakeFiles/scenerec_models.dir/kgcn.cc.o.d"
  "CMakeFiles/scenerec_models.dir/ncf.cc.o"
  "CMakeFiles/scenerec_models.dir/ncf.cc.o.d"
  "CMakeFiles/scenerec_models.dir/neighbor_util.cc.o"
  "CMakeFiles/scenerec_models.dir/neighbor_util.cc.o.d"
  "CMakeFiles/scenerec_models.dir/ngcf.cc.o"
  "CMakeFiles/scenerec_models.dir/ngcf.cc.o.d"
  "CMakeFiles/scenerec_models.dir/pinsage.cc.o"
  "CMakeFiles/scenerec_models.dir/pinsage.cc.o.d"
  "CMakeFiles/scenerec_models.dir/propagation.cc.o"
  "CMakeFiles/scenerec_models.dir/propagation.cc.o.d"
  "CMakeFiles/scenerec_models.dir/recommender.cc.o"
  "CMakeFiles/scenerec_models.dir/recommender.cc.o.d"
  "CMakeFiles/scenerec_models.dir/scene_rec.cc.o"
  "CMakeFiles/scenerec_models.dir/scene_rec.cc.o.d"
  "libscenerec_models.a"
  "libscenerec_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenerec_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
