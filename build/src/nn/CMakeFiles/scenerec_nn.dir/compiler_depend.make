# Empty compiler generated dependencies file for scenerec_nn.
# This may be replaced when dependencies are built.
