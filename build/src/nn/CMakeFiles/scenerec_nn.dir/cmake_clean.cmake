file(REMOVE_RECURSE
  "CMakeFiles/scenerec_nn.dir/embedding.cc.o"
  "CMakeFiles/scenerec_nn.dir/embedding.cc.o.d"
  "CMakeFiles/scenerec_nn.dir/linear.cc.o"
  "CMakeFiles/scenerec_nn.dir/linear.cc.o.d"
  "CMakeFiles/scenerec_nn.dir/mlp.cc.o"
  "CMakeFiles/scenerec_nn.dir/mlp.cc.o.d"
  "CMakeFiles/scenerec_nn.dir/optimizer.cc.o"
  "CMakeFiles/scenerec_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/scenerec_nn.dir/serialization.cc.o"
  "CMakeFiles/scenerec_nn.dir/serialization.cc.o.d"
  "libscenerec_nn.a"
  "libscenerec_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenerec_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
