file(REMOVE_RECURSE
  "libscenerec_nn.a"
)
