file(REMOVE_RECURSE
  "CMakeFiles/scenerec_graph.dir/bipartite_graph.cc.o"
  "CMakeFiles/scenerec_graph.dir/bipartite_graph.cc.o.d"
  "CMakeFiles/scenerec_graph.dir/csr.cc.o"
  "CMakeFiles/scenerec_graph.dir/csr.cc.o.d"
  "CMakeFiles/scenerec_graph.dir/scene_graph.cc.o"
  "CMakeFiles/scenerec_graph.dir/scene_graph.cc.o.d"
  "CMakeFiles/scenerec_graph.dir/stats.cc.o"
  "CMakeFiles/scenerec_graph.dir/stats.cc.o.d"
  "libscenerec_graph.a"
  "libscenerec_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenerec_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
