file(REMOVE_RECURSE
  "libscenerec_graph.a"
)
