# Empty dependencies file for scenerec_graph.
# This may be replaced when dependencies are built.
