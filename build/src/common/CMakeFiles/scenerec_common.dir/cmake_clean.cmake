file(REMOVE_RECURSE
  "CMakeFiles/scenerec_common.dir/flags.cc.o"
  "CMakeFiles/scenerec_common.dir/flags.cc.o.d"
  "CMakeFiles/scenerec_common.dir/logging.cc.o"
  "CMakeFiles/scenerec_common.dir/logging.cc.o.d"
  "CMakeFiles/scenerec_common.dir/malloc_tuning.cc.o"
  "CMakeFiles/scenerec_common.dir/malloc_tuning.cc.o.d"
  "CMakeFiles/scenerec_common.dir/rng.cc.o"
  "CMakeFiles/scenerec_common.dir/rng.cc.o.d"
  "CMakeFiles/scenerec_common.dir/status.cc.o"
  "CMakeFiles/scenerec_common.dir/status.cc.o.d"
  "CMakeFiles/scenerec_common.dir/string_util.cc.o"
  "CMakeFiles/scenerec_common.dir/string_util.cc.o.d"
  "libscenerec_common.a"
  "libscenerec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenerec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
