# Empty dependencies file for scenerec_common.
# This may be replaced when dependencies are built.
