file(REMOVE_RECURSE
  "libscenerec_common.a"
)
