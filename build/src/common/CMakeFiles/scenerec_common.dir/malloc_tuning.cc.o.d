src/common/CMakeFiles/scenerec_common.dir/malloc_tuning.cc.o: \
 /root/repo/src/common/malloc_tuning.cc /usr/include/stdc-predef.h \
 /root/repo/src/common/malloc_tuning.h
