file(REMOVE_RECURSE
  "CMakeFiles/bench_grid_search.dir/bench_grid_search.cc.o"
  "CMakeFiles/bench_grid_search.dir/bench_grid_search.cc.o.d"
  "bench_grid_search"
  "bench_grid_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grid_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
