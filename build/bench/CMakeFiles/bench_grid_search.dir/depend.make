# Empty dependencies file for bench_grid_search.
# This may be replaced when dependencies are built.
