file(REMOVE_RECURSE
  "../lib/libscenerec_bench_util.a"
  "../lib/libscenerec_bench_util.pdb"
  "CMakeFiles/scenerec_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/scenerec_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenerec_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
