# Empty compiler generated dependencies file for scenerec_bench_util.
# This may be replaced when dependencies are built.
