file(REMOVE_RECURSE
  "../lib/libscenerec_bench_util.a"
)
