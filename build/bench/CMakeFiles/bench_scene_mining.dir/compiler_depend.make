# Empty compiler generated dependencies file for bench_scene_mining.
# This may be replaced when dependencies are built.
