file(REMOVE_RECURSE
  "CMakeFiles/bench_scene_mining.dir/bench_scene_mining.cc.o"
  "CMakeFiles/bench_scene_mining.dir/bench_scene_mining.cc.o.d"
  "bench_scene_mining"
  "bench_scene_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scene_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
