
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_scene_mining.cc" "bench/CMakeFiles/bench_scene_mining.dir/bench_scene_mining.cc.o" "gcc" "bench/CMakeFiles/bench_scene_mining.dir/bench_scene_mining.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/scenerec_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/scenerec_train.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/scenerec_models.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/scenerec_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/scenerec_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/scenerec_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/scenerec_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/scenerec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scenerec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
