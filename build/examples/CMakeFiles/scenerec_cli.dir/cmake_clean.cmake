file(REMOVE_RECURSE
  "CMakeFiles/scenerec_cli.dir/scenerec_cli.cpp.o"
  "CMakeFiles/scenerec_cli.dir/scenerec_cli.cpp.o.d"
  "scenerec_cli"
  "scenerec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenerec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
