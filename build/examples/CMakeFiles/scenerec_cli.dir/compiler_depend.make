# Empty compiler generated dependencies file for scenerec_cli.
# This may be replaced when dependencies are built.
