# Empty dependencies file for scene_graph_explorer.
# This may be replaced when dependencies are built.
