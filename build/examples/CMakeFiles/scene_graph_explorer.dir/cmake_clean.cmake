file(REMOVE_RECURSE
  "CMakeFiles/scene_graph_explorer.dir/scene_graph_explorer.cpp.o"
  "CMakeFiles/scene_graph_explorer.dir/scene_graph_explorer.cpp.o.d"
  "scene_graph_explorer"
  "scene_graph_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scene_graph_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
