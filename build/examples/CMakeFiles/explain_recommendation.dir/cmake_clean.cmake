file(REMOVE_RECURSE
  "CMakeFiles/explain_recommendation.dir/explain_recommendation.cpp.o"
  "CMakeFiles/explain_recommendation.dir/explain_recommendation.cpp.o.d"
  "explain_recommendation"
  "explain_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
