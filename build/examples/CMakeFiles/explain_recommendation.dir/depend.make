# Empty dependencies file for explain_recommendation.
# This may be replaced when dependencies are built.
