file(REMOVE_RECURSE
  "CMakeFiles/scene_mining_test.dir/scene_mining_test.cc.o"
  "CMakeFiles/scene_mining_test.dir/scene_mining_test.cc.o.d"
  "scene_mining_test"
  "scene_mining_test.pdb"
  "scene_mining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scene_mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
