# Empty dependencies file for scene_mining_test.
# This may be replaced when dependencies are built.
