# Empty dependencies file for model_learning_test.
# This may be replaced when dependencies are built.
