file(REMOVE_RECURSE
  "CMakeFiles/model_learning_test.dir/model_learning_test.cc.o"
  "CMakeFiles/model_learning_test.dir/model_learning_test.cc.o.d"
  "model_learning_test"
  "model_learning_test.pdb"
  "model_learning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_learning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
