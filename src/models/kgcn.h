#ifndef SCENEREC_MODELS_KGCN_H_
#define SCENEREC_MODELS_KGCN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "models/recommender.h"
#include "nn/embedding.h"
#include "nn/linear.h"

namespace scenerec {

/// KGCN (Wang et al., WWW 2019 — the paper's reference [18]) on the degraded
/// scene knowledge graph. For a (user, item) pair the item's KG neighborhood
/// — here the scenes containing the item's category — is aggregated with
/// user-specific attention over relations:
///   pi(u, r)   = e_u . e_r                      (relation attention)
///   v_N(i)     = softmax-weighted sum of scene-entity embeddings
///   item repr  = relu(W [e_i + v_N(i)])         (KGCN "sum" aggregator)
///   score      = e_u . item_repr
/// Since the degraded KG has a single relation type per edge direction, the
/// user-relation attention reduces to a per-user gate on how much scene
/// evidence flows in — exactly the part of KGCN the scene setting exercises.
class Kgcn : public Recommender {
 public:
  /// Both graphs must outlive the model.
  Kgcn(const UserItemGraph* graph, const SceneGraph* scene, int64_t dim,
       int64_t max_neighbors, Rng& rng);

  std::string name() const override { return "KGCN"; }
  Tensor ScoreForTraining(int64_t user, int64_t item) override;
  void CollectParameters(std::vector<Tensor>* out) const override;

  /// All neighborhood sampling flows through the caller's rng, so shards
  /// are independent; the eval path (rng = nullptr) is stateless.
  Tensor ShardScore(int64_t user, int64_t item, Rng* rng) override;
  bool SupportsShardedLoss() const override { return true; }
  bool PrepareParallelScoring(ThreadPool&) override { return true; }

 private:
  const UserItemGraph* graph_;
  const SceneGraph* scene_;
  int64_t max_neighbors_;
  Embedding user_embedding_;
  Embedding item_embedding_;
  Embedding scene_embedding_;
  Tensor relation_embedding_;  // single "belongs to" relation, [dim]
  Linear aggregator_;          // W of the sum aggregator
  Rng sample_rng_;
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_KGCN_H_
