#include "models/kgcn.h"

#include "models/neighbor_util.h"
#include "tensor/ops.h"

namespace scenerec {

Kgcn::Kgcn(const UserItemGraph* graph, const SceneGraph* scene, int64_t dim,
           int64_t max_neighbors, Rng& rng)
    : graph_(graph),
      scene_(scene),
      max_neighbors_(max_neighbors),
      user_embedding_(graph->num_users(), dim, rng),
      item_embedding_(graph->num_items(), dim, rng),
      scene_embedding_(scene->num_scenes(), dim, rng),
      relation_embedding_(Tensor::RandomNormal(Shape({dim}), 0.1f, rng,
                                               /*requires_grad=*/true)),
      aggregator_(dim, dim, Activation::kLeakyRelu, rng),
      sample_rng_(rng.Next64()) {
  SCENEREC_CHECK(graph != nullptr);
  SCENEREC_CHECK(scene != nullptr);
}

Tensor Kgcn::ScoreForTraining(int64_t user, int64_t item) {
  return ShardScore(user, item,
                    NoGradGuard::enabled() ? nullptr : &sample_rng_);
}

Tensor Kgcn::ShardScore(int64_t user, int64_t item, Rng* rng) {
  Tensor e_u = user_embedding_.Lookup(user);
  Tensor e_i = item_embedding_.Lookup(item);

  // KG neighborhood of the item: the scenes containing its category.
  std::vector<int64_t> scenes =
      CapNeighbors(scene_->ScenesOfItem(item), max_neighbors_, rng);
  Tensor combined = e_i;
  if (!scenes.empty()) {
    Tensor neighbor_rows = scene_embedding_.LookupMany(scenes);  // [k, d]
    // User-relation attention: with one relation this is a scalar gate
    // pi(u, r) shared by all neighbors, passed through sigmoid so each user
    // learns how much scene evidence to admit; neighbor mixing is uniform
    // within the gate (softmax over identical logits).
    Tensor gate = Sigmoid(Dot(e_u, relation_embedding_));
    Tensor neighborhood = MeanRows(neighbor_rows);
    combined = Add(e_i, ScaleBy(neighborhood, gate));
  }
  Tensor item_repr = aggregator_.Forward(combined);
  return Dot(e_u, item_repr);
}

void Kgcn::CollectParameters(std::vector<Tensor>* out) const {
  user_embedding_.CollectParameters(out);
  item_embedding_.CollectParameters(out);
  scene_embedding_.CollectParameters(out);
  out->push_back(relation_embedding_);
  aggregator_.CollectParameters(out);
}

}  // namespace scenerec
