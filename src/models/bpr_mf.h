#ifndef SCENEREC_MODELS_BPR_MF_H_
#define SCENEREC_MODELS_BPR_MF_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "models/recommender.h"
#include "nn/embedding.h"

namespace scenerec {

/// BPR-MF (Rendle et al. 2009): matrix factorization with an item bias,
/// trained with the pairwise BPR loss. Score(u, i) = p_u . q_i + b_i.
/// The benchmark baseline of Table 2.
class BprMf : public Recommender {
 public:
  BprMf(int64_t num_users, int64_t num_items, int64_t dim, Rng& rng);

  std::string name() const override { return "BPR-MF"; }
  Tensor ScoreForTraining(int64_t user, int64_t item) override;
  float Score(int64_t user, int64_t item) override;
  void CollectParameters(std::vector<Tensor>* out) const override;

  /// Scoring reads only the embedding tables: no sampling, no caches.
  bool SupportsShardedLoss() const override { return true; }
  bool PrepareParallelScoring(ThreadPool&) override { return true; }

  /// A block is candidate-row dot products straight off the tables — the
  /// same fixed-order kernels::Dot per item as Score(), no gather copy.
  bool SupportsBlockScoring() const override { return true; }
  void ScoreBlock(int64_t user, std::span<const int64_t> items,
                  std::span<float> out) override;

  /// Score IS p_u . q_i + b_i, so the export is the raw item table plus the
  /// bias column (zero-copy when the tables are snapshot-mapped) and index
  /// inner products are bitwise model scores.
  bool SupportsRetrievalEmbeddings() const override { return true; }
  int64_t RetrievalDim() const override { return user_embedding_.dim(); }
  RetrievalEmbeddings ExportItemEmbeddings() override;
  void WriteRetrievalQuery(int64_t user, std::span<float> out) override;

 private:
  Embedding user_embedding_;
  Embedding item_embedding_;
  Tensor item_bias_;  // [num_items, 1]
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_BPR_MF_H_
