#include "models/propagation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace scenerec {

namespace {

/// Fills norm_weights with 1/sqrt(deg(src)*deg(dst)) for every CSR edge.
std::shared_ptr<const std::vector<float>> ComputeSymmetricNorm(
    const CsrGraph& adjacency) {
  auto weights = std::make_shared<std::vector<float>>();
  weights->reserve(static_cast<size_t>(adjacency.num_edges()));
  for (int64_t s = 0; s < adjacency.num_src(); ++s) {
    const double deg_s = static_cast<double>(adjacency.OutDegree(s));
    for (int64_t t : adjacency.Neighbors(s)) {
      const double deg_t = static_cast<double>(adjacency.OutDegree(t));
      weights->push_back(
          static_cast<float>(1.0 / std::sqrt(std::max(1.0, deg_s * deg_t))));
    }
  }
  return weights;
}

}  // namespace

PropagationGraph BuildUserItemPropagationGraph(const UserItemGraph& graph) {
  PropagationGraph result;
  result.num_users = graph.num_users();
  result.num_items = graph.num_items();
  result.num_extra = 0;
  const int64_t n = result.num_nodes();
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(2 * graph.num_interactions()));
  for (int64_t u = 0; u < graph.num_users(); ++u) {
    for (int64_t i : graph.ItemsOfUser(u)) {
      edges.push_back({result.UserNode(u), result.ItemNode(i), 1.0f});
      edges.push_back({result.ItemNode(i), result.UserNode(u), 1.0f});
    }
  }
  result.adjacency = CsrGraph::FromEdges(n, n, std::move(edges));
  result.norm_weights = ComputeSymmetricNorm(result.adjacency);
  return result;
}

KgatGraph BuildKgatGraph(const UserItemGraph& graph, const SceneGraph& scene) {
  SCENEREC_CHECK_EQ(graph.num_items(), scene.num_items());
  KgatGraph result;
  PropagationGraph& prop = result.propagation;
  prop.num_users = graph.num_users();
  prop.num_items = graph.num_items();
  prop.num_extra = scene.num_scenes();
  const int64_t n = prop.num_nodes();

  // Edge list with relation tags carried through CSR construction. CsrGraph
  // sorts edges by (src, dst); we replicate that ordering for the tags by
  // building tagged edges, sorting identically, then splitting.
  struct TaggedEdge {
    int64_t src;
    int64_t dst;
    int32_t relation;
  };
  std::vector<TaggedEdge> tagged;
  for (int64_t u = 0; u < graph.num_users(); ++u) {
    for (int64_t i : graph.ItemsOfUser(u)) {
      tagged.push_back(
          {prop.UserNode(u), prop.ItemNode(i), KgatGraph::kRelationInteract});
      tagged.push_back(
          {prop.ItemNode(i), prop.UserNode(u), KgatGraph::kRelationInteract});
    }
  }
  for (int64_t i = 0; i < scene.num_items(); ++i) {
    for (int64_t s : scene.ScenesOfItem(i)) {
      tagged.push_back(
          {prop.ItemNode(i), prop.ExtraNode(s), KgatGraph::kRelationBelongsTo});
      tagged.push_back(
          {prop.ExtraNode(s), prop.ItemNode(i), KgatGraph::kRelationIncludes});
    }
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const TaggedEdge& a, const TaggedEdge& b) {
              return a.src != b.src ? a.src < b.src : a.dst < b.dst;
            });
  // Deduplicate exactly like CsrGraph::FromEdges merges (src, dst) pairs.
  std::vector<TaggedEdge> unique_tagged;
  unique_tagged.reserve(tagged.size());
  for (const TaggedEdge& e : tagged) {
    if (!unique_tagged.empty() && unique_tagged.back().src == e.src &&
        unique_tagged.back().dst == e.dst) {
      continue;  // keep the first relation tag
    }
    unique_tagged.push_back(e);
  }
  std::vector<Edge> edges;
  edges.reserve(unique_tagged.size());
  result.edge_relation.reserve(unique_tagged.size());
  for (const TaggedEdge& e : unique_tagged) {
    edges.push_back({e.src, e.dst, 1.0f});
    result.edge_relation.push_back(e.relation);
  }
  prop.adjacency = CsrGraph::FromEdges(n, n, std::move(edges));
  SCENEREC_CHECK_EQ(prop.adjacency.num_edges(),
                    static_cast<int64_t>(result.edge_relation.size()));
  prop.norm_weights = ComputeSymmetricNorm(prop.adjacency);
  return result;
}

}  // namespace scenerec
