#include "models/gcmc.h"

#include <algorithm>

#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace scenerec {

Gcmc::Gcmc(const UserItemGraph* graph, int64_t dim, Rng& rng)
    : prop_(BuildUserItemPropagationGraph(*graph)),
      dim_(dim),
      embedding_(Tensor::RandomNormal(Shape({prop_.num_nodes(), dim}), 0.1f,
                                      rng, /*requires_grad=*/true)),
      w_conv_(Tensor::XavierUniform(dim, dim, rng)),
      w_dense_(Tensor::XavierUniform(dim, dim, rng)) {}

Tensor Gcmc::Propagate() const {
  Tensor conv = Relu(
      MatMul(SpMM(&prop_.adjacency, prop_.norm_weights, embedding_), w_conv_));
  return Tanh(MatMul(conv, w_dense_));
}

Tensor Gcmc::ScoreForTraining(int64_t user, int64_t item) {
  Tensor z = Propagate();
  return Dot(Row(z, prop_.UserNode(user)), Row(z, prop_.ItemNode(item)));
}

Tensor Gcmc::BatchLoss(std::span<const BprTriple> batch) {
  SCENEREC_CHECK(!batch.empty());
  Tensor z = Propagate();
  Tensor total;
  for (const BprTriple& triple : batch) {
    Tensor user_repr = Row(z, prop_.UserNode(triple.user));
    Tensor pos = Dot(user_repr, Row(z, prop_.ItemNode(triple.positive_item)));
    Tensor neg = Dot(user_repr, Row(z, prop_.ItemNode(triple.negative_item)));
    Tensor loss = BprPairLoss(pos, neg);
    total = total.defined() ? Add(total, loss) : loss;
  }
  return total;
}

void Gcmc::OnEvalBegin() {
  NoGradGuard no_grad;
  cached_ = Propagate().value();
}

bool Gcmc::PrepareParallelScoring(ThreadPool& pool) {
  (void)pool;  // one full-graph propagation; nothing to fan out
  if (cached_.empty()) OnEvalBegin();
  return true;
}

float Gcmc::Score(int64_t user, int64_t item) {
  if (cached_.empty()) OnEvalBegin();
  // Same fixed-order kernel as ScoreBlock: bitwise equal paths.
  return kernels::Dot(cached_.data() + prop_.UserNode(user) * dim_,
                      cached_.data() + prop_.ItemNode(item) * dim_, dim_);
}

void Gcmc::ScoreBlock(int64_t user, std::span<const int64_t> items,
                      std::span<float> out) {
  SCENEREC_CHECK_EQ(items.size(), out.size());
  if (cached_.empty()) OnEvalBegin();
  const float* urow = cached_.data() + prop_.UserNode(user) * dim_;
  for (size_t r = 0; r < items.size(); ++r) {
    out[r] =
        kernels::Dot(urow, cached_.data() + prop_.ItemNode(items[r]) * dim_,
                     dim_);
  }
}

RetrievalEmbeddings Gcmc::ExportItemEmbeddings() {
  if (cached_.empty()) OnEvalBegin();
  RetrievalEmbeddings out;
  out.num_items = prop_.num_items;
  out.dim = dim_;
  out.fidelity = RetrievalFidelity::kExactScores;
  // Item nodes are rows [num_users, num_users + num_items) of Z — one
  // contiguous block. Copied (not aliased): OnEvalBegin refreshes cached_
  // in place and an index must not see half-updated rows.
  const float* first = cached_.data() + prop_.ItemNode(0) * dim_;
  out.owned_items.assign(first, first + prop_.num_items * dim_);
  out.items = out.owned_items.data();
  return out;
}

void Gcmc::WriteRetrievalQuery(int64_t user, std::span<float> out) {
  if (cached_.empty()) OnEvalBegin();
  SCENEREC_CHECK_EQ(static_cast<int64_t>(out.size()), dim_);
  const float* urow = cached_.data() + prop_.UserNode(user) * dim_;
  std::copy(urow, urow + dim_, out.begin());
}

void Gcmc::CollectParameters(std::vector<Tensor>* out) const {
  out->push_back(embedding_);
  out->push_back(w_conv_);
  out->push_back(w_dense_);
}

}  // namespace scenerec
