#ifndef SCENEREC_MODELS_RECOMMENDER_H_
#define SCENEREC_MODELS_RECOMMENDER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/sampler.h"
#include "eval/evaluator.h"
#include "graph/bipartite_graph.h"
#include "graph/scene_graph.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace scenerec {

class ReprCache;

/// Non-owning view of the graphs a model may consume. `user_item` is the
/// TRAINING interaction graph (evaluation positives removed); `scene` may be
/// null for pure collaborative-filtering baselines. Both must outlive the
/// model and every Backward() pass (SpMM stores graph pointers).
struct ModelContext {
  const UserItemGraph* user_item = nullptr;
  const SceneGraph* scene = nullptr;
};

/// How faithfully `Dot(query(u), items[i]) + bias[i]` over a model's exported
/// retrieval embeddings reproduces Score(u, i). Drives how the retrieval
/// layer (retrieval/item_index.h) treats index scores: under kExactScores
/// they ARE model scores; otherwise they only pick candidates and the final
/// ranking always comes from exact ScoreBlock rescoring (docs/retrieval.md).
enum class RetrievalFidelity {
  /// The inner product is bitwise equal to Score (BPR-MF, GCMC, ItemPop).
  kExactScores,
  /// Equal as real arithmetic but float ops regroup (NGCF/KGAT sum per-layer
  /// dots; the export concatenates layers into one longer dot).
  kFaithfulRanking,
  /// A proxy: the true score is a nonlinear head over the representations
  /// (SceneRec's rating MLP), so index order is approximate by construction.
  kProxy,
};

/// An item-embedding matrix exported for retrieval-index construction, plus
/// the matching query-side embedding contract (WriteRetrievalQuery). `items`
/// points either at `owned_items` or zero-copy at storage kept alive by
/// `pin` (a snapshot's file mapping). `bias` is an optional per-item
/// additive term folded into index scores.
struct RetrievalEmbeddings {
  int64_t num_items = 0;
  int64_t dim = 0;
  RetrievalFidelity fidelity = RetrievalFidelity::kProxy;
  const float* items = nullptr;  // [num_items, dim] row-major
  const float* bias = nullptr;   // [num_items] or null
  std::vector<float> owned_items;
  std::vector<float> owned_bias;
  std::shared_ptr<const void> pin;

  /// Points `items` at `buf` without copying when `buf` borrows externally
  /// pinned storage (mmap'd snapshot pages — the pin keeps them mapped
  /// independent of the tensor), otherwise materializes a copy: a live heap
  /// table can be reallocated later (BindExternal), so aliasing it would
  /// dangle.
  void AdoptItems(const FloatBuffer& buf);
  /// Same policy for the bias vector.
  void AdoptBias(const FloatBuffer& buf);
};

/// Export helper for layer-propagation models (NGCF, KGAT) whose score sums
/// per-layer dots: concatenates each item node's rows across `layers` into
/// one [num_items, layers.size()*dim] matrix. Item nodes must be contiguous
/// starting at `item_node_base` (PropagationGraph::ItemNode layout). The
/// concatenated dot equals the per-layer sum as real arithmetic but regroups
/// float additions — kFaithfulRanking, which the helper sets.
RetrievalEmbeddings ExportLayerConcat(
    const std::vector<std::vector<float>>& layers, int64_t dim,
    int64_t num_items, int64_t item_node_base);

/// Query-side counterpart: node `node`'s rows across `layers`, concatenated
/// into `out` (size layers.size()*dim).
void WriteLayerConcatQuery(const std::vector<std::vector<float>>& layers,
                           int64_t dim, int64_t node, std::span<float> out);

/// Base interface implemented by SceneRec and all baselines. A model is a
/// Module (owns trainable parameters) plus a scoring function; the trainer
/// drives it exclusively through this interface.
class Recommender : public Module {
 public:
  ~Recommender() override = default;

  /// Model name as used in Table 2 ("BPR-MF", "SceneRec", ...).
  virtual std::string name() const = 0;

  /// Differentiable prediction r'_ui for one (user, item) pair. Builds an
  /// autograd graph over the model parameters.
  virtual Tensor ScoreForTraining(int64_t user, int64_t item) = 0;

  /// Summed BPR loss over a batch of triples (eq. 15, without the L2 term
  /// which the optimizer applies as weight decay). The default implementation
  /// scores each pair independently; full-graph propagation models (NGCF,
  /// KGAT) override it to share one propagation across the batch.
  virtual Tensor BatchLoss(std::span<const BprTriple> batch);

  // -- Sharded (data-parallel) training ---------------------------------
  //
  // The parallel trainer splits each batch into shards and runs
  // BatchLossShard + Backward concurrently, one shard per pool lane
  // (docs/parallelism.md). A model may opt in by returning true from
  // SupportsShardedLoss and guaranteeing that concurrent BatchLossShard
  // calls with distinct shard indices share NO mutable state: every source
  // of randomness must come from the passed Rng and every memo cache must
  // be per-shard (see SceneRec) or absent.

  /// True if BatchLossShard may be called concurrently. Defaults to false;
  /// models stay serial until they are audited for shard safety.
  virtual bool SupportsShardedLoss() const { return false; }

  /// Called once before the shard loop of every parallel step with the
  /// number of shards about to run, so the model can size per-shard caches.
  /// Never called concurrently with BatchLossShard.
  virtual void PrepareShards(int64_t num_shards) { (void)num_shards; }

  /// BatchLoss restricted to one shard. `rng` replaces the model's internal
  /// sampling generator so shards draw independent streams. The default
  /// scores pairs via ShardScore; models with cross-pair memoization
  /// override it. Requires SupportsShardedLoss().
  virtual Tensor BatchLossShard(std::span<const BprTriple> shard,
                                int64_t shard_index, Rng& rng);

  /// Differentiable pair score whose sampling randomness comes from `rng`
  /// (nullptr = deterministic, as in evaluation). Default ignores rng and
  /// calls ScoreForTraining — correct only for models that do not sample.
  virtual Tensor ShardScore(int64_t user, int64_t item, Rng* rng) {
    (void)rng;
    return ScoreForTraining(user, item);
  }

  /// Inference-mode score. Default: ScoreForTraining under NoGradGuard.
  /// Models with cached propagated representations override this.
  virtual float Score(int64_t user, int64_t item);

  // -- Block scoring (batched inference) --------------------------------
  //
  // Full-ranking evaluation and Top-N serving score one user against
  // thousands of candidate items. ScoreBlock is the batched entry point:
  // models that can gather their (memoized) user/item representations into
  // matrices answer a whole block with row-batched GEMMs instead of one
  // autograd forward per pair (docs/serving.md). The contract is strict:
  // out[r] must be bitwise equal to Score(user, items[r]) for every r, so
  // callers may switch between the paths freely without metrics drift.

  /// True if ScoreBlock is a genuine batched fast path rather than the
  /// per-pair fallback loop. Purely informational — ScoreBlock is always
  /// callable — but benches and tests use it to pick comparison targets.
  virtual bool SupportsBlockScoring() const { return false; }

  /// Scores `items.size()` candidates for one user into `out` (same
  /// length). Requires the same preparation as Score (OnEvalBegin, and
  /// PrepareParallelScoring before concurrent use). The default loops
  /// Score() — correct for every model, batched for none.
  virtual void ScoreBlock(int64_t user, std::span<const int64_t> items,
                          std::span<float> out);

  // -- Cross-request row scoring (the serving daemon's batch shape) ------
  //
  // The admission loop of scenerec_serve (src/serve/server.h) coalesces
  // concurrent users' candidate blocks into ONE flattened row list, so that
  // requests arriving together share GEMM batches the same way ForwardRows
  // shares them across items. ScoreRows is that entry point: row r scores
  // the pair (users[r], items[r]). The contract extends ScoreBlock's:
  // out[r] must be bitwise equal to Score(users[r], items[r]) for every r,
  // independent of which rows happen to share a call — so the daemon's
  // batched results are bitwise identical to per-request serving, and rows
  // may be re-chunked freely (docs/serving.md).

  /// True if ScoreRows batches across users (one shared GEMM per call)
  /// rather than splitting into per-user ScoreBlock runs. Informational,
  /// like SupportsBlockScoring.
  virtual bool SupportsCrossUserScoring() const { return false; }

  /// Scores row pairs (users[r], items[r]) into out[r]. All three spans
  /// have the same length. The default splits the rows into maximal runs of
  /// equal user and dispatches ScoreBlock per run — correct for every
  /// model; cross-user batching models override.
  virtual void ScoreRows(std::span<const int64_t> users,
                         std::span<const int64_t> items, std::span<float> out);

  // -- Retrieval-embedding export (two-stage serving) --------------------
  //
  // Models whose score is (or is approximated by) an inner product between
  // a per-user query and a per-item embedding export the item side as one
  // matrix for ANN index construction (retrieval/index_builder.h) and write
  // the query side per request. Both use the same representations as
  // Score(), so they require the same preparation (OnEvalBegin after
  // parameter changes) and, like Score() itself, lazily self-ensure any
  // eval caches. The declared fidelity tells callers how to interpret
  // index scores.

  /// True if ExportItemEmbeddings / WriteRetrievalQuery are implemented.
  virtual bool SupportsRetrievalEmbeddings() const { return false; }

  /// Width of the exported embeddings; 0 when unsupported.
  virtual int64_t RetrievalDim() const { return 0; }

  /// Exports the [num_items, RetrievalDim()] item matrix (plus optional
  /// bias). Not safe concurrently with scoring if eval caches are cold.
  /// CHECK-fails unless SupportsRetrievalEmbeddings().
  virtual RetrievalEmbeddings ExportItemEmbeddings();

  /// Writes the user's query embedding into `out` (size RetrievalDim()),
  /// such that Dot(out, item_row) + bias approximates Score per the
  /// exported fidelity. CHECK-fails unless SupportsRetrievalEmbeddings().
  virtual void WriteRetrievalQuery(int64_t user, std::span<float> out);

  // -- Demand-paged user representations (lazy serving warm-up) ----------
  //
  // Models whose eval-mode user representation is deterministic between
  // parameter updates (SceneRec: eq. 1 under NoGradGuard) can serve it from
  // a bounded common/ReprCache instead of precomputing every user at
  // publish time: PrepareParallelScoring then skips the O(users) sweep and
  // a missing user is computed on first touch — bitwise identical to the
  // precomputed row, so every scoring contract (Score == ScoreBlock ==
  // ScoreRows) extends unchanged. Entries are tagged with the publisher's
  // version; attaching with a new version lazily invalidates the previous
  // publish's entries with no flush (docs/serving.md#warmup).

  /// True if AttachUserReprCache is implemented.
  virtual bool SupportsUserReprCache() const { return false; }

  /// Width of one cached user representation; 0 when unsupported. The
  /// attached cache's dim() must equal this.
  virtual int64_t UserReprDim() const { return 0; }

  /// Attaches `cache` as the model's user-representation store for eval-
  /// mode scoring, tagging every row it writes with `version`. Call before
  /// OnEvalBegin/PrepareParallelScoring, never concurrently with scoring.
  /// nullptr detaches (full precompute resumes). CHECK-fails unless
  /// SupportsUserReprCache().
  virtual void AttachUserReprCache(std::shared_ptr<ReprCache> cache,
                                   uint64_t version);

  /// Makes Score() safe to call concurrently and returns true, or returns
  /// false if this model's scoring path cannot be parallelized. Called by
  /// the trainer/evaluator after OnEvalBegin; implementations typically
  /// precompute lazily-filled eval caches here (optionally using `pool`)
  /// so that concurrent Score() calls are pure reads. Defaults to false.
  virtual bool PrepareParallelScoring(ThreadPool& pool) {
    (void)pool;
    return false;
  }

  /// Hook invoked before an evaluation sweep, e.g. to refresh cached
  /// propagated embeddings with the current parameters. Default no-op.
  virtual void OnEvalBegin() {}

  /// Hook invoked at the start of every training epoch (e.g. KGAT refreshes
  /// its attention coefficients once per epoch). Default no-op.
  virtual void OnEpochBegin() {}

  /// Adapter for the evaluation harness's per-pair interface.
  ScoreFn Scorer() {
    return [this](int64_t user, int64_t item) { return Score(user, item); };
  }

  /// Adapter for the evaluation harness's block interface: one virtual
  /// dispatch per candidate block instead of one std::function call per
  /// pair. The preferred scorer for EvaluateRanking / EvaluateFullRanking /
  /// TopNRecommendations.
  BlockScoreFn BlockScorer() {
    return [this](int64_t user, std::span<const int64_t> items,
                  std::span<float> out) { ScoreBlock(user, items, out); };
  }
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_RECOMMENDER_H_
