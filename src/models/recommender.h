#ifndef SCENEREC_MODELS_RECOMMENDER_H_
#define SCENEREC_MODELS_RECOMMENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/sampler.h"
#include "eval/evaluator.h"
#include "graph/bipartite_graph.h"
#include "graph/scene_graph.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace scenerec {

/// Non-owning view of the graphs a model may consume. `user_item` is the
/// TRAINING interaction graph (evaluation positives removed); `scene` may be
/// null for pure collaborative-filtering baselines. Both must outlive the
/// model and every Backward() pass (SpMM stores graph pointers).
struct ModelContext {
  const UserItemGraph* user_item = nullptr;
  const SceneGraph* scene = nullptr;
};

/// Base interface implemented by SceneRec and all baselines. A model is a
/// Module (owns trainable parameters) plus a scoring function; the trainer
/// drives it exclusively through this interface.
class Recommender : public Module {
 public:
  ~Recommender() override = default;

  /// Model name as used in Table 2 ("BPR-MF", "SceneRec", ...).
  virtual std::string name() const = 0;

  /// Differentiable prediction r'_ui for one (user, item) pair. Builds an
  /// autograd graph over the model parameters.
  virtual Tensor ScoreForTraining(int64_t user, int64_t item) = 0;

  /// Summed BPR loss over a batch of triples (eq. 15, without the L2 term
  /// which the optimizer applies as weight decay). The default implementation
  /// scores each pair independently; full-graph propagation models (NGCF,
  /// KGAT) override it to share one propagation across the batch.
  virtual Tensor BatchLoss(const std::vector<BprTriple>& batch);

  /// Inference-mode score. Default: ScoreForTraining under NoGradGuard.
  /// Models with cached propagated representations override this.
  virtual float Score(int64_t user, int64_t item);

  /// Hook invoked before an evaluation sweep, e.g. to refresh cached
  /// propagated embeddings with the current parameters. Default no-op.
  virtual void OnEvalBegin() {}

  /// Hook invoked at the start of every training epoch (e.g. KGAT refreshes
  /// its attention coefficients once per epoch). Default no-op.
  virtual void OnEpochBegin() {}

  /// Adapter for the evaluation harness.
  ScoreFn Scorer() {
    return [this](int64_t user, int64_t item) { return Score(user, item); };
  }
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_RECOMMENDER_H_
