#ifndef SCENEREC_MODELS_SCENE_REC_H_
#define SCENEREC_MODELS_SCENE_REC_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "models/recommender.h"
#include "nn/activation.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace scenerec {

/// Hyper-parameters and ablation switches for SceneRec. The three `use_*`
/// flags produce the paper's model variants:
///   use_item_item=false  -> SceneRec-noitem  (no item layer in H)
///   use_scene=false      -> SceneRec-nosce   (no category/scene layers)
///   use_attention=false  -> SceneRec-noatt   (uniform neighbor weights)
struct SceneRecConfig {
  int64_t embedding_dim = 64;

  /// Aggregation cap per neighbor set. The paper sums all 1-hop neighbors;
  /// we cap for bounded per-example cost (sampled during training,
  /// deterministic strided subset during evaluation). See DESIGN.md.
  int64_t max_neighbors = 20;

  bool use_item_item = true;
  bool use_scene = true;
  bool use_attention = true;

  /// The sigma nonlinearity of equations (1), (2), (7), (12).
  Activation activation = Activation::kLeakyRelu;
};

/// SceneRec (Section 4): scene-based graph neural collaborative filtering.
///
/// User modeling (eq. 1) and user-based item modeling (eq. 2) aggregate
/// bipartite neighbors. Scene-based item modeling propagates information
/// down the scene->category->item hierarchy: scene-specific category
/// representation (eq. 3), attentive category-category aggregation with
/// scene-based cosine attention (eqs. 4-6), category fusion (eq. 7), the
/// item's category representation (eq. 8), attentive item-item aggregation
/// (eqs. 9-11) and fusion (eq. 12). The two item views are merged by an MLP
/// (eq. 13) and rating prediction is an MLP over the user and item
/// representations (eq. 14), trained with BPR (eq. 15).
class SceneRec : public Recommender {
 public:
  /// `user_item` supplies UI/IU neighborhoods, `scene` the hierarchy; both
  /// must outlive the model. `scene` may be null only if
  /// config.use_scene == false && config.use_item_item == false.
  SceneRec(const UserItemGraph* user_item, const SceneGraph* scene,
           const SceneRecConfig& config, Rng& rng);

  std::string name() const override;
  Tensor ScoreForTraining(int64_t user, int64_t item) override;
  Tensor BatchLoss(std::span<const BprTriple> batch) override;
  void OnEvalBegin() override;
  void CollectParameters(std::vector<Tensor>* out) const override;

  // -- Sharded training / parallel evaluation -----------------------------
  // The step memos (scene sums, category representations) become per-shard
  // StepCaches so concurrent shards never share an autograd intermediate;
  // see docs/parallelism.md for the cache thread-safety rules.
  bool SupportsShardedLoss() const override { return true; }
  void PrepareShards(int64_t num_shards) override;
  Tensor BatchLossShard(std::span<const BprTriple> shard, int64_t shard_index,
                        Rng& rng) override;

  /// Precomputes every eval memo in dependency stages (scene sums ->
  /// category reprs -> item reprs -> user reprs), each stage parallel over
  /// disjoint cache slots, then returns true: Score() becomes a pure read
  /// plus a thread-local rating MLP forward.
  bool PrepareParallelScoring(ThreadPool& pool) override;

  // -- Block scoring -------------------------------------------------------
  // Gathers the memoized user/item representations into one [B, 2d] matrix
  // and runs eq. (14) once per block through rating_mlp_.ForwardRows — a
  // row-batched GEMM instead of B per-pair autograd forwards. Bitwise equal
  // to per-pair Score() because ForwardRows row r is bitwise equal to
  // Forward(row r) (docs/kernels.md) and the gather is a pure copy.
  bool SupportsBlockScoring() const override { return true; }
  void ScoreBlock(int64_t user, std::span<const int64_t> items,
                  std::span<float> out) override;

  /// Cross-request batching for the serving daemon: gathers the memoized
  /// representations of EVERY (users[r], items[r]) pair into one [N, 2d]
  /// matrix and runs eq. (14) once for the whole coalesced batch — users
  /// arriving together share the rating-MLP GEMM. Bitwise equal to
  /// per-request ScoreBlock for the same reason ScoreBlock is bitwise equal
  /// to Score: ForwardRows row r equals Forward(row r) bitwise and the
  /// gather is a pure copy.
  bool SupportsCrossUserScoring() const override { return true; }
  void ScoreRows(std::span<const int64_t> users,
                 std::span<const int64_t> items, std::span<float> out) override;

  // -- Demand-paged user representations -----------------------------------
  // With a cache attached, eval-mode UserRepr bypasses the per-user memo
  // vector entirely: hits copy the cached row, misses compute eq. (1) under
  // NoGradGuard (user_agg_.Forward over UserAggSum — the identical code
  // path the serial lazy fill takes, so the row is bitwise equal to the
  // ForwardRows-precomputed one; docs/kernels.md) and insert it. Prepare-
  // ParallelScoring then skips the O(users) sweep: hot swap warm-up becomes
  // O(items) and user-side memory O(cache capacity). The cache's sharded
  // locks plus the pure-read item/scene memos keep concurrent
  // ScoreBlock/ScoreRows safe after PrepareParallelScoring, exactly as in
  // full warm-up mode.
  bool SupportsUserReprCache() const override { return true; }
  int64_t UserReprDim() const override { return config_.embedding_dim; }
  void AttachUserReprCache(std::shared_ptr<ReprCache> cache,
                           uint64_t version) override;

  /// Exports the memoized eval representations (eqs. 1 and 13). The true
  /// score is the rating MLP over [user_repr, item_repr] — not an inner
  /// product — so the export is kProxy: index order only picks candidates
  /// and two-stage serving always reranks with exact ScoreBlock.
  bool SupportsRetrievalEmbeddings() const override { return true; }
  int64_t RetrievalDim() const override { return config_.embedding_dim; }
  RetrievalEmbeddings ExportItemEmbeddings() override;
  void WriteRetrievalQuery(int64_t user, std::span<float> out) override;

  const SceneRecConfig& config() const { return config_; }

  /// Average scene-based attention score between `item` and the items the
  /// user interacted with (the quantity displayed in Figure 3's case
  /// study): mean over interacted items j of the raw attention logit
  /// beta*(item, j) = cosine(scene-sum(item), scene-sum(j)). Computed
  /// without autograd. Returns 0 when the model has no scene information or
  /// the user has no history.
  float AverageAttentionScore(int64_t user, int64_t item) const;

 private:
  /// Step-scoped memo tables. One instance per execution lane: the members
  /// `step_caches_` for the serial path (and eval sweeps), one entry of
  /// `shard_caches_` per shard of a parallel step, or a stack local (see
  /// AverageAttentionScore). Memoized tensors are autograd nodes, so a
  /// StepCaches must never be shared by two concurrent Backward graphs.
  struct StepCaches {
    std::vector<Tensor> scene_sum;
    std::vector<Tensor> category_repr;

    void Clear() {
      scene_sum.clear();
      category_repr.clear();
    }
  };

  /// Sum of scene embeddings of CS(c) — eq. (3); zeros if c has no scenes.
  /// Memoized per step (the result is identical for every use of the same
  /// category within one forward pass, and reusing the autograd node simply
  /// accumulates gradients along all uses).
  Tensor SceneSum(int64_t category, StepCaches& caches) const;

  /// Drops the per-step memos (scene sums, category representations). Called
  /// at the start of every training step; parameters change between steps so
  /// memos would be stale.
  void ClearStepCaches();

  /// The input of eq. (7)'s fusion layer: h_scene || h_cat (eqs. 3-6).
  /// Split out of CategoryRepr so batched callers can stack these rows and
  /// run category_fuse_ once per batch.
  Tensor CategoryFuseInput(int64_t category, StepCaches& caches, Rng* rng);

  /// m_{c_p} — eqs. (3)-(7).
  Tensor CategoryRepr(int64_t category, StepCaches& caches, Rng* rng);

  /// The input row of eq. (12)'s fusion layer (h_category || h_item, or the
  /// single surviving part under ablations). The fuse layer itself is
  /// `scene_fuse_layer()`.
  Tensor SceneFuseInput(int64_t item, StepCaches& caches, Rng* rng);

  /// The Linear applied to SceneFuseInput: item_fuse_ when both views are
  /// enabled, item_fuse_single_ under ablations.
  const Linear& scene_fuse_layer() const;

  /// m^S_{i_p} — eqs. (8)-(12), honoring ablation switches.
  Tensor SceneSpaceItemRepr(int64_t item, StepCaches& caches, Rng* rng);

  /// Aggregated item-embedding sum feeding eq. (1) (before W_u).
  Tensor UserAggSum(int64_t user, Rng* rng);

  /// m_{u_p} — eq. (1).
  Tensor UserRepr(int64_t user, Rng* rng);

  /// Aggregated user-embedding sum feeding eq. (2) (before W_iu).
  Tensor UserSpaceSum(int64_t item, Rng* rng);

  /// m^U_{i_p} — eq. (2).
  Tensor UserSpaceItemRepr(int64_t item, Rng* rng);

  /// m_{i_p} — eq. (13).
  Tensor GeneralItemRepr(int64_t item, StepCaches& caches, Rng* rng);

  /// Batched eq. (13): one row per item of `items`, computed with row-
  /// batched GEMMs. Row r is bitwise equal to GeneralItemRepr(items[r])
  /// because every batched kernel matches its single-row path bitwise.
  Tensor GeneralItemReprRows(std::span<const int64_t> items,
                             StepCaches& caches, Rng* rng);

  /// Assembles eq. (13) rows from pre-collected aggregation inputs: row r is
  /// item_mlp_(item_user_agg_(user_space_sums[r]) ||
  /// scene_fuse_layer()(scene_inputs[r])). Shared by GeneralItemReprRows and
  /// the batched ShardLoss.
  Tensor ItemRowsFromParts(const std::vector<Tensor>& user_space_sums,
                           const std::vector<Tensor>& scene_inputs);

  /// Shared body of BatchLoss and BatchLossShard: summed BPR loss of
  /// `triples` with memos in `caches` and sampling from `rng`.
  Tensor ShardLoss(std::span<const BprTriple> triples, StepCaches& caches,
                   Rng& rng);

  /// r'_pq — eq. (14).
  Tensor Rating(const Tensor& user_repr, const Tensor& item_repr);

  const UserItemGraph* user_item_;
  const SceneGraph* scene_;
  SceneRecConfig config_;

  Embedding user_embedding_;
  Embedding item_embedding_;
  Embedding category_embedding_;
  Embedding scene_embedding_;

  Linear user_agg_;        // W_u, b_u   (eq. 1)
  Linear item_user_agg_;   // W_iu, b_iu (eq. 2)
  Linear category_fuse_;   // W_ic, b_ic (eq. 7), [2d -> d]
  Linear item_fuse_;       // W_ii, b_ii (eq. 12), [2d -> d]
  Linear item_fuse_single_;  // ablations: [d -> d] when one input is removed
  Mlp item_mlp_;           // F, W_i (eq. 13)
  Mlp rating_mlp_;         // F, W_r (eq. 14)

  Rng sample_rng_;

  // Step-scoped memos of the serial path (valid within one forward pass /
  // one eval sweep) and the per-shard tables of the parallel path.
  mutable StepCaches step_caches_;
  std::vector<StepCaches> shard_caches_;
  // Eval-sweep-scoped memos, only consulted under NoGradGuard: evaluation
  // scores num_users x 101 pairs, and both representations are deterministic
  // between parameter updates. During parallel evaluation they are filled
  // up-front by PrepareParallelScoring and then only read.
  std::vector<Tensor> eval_user_cache_;
  std::vector<Tensor> eval_item_cache_;

  // Demand-paged user-representation store (see AttachUserReprCache).
  // While attached, eval_user_cache_ stays empty and every eval-mode
  // UserRepr goes through the cache under `user_repr_version_`'s tag.
  std::shared_ptr<ReprCache> user_repr_cache_;
  uint64_t user_repr_version_ = 0;
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_SCENE_REC_H_
