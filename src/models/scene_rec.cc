#include "models/scene_rec.h"

#include <cmath>

#include "models/neighbor_util.h"
#include "tensor/ops.h"

namespace scenerec {

SceneRec::SceneRec(const UserItemGraph* user_item, const SceneGraph* scene,
                   const SceneRecConfig& config, Rng& rng)
    : user_item_(user_item),
      scene_(scene),
      config_(config),
      user_embedding_(user_item->num_users(), config.embedding_dim, rng),
      item_embedding_(user_item->num_items(), config.embedding_dim, rng),
      category_embedding_(scene != nullptr ? scene->num_categories() : 1,
                          config.embedding_dim, rng),
      scene_embedding_(scene != nullptr ? scene->num_scenes() : 1,
                       config.embedding_dim, rng),
      user_agg_(config.embedding_dim, config.embedding_dim, config.activation,
                rng),
      item_user_agg_(config.embedding_dim, config.embedding_dim,
                     config.activation, rng),
      category_fuse_(2 * config.embedding_dim, config.embedding_dim,
                     config.activation, rng),
      item_fuse_(2 * config.embedding_dim, config.embedding_dim,
                 config.activation, rng),
      item_fuse_single_(config.embedding_dim, config.embedding_dim,
                        config.activation, rng),
      item_mlp_({2 * config.embedding_dim, config.embedding_dim,
                 config.embedding_dim},
                config.activation, config.activation, rng),
      rating_mlp_({2 * config.embedding_dim, config.embedding_dim, 1},
                  config.activation, Activation::kNone, rng),
      sample_rng_(rng.Next64()) {
  SCENEREC_CHECK(user_item != nullptr);
  SCENEREC_CHECK(scene != nullptr || (!config.use_scene && !config.use_item_item))
      << "scene graph required unless both scene and item-item are disabled";
}

std::string SceneRec::name() const {
  if (!config_.use_item_item && config_.use_scene) return "SceneRec-noitem";
  if (!config_.use_scene && config_.use_item_item) return "SceneRec-nosce";
  if (!config_.use_attention) return "SceneRec-noatt";
  return "SceneRec";
}

Tensor SceneRec::SceneSum(int64_t category, StepCaches& caches) const {
  if (caches.scene_sum.empty()) {
    caches.scene_sum.resize(static_cast<size_t>(scene_->num_categories()));
  }
  Tensor& memo = caches.scene_sum[static_cast<size_t>(category)];
  if (memo.defined()) return memo;
  auto scenes = scene_->ScenesOfCategory(category);
  if (scenes.empty()) {
    memo = Tensor::Zeros(Shape({config_.embedding_dim}));
  } else {
    memo = SumRows(scene_embedding_.LookupMany(
        std::vector<int64_t>(scenes.begin(), scenes.end())));
  }
  return memo;
}

void SceneRec::ClearStepCaches() { step_caches_.Clear(); }

void SceneRec::OnEvalBegin() {
  ClearStepCaches();
  eval_user_cache_.clear();
  eval_item_cache_.clear();
}

Tensor SceneRec::CategoryRepr(int64_t category, StepCaches& caches,
                              Rng* rng) {
  if (caches.category_repr.empty()) {
    caches.category_repr.resize(static_cast<size_t>(scene_->num_categories()));
  }
  Tensor& memo = caches.category_repr[static_cast<size_t>(category)];
  if (memo.defined()) return memo;

  // Eq. (3): scene-specific representation.
  Tensor h_scene = SceneSum(category, caches);

  // Eqs. (4)-(6): category-specific representation via scene-based
  // attention over related categories.
  std::vector<int64_t> neighbors = CapNeighbors(
      scene_->CategoryNeighbors(category), config_.max_neighbors, rng);
  Tensor h_cat;
  if (neighbors.empty()) {
    h_cat = Tensor::Zeros(Shape({config_.embedding_dim}));
  } else {
    Tensor rows = category_embedding_.LookupMany(neighbors);
    if (config_.use_attention) {
      const Tensor& query = h_scene;
      std::vector<Tensor> logits;
      logits.reserve(neighbors.size());
      for (int64_t q : neighbors) {
        logits.push_back(CosineSimilarity(query, SceneSum(q, caches)));
      }
      Tensor alpha = Softmax(Stack(logits));
      h_cat = WeightedSumRows(rows, alpha);
    } else {
      h_cat = MeanRows(rows);  // uniform weights (noatt variant)
    }
  }

  // Eq. (7): fuse scene-specific and category-specific parts.
  memo = category_fuse_.Forward(Concat({h_scene, h_cat}));
  return memo;
}

Tensor SceneRec::SceneSpaceItemRepr(int64_t item, StepCaches& caches,
                                    Rng* rng) {
  // Eq. (8): the item's category representation.
  Tensor h_category;
  if (config_.use_scene) {
    h_category = CategoryRepr(scene_->CategoryOfItem(item), caches, rng);
  }

  // Eqs. (9)-(11): attentive aggregation over item neighbors, attention from
  // the scene sets of the two items' categories.
  Tensor h_item;
  if (config_.use_item_item) {
    std::vector<int64_t> neighbors =
        CapNeighbors(scene_->ItemNeighbors(item), config_.max_neighbors, rng);
    if (neighbors.empty()) {
      h_item = Tensor::Zeros(Shape({config_.embedding_dim}));
    } else {
      Tensor rows = item_embedding_.LookupMany(neighbors);
      if (config_.use_attention && config_.use_scene) {
        Tensor query = SceneSum(scene_->CategoryOfItem(item), caches);
        std::vector<Tensor> logits;
        logits.reserve(neighbors.size());
        for (int64_t q : neighbors) {
          logits.push_back(CosineSimilarity(
              query, SceneSum(scene_->CategoryOfItem(q), caches)));
        }
        Tensor beta = Softmax(Stack(logits));
        h_item = WeightedSumRows(rows, beta);
      } else {
        // noatt variant, or nosce (no scenes to attend with): uniform.
        h_item = MeanRows(rows);
      }
    }
  }

  // Eq. (12) and its ablated forms.
  if (config_.use_scene && config_.use_item_item) {
    return item_fuse_.Forward(Concat({h_category, h_item}));
  }
  if (config_.use_scene) {  // SceneRec-noitem
    return item_fuse_single_.Forward(h_category);
  }
  // SceneRec-nosce: only the item-item sub-network remains.
  return item_fuse_single_.Forward(h_item);
}

Tensor SceneRec::UserRepr(int64_t user, Rng* rng) {
  const bool eval_mode = NoGradGuard::enabled();
  if (eval_mode) {
    if (eval_user_cache_.empty()) {
      eval_user_cache_.resize(static_cast<size_t>(user_item_->num_users()));
    }
    if (eval_user_cache_[static_cast<size_t>(user)].defined()) {
      return eval_user_cache_[static_cast<size_t>(user)];
    }
  }
  // Eq. (1): aggregate the embeddings of interacted items.
  std::vector<int64_t> items =
      CapNeighbors(user_item_->ItemsOfUser(user), config_.max_neighbors, rng);
  Tensor sum = items.empty()
                   ? Tensor::Zeros(Shape({config_.embedding_dim}))
                   : SumRows(item_embedding_.LookupMany(items));
  Tensor repr = user_agg_.Forward(sum);
  if (eval_mode) eval_user_cache_[static_cast<size_t>(user)] = repr;
  return repr;
}

Tensor SceneRec::UserSpaceItemRepr(int64_t item, Rng* rng) {
  // Eq. (2): aggregate the embeddings of engaged users.
  std::vector<int64_t> users =
      CapNeighbors(user_item_->UsersOfItem(item), config_.max_neighbors, rng);
  Tensor sum = users.empty()
                   ? Tensor::Zeros(Shape({config_.embedding_dim}))
                   : SumRows(user_embedding_.LookupMany(users));
  return item_user_agg_.Forward(sum);
}

Tensor SceneRec::GeneralItemRepr(int64_t item, StepCaches& caches,
                                 Rng* rng) {
  const bool eval_mode = NoGradGuard::enabled();
  if (eval_mode) {
    if (eval_item_cache_.empty()) {
      eval_item_cache_.resize(static_cast<size_t>(user_item_->num_items()));
    }
    if (eval_item_cache_[static_cast<size_t>(item)].defined()) {
      return eval_item_cache_[static_cast<size_t>(item)];
    }
  }
  // Eq. (13): MLP over the concatenated user-based and scene-based views.
  Tensor user_view = UserSpaceItemRepr(item, rng);
  Tensor scene_view = SceneSpaceItemRepr(item, caches, rng);
  Tensor repr = item_mlp_.Forward(Concat({user_view, scene_view}));
  if (eval_mode) eval_item_cache_[static_cast<size_t>(item)] = repr;
  return repr;
}

Tensor SceneRec::Rating(const Tensor& user_repr, const Tensor& item_repr) {
  // Eq. (14).
  return Reshape(rating_mlp_.Forward(Concat({user_repr, item_repr})), Shape());
}

Tensor SceneRec::ScoreForTraining(int64_t user, int64_t item) {
  Rng* rng = NoGradGuard::enabled() ? nullptr : &sample_rng_;
  if (rng != nullptr) ClearStepCaches();  // fresh parameters each step
  return Rating(UserRepr(user, rng), GeneralItemRepr(item, step_caches_, rng));
}

Tensor SceneRec::BatchLoss(std::span<const BprTriple> batch) {
  SCENEREC_CHECK(!batch.empty());
  ClearStepCaches();
  return ShardLoss(batch, step_caches_, sample_rng_);
}

void SceneRec::PrepareShards(int64_t num_shards) {
  SCENEREC_CHECK_GE(num_shards, 1);
  shard_caches_.resize(static_cast<size_t>(num_shards));
}

Tensor SceneRec::BatchLossShard(std::span<const BprTriple> shard,
                                int64_t shard_index, Rng& rng) {
  SCENEREC_CHECK_GE(shard_index, 0);
  SCENEREC_CHECK_LT(shard_index, static_cast<int64_t>(shard_caches_.size()))
      << "PrepareShards must size the cache table before the shard loop";
  StepCaches& caches = shard_caches_[static_cast<size_t>(shard_index)];
  caches.Clear();  // fresh parameters each step
  return ShardLoss(shard, caches, rng);
}

Tensor SceneRec::ShardLoss(std::span<const BprTriple> triples,
                           StepCaches& caches, Rng& rng) {
  Tensor total;
  for (const BprTriple& triple : triples) {
    // The user representation is shared between the positive and negative
    // scores of a triple.
    Tensor m_u = UserRepr(triple.user, &rng);
    Tensor pos =
        Rating(m_u, GeneralItemRepr(triple.positive_item, caches, &rng));
    Tensor neg =
        Rating(m_u, GeneralItemRepr(triple.negative_item, caches, &rng));
    Tensor loss = BprPairLoss(pos, neg);
    total = total.defined() ? Add(total, loss) : loss;
  }
  return total;
}

bool SceneRec::PrepareParallelScoring(ThreadPool& pool) {
  // Fill every eval memo in dependency order; within a stage each index
  // writes only its own (pre-sized) cache slot, so stages parallelize over
  // disjoint memory. NoGradGuard is thread-local and therefore instantiated
  // inside each worker body.
  if (scene_ != nullptr) {
    const int64_t num_categories = scene_->num_categories();
    if (step_caches_.scene_sum.empty()) {
      step_caches_.scene_sum.resize(static_cast<size_t>(num_categories));
    }
    pool.ParallelFor(num_categories, /*grain=*/16,
                     [this](int64_t begin, int64_t end) {
                       NoGradGuard no_grad;
                       for (int64_t c = begin; c < end; ++c) {
                         SceneSum(c, step_caches_);
                       }
                     });
    if (config_.use_scene) {
      if (step_caches_.category_repr.empty()) {
        step_caches_.category_repr.resize(static_cast<size_t>(num_categories));
      }
      pool.ParallelFor(num_categories, /*grain=*/4,
                       [this](int64_t begin, int64_t end) {
                         NoGradGuard no_grad;
                         for (int64_t c = begin; c < end; ++c) {
                           CategoryRepr(c, step_caches_, /*rng=*/nullptr);
                         }
                       });
    }
  }
  const int64_t num_items = user_item_->num_items();
  if (eval_item_cache_.empty()) {
    eval_item_cache_.resize(static_cast<size_t>(num_items));
  }
  pool.ParallelFor(num_items, /*grain=*/4,
                   [this](int64_t begin, int64_t end) {
                     NoGradGuard no_grad;
                     for (int64_t i = begin; i < end; ++i) {
                       GeneralItemRepr(i, step_caches_, /*rng=*/nullptr);
                     }
                   });
  const int64_t num_users = user_item_->num_users();
  if (eval_user_cache_.empty()) {
    eval_user_cache_.resize(static_cast<size_t>(num_users));
  }
  pool.ParallelFor(num_users, /*grain=*/4,
                   [this](int64_t begin, int64_t end) {
                     NoGradGuard no_grad;
                     for (int64_t u = begin; u < end; ++u) {
                       UserRepr(u, /*rng=*/nullptr);
                     }
                   });
  return true;
}

float SceneRec::AverageAttentionScore(int64_t user, int64_t item) const {
  if (scene_ == nullptr || !config_.use_scene) return 0.0f;
  auto history = user_item_->ItemsOfUser(user);
  if (history.empty()) return 0.0f;
  NoGradGuard no_grad;
  StepCaches local_caches;  // keeps this const path off the shared memos
  Tensor candidate = SceneSum(scene_->CategoryOfItem(item), local_caches);
  float total = 0.0f;
  int64_t count = 0;
  for (int64_t j : history) {
    if (j == item) continue;
    Tensor other = SceneSum(scene_->CategoryOfItem(j), local_caches);
    total += CosineSimilarity(candidate, other).scalar();
    ++count;
  }
  return count == 0 ? 0.0f : total / static_cast<float>(count);
}

void SceneRec::CollectParameters(std::vector<Tensor>* out) const {
  user_embedding_.CollectParameters(out);
  item_embedding_.CollectParameters(out);
  user_agg_.CollectParameters(out);
  item_user_agg_.CollectParameters(out);
  item_mlp_.CollectParameters(out);
  rating_mlp_.CollectParameters(out);
  if (config_.use_scene) {
    category_embedding_.CollectParameters(out);
    scene_embedding_.CollectParameters(out);
    category_fuse_.CollectParameters(out);
  }
  if (config_.use_scene && config_.use_item_item) {
    out->push_back(item_fuse_.weight());
    out->push_back(item_fuse_.bias());
  } else {
    item_fuse_single_.CollectParameters(out);
  }
  if (!config_.use_scene && config_.use_item_item) {
    // nosce still attends over item neighbors using item embeddings only —
    // no extra parameters beyond the shared tables.
  }
}

}  // namespace scenerec
