#include "models/scene_rec.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/repr_cache.h"
#include "common/trace.h"
#include "models/neighbor_util.h"
#include "tensor/ops.h"

namespace scenerec {

SceneRec::SceneRec(const UserItemGraph* user_item, const SceneGraph* scene,
                   const SceneRecConfig& config, Rng& rng)
    : user_item_(user_item),
      scene_(scene),
      config_(config),
      user_embedding_(user_item->num_users(), config.embedding_dim, rng),
      item_embedding_(user_item->num_items(), config.embedding_dim, rng),
      category_embedding_(scene != nullptr ? scene->num_categories() : 1,
                          config.embedding_dim, rng),
      scene_embedding_(scene != nullptr ? scene->num_scenes() : 1,
                       config.embedding_dim, rng),
      user_agg_(config.embedding_dim, config.embedding_dim, config.activation,
                rng),
      item_user_agg_(config.embedding_dim, config.embedding_dim,
                     config.activation, rng),
      category_fuse_(2 * config.embedding_dim, config.embedding_dim,
                     config.activation, rng),
      item_fuse_(2 * config.embedding_dim, config.embedding_dim,
                 config.activation, rng),
      item_fuse_single_(config.embedding_dim, config.embedding_dim,
                        config.activation, rng),
      item_mlp_({2 * config.embedding_dim, config.embedding_dim,
                 config.embedding_dim},
                config.activation, config.activation, rng),
      rating_mlp_({2 * config.embedding_dim, config.embedding_dim, 1},
                  config.activation, Activation::kNone, rng),
      sample_rng_(rng.Next64()) {
  SCENEREC_CHECK(user_item != nullptr);
  SCENEREC_CHECK(scene != nullptr || (!config.use_scene && !config.use_item_item))
      << "scene graph required unless both scene and item-item are disabled";
}

std::string SceneRec::name() const {
  if (!config_.use_item_item && config_.use_scene) return "SceneRec-noitem";
  if (!config_.use_scene && config_.use_item_item) return "SceneRec-nosce";
  if (!config_.use_attention) return "SceneRec-noatt";
  return "SceneRec";
}

Tensor SceneRec::SceneSum(int64_t category, StepCaches& caches) const {
  if (caches.scene_sum.empty()) {
    caches.scene_sum.resize(static_cast<size_t>(scene_->num_categories()));
  }
  Tensor& memo = caches.scene_sum[static_cast<size_t>(category)];
  if (memo.defined()) return memo;
  auto scenes = scene_->ScenesOfCategory(category);
  if (scenes.empty()) {
    memo = Tensor::Zeros(Shape({config_.embedding_dim}));
  } else {
    memo = SumRows(scene_embedding_.LookupMany(
        std::vector<int64_t>(scenes.begin(), scenes.end())));
  }
  return memo;
}

void SceneRec::ClearStepCaches() { step_caches_.Clear(); }

void SceneRec::OnEvalBegin() {
  ClearStepCaches();
  eval_user_cache_.clear();
  eval_item_cache_.clear();
}

Tensor SceneRec::CategoryFuseInput(int64_t category, StepCaches& caches,
                                   Rng* rng) {
  // Eq. (3): scene-specific representation.
  Tensor h_scene = SceneSum(category, caches);

  // Eqs. (4)-(6): category-specific representation via scene-based
  // attention over related categories.
  std::vector<int64_t> neighbors = CapNeighbors(
      scene_->CategoryNeighbors(category), config_.max_neighbors, rng);
  Tensor h_cat;
  if (neighbors.empty()) {
    h_cat = Tensor::Zeros(Shape({config_.embedding_dim}));
  } else {
    Tensor rows = category_embedding_.LookupMany(neighbors);
    if (config_.use_attention) {
      const Tensor& query = h_scene;
      std::vector<Tensor> logits;
      logits.reserve(neighbors.size());
      for (int64_t q : neighbors) {
        logits.push_back(CosineSimilarity(query, SceneSum(q, caches)));
      }
      Tensor alpha = Softmax(Stack(logits));
      h_cat = WeightedSumRows(rows, alpha);
    } else {
      h_cat = MeanRows(rows);  // uniform weights (noatt variant)
    }
  }

  return Concat({h_scene, h_cat});
}

Tensor SceneRec::CategoryRepr(int64_t category, StepCaches& caches,
                              Rng* rng) {
  if (caches.category_repr.empty()) {
    caches.category_repr.resize(static_cast<size_t>(scene_->num_categories()));
  }
  Tensor& memo = caches.category_repr[static_cast<size_t>(category)];
  if (memo.defined()) return memo;
  // Eq. (7): fuse scene-specific and category-specific parts.
  memo = category_fuse_.Forward(CategoryFuseInput(category, caches, rng));
  return memo;
}

const Linear& SceneRec::scene_fuse_layer() const {
  return (config_.use_scene && config_.use_item_item) ? item_fuse_
                                                      : item_fuse_single_;
}

Tensor SceneRec::SceneFuseInput(int64_t item, StepCaches& caches, Rng* rng) {
  // Eq. (8): the item's category representation.
  Tensor h_category;
  if (config_.use_scene) {
    h_category = CategoryRepr(scene_->CategoryOfItem(item), caches, rng);
  }

  // Eqs. (9)-(11): attentive aggregation over item neighbors, attention from
  // the scene sets of the two items' categories.
  Tensor h_item;
  if (config_.use_item_item) {
    std::vector<int64_t> neighbors =
        CapNeighbors(scene_->ItemNeighbors(item), config_.max_neighbors, rng);
    if (neighbors.empty()) {
      h_item = Tensor::Zeros(Shape({config_.embedding_dim}));
    } else {
      Tensor rows = item_embedding_.LookupMany(neighbors);
      if (config_.use_attention && config_.use_scene) {
        Tensor query = SceneSum(scene_->CategoryOfItem(item), caches);
        std::vector<Tensor> logits;
        logits.reserve(neighbors.size());
        for (int64_t q : neighbors) {
          logits.push_back(CosineSimilarity(
              query, SceneSum(scene_->CategoryOfItem(q), caches)));
        }
        Tensor beta = Softmax(Stack(logits));
        h_item = WeightedSumRows(rows, beta);
      } else {
        // noatt variant, or nosce (no scenes to attend with): uniform.
        h_item = MeanRows(rows);
      }
    }
  }

  // Eq. (12)'s input (or the single surviving view under ablations; the
  // nosce variant keeps only the item-item sub-network).
  if (config_.use_scene && config_.use_item_item) {
    return Concat({h_category, h_item});
  }
  return config_.use_scene ? h_category : h_item;
}

Tensor SceneRec::SceneSpaceItemRepr(int64_t item, StepCaches& caches,
                                    Rng* rng) {
  // Eq. (12) and its ablated forms.
  return scene_fuse_layer().Forward(SceneFuseInput(item, caches, rng));
}

Tensor SceneRec::UserAggSum(int64_t user, Rng* rng) {
  // Eq. (1)'s aggregation: sum of interacted item embeddings.
  std::vector<int64_t> items =
      CapNeighbors(user_item_->ItemsOfUser(user), config_.max_neighbors, rng);
  return items.empty() ? Tensor::Zeros(Shape({config_.embedding_dim}))
                       : SumRows(item_embedding_.LookupMany(items));
}

void SceneRec::AttachUserReprCache(std::shared_ptr<ReprCache> cache,
                                   uint64_t version) {
  if (cache != nullptr) {
    SCENEREC_CHECK_EQ(cache->dim(), config_.embedding_dim);
    // The per-user memo vector and the cache must not fork representations:
    // drop the memos so every eval-mode user repr flows through the cache.
    eval_user_cache_.clear();
  }
  user_repr_cache_ = std::move(cache);
  user_repr_version_ = version;
}

Tensor SceneRec::UserRepr(int64_t user, Rng* rng) {
  const bool eval_mode = NoGradGuard::enabled();
  if (eval_mode && user_repr_cache_ != nullptr) {
    const int64_t d = config_.embedding_dim;
    std::vector<float> row(static_cast<size_t>(d));
    if (user_repr_cache_->Lookup(user, user_repr_version_, row)) {
      return Tensor::FromVector(Shape({d}), std::move(row));
    }
    // Miss: eq. (1) on demand — the identical code path the serial lazy
    // fill below takes, so the inserted row is bitwise equal to a
    // precomputed one (ForwardRows row r == Forward(row r), docs/kernels.md)
    // and cached scores never drift from full warm-up.
    SCENEREC_TRACE_SPAN_F("serve/repr_miss_fill", "serve", trace::Floor::kOp,
                          "user=%lld", static_cast<long long>(user));
    Tensor repr = user_agg_.Forward(UserAggSum(user, rng));
    user_repr_cache_->Insert(
        user, user_repr_version_,
        std::span<const float>(repr.value().data(), static_cast<size_t>(d)));
    return repr;
  }
  if (eval_mode) {
    if (eval_user_cache_.empty()) {
      eval_user_cache_.resize(static_cast<size_t>(user_item_->num_users()));
    }
    if (eval_user_cache_[static_cast<size_t>(user)].defined()) {
      return eval_user_cache_[static_cast<size_t>(user)];
    }
  }
  // Eq. (1).
  Tensor repr = user_agg_.Forward(UserAggSum(user, rng));
  if (eval_mode) eval_user_cache_[static_cast<size_t>(user)] = repr;
  return repr;
}

Tensor SceneRec::UserSpaceSum(int64_t item, Rng* rng) {
  // Eq. (2)'s aggregation: sum of engaged user embeddings.
  std::vector<int64_t> users =
      CapNeighbors(user_item_->UsersOfItem(item), config_.max_neighbors, rng);
  return users.empty() ? Tensor::Zeros(Shape({config_.embedding_dim}))
                       : SumRows(user_embedding_.LookupMany(users));
}

Tensor SceneRec::UserSpaceItemRepr(int64_t item, Rng* rng) {
  // Eq. (2).
  return item_user_agg_.Forward(UserSpaceSum(item, rng));
}

Tensor SceneRec::GeneralItemRepr(int64_t item, StepCaches& caches,
                                 Rng* rng) {
  const bool eval_mode = NoGradGuard::enabled();
  if (eval_mode) {
    if (eval_item_cache_.empty()) {
      eval_item_cache_.resize(static_cast<size_t>(user_item_->num_items()));
    }
    if (eval_item_cache_[static_cast<size_t>(item)].defined()) {
      return eval_item_cache_[static_cast<size_t>(item)];
    }
  }
  // Eq. (13): MLP over the concatenated user-based and scene-based views.
  Tensor user_view = UserSpaceItemRepr(item, rng);
  Tensor scene_view = SceneSpaceItemRepr(item, caches, rng);
  Tensor repr = item_mlp_.Forward(Concat({user_view, scene_view}));
  if (eval_mode) eval_item_cache_[static_cast<size_t>(item)] = repr;
  return repr;
}

Tensor SceneRec::ItemRowsFromParts(const std::vector<Tensor>& user_space_sums,
                                   const std::vector<Tensor>& scene_inputs) {
  // Batched eq. (13): every per-item Linear/MLP runs once over stacked rows.
  Tensor user_view = item_user_agg_.ForwardRows(StackRows(user_space_sums));
  Tensor scene_view = scene_fuse_layer().ForwardRows(StackRows(scene_inputs));
  return item_mlp_.ForwardRows(ConcatCols(user_view, scene_view));
}

Tensor SceneRec::GeneralItemReprRows(std::span<const int64_t> items,
                                     StepCaches& caches, Rng* rng) {
  SCENEREC_CHECK(!items.empty());
  std::vector<Tensor> user_space_sums;
  std::vector<Tensor> scene_inputs;
  user_space_sums.reserve(items.size());
  scene_inputs.reserve(items.size());
  for (int64_t item : items) {
    user_space_sums.push_back(UserSpaceSum(item, rng));
    scene_inputs.push_back(SceneFuseInput(item, caches, rng));
  }
  return ItemRowsFromParts(user_space_sums, scene_inputs);
}

Tensor SceneRec::Rating(const Tensor& user_repr, const Tensor& item_repr) {
  // Eq. (14).
  return Reshape(rating_mlp_.Forward(Concat({user_repr, item_repr})), Shape());
}

Tensor SceneRec::ScoreForTraining(int64_t user, int64_t item) {
  Rng* rng = NoGradGuard::enabled() ? nullptr : &sample_rng_;
  if (rng != nullptr) ClearStepCaches();  // fresh parameters each step
  return Rating(UserRepr(user, rng), GeneralItemRepr(item, step_caches_, rng));
}

Tensor SceneRec::BatchLoss(std::span<const BprTriple> batch) {
  SCENEREC_CHECK(!batch.empty());
  ClearStepCaches();
  return ShardLoss(batch, step_caches_, sample_rng_);
}

void SceneRec::PrepareShards(int64_t num_shards) {
  SCENEREC_CHECK_GE(num_shards, 1);
  shard_caches_.resize(static_cast<size_t>(num_shards));
}

Tensor SceneRec::BatchLossShard(std::span<const BprTriple> shard,
                                int64_t shard_index, Rng& rng) {
  SCENEREC_CHECK_GE(shard_index, 0);
  SCENEREC_CHECK_LT(shard_index, static_cast<int64_t>(shard_caches_.size()))
      << "PrepareShards must size the cache table before the shard loop";
  StepCaches& caches = shard_caches_[static_cast<size_t>(shard_index)];
  caches.Clear();  // fresh parameters each step
  return ShardLoss(shard, caches, rng);
}

Tensor SceneRec::ShardLoss(std::span<const BprTriple> triples,
                           StepCaches& caches, Rng& rng) {
  if (triples.empty()) return Tensor();
  const int64_t n = static_cast<int64_t>(triples.size());
  // Collect the pre-linear aggregation inputs in the same per-triple order
  // as the per-entity loop used to (user, then positive item, then negative
  // item) so the neighbor-sampling RNG stream is unchanged; the Linear/MLP
  // layers then each run once over the stacked rows.
  std::vector<Tensor> user_sums;       // one row per triple
  std::vector<Tensor> item_user_sums;  // pos0, neg0, pos1, neg1, ...
  std::vector<Tensor> scene_inputs;    // same interleaved order
  user_sums.reserve(triples.size());
  item_user_sums.reserve(2 * triples.size());
  scene_inputs.reserve(2 * triples.size());
  for (const BprTriple& triple : triples) {
    user_sums.push_back(UserAggSum(triple.user, &rng));
    for (int64_t item : {triple.positive_item, triple.negative_item}) {
      item_user_sums.push_back(UserSpaceSum(item, &rng));
      scene_inputs.push_back(SceneFuseInput(item, caches, &rng));
    }
  }
  Tensor user_rows = user_agg_.ForwardRows(StackRows(user_sums));  // [n, d]
  Tensor item_rows = ItemRowsFromParts(item_user_sums, scene_inputs);  // [2n,d]
  // Duplicate each user row next to its positive and negative item rows and
  // rate all 2n pairs in one batched eq. (14) forward.
  std::vector<int64_t> user_dup(static_cast<size_t>(2 * n));
  std::vector<int64_t> pos_idx(static_cast<size_t>(n));
  std::vector<int64_t> neg_idx(static_cast<size_t>(n));
  for (int64_t t = 0; t < n; ++t) {
    user_dup[static_cast<size_t>(2 * t)] = t;
    user_dup[static_cast<size_t>(2 * t + 1)] = t;
    pos_idx[static_cast<size_t>(t)] = 2 * t;
    neg_idx[static_cast<size_t>(t)] = 2 * t + 1;
  }
  Tensor scores = rating_mlp_.ForwardRows(
      ConcatCols(GatherRows(user_rows, user_dup), item_rows));  // [2n, 1]
  // Eq. (15): softplus(neg - pos) summed over pairs, in triple order (same
  // accumulation order as the former per-pair Add chain).
  return Sum(Softplus(
      Sub(GatherRows(scores, neg_idx), GatherRows(scores, pos_idx))));
}

bool SceneRec::PrepareParallelScoring(ThreadPool& pool) {
  // Fill every eval memo in dependency order; within a stage each index
  // writes only its own (pre-sized) cache slot, so stages parallelize over
  // disjoint memory. NoGradGuard is thread-local and therefore instantiated
  // inside each worker body.
  if (scene_ != nullptr) {
    const int64_t num_categories = scene_->num_categories();
    if (step_caches_.scene_sum.empty()) {
      step_caches_.scene_sum.resize(static_cast<size_t>(num_categories));
    }
    pool.ParallelFor(num_categories, /*grain=*/16,
                     [this](int64_t begin, int64_t end) {
                       NoGradGuard no_grad;
                       for (int64_t c = begin; c < end; ++c) {
                         SceneSum(c, step_caches_);
                       }
                     });
    if (config_.use_scene) {
      if (step_caches_.category_repr.empty()) {
        step_caches_.category_repr.resize(static_cast<size_t>(num_categories));
      }
      // Each chunk builds its eq. (7) inputs and runs category_fuse_ once as
      // a row-batched GEMM; Row(rows, r) is bitwise equal to the lazy
      // single-category forward, so serial evaluation stays bitwise
      // identical.
      pool.ParallelFor(
          num_categories, /*grain=*/16, [this](int64_t begin, int64_t end) {
            NoGradGuard no_grad;
            std::vector<Tensor> inputs;
            inputs.reserve(static_cast<size_t>(end - begin));
            for (int64_t c = begin; c < end; ++c) {
              inputs.push_back(CategoryFuseInput(c, step_caches_, nullptr));
            }
            Tensor rows = category_fuse_.ForwardRows(StackRows(inputs));
            for (int64_t c = begin; c < end; ++c) {
              step_caches_.category_repr[static_cast<size_t>(c)] =
                  Row(rows, c - begin);
            }
          });
    }
  }
  const int64_t num_items = user_item_->num_items();
  if (eval_item_cache_.empty()) {
    eval_item_cache_.resize(static_cast<size_t>(num_items));
  }
  pool.ParallelFor(
      num_items, /*grain=*/32, [this](int64_t begin, int64_t end) {
        NoGradGuard no_grad;
        std::vector<int64_t> items(static_cast<size_t>(end - begin));
        for (int64_t i = begin; i < end; ++i) {
          items[static_cast<size_t>(i - begin)] = i;
        }
        Tensor rows = GeneralItemReprRows(items, step_caches_, nullptr);
        for (int64_t i = begin; i < end; ++i) {
          eval_item_cache_[static_cast<size_t>(i)] = Row(rows, i - begin);
        }
      });
  // With a demand-paged cache attached the O(users) sweep is skipped
  // entirely — hot swap warm-up is O(items) and user reprs materialize on
  // first touch (docs/serving.md#warmup). Without one, precompute every
  // user so concurrent Score() calls are pure reads.
  if (user_repr_cache_ == nullptr) {
    const int64_t num_users = user_item_->num_users();
    if (eval_user_cache_.empty()) {
      eval_user_cache_.resize(static_cast<size_t>(num_users));
    }
    pool.ParallelFor(
        num_users, /*grain=*/32, [this](int64_t begin, int64_t end) {
          NoGradGuard no_grad;
          std::vector<Tensor> sums;
          sums.reserve(static_cast<size_t>(end - begin));
          for (int64_t u = begin; u < end; ++u) {
            sums.push_back(UserAggSum(u, nullptr));
          }
          Tensor rows = user_agg_.ForwardRows(StackRows(sums));
          for (int64_t u = begin; u < end; ++u) {
            eval_user_cache_[static_cast<size_t>(u)] = Row(rows, u - begin);
          }
        });
  }
  return true;
}

void SceneRec::ScoreBlock(int64_t user, std::span<const int64_t> items,
                          std::span<float> out) {
  SCENEREC_CHECK_EQ(items.size(), out.size());
  if (items.empty()) return;
  NoGradGuard no_grad;
  // Representations come from the eval caches: pre-filled by
  // PrepareParallelScoring (parallel sweeps, pure reads here) or filled
  // lazily on first use (serial sweeps) — the identical code path Score()
  // takes, so cached rows are bitwise-shared between both.
  const Tensor user_repr = UserRepr(user, nullptr);
  const int64_t d = config_.embedding_dim;
  const int64_t rows = static_cast<int64_t>(items.size());
  std::vector<float> xs(static_cast<size_t>(rows * 2 * d));
  const float* urow = user_repr.value().data();
  for (int64_t r = 0; r < rows; ++r) {
    Tensor item_repr =
        GeneralItemRepr(items[static_cast<size_t>(r)], step_caches_, nullptr);
    float* dst = xs.data() + r * 2 * d;
    const float* irow = item_repr.value().data();
    for (int64_t c = 0; c < d; ++c) dst[c] = urow[c];
    for (int64_t c = 0; c < d; ++c) dst[d + c] = irow[c];
  }
  // Eq. (14) once per block: [B, 2d] -> [B, 1] row-batched GEMMs.
  Tensor scores = rating_mlp_.ForwardRows(
      Tensor::FromVector(Shape({rows, 2 * d}), std::move(xs)));
  const float* src = scores.value().data();
  for (int64_t r = 0; r < rows; ++r) out[static_cast<size_t>(r)] = src[r];
}

void SceneRec::ScoreRows(std::span<const int64_t> users,
                         std::span<const int64_t> items,
                         std::span<float> out) {
  SCENEREC_CHECK_EQ(users.size(), items.size());
  SCENEREC_CHECK_EQ(users.size(), out.size());
  if (users.empty()) return;
  NoGradGuard no_grad;
  // Same memoized eval representations as Score()/ScoreBlock — consecutive
  // rows of one request hit the user memo, and under PrepareParallelScoring
  // every lookup is a pure read — gathered across ALL coalesced requests
  // into one [N, 2d] matrix.
  const int64_t d = config_.embedding_dim;
  const int64_t rows = static_cast<int64_t>(users.size());
  std::vector<float> xs(static_cast<size_t>(rows * 2 * d));
  // Rows arrive grouped per request (runs of equal user), so resolve the
  // user repr once per run — with a demand-paged cache attached this is
  // what keeps lookups O(requests), not O(rows).
  int64_t run_user = -1;
  Tensor user_repr;
  for (int64_t r = 0; r < rows; ++r) {
    if (users[static_cast<size_t>(r)] != run_user) {
      run_user = users[static_cast<size_t>(r)];
      user_repr = UserRepr(run_user, nullptr);
    }
    const Tensor item_repr =
        GeneralItemRepr(items[static_cast<size_t>(r)], step_caches_, nullptr);
    float* dst = xs.data() + r * 2 * d;
    const float* urow = user_repr.value().data();
    const float* irow = item_repr.value().data();
    for (int64_t c = 0; c < d; ++c) dst[c] = urow[c];
    for (int64_t c = 0; c < d; ++c) dst[d + c] = irow[c];
  }
  // Eq. (14) once per coalesced batch: [N, 2d] -> [N, 1].
  Tensor scores = rating_mlp_.ForwardRows(
      Tensor::FromVector(Shape({rows, 2 * d}), std::move(xs)));
  const float* src = scores.value().data();
  for (int64_t r = 0; r < rows; ++r) out[static_cast<size_t>(r)] = src[r];
}

RetrievalEmbeddings SceneRec::ExportItemEmbeddings() {
  NoGradGuard no_grad;
  RetrievalEmbeddings out;
  out.num_items = user_item_->num_items();
  out.dim = config_.embedding_dim;
  out.fidelity = RetrievalFidelity::kProxy;
  out.owned_items.resize(static_cast<size_t>(out.num_items * out.dim));
  // Same lazily-filled eval caches as Score()/ScoreBlock, so exporting
  // doubles as a cache warm-up and never forks representations.
  for (int64_t i = 0; i < out.num_items; ++i) {
    Tensor repr = GeneralItemRepr(i, step_caches_, nullptr);
    const float* src = repr.value().data();
    std::copy(src, src + out.dim, out.owned_items.data() + i * out.dim);
  }
  out.items = out.owned_items.data();
  return out;
}

void SceneRec::WriteRetrievalQuery(int64_t user, std::span<float> out) {
  NoGradGuard no_grad;
  SCENEREC_CHECK_EQ(static_cast<int64_t>(out.size()), config_.embedding_dim);
  const Tensor repr = UserRepr(user, nullptr);
  const float* src = repr.value().data();
  std::copy(src, src + config_.embedding_dim, out.begin());
}

float SceneRec::AverageAttentionScore(int64_t user, int64_t item) const {
  if (scene_ == nullptr || !config_.use_scene) return 0.0f;
  auto history = user_item_->ItemsOfUser(user);
  if (history.empty()) return 0.0f;
  NoGradGuard no_grad;
  StepCaches local_caches;  // keeps this const path off the shared memos
  Tensor candidate = SceneSum(scene_->CategoryOfItem(item), local_caches);
  float total = 0.0f;
  int64_t count = 0;
  for (int64_t j : history) {
    if (j == item) continue;
    Tensor other = SceneSum(scene_->CategoryOfItem(j), local_caches);
    total += CosineSimilarity(candidate, other).scalar();
    ++count;
  }
  return count == 0 ? 0.0f : total / static_cast<float>(count);
}

void SceneRec::CollectParameters(std::vector<Tensor>* out) const {
  user_embedding_.CollectParameters(out);
  item_embedding_.CollectParameters(out);
  user_agg_.CollectParameters(out);
  item_user_agg_.CollectParameters(out);
  item_mlp_.CollectParameters(out);
  rating_mlp_.CollectParameters(out);
  if (config_.use_scene) {
    category_embedding_.CollectParameters(out);
    scene_embedding_.CollectParameters(out);
    category_fuse_.CollectParameters(out);
  }
  if (config_.use_scene && config_.use_item_item) {
    out->push_back(item_fuse_.weight());
    out->push_back(item_fuse_.bias());
  } else {
    item_fuse_single_.CollectParameters(out);
  }
  if (!config_.use_scene && config_.use_item_item) {
    // nosce still attends over item neighbors using item embeddings only —
    // no extra parameters beyond the shared tables.
  }
}

}  // namespace scenerec
