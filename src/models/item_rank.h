#ifndef SCENEREC_MODELS_ITEM_RANK_H_
#define SCENEREC_MODELS_ITEM_RANK_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "models/recommender.h"

namespace scenerec {

/// ItemRank (Gori & Pucci, IJCAI 2007) — the random-walk label-propagation
/// baseline the paper cites as an early graph CF method ([5]). Builds an
/// item correlation graph from co-consumption (two items are linked with
/// weight = number of users who interacted with both, here approximated via
/// the bipartite two-hop walk) and scores items for user u with
/// personalized PageRank:
///   r_u = alpha * C_norm r_u + (1 - alpha) * d_u,
/// where d_u is uniform over the user's training items. Training-free.
class ItemRank : public Recommender {
 public:
  /// `graph` must outlive the model. `alpha` is the damping factor (0.85 in
  /// the original paper); `iterations` the power-iteration count.
  ItemRank(const UserItemGraph* graph, double alpha = 0.85,
           int64_t iterations = 20);

  std::string name() const override { return "ItemRank"; }
  Tensor ScoreForTraining(int64_t user, int64_t item) override;
  Tensor BatchLoss(std::span<const BprTriple> batch) override;
  float Score(int64_t user, int64_t item) override;
  void CollectParameters(std::vector<Tensor>* out) const override;

  /// Fills every user's rank vector up front (each worker writes a disjoint
  /// cache slot), after which Score() is a pure read.
  bool PrepareParallelScoring(ThreadPool& pool) override;

  /// A block resolves the user's rank vector ONCE and indexes it per
  /// candidate, instead of re-fetching it per pair.
  bool SupportsBlockScoring() const override { return true; }
  void ScoreBlock(int64_t user, std::span<const int64_t> items,
                  std::span<float> out) override;

 private:
  /// Power iteration for one user; cached.
  const std::vector<float>& RankVector(int64_t user);

  const UserItemGraph* graph_;
  double alpha_;
  int64_t iterations_;
  CsrGraph correlation_;  // item-item co-consumption, row-normalized weights
  std::vector<std::vector<float>> cache_;  // per user, lazily computed
  Tensor dummy_;
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_ITEM_RANK_H_
