#include "models/ncf.h"

#include "tensor/ops.h"

namespace scenerec {

Ncf::Ncf(int64_t num_users, int64_t num_items, int64_t dim, Rng& rng)
    : gmf_user_(num_users, dim, rng),
      gmf_item_(num_items, dim, rng),
      mlp_user_(num_users, dim, rng),
      mlp_item_(num_items, dim, rng),
      tower_({2 * dim, dim, std::max<int64_t>(1, dim / 2)},
             Activation::kRelu, Activation::kRelu, rng),
      fusion_(dim + std::max<int64_t>(1, dim / 2), 1, Activation::kNone,
              rng) {}

Tensor Ncf::ScoreForTraining(int64_t user, int64_t item) {
  // GMF path: elementwise product keeps the MF interaction structure.
  Tensor gmf = Mul(gmf_user_.Lookup(user), gmf_item_.Lookup(item));
  // MLP path: learned non-linear interaction.
  Tensor mlp_in = Concat({mlp_user_.Lookup(user), mlp_item_.Lookup(item)});
  Tensor mlp_out = tower_.Forward(mlp_in);
  Tensor fused = fusion_.Forward(Concat({gmf, mlp_out}));
  return Reshape(fused, Shape());
}

void Ncf::CollectParameters(std::vector<Tensor>* out) const {
  gmf_user_.CollectParameters(out);
  gmf_item_.CollectParameters(out);
  mlp_user_.CollectParameters(out);
  mlp_item_.CollectParameters(out);
  tower_.CollectParameters(out);
  fusion_.CollectParameters(out);
}

}  // namespace scenerec
