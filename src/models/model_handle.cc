#include "models/model_handle.h"

#include <utility>

#include "common/telemetry.h"
#include "common/trace.h"

namespace scenerec {

namespace {
const telemetry::Counter t_swaps =
    telemetry::RegisterCounter("serve/model_swaps");
const telemetry::Counter t_acquires =
    telemetry::RegisterCounter("serve/model_acquires");
}  // namespace

std::shared_ptr<Recommender> ModelHandle::Acquire() const {
  t_acquires.Add();
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::shared_ptr<Recommender> ModelHandle::Publish(
    std::shared_ptr<Recommender> next) {
  SCENEREC_TRACE_SPAN("serve/model_swap", "serve", trace::Floor::kNone);
  std::shared_ptr<Recommender> previous;
  {
    std::lock_guard<std::mutex> lock(mu_);
    previous = std::move(current_);
    current_ = std::move(next);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  t_swaps.Add();
  return previous;
}

std::vector<Recommendation> TopNFromHandle(const ModelHandle& handle,
                                           const UserItemGraph& train_graph,
                                           int64_t user, int64_t n) {
  const std::shared_ptr<Recommender> model = handle.Acquire();
  if (model == nullptr) return {};
  return TopNRecommendations(model->BlockScorer(), train_graph, user, n);
}

}  // namespace scenerec
