#ifndef SCENEREC_MODELS_MODEL_HANDLE_H_
#define SCENEREC_MODELS_MODEL_HANDLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "eval/top_n.h"
#include "graph/bipartite_graph.h"
#include "models/recommender.h"

namespace scenerec {

/// The hot-swap primitive of the serving path (docs/serving.md): a slot
/// holding the currently published model. Request threads Acquire() a
/// shared_ptr and score against it for however long the request takes;
/// Publish() swaps in a replacement without blocking them — in-flight
/// requests finish on the model they acquired, the next Acquire() sees the
/// new one. Neither side ever waits on a request.
///
/// Retirement is drain-based and automatic: the old model dies with its
/// last outstanding shared_ptr, and for a snapshot-bound model
/// (OpenRecommenderFromSnapshot) that destruction releases the parameter
/// pins and unmaps the snapshot file. Publishing therefore also *bounds*
/// resource use — at most the old and new mappings coexist, and only while
/// old readers drain.
class ModelHandle {
 public:
  ModelHandle() = default;
  explicit ModelHandle(std::shared_ptr<Recommender> initial)
      : current_(std::move(initial)) {}

  ModelHandle(const ModelHandle&) = delete;
  ModelHandle& operator=(const ModelHandle&) = delete;

  /// The currently published model (null if nothing published yet). The
  /// returned shared_ptr keeps that model — and its snapshot mapping —
  /// alive for the caller's scoring run even across a concurrent Publish.
  std::shared_ptr<Recommender> Acquire() const;

  /// Publishes `next` (may be null to unpublish) and returns the model it
  /// replaced. Never blocks on readers: the swap is one pointer exchange
  /// under the slot mutex. Callers must finish read-side preparation
  /// (OnEvalBegin / PrepareParallelScoring) BEFORE publishing, so the next
  /// request can score immediately.
  std::shared_ptr<Recommender> Publish(std::shared_ptr<Recommender> next);

  /// Number of Publish() calls; a serving loop can cheaply poll this to
  /// notice that a new version went live.
  uint64_t swap_count() const {
    return swaps_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<Recommender> current_;
  std::atomic<uint64_t> swaps_{0};
};

/// Top-N against whatever model `handle` currently serves. Acquires once,
/// scores the whole catalog on that model (a swap mid-request cannot mix
/// two versions' scores), releases on return. Empty result if the handle
/// has no published model.
std::vector<Recommendation> TopNFromHandle(const ModelHandle& handle,
                                           const UserItemGraph& train_graph,
                                           int64_t user, int64_t n);

}  // namespace scenerec

#endif  // SCENEREC_MODELS_MODEL_HANDLE_H_
