#include "models/kgat.h"

#include <cmath>

#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace scenerec {

Kgat::Kgat(const UserItemGraph* graph, const SceneGraph* scene, int64_t dim,
           int64_t depth, Rng& rng)
    : graph_(BuildKgatGraph(*graph, *scene)),
      dim_(dim),
      depth_(depth),
      embedding_(Tensor::RandomNormal(
          Shape({graph_.propagation.num_nodes(), dim}), 0.1f, rng,
          /*requires_grad=*/true)),
      relation_embedding_(Tensor::RandomNormal(
          Shape({KgatGraph::kNumRelations, dim}), 0.1f, rng,
          /*requires_grad=*/true)),
      kg_rng_(rng.Next64()) {
  SCENEREC_CHECK_GT(depth, 0);
  for (int32_t r = 0; r < KgatGraph::kNumRelations; ++r) {
    relation_w_.push_back(Tensor::XavierUniform(dim, dim, rng));
  }
  for (int64_t l = 0; l < depth; ++l) {
    w1_.push_back(Tensor::XavierUniform(dim, dim, rng));
    w2_.push_back(Tensor::XavierUniform(dim, dim, rng));
  }
  // Collect the KG (item, scene) pairs for TransR sampling.
  for (int64_t i = 0; i < scene->num_items(); ++i) {
    const int64_t item_node = graph_.propagation.ItemNode(i);
    for (int64_t s : scene->ScenesOfItem(i)) {
      kg_triples_.push_back({item_node, graph_.propagation.ExtraNode(s)});
    }
  }
  RefreshAttention();
}

Tensor Kgat::KgEmbeddingLoss(int64_t count) {
  if (kg_triples_.empty()) return Tensor::Scalar(0.0f);
  const PropagationGraph& prop = graph_.propagation;
  Tensor total;
  for (int64_t n = 0; n < count; ++n) {
    // Rotate through all three relations so every W_r / e_r trains.
    const int32_t r = static_cast<int32_t>(n % KgatGraph::kNumRelations);
    int64_t head = 0, tail = 0, bad_tail = 0;
    const auto& [item_node, scene_node] =
        kg_triples_[kg_rng_.NextInt(kg_triples_.size())];
    switch (r) {
      case KgatGraph::kRelationBelongsTo:
        head = item_node;
        tail = scene_node;
        bad_tail = prop.ExtraNode(static_cast<int64_t>(
            kg_rng_.NextInt(static_cast<uint64_t>(prop.num_extra))));
        break;
      case KgatGraph::kRelationIncludes:
        head = scene_node;
        tail = item_node;
        bad_tail = prop.ItemNode(static_cast<int64_t>(
            kg_rng_.NextInt(static_cast<uint64_t>(prop.num_items))));
        break;
      default: {  // kRelationInteract: a user-item edge from the graph
        const int64_t user = static_cast<int64_t>(
            kg_rng_.NextInt(static_cast<uint64_t>(prop.num_users)));
        auto items = prop.adjacency.Neighbors(prop.UserNode(user));
        if (items.empty()) continue;
        head = prop.UserNode(user);
        tail = items[kg_rng_.NextInt(items.size())];
        bad_tail = prop.ItemNode(static_cast<int64_t>(
            kg_rng_.NextInt(static_cast<uint64_t>(prop.num_items))));
        break;
      }
    }
    const Tensor& w_r = relation_w_[static_cast<size_t>(r)];
    Tensor e_r = Reshape(Gather(relation_embedding_, {r}), Shape({dim_}));
    Tensor e_h = Reshape(Gather(embedding_, {head}), Shape({dim_}));
    Tensor e_t = Reshape(Gather(embedding_, {tail}), Shape({dim_}));
    Tensor e_bad = Reshape(Gather(embedding_, {bad_tail}), Shape({dim_}));
    Tensor projected_head = Add(MatVec(w_r, e_h), e_r);
    auto sq_dist = [&](const Tensor& t) {
      Tensor diff = Sub(projected_head, MatVec(w_r, t));
      return Sum(Mul(diff, diff));
    };
    // TransR pairwise objective: observed tail closer than corrupted tail.
    Tensor loss = Softplus(Sub(sq_dist(e_t), sq_dist(e_bad)));
    total = total.defined() ? Add(total, loss) : loss;
  }
  return total.defined() ? total : Tensor::Scalar(0.0f);
}

void Kgat::RefreshAttention() {
  // pi(h, r, t) = (W_r e_t)^T tanh(W_r e_h + e_r), computed on raw values
  // (constants w.r.t. the autograd graph), then softmax over each head's
  // out-edges.
  const CsrGraph& adj = graph_.propagation.adjacency;
  const auto& emb = embedding_.value();
  const auto& rel = relation_embedding_.value();

  // Precompute W_r e_x for every (relation, node) once: O(R * N * d^2),
  // instead of O(E * d^2) per-edge transforms.
  const int64_t num_nodes = adj.num_src();
  std::vector<std::vector<float>> transformed(
      static_cast<size_t>(KgatGraph::kNumRelations));
  for (int32_t r = 0; r < KgatGraph::kNumRelations; ++r) {
    auto& slab = transformed[static_cast<size_t>(r)];
    slab.assign(static_cast<size_t>(num_nodes * dim_), 0.0f);
    const auto& w = relation_w_[static_cast<size_t>(r)].value();
    for (int64_t node = 0; node < num_nodes; ++node) {
      const float* e = emb.data() + node * dim_;
      float* out = slab.data() + node * dim_;
      for (int64_t i = 0; i < dim_; ++i) {
        float acc = 0.0f;
        const float* wrow = w.data() + i * dim_;
        for (int64_t j = 0; j < dim_; ++j) acc += wrow[j] * e[j];
        out[i] = acc;
      }
    }
  }

  auto logits = std::make_shared<std::vector<float>>();
  logits->reserve(static_cast<size_t>(adj.num_edges()));
  size_t edge_index = 0;
  for (int64_t h = 0; h < adj.num_src(); ++h) {
    auto neighbors = adj.Neighbors(h);
    const size_t row_begin = logits->size();
    float row_max = -1e30f;
    for (size_t j = 0; j < neighbors.size(); ++j, ++edge_index) {
      const int32_t r = graph_.edge_relation[edge_index];
      const float* wh = transformed[static_cast<size_t>(r)].data() + h * dim_;
      const float* wt =
          transformed[static_cast<size_t>(r)].data() + neighbors[j] * dim_;
      const float* er = rel.data() + r * dim_;
      float score = 0.0f;
      for (int64_t c = 0; c < dim_; ++c) {
        score += wt[c] * std::tanh(wh[c] + er[c]);
      }
      logits->push_back(score);
      row_max = std::max(row_max, score);
    }
    // Softmax-normalize this head's out-edges in place.
    float denom = 0.0f;
    for (size_t j = row_begin; j < logits->size(); ++j) {
      (*logits)[j] = std::exp((*logits)[j] - row_max);
      denom += (*logits)[j];
    }
    if (denom > 0.0f) {
      for (size_t j = row_begin; j < logits->size(); ++j) {
        (*logits)[j] /= denom;
      }
    }
  }
  attention_ = std::move(logits);
}

std::vector<Tensor> Kgat::Propagate() const {
  std::vector<Tensor> layers;
  layers.reserve(static_cast<size_t>(depth_) + 1);
  layers.push_back(embedding_);
  for (int64_t l = 0; l < depth_; ++l) {
    const Tensor& prev = layers.back();
    Tensor agg = SpMM(&graph_.propagation.adjacency, attention_, prev);
    Tensor sum_term = MatMul(Add(agg, prev), w1_[static_cast<size_t>(l)]);
    Tensor bi_term = MatMul(Mul(agg, prev), w2_[static_cast<size_t>(l)]);
    layers.push_back(LeakyRelu(Add(sum_term, bi_term)));
  }
  return layers;
}

Tensor Kgat::ScoreForTraining(int64_t user, int64_t item) {
  std::vector<Tensor> layers = Propagate();
  Tensor total;
  for (const Tensor& layer : layers) {
    Tensor s = Dot(Row(layer, graph_.propagation.UserNode(user)),
                   Row(layer, graph_.propagation.ItemNode(item)));
    total = total.defined() ? Add(total, s) : s;
  }
  return total;
}

Tensor Kgat::BatchLoss(std::span<const BprTriple> batch) {
  SCENEREC_CHECK(!batch.empty());
  std::vector<Tensor> layers = Propagate();
  Tensor total;
  for (const BprTriple& triple : batch) {
    Tensor pos, neg;
    for (const Tensor& layer : layers) {
      Tensor user_repr = Row(layer, graph_.propagation.UserNode(triple.user));
      Tensor p = Dot(user_repr,
                     Row(layer, graph_.propagation.ItemNode(triple.positive_item)));
      Tensor n = Dot(user_repr,
                     Row(layer, graph_.propagation.ItemNode(triple.negative_item)));
      pos = pos.defined() ? Add(pos, p) : p;
      neg = neg.defined() ? Add(neg, n) : n;
    }
    Tensor loss = BprPairLoss(pos, neg);
    total = total.defined() ? Add(total, loss) : loss;
  }
  // Alternating objective folded into one step: a few TransR triples per
  // batch keep the relation space (and thus the attention) trained.
  const int64_t kg_samples =
      std::max<int64_t>(1, static_cast<int64_t>(batch.size()) / 8);
  total = Add(total, Scale(KgEmbeddingLoss(kg_samples), 0.5f));
  return total;
}

void Kgat::OnEpochBegin() { RefreshAttention(); }

void Kgat::OnEvalBegin() {
  NoGradGuard no_grad;
  std::vector<Tensor> layers = Propagate();
  cached_layers_.clear();
  cached_layers_.reserve(layers.size());
  for (const Tensor& layer : layers) cached_layers_.push_back(layer.value());
}

bool Kgat::PrepareParallelScoring(ThreadPool& pool) {
  (void)pool;  // one full-graph propagation; nothing to fan out
  if (cached_layers_.empty()) OnEvalBegin();
  return true;
}

float Kgat::Score(int64_t user, int64_t item) {
  if (cached_layers_.empty()) OnEvalBegin();
  const int64_t u = graph_.propagation.UserNode(user);
  const int64_t i = graph_.propagation.ItemNode(item);
  // Per-layer fixed-order dots, accumulated layer-major — the exact kernel
  // and order ScoreBlock uses per candidate, so the two are bitwise equal.
  float total = 0.0f;
  for (const auto& layer : cached_layers_) {
    total += kernels::Dot(layer.data() + u * dim_, layer.data() + i * dim_,
                          dim_);
  }
  return total;
}

void Kgat::ScoreBlock(int64_t user, std::span<const int64_t> items,
                      std::span<float> out) {
  SCENEREC_CHECK_EQ(items.size(), out.size());
  if (cached_layers_.empty()) OnEvalBegin();
  const int64_t u = graph_.propagation.UserNode(user);
  for (size_t r = 0; r < items.size(); ++r) {
    const int64_t i = graph_.propagation.ItemNode(items[r]);
    float total = 0.0f;
    for (const auto& layer : cached_layers_) {
      total += kernels::Dot(layer.data() + u * dim_, layer.data() + i * dim_,
                            dim_);
    }
    out[r] = total;
  }
}

RetrievalEmbeddings Kgat::ExportItemEmbeddings() {
  if (cached_layers_.empty()) OnEvalBegin();
  return ExportLayerConcat(cached_layers_, dim_, graph_.propagation.num_items,
                           graph_.propagation.ItemNode(0));
}

void Kgat::WriteRetrievalQuery(int64_t user, std::span<float> out) {
  if (cached_layers_.empty()) OnEvalBegin();
  WriteLayerConcatQuery(cached_layers_, dim_, graph_.propagation.UserNode(user),
                        out);
}

void Kgat::CollectParameters(std::vector<Tensor>* out) const {
  out->push_back(embedding_);
  out->push_back(relation_embedding_);
  for (const Tensor& w : relation_w_) out->push_back(w);
  for (const Tensor& w : w1_) out->push_back(w);
  for (const Tensor& w : w2_) out->push_back(w);
}

}  // namespace scenerec
