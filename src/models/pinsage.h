#ifndef SCENEREC_MODELS_PINSAGE_H_
#define SCENEREC_MODELS_PINSAGE_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "models/recommender.h"
#include "nn/embedding.h"
#include "nn/linear.h"

namespace scenerec {

/// PinSAGE (Ying et al. 2018) applied directly to the user-item bipartite
/// graph, as in the paper's baseline setup. Two GraphSAGE convolutions with
/// neighbor sampling:
///   h_x  = relu(W1 [e_x || mean(e_n : n in sampled N(x))])
///   z_x  = relu(W2 [h_x || mean(h_n : n in sampled N(x))])
///   score(u, i) = z_u . z_i
/// On the bipartite graph, neighbors of a user are items and vice versa, so
/// the convolution alternates sides at each hop.
class PinSage : public Recommender {
 public:
  /// `graph` must outlive the model. `fanout1`/`fanout2` are the sampled
  /// neighbor counts at depth 1 and 2 (PinSAGE's importance pooling is
  /// replaced by uniform sampling — weights are unit in our graphs anyway).
  PinSage(const UserItemGraph* graph, int64_t dim, int64_t fanout1,
          int64_t fanout2, Rng& rng);

  std::string name() const override { return "PinSAGE"; }
  Tensor ScoreForTraining(int64_t user, int64_t item) override;
  void CollectParameters(std::vector<Tensor>* out) const override;

  /// All neighborhood sampling flows through the caller's rng, so shards
  /// are independent; the eval path (rng = nullptr) is stateless.
  Tensor ShardScore(int64_t user, int64_t item, Rng* rng) override;
  bool SupportsShardedLoss() const override { return true; }
  bool PrepareParallelScoring(ThreadPool&) override { return true; }

 private:
  enum class Side { kUser, kItem };

  /// Depth-1 representation of a node (user or item).
  Tensor Hidden(Side side, int64_t id, Rng* rng);
  /// Depth-2 representation.
  Tensor Output(Side side, int64_t id, Rng* rng);

  std::span<const int64_t> NeighborsOf(Side side, int64_t id) const;

  const UserItemGraph* graph_;
  int64_t fanout1_;
  int64_t fanout2_;
  Embedding user_embedding_;
  Embedding item_embedding_;
  Linear conv1_;
  Linear conv2_;
  Rng sample_rng_;
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_PINSAGE_H_
