#ifndef SCENEREC_MODELS_NCF_H_
#define SCENEREC_MODELS_NCF_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "models/recommender.h"
#include "nn/embedding.h"
#include "nn/mlp.h"

namespace scenerec {

/// NCF / NeuMF (He et al. 2017): fuses a generalized matrix factorization
/// path (elementwise product of GMF embeddings) with an MLP path over
/// concatenated MLP embeddings; a final linear layer maps the fused vector
/// to the score. The paper evaluates NCF with d=8 (Section 5.3).
class Ncf : public Recommender {
 public:
  /// `dim` is the embedding size of each path; the MLP tower halves widths
  /// [2d -> d -> d/2].
  Ncf(int64_t num_users, int64_t num_items, int64_t dim, Rng& rng);

  std::string name() const override { return "NCF"; }
  Tensor ScoreForTraining(int64_t user, int64_t item) override;
  void CollectParameters(std::vector<Tensor>* out) const override;

  /// Pure feed-forward over embeddings: no sampling, no mutable caches.
  bool SupportsShardedLoss() const override { return true; }
  bool PrepareParallelScoring(ThreadPool&) override { return true; }

 private:
  Embedding gmf_user_;
  Embedding gmf_item_;
  Embedding mlp_user_;
  Embedding mlp_item_;
  Mlp tower_;
  Linear fusion_;  // [d + d/2] -> 1
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_NCF_H_
