#ifndef SCENEREC_MODELS_ITEM_POP_H_
#define SCENEREC_MODELS_ITEM_POP_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "models/recommender.h"

namespace scenerec {

/// Non-personalized popularity baseline: Score(u, i) = train-set degree of
/// item i. Has no trainable signal — it calibrates how much of a dataset's
/// accuracy is explained by popularity alone, the sanity floor every
/// personalized model must clear.
class ItemPop : public Recommender {
 public:
  /// `graph` is the training interaction graph; must outlive the model.
  explicit ItemPop(const UserItemGraph* graph);

  std::string name() const override { return "ItemPop"; }
  Tensor ScoreForTraining(int64_t user, int64_t item) override;
  Tensor BatchLoss(std::span<const BprTriple> batch) override;
  float Score(int64_t user, int64_t item) override;
  void CollectParameters(std::vector<Tensor>* out) const override;

  /// Score() reads the immutable training graph only.
  bool PrepareParallelScoring(ThreadPool&) override { return true; }

  /// A block is a degree lookup per candidate — trivially batchable.
  bool SupportsBlockScoring() const override { return true; }
  void ScoreBlock(int64_t user, std::span<const int64_t> items,
                  std::span<float> out) override;

  /// Degenerate but exact 1-d export: item embedding = [degree], every
  /// query = [1], so Dot reproduces Score bitwise (deg * 1.0f is exact).
  bool SupportsRetrievalEmbeddings() const override { return true; }
  int64_t RetrievalDim() const override { return 1; }
  RetrievalEmbeddings ExportItemEmbeddings() override;
  void WriteRetrievalQuery(int64_t user, std::span<float> out) override;

 private:
  const UserItemGraph* graph_;
  /// Dummy trainable scalar so the generic trainer (which requires a
  /// differentiable loss) runs; its gradient is always zero.
  Tensor dummy_;
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_ITEM_POP_H_
