#include "models/factory.h"

#include "nn/snapshot.h"

#include "models/bpr_mf.h"
#include "models/cmn.h"
#include "models/gcmc.h"
#include "models/item_pop.h"
#include "models/item_rank.h"
#include "models/kgat.h"
#include "models/kgcn.h"
#include "models/ncf.h"
#include "models/ngcf.h"
#include "models/pinsage.h"
#include "models/scene_rec.h"

namespace scenerec {

StatusOr<std::unique_ptr<Recommender>> MakeRecommender(
    const std::string& name, const ModelContext& context,
    const ModelFactoryConfig& config) {
  if (context.user_item == nullptr) {
    return Status::FailedPrecondition("context.user_item is required");
  }
  Rng rng(config.seed);
  const UserItemGraph* graph = context.user_item;
  const int64_t num_users = graph->num_users();
  const int64_t num_items = graph->num_items();

  if (name == "ItemPop") {
    return std::unique_ptr<Recommender>(new ItemPop(graph));
  }
  if (name == "ItemRank") {
    return std::unique_ptr<Recommender>(new ItemRank(graph));
  }
  if (name == "KGCN") {
    if (context.scene == nullptr) {
      return Status::FailedPrecondition("KGCN needs the scene graph");
    }
    return std::unique_ptr<Recommender>(new Kgcn(
        graph, context.scene, config.embedding_dim, config.max_neighbors,
        rng));
  }
  if (name == "GCMC") {
    return std::unique_ptr<Recommender>(
        new Gcmc(graph, config.embedding_dim, rng));
  }
  if (name == "BPR-MF") {
    return std::unique_ptr<Recommender>(
        new BprMf(num_users, num_items, config.embedding_dim, rng));
  }
  if (name == "NCF") {
    return std::unique_ptr<Recommender>(
        new Ncf(num_users, num_items, config.ncf_dim, rng));
  }
  if (name == "CMN") {
    return std::unique_ptr<Recommender>(
        new Cmn(graph, config.embedding_dim, config.max_neighbors, rng));
  }
  if (name == "PinSAGE") {
    // PinSAGE's per-score cost is fanout1 * fanout2 neighbor convolutions;
    // modest fanouts match the original paper's hard neighborhood caps.
    return std::unique_ptr<Recommender>(
        new PinSage(graph, config.embedding_dim,
                    /*fanout1=*/std::max<int64_t>(2, config.max_neighbors / 4),
                    /*fanout2=*/std::max<int64_t>(4, config.max_neighbors / 2),
                    rng));
  }
  if (name == "NGCF") {
    return std::unique_ptr<Recommender>(
        new Ngcf(graph, config.embedding_dim, config.gnn_depth, rng));
  }
  if (name == "KGAT") {
    if (context.scene == nullptr) {
      return Status::FailedPrecondition("KGAT needs the scene graph");
    }
    return std::unique_ptr<Recommender>(new Kgat(
        graph, context.scene, config.embedding_dim, config.gnn_depth, rng));
  }
  const bool is_scenerec = name == "SceneRec" || name == "SceneRec-noitem" ||
                           name == "SceneRec-nosce" ||
                           name == "SceneRec-noatt";
  if (is_scenerec) {
    if (context.scene == nullptr) {
      return Status::FailedPrecondition(name + " needs the scene graph");
    }
    SceneRecConfig model_config;
    model_config.embedding_dim = config.embedding_dim;
    model_config.max_neighbors = config.max_neighbors;
    model_config.use_item_item = name != "SceneRec-noitem";
    model_config.use_scene = name != "SceneRec-nosce";
    model_config.use_attention = name != "SceneRec-noatt";
    return std::unique_ptr<Recommender>(
        new SceneRec(graph, context.scene, model_config, rng));
  }
  return Status::InvalidArgument("unknown model: " + name);
}

StatusOr<std::unique_ptr<Recommender>> OpenRecommenderFromSnapshot(
    const std::string& path, const ModelContext& context,
    const ModelFactoryConfig& config) {
  SCENEREC_ASSIGN_OR_RETURN(std::shared_ptr<const Snapshot> snapshot,
                            Snapshot::Open(path));
  std::unique_ptr<Recommender> model;
  {
    // Every parameter built inside this scope is about to be rebound to a
    // mapped page, so the random factories skip their fill — construction
    // cost stays independent of table sizes.
    DeferredInitGuard defer;
    SCENEREC_ASSIGN_OR_RETURN(
        model, MakeRecommender(snapshot->tag(), context, config));
  }
  SCENEREC_RETURN_IF_ERROR(BindSnapshot(*model, snapshot));
  // Derived state computed during construction (KGAT's attention
  // coefficients) saw the deferred — zero — parameters; recompute it from
  // the mapped values. The hook is deterministic for every factory model,
  // which keeps snapshot-bound scores bitwise equal to the writer's.
  model->OnEpochBegin();
  return model;
}

std::vector<std::string> Table2ModelNames() {
  return {"BPR-MF",          "NCF",
          "CMN",             "PinSAGE",
          "NGCF",            "KGAT",
          "SceneRec-noitem", "SceneRec-nosce",
          "SceneRec-noatt",  "SceneRec"};
}

}  // namespace scenerec
