#include "models/neighbor_util.h"

#include "common/check.h"

namespace scenerec {

std::vector<int64_t> CapNeighbors(std::span<const int64_t> neighbors,
                                  int64_t cap, Rng* rng) {
  SCENEREC_CHECK_GT(cap, 0);
  const int64_t n = static_cast<int64_t>(neighbors.size());
  if (n <= cap) return {neighbors.begin(), neighbors.end()};
  std::vector<int64_t> result;
  result.reserve(static_cast<size_t>(cap));
  if (rng != nullptr) {
    for (uint64_t index : rng->SampleWithoutReplacement(
             static_cast<uint64_t>(n), static_cast<uint64_t>(cap))) {
      result.push_back(neighbors[static_cast<size_t>(index)]);
    }
  } else {
    // Deterministic, evenly spread subset for reproducible evaluation.
    for (int64_t j = 0; j < cap; ++j) {
      result.push_back(neighbors[static_cast<size_t>(j * n / cap)]);
    }
  }
  return result;
}

}  // namespace scenerec
