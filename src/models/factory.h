#ifndef SCENEREC_MODELS_FACTORY_H_
#define SCENEREC_MODELS_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "models/recommender.h"

namespace scenerec {

/// Shared hyper-parameters for model construction, mirroring Section 5.3:
/// embedding dimension 64 for every method except NCF (8), GNN depth for
/// NGCF/KGAT, and the neighbor cap used by neighborhood models.
struct ModelFactoryConfig {
  int64_t embedding_dim = 64;
  int64_t ncf_dim = 8;
  int64_t gnn_depth = 2;
  int64_t max_neighbors = 20;
  uint64_t seed = 42;
};

/// Builds a model by its Table 2 name. Valid names:
///   "BPR-MF", "NCF", "CMN", "PinSAGE", "NGCF", "KGAT",
///   "SceneRec-noitem", "SceneRec-nosce", "SceneRec-noatt", "SceneRec",
/// plus two extra reference baselines beyond Table 2:
///   "ItemPop" (popularity floor) and "ItemRank" (random-walk CF, ref [5]).
/// `context.scene` is required for KGAT and the SceneRec family.
/// Returns InvalidArgument for unknown names, FailedPrecondition when a
/// required graph is missing.
StatusOr<std::unique_ptr<Recommender>> MakeRecommender(
    const std::string& name, const ModelContext& context,
    const ModelFactoryConfig& config);

/// Opens an SRSNAP1 snapshot (nn/snapshot.h) zero-copy and reconstructs the
/// model it was written from: the snapshot's tag selects the model name,
/// the architecture comes from `context` + `config` (which must match the
/// training-time values), and every parameter is bound in place to the
/// mmap'd pages — no table is read, copied, or RNG-initialized, so opening
/// a multi-gigabyte model costs one mmap plus manifest validation.
///
/// The returned model is inference-only: Score/ScoreBlock/Top-N work as
/// usual (bitwise identical to the model the snapshot was written from),
/// but requesting gradients on its parameters aborts. The snapshot mapping
/// lives exactly as long as the model and is unmapped on destruction — the
/// property ModelHandle's drain-based hot swap relies on.
StatusOr<std::unique_ptr<Recommender>> OpenRecommenderFromSnapshot(
    const std::string& path, const ModelContext& context,
    const ModelFactoryConfig& config);

/// All model names in the row order of Table 2.
std::vector<std::string> Table2ModelNames();

}  // namespace scenerec

#endif  // SCENEREC_MODELS_FACTORY_H_
