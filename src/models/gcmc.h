#ifndef SCENEREC_MODELS_GCMC_H_
#define SCENEREC_MODELS_GCMC_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "models/propagation.h"
#include "models/recommender.h"
#include "nn/linear.h"
#include "tensor/tensor.h"

namespace scenerec {

/// Graph Convolutional Matrix Completion (van den Berg et al. 2017 — the
/// paper's reference [16]) adapted to implicit feedback: one symmetric-
/// normalized graph convolution over the user-item bipartite graph
///   H = relu(W_conv (L E))
/// followed by a dense transform Z = act(W_dense H), scored by the dot
/// product z_u . z_i (the bilinear per-rating decoder of the original
/// reduces to this with a single implicit "rating class").
class Gcmc : public Recommender {
 public:
  /// `graph` must outlive the model.
  Gcmc(const UserItemGraph* graph, int64_t dim, Rng& rng);

  std::string name() const override { return "GCMC"; }
  Tensor ScoreForTraining(int64_t user, int64_t item) override;
  Tensor BatchLoss(std::span<const BprTriple> batch) override;
  float Score(int64_t user, int64_t item) override;
  void OnEvalBegin() override;
  /// After the cache refresh Score() is a pure read of the propagated
  /// layer snapshot, so concurrent scoring is safe.
  bool PrepareParallelScoring(ThreadPool& pool) override;
  void CollectParameters(std::vector<Tensor>* out) const override;

  /// A block is dot products against the cached candidate rows with the
  /// same fixed-order kernel as Score() — bitwise equal per pair.
  bool SupportsBlockScoring() const override { return true; }
  void ScoreBlock(int64_t user, std::span<const int64_t> items,
                  std::span<float> out) override;

  /// Score is z_u . z_i over the cached propagation snapshot; item nodes
  /// occupy a contiguous row block of Z, copied out as the index matrix.
  bool SupportsRetrievalEmbeddings() const override { return true; }
  int64_t RetrievalDim() const override { return dim_; }
  RetrievalEmbeddings ExportItemEmbeddings() override;
  void WriteRetrievalQuery(int64_t user, std::span<float> out) override;

 private:
  /// Full-graph forward: the dense representation matrix Z, [num_nodes, d].
  Tensor Propagate() const;

  PropagationGraph prop_;
  int64_t dim_;
  Tensor embedding_;  // E, [num_nodes, dim]
  Tensor w_conv_;     // [dim, dim]
  Tensor w_dense_;    // [dim, dim]
  std::vector<float> cached_;  // inference snapshot of Z
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_GCMC_H_
