#include "models/bpr_mf.h"

#include <algorithm>

#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace scenerec {

BprMf::BprMf(int64_t num_users, int64_t num_items, int64_t dim, Rng& rng)
    : user_embedding_(num_users, dim, rng),
      item_embedding_(num_items, dim, rng),
      item_bias_(Tensor::Zeros(Shape({num_items, 1}), /*requires_grad=*/true)) {
}

Tensor BprMf::ScoreForTraining(int64_t user, int64_t item) {
  Tensor p = user_embedding_.Lookup(user);
  Tensor q = item_embedding_.Lookup(item);
  Tensor bias = Reshape(Gather(item_bias_, {item}), Shape());
  return Add(Dot(p, q), bias);
}

float BprMf::Score(int64_t user, int64_t item) {
  // Direct dot product on raw tables: no graph construction needed. Uses
  // the same fixed-order kernel as ScoreBlock so the two are bitwise equal
  // (a Gemv against the candidate matrix computes row r via this same Dot).
  const auto& p = user_embedding_.table().value();
  const auto& q = item_embedding_.table().value();
  const int64_t d = user_embedding_.dim();
  const float* prow = p.data() + user * d;
  const float* qrow = q.data() + item * d;
  return item_bias_.value()[static_cast<size_t>(item)] +
         kernels::Dot(prow, qrow, d);
}

void BprMf::ScoreBlock(int64_t user, std::span<const int64_t> items,
                       std::span<float> out) {
  SCENEREC_CHECK_EQ(items.size(), out.size());
  const auto& p = user_embedding_.table().value();
  const auto& q = item_embedding_.table().value();
  const auto& bias = item_bias_.value();
  const int64_t d = user_embedding_.dim();
  const float* prow = p.data() + user * d;
  for (size_t r = 0; r < items.size(); ++r) {
    const int64_t item = items[r];
    out[r] = bias[static_cast<size_t>(item)] +
             kernels::Dot(prow, q.data() + item * d, d);
  }
}

RetrievalEmbeddings BprMf::ExportItemEmbeddings() {
  RetrievalEmbeddings out;
  out.num_items = item_embedding_.vocab();
  out.dim = item_embedding_.dim();
  out.fidelity = RetrievalFidelity::kExactScores;
  out.AdoptItems(item_embedding_.table().value());
  out.AdoptBias(item_bias_.value());  // [num_items, 1] is [num_items] flat
  return out;
}

void BprMf::WriteRetrievalQuery(int64_t user, std::span<float> out) {
  const int64_t d = user_embedding_.dim();
  SCENEREC_CHECK_EQ(static_cast<int64_t>(out.size()), d);
  const float* prow = user_embedding_.table().value().data() + user * d;
  std::copy(prow, prow + d, out.begin());
}

void BprMf::CollectParameters(std::vector<Tensor>* out) const {
  user_embedding_.CollectParameters(out);
  item_embedding_.CollectParameters(out);
  out->push_back(item_bias_);
}

}  // namespace scenerec
