#include "models/bpr_mf.h"

#include "tensor/ops.h"

namespace scenerec {

BprMf::BprMf(int64_t num_users, int64_t num_items, int64_t dim, Rng& rng)
    : user_embedding_(num_users, dim, rng),
      item_embedding_(num_items, dim, rng),
      item_bias_(Tensor::Zeros(Shape({num_items, 1}), /*requires_grad=*/true)) {
}

Tensor BprMf::ScoreForTraining(int64_t user, int64_t item) {
  Tensor p = user_embedding_.Lookup(user);
  Tensor q = item_embedding_.Lookup(item);
  Tensor bias = Reshape(Gather(item_bias_, {item}), Shape());
  return Add(Dot(p, q), bias);
}

float BprMf::Score(int64_t user, int64_t item) {
  // Direct dot product on raw tables: no graph construction needed.
  const auto& p = user_embedding_.table().value();
  const auto& q = item_embedding_.table().value();
  const int64_t d = user_embedding_.dim();
  const float* prow = p.data() + user * d;
  const float* qrow = q.data() + item * d;
  float score = item_bias_.value()[static_cast<size_t>(item)];
  for (int64_t c = 0; c < d; ++c) score += prow[c] * qrow[c];
  return score;
}

void BprMf::CollectParameters(std::vector<Tensor>* out) const {
  user_embedding_.CollectParameters(out);
  item_embedding_.CollectParameters(out);
  out->push_back(item_bias_);
}

}  // namespace scenerec
