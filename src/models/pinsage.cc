#include "models/pinsage.h"

#include "models/neighbor_util.h"
#include "tensor/ops.h"

namespace scenerec {

PinSage::PinSage(const UserItemGraph* graph, int64_t dim, int64_t fanout1,
                 int64_t fanout2, Rng& rng)
    : graph_(graph),
      fanout1_(fanout1),
      fanout2_(fanout2),
      user_embedding_(graph->num_users(), dim, rng),
      item_embedding_(graph->num_items(), dim, rng),
      conv1_(2 * dim, dim, Activation::kRelu, rng),
      conv2_(2 * dim, dim, Activation::kRelu, rng),
      sample_rng_(rng.Next64()) {
  SCENEREC_CHECK(graph != nullptr);
}

std::span<const int64_t> PinSage::NeighborsOf(Side side, int64_t id) const {
  return side == Side::kUser ? graph_->ItemsOfUser(id)
                             : graph_->UsersOfItem(id);
}

Tensor PinSage::Hidden(Side side, int64_t id, Rng* rng) {
  const Embedding& self_table =
      side == Side::kUser ? user_embedding_ : item_embedding_;
  const Embedding& neighbor_table =
      side == Side::kUser ? item_embedding_ : user_embedding_;
  Tensor self = self_table.Lookup(id);
  std::vector<int64_t> sampled =
      CapNeighbors(NeighborsOf(side, id), fanout2_, rng);
  Tensor pooled = sampled.empty()
                      ? Tensor::Zeros(Shape({self_table.dim()}))
                      : MeanRows(neighbor_table.LookupMany(sampled));
  return conv1_.Forward(Concat({self, pooled}));
}

Tensor PinSage::Output(Side side, int64_t id, Rng* rng) {
  const Side other = side == Side::kUser ? Side::kItem : Side::kUser;
  Tensor self_hidden = Hidden(side, id, rng);
  std::vector<int64_t> sampled =
      CapNeighbors(NeighborsOf(side, id), fanout1_, rng);
  Tensor pooled;
  if (sampled.empty()) {
    pooled = Tensor::Zeros(Shape({conv1_.out_dim()}));
  } else {
    std::vector<Tensor> rows;
    rows.reserve(sampled.size());
    for (int64_t n : sampled) rows.push_back(Hidden(other, n, rng));
    pooled = MeanRows(StackRows(rows));
  }
  return conv2_.Forward(Concat({self_hidden, pooled}));
}

Tensor PinSage::ScoreForTraining(int64_t user, int64_t item) {
  return ShardScore(user, item,
                    NoGradGuard::enabled() ? nullptr : &sample_rng_);
}

Tensor PinSage::ShardScore(int64_t user, int64_t item, Rng* rng) {
  Tensor z_u = Output(Side::kUser, user, rng);
  Tensor z_i = Output(Side::kItem, item, rng);
  return Dot(z_u, z_i);
}

void PinSage::CollectParameters(std::vector<Tensor>* out) const {
  user_embedding_.CollectParameters(out);
  item_embedding_.CollectParameters(out);
  conv1_.CollectParameters(out);
  conv2_.CollectParameters(out);
}

}  // namespace scenerec
