#ifndef SCENEREC_MODELS_PROPAGATION_H_
#define SCENEREC_MODELS_PROPAGATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/csr.h"
#include "graph/scene_graph.h"

namespace scenerec {

/// A unified node space with a symmetric adjacency and per-edge
/// normalization coefficients, ready for SpMM-based message passing.
/// Node numbering convention: users first, then items, then (for KGAT)
/// scene entities.
struct PropagationGraph {
  CsrGraph adjacency;
  /// 1 / sqrt(deg(src) * deg(dst)) per CSR edge (the GCN/NGCF symmetric
  /// normalization). Shared so SpMM backward can hold a reference.
  std::shared_ptr<const std::vector<float>> norm_weights;
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_extra = 0;  // scene entities for KGAT, else 0

  int64_t num_nodes() const { return num_users + num_items + num_extra; }
  int64_t UserNode(int64_t user) const { return user; }
  int64_t ItemNode(int64_t item) const { return num_users + item; }
  int64_t ExtraNode(int64_t extra) const {
    return num_users + num_items + extra;
  }
};

/// Unified user-item graph for NGCF: edges are the training interactions in
/// both directions, with symmetric normalization.
PropagationGraph BuildUserItemPropagationGraph(const UserItemGraph& graph);

/// Unified user-item-scene graph for KGAT's degraded scene KG (Section 5.2:
/// "the scene-based graph is degraded to the one that contains only
/// item-scene connections"). An item connects to every scene that contains
/// its category; relation types are returned per edge (0 = user-item
/// interaction, 1 = item "belongs to" scene, 2 = scene "includes" item).
struct KgatGraph {
  PropagationGraph propagation;
  /// Relation id per CSR edge of propagation.adjacency.
  std::vector<int32_t> edge_relation;
  static constexpr int32_t kRelationInteract = 0;
  static constexpr int32_t kRelationBelongsTo = 1;
  static constexpr int32_t kRelationIncludes = 2;
  static constexpr int32_t kNumRelations = 3;
};
KgatGraph BuildKgatGraph(const UserItemGraph& graph, const SceneGraph& scene);

}  // namespace scenerec

#endif  // SCENEREC_MODELS_PROPAGATION_H_
