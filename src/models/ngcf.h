#ifndef SCENEREC_MODELS_NGCF_H_
#define SCENEREC_MODELS_NGCF_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "models/propagation.h"
#include "models/recommender.h"
#include "tensor/tensor.h"

namespace scenerec {

/// NGCF (Wang et al. 2019): embedding propagation over the user-item graph.
/// Layer l computes, with L the symmetrically normalized adjacency,
///   E^(l) = LeakyReLU( (L E^(l-1) + E^(l-1)) W1_l
///                      + (L E^(l-1) ⊙ E^(l-1)) W2_l )
/// and the final representation of a node concatenates all layers; the score
/// is the inner product of user and item representations.
///
/// Training propagates the full graph once per BatchLoss call (so use
/// moderately large batches); evaluation uses representations cached by
/// OnEvalBegin.
class Ngcf : public Recommender {
 public:
  /// `graph` must outlive the model. `depth` is the number of propagation
  /// layers (the paper uses 4; small datasets train faster with 2).
  /// `message_dropout` (the original NGCF's regularizer) randomly drops
  /// propagated messages during training; 0 disables.
  Ngcf(const UserItemGraph* graph, int64_t dim, int64_t depth, Rng& rng,
       float message_dropout = 0.0f);

  std::string name() const override { return "NGCF"; }
  Tensor ScoreForTraining(int64_t user, int64_t item) override;
  Tensor BatchLoss(std::span<const BprTriple> batch) override;
  float Score(int64_t user, int64_t item) override;
  void OnEvalBegin() override;
  /// After the cache refresh Score() is a pure read of the propagated
  /// layer snapshot, so concurrent scoring is safe.
  bool PrepareParallelScoring(ThreadPool& pool) override;
  void CollectParameters(std::vector<Tensor>* out) const override;

  /// A block is per-layer dot products against the cached candidate rows,
  /// layer-major like Score() so the accumulation order (and the result)
  /// is bitwise identical.
  bool SupportsBlockScoring() const override { return true; }
  void ScoreBlock(int64_t user, std::span<const int64_t> items,
                  std::span<float> out) override;

  /// Layer-concat export (see ExportLayerConcat): the concatenated dot
  /// equals the per-layer sum up to float regrouping — kFaithfulRanking.
  bool SupportsRetrievalEmbeddings() const override { return true; }
  int64_t RetrievalDim() const override { return (depth_ + 1) * dim_; }
  RetrievalEmbeddings ExportItemEmbeddings() override;
  void WriteRetrievalQuery(int64_t user, std::span<float> out) override;

  int64_t depth() const { return depth_; }

 protected:
  /// All layer outputs E^(0..depth), differentiable.
  std::vector<Tensor> Propagate() const;

  PropagationGraph prop_;
  int64_t dim_;
  int64_t depth_;
  float message_dropout_;
  mutable Rng dropout_rng_;
  Tensor embedding_;                // E^(0), [num_nodes, dim]
  std::vector<Tensor> w1_;          // per layer, [dim, dim]
  std::vector<Tensor> w2_;
  /// Inference cache: value snapshots of all layers.
  std::vector<std::vector<float>> cached_layers_;
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_NGCF_H_
