#include "models/cmn.h"

#include "models/neighbor_util.h"
#include "tensor/ops.h"

namespace scenerec {

Cmn::Cmn(const UserItemGraph* graph, int64_t dim, int64_t max_neighbors,
         Rng& rng)
    : graph_(graph),
      max_neighbors_(max_neighbors),
      user_memory_(graph->num_users(), dim, rng),
      user_external_(graph->num_users(), dim, rng),
      item_embedding_(graph->num_items(), dim, rng),
      gmf_proj_(dim, dim, Activation::kNone, rng),
      memory_proj_(dim, dim, Activation::kNone, rng),
      output_weight_(Tensor::RandomNormal(Shape({dim}), 0.1f, rng,
                                          /*requires_grad=*/true)),
      sample_rng_(rng.Next64()) {
  SCENEREC_CHECK(graph != nullptr);
}

Tensor Cmn::ScoreForTraining(int64_t user, int64_t item) {
  return ShardScore(user, item,
                    NoGradGuard::enabled() ? nullptr : &sample_rng_);
}

Tensor Cmn::ShardScore(int64_t user, int64_t item, Rng* rng) {
  Tensor m_u = user_memory_.Lookup(user);
  Tensor e_i = item_embedding_.Lookup(item);

  // Neighborhood: users that co-consumed the item, excluding the target user.
  std::vector<int64_t> neighbors;
  for (int64_t v :
       CapNeighbors(graph_->UsersOfItem(item), max_neighbors_ + 1, rng)) {
    if (v != user) neighbors.push_back(v);
    if (static_cast<int64_t>(neighbors.size()) >= max_neighbors_) break;
  }

  Tensor hidden = gmf_proj_.Forward(Mul(m_u, e_i));
  if (!neighbors.empty()) {
    Tensor keys = user_memory_.LookupMany(neighbors);   // [k, d]
    Tensor slots = user_external_.LookupMany(neighbors);  // [k, d]
    // q_v = m_u . m_v + e_i . m_v computed in one MatVec over the keys.
    Tensor logits = Add(MatVec(keys, m_u), MatVec(keys, e_i));
    Tensor alpha = Softmax(logits);
    Tensor o = WeightedSumRows(slots, alpha);
    hidden = Add(hidden, memory_proj_.Forward(o));
  }
  return Dot(output_weight_, Relu(hidden));
}

void Cmn::CollectParameters(std::vector<Tensor>* out) const {
  user_memory_.CollectParameters(out);
  user_external_.CollectParameters(out);
  item_embedding_.CollectParameters(out);
  gmf_proj_.CollectParameters(out);
  memory_proj_.CollectParameters(out);
  out->push_back(output_weight_);
}

}  // namespace scenerec
