#ifndef SCENEREC_MODELS_KGAT_H_
#define SCENEREC_MODELS_KGAT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "models/propagation.h"
#include "models/recommender.h"
#include "tensor/tensor.h"

namespace scenerec {

/// KGAT (Wang et al. 2019) adapted to the scene setting exactly as in the
/// paper's baseline protocol (Section 5.2): the knowledge graph is the
/// degraded scene graph with only item-scene connections (relations
/// "belongs to" / "includes"), merged with the user-item interaction graph
/// into one entity space (users, items, scenes).
///
/// Attention pi(h, r, t) = (W_r e_t)^T tanh(W_r e_h + e_r) is recomputed once
/// per epoch from the current embeddings (KGAT's alternating schedule) and
/// used as constant edge coefficients, softmax-normalized per head entity;
/// propagation then uses the NGCF-style bi-interaction aggregator. The
/// relation parameters (e_r, W_r) are trained by a TransR-style auxiliary
/// loss over sampled item-scene triples added to each batch (a lightweight
/// version of KGAT's alternating KG-embedding objective).
class Kgat : public Recommender {
 public:
  /// Both graphs must outlive the model.
  Kgat(const UserItemGraph* graph, const SceneGraph* scene, int64_t dim,
       int64_t depth, Rng& rng);

  std::string name() const override { return "KGAT"; }
  Tensor ScoreForTraining(int64_t user, int64_t item) override;
  Tensor BatchLoss(std::span<const BprTriple> batch) override;
  float Score(int64_t user, int64_t item) override;
  void OnEpochBegin() override;
  void OnEvalBegin() override;
  /// After the cache refresh Score() is a pure read of the propagated
  /// layer snapshot, so concurrent scoring is safe.
  bool PrepareParallelScoring(ThreadPool& pool) override;
  void CollectParameters(std::vector<Tensor>* out) const override;

  /// A block is per-layer dot products against the cached candidate rows
  /// with the same fixed-order kernel as Score() — bitwise equal per pair.
  bool SupportsBlockScoring() const override { return true; }
  void ScoreBlock(int64_t user, std::span<const int64_t> items,
                  std::span<float> out) override;

  /// Layer-concat export (see ExportLayerConcat): the concatenated dot
  /// equals the per-layer sum up to float regrouping — kFaithfulRanking.
  bool SupportsRetrievalEmbeddings() const override { return true; }
  int64_t RetrievalDim() const override { return (depth_ + 1) * dim_; }
  RetrievalEmbeddings ExportItemEmbeddings() override;
  void WriteRetrievalQuery(int64_t user, std::span<float> out) override;

 private:
  std::vector<Tensor> Propagate() const;
  /// Recomputes softmax-normalized attention coefficients per edge.
  void RefreshAttention();
  /// TransR-style BPR loss over `count` sampled (item, belongs-to, scene)
  /// triples with corrupted tails; trains e_r and W_r.
  Tensor KgEmbeddingLoss(int64_t count);

  KgatGraph graph_;
  int64_t dim_;
  int64_t depth_;
  Tensor embedding_;                 // entity embeddings [num_nodes, dim]
  Tensor relation_embedding_;        // [kNumRelations, dim]
  std::vector<Tensor> relation_w_;   // W_r per relation, [dim, dim]
  std::vector<Tensor> w1_;           // aggregator weights per layer
  std::vector<Tensor> w2_;
  std::shared_ptr<const std::vector<float>> attention_;  // per edge
  std::vector<std::vector<float>> cached_layers_;
  /// (item node, scene node) pairs of the KG part, for TransR sampling.
  std::vector<std::pair<int64_t, int64_t>> kg_triples_;
  Rng kg_rng_;
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_KGAT_H_
