#ifndef SCENEREC_MODELS_NEIGHBOR_UTIL_H_
#define SCENEREC_MODELS_NEIGHBOR_UTIL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"

namespace scenerec {

/// Returns at most `cap` neighbor ids. The paper aggregates all 1-hop
/// neighbors; with 50k-item graphs that makes per-example cost unbounded, so
/// all neighborhood models here cap the aggregation set (a standard
/// GraphSAGE/PinSAGE trick, documented in DESIGN.md). When `rng` is non-null
/// the subset is sampled without replacement (training); when null it is an
/// evenly strided deterministic subset (evaluation).
std::vector<int64_t> CapNeighbors(std::span<const int64_t> neighbors,
                                  int64_t cap, Rng* rng);

}  // namespace scenerec

#endif  // SCENEREC_MODELS_NEIGHBOR_UTIL_H_
