#include "models/item_pop.h"

#include "tensor/ops.h"

namespace scenerec {

ItemPop::ItemPop(const UserItemGraph* graph)
    : graph_(graph),
      dummy_(Tensor::Zeros(Shape({1}), /*requires_grad=*/true)) {
  SCENEREC_CHECK(graph != nullptr);
}

Tensor ItemPop::ScoreForTraining(int64_t user, int64_t item) {
  (void)user;
  return Tensor::Scalar(static_cast<float>(graph_->ItemDegree(item)));
}

Tensor ItemPop::BatchLoss(std::span<const BprTriple> batch) {
  (void)batch;
  // Constant model: zero loss that still "depends" on the dummy parameter so
  // Backward() has a gradient path (with zero gradient).
  return Scale(Reshape(dummy_, Shape()), 0.0f);
}

float ItemPop::Score(int64_t user, int64_t item) {
  (void)user;
  return static_cast<float>(graph_->ItemDegree(item));
}

void ItemPop::ScoreBlock(int64_t user, std::span<const int64_t> items,
                         std::span<float> out) {
  (void)user;
  SCENEREC_CHECK_EQ(items.size(), out.size());
  for (size_t r = 0; r < items.size(); ++r) {
    out[r] = static_cast<float>(graph_->ItemDegree(items[r]));
  }
}

void ItemPop::CollectParameters(std::vector<Tensor>* out) const {
  out->push_back(dummy_);
}

}  // namespace scenerec
