#include "models/item_pop.h"

#include "tensor/ops.h"

namespace scenerec {

ItemPop::ItemPop(const UserItemGraph* graph)
    : graph_(graph),
      dummy_(Tensor::Zeros(Shape({1}), /*requires_grad=*/true)) {
  SCENEREC_CHECK(graph != nullptr);
}

Tensor ItemPop::ScoreForTraining(int64_t user, int64_t item) {
  (void)user;
  return Tensor::Scalar(static_cast<float>(graph_->ItemDegree(item)));
}

Tensor ItemPop::BatchLoss(std::span<const BprTriple> batch) {
  (void)batch;
  // Constant model: zero loss that still "depends" on the dummy parameter so
  // Backward() has a gradient path (with zero gradient).
  return Scale(Reshape(dummy_, Shape()), 0.0f);
}

float ItemPop::Score(int64_t user, int64_t item) {
  (void)user;
  return static_cast<float>(graph_->ItemDegree(item));
}

void ItemPop::ScoreBlock(int64_t user, std::span<const int64_t> items,
                         std::span<float> out) {
  (void)user;
  SCENEREC_CHECK_EQ(items.size(), out.size());
  for (size_t r = 0; r < items.size(); ++r) {
    out[r] = static_cast<float>(graph_->ItemDegree(items[r]));
  }
}

RetrievalEmbeddings ItemPop::ExportItemEmbeddings() {
  RetrievalEmbeddings out;
  out.num_items = graph_->num_items();
  out.dim = 1;
  out.fidelity = RetrievalFidelity::kExactScores;
  out.owned_items.resize(static_cast<size_t>(out.num_items));
  for (int64_t i = 0; i < out.num_items; ++i) {
    out.owned_items[static_cast<size_t>(i)] =
        static_cast<float>(graph_->ItemDegree(i));
  }
  out.items = out.owned_items.data();
  return out;
}

void ItemPop::WriteRetrievalQuery(int64_t user, std::span<float> out) {
  (void)user;
  SCENEREC_CHECK_EQ(out.size(), size_t{1});
  out[0] = 1.0f;
}

void ItemPop::CollectParameters(std::vector<Tensor>* out) const {
  out->push_back(dummy_);
}

}  // namespace scenerec
