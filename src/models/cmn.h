#ifndef SCENEREC_MODELS_CMN_H_
#define SCENEREC_MODELS_CMN_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "models/recommender.h"
#include "nn/embedding.h"
#include "nn/linear.h"

namespace scenerec {

/// Collaborative Memory Network (Ebesu et al. 2018). The memory module
/// attends over the neighborhood of users who co-consumed the target item:
///   q_v   = m_u . m_v + e_i . m_v          (user and item keys)
///   alpha = softmax(q)
///   o     = sum_v alpha_v c_v              (external memory slots)
///   score = v^T relu(U (m_u ⊙ e_i) + W o + b)
/// capturing both the global (GMF-like) and local (neighborhood) structure
/// of the latent factors.
class Cmn : public Recommender {
 public:
  /// `graph` must outlive the model; it supplies IU(i) neighborhoods.
  Cmn(const UserItemGraph* graph, int64_t dim, int64_t max_neighbors,
      Rng& rng);

  std::string name() const override { return "CMN"; }
  Tensor ScoreForTraining(int64_t user, int64_t item) override;
  void CollectParameters(std::vector<Tensor>* out) const override;

  /// All neighborhood sampling flows through the caller's rng, so shards
  /// are independent; the eval path (rng = nullptr) is stateless.
  Tensor ShardScore(int64_t user, int64_t item, Rng* rng) override;
  bool SupportsShardedLoss() const override { return true; }
  bool PrepareParallelScoring(ThreadPool&) override { return true; }

 private:
  const UserItemGraph* graph_;
  int64_t max_neighbors_;
  Embedding user_memory_;     // keys m_v (also the user's own query)
  Embedding user_external_;   // output slots c_v
  Embedding item_embedding_;  // e_i
  Linear gmf_proj_;           // U
  Linear memory_proj_;        // W
  Tensor output_weight_;      // v, [dim]
  Rng sample_rng_;
};

}  // namespace scenerec

#endif  // SCENEREC_MODELS_CMN_H_
