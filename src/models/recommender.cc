#include "models/recommender.h"

#include <algorithm>

#include "common/check.h"
#include "tensor/ops.h"

namespace scenerec {

Tensor Recommender::BatchLoss(std::span<const BprTriple> batch) {
  SCENEREC_CHECK(!batch.empty());
  Tensor total;
  for (const BprTriple& triple : batch) {
    Tensor loss =
        BprPairLoss(ScoreForTraining(triple.user, triple.positive_item),
                    ScoreForTraining(triple.user, triple.negative_item));
    total = total.defined() ? Add(total, loss) : loss;
  }
  return total;
}

Tensor Recommender::BatchLossShard(std::span<const BprTriple> shard,
                                   int64_t shard_index, Rng& rng) {
  (void)shard_index;
  SCENEREC_CHECK(SupportsShardedLoss())
      << name() << " was not audited for sharded training";
  SCENEREC_CHECK(!shard.empty());
  Tensor total;
  for (const BprTriple& triple : shard) {
    Tensor loss =
        BprPairLoss(ShardScore(triple.user, triple.positive_item, &rng),
                    ShardScore(triple.user, triple.negative_item, &rng));
    total = total.defined() ? Add(total, loss) : loss;
  }
  return total;
}

void RetrievalEmbeddings::AdoptItems(const FloatBuffer& buf) {
  if (buf.borrowed() && buf.owner() != nullptr) {
    items = buf.data();
    pin = buf.owner();
  } else {
    owned_items.assign(buf.data(), buf.data() + buf.size());
    items = owned_items.data();
  }
}

void RetrievalEmbeddings::AdoptBias(const FloatBuffer& buf) {
  // Borrow only when the bias shares the items' pin (one snapshot mapping);
  // a second distinct owner would need a second pin slot.
  if (buf.borrowed() && buf.owner() != nullptr &&
      (pin == nullptr || pin == buf.owner())) {
    bias = buf.data();
    if (pin == nullptr) pin = buf.owner();
  } else {
    owned_bias.assign(buf.data(), buf.data() + buf.size());
    bias = owned_bias.data();
  }
}

RetrievalEmbeddings ExportLayerConcat(
    const std::vector<std::vector<float>>& layers, int64_t dim,
    int64_t num_items, int64_t item_node_base) {
  SCENEREC_CHECK(!layers.empty());
  const int64_t out_dim = static_cast<int64_t>(layers.size()) * dim;
  RetrievalEmbeddings out;
  out.num_items = num_items;
  out.dim = out_dim;
  out.fidelity = RetrievalFidelity::kFaithfulRanking;
  out.owned_items.resize(static_cast<size_t>(num_items * out_dim));
  for (int64_t i = 0; i < num_items; ++i) {
    float* row = out.owned_items.data() + i * out_dim;
    for (size_t l = 0; l < layers.size(); ++l) {
      const float* src = layers[l].data() + (item_node_base + i) * dim;
      std::copy(src, src + dim, row + static_cast<int64_t>(l) * dim);
    }
  }
  out.items = out.owned_items.data();
  return out;
}

void WriteLayerConcatQuery(const std::vector<std::vector<float>>& layers,
                           int64_t dim, int64_t node, std::span<float> out) {
  SCENEREC_CHECK_EQ(out.size(), layers.size() * static_cast<size_t>(dim));
  for (size_t l = 0; l < layers.size(); ++l) {
    const float* src = layers[l].data() + node * dim;
    std::copy(src, src + dim,
              out.begin() + static_cast<int64_t>(l) * dim);
  }
}

RetrievalEmbeddings Recommender::ExportItemEmbeddings() {
  SCENEREC_CHECK(false) << name() << " does not export retrieval embeddings";
  return {};
}

void Recommender::WriteRetrievalQuery(int64_t user, std::span<float> out) {
  (void)user;
  (void)out;
  SCENEREC_CHECK(false) << name() << " does not export retrieval embeddings";
}

void Recommender::AttachUserReprCache(std::shared_ptr<ReprCache> cache,
                                      uint64_t version) {
  (void)cache;
  (void)version;
  SCENEREC_CHECK(false) << name() << " does not support a user-repr cache";
}

float Recommender::Score(int64_t user, int64_t item) {
  NoGradGuard no_grad;
  return ScoreForTraining(user, item).scalar();
}

void Recommender::ScoreBlock(int64_t user, std::span<const int64_t> items,
                             std::span<float> out) {
  // Per-pair fallback adapter: correct for every model (out[r] IS
  // Score(user, items[r])), batched for none. Batching models override.
  SCENEREC_CHECK_EQ(items.size(), out.size());
  for (size_t r = 0; r < items.size(); ++r) out[r] = Score(user, items[r]);
}

void Recommender::ScoreRows(std::span<const int64_t> users,
                            std::span<const int64_t> items,
                            std::span<float> out) {
  // Run-splitting fallback: one ScoreBlock per maximal same-user run, so a
  // daemon batch degrades to per-request block scoring (still bitwise equal
  // to Score row by row). Cross-user batching models override.
  SCENEREC_CHECK_EQ(users.size(), items.size());
  SCENEREC_CHECK_EQ(users.size(), out.size());
  size_t start = 0;
  while (start < users.size()) {
    size_t end = start + 1;
    while (end < users.size() && users[end] == users[start]) ++end;
    ScoreBlock(users[start], items.subspan(start, end - start),
               out.subspan(start, end - start));
    start = end;
  }
}

}  // namespace scenerec
