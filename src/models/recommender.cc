#include "models/recommender.h"

#include "tensor/ops.h"

namespace scenerec {

Tensor Recommender::BatchLoss(const std::vector<BprTriple>& batch) {
  SCENEREC_CHECK(!batch.empty());
  Tensor total;
  for (const BprTriple& triple : batch) {
    Tensor loss =
        BprPairLoss(ScoreForTraining(triple.user, triple.positive_item),
                    ScoreForTraining(triple.user, triple.negative_item));
    total = total.defined() ? Add(total, loss) : loss;
  }
  return total;
}

float Recommender::Score(int64_t user, int64_t item) {
  NoGradGuard no_grad;
  return ScoreForTraining(user, item).scalar();
}

}  // namespace scenerec
