#include "models/recommender.h"

#include "common/check.h"
#include "tensor/ops.h"

namespace scenerec {

Tensor Recommender::BatchLoss(std::span<const BprTriple> batch) {
  SCENEREC_CHECK(!batch.empty());
  Tensor total;
  for (const BprTriple& triple : batch) {
    Tensor loss =
        BprPairLoss(ScoreForTraining(triple.user, triple.positive_item),
                    ScoreForTraining(triple.user, triple.negative_item));
    total = total.defined() ? Add(total, loss) : loss;
  }
  return total;
}

Tensor Recommender::BatchLossShard(std::span<const BprTriple> shard,
                                   int64_t shard_index, Rng& rng) {
  (void)shard_index;
  SCENEREC_CHECK(SupportsShardedLoss())
      << name() << " was not audited for sharded training";
  SCENEREC_CHECK(!shard.empty());
  Tensor total;
  for (const BprTriple& triple : shard) {
    Tensor loss =
        BprPairLoss(ShardScore(triple.user, triple.positive_item, &rng),
                    ShardScore(triple.user, triple.negative_item, &rng));
    total = total.defined() ? Add(total, loss) : loss;
  }
  return total;
}

float Recommender::Score(int64_t user, int64_t item) {
  NoGradGuard no_grad;
  return ScoreForTraining(user, item).scalar();
}

void Recommender::ScoreBlock(int64_t user, std::span<const int64_t> items,
                             std::span<float> out) {
  // Per-pair fallback adapter: correct for every model (out[r] IS
  // Score(user, items[r])), batched for none. Batching models override.
  SCENEREC_CHECK_EQ(items.size(), out.size());
  for (size_t r = 0; r < items.size(); ++r) out[r] = Score(user, items[r]);
}

}  // namespace scenerec
