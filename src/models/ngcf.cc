#include "models/ngcf.h"

#include <algorithm>

#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace scenerec {

Ngcf::Ngcf(const UserItemGraph* graph, int64_t dim, int64_t depth, Rng& rng,
           float message_dropout)
    : prop_(BuildUserItemPropagationGraph(*graph)),
      dim_(dim),
      depth_(depth),
      message_dropout_(message_dropout),
      dropout_rng_(rng.Next64()),
      embedding_(Tensor::RandomNormal(Shape({prop_.num_nodes(), dim}), 0.1f,
                                      rng, /*requires_grad=*/true)) {
  SCENEREC_CHECK_GT(depth, 0);
  SCENEREC_CHECK(message_dropout >= 0.0f && message_dropout < 1.0f);
  w1_.reserve(static_cast<size_t>(depth));
  w2_.reserve(static_cast<size_t>(depth));
  for (int64_t l = 0; l < depth; ++l) {
    w1_.push_back(Tensor::XavierUniform(dim, dim, rng));
    w2_.push_back(Tensor::XavierUniform(dim, dim, rng));
  }
}

std::vector<Tensor> Ngcf::Propagate() const {
  std::vector<Tensor> layers;
  layers.reserve(static_cast<size_t>(depth_) + 1);
  layers.push_back(embedding_);
  for (int64_t l = 0; l < depth_; ++l) {
    const Tensor& prev = layers.back();
    Tensor agg = SpMM(&prop_.adjacency, prop_.norm_weights, prev);
    // Message dropout (original NGCF): only during training.
    if (message_dropout_ > 0.0f && !NoGradGuard::enabled()) {
      agg = Dropout(agg, message_dropout_, dropout_rng_);
    }
    Tensor sum_term = MatMul(Add(agg, prev), w1_[static_cast<size_t>(l)]);
    Tensor bi_term = MatMul(Mul(agg, prev), w2_[static_cast<size_t>(l)]);
    layers.push_back(LeakyRelu(Add(sum_term, bi_term)));
  }
  return layers;
}

Tensor Ngcf::ScoreForTraining(int64_t user, int64_t item) {
  // Single-pair path (used by tests and the default Score); BatchLoss is the
  // efficient training entry point.
  std::vector<Tensor> layers = Propagate();
  Tensor total;
  for (const Tensor& layer : layers) {
    Tensor s = Dot(Row(layer, prop_.UserNode(user)),
                   Row(layer, prop_.ItemNode(item)));
    total = total.defined() ? Add(total, s) : s;
  }
  return total;
}

Tensor Ngcf::BatchLoss(std::span<const BprTriple> batch) {
  SCENEREC_CHECK(!batch.empty());
  std::vector<Tensor> layers = Propagate();
  Tensor total;
  for (const BprTriple& triple : batch) {
    Tensor pos, neg;
    for (const Tensor& layer : layers) {
      Tensor user_repr = Row(layer, prop_.UserNode(triple.user));
      Tensor p = Dot(user_repr, Row(layer, prop_.ItemNode(triple.positive_item)));
      Tensor n = Dot(user_repr, Row(layer, prop_.ItemNode(triple.negative_item)));
      pos = pos.defined() ? Add(pos, p) : p;
      neg = neg.defined() ? Add(neg, n) : n;
    }
    Tensor loss = BprPairLoss(pos, neg);
    total = total.defined() ? Add(total, loss) : loss;
  }
  return total;
}

void Ngcf::OnEvalBegin() {
  NoGradGuard no_grad;
  std::vector<Tensor> layers = Propagate();
  cached_layers_.clear();
  cached_layers_.reserve(layers.size());
  for (const Tensor& layer : layers) cached_layers_.push_back(layer.value());
}

bool Ngcf::PrepareParallelScoring(ThreadPool& pool) {
  (void)pool;  // one full-graph propagation; nothing to fan out
  if (cached_layers_.empty()) OnEvalBegin();
  return true;
}

float Ngcf::Score(int64_t user, int64_t item) {
  if (cached_layers_.empty()) OnEvalBegin();
  const int64_t u = prop_.UserNode(user);
  const int64_t i = prop_.ItemNode(item);
  // Per-layer fixed-order dots, accumulated layer-major — the exact kernel
  // and order ScoreBlock uses per candidate, so the two are bitwise equal.
  float total = 0.0f;
  for (const auto& layer : cached_layers_) {
    total += kernels::Dot(layer.data() + u * dim_, layer.data() + i * dim_,
                          dim_);
  }
  return total;
}

void Ngcf::ScoreBlock(int64_t user, std::span<const int64_t> items,
                      std::span<float> out) {
  SCENEREC_CHECK_EQ(items.size(), out.size());
  if (cached_layers_.empty()) OnEvalBegin();
  const int64_t u = prop_.UserNode(user);
  for (size_t r = 0; r < items.size(); ++r) {
    const int64_t i = prop_.ItemNode(items[r]);
    float total = 0.0f;
    for (const auto& layer : cached_layers_) {
      total += kernels::Dot(layer.data() + u * dim_, layer.data() + i * dim_,
                            dim_);
    }
    out[r] = total;
  }
}

RetrievalEmbeddings Ngcf::ExportItemEmbeddings() {
  if (cached_layers_.empty()) OnEvalBegin();
  return ExportLayerConcat(cached_layers_, dim_, prop_.num_items,
                           prop_.ItemNode(0));
}

void Ngcf::WriteRetrievalQuery(int64_t user, std::span<float> out) {
  if (cached_layers_.empty()) OnEvalBegin();
  WriteLayerConcatQuery(cached_layers_, dim_, prop_.UserNode(user), out);
}

void Ngcf::CollectParameters(std::vector<Tensor>* out) const {
  out->push_back(embedding_);
  for (const Tensor& w : w1_) out->push_back(w);
  for (const Tensor& w : w2_) out->push_back(w);
}

}  // namespace scenerec
