#include "models/item_rank.h"

#include <map>

#include "tensor/ops.h"

namespace scenerec {

ItemRank::ItemRank(const UserItemGraph* graph, double alpha,
                   int64_t iterations)
    : graph_(graph),
      alpha_(alpha),
      iterations_(iterations),
      dummy_(Tensor::Zeros(Shape({1}), /*requires_grad=*/true)) {
  SCENEREC_CHECK(graph != nullptr);
  SCENEREC_CHECK(alpha > 0.0 && alpha < 1.0);
  SCENEREC_CHECK_GT(iterations, 0);

  // Item correlation graph: weight(i, j) = #users who consumed both.
  // Built via each user's item list (two-hop walk through the bipartite
  // graph); quadratic in user degree, so degrees are capped.
  constexpr int64_t kMaxDegreeForPairs = 80;
  std::map<std::pair<int64_t, int64_t>, float> counts;
  for (int64_t u = 0; u < graph->num_users(); ++u) {
    auto items = graph->ItemsOfUser(u);
    if (static_cast<int64_t>(items.size()) > kMaxDegreeForPairs) continue;
    for (size_t a = 0; a < items.size(); ++a) {
      for (size_t b = a + 1; b < items.size(); ++b) {
        counts[{items[a], items[b]}] += 1.0f;
        counts[{items[b], items[a]}] += 1.0f;
      }
    }
  }
  std::vector<Edge> edges;
  edges.reserve(counts.size());
  for (const auto& [pair, weight] : counts) {
    edges.push_back({pair.first, pair.second, weight});
  }
  correlation_ =
      CsrGraph::FromEdges(graph->num_items(), graph->num_items(), edges);
  cache_.resize(static_cast<size_t>(graph->num_users()));
}

const std::vector<float>& ItemRank::RankVector(int64_t user) {
  auto& cached = cache_[static_cast<size_t>(user)];
  if (!cached.empty()) return cached;

  const int64_t num_items = graph_->num_items();
  auto train_items = graph_->ItemsOfUser(user);
  std::vector<float> preference(static_cast<size_t>(num_items), 0.0f);
  if (!train_items.empty()) {
    const float mass = 1.0f / static_cast<float>(train_items.size());
    for (int64_t item : train_items) {
      preference[static_cast<size_t>(item)] = mass;
    }
  }
  std::vector<float> rank = preference;
  std::vector<float> next(static_cast<size_t>(num_items), 0.0f);
  for (int64_t iter = 0; iter < iterations_; ++iter) {
    std::fill(next.begin(), next.end(), 0.0f);
    for (int64_t i = 0; i < num_items; ++i) {
      const float r = rank[static_cast<size_t>(i)];
      if (r == 0.0f) continue;
      auto neighbors = correlation_.Neighbors(i);
      auto weights = correlation_.Weights(i);
      float total = 0.0f;
      for (float w : weights) total += w;
      if (total == 0.0f) continue;
      const float scaled = static_cast<float>(alpha_) * r / total;
      for (size_t j = 0; j < neighbors.size(); ++j) {
        next[static_cast<size_t>(neighbors[j])] += scaled * weights[j];
      }
    }
    for (int64_t i = 0; i < num_items; ++i) {
      next[static_cast<size_t>(i)] +=
          (1.0f - static_cast<float>(alpha_)) *
          preference[static_cast<size_t>(i)];
    }
    rank.swap(next);
  }
  cached = std::move(rank);
  return cached;
}

Tensor ItemRank::ScoreForTraining(int64_t user, int64_t item) {
  return Tensor::Scalar(Score(user, item));
}

Tensor ItemRank::BatchLoss(std::span<const BprTriple> batch) {
  (void)batch;
  // Training-free model; see ItemPop for the dummy-gradient rationale.
  return Scale(Reshape(dummy_, Shape()), 0.0f);
}

float ItemRank::Score(int64_t user, int64_t item) {
  return RankVector(user)[static_cast<size_t>(item)];
}

void ItemRank::ScoreBlock(int64_t user, std::span<const int64_t> items,
                          std::span<float> out) {
  SCENEREC_CHECK_EQ(items.size(), out.size());
  const std::vector<float>& ranks = RankVector(user);
  for (size_t r = 0; r < items.size(); ++r) {
    out[r] = ranks[static_cast<size_t>(items[r])];
  }
}

bool ItemRank::PrepareParallelScoring(ThreadPool& pool) {
  pool.ParallelFor(graph_->num_users(), /*grain=*/1,
                   [this](int64_t begin, int64_t end) {
                     for (int64_t u = begin; u < end; ++u) RankVector(u);
                   });
  return true;
}

void ItemRank::CollectParameters(std::vector<Tensor>* out) const {
  out->push_back(dummy_);
}

}  // namespace scenerec
