#include "train/trainer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <optional>
#include <span>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "nn/optimizer.h"
#include "nn/serialization.h"
#include "nn/snapshot.h"
#include "tensor/arena.h"
#include "tensor/ops.h"

namespace scenerec {

Status TrainConfig::Validate() const {
  if (epochs <= 0) return Status::InvalidArgument("epochs must be positive");
  if (batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (learning_rate <= 0.0f) {
    return Status::InvalidArgument("learning_rate must be positive");
  }
  if (weight_decay < 0.0f) {
    return Status::InvalidArgument("weight_decay must be non-negative");
  }
  if (lr_decay <= 0.0f || lr_decay > 1.0f) {
    return Status::InvalidArgument("lr_decay must be in (0, 1]");
  }
  if (eval_k <= 0) return Status::InvalidArgument("eval_k must be positive");
  if (patience < 0) {
    return Status::InvalidArgument("patience must be non-negative");
  }
  if (threads < 0) {
    return Status::InvalidArgument(
        "threads must be non-negative (0 = hardware concurrency)");
  }
  if (!snapshot_dir.empty() && snapshot_retain < 1) {
    return Status::InvalidArgument("snapshot_retain must be at least 1");
  }
  return Status::OK();
}

namespace {

// Trainer telemetry (docs/observability.md). The phase histograms record one
// sample per epoch (the epoch's total time in that phase); shard_skew_pct
// records one sample per sharded batch. train/nonfinite_loss counts aborted
// runs — a non-zero value in a telemetry dump means divergence, not slowness.
const telemetry::Counter t_epochs = telemetry::RegisterCounter("train/epochs");
const telemetry::Counter t_batches =
    telemetry::RegisterCounter("train/batches");
const telemetry::Counter t_triples =
    telemetry::RegisterCounter("train/triples");
const telemetry::Counter t_nonfinite_loss =
    telemetry::RegisterCounter("train/nonfinite_loss");
const telemetry::Histogram t_sampling_ns =
    telemetry::RegisterHistogram("trainer/sampling_ns", "ns");
const telemetry::Histogram t_forward_ns =
    telemetry::RegisterHistogram("trainer/forward_ns", "ns");
const telemetry::Histogram t_backward_ns =
    telemetry::RegisterHistogram("trainer/backward_ns", "ns");
const telemetry::Histogram t_optimizer_ns =
    telemetry::RegisterHistogram("trainer/optimizer_ns", "ns");
const telemetry::Histogram t_eval_ns =
    telemetry::RegisterHistogram("trainer/eval_ns", "ns");
const telemetry::Histogram t_shard_skew =
    telemetry::RegisterHistogram("trainer/shard_skew_pct", "pct");

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Copies current parameter values (for best-epoch model selection).
std::vector<std::vector<float>> SnapshotParameters(
    const std::vector<Tensor>& params) {
  std::vector<std::vector<float>> snapshot;
  snapshot.reserve(params.size());
  for (const Tensor& p : params) snapshot.push_back(p.value());
  return snapshot;
}

void RestoreParameters(std::vector<Tensor>& params,
                       const std::vector<std::vector<float>>& snapshot) {
  SCENEREC_CHECK_EQ(params.size(), snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].mutable_value() = snapshot[i];
  }
}

}  // namespace

StatusOr<TrainResult> TrainAndEvaluate(Recommender& model,
                                       const LeaveOneOutSplit& split,
                                       const UserItemGraph& train_graph,
                                       const TrainConfig& config) {
  SCENEREC_RETURN_IF_ERROR(config.Validate());
  if (split.train.empty()) {
    return Status::FailedPrecondition("empty training set");
  }
  if (config.telemetry) telemetry::Telemetry::SetEnabled(true);
  if (config.trace) trace::Trace::SetEnabled(true);
  // Phase timing only runs when telemetry is on; otherwise the loop below is
  // byte-for-byte the uninstrumented path (instrument is loop-invariant).
  const bool instrument = telemetry::Enabled();

  Rng rng(config.seed);
  BprBatcher batcher(split.train, train_graph);

  // Parallel setup. The pool is created only for a genuinely parallel run:
  // inside another pool's worker (e.g. a parallel grid search) training
  // stays serial, which both avoids oversubscription and keeps nested runs
  // bitwise-deterministic.
  const int64_t num_threads = ResolveThreadCount(config.threads);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1 && !ThreadPool::InWorkerThread()) {
    pool = std::make_unique<ThreadPool>(num_threads);
  }
  const bool shard_training = pool != nullptr && model.SupportsShardedLoss();
  // Each shard samples from its own generator. The shard generators derive
  // from a stream independent of `rng` so that the batcher draws (epoch
  // shuffles, negative samples) are identical in serial and parallel runs —
  // parallelism then changes only model-internal sampling and float
  // summation order.
  std::vector<Rng> shard_rngs;
  if (shard_training) {
    Rng shard_seed_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
    shard_rngs.reserve(static_cast<size_t>(num_threads));
    for (int64_t s = 0; s < num_threads; ++s) {
      shard_rngs.push_back(shard_seed_rng.Split());
    }
  }
  // Below this many triples a shard is not worth its scheduling overhead.
  constexpr int64_t kMinShardTriples = 8;

  std::vector<Tensor> params = model.Parameters();
  OptimizerOptions optimizer_options;
  optimizer_options.learning_rate = config.learning_rate;
  optimizer_options.weight_decay = config.weight_decay;
  optimizer_options.clip_norm = config.clip_norm;
  SCENEREC_ASSIGN_OR_RETURN(
      std::unique_ptr<Optimizer> optimizer,
      MakeOptimizer(config.optimizer, params, optimizer_options));

  TrainResult result;
  std::vector<std::vector<float>> best_snapshot;
  double best_ndcg = -1.0;
  int64_t epochs_since_best = 0;
  // Versioned snapshot publication (one Write per validation improvement).
  // The store lives across epochs so version ids stay monotonic within the
  // run even after pruning.
  std::optional<SnapshotStore> snapshot_store;
  if (!config.snapshot_dir.empty()) {
    snapshot_store.emplace(config.snapshot_dir, config.snapshot_retain);
  }
  Stopwatch stopwatch;

  float current_lr = config.learning_rate;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    SCENEREC_TRACE_SPAN_F("trainer/epoch", "trainer", trace::Floor::kNone,
                          "epoch=%lld", static_cast<long long>(epoch + 1));
    model.OnEpochBegin();
    optimizer->set_learning_rate(current_lr);
    // Per-epoch phase accumulators (ns). Forward/backward are atomics
    // because shard workers add to them; the contended adds happen at most
    // once per shard per batch, far off the kernel hot path.
    uint64_t sampling_ns = 0;
    uint64_t optimizer_ns = 0;
    uint64_t eval_ns = 0;
    std::atomic<uint64_t> forward_ns{0};
    std::atomic<uint64_t> backward_ns{0};
    uint64_t max_skew_pct = 0;

    uint64_t phase_start = instrument ? NowNs() : 0;
    const std::vector<BprTriple> triples = [&] {
      SCENEREC_TRACE_SPAN("trainer/sampling", "trainer", trace::Floor::kNone);
      return batcher.NextEpoch(rng);
    }();
    if (instrument) sampling_ns = NowNs() - phase_start;
    const std::span<const BprTriple> all_triples(triples);
    double loss_sum = 0.0;
    for (size_t begin = 0; begin < triples.size();
         begin += static_cast<size_t>(config.batch_size)) {
      const size_t end = std::min(
          triples.size(), begin + static_cast<size_t>(config.batch_size));
      const std::span<const BprTriple> batch =
          all_triples.subspan(begin, end - begin);
      optimizer->ZeroGrad();
      const int64_t num_shards =
          shard_training
              ? std::min<int64_t>(
                    num_threads,
                    (static_cast<int64_t>(batch.size()) + kMinShardTriples - 1) /
                        kMinShardTriples)
              : 1;
      double batch_loss = 0.0;
      if (num_shards > 1) {
        // Data-parallel step: each shard builds its own forward graph and
        // runs Backward concurrently; accumulation into the shared leaf
        // parameters is serialized per node inside the autograd engine, so
        // after the loop the gradients equal the serial sum of shard
        // gradients (up to float summation order). One optimizer step then
        // applies the combined gradient.
        model.PrepareShards(num_shards);
        std::vector<Tensor> shard_losses(static_cast<size_t>(num_shards));
        std::vector<uint64_t> shard_ns(static_cast<size_t>(num_shards), 0);
        pool->ParallelFor(
            num_shards, /*grain=*/1, [&](int64_t lo, int64_t hi) {
              // Route this lane's forward/backward intermediates through the
              // worker's step arena. The scope resets the arena on entry (not
              // exit), so the shard-loss scalars stay readable after the
              // join below; parameter leaves are heap-backed regardless.
              ArenaScope step_arena;
              for (int64_t s = lo; s < hi; ++s) {
                const size_t shard_begin =
                    batch.size() * static_cast<size_t>(s) /
                    static_cast<size_t>(num_shards);
                const size_t shard_end =
                    batch.size() * static_cast<size_t>(s + 1) /
                    static_cast<size_t>(num_shards);
                const uint64_t t0 = instrument ? NowNs() : 0;
                Tensor loss;
                {
                  SCENEREC_TRACE_SPAN_F("trainer/forward", "trainer",
                                        trace::Floor::kNone, "shard=%lld",
                                        static_cast<long long>(s));
                  loss = model.BatchLossShard(
                      batch.subspan(shard_begin, shard_end - shard_begin), s,
                      shard_rngs[static_cast<size_t>(s)]);
                }
                const uint64_t t1 = instrument ? NowNs() : 0;
                {
                  SCENEREC_TRACE_SPAN_F("trainer/backward", "trainer",
                                        trace::Floor::kNone, "shard=%lld",
                                        static_cast<long long>(s));
                  Backward(loss);
                }
                if (instrument) {
                  const uint64_t t2 = NowNs();
                  forward_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
                  backward_ns.fetch_add(t2 - t1, std::memory_order_relaxed);
                  shard_ns[static_cast<size_t>(s)] = t2 - t0;
                }
                shard_losses[static_cast<size_t>(s)] = loss;
              }
            });
        if (instrument) {
          // Shard imbalance for this step: how much slower the slowest
          // shard was than the fastest, as a percentage of the slowest.
          const auto [lo_it, hi_it] =
              std::minmax_element(shard_ns.begin(), shard_ns.end());
          if (*hi_it > 0) {
            const uint64_t skew = (*hi_it - *lo_it) * 100 / *hi_it;
            t_shard_skew.Record(skew);
            max_skew_pct = std::max(max_skew_pct, skew);
          }
        }
        // Reduce in shard order so the reported loss is scheduling-free.
        for (const Tensor& shard_loss : shard_losses) {
          batch_loss += shard_loss.scalar();
        }
      } else {
        // Serial step: the whole forward graph and every gradient buffer of
        // non-leaf nodes live in this thread's step arena, reclaimed in O(1)
        // when the next step's scope resets it.
        ArenaScope step_arena;
        const uint64_t t0 = instrument ? NowNs() : 0;
        Tensor loss;
        {
          SCENEREC_TRACE_SPAN("trainer/forward", "trainer", trace::Floor::kNone);
          loss = model.BatchLoss(batch);
        }
        const uint64_t t1 = instrument ? NowNs() : 0;
        batch_loss = loss.scalar();
        {
          SCENEREC_TRACE_SPAN("trainer/backward", "trainer",
                              trace::Floor::kNone);
          Backward(loss);
        }
        if (instrument) {
          const uint64_t t2 = NowNs();
          forward_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
          backward_ns.fetch_add(t2 - t1, std::memory_order_relaxed);
        }
      }
      if (!std::isfinite(batch_loss)) {
        // A NaN/Inf loss would otherwise poison the parameters and then
        // sail through model selection (NaN comparisons are all false, so
        // `ndcg > best` never updates and the stale snapshot ships
        // silently). Fail loudly instead.
        t_nonfinite_loss.Add(1);
        SCENEREC_LOG(ERROR) << model.name() << " diverged: non-finite loss "
                            << batch_loss << " in epoch " << epoch + 1
                            << " at triple offset " << begin << "/"
                            << triples.size()
                            << " (lr " << current_lr << ")";
        return Status::Internal("training diverged: non-finite batch loss");
      }
      loss_sum += batch_loss;
      t_batches.Add(1);
      t_triples.Add(batch.size());
      phase_start = instrument ? NowNs() : 0;
      {
        SCENEREC_TRACE_SPAN("trainer/optimizer", "trainer", trace::Floor::kNone);
        optimizer->Step();
      }
      if (instrument) optimizer_ns += NowNs() - phase_start;
    }
    const double mean_loss = loss_sum / static_cast<double>(triples.size());
    result.epoch_losses.push_back(mean_loss);

    model.OnEvalBegin();
    ThreadPool* eval_pool =
        (pool != nullptr && model.PrepareParallelScoring(*pool)) ? pool.get()
                                                                 : nullptr;
    phase_start = instrument ? NowNs() : 0;
    RankingMetrics validation = [&] {
      SCENEREC_TRACE_SPAN("trainer/eval", "trainer", trace::Floor::kNone);
      // Block interface: batching models answer each instance's candidate
      // list with row-batched GEMMs instead of per-pair forwards.
      return EvaluateRanking(model.BlockScorer(), split.validation,
                             config.eval_k, eval_pool);
    }();
    if (instrument) eval_ns = NowNs() - phase_start;
    if (!std::isfinite(validation.ndcg) || !std::isfinite(validation.hr) ||
        !std::isfinite(validation.mrr)) {
      // The evaluator reports NaN when any score was non-finite. Without
      // this check a diverged model is NaN-blind: `ndcg > best_ndcg` is
      // false for NaN, so the run would quietly keep an earlier snapshot
      // (or, before the evaluator fix, even rank the NaN model as perfect).
      t_nonfinite_loss.Add(1);
      SCENEREC_LOG(ERROR) << model.name()
                          << " diverged: non-finite validation metrics in "
                          << "epoch " << epoch + 1 << " (NDCG "
                          << validation.ndcg << ", HR " << validation.hr
                          << ")";
      return Status::Internal(
          "training diverged: non-finite validation metrics");
    }
    result.epoch_validations.push_back(validation);
    if (config.verbose) {
      SCENEREC_LOG(INFO) << model.name() << " epoch " << epoch + 1 << "/"
                         << config.epochs << " loss " << mean_loss
                         << " val NDCG@" << config.eval_k << " "
                         << validation.ndcg << " HR@" << config.eval_k << " "
                         << validation.hr;
    }
    if (instrument) {
      t_epochs.Add(1);
      t_sampling_ns.Record(sampling_ns);
      t_forward_ns.Record(forward_ns.load(std::memory_order_relaxed));
      t_backward_ns.Record(backward_ns.load(std::memory_order_relaxed));
      t_optimizer_ns.Record(optimizer_ns);
      t_eval_ns.Record(eval_ns);
      if (config.verbose) {
        const auto ms = [](uint64_t ns) {
          return static_cast<double>(ns) / 1e6;
        };
        SCENEREC_LOG(INFO)
            << model.name() << " epoch " << epoch + 1 << " phases[ms]"
            << " sample=" << ms(sampling_ns)
            << " fwd=" << ms(forward_ns.load(std::memory_order_relaxed))
            << " bwd=" << ms(backward_ns.load(std::memory_order_relaxed))
            << " opt=" << ms(optimizer_ns) << " eval=" << ms(eval_ns)
            << " max_shard_skew=" << max_skew_pct << "%";
      }
    }
    ++result.epochs_run;
    if (validation.ndcg > best_ndcg) {
      best_ndcg = validation.ndcg;
      result.best_validation = validation;
      result.best_epoch = epoch;
      best_snapshot = SnapshotParameters(params);
      epochs_since_best = 0;
      if (!config.checkpoint_path.empty()) {
        SCENEREC_RETURN_IF_ERROR(
            SaveCheckpoint(model, model.name(), config.checkpoint_path));
      }
      if (snapshot_store.has_value()) {
        SCENEREC_ASSIGN_OR_RETURN(
            const uint64_t version,
            snapshot_store->Write(model, model.name()));
        result.last_snapshot_version = version;
        result.last_snapshot_path = snapshot_store->PathFor(version);
      }
    } else {
      ++epochs_since_best;
      if (config.patience > 0 && epochs_since_best >= config.patience) break;
    }
    current_lr *= config.lr_decay;
  }
  result.train_seconds = stopwatch.ElapsedSeconds();

  // Model selection: evaluate the test set with the best-validation weights.
  if (!best_snapshot.empty()) RestoreParameters(params, best_snapshot);
  model.OnEpochBegin();  // e.g. KGAT attention must match restored weights
  model.OnEvalBegin();
  ThreadPool* test_pool =
      (pool != nullptr && model.PrepareParallelScoring(*pool)) ? pool.get()
                                                               : nullptr;
  result.test = EvaluateRanking(model.BlockScorer(), split.test,
                                config.eval_k, test_pool);
  return result;
}

}  // namespace scenerec
