#include "train/grid_search.h"

#include <memory>
#include <optional>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace scenerec {

StatusOr<GridSearchResult> GridSearch(
    const ModelBuilder& builder, const LeaveOneOutSplit& split,
    const UserItemGraph& train_graph, const TrainConfig& base_config,
    const std::vector<float>& learning_rates,
    const std::vector<float>& weight_decays) {
  if (learning_rates.empty() || weight_decays.empty()) {
    return Status::InvalidArgument("empty grid");
  }

  struct Cell {
    float learning_rate;
    float weight_decay;
  };
  std::vector<Cell> cells;
  cells.reserve(learning_rates.size() * weight_decays.size());
  for (float lr : learning_rates) {
    for (float wd : weight_decays) cells.push_back({lr, wd});
  }

  // Models are built serially, up front: builders usually capture an Rng by
  // reference, so construction order must not depend on thread scheduling.
  // Training the cells is then embarrassingly parallel — each model owns its
  // parameters, and nested TrainAndEvaluate calls detect that they run on a
  // pool worker and stay serial (see ThreadPool reentrancy contract).
  std::vector<std::unique_ptr<Recommender>> models;
  models.reserve(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    models.push_back(builder());
    SCENEREC_CHECK(models.back() != nullptr);
  }

  std::vector<std::optional<TrainResult>> runs(cells.size());
  std::vector<Status> statuses(cells.size(), Status::OK());
  const auto run_cell = [&](int64_t i) {
    const size_t idx = static_cast<size_t>(i);
    TrainConfig config = base_config;
    config.learning_rate = cells[idx].learning_rate;
    config.weight_decay = cells[idx].weight_decay;
    StatusOr<TrainResult> run =
        TrainAndEvaluate(*models[idx], split, train_graph, config);
    if (run.ok()) {
      runs[idx] = std::move(run).value();
    } else {
      statuses[idx] = run.status();
    }
  };

  ThreadPool* pool = DefaultThreadPool();
  if (pool->num_threads() > 1 && !ThreadPool::InWorkerThread()) {
    pool->ParallelFor(static_cast<int64_t>(cells.size()), /*grain=*/1,
                      [&run_cell](int64_t begin, int64_t end) {
                        for (int64_t i = begin; i < end; ++i) run_cell(i);
                      });
  } else {
    for (int64_t i = 0; i < static_cast<int64_t>(cells.size()); ++i) {
      run_cell(i);
    }
  }

  // Deterministic reduction: entries keep grid order and ties on validation
  // NDCG resolve to the earliest cell, exactly as in the serial sweep.
  GridSearchResult result;
  double best_ndcg = -1.0;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (!statuses[i].ok()) return statuses[i];
    GridSearchEntry entry;
    entry.learning_rate = cells[i].learning_rate;
    entry.weight_decay = cells[i].weight_decay;
    entry.validation = runs[i]->best_validation;
    entry.test = runs[i]->test;
    if (base_config.verbose) {
      SCENEREC_LOG(INFO) << "grid lr=" << entry.learning_rate
                         << " wd=" << entry.weight_decay
                         << " val NDCG=" << entry.validation.ndcg;
    }
    if (entry.validation.ndcg > best_ndcg) {
      best_ndcg = entry.validation.ndcg;
      result.best = entry;
    }
    result.entries.push_back(entry);
  }
  return result;
}

}  // namespace scenerec
