#include "train/grid_search.h"

#include "common/logging.h"

namespace scenerec {

StatusOr<GridSearchResult> GridSearch(
    const ModelBuilder& builder, const LeaveOneOutSplit& split,
    const UserItemGraph& train_graph, const TrainConfig& base_config,
    const std::vector<float>& learning_rates,
    const std::vector<float>& weight_decays) {
  if (learning_rates.empty() || weight_decays.empty()) {
    return Status::InvalidArgument("empty grid");
  }
  GridSearchResult result;
  double best_ndcg = -1.0;
  for (float lr : learning_rates) {
    for (float wd : weight_decays) {
      std::unique_ptr<Recommender> model = builder();
      SCENEREC_CHECK(model != nullptr);
      TrainConfig config = base_config;
      config.learning_rate = lr;
      config.weight_decay = wd;
      SCENEREC_ASSIGN_OR_RETURN(
          TrainResult run, TrainAndEvaluate(*model, split, train_graph, config));
      GridSearchEntry entry;
      entry.learning_rate = lr;
      entry.weight_decay = wd;
      entry.validation = run.best_validation;
      entry.test = run.test;
      if (base_config.verbose) {
        SCENEREC_LOG(INFO) << "grid lr=" << lr << " wd=" << wd
                           << " val NDCG=" << entry.validation.ndcg;
      }
      if (entry.validation.ndcg > best_ndcg) {
        best_ndcg = entry.validation.ndcg;
        result.best = entry;
      }
      result.entries.push_back(entry);
    }
  }
  return result;
}

}  // namespace scenerec
