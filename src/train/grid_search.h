#ifndef SCENEREC_TRAIN_GRID_SEARCH_H_
#define SCENEREC_TRAIN_GRID_SEARCH_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "train/trainer.h"

namespace scenerec {

/// One grid-search cell and its validation outcome.
struct GridSearchEntry {
  float learning_rate = 0.0f;
  float weight_decay = 0.0f;
  RankingMetrics validation;
  RankingMetrics test;
};

/// Result of a hyper-parameter sweep: every cell plus the winner (by
/// validation NDCG, as in Section 5.3).
struct GridSearchResult {
  std::vector<GridSearchEntry> entries;
  GridSearchEntry best;
};

/// Builds a fresh model for each grid cell (models cannot be reused across
/// runs because training mutates parameters).
using ModelBuilder = std::function<std::unique_ptr<Recommender>()>;

/// Sweeps learning rate x weight decay, training a fresh model per cell and
/// selecting the best on validation NDCG@K. The paper's grids are
/// lr in {1e-4, 1e-3, 1e-2, 1e-1} and lambda in {0, 1e-6, 1e-4, 1e-2}.
StatusOr<GridSearchResult> GridSearch(
    const ModelBuilder& builder, const LeaveOneOutSplit& split,
    const UserItemGraph& train_graph, const TrainConfig& base_config,
    const std::vector<float>& learning_rates,
    const std::vector<float>& weight_decays);

}  // namespace scenerec

#endif  // SCENEREC_TRAIN_GRID_SEARCH_H_
