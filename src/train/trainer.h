#ifndef SCENEREC_TRAIN_TRAINER_H_
#define SCENEREC_TRAIN_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "data/sampler.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "models/recommender.h"

namespace scenerec {

/// Training-loop hyper-parameters. Defaults follow the paper's protocol
/// (RMSProp, BPR loss, K=10) at CPU-friendly settings.
struct TrainConfig {
  int64_t epochs = 10;
  int64_t batch_size = 128;
  std::string optimizer = "rmsprop";
  float learning_rate = 1e-3f;
  /// The l2 coefficient lambda of eq. (15), applied as weight decay.
  float weight_decay = 1e-6f;
  /// Multiplicative per-epoch learning-rate decay; 1.0 disables. The
  /// effective rate in epoch e is learning_rate * lr_decay^e.
  float lr_decay = 1.0f;
  /// Global gradient-norm clip (0 disables). Stabilizes sum-aggregations.
  float clip_norm = 5.0f;
  /// Ranking cutoff K for HR@K / NDCG@K.
  int64_t eval_k = 10;
  /// Stop after this many epochs without validation-NDCG improvement
  /// (0 disables early stopping).
  int64_t patience = 3;
  /// Worker threads for data-parallel training and evaluation. 1 (default)
  /// is the fully serial, bitwise-reproducible path; 0 means "use every
  /// hardware thread"; N > 1 splits each batch into up to N shards whose
  /// backward passes run concurrently (see docs/parallelism.md — parallel
  /// training is deterministic only up to float summation order).
  int64_t threads = 1;
  uint64_t seed = 42;
  /// Log per-epoch progress via SCENEREC_LOG(INFO).
  bool verbose = false;
  /// Turn on the process-wide telemetry registry for this run (counters,
  /// gauges, phase timers — docs/observability.md) and, with `verbose`, log a
  /// one-line per-epoch phase-time summary. The caller scrapes/dumps the
  /// registry (e.g. via --telemetry[=path.json] in the CLIs).
  bool telemetry = false;
  /// Turn on span tracing for this run (common/trace.h): trainer phases,
  /// per-op autograd spans, kernel calls, and pool chunks are recorded into
  /// per-thread ring buffers. The caller exports the timeline (e.g. via
  /// --trace[=path.json] in the CLIs, Chrome trace-event JSON).
  bool trace = false;
  /// When non-empty, the best-validation parameters are also written to
  /// this checkpoint file (tagged with the model's name) every time the
  /// validation NDCG improves — a crash mid-run loses at most the epochs
  /// since the last improvement.
  std::string checkpoint_path;
  /// When non-empty, every validation improvement also writes a VERSIONED
  /// snapshot (nn/snapshot.h) into this directory through a SnapshotStore:
  /// monotonic version ids, atomic publication, and only the newest
  /// `snapshot_retain` files kept. A serving process can open the latest
  /// version zero-copy (OpenRecommenderFromSnapshot) and hot-swap it in
  /// while this run is still training — see docs/serving.md.
  std::string snapshot_dir;
  /// How many snapshot versions to keep in `snapshot_dir` (>= 1).
  int64_t snapshot_retain = 3;

  Status Validate() const;
};

/// Outcome of one training run. Test metrics are measured with the
/// parameters restored from the best validation epoch (model selection on
/// the validation set, Section 5.3).
struct TrainResult {
  RankingMetrics best_validation;
  RankingMetrics test;
  std::vector<double> epoch_losses;  // mean BPR loss per triple, per epoch
  /// Validation metrics after each epoch — the model's learning curve.
  std::vector<RankingMetrics> epoch_validations;
  int64_t best_epoch = -1;
  int64_t epochs_run = 0;
  double train_seconds = 0.0;
  /// Path and version of the newest snapshot written via
  /// TrainConfig::snapshot_dir; empty / 0 when snapshotting is off or no
  /// epoch improved validation.
  std::string last_snapshot_path;
  uint64_t last_snapshot_version = 0;
};

/// Trains `model` on `split.train` (negatives drawn from `train_graph`) and
/// evaluates on validation after every epoch and on test at the end.
/// The model's parameters are left at the best-validation snapshot.
StatusOr<TrainResult> TrainAndEvaluate(Recommender& model,
                                       const LeaveOneOutSplit& split,
                                       const UserItemGraph& train_graph,
                                       const TrainConfig& config);

}  // namespace scenerec

#endif  // SCENEREC_TRAIN_TRAINER_H_
