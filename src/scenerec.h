#ifndef SCENEREC_SCENEREC_H_
#define SCENEREC_SCENEREC_H_

/// Umbrella header: the public API of the scenerec library.
///
/// Typical flow (see examples/quickstart.cpp for a runnable version):
///   1. data:   GenerateSyntheticDataset / LoadDatasetTsv -> Dataset
///   2. split:  MakeLeaveOneOutSplit -> train / validation / test
///   3. graphs: UserItemGraph::Build + Dataset::BuildSceneGraph
///   4. model:  SceneRec (or MakeRecommender for any baseline)
///   5. train:  TrainAndEvaluate (BPR + RMSProp, eq. 15)
///   6. serve:  Recommender::Score / TopNRecommendations
///   7. persist: SaveCheckpoint / LoadCheckpoint

#include "common/flags.h"
#include "common/logging.h"
#include "common/malloc_tuning.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/status_or.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "data/scene_mining.h"
#include "data/sessions.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tsv_io.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/top_n.h"
#include "graph/bipartite_graph.h"
#include "graph/csr.h"
#include "graph/scene_graph.h"
#include "graph/stats.h"
#include "models/factory.h"
#include "models/recommender.h"
#include "models/scene_rec.h"
#include "nn/serialization.h"
#include "train/grid_search.h"
#include "train/trainer.h"

#endif  // SCENEREC_SCENEREC_H_
