#include "nn/param_table.h"

#include <utility>

namespace scenerec {

DenseParamTable::DenseParamTable(int64_t vocab, int64_t dim, Rng& rng,
                                 float stddev)
    : table_(Tensor::RandomNormal(Shape({vocab, dim}), stddev, rng,
                                  /*requires_grad=*/true)) {}

MappedParamTable::MappedParamTable(Tensor view) : table_(std::move(view)) {
  SCENEREC_CHECK(table_.defined());
  SCENEREC_CHECK_EQ(table_.shape().rank(), 2);
  SCENEREC_CHECK(table_.borrowed())
      << "MappedParamTable needs a borrowed (snapshot-backed) tensor";
}

}  // namespace scenerec
