#ifndef SCENEREC_NN_PARAM_TABLE_H_
#define SCENEREC_NN_PARAM_TABLE_H_

#include <cstdint>
#include <memory>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace scenerec {

/// Storage backend for an Embedding's [vocab, dim] table. Two backends
/// exist: DenseParamTable owns a trainable in-RAM tensor (the training
/// path), MappedParamTable wraps a read-only borrowed view of an mmap'd
/// snapshot page (the zero-copy serving path, see nn/snapshot.h). Backends
/// are shared between Embedding instances — a moved Embedding shares its
/// source's backend — so the handle an optimizer collected stays bound to
/// the storage being trained no matter how the owning model is relocated.
class ParamTable {
 public:
  virtual ~ParamTable() = default;

  /// The [vocab, dim] table tensor. The handle is stable for the backend's
  /// lifetime (BindSnapshot may rebind its storage in place).
  virtual const Tensor& table() const = 0;

  /// False for read-only (file-backed) backends.
  virtual bool trainable() const = 0;

  int64_t vocab() const { return table().shape().dim(0); }
  int64_t dim() const { return table().shape().dim(1); }
};

/// In-RAM trainable backend: rows initialized i.i.d. N(0, stddev^2),
/// requires_grad set, sparse gradients via Tensor::touched_rows().
class DenseParamTable : public ParamTable {
 public:
  DenseParamTable(int64_t vocab, int64_t dim, Rng& rng, float stddev);

  const Tensor& table() const override { return table_; }
  bool trainable() const override { return true; }

 private:
  Tensor table_;
};

/// Read-only file-backed backend over a borrowed [vocab, dim] tensor
/// (typically Snapshot::View). The view pins its snapshot's mapping, so the
/// backing file stays mapped for this backend's lifetime. Lookups are
/// zero-copy reads of the mapped page; gradients are forbidden.
class MappedParamTable : public ParamTable {
 public:
  /// `view` must be rank-2 and borrowed (view external read-only memory).
  explicit MappedParamTable(Tensor view);

  const Tensor& table() const override { return table_; }
  bool trainable() const override { return false; }

 private:
  Tensor table_;
};

}  // namespace scenerec

#endif  // SCENEREC_NN_PARAM_TABLE_H_
