#include "nn/serialization.h"

#include <cstdint>
#include <fstream>

#include "common/string_util.h"

namespace scenerec {

namespace {
constexpr char kMagic[] = "SRCKPT1\n";

Status WriteInt64(std::ofstream& out, int64_t value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
  if (!out) return Status::IOError("write failed");
  return Status::OK();
}

StatusOr<int64_t> ReadInt64(std::ifstream& in) {
  int64_t value = 0;
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  if (!in) return Status::IOError("unexpected end of checkpoint");
  return value;
}
}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& tag,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(kMagic, sizeof(kMagic) - 1);
  out << tag << '\n';
  const std::vector<Tensor> params = module.Parameters();
  SCENEREC_RETURN_IF_ERROR(
      WriteInt64(out, static_cast<int64_t>(params.size())));
  for (const Tensor& p : params) {
    SCENEREC_RETURN_IF_ERROR(WriteInt64(out, p.shape().rank()));
    for (int64_t d : p.shape().dims()) {
      SCENEREC_RETURN_IF_ERROR(WriteInt64(out, d));
    }
    const auto& values = p.value();
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(float)));
    if (!out) return Status::IOError("write failed for " + path);
  }
  out.close();
  if (!out) return Status::IOError("close failed for " + path);
  return Status::OK();
}

Status LoadCheckpoint(Module& module, const std::string& tag,
                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[sizeof(kMagic) - 1];
  in.read(magic, sizeof(magic));
  if (!in || std::string_view(magic, sizeof(magic)) !=
                 std::string_view(kMagic, sizeof(magic))) {
    return Status::InvalidArgument(path + " is not a scenerec checkpoint");
  }
  std::string stored_tag;
  if (!std::getline(in, stored_tag)) {
    return Status::IOError("unexpected end of checkpoint");
  }
  if (stored_tag != tag) {
    return Status::FailedPrecondition(
        StrFormat("checkpoint tag mismatch: stored \"%s\", expected \"%s\"",
                  stored_tag.c_str(), tag.c_str()));
  }
  SCENEREC_ASSIGN_OR_RETURN(int64_t count, ReadInt64(in));
  std::vector<Tensor> params = module.Parameters();
  if (count != static_cast<int64_t>(params.size())) {
    return Status::FailedPrecondition(
        StrFormat("checkpoint has %lld parameters, module has %zu",
                  static_cast<long long>(count), params.size()));
  }
  for (Tensor& p : params) {
    SCENEREC_ASSIGN_OR_RETURN(int64_t rank, ReadInt64(in));
    std::vector<int64_t> dims;
    dims.reserve(static_cast<size_t>(rank));
    for (int64_t d = 0; d < rank; ++d) {
      SCENEREC_ASSIGN_OR_RETURN(int64_t dim, ReadInt64(in));
      dims.push_back(dim);
    }
    const Shape stored_shape(std::move(dims));
    if (stored_shape != p.shape()) {
      return Status::FailedPrecondition(
          "checkpoint shape " + stored_shape.ToString() +
          " does not match parameter shape " + p.shape().ToString());
    }
    auto& values = p.mutable_value();
    in.read(reinterpret_cast<char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(float)));
    if (!in) return Status::IOError("unexpected end of checkpoint");
  }
  return Status::OK();
}

}  // namespace scenerec
