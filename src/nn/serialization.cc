#include "nn/serialization.h"

#include <cstring>
#include <memory>

#include "common/string_util.h"
#include "nn/snapshot.h"

namespace scenerec {

Status SaveCheckpoint(const Module& module, const std::string& tag,
                      const std::string& path) {
  return WriteSnapshot(module, tag, /*version=*/0, path);
}

Status LoadCheckpoint(Module& module, const std::string& tag,
                      const std::string& path) {
  SCENEREC_ASSIGN_OR_RETURN(std::shared_ptr<const Snapshot> snapshot,
                            Snapshot::Open(path));
  if (snapshot->tag() != tag) {
    return Status::FailedPrecondition(
        StrFormat("checkpoint tag mismatch in %s: stored \"%s\", expected "
                  "\"%s\"",
                  path.c_str(), snapshot->tag().c_str(), tag.c_str()));
  }
  std::vector<Tensor> params = module.Parameters();
  const auto& entries = snapshot->tensors();
  if (entries.size() != params.size()) {
    return Status::FailedPrecondition(
        StrFormat("checkpoint %s has %zu parameters, module has %zu",
                  path.c_str(), entries.size(), params.size()));
  }
  // Validate everything before copying anything, so a mismatch never leaves
  // the module half-restored.
  for (size_t i = 0; i < params.size(); ++i) {
    if (!(entries[i].shape == params[i].shape())) {
      return Status::FailedPrecondition(StrFormat(
          "tensor %zu shape mismatch in %s: checkpoint has %s, parameter "
          "expects %s",
          i, path.c_str(), entries[i].shape.ToString().c_str(),
          params[i].shape().ToString().c_str()));
    }
    if (params[i].borrowed()) {
      return Status::FailedPrecondition(StrFormat(
          "tensor %zu of the module is a read-only mapped parameter; "
          "LoadCheckpoint(%s) needs trainable storage (use "
          "BindSnapshot/OpenRecommenderFromSnapshot for serving)",
          i, path.c_str()));
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    FloatBuffer& values = params[i].mutable_value();
    std::memcpy(values.data(), snapshot->data(i),
                values.size() * sizeof(float));
  }
  return Status::OK();
}

}  // namespace scenerec
