#include "nn/embedding.h"

#include "tensor/ops.h"

namespace scenerec {

Embedding::Embedding(int64_t vocab, int64_t dim, Rng& rng, float stddev)
    : vocab_(vocab),
      dim_(dim),
      table_(Tensor::RandomNormal(Shape({vocab, dim}), stddev, rng,
                                  /*requires_grad=*/true)) {}

Tensor Embedding::Lookup(int64_t id) const {
  return Reshape(Gather(table_, {id}), Shape({dim_}));
}

Tensor Embedding::LookupMany(const std::vector<int64_t>& ids) const {
  return Gather(table_, ids);
}

void Embedding::CollectParameters(std::vector<Tensor>* out) const {
  out->push_back(table_);
}

}  // namespace scenerec
