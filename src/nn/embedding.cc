#include "nn/embedding.h"

#include "tensor/ops.h"

namespace scenerec {

Embedding::Embedding(int64_t vocab, int64_t dim, Rng& rng, float stddev)
    : vocab_(vocab),
      dim_(dim),
      table_(std::make_shared<DenseParamTable>(vocab, dim, rng, stddev)) {}

Embedding::Embedding(std::shared_ptr<ParamTable> table)
    : vocab_(table->vocab()), dim_(table->dim()), table_(std::move(table)) {}

Embedding::Embedding(Embedding&& other) noexcept
    : vocab_(other.vocab_), dim_(other.dim_), table_(other.table_) {}

Embedding& Embedding::operator=(Embedding&& other) noexcept {
  vocab_ = other.vocab_;
  dim_ = other.dim_;
  table_ = other.table_;
  return *this;
}

Tensor Embedding::Lookup(int64_t id) const {
  return Reshape(Gather(table_->table(), {id}), Shape({dim_}));
}

Tensor Embedding::LookupMany(const std::vector<int64_t>& ids) const {
  return Gather(table_->table(), ids);
}

void Embedding::CollectParameters(std::vector<Tensor>* out) const {
  out->push_back(table_->table());
}

}  // namespace scenerec
