#ifndef SCENEREC_NN_ACTIVATION_H_
#define SCENEREC_NN_ACTIVATION_H_

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace scenerec {

/// Nonlinearity selector used by Linear and Mlp. The paper's sigma is a
/// generic nonlinear activation; we default to LeakyReLU which trains
/// stably on all models here, and keep the rest selectable for ablations.
enum class Activation {
  kNone,
  kSigmoid,
  kTanh,
  kRelu,
  kLeakyRelu,
};

/// Applies `activation` to `x`.
inline Tensor ApplyActivation(Activation activation, const Tensor& x) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kRelu:
      return Relu(x);
    case Activation::kLeakyRelu:
      return LeakyRelu(x);
  }
  return x;
}

/// Human-readable activation name for logs and configs.
inline const char* ActivationName(Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return "none";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kTanh:
      return "tanh";
    case Activation::kRelu:
      return "relu";
    case Activation::kLeakyRelu:
      return "leaky_relu";
  }
  return "?";
}

}  // namespace scenerec

#endif  // SCENEREC_NN_ACTIVATION_H_
