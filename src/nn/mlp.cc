#include "nn/mlp.h"

#include "common/check.h"

namespace scenerec {

Mlp::Mlp(const std::vector<int64_t>& dims, Activation hidden_activation,
         Activation output_activation, Rng& rng) {
  SCENEREC_CHECK_GE(dims.size(), 2u);
  layers_.reserve(dims.size() - 1);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    const bool last = (i + 2 == dims.size());
    layers_.emplace_back(dims[i], dims[i + 1],
                         last ? output_activation : hidden_activation, rng);
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (const Linear& layer : layers_) h = layer.Forward(h);
  return h;
}

Tensor Mlp::ForwardRows(const Tensor& xs) const {
  Tensor h = xs;
  for (const Linear& layer : layers_) h = layer.ForwardRows(h);
  return h;
}

void Mlp::CollectParameters(std::vector<Tensor>* out) const {
  for (const Linear& layer : layers_) layer.CollectParameters(out);
}

}  // namespace scenerec
