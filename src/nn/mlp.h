#ifndef SCENEREC_NN_MLP_H_
#define SCENEREC_NN_MLP_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"

namespace scenerec {

/// Multilayer perceptron: a stack of Linear layers. Hidden layers use
/// `hidden_activation`; the output layer uses `output_activation`.
/// This is the F(.) network of equations (13) and (14).
class Mlp : public Module {
 public:
  /// `dims` lists layer widths including input and output, e.g.
  /// {128, 64, 1} builds 128->64->1. Requires at least two entries.
  Mlp(const std::vector<int64_t>& dims, Activation hidden_activation,
      Activation output_activation, Rng& rng);

  Mlp(const Mlp&) = delete;
  Mlp& operator=(const Mlp&) = delete;
  Mlp(Mlp&&) = default;
  Mlp& operator=(Mlp&&) = default;

  /// Applies the stack to a rank-1 input of length dims.front().
  Tensor Forward(const Tensor& x) const;

  /// Applies the stack to every row of xs [R, dims.front()] ->
  /// [R, dims.back()]. Row r is bitwise equal to Forward(Row(xs, r)).
  Tensor ForwardRows(const Tensor& xs) const;

  void CollectParameters(std::vector<Tensor>* out) const override;

  int64_t in_dim() const { return layers_.front().in_dim(); }
  int64_t out_dim() const { return layers_.back().out_dim(); }
  size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<Linear> layers_;
};

}  // namespace scenerec

#endif  // SCENEREC_NN_MLP_H_
