#include "nn/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace scenerec {

namespace {

// Snapshot telemetry (docs/observability.md): one count + latency sample per
// write/open, bytes as a counter so throughput falls out of a scrape delta.
const telemetry::Counter t_writes =
    telemetry::RegisterCounter("snapshot/writes");
const telemetry::Counter t_write_bytes =
    telemetry::RegisterCounter("snapshot/write_bytes");
const telemetry::Counter t_opens = telemetry::RegisterCounter("snapshot/opens");
const telemetry::Counter t_binds = telemetry::RegisterCounter("snapshot/binds");
const telemetry::Counter t_prune_failures =
    telemetry::RegisterCounter("snapshot/prune_failures");
const telemetry::Histogram t_write_ns =
    telemetry::RegisterHistogram("snapshot/write_ns", "ns");
const telemetry::Histogram t_open_ns =
    telemetry::RegisterHistogram("snapshot/open_ns", "ns");

constexpr char kMagic[8] = {'S', 'R', 'S', 'N', 'A', 'P', '1', '\n'};

int64_t AlignUp(int64_t n) {
  return (n + kSnapshotAlignment - 1) / kSnapshotAlignment * kSnapshotAlignment;
}

void AppendI64(std::string* out, int64_t v) {
  char bytes[sizeof(v)];
  std::memcpy(bytes, &v, sizeof(v));
  out->append(bytes, sizeof(bytes));
}

/// Incremental bounds-checked reader over the mapped manifest bytes.
class ManifestReader {
 public:
  ManifestReader(const char* data, size_t size, const std::string& path)
      : data_(data), size_(size), path_(path) {}

  Status ReadI64(int64_t* out, const char* what) {
    if (size_ - pos_ < sizeof(*out)) {
      return Status::IOError(StrFormat(
          "truncated snapshot %s: unexpected end of manifest reading %s",
          path_.c_str(), what));
    }
    std::memcpy(out, data_ + pos_, sizeof(*out));
    pos_ += sizeof(*out);
    return Status::OK();
  }

  Status ReadString(std::string* out, int64_t max_len, const char* what) {
    int64_t len = 0;
    SCENEREC_RETURN_IF_ERROR(ReadI64(&len, what));
    if (len < 0 || len > max_len ||
        static_cast<size_t>(len) > size_ - pos_) {
      return Status::IOError(
          StrFormat("truncated snapshot %s: bad %s length %lld", path_.c_str(),
                    what, static_cast<long long>(len)));
    }
    out->assign(data_ + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return Status::OK();
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  const std::string& path_;
};

Status CloseAndCleanup(std::FILE* f, const std::string& tmp_path, Status why) {
  std::fclose(f);
  ::unlink(tmp_path.c_str());
  return why;
}

/// Best-effort fsync of the directory containing `path`, so the rename that
/// published a snapshot survives a crash. Failure is ignored: the data file
/// itself is already durable and some filesystems reject directory fsync.
void SyncParentDir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status WriteSnapshot(const Module& module, const std::string& tag,
                     uint64_t version, const std::string& path) {
  SCENEREC_TRACE_SPAN_F("snapshot/write", "snapshot", trace::Floor::kNone,
                        "tag=%s version=%llu", tag.c_str(),
                        static_cast<unsigned long long>(version));
  telemetry::ScopedTimer timer(t_write_ns);

  const std::vector<Tensor> params = module.Parameters();

  // Lay out the file: header + manifest first, then aligned data pages. The
  // manifest size is known exactly up front because every integer is a fixed
  // 8 bytes, so offsets can be assigned before any byte is written.
  std::vector<std::string> names;
  names.reserve(params.size());
  int64_t manifest_bytes = sizeof(kMagic) + 8 /*version*/ + 8 /*tag len*/ +
                           static_cast<int64_t>(tag.size()) + 8 /*count*/;
  for (size_t i = 0; i < params.size(); ++i) {
    names.push_back(StrFormat("param.%zu", i));
    manifest_bytes += 8 + static_cast<int64_t>(names[i].size());  // name
    manifest_bytes += 8 * (1 + params[i].shape().rank());         // rank, dims
    manifest_bytes += 8 + 8;  // offset, float count
  }

  std::string header;
  header.reserve(static_cast<size_t>(manifest_bytes));
  header.append(kMagic, sizeof(kMagic));
  AppendI64(&header, static_cast<int64_t>(version));
  AppendI64(&header, static_cast<int64_t>(tag.size()));
  header.append(tag);
  AppendI64(&header, static_cast<int64_t>(params.size()));

  int64_t offset = AlignUp(manifest_bytes);
  std::vector<int64_t> offsets(params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    const Shape& shape = params[i].shape();
    AppendI64(&header, static_cast<int64_t>(names[i].size()));
    header.append(names[i]);
    AppendI64(&header, shape.rank());
    for (int64_t d = 0; d < shape.rank(); ++d) AppendI64(&header, shape.dim(d));
    offsets[i] = offset;
    AppendI64(&header, offset);
    AppendI64(&header, shape.num_elements());
    offset = AlignUp(offset + shape.num_elements() *
                                  static_cast<int64_t>(sizeof(float)));
  }
  header.resize(static_cast<size_t>(AlignUp(manifest_bytes)), '\0');

  // Write to a temp file in the target directory (same filesystem, so the
  // final rename is atomic) and publish only after the bytes are durable.
  const std::string tmp_path =
      StrFormat("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot create " + tmp_path + ": " +
                           std::strerror(errno));
  }
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    return CloseAndCleanup(
        f, tmp_path, Status::IOError("short write to " + tmp_path));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    const FloatBuffer& values = params[i].value();
    const long pos = std::ftell(f);
    if (pos < 0 || pos > offsets[i] ||
        (pos < offsets[i] &&
         std::fseek(f, static_cast<long>(offsets[i]), SEEK_SET) != 0)) {
      return CloseAndCleanup(
          f, tmp_path,
          Status::IOError(StrFormat("cannot seek to page of tensor %zu in %s",
                                    i, tmp_path.c_str())));
    }
    if (std::fwrite(values.data(), sizeof(float), values.size(), f) !=
        values.size()) {
      return CloseAndCleanup(
          f, tmp_path,
          Status::IOError(StrFormat("short write of tensor %zu to %s", i,
                                    tmp_path.c_str())));
    }
  }
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0) {
    return CloseAndCleanup(
        f, tmp_path,
        Status::IOError("cannot sync " + tmp_path + ": " +
                        std::strerror(errno)));
  }
  std::fclose(f);
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp_path.c_str());
    return Status::IOError("cannot rename " + tmp_path + " to " + path + ": " +
                           std::strerror(err));
  }
  SyncParentDir(path);

  t_writes.Add();
  t_write_bytes.Add(static_cast<uint64_t>(offset));
  return Status::OK();
}

StatusOr<std::shared_ptr<const Snapshot>> Snapshot::Open(
    const std::string& path) {
  SCENEREC_TRACE_SPAN_F("snapshot/open", "snapshot", trace::Floor::kNone,
                        "path=%s", path.c_str());
  telemetry::ScopedTimer timer(t_open_ns);

  SCENEREC_ASSIGN_OR_RETURN(MappedFile file, MappedFile::Open(path));
  if (file.size() < sizeof(kMagic) ||
      std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        path + " is not a scenerec snapshot (bad magic; expected SRSNAP1)");
  }

  std::shared_ptr<Snapshot> snapshot(new Snapshot());
  ManifestReader reader(file.data() + sizeof(kMagic),
                        file.size() - sizeof(kMagic), path);
  int64_t version = 0;
  SCENEREC_RETURN_IF_ERROR(reader.ReadI64(&version, "version"));
  snapshot->version_ = static_cast<uint64_t>(version);
  SCENEREC_RETURN_IF_ERROR(
      reader.ReadString(&snapshot->tag_, /*max_len=*/4096, "tag"));
  int64_t count = 0;
  SCENEREC_RETURN_IF_ERROR(reader.ReadI64(&count, "tensor count"));
  if (count < 0 || count > (1 << 20)) {
    return Status::IOError(StrFormat("corrupt snapshot %s: tensor count %lld",
                                     path.c_str(),
                                     static_cast<long long>(count)));
  }

  snapshot->entries_.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    SnapshotTensorEntry entry;
    SCENEREC_RETURN_IF_ERROR(
        reader.ReadString(&entry.name, /*max_len=*/4096, "tensor name"));
    int64_t rank = 0;
    SCENEREC_RETURN_IF_ERROR(reader.ReadI64(&rank, "tensor rank"));
    if (rank < 0 || rank > 8) {
      return Status::IOError(
          StrFormat("corrupt snapshot %s: tensor %lld has rank %lld",
                    path.c_str(), static_cast<long long>(i),
                    static_cast<long long>(rank)));
    }
    std::vector<int64_t> dims(static_cast<size_t>(rank));
    for (int64_t d = 0; d < rank; ++d) {
      SCENEREC_RETURN_IF_ERROR(reader.ReadI64(&dims[d], "tensor dim"));
      // Shape CHECK-fails on non-positive dims; a corrupt file must surface
      // as a Status instead. The product bound keeps num_elements far from
      // int64 overflow for any rank <= 8.
      if (dims[d] <= 0 || dims[d] > (int64_t{1} << 40)) {
        return Status::IOError(StrFormat(
            "corrupt snapshot %s: tensor %lld has invalid dim %lld",
            path.c_str(), static_cast<long long>(i),
            static_cast<long long>(dims[d])));
      }
    }
    entry.shape = Shape(dims);
    SCENEREC_RETURN_IF_ERROR(reader.ReadI64(&entry.offset, "tensor offset"));
    SCENEREC_RETURN_IF_ERROR(
        reader.ReadI64(&entry.num_floats, "tensor float count"));
    if (entry.num_floats != entry.shape.num_elements()) {
      return Status::IOError(StrFormat(
          "corrupt snapshot %s: tensor %lld (%s) float count %lld does not "
          "match shape %s",
          path.c_str(), static_cast<long long>(i), entry.name.c_str(),
          static_cast<long long>(entry.num_floats),
          entry.shape.ToString().c_str()));
    }
    const int64_t end =
        entry.offset + entry.num_floats * static_cast<int64_t>(sizeof(float));
    if (entry.offset < 0 || entry.offset % kSnapshotAlignment != 0 ||
        end > static_cast<int64_t>(file.size())) {
      return Status::IOError(StrFormat(
          "truncated snapshot %s: page of tensor %lld (%s) at offset %lld "
          "(%lld floats) exceeds file size %zu",
          path.c_str(), static_cast<long long>(i), entry.name.c_str(),
          static_cast<long long>(entry.offset),
          static_cast<long long>(entry.num_floats), file.size()));
    }
    snapshot->entries_.push_back(std::move(entry));
  }

  snapshot->file_ = std::move(file);
  t_opens.Add();
  return std::shared_ptr<const Snapshot>(std::move(snapshot));
}

const float* Snapshot::data(size_t i) const {
  SCENEREC_CHECK_LT(i, entries_.size());
  if (entries_[i].num_floats == 0) return nullptr;
  return reinterpret_cast<const float*>(file_.data() + entries_[i].offset);
}

int64_t Snapshot::FindTensor(const std::string& name) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].name == name) return static_cast<int64_t>(i);
  }
  return -1;
}

Tensor Snapshot::View(size_t i) const {
  SCENEREC_CHECK_LT(i, entries_.size());
  const SnapshotTensorEntry& entry = entries_[i];
  Tensor tensor = Tensor::Zeros(entry.shape);
  tensor.BindExternal(FloatBuffer::Borrowed(
      data(i), static_cast<size_t>(entry.num_floats), shared_from_this()));
  return tensor;
}

Status BindSnapshot(Module& module,
                    const std::shared_ptr<const Snapshot>& snapshot) {
  SCENEREC_CHECK(snapshot != nullptr);
  SCENEREC_TRACE_SPAN_F("snapshot/bind", "snapshot", trace::Floor::kNone,
                        "tag=%s", snapshot->tag().c_str());
  std::vector<Tensor> params = module.Parameters();
  const std::vector<SnapshotTensorEntry>& entries = snapshot->tensors();
  if (params.size() != entries.size()) {
    return Status::FailedPrecondition(StrFormat(
        "snapshot %s holds %zu tensors but the model has %zu parameters",
        snapshot->path().c_str(), entries.size(), params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!(params[i].shape() == entries[i].shape)) {
      return Status::FailedPrecondition(StrFormat(
          "tensor %zu shape mismatch in %s: snapshot has %s, model expects %s",
          i, snapshot->path().c_str(), entries[i].shape.ToString().c_str(),
          params[i].shape().ToString().c_str()));
    }
  }
  // All-or-nothing: validate every entry before rebinding the first one, so
  // a mismatch never leaves the model half-bound.
  for (size_t i = 0; i < params.size(); ++i) {
    params[i].BindExternal(FloatBuffer::Borrowed(
        snapshot->data(i), static_cast<size_t>(entries[i].num_floats),
        snapshot));
  }
  t_binds.Add();
  return Status::OK();
}

SnapshotStore::SnapshotStore(std::string dir, int64_t retain)
    : dir_(std::move(dir)), retain_(retain) {
  SCENEREC_CHECK_GE(retain_, 1) << "SnapshotStore must retain at least one";
}

std::string SnapshotStore::PathFor(uint64_t version) const {
  return StrFormat("%s/snap-%08llu.srsnap", dir_.c_str(),
                   static_cast<unsigned long long>(version));
}

namespace {

/// Parses "snap-<digits>.srsnap"; returns false for everything else.
bool ParseSnapshotFileName(const std::string& name, uint64_t* version) {
  constexpr char kPrefix[] = "snap-";
  constexpr char kSuffix[] = ".srsnap";
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = prefix_len; i < name.size() - suffix_len; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *version = v;
  return true;
}

/// All (version, path) pairs in `dir`, unsorted. Missing dir -> empty.
std::vector<std::pair<uint64_t, std::string>> ListSnapshots(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t version = 0;
    if (ParseSnapshotFileName(entry.path().filename().string(), &version)) {
      found.emplace_back(version, entry.path().string());
    }
  }
  return found;
}

}  // namespace

StatusOr<uint64_t> SnapshotStore::Write(const Module& module,
                                        const std::string& tag) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IOError("cannot create snapshot dir " + dir_ + ": " +
                           ec.message());
  }
  if (next_version_ == 0) {
    uint64_t max_version = 0;
    for (const auto& [version, path] : ListSnapshots(dir_)) {
      max_version = std::max(max_version, version);
    }
    next_version_ = max_version + 1;
  }
  const uint64_t version = next_version_;
  SCENEREC_RETURN_IF_ERROR(
      WriteSnapshot(module, tag, version, PathFor(version)));
  ++next_version_;

  // Prune beyond the retention window, newest first. Best effort: a file
  // that refuses to delete only wastes disk, it cannot corrupt the store —
  // but each failure is counted and logged so an always-on daemon whose
  // disk is quietly filling shows it in telemetry, not just in `df`.
  auto existing = ListSnapshots(dir_);
  std::sort(existing.begin(), existing.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t i = static_cast<size_t>(retain_); i < existing.size(); ++i) {
    std::filesystem::remove(existing[i].second, ec);
    if (ec) {
      t_prune_failures.Add(1);
      SCENEREC_LOG(WARNING) << "snapshot prune failed for "
                            << existing[i].second << ": " << ec.message();
    }
  }
  return version;
}

StatusOr<std::string> SnapshotStore::LatestPath() const {
  const auto existing = ListSnapshots(dir_);
  if (existing.empty()) {
    return Status::NotFound("no snapshots in " + dir_);
  }
  const auto best = std::max_element(
      existing.begin(), existing.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  return best->second;
}

}  // namespace scenerec
