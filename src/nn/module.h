#ifndef SCENEREC_NN_MODULE_H_
#define SCENEREC_NN_MODULE_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace scenerec {

/// Base class for anything that owns trainable parameters (layers, models).
/// Subclasses expose their parameter tensors through CollectParameters so
/// optimizers and regularizers can reach them uniformly.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends every trainable parameter tensor (handles, not copies) to
  /// `out`. Composite modules forward to their children.
  virtual void CollectParameters(std::vector<Tensor>* out) const = 0;

  /// Convenience: all parameters as a fresh vector.
  std::vector<Tensor> Parameters() const {
    std::vector<Tensor> params;
    CollectParameters(&params);
    return params;
  }

  /// Clears gradient buffers on every parameter.
  void ZeroGrad() {
    for (Tensor& t : Parameters()) t.ZeroGrad();
  }

  /// Total number of trainable scalars.
  int64_t NumParameters() const {
    int64_t n = 0;
    for (const Tensor& t : Parameters()) n += t.num_elements();
    return n;
  }
};

}  // namespace scenerec

#endif  // SCENEREC_NN_MODULE_H_
