#include "nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace scenerec {

Optimizer::Optimizer(std::vector<Tensor> params,
                     const OptimizerOptions& options)
    : params_(std::move(params)), options_(options) {
  for (const Tensor& p : params_) {
    SCENEREC_CHECK(p.defined());
    SCENEREC_CHECK(p.requires_grad()) << "optimizer given frozen tensor";
  }
}

std::vector<float>& Optimizer::State(size_t param_index, int slot) {
  if (state_.size() <= static_cast<size_t>(slot)) {
    state_.resize(static_cast<size_t>(slot) + 1);
  }
  auto& per_param = state_[static_cast<size_t>(slot)];
  if (per_param.size() < params_.size()) per_param.resize(params_.size());
  auto& slab = per_param[param_index];
  if (slab.empty()) {
    slab.assign(static_cast<size_t>(params_[param_index].num_elements()),
                0.0f);
  }
  return slab;
}

void Optimizer::Step() {
  OnStepBegin();

  // Optional global gradient-norm clipping: one pass to measure, then the
  // scale factor is folded into every span update.
  float grad_scale = 1.0f;
  if (options_.clip_norm > 0.0f) {
    double sq = 0.0;
    for (const Tensor& p : params_) {
      const auto& g = p.grad();
      if (g.empty()) continue;
      if (!p.touched_rows().empty() && p.shape().rank() == 2) {
        const int64_t cols = p.shape().dim(1);
        row_scratch_.assign(p.touched_rows().begin(), p.touched_rows().end());
        std::sort(row_scratch_.begin(), row_scratch_.end());
        row_scratch_.erase(
            std::unique(row_scratch_.begin(), row_scratch_.end()),
            row_scratch_.end());
        for (int64_t row : row_scratch_) {
          const float* gr = g.data() + row * cols;
          for (int64_t c = 0; c < cols; ++c) {
            sq += static_cast<double>(gr[c]) * gr[c];
          }
        }
      } else {
        for (float v : g) sq += static_cast<double>(v) * v;
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.clip_norm) {
      grad_scale = static_cast<float>(options_.clip_norm / norm);
    }
  }

  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const auto& g = p.grad();
    if (g.empty()) continue;  // No gradient flowed into this parameter.
    if (!p.touched_rows().empty() && p.shape().rank() == 2) {
      // Sparse parameter: update only rows touched since last ZeroGrad.
      const int64_t cols = p.shape().dim(1);
      row_scratch_.assign(p.touched_rows().begin(), p.touched_rows().end());
      std::sort(row_scratch_.begin(), row_scratch_.end());
      row_scratch_.erase(std::unique(row_scratch_.begin(), row_scratch_.end()),
                         row_scratch_.end());
      for (int64_t row : row_scratch_) {
        UpdateSpan(i, row * cols, cols, grad_scale);
      }
    } else {
      UpdateSpan(i, 0, p.num_elements(), grad_scale);
    }
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

// -- SGD ----------------------------------------------------------------------

SgdOptimizer::SgdOptimizer(std::vector<Tensor> params,
                           const OptimizerOptions& options, float momentum)
    : Optimizer(std::move(params), options), momentum_(momentum) {}

void SgdOptimizer::UpdateSpan(size_t param_index, int64_t begin, int64_t count,
                              float grad_scale) {
  Tensor& p = params_[param_index];
  float* value = p.mutable_value().data();
  const float* grad = p.grad().data();
  const float lr = options().learning_rate;
  const float wd = options().weight_decay;
  if (momentum_ > 0.0f) {
    float* velocity = State(param_index, 0).data();
    for (int64_t i = begin; i < begin + count; ++i) {
      const float g = grad[i] * grad_scale + wd * value[i];
      velocity[i] = momentum_ * velocity[i] + g;
      value[i] -= lr * velocity[i];
    }
  } else {
    for (int64_t i = begin; i < begin + count; ++i) {
      const float g = grad[i] * grad_scale + wd * value[i];
      value[i] -= lr * g;
    }
  }
}

// -- RMSProp ------------------------------------------------------------------

RmsPropOptimizer::RmsPropOptimizer(std::vector<Tensor> params,
                                   const OptimizerOptions& options,
                                   float decay_rate, float epsilon)
    : Optimizer(std::move(params), options),
      decay_rate_(decay_rate),
      epsilon_(epsilon) {}

void RmsPropOptimizer::UpdateSpan(size_t param_index, int64_t begin,
                                  int64_t count, float grad_scale) {
  Tensor& p = params_[param_index];
  float* value = p.mutable_value().data();
  const float* grad = p.grad().data();
  float* cache = State(param_index, 0).data();
  const float lr = options().learning_rate;
  const float wd = options().weight_decay;
  for (int64_t i = begin; i < begin + count; ++i) {
    const float g = grad[i] * grad_scale + wd * value[i];
    cache[i] = decay_rate_ * cache[i] + (1.0f - decay_rate_) * g * g;
    value[i] -= lr * g / (std::sqrt(cache[i]) + epsilon_);
  }
}

// -- Adagrad -------------------------------------------------------------------

AdagradOptimizer::AdagradOptimizer(std::vector<Tensor> params,
                                   const OptimizerOptions& options,
                                   float epsilon)
    : Optimizer(std::move(params), options), epsilon_(epsilon) {}

void AdagradOptimizer::UpdateSpan(size_t param_index, int64_t begin,
                                  int64_t count, float grad_scale) {
  Tensor& p = params_[param_index];
  float* value = p.mutable_value().data();
  const float* grad = p.grad().data();
  float* accum = State(param_index, 0).data();
  const float lr = options().learning_rate;
  const float wd = options().weight_decay;
  for (int64_t i = begin; i < begin + count; ++i) {
    const float g = grad[i] * grad_scale + wd * value[i];
    accum[i] += g * g;
    value[i] -= lr * g / (std::sqrt(accum[i]) + epsilon_);
  }
}

// -- Adam ----------------------------------------------------------------------

AdamOptimizer::AdamOptimizer(std::vector<Tensor> params,
                             const OptimizerOptions& options, float beta1,
                             float beta2, float epsilon)
    : Optimizer(std::move(params), options),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {}

void AdamOptimizer::UpdateSpan(size_t param_index, int64_t begin,
                               int64_t count, float grad_scale) {
  Tensor& p = params_[param_index];
  float* value = p.mutable_value().data();
  const float* grad = p.grad().data();
  float* m = State(param_index, 0).data();
  float* v = State(param_index, 1).data();
  const float lr = options().learning_rate;
  const float wd = options().weight_decay;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (int64_t i = begin; i < begin + count; ++i) {
    const float g = grad[i] * grad_scale + wd * value[i];
    m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
    v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
    const float m_hat = m[i] / bias1;
    const float v_hat = v[i] / bias2;
    value[i] -= lr * m_hat / (std::sqrt(v_hat) + epsilon_);
  }
}

// -- Factory -------------------------------------------------------------------

StatusOr<std::unique_ptr<Optimizer>> MakeOptimizer(
    const std::string& name, std::vector<Tensor> params,
    const OptimizerOptions& options) {
  if (name == "sgd") {
    return std::unique_ptr<Optimizer>(
        new SgdOptimizer(std::move(params), options));
  }
  if (name == "rmsprop") {
    return std::unique_ptr<Optimizer>(
        new RmsPropOptimizer(std::move(params), options));
  }
  if (name == "adagrad") {
    return std::unique_ptr<Optimizer>(
        new AdagradOptimizer(std::move(params), options));
  }
  if (name == "adam") {
    return std::unique_ptr<Optimizer>(
        new AdamOptimizer(std::move(params), options));
  }
  return Status::InvalidArgument("unknown optimizer: " + name);
}

}  // namespace scenerec
