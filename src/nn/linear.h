#ifndef SCENEREC_NN_LINEAR_H_
#define SCENEREC_NN_LINEAR_H_

#include <cstdint>

#include "common/rng.h"
#include "nn/activation.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace scenerec {

/// Fully connected layer: y = activation(W x + b), with W of shape
/// [out_dim, in_dim] initialized Xavier-uniform and b zero-initialized.
/// Implements the sigma(W . x + b) blocks of equations (1), (2), (7), (12).
class Linear : public Module {
 public:
  /// Creates the layer; parameters are drawn from `rng`.
  Linear(int64_t in_dim, int64_t out_dim, Activation activation, Rng& rng);

  Linear(const Linear&) = delete;
  Linear& operator=(const Linear&) = delete;
  Linear(Linear&&) = default;
  Linear& operator=(Linear&&) = default;

  /// Applies the layer to a rank-1 input of length in_dim -> [out_dim].
  /// A single fused LinearAct graph node (no MatVec/Add/activation chain).
  Tensor Forward(const Tensor& x) const;

  /// Applies the layer to every row of xs [R, in_dim] -> [R, out_dim] in one
  /// fused node. Row r is bitwise equal to Forward(Row(xs, r)), so callers
  /// may batch per-entity forwards freely.
  Tensor ForwardRows(const Tensor& xs) const;

  void CollectParameters(std::vector<Tensor>* out) const override;

  int64_t in_dim() const { return in_dim_; }
  int64_t out_dim() const { return out_dim_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  Activation activation_;
  Tensor weight_;
  Tensor bias_;
};

}  // namespace scenerec

#endif  // SCENEREC_NN_LINEAR_H_
