#ifndef SCENEREC_NN_EMBEDDING_H_
#define SCENEREC_NN_EMBEDDING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace scenerec {

/// A trainable lookup table mapping ids in [0, vocab) to dense vectors of
/// length `dim`. Gradients flow only into looked-up rows and the optimizer
/// updates lazily via Tensor::touched_rows(), so tables with tens of
/// thousands of rows stay cheap per step.
class Embedding : public Module {
 public:
  /// Initializes rows i.i.d. N(0, stddev^2). The common recommender default
  /// stddev 0.1 keeps initial scores small.
  Embedding(int64_t vocab, int64_t dim, Rng& rng, float stddev = 0.1f);

  Embedding(const Embedding&) = delete;
  Embedding& operator=(const Embedding&) = delete;
  Embedding(Embedding&&) = default;
  Embedding& operator=(Embedding&&) = default;

  /// Embedding of one id -> rank-1 tensor [dim].
  Tensor Lookup(int64_t id) const;

  /// Embeddings of several ids -> [ids.size(), dim]. Duplicates allowed.
  Tensor LookupMany(const std::vector<int64_t>& ids) const;

  void CollectParameters(std::vector<Tensor>* out) const override;

  int64_t vocab() const { return vocab_; }
  int64_t dim() const { return dim_; }
  const Tensor& table() const { return table_; }

 private:
  int64_t vocab_;
  int64_t dim_;
  Tensor table_;
};

}  // namespace scenerec

#endif  // SCENEREC_NN_EMBEDDING_H_
