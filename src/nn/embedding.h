#ifndef SCENEREC_NN_EMBEDDING_H_
#define SCENEREC_NN_EMBEDDING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "nn/param_table.h"
#include "tensor/tensor.h"

namespace scenerec {

/// A lookup table mapping ids in [0, vocab) to dense vectors of length
/// `dim`. The table lives behind a ParamTable backend: trainable in-RAM by
/// default (gradients flow only into looked-up rows and the optimizer
/// updates lazily via Tensor::touched_rows(), so tables with tens of
/// thousands of rows stay cheap per step), or a read-only mmap'd snapshot
/// page for zero-copy serving (nn/param_table.h).
class Embedding : public Module {
 public:
  /// Trainable table with rows i.i.d. N(0, stddev^2). The common recommender
  /// default stddev 0.1 keeps initial scores small.
  Embedding(int64_t vocab, int64_t dim, Rng& rng, float stddev = 0.1f);

  /// Wraps an existing backend (e.g. a MappedParamTable over a snapshot
  /// page). The backend is shared, not copied.
  explicit Embedding(std::shared_ptr<ParamTable> table);

  Embedding(const Embedding&) = delete;
  Embedding& operator=(const Embedding&) = delete;

  /// Moves SHARE the backend instead of stealing it: the moved-from
  /// embedding stays fully usable and both instances expose the same table
  /// tensor. This keeps an optimizer's collected handles — and their lazy
  /// touched_rows() row updates — bound to the live storage when the owning
  /// model is relocated (e.g. a vector of models reallocates).
  Embedding(Embedding&& other) noexcept;
  Embedding& operator=(Embedding&& other) noexcept;

  /// Embedding of one id -> rank-1 tensor [dim].
  Tensor Lookup(int64_t id) const;

  /// Embeddings of several ids -> [ids.size(), dim]. Duplicates allowed.
  Tensor LookupMany(const std::vector<int64_t>& ids) const;

  void CollectParameters(std::vector<Tensor>* out) const override;

  int64_t vocab() const { return vocab_; }
  int64_t dim() const { return dim_; }
  const Tensor& table() const { return table_->table(); }
  const std::shared_ptr<ParamTable>& backend() const { return table_; }

 private:
  int64_t vocab_;
  int64_t dim_;
  std::shared_ptr<ParamTable> table_;
};

}  // namespace scenerec

#endif  // SCENEREC_NN_EMBEDDING_H_
