#ifndef SCENEREC_NN_SERIALIZATION_H_
#define SCENEREC_NN_SERIALIZATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace scenerec {

/// Writes a module's parameters to a binary checkpoint file. The format is
///   magic "SRCKPT1\n", tag line, parameter count,
///   then per tensor: rank, dims..., raw float32 data (little-endian, the
///   only layout this library targets).
/// `tag` is typically the model name and is verified on load.
Status SaveCheckpoint(const Module& module, const std::string& tag,
                      const std::string& path);

/// Restores parameters saved by SaveCheckpoint into `module`, which must
/// have been constructed with the same architecture: the checkpoint's tag,
/// parameter count and every shape must match (parameters are matched by
/// CollectParameters order). Optimizer state is not part of the checkpoint.
Status LoadCheckpoint(Module& module, const std::string& tag,
                      const std::string& path);

}  // namespace scenerec

#endif  // SCENEREC_NN_SERIALIZATION_H_
