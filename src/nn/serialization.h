#ifndef SCENEREC_NN_SERIALIZATION_H_
#define SCENEREC_NN_SERIALIZATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace scenerec {

/// Writes a module's parameters to a binary checkpoint file in the SRSNAP1
/// snapshot format (nn/snapshot.h) with version id 0. The write is atomic —
/// temp file + fsync + rename — so a partially written checkpoint is never
/// observable under `path`. `tag` is typically the model name and is
/// verified on load. Checkpoints written this way can also be opened
/// zero-copy with Snapshot::Open / OpenRecommenderFromSnapshot.
///
/// (Checkpoints in the pre-snapshot SRCKPT1 format are no longer readable;
/// retrain or re-save to migrate — see CHANGES.md.)
Status SaveCheckpoint(const Module& module, const std::string& tag,
                      const std::string& path);

/// Restores parameters saved by SaveCheckpoint into `module`, which must
/// have been constructed with the same architecture: the checkpoint's tag,
/// parameter count and every shape must match (parameters are matched by
/// CollectParameters order). This is the copying load — values land in the
/// module's own trainable storage, so training can resume. Optimizer state
/// is not part of the checkpoint. Errors name the offending tensor index
/// and the checkpoint path.
Status LoadCheckpoint(Module& module, const std::string& tag,
                      const std::string& path);

}  // namespace scenerec

#endif  // SCENEREC_NN_SERIALIZATION_H_
