#ifndef SCENEREC_NN_SNAPSHOT_H_
#define SCENEREC_NN_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mmap_file.h"
#include "common/status_or.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace scenerec {

/// The versioned model-snapshot format, `SRSNAP1`:
///
///   magic "SRSNAP1\n" (8 bytes)
///   uint64 version id (monotonic within a SnapshotStore; 0 = unversioned)
///   int64  tag length, tag bytes (typically the model name)
///   int64  tensor count
///   per tensor (manifest entry, CollectParameters order):
///     int64 name length, name bytes
///     int64 rank, int64 dims[rank]
///     int64 data offset (bytes from file start, kSnapshotAlignment-aligned)
///     int64 float count
///   zero padding to the first aligned boundary
///   raw float32 pages, one per tensor at its manifest offset
///
/// All integers are little-endian int64 — the only layout this library
/// targets, as with the TSV/dataset formats. The alignment makes every
/// mapped page directly usable by the SIMD kernels (Arena::kAlignment), so
/// an open snapshot's pages ARE the model's tables: no copy, no fix-up
/// pass, first score possible after one mmap. See docs/serving.md.
inline constexpr int64_t kSnapshotAlignment = 64;

/// One manifest entry of an open snapshot.
struct SnapshotTensorEntry {
  std::string name;
  Shape shape;
  /// Byte offset of the tensor's page from the file start; aligned.
  int64_t offset = 0;
  int64_t num_floats = 0;
};

/// Writes `module`'s parameters (CollectParameters order) as an SRSNAP1
/// snapshot. The write is crash-safe: bytes go to a temporary file in the
/// target directory which is fsync'd and atomically renamed onto `path`, so
/// a partially written snapshot is never observable under the final name —
/// a crash mid-write leaves at most a stale *.tmp.* file.
Status WriteSnapshot(const Module& module, const std::string& tag,
                     uint64_t version, const std::string& path);

/// A read-only, memory-mapped snapshot. Open() maps the file and validates
/// the manifest without touching the data pages (no full-table read); the
/// pages fault in lazily as they are scored against. Tensors handed out by
/// View() — and everything bound via BindSnapshot() — pin the mapping
/// through shared_ptr owners, so the file is unmapped exactly when the last
/// view is dropped: the invariant the hot-swap path (models/model_handle.h)
/// relies on to retire old model versions with readers still in flight.
class Snapshot : public std::enable_shared_from_this<Snapshot> {
 public:
  /// Maps and validates `path`. Errors name the file and, for per-tensor
  /// problems (truncated page, bad offset), the offending tensor index.
  static StatusOr<std::shared_ptr<const Snapshot>> Open(
      const std::string& path);

  const std::string& path() const { return file_.path(); }
  const std::string& tag() const { return tag_; }
  uint64_t version() const { return version_; }
  size_t file_bytes() const { return file_.size(); }
  const std::vector<SnapshotTensorEntry>& tensors() const { return entries_; }

  /// The mapped page of tensor `i` (aligned, read-only).
  const float* data(size_t i) const;

  /// Manifest index of the tensor named `name` (CollectParameters order
  /// gives "param.<i>"), or -1 if absent. Used by raw-table consumers such
  /// as `snapshot_inspect --export-index` that read known tensors without
  /// rebuilding the model.
  int64_t FindTensor(const std::string& name) const;

  /// Zero-copy read-only tensor over tensor `i`'s page. The tensor keeps
  /// this snapshot (and its mapping) alive for its own lifetime.
  Tensor View(size_t i) const;

 private:
  Snapshot() = default;

  MappedFile file_;
  std::string tag_;
  uint64_t version_ = 0;
  std::vector<SnapshotTensorEntry> entries_;
};

/// Rebinds every parameter of `module` (CollectParameters order) to the
/// snapshot's mapped pages in place: existing Tensor handles observe the
/// new storage, requires_grad drops, and each parameter pins the mapping.
/// Count and shapes must match the manifest; errors name the tensor index
/// and the snapshot path. After this, `module` is inference-only.
Status BindSnapshot(Module& module,
                    const std::shared_ptr<const Snapshot>& snapshot);

/// A directory of versioned snapshots (`snap-<version>.srsnap`) with
/// monotonic version ids and retention of the newest K files. The trainer
/// writes one snapshot per validation improvement through a store; a
/// server tails LatestPath() to pick up fresh versions.
class SnapshotStore {
 public:
  /// `retain` >= 1: how many newest snapshots survive pruning.
  explicit SnapshotStore(std::string dir, int64_t retain = 3);

  /// Writes the next version (max existing + 1; the directory is created if
  /// missing), prunes older files beyond `retain`, returns the version id.
  StatusOr<uint64_t> Write(const Module& module, const std::string& tag);

  /// Path of the highest-version snapshot, or NotFound for an empty store.
  StatusOr<std::string> LatestPath() const;

  /// The file name a given version lives under.
  std::string PathFor(uint64_t version) const;

  const std::string& dir() const { return dir_; }
  int64_t retain() const { return retain_; }

 private:
  std::string dir_;
  int64_t retain_;
  /// Next version to write; 0 until the directory has been scanned.
  uint64_t next_version_ = 0;
};

}  // namespace scenerec

#endif  // SCENEREC_NN_SNAPSHOT_H_
