#include "nn/linear.h"

#include "tensor/ops.h"

namespace scenerec {

Linear::Linear(int64_t in_dim, int64_t out_dim, Activation activation,
               Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      activation_(activation),
      weight_(Tensor::XavierUniform(out_dim, in_dim, rng)),
      bias_(Tensor::Zeros(Shape({out_dim}), /*requires_grad=*/true)) {}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor pre = Add(MatVec(weight_, x), bias_);
  return ApplyActivation(activation_, pre);
}

void Linear::CollectParameters(std::vector<Tensor>* out) const {
  out->push_back(weight_);
  out->push_back(bias_);
}

}  // namespace scenerec
