#include "nn/linear.h"

#include "tensor/ops.h"

namespace scenerec {
namespace {

kernels::FusedAct ToFusedAct(Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return kernels::FusedAct::kNone;
    case Activation::kSigmoid:
      return kernels::FusedAct::kSigmoid;
    case Activation::kTanh:
      return kernels::FusedAct::kTanh;
    case Activation::kRelu:
      return kernels::FusedAct::kRelu;
    case Activation::kLeakyRelu:
      return kernels::FusedAct::kLeakyRelu;
  }
  return kernels::FusedAct::kNone;
}

}  // namespace

Linear::Linear(int64_t in_dim, int64_t out_dim, Activation activation,
               Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      activation_(activation),
      weight_(Tensor::XavierUniform(out_dim, in_dim, rng)),
      bias_(Tensor::Zeros(Shape({out_dim}), /*requires_grad=*/true)) {}

Tensor Linear::Forward(const Tensor& x) const {
  return LinearAct(weight_, x, bias_, ToFusedAct(activation_));
}

Tensor Linear::ForwardRows(const Tensor& xs) const {
  return LinearActRows(weight_, xs, bias_, ToFusedAct(activation_));
}

void Linear::CollectParameters(std::vector<Tensor>* out) const {
  out->push_back(weight_);
  out->push_back(bias_);
}

}  // namespace scenerec
