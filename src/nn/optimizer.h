#ifndef SCENEREC_NN_OPTIMIZER_H_
#define SCENEREC_NN_OPTIMIZER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "tensor/tensor.h"

namespace scenerec {

/// Shared optimizer hyper-parameters. `weight_decay` implements the paper's
/// L2 regularization term lambda * ||Theta||^2 (the constant factor 2 from
/// the derivative is absorbed into the coefficient, matching common
/// implementations). `clip_norm` > 0 enables global gradient-norm clipping.
struct OptimizerOptions {
  float learning_rate = 1e-3f;
  float weight_decay = 0.0f;
  float clip_norm = 0.0f;
};

/// Base class for first-order optimizers. Handles the shared mechanics:
/// walking parameters, lazy sparse-row updates for embedding tables (driven
/// by Tensor::touched_rows()), weight decay, and gradient clipping.
/// Subclasses implement the per-span update rule.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients accumulated since the last
  /// ZeroGrad. Parameters without gradients are skipped.
  void Step();

  /// Clears gradients on all managed parameters.
  void ZeroGrad();

  const OptimizerOptions& options() const { return options_; }
  void set_learning_rate(float lr) { options_.learning_rate = lr; }
  void set_weight_decay(float wd) { options_.weight_decay = wd; }

 protected:
  Optimizer(std::vector<Tensor> params, const OptimizerOptions& options);

  /// Updates value[begin, begin+count) of parameter `param_index` in place.
  /// `grad_scale` folds in gradient clipping; the effective gradient for
  /// element i is grad[i] * grad_scale + weight_decay * value[i].
  virtual void UpdateSpan(size_t param_index, int64_t begin, int64_t count,
                          float grad_scale) = 0;

  /// Called once per Step before any UpdateSpan (for time-step counters).
  virtual void OnStepBegin() {}

  /// Per-parameter auxiliary state slab, zero-initialized to the parameter
  /// size on first use. `slot` distinguishes multiple slabs (e.g. Adam's
  /// first and second moments).
  std::vector<float>& State(size_t param_index, int slot);

  std::vector<Tensor> params_;

 private:
  OptimizerOptions options_;
  // state_[slot][param_index]
  std::vector<std::vector<std::vector<float>>> state_;
  std::vector<int64_t> row_scratch_;
};

/// Plain stochastic gradient descent, optionally with momentum.
class SgdOptimizer : public Optimizer {
 public:
  SgdOptimizer(std::vector<Tensor> params, const OptimizerOptions& options,
               float momentum = 0.0f);

 protected:
  void UpdateSpan(size_t param_index, int64_t begin, int64_t count,
                  float grad_scale) override;

 private:
  float momentum_;
};

/// RMSProp (Goodfellow et al. 2016), the optimizer used in the paper's
/// experiments (Section 5.3).
class RmsPropOptimizer : public Optimizer {
 public:
  RmsPropOptimizer(std::vector<Tensor> params, const OptimizerOptions& options,
                   float decay_rate = 0.9f, float epsilon = 1e-8f);

 protected:
  void UpdateSpan(size_t param_index, int64_t begin, int64_t count,
                  float grad_scale) override;

 private:
  float decay_rate_;
  float epsilon_;
};

/// Adagrad (Duchi et al. 2011): per-coordinate accumulation of squared
/// gradients. Naturally lazy for sparse embedding rows.
class AdagradOptimizer : public Optimizer {
 public:
  AdagradOptimizer(std::vector<Tensor> params, const OptimizerOptions& options,
                   float epsilon = 1e-8f);

 protected:
  void UpdateSpan(size_t param_index, int64_t begin, int64_t count,
                  float grad_scale) override;

 private:
  float epsilon_;
};

/// Adam (lazy variant for sparse parameters: moments of untouched rows are
/// not decayed, the standard trick for large embedding tables).
class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(std::vector<Tensor> params, const OptimizerOptions& options,
                float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f);

 protected:
  void OnStepBegin() override { ++step_; }
  void UpdateSpan(size_t param_index, int64_t begin, int64_t count,
                  float grad_scale) override;

 private:
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t step_ = 0;
};

/// Factory from a name in {"sgd", "rmsprop", "adagrad", "adam"}; used by
/// experiment configs. Returns InvalidArgument for unknown names.
StatusOr<std::unique_ptr<Optimizer>> MakeOptimizer(
    const std::string& name, std::vector<Tensor> params,
    const OptimizerOptions& options);

}  // namespace scenerec

#endif  // SCENEREC_NN_OPTIMIZER_H_
