#include "serve/observe.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace scenerec {
namespace serve {

namespace {

std::string Fd(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Microseconds with ns resolution, the unit Chrome trace events use.
std::string Micros(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

void AppendHistogramJson(std::string& out, const HistogramData& data,
                         const std::string& unit) {
  out += "{\"unit\": \"" + unit + "\"";
  out += ", \"count\": " + std::to_string(data.count);
  out += ", \"sum\": " + std::to_string(data.sum);
  out += ", \"max\": " + std::to_string(data.max);
  out += ", \"mean\": " + Fd(data.Mean());
  out += ", \"p50\": " + Fd(data.Percentile(0.50));
  out += ", \"p90\": " + Fd(data.Percentile(0.90));
  out += ", \"p99\": " + Fd(data.Percentile(0.99));
  out += ", \"buckets\": [";
  bool first = true;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (data.buckets[b] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "[" + std::to_string(HistogramBucketLow(b)) + ", " +
           std::to_string(HistogramBucketHigh(b)) + ", " +
           std::to_string(data.buckets[b]) + "]";
  }
  out += "]}";
}

void AppendSloJson(std::string& out, const SloTracker::State& s) {
  out += "{\"enabled\": ";
  out += s.enabled ? "true" : "false";
  out += ", \"target_p99_ns\": " + std::to_string(s.target_p99_ns);
  out += ", \"error_budget\": " + Fd(s.error_budget);
  out += ", \"total\": " + std::to_string(s.total);
  out += ", \"over_target\": " + std::to_string(s.over_target);
  out += ", \"over_fraction\": " + Fd(s.over_fraction);
  out += ", \"budget_burn\": " + Fd(s.budget_burn);
  out += ", \"windowed_p99_ns\": " + std::to_string(s.windowed_p99_ns);
  out += ", \"window_breach\": ";
  out += s.window_breach ? "true" : "false";
  out += ", \"ok\": ";
  out += s.ok ? "true" : "false";
  out += "}";
}

}  // namespace

// -- LiveTraceRing -----------------------------------------------------------

LiveTraceRing::LiveTraceRing(size_t capacity) : ring_(capacity) {
  SCENEREC_CHECK_GE(capacity, 1u);
}

void LiveTraceRing::Record(const LiveSpan& span) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_[next_ % ring_.size()] = span;
  ++next_;
  if (size_ < ring_.size()) {
    ++size_;
  } else {
    ++dropped_;
  }
}

std::vector<LiveSpan> LiveTraceRing::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LiveSpan> out;
  out.reserve(size_);
  for (size_t i = next_ - size_; i < next_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  size_ = 0;
  return out;
}

std::string LiveTraceRing::DrainChromeJson() {
  const std::vector<LiveSpan> spans = Drain();
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const LiveSpan& s = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"" + std::string(s.name) +
           "\", \"cat\": \"serve\", \"ph\": \"X\", \"pid\": 1, \"tid\": 1, ";
    out += "\"ts\": " + Micros(s.start_ns) + ", ";
    out += "\"dur\": " + Micros(s.dur_ns) + ", ";
    out += "\"args\": {\"request_id\": " + std::to_string(s.request_id) +
           ", \"user\": " + std::to_string(s.user) +
           ", \"batch_seq\": " + std::to_string(s.batch_seq) +
           ", \"batch_size\": " + std::to_string(s.batch_size) + "}}";
  }
  out += "\n]\n";
  return out;
}

uint64_t LiveTraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

// -- StatsEndpoint -----------------------------------------------------------

StatsEndpoint::StatsEndpoint(Server& server, std::string socket_path)
    : server_(server),
      socket_path_(std::move(socket_path)),
      windows_(telemetry::WindowedHistogramOptions{
          static_cast<uint64_t>(server.config().stats_window_ms) * 1'000'000,
          static_cast<int>(server.config().stats_window_intervals)}) {}

StatsEndpoint::~StatsEndpoint() { Stop(); }

Status StatsEndpoint::Start() {
  SCENEREC_CHECK(!started_);
  // Baseline the window before traffic is visible through it: the first
  // tick records where the cumulative histograms stand without attributing
  // pre-endpoint history into the window.
  Tick();
  const Status status = socket_.Start(
      socket_path_, [this](const std::string& verb) { return Handle(verb); });
  if (!status.ok()) return status;
  started_ = true;
  ticker_ = std::thread([this] { TickerLoop(); });
  return Status::OK();
}

void StatsEndpoint::Stop() {
  if (!started_) return;
  started_ = false;
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    ticker_stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  socket_.Stop();
}

void StatsEndpoint::Tick() {
  windows_.Tick(telemetry::Telemetry::Snapshot(), trace::internal::NowNs());
  const telemetry::WindowedHistograms::View view =
      windows_.Window("serve/request_ns");
  server_.slo().SetWindowedP99(
      view.found && view.data.count > 0
          ? static_cast<uint64_t>(view.data.Percentile(0.99))
          : 0);
}

void StatsEndpoint::TickerLoop() {
  const auto interval =
      std::chrono::milliseconds(server_.config().stats_window_ms);
  std::unique_lock<std::mutex> lock(ticker_mu_);
  while (!ticker_stop_) {
    if (ticker_cv_.wait_for(lock, interval, [this] { return ticker_stop_; })) {
      return;
    }
    lock.unlock();
    Tick();
    lock.lock();
  }
}

StatusOr<std::string> StatsEndpoint::Handle(const std::string& verb) {
  if (verb == "stats" || verb == "metrics" || verb == "healthz" ||
      verb == "vars") {
    Tick();  // a scrape is never staler than its own arrival
  }
  if (verb == "stats") return StatsJson();
  if (verb == "metrics") return Metrics();
  if (verb == "healthz") return Healthz();
  if (verb == "vars") return Vars();
  if (verb == "trace") {
    LiveTraceRing* ring = server_.live_trace();
    if (ring == nullptr) return std::string("[]\n");
    return ring->DrainChromeJson();
  }
  return Status::InvalidArgument(
      "unknown verb \"" + verb +
      "\" (expected stats | metrics | healthz | vars | trace)");
}

std::string StatsEndpoint::StatsJson() {
  // Splice the extra sections into the cumulative snapshot document: drop
  // its closing brace, append "windows" / "server" / "slo", close again.
  std::string out = telemetry::Telemetry::Snapshot().ToJson();
  out.erase(out.find_last_of('}'));

  out += ",\n  \"windows\": {\"window_ns\": ";
  bool first = true;
  std::string hists;
  uint64_t window_ns = 0;
  for (const std::string& name : windows_.Names()) {
    const telemetry::WindowedHistograms::View view = windows_.Window(name);
    window_ns = view.window_ns;
    hists += first ? "\n    " : ",\n    ";
    first = false;
    hists += "\"" + name + "\": ";
    AppendHistogramJson(hists, view.data, view.unit);
  }
  out += std::to_string(window_ns);
  out += ", \"max_window_ns\": " + std::to_string(windows_.MaxWindowNs());
  out += ", \"histograms\": {" + hists + "\n  }},";

  const Server::Stats stats = server_.stats();
  out += "\n  \"server\": {\"published\": ";
  out += server_.model_published() ? "true" : "false";
  out += ", \"accepting\": ";
  out += server_.accepting() ? "true" : "false";
  out += ", \"requests\": " + std::to_string(stats.requests);
  out += ", \"rejected\": " + std::to_string(stats.rejected);
  out += ", \"batches\": " + std::to_string(stats.batches);
  out += ", \"rows_scored\": " + std::to_string(stats.rows_scored);
  out += ", \"max_batch\": " + std::to_string(stats.max_batch);
  out += ", \"publishes\": " + std::to_string(stats.publishes) + "},";

  // Demand-paged user-representation cache (all zero in full warm-up mode).
  const ReprCache::Stats cache = server_.user_cache_stats();
  out += "\n  \"repr_cache\": {\"entries\": " + std::to_string(cache.entries);
  out += ", \"bytes\": " + std::to_string(cache.bytes);
  out += ", \"capacity_bytes\": " + std::to_string(cache.capacity_bytes);
  out += ", \"hits\": " + std::to_string(cache.hits);
  out += ", \"misses\": " + std::to_string(cache.misses);
  out += ", \"insertions\": " + std::to_string(cache.insertions);
  out += ", \"evictions\": " + std::to_string(cache.evictions) + "},";

  out += "\n  \"slo\": ";
  AppendSloJson(out, server_.slo().state());
  out += "\n}\n";
  return out;
}

std::string StatsEndpoint::Metrics() {
  std::string out = telemetry::Telemetry::Snapshot().ToPrometheus();
  // Windowed summaries ride along as gauges: a plain Prometheus scrape gets
  // the rolling p50/p99 without needing the native `stats` JSON.
  out += "# TYPE scenerec_window_seconds gauge\n";
  uint64_t window_ns = 0;
  std::string rows;
  for (const std::string& name : windows_.Names()) {
    const telemetry::WindowedHistograms::View view = windows_.Window(name);
    window_ns = view.window_ns;
    std::string prom = "scenerec_window_";
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      prom += ok ? c : '_';
    }
    rows += "# TYPE " + prom + "_count gauge\n";
    rows += prom + "_count " + std::to_string(view.data.count) + "\n";
    rows += "# TYPE " + prom + "_p50 gauge\n";
    rows += prom + "_p50 " + Fd(view.data.Percentile(0.50)) + "\n";
    rows += "# TYPE " + prom + "_p99 gauge\n";
    rows += prom + "_p99 " + Fd(view.data.Percentile(0.99)) + "\n";
  }
  out += "scenerec_window_seconds " + Fd(static_cast<double>(window_ns) * 1e-9) +
         "\n";
  out += rows;
  return out;
}

std::string StatsEndpoint::Healthz() {
  const bool published = server_.model_published();
  const bool accepting = server_.accepting();
  const SloTracker::State slo = server_.slo().state();
  const bool ok = published && accepting && slo.ok;
  std::string out = "{\"ok\": ";
  out += ok ? "true" : "false";
  out += ", \"status\": \"";
  out += ok ? "ok" : (published && accepting ? "degraded" : "unready");
  out += "\", \"published\": ";
  out += published ? "true" : "false";
  out += ", \"accepting\": ";
  out += accepting ? "true" : "false";
  out += ", \"slo\": ";
  AppendSloJson(out, slo);
  out += "}\n";
  return out;
}

std::string StatsEndpoint::Vars() {
  // Flat `key value` lines — trivially parseable, what scenerec_stat's
  // table and watch modes consume.
  const telemetry::TelemetrySnapshot snap = telemetry::Telemetry::Snapshot();
  std::string out;
  out += "mono_ns " + std::to_string(snap.process.mono_ns) + "\n";
  out += "uptime_seconds " + Fd(snap.process.uptime_seconds) + "\n";
  out += "rss_bytes " + std::to_string(snap.process.rss_bytes) + "\n";

  const Server::Stats stats = server_.stats();
  out += "server published " +
         std::to_string(server_.model_published() ? 1 : 0) + "\n";
  out += "server accepting " + std::to_string(server_.accepting() ? 1 : 0) +
         "\n";
  out += "server requests " + std::to_string(stats.requests) + "\n";
  out += "server rejected " + std::to_string(stats.rejected) + "\n";
  out += "server batches " + std::to_string(stats.batches) + "\n";
  out += "server rows_scored " + std::to_string(stats.rows_scored) + "\n";
  out += "server max_batch " + std::to_string(stats.max_batch) + "\n";
  out += "server publishes " + std::to_string(stats.publishes) + "\n";

  // `cache` prefix: the demand-paged user-representation cache, the lines
  // scenerec_stat's cache section derives hit rate and residency from.
  const ReprCache::Stats cache = server_.user_cache_stats();
  out += "cache entries " + std::to_string(cache.entries) + "\n";
  out += "cache bytes " + std::to_string(cache.bytes) + "\n";
  out += "cache capacity_bytes " + std::to_string(cache.capacity_bytes) + "\n";
  out += "cache hits " + std::to_string(cache.hits) + "\n";
  out += "cache misses " + std::to_string(cache.misses) + "\n";
  out += "cache insertions " + std::to_string(cache.insertions) + "\n";
  out += "cache evictions " + std::to_string(cache.evictions) + "\n";

  const SloTracker::State slo = server_.slo().state();
  out += "slo enabled " + std::to_string(slo.enabled ? 1 : 0) + "\n";
  out += "slo target_p99_ns " + std::to_string(slo.target_p99_ns) + "\n";
  out += "slo total " + std::to_string(slo.total) + "\n";
  out += "slo over_target " + std::to_string(slo.over_target) + "\n";
  out += "slo budget_burn " + Fd(slo.budget_burn) + "\n";
  out += "slo windowed_p99_ns " + std::to_string(slo.windowed_p99_ns) + "\n";
  out += "slo ok " + std::to_string(slo.ok ? 1 : 0) + "\n";

  for (const telemetry::CounterSample& c : snap.counters) {
    out += "counter " + c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const telemetry::GaugeSample& g : snap.gauges) {
    out += "gauge " + g.name + " " + std::to_string(g.value) + "\n";
  }
  for (const telemetry::HistogramSample& h : snap.histograms) {
    out += "hist " + h.name + " " + h.unit + " " +
           std::to_string(h.data.count) + " " + Fd(h.data.Mean()) + " " +
           Fd(h.data.Percentile(0.50)) + " " + Fd(h.data.Percentile(0.99)) +
           " " + std::to_string(h.data.max) + "\n";
  }
  uint64_t window_ns = 0;
  std::string rows;
  for (const std::string& name : windows_.Names()) {
    const telemetry::WindowedHistograms::View view = windows_.Window(name);
    window_ns = view.window_ns;
    rows += "window " + name + " " + view.unit + " " +
            std::to_string(view.data.count) + " " + Fd(view.data.Mean()) +
            " " + Fd(view.data.Percentile(0.50)) + " " +
            Fd(view.data.Percentile(0.99)) + " " +
            std::to_string(view.data.max) + "\n";
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (view.data.buckets[b] == 0) continue;
      rows += "wbucket " + name + " " +
              std::to_string(HistogramBucketLow(b)) + " " +
              std::to_string(HistogramBucketHigh(b)) + " " +
              std::to_string(view.data.buckets[b]) + "\n";
    }
  }
  out += "window_ns " + std::to_string(window_ns) + "\n";
  out += "max_window_ns " + std::to_string(windows_.MaxWindowNs()) + "\n";
  out += rows;
  return out;
}

}  // namespace serve
}  // namespace scenerec
