#include "serve/slo.h"

#include "common/telemetry.h"

namespace scenerec {
namespace serve {

namespace {

const telemetry::Counter t_violations =
    telemetry::RegisterCounter("slo/violations");

}  // namespace

SloTracker::SloTracker(const SloConfig& config) : config_(config) {}

void SloTracker::Observe(uint64_t latency_ns) {
  if (!enabled()) return;
  total_.fetch_add(1, std::memory_order_relaxed);
  if (latency_ns > config_.target_p99_ns) {
    over_.fetch_add(1, std::memory_order_relaxed);
    t_violations.Add(1);
  }
}

void SloTracker::SetWindowedP99(uint64_t p99_ns) {
  windowed_p99_.store(p99_ns, std::memory_order_relaxed);
}

SloTracker::State SloTracker::state() const {
  State s;
  s.enabled = enabled();
  s.target_p99_ns = config_.target_p99_ns;
  s.error_budget = config_.error_budget;
  if (!s.enabled) return s;
  s.total = total_.load(std::memory_order_relaxed);
  s.over_target = over_.load(std::memory_order_relaxed);
  s.windowed_p99_ns = windowed_p99_.load(std::memory_order_relaxed);
  if (s.total > 0) {
    s.over_fraction =
        static_cast<double>(s.over_target) / static_cast<double>(s.total);
  }
  s.budget_burn = config_.error_budget > 0.0
                      ? s.over_fraction / config_.error_budget
                      : (s.over_target > 0 ? 1e9 : 0.0);
  s.window_breach = s.windowed_p99_ns > config_.target_p99_ns;
  s.ok = s.budget_burn <= 1.0 && !s.window_breach;
  return s;
}

}  // namespace serve
}  // namespace scenerec
