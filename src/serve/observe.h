#ifndef SCENEREC_SERVE_OBSERVE_H_
#define SCENEREC_SERVE_OBSERVE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/socket_server.h"
#include "common/status.h"
#include "common/windowed_histogram.h"
#include "serve/server.h"

namespace scenerec {
namespace serve {

// Live observability plane of the serving daemon (docs/observability.md,
// "Live serving observability"): the request-scoped trace ring the `trace`
// verb drains, and the stats endpoint that serves every verb over the
// daemon's unix-domain socket.

/// One finished span at request/batch granularity, tagged with the request
/// id a client got back in its RequestTicket.
struct LiveSpan {
  const char* name = "";  ///< static string ("serve/exec", ...)
  uint64_t start_ns = 0;  ///< trace::internal::NowNs() clock
  uint64_t dur_ns = 0;
  uint64_t request_id = 0;  ///< 0 for batch-level spans
  int64_t user = 0;
  uint64_t batch_seq = 0;
  uint64_t batch_size = 0;
};

/// Bounded drop-oldest ring of recent LiveSpans, drainable while the
/// daemon serves traffic. This deliberately is NOT the offline trace layer:
/// trace::Trace uses plain-store per-thread rings whose export contract is
/// quiescence-only, so a live `trace` verb cannot drain it without a data
/// race. This ring trades a mutex for liveness — affordable because it is
/// written at request granularity by the admission thread (a handful of
/// lock acquisitions per batch), not per kernel.
class LiveTraceRing {
 public:
  explicit LiveTraceRing(size_t capacity);

  void Record(const LiveSpan& span);

  /// Removes and returns every buffered span, oldest first.
  std::vector<LiveSpan> Drain();

  /// Drain() rendered as a Chrome trace-event JSON array (the same
  /// chrome://tracing / Perfetto format the offline exporter writes);
  /// request id, user, and batch fields ride in "args".
  std::string DrainChromeJson();

  /// Spans overwritten before any drain saw them.
  uint64_t dropped() const;

 private:
  mutable std::mutex mu_;
  std::vector<LiveSpan> ring_;
  size_t next_ = 0;   ///< total spans ever recorded; slot = next_ % size
  size_t size_ = 0;   ///< live spans currently buffered
  uint64_t dropped_ = 0;
};

/// The introspection server: owns the rolling-window histograms, the unix
/// socket, and the ticker thread that rotates the window during idle.
///
/// Protocol (shared framing in common/socket_server.h): one LF-terminated
/// verb per connection, response `OK <bytes>\n<payload>` or
/// `ERR <message>\n`. Verbs:
///   stats    full telemetry snapshot JSON + windows + server + slo
///   metrics  Prometheus text exposition (cumulative + windowed summaries)
///   healthz  readiness JSON: model published, queue accepting, SLO state
///   vars     flat `key value` lines (what scenerec_stat's table parses)
///   trace    drain the live trace ring as Chrome trace JSON
class StatsEndpoint {
 public:
  StatsEndpoint(Server& server, std::string socket_path);
  ~StatsEndpoint();

  StatsEndpoint(const StatsEndpoint&) = delete;
  StatsEndpoint& operator=(const StatsEndpoint&) = delete;

  /// Binds the socket and starts the ticker. Fails (daemon keeps serving)
  /// on bad paths / bind errors.
  Status Start();
  void Stop();

  /// Serves one verb — the socket handler, and the direct entry point for
  /// tests that don't want a real socket. Stats-bearing verbs tick the
  /// window first, so a scrape is never staler than its own arrival.
  StatusOr<std::string> Handle(const std::string& verb);

  const std::string& socket_path() const { return socket_path_; }

 private:
  /// Folds a fresh cumulative snapshot into the window ring and pushes the
  /// windowed request p99 into the SLO tracker.
  void Tick();
  void TickerLoop();

  std::string StatsJson();
  std::string Metrics();
  std::string Healthz();
  std::string Vars();

  Server& server_;
  const std::string socket_path_;
  telemetry::WindowedHistograms windows_;
  UnixSocketServer socket_;

  std::thread ticker_;
  std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;
  bool started_ = false;
};

}  // namespace serve
}  // namespace scenerec

#endif  // SCENEREC_SERVE_OBSERVE_H_
