#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "retrieval/two_stage.h"
#include "serve/observe.h"

namespace scenerec {
namespace serve {

namespace {

// Daemon telemetry (docs/observability.md): request throughput/latency and
// how well the admission loop coalesces. `serve/request_ns` is the
// end-to-end latency histogram bench_serve derives p50/p99 from.
const telemetry::Counter t_requests =
    telemetry::RegisterCounter("serve/daemon_requests");
const telemetry::Counter t_rejected =
    telemetry::RegisterCounter("serve/daemon_rejected");
const telemetry::Counter t_batches =
    telemetry::RegisterCounter("serve/daemon_batches");
const telemetry::Counter t_rows =
    telemetry::RegisterCounter("serve/daemon_rows");
const telemetry::Histogram h_request_ns =
    telemetry::RegisterHistogram("serve/request_ns", "ns");
const telemetry::Histogram h_batch_size =
    telemetry::RegisterHistogram("serve/batch_size", "requests");
// Latency breakdown: request_ns = queue_wait_ns (enqueue -> admission) +
// exec_ns (admission -> result ready) + promise-delivery noise.
const telemetry::Histogram h_queue_wait_ns =
    telemetry::RegisterHistogram("serve/queue_wait_ns", "ns");
const telemetry::Histogram h_exec_ns =
    telemetry::RegisterHistogram("serve/exec_ns", "ns");
// Batches whose flatten buffers (users/items/scores) were served entirely
// from retained scratch capacity — no catalog-sized allocation. Rises to
// ~100% of serve/daemon_batches once the scratch is warm (bench_serve
// reports the ratio as scratch_reuse_pct).
const telemetry::Counter t_scratch_reuses =
    telemetry::RegisterCounter("serve/scratch_reuse_batches");

void AtomicMax(std::atomic<uint64_t>& cell, uint64_t v) {
  uint64_t cur = cell.load(std::memory_order_relaxed);
  while (cur < v &&
         !cell.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Server::Server(const ServerConfig& config, const UserItemGraph& train_graph)
    : config_(config),
      train_graph_(train_graph),
      queue_(static_cast<size_t>(config.queue_capacity)),
      slo_(SloConfig{
          static_cast<uint64_t>(config.slo_target_p99_us) * 1000,
          config.slo_error_budget}) {
  SCENEREC_CHECK_GE(config_.top_n, 0);
  SCENEREC_CHECK_GE(config_.max_batch, 1);
  SCENEREC_CHECK_GE(config_.max_delay_us, 0);
  SCENEREC_CHECK_GE(config_.num_candidates, 0);
  SCENEREC_CHECK_GE(config_.slo_target_p99_us, 0);
  if (config_.warmup == ServerConfig::Warmup::kLazy) {
    SCENEREC_CHECK_GE(config_.user_cache_entries, 1);
  }
  if (!config_.stats_socket.empty()) {
    SCENEREC_CHECK_GE(config_.stats_window_ms, 1);
    SCENEREC_CHECK_GE(config_.stats_window_intervals, 2);
    SCENEREC_CHECK_GE(config_.live_trace_capacity, 1);
    live_trace_ = std::make_unique<LiveTraceRing>(
        static_cast<size_t>(config_.live_trace_capacity));
  }
}

Server::~Server() { Stop(); }

void Server::Publish(std::shared_ptr<Recommender> model,
                     std::shared_ptr<const ItemIndex> index) {
  if (model != nullptr) {
    if (config_.num_candidates > 0) {
      SCENEREC_CHECK(index != nullptr);
    }
    const uint64_t version =
        publish_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    const bool lazy = config_.warmup == ServerConfig::Warmup::kLazy &&
                      model->SupportsUserReprCache();
    if (lazy) {
      // One cache shared across publishes (the hot set survives swaps);
      // entries are tagged with this publish's sequence number, so the
      // previous version's rows turn into misses the moment the swap lands
      // — lazy invalidation, no stop-the-world flush.
      std::shared_ptr<ReprCache> cache;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        if (user_cache_ == nullptr ||
            user_cache_->dim() != model->UserReprDim()) {
          ReprCache::Options options;
          options.capacity = config_.user_cache_entries;
          options.dim = model->UserReprDim();
          user_cache_ = std::make_shared<ReprCache>(options);
        }
        cache = user_cache_;
      }
      model->AttachUserReprCache(std::move(cache), version);
    }
    // Read-side preparation happens BEFORE the swap (the ModelHandle
    // contract), outside the state mutex: in-flight batches keep scoring
    // the old version while the new one warms its eval caches — the full
    // catalog in full warm-up mode, only the item side in lazy mode.
    SCENEREC_TRACE_SPAN_F("serve/publish_warmup", "serve", trace::Floor::kNone,
                          "version=%llu lazy=%d",
                          static_cast<unsigned long long>(version),
                          lazy ? 1 : 0);
    model->OnEvalBegin();
    model->PrepareParallelScoring(prep_pool_);
  }
  std::lock_guard<std::mutex> lock(state_mu_);
  handle_.Publish(std::move(model));
  index_ = std::move(index);
}

void Server::Start() {
  SCENEREC_CHECK(!started_);
  started_ = true;
  worker_ = std::thread([this] { Loop(); });
  if (!config_.stats_socket.empty()) {
    stats_ = std::make_unique<StatsEndpoint>(*this, config_.stats_socket);
    const Status status = stats_->Start();
    if (!status.ok()) {
      // The stats plane is strictly observational: a bad socket path must
      // not take serving down with it.
      SCENEREC_LOG(WARNING) << "stats endpoint disabled: "
                            << status.ToString();
      stats_.reset();
    }
  }
}

void Server::Stop() {
  // The endpoint goes first so no scrape observes the queue mid-teardown.
  if (stats_ != nullptr) {
    stats_->Stop();
    stats_.reset();
  }
  queue_.Close();
  if (worker_.joinable()) worker_.join();
}

bool Server::model_published() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return handle_.Acquire() != nullptr;
}

bool Server::TopN(int64_t user, std::vector<Recommendation>* out,
                  RequestTicket* ticket) {
  SCENEREC_CHECK(out != nullptr);
  // The clock is read up front but serve/request_ns is recorded only once
  // the request has been accepted AND served: a rejected submission (queue
  // closed) returns in nanoseconds and must not pollute the latency
  // distribution the SLO is held against.
  const bool timed =
      telemetry::Enabled() || live_trace_ != nullptr || slo_.enabled();
  const uint64_t start_ns = timed ? trace::internal::NowNs() : 0;
  Request request;
  request.user = user;
  request.id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  request.enqueue_ns = start_ns;
  const uint64_t id = request.id;
  std::future<Reply> result = request.result.get_future();
  if (!queue_.Push(std::move(request))) {
    t_rejected.Add(1);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Reply reply = result.get();
  if (timed) {
    const uint64_t latency_ns = trace::internal::NowNs() - start_ns;
    h_request_ns.Record(latency_ns);
    slo_.Observe(latency_ns);
  }
  t_requests.Add(1);
  requests_.fetch_add(1, std::memory_order_relaxed);
  *out = std::move(reply.recommendations);
  if (ticket != nullptr) {
    ticket->id = id;
    ticket->queue_wait_ns = reply.queue_wait_ns;
    ticket->exec_ns = reply.exec_ns;
    ticket->batch_seq = reply.batch_seq;
  }
  return true;
}

Server::Stats Server::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.rows_scored = rows_scored_.load(std::memory_order_relaxed);
  s.max_batch = max_batch_.load(std::memory_order_relaxed);
  s.publishes = handle_.swap_count();
  return s;
}

ReprCache::Stats Server::user_cache_stats() const {
  std::shared_ptr<ReprCache> cache;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    cache = user_cache_;
  }
  return cache == nullptr ? ReprCache::Stats{} : cache->stats();
}

void Server::Loop() {
  std::vector<Request> batch;
  Request first;
  // Pop returns false only once the queue is closed AND drained, so every
  // accepted request is served before the loop exits (clean shutdown).
  while (queue_.Pop(&first)) {
    batch.clear();
    batch.push_back(std::move(first));
    if (config_.max_batch > 1) {
      // Admission window: drain whatever is already waiting, then wait at
      // most max_delay_us (measured from the first admitted request) for
      // stragglers to coalesce with.
      const std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(config_.max_delay_us);
      Request next;
      while (static_cast<int64_t>(batch.size()) < config_.max_batch) {
        if (queue_.TryPop(&next)) {
          batch.push_back(std::move(next));
          continue;
        }
        if (config_.max_delay_us <= 0 || !queue_.PopUntil(&next, deadline)) {
          break;
        }
        batch.push_back(std::move(next));
      }
    }
    ServeBatch(batch);
  }
}

void Server::ServeBatch(std::vector<Request>& batch) {
  SCENEREC_TRACE_SPAN_F("serve/batch", "serve", trace::Floor::kNone,
                        "requests=%zu", batch.size());
  t_batches.Add(1);
  h_batch_size.Record(batch.size());
  const uint64_t batch_seq =
      batches_.fetch_add(1, std::memory_order_relaxed) + 1;
  AtomicMax(max_batch_, batch.size());

  // Latency breakdown: a request's enqueue_ns (stamped by TopN) to here is
  // queue wait; here to result-ready is exec. Timing is off (enqueue_ns 0)
  // when nothing consumes it.
  const bool timed = batch[0].enqueue_ns != 0;
  const uint64_t admit_ns = timed ? trace::internal::NowNs() : 0;
  if (timed) {
    for (const Request& r : batch) {
      const uint64_t wait =
          admit_ns > r.enqueue_ns ? admit_ns - r.enqueue_ns : 0;
      h_queue_wait_ns.Record(wait);
      if (live_trace_ != nullptr) {
        live_trace_->Record({"serve/queue_wait", r.enqueue_ns, wait, r.id,
                             r.user, batch_seq, batch.size()});
      }
    }
  }

  // One state acquisition per batch: every request in the batch scores the
  // same model version against that version's index, and a concurrent
  // Publish takes effect at the next batch boundary.
  std::shared_ptr<Recommender> model;
  std::shared_ptr<const ItemIndex> index;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    model = handle_.Acquire();
    index = index_;
  }
  if (model == nullptr) {
    for (Request& r : batch) r.result.set_value({});
    return;
  }

  // Stage 1, ONE retrieval sweep for the whole batch:
  // RetrieveCandidatesBatch pushes every request's query through a single
  // ItemIndex::MultiSearch, so the exact backend streams the item matrix
  // through cache once per batch instead of once per request — the main
  // amortization batched admission buys on the retrieval path. Per request
  // the candidate list is bitwise RetrieveCandidates', so results stay
  // identical to per-request serving.
  std::vector<std::vector<int64_t>>& candidates = scratch_.candidates;
  if (config_.num_candidates > 0) {
    std::vector<int64_t>& batch_users = scratch_.batch_users;
    batch_users.clear();
    batch_users.reserve(batch.size());
    for (const Request& r : batch) batch_users.push_back(r.user);
    candidates = RetrieveCandidatesBatch(*model, *index, train_graph_,
                                         batch_users, config_.num_candidates);
  } else {
    candidates.resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      // Out-param overload: the per-request candidate vector keeps its
      // catalog-sized capacity from earlier batches.
      UninteractedItems(train_graph_, batch[i].user, &candidates[i]);
    }
  }

  // Stage 2, shared: flatten every request's candidate rows into one
  // (user, item) row list and score it in bounded chunks. ScoreRows is
  // per-row bitwise equal to Score regardless of co-batched rows, so the
  // flattening and re-chunking cannot change any request's scores — it
  // only lets concurrent requests share GEMM batches. The flatten buffers
  // are admission-thread scratch: once warm, no allocation happens here.
  size_t total = 0;
  for (const std::vector<int64_t>& c : candidates) total += c.size();
  std::vector<int64_t>& users = scratch_.users;
  std::vector<int64_t>& items = scratch_.items;
  std::vector<float>& scores = scratch_.scores;
  if (users.capacity() >= total && items.capacity() >= total &&
      scores.capacity() >= total) {
    t_scratch_reuses.Add(1);
  }
  users.clear();
  items.clear();
  users.reserve(total);
  items.reserve(total);
  for (size_t i = 0; i < batch.size(); ++i) {
    users.insert(users.end(), candidates[i].size(), batch[i].user);
    items.insert(items.end(), candidates[i].begin(), candidates[i].end());
  }
  scores.resize(total);
  for (size_t offset = 0; offset < total;
       offset += static_cast<size_t>(kScoreBlockSize)) {
    const size_t len =
        std::min(static_cast<size_t>(kScoreBlockSize), total - offset);
    SCENEREC_TRACE_SPAN_F("serve/score_rows", "serve", trace::Floor::kOp,
                          "rows=%zu", len);
    model->ScoreRows(std::span<const int64_t>(users).subspan(offset, len),
                     std::span<const int64_t>(items).subspan(offset, len),
                     std::span<float>(scores).subspan(offset, len));
  }
  t_rows.Add(total);
  rows_scored_.fetch_add(total, std::memory_order_relaxed);

  const uint64_t end_ns = timed ? trace::internal::NowNs() : 0;
  const uint64_t exec_ns = end_ns > admit_ns ? end_ns - admit_ns : 0;
  if (timed) {
    for (const Request& r : batch) {
      h_exec_ns.Record(exec_ns);
      if (live_trace_ != nullptr) {
        live_trace_->Record({"serve/exec", admit_ns, exec_ns, r.id, r.user,
                             batch_seq, batch.size()});
      }
    }
    // Request-scoped spans in the OFFLINE trace too: synthetic children of
    // the enclosing serve/batch span, so a post-run Chrome trace shows per
    // request who waited and who rode which batch.
    if (trace::Enabled()) {
      const uint64_t parent = trace::CurrentContext().span_id;
      trace::internal::ThreadBuffer& buf = trace::internal::Buffer();
      for (const Request& r : batch) {
        const uint64_t span_id =
            (static_cast<uint64_t>(buf.thread_index + 1) << 40) |
            ++buf.next_seq;
        char args[trace::internal::kMaxArgsChars];
        std::snprintf(args, sizeof(args), "req=%llu user=%lld",
                      static_cast<unsigned long long>(r.id),
                      static_cast<long long>(r.user));
        trace::internal::Record("serve/request", "serve", r.enqueue_ns,
                                end_ns - r.enqueue_ns, span_id, parent, args);
      }
    }
  }

  // Per-request selection through the shared SelectTopN — the same strict
  // total order as every other serving surface.
  size_t pos = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    std::vector<Recommendation>& scored = scratch_.scored;
    scored.clear();
    scored.reserve(candidates[i].size());
    for (const int64_t item : candidates[i]) {
      scored.push_back({item, scores[pos++]});
    }
    // In-place selection on the reused staging vector; only the n winners
    // are copied into the reply.
    SelectTopNInPlace(&scored, config_.top_n);
    Reply reply;
    reply.recommendations.assign(scored.begin(), scored.end());
    reply.queue_wait_ns =
        timed && admit_ns > batch[i].enqueue_ns
            ? admit_ns - batch[i].enqueue_ns
            : 0;
    reply.exec_ns = exec_ns;
    reply.batch_seq = batch_seq;
    batch[i].result.set_value(std::move(reply));
  }
}

}  // namespace serve
}  // namespace scenerec
