#ifndef SCENEREC_SERVE_SLO_H_
#define SCENEREC_SERVE_SLO_H_

#include <atomic>
#include <cstdint>

namespace scenerec {
namespace serve {

/// Latency objective for the serving daemon (docs/observability.md, "SLO
/// tracker"). target_p99_ns == 0 disables tracking entirely: Observe
/// reduces to one relaxed load + branch and state().ok is always true.
struct SloConfig {
  /// Per-request latency target the p99 is held against, in nanoseconds.
  uint64_t target_p99_ns = 0;
  /// Fraction of requests allowed over target before the budget is burned
  /// (0.001 = 99.9% of requests must meet the target).
  double error_budget = 0.001;
};

/// Tracks how serving latency stands against its objective, two ways at
/// once:
///  - cumulative error-budget burn: every served request is Observed, the
///    over-target fraction is held against `error_budget` (burn 1.0 =
///    budget exactly spent);
///  - windowed p99 breach: the stats plane pushes the rolling-window p99
///    (SetWindowedP99) so healthz degrades on *recent* latency even when
///    the lifetime budget still looks fine.
/// `slo/violations` counts over-target requests in telemetry. healthz
/// reports state().ok; this is also the hook point a future load-shedding
/// policy reads (ROADMAP item 1).
///
/// All methods are thread-safe: callers are the request threads (Observe),
/// the stats plane (SetWindowedP99), and scrapers (state).
class SloTracker {
 public:
  explicit SloTracker(const SloConfig& config);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Folds one served request's end-to-end latency into the budget.
  void Observe(uint64_t latency_ns);

  /// Publishes the rolling-window p99 (from the stats plane's windowed
  /// `serve/request_ns`; 0 = no window data yet).
  void SetWindowedP99(uint64_t p99_ns);

  struct State {
    bool enabled = false;
    uint64_t target_p99_ns = 0;
    double error_budget = 0.0;
    uint64_t total = 0;            ///< requests observed
    uint64_t over_target = 0;      ///< requests over target
    double over_fraction = 0.0;    ///< over_target / total
    double budget_burn = 0.0;      ///< over_fraction / error_budget
    uint64_t windowed_p99_ns = 0;  ///< last pushed window p99
    bool window_breach = false;    ///< windowed p99 over target
    bool ok = true;  ///< burn <= 1 and no window breach (or disabled)
  };
  State state() const;

  bool enabled() const { return config_.target_p99_ns > 0; }

 private:
  const SloConfig config_;
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> over_{0};
  std::atomic<uint64_t> windowed_p99_{0};
};

}  // namespace serve
}  // namespace scenerec

#endif  // SCENEREC_SERVE_SLO_H_
