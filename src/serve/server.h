#ifndef SCENEREC_SERVE_SERVER_H_
#define SCENEREC_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/mpmc_queue.h"
#include "common/repr_cache.h"
#include "common/thread_pool.h"
#include "eval/top_n.h"
#include "graph/bipartite_graph.h"
#include "models/model_handle.h"
#include "models/recommender.h"
#include "retrieval/item_index.h"
#include "serve/slo.h"

namespace scenerec {
namespace serve {

class LiveTraceRing;
class StatsEndpoint;

/// Tuning knobs of the serving daemon (docs/serving.md#daemon).
struct ServerConfig {
  /// Recommendations returned per request.
  int64_t top_n = 10;
  /// Most requests coalesced into one admission batch. 1 disables
  /// coalescing entirely — the per-request baseline bench_serve compares
  /// against.
  int64_t max_batch = 32;
  /// How long the admission loop waits for more requests after the first
  /// one arrives, before serving a partial batch. 0 means "whatever is
  /// already queued, never wait".
  int64_t max_delay_us = 200;
  /// Bound of the request queue; Push blocks (backpressure) when full.
  int64_t queue_capacity = 256;
  /// 0 serves the full catalog (TopNRecommendations semantics); > 0 runs
  /// two-stage retrieval with this candidate budget (TwoStageTopN
  /// semantics) and requires an ItemIndex at Publish time.
  int64_t num_candidates = 0;

  // -- Warm-up policy (docs/serving.md#warmup) -------------------------------

  /// How Publish warms the incoming model's read side. kFull precomputes
  /// every user representation (O(users+items) before the swap); kLazy
  /// skips the user sweep — O(items) warm-up, user reprs demand-paged
  /// through a bounded ReprCache keyed by the publish sequence. Responses
  /// are bitwise identical either way; models without user-repr-cache
  /// support silently fall back to full warm-up.
  enum class Warmup { kFull, kLazy };
  Warmup warmup = Warmup::kFull;
  /// Capacity (entries) of the lazy-mode user-representation cache. Size it
  /// to the hot set — ~10% of users holds steady-state QPS within 5% of
  /// full warm-up under Zipf traffic (BENCH_cache.json).
  int64_t user_cache_entries = 65536;

  // -- Observability plane (docs/observability.md) ---------------------------

  /// Unix-domain socket path of the stats endpoint. Empty (the default)
  /// disables the endpoint entirely; serving itself is unaffected either
  /// way (responses stay bitwise identical with the socket active).
  std::string stats_socket;
  /// Rolling-window resolution: one histogram ring slot per this many ms.
  int64_t stats_window_ms = 1000;
  /// Ring slots — the window spans stats_window_ms * stats_window_intervals.
  int64_t stats_window_intervals = 30;
  /// SLO target for end-to-end request p99, in microseconds. 0 disables
  /// SLO tracking (healthz then ignores latency).
  int64_t slo_target_p99_us = 0;
  /// Fraction of requests allowed over target (see SloConfig).
  double slo_error_budget = 0.001;
  /// Spans retained by the live trace ring the `trace` verb drains.
  int64_t live_trace_capacity = 4096;
};

/// The always-on serving daemon: owns the published model (a ModelHandle)
/// plus its matching retrieval index, accepts Top-N requests from any
/// number of client threads through a bounded MPMC queue, and serves them
/// from ONE admission loop that coalesces concurrently-waiting requests
/// into shared batched work — one candidate sweep per batch, all requests'
/// candidate rows flattened into shared ScoreRows calls so concurrent
/// users share rating-MLP GEMM batches (docs/serving.md#daemon).
///
/// Results are bitwise identical to per-request serving: candidate lists
/// come from the same UninteractedItems / RetrieveCandidates helpers the
/// library paths use, ScoreRows is per-row bitwise equal to Score, and
/// selection goes through the same SelectTopN — so TopN() returns exactly
/// what TopNRecommendations / TwoStageTopN would, regardless of which
/// requests happened to share a batch.
///
/// Hot swap: Publish() prepares the read side of the incoming model
/// (OnEvalBegin + PrepareParallelScoring), then swaps model and index as
/// one unit under the state mutex. Each batch acquires the state once, so
/// a batch never mixes two versions and never pairs a model with another
/// version's index; old snapshots unmap when their last batch drains
/// (ModelHandle's drain-based retirement).
class Server {
 public:
  /// `train_graph` is the interaction-masking graph; it must outlive the
  /// server. Scoring happens on the admission thread only.
  Server(const ServerConfig& config, const UserItemGraph& train_graph);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Publishes a model version (and, in retrieval mode, the index built
  /// from THAT model's embeddings — required when num_candidates > 0).
  /// Does the read-side preparation before the swap, so the first request
  /// on the new version pays no lazy-init cost. Safe under live traffic.
  void Publish(std::shared_ptr<Recommender> model,
               std::shared_ptr<const ItemIndex> index = nullptr);

  /// Starts the admission loop. Call once, after the first Publish.
  void Start();

  /// Closes the queue, serves every already-accepted request, and joins
  /// the admission loop. Requests arriving after Stop are rejected.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Per-request metadata returned alongside the recommendations: the
  /// request id that also tags this request's spans in the live trace, and
  /// the latency breakdown the admission loop measured for it. Timing
  /// fields are 0 when neither telemetry nor the stats endpoint is active.
  struct RequestTicket {
    uint64_t id = 0;
    uint64_t queue_wait_ns = 0;  ///< enqueue -> batch admission
    uint64_t exec_ns = 0;        ///< batch admission -> result ready
    uint64_t batch_seq = 0;      ///< admission batch this request rode in
  };

  /// Blocking Top-N for `user`: enqueues, waits for the admission loop,
  /// returns true with the recommendations in `*out`. Returns false (and
  /// leaves `*out` untouched) only when the server has been stopped.
  /// Callable from any number of threads concurrently. `ticket`, if given,
  /// receives the request id and latency breakdown on success.
  bool TopN(int64_t user, std::vector<Recommendation>* out,
            RequestTicket* ticket = nullptr);

  /// Point-in-time serving statistics (relaxed counters — exact once the
  /// server is stopped).
  struct Stats {
    uint64_t requests = 0;      ///< accepted and served
    uint64_t rejected = 0;      ///< refused because the server was stopped
    uint64_t batches = 0;       ///< admission batches served
    uint64_t rows_scored = 0;   ///< flattened (user, item) rows scored
    uint64_t max_batch = 0;     ///< largest batch actually coalesced
    uint64_t publishes = 0;     ///< Publish() calls (ModelHandle swaps)
  };
  Stats stats() const;

  /// Totals of the demand-paged user-representation cache; all-zero until
  /// a lazy Publish creates one (full warm-up mode never does).
  ReprCache::Stats user_cache_stats() const;

  // -- Observability plane (read by StatsEndpoint and tests) -----------------

  const ServerConfig& config() const { return config_; }
  /// Whether a model version has been published (healthz readiness).
  bool model_published() const;
  /// Whether the queue still accepts requests (false after Stop).
  bool accepting() const { return !queue_.closed(); }
  SloTracker& slo() { return slo_; }
  const SloTracker& slo() const { return slo_; }
  /// The live trace ring; nullptr when no stats socket is configured.
  LiveTraceRing* live_trace() { return live_trace_.get(); }
  /// The stats endpoint; nullptr when no stats socket is configured or
  /// Start() hasn't run. Exposed so tests can call Handle() directly.
  StatsEndpoint* stats_endpoint() { return stats_.get(); }

 private:
  struct Reply {
    std::vector<Recommendation> recommendations;
    uint64_t queue_wait_ns = 0;
    uint64_t exec_ns = 0;
    uint64_t batch_seq = 0;
  };

  struct Request {
    int64_t user = 0;
    uint64_t id = 0;
    uint64_t enqueue_ns = 0;  ///< 0 when timing is off
    std::promise<Reply> result;
  };

  void Loop();
  void ServeBatch(std::vector<Request>& batch);

  /// Reusable buffers of the admission thread: every O(catalog)-sized
  /// vector ServeBatch fills (candidate lists, the stage-2 flatten, the
  /// selection staging area) keeps its capacity across batches, so a
  /// steady-state batch allocates nothing catalog-sized. Touched only by
  /// the Loop thread.
  struct BatchScratch {
    std::vector<std::vector<int64_t>> candidates;
    std::vector<int64_t> batch_users;
    std::vector<int64_t> users;
    std::vector<int64_t> items;
    std::vector<float> scores;
    std::vector<Recommendation> scored;
  };
  BatchScratch scratch_;

  const ServerConfig config_;
  const UserItemGraph& train_graph_;

  /// Read-side preparation pool for Publish (PrepareParallelScoring).
  ThreadPool prep_pool_{1};

  /// Model and index swap as one unit under state_mu_ so a reader can
  /// never pair a model with another version's index. The ModelHandle
  /// inside still provides drain-based retirement and the swap counter.
  mutable std::mutex state_mu_;
  ModelHandle handle_;
  std::shared_ptr<const ItemIndex> index_;

  /// Lazy-warm-up state: the user-representation cache (created by the
  /// first lazy Publish of a supporting model, shared across publishes so
  /// the hot set survives swaps) and the version tag for its entries —
  /// bumped per Publish, so a swap invalidates the previous version's
  /// entries lazily with no flush.
  std::shared_ptr<ReprCache> user_cache_;  // guarded by state_mu_
  std::atomic<uint64_t> publish_seq_{0};

  MpmcQueue<Request> queue_;
  std::thread worker_;
  bool started_ = false;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> rows_scored_{0};
  std::atomic<uint64_t> max_batch_{0};
  std::atomic<uint64_t> next_request_id_{0};

  SloTracker slo_;
  std::unique_ptr<LiveTraceRing> live_trace_;
  std::unique_ptr<StatsEndpoint> stats_;
};

}  // namespace serve
}  // namespace scenerec

#endif  // SCENEREC_SERVE_SERVER_H_
