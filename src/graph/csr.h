#ifndef SCENEREC_GRAPH_CSR_H_
#define SCENEREC_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace scenerec {

/// One weighted directed edge used when constructing graphs.
struct Edge {
  int64_t src = 0;
  int64_t dst = 0;
  float weight = 1.0f;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
  }
};

/// Immutable weighted adjacency in compressed-sparse-row form. Source and
/// destination node id spaces may differ (bipartite layers use that), so the
/// graph is directed; symmetric relations store both directions.
class CsrGraph {
 public:
  /// Empty graph with no nodes.
  CsrGraph() = default;

  /// Builds from an edge list. Edge endpoints must lie in
  /// [0, num_src) x [0, num_dst). Neighbor lists are sorted by node id;
  /// duplicate (src, dst) pairs have their weights summed.
  static CsrGraph FromEdges(int64_t num_src, int64_t num_dst,
                            std::vector<Edge> edges);

  CsrGraph(const CsrGraph&) = default;
  CsrGraph& operator=(const CsrGraph&) = default;
  CsrGraph(CsrGraph&&) = default;
  CsrGraph& operator=(CsrGraph&&) = default;

  int64_t num_src() const { return num_src_; }
  int64_t num_dst() const { return num_dst_; }
  int64_t num_edges() const { return static_cast<int64_t>(dst_.size()); }

  /// Neighbor ids of `src`, sorted ascending.
  std::span<const int64_t> Neighbors(int64_t src) const {
    SCENEREC_DCHECK(src >= 0 && src < num_src_);
    const size_t begin = static_cast<size_t>(offsets_[src]);
    const size_t end = static_cast<size_t>(offsets_[src + 1]);
    return {dst_.data() + begin, end - begin};
  }

  /// Edge weights aligned with Neighbors(src).
  std::span<const float> Weights(int64_t src) const {
    SCENEREC_DCHECK(src >= 0 && src < num_src_);
    const size_t begin = static_cast<size_t>(offsets_[src]);
    const size_t end = static_cast<size_t>(offsets_[src + 1]);
    return {weights_.data() + begin, end - begin};
  }

  int64_t OutDegree(int64_t src) const {
    SCENEREC_DCHECK(src >= 0 && src < num_src_);
    return offsets_[src + 1] - offsets_[src];
  }

  /// Binary search over the sorted neighbor list.
  bool HasEdge(int64_t src, int64_t dst) const;

  /// Weight of edge (src, dst), or 0 if the edge is absent.
  float WeightOfEdge(int64_t src, int64_t dst) const;

  /// Mean out-degree over sources (0 for an empty graph).
  double MeanOutDegree() const {
    return num_src_ == 0 ? 0.0
                         : static_cast<double>(num_edges()) /
                               static_cast<double>(num_src_);
  }

 private:
  int64_t num_src_ = 0;
  int64_t num_dst_ = 0;
  std::vector<int64_t> offsets_;  // size num_src_ + 1
  std::vector<int64_t> dst_;
  std::vector<float> weights_;
};

/// Keeps, for every source node, only its `k` highest-weight out-edges
/// (ties broken by lower destination id). The paper applies this with
/// k=300 for item-item co-views and k=100 for category-category co-views.
std::vector<Edge> KeepTopKPerSource(std::vector<Edge> edges, int64_t k);

/// Returns the union of `edges` and their reverses, so that a co-occurrence
/// relation becomes symmetric adjacency. Self-loops are kept as-is (not
/// duplicated).
std::vector<Edge> MakeSymmetric(std::vector<Edge> edges);

}  // namespace scenerec

#endif  // SCENEREC_GRAPH_CSR_H_
