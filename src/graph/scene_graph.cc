#include "graph/scene_graph.h"

#include <algorithm>

#include "common/string_util.h"

namespace scenerec {

SceneGraph SceneGraph::Build(int64_t num_items, int64_t num_categories,
                             int64_t num_scenes,
                             std::vector<int64_t> item_category,
                             std::vector<Edge> item_item_edges,
                             std::vector<Edge> category_category_edges,
                             std::vector<Edge> category_scene_edges) {
  SCENEREC_CHECK_EQ(static_cast<int64_t>(item_category.size()), num_items);
  SceneGraph graph;
  graph.item_category_ = std::move(item_category);
  graph.item_item_ =
      CsrGraph::FromEdges(num_items, num_items, std::move(item_item_edges));
  graph.category_category_ = CsrGraph::FromEdges(
      num_categories, num_categories, std::move(category_category_edges));

  std::vector<Edge> scene_to_cat;
  scene_to_cat.reserve(category_scene_edges.size());
  for (const Edge& e : category_scene_edges) {
    scene_to_cat.push_back({e.dst, e.src, e.weight});
  }
  graph.category_to_scene_ = CsrGraph::FromEdges(num_categories, num_scenes,
                                                 std::move(category_scene_edges));
  graph.scene_to_category_ =
      CsrGraph::FromEdges(num_scenes, num_categories, std::move(scene_to_cat));

  std::vector<Edge> cat_to_item;
  cat_to_item.reserve(graph.item_category_.size());
  for (int64_t item = 0; item < num_items; ++item) {
    const int64_t category = graph.item_category_[static_cast<size_t>(item)];
    SCENEREC_CHECK(category >= 0 && category < num_categories)
        << "item" << item << "has category" << category;
    cat_to_item.push_back({category, item, 1.0f});
  }
  graph.category_to_item_ =
      CsrGraph::FromEdges(num_categories, num_items, std::move(cat_to_item));
  return graph;
}

Status SceneGraph::Validate() const {
  for (int64_t item = 0; item < num_items(); ++item) {
    const int64_t category = item_category_[static_cast<size_t>(item)];
    if (category < 0 || category >= num_categories()) {
      return Status::FailedPrecondition(
          StrFormat("item %lld has out-of-range category %lld",
                    static_cast<long long>(item),
                    static_cast<long long>(category)));
    }
  }
  // Scene membership must be consistent in both directions.
  if (category_to_scene_.num_edges() != scene_to_category_.num_edges()) {
    return Status::FailedPrecondition(
        "category<->scene edge counts disagree");
  }
  for (int64_t category = 0; category < num_categories(); ++category) {
    for (int64_t scene : ScenesOfCategory(category)) {
      if (scene < 0 || scene >= num_scenes()) {
        return Status::FailedPrecondition(
            StrFormat("category %lld references invalid scene %lld",
                      static_cast<long long>(category),
                      static_cast<long long>(scene)));
      }
      if (!scene_to_category_.HasEdge(scene, category)) {
        return Status::FailedPrecondition(
            StrFormat("scene %lld missing reverse edge to category %lld",
                      static_cast<long long>(scene),
                      static_cast<long long>(category)));
      }
    }
  }
  // Item layer endpoints must be valid item ids (guaranteed by CsrGraph
  // construction) and contain no self-loops.
  for (int64_t item = 0; item < num_items(); ++item) {
    for (int64_t neighbor : ItemNeighbors(item)) {
      if (neighbor == item) {
        return Status::FailedPrecondition(
            StrFormat("item %lld has a self-loop",
                      static_cast<long long>(item)));
      }
    }
  }
  return Status::OK();
}

SceneGraphBuilder::SceneGraphBuilder(int64_t num_items, int64_t num_categories,
                                     int64_t num_scenes)
    : num_items_(num_items),
      num_categories_(num_categories),
      num_scenes_(num_scenes),
      item_category_(static_cast<size_t>(num_items), -1) {}

void SceneGraphBuilder::SetItemCategory(int64_t item, int64_t category) {
  SCENEREC_CHECK(item >= 0 && item < num_items_);
  SCENEREC_CHECK(category >= 0 && category < num_categories_);
  item_category_[static_cast<size_t>(item)] = category;
}

void SceneGraphBuilder::AddItemCoView(int64_t item_a, int64_t item_b,
                                      float count) {
  SCENEREC_CHECK(item_a >= 0 && item_a < num_items_);
  SCENEREC_CHECK(item_b >= 0 && item_b < num_items_);
  if (item_a == item_b) return;  // Self co-views carry no signal.
  item_coviews_.push_back({item_a, item_b, count});
  item_coviews_.push_back({item_b, item_a, count});
}

void SceneGraphBuilder::AddCategoryCoView(int64_t cat_a, int64_t cat_b,
                                          float count) {
  SCENEREC_CHECK(cat_a >= 0 && cat_a < num_categories_);
  SCENEREC_CHECK(cat_b >= 0 && cat_b < num_categories_);
  if (cat_a == cat_b) return;
  category_coviews_.push_back({cat_a, cat_b, count});
  category_coviews_.push_back({cat_b, cat_a, count});
}

void SceneGraphBuilder::AddCategoryToScene(int64_t category, int64_t scene) {
  SCENEREC_CHECK(category >= 0 && category < num_categories_);
  SCENEREC_CHECK(scene >= 0 && scene < num_scenes_);
  category_scene_.push_back({category, scene, 1.0f});
}

namespace {

/// Accumulates duplicate (src, dst) weights so top-K sees total co-view
/// counts, mirroring "the weight is the sum of co-occurrence frequency".
std::vector<Edge> AccumulateWeights(std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  size_t write = 0;
  for (size_t read = 0; read < edges.size(); ++read) {
    if (write > 0 && edges[write - 1].src == edges[read].src &&
        edges[write - 1].dst == edges[read].dst) {
      edges[write - 1].weight += edges[read].weight;
    } else {
      edges[write++] = edges[read];
    }
  }
  edges.resize(write);
  return edges;
}

}  // namespace

StatusOr<SceneGraph> SceneGraphBuilder::Build() {
  for (int64_t item = 0; item < num_items_; ++item) {
    if (item_category_[static_cast<size_t>(item)] < 0) {
      return Status::FailedPrecondition(
          StrFormat("item %lld has no category assigned",
                    static_cast<long long>(item)));
    }
  }
  // Top-K truncation happens on accumulated directed weights; the result is
  // re-symmetrized because truncation may keep only one direction.
  std::vector<Edge> item_edges = KeepTopKPerSource(
      AccumulateWeights(std::move(item_coviews_)), max_item_neighbors_);
  item_edges = MakeSymmetric(std::move(item_edges));
  std::vector<Edge> category_edges =
      KeepTopKPerSource(AccumulateWeights(std::move(category_coviews_)),
                        max_category_neighbors_);
  category_edges = MakeSymmetric(std::move(category_edges));

  // The final scene-based graph uses unit weights (Definition 3.3).
  for (Edge& e : item_edges) e.weight = 1.0f;
  for (Edge& e : category_edges) e.weight = 1.0f;

  SceneGraph graph = SceneGraph::Build(
      num_items_, num_categories_, num_scenes_, std::move(item_category_),
      std::move(item_edges), std::move(category_edges),
      std::move(category_scene_));
  SCENEREC_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

}  // namespace scenerec
