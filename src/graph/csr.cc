#include "graph/csr.h"

#include <algorithm>

namespace scenerec {

CsrGraph CsrGraph::FromEdges(int64_t num_src, int64_t num_dst,
                             std::vector<Edge> edges) {
  SCENEREC_CHECK_GE(num_src, 0);
  SCENEREC_CHECK_GE(num_dst, 0);
  for (const Edge& e : edges) {
    SCENEREC_CHECK(e.src >= 0 && e.src < num_src)
        << "edge src" << e.src << "out of range" << num_src;
    SCENEREC_CHECK(e.dst >= 0 && e.dst < num_dst)
        << "edge dst" << e.dst << "out of range" << num_dst;
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  // Merge duplicate (src, dst) pairs by summing weights.
  size_t write = 0;
  for (size_t read = 0; read < edges.size(); ++read) {
    if (write > 0 && edges[write - 1].src == edges[read].src &&
        edges[write - 1].dst == edges[read].dst) {
      edges[write - 1].weight += edges[read].weight;
    } else {
      edges[write++] = edges[read];
    }
  }
  edges.resize(write);

  CsrGraph graph;
  graph.num_src_ = num_src;
  graph.num_dst_ = num_dst;
  graph.offsets_.assign(static_cast<size_t>(num_src) + 1, 0);
  graph.dst_.reserve(edges.size());
  graph.weights_.reserve(edges.size());
  for (const Edge& e : edges) {
    graph.offsets_[static_cast<size_t>(e.src) + 1]++;
    graph.dst_.push_back(e.dst);
    graph.weights_.push_back(e.weight);
  }
  for (size_t i = 1; i < graph.offsets_.size(); ++i) {
    graph.offsets_[i] += graph.offsets_[i - 1];
  }
  return graph;
}

bool CsrGraph::HasEdge(int64_t src, int64_t dst) const {
  auto neighbors = Neighbors(src);
  return std::binary_search(neighbors.begin(), neighbors.end(), dst);
}

float CsrGraph::WeightOfEdge(int64_t src, int64_t dst) const {
  auto neighbors = Neighbors(src);
  auto it = std::lower_bound(neighbors.begin(), neighbors.end(), dst);
  if (it == neighbors.end() || *it != dst) return 0.0f;
  return Weights(src)[static_cast<size_t>(it - neighbors.begin())];
}

std::vector<Edge> KeepTopKPerSource(std::vector<Edge> edges, int64_t k) {
  SCENEREC_CHECK_GT(k, 0);
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.weight != b.weight) return a.weight > b.weight;
    return a.dst < b.dst;
  });
  std::vector<Edge> kept;
  kept.reserve(edges.size());
  int64_t current_src = -1;
  int64_t count = 0;
  for (const Edge& e : edges) {
    if (e.src != current_src) {
      current_src = e.src;
      count = 0;
    }
    if (count < k) {
      kept.push_back(e);
      ++count;
    }
  }
  return kept;
}

std::vector<Edge> MakeSymmetric(std::vector<Edge> edges) {
  const size_t original = edges.size();
  edges.reserve(original * 2);
  for (size_t i = 0; i < original; ++i) {
    const Edge& e = edges[i];
    if (e.src != e.dst) edges.push_back({e.dst, e.src, e.weight});
  }
  return edges;
}

}  // namespace scenerec
