#include "graph/bipartite_graph.h"

namespace scenerec {

UserItemGraph UserItemGraph::Build(
    int64_t num_users, int64_t num_items,
    const std::vector<Interaction>& interactions) {
  std::vector<Edge> forward;
  std::vector<Edge> backward;
  forward.reserve(interactions.size());
  backward.reserve(interactions.size());
  for (const Interaction& x : interactions) {
    forward.push_back({x.user, x.item, 1.0f});
    backward.push_back({x.item, x.user, 1.0f});
  }
  UserItemGraph graph;
  graph.user_to_item_ =
      CsrGraph::FromEdges(num_users, num_items, std::move(forward));
  graph.item_to_user_ =
      CsrGraph::FromEdges(num_items, num_users, std::move(backward));
  return graph;
}

}  // namespace scenerec
