#ifndef SCENEREC_GRAPH_SCENE_GRAPH_H_
#define SCENEREC_GRAPH_SCENE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/status_or.h"
#include "graph/csr.h"

namespace scenerec {

/// The scene-based graph H of Definition 3.3: a 3-layer hierarchy of items,
/// categories and scenes with
///   * item-item edges        (L_item, co-view similarity, top-K truncated),
///   * category-category edges (L_cate, labeled relevance),
///   * item->category mapping  (L_ic, each item has exactly one category),
///   * category<->scene edges  (L_cs, scene membership).
///
/// All edge weights are 1 in the model (the paper sets weights of H to 1);
/// raw co-view counts are only used for the top-K construction step, which
/// happens in SceneGraphBuilder before this class is built.
class SceneGraph {
 public:
  SceneGraph() = default;

  /// Assembles the hierarchy. `item_category[i]` is the category of item i.
  /// Item-item and category-category edge lists should already be symmetric
  /// and truncated (see SceneGraphBuilder). Scene membership edges are given
  /// as (category, scene) pairs.
  static SceneGraph Build(int64_t num_items, int64_t num_categories,
                          int64_t num_scenes,
                          std::vector<int64_t> item_category,
                          std::vector<Edge> item_item_edges,
                          std::vector<Edge> category_category_edges,
                          std::vector<Edge> category_scene_edges);

  int64_t num_items() const { return static_cast<int64_t>(item_category_.size()); }
  int64_t num_categories() const { return category_category_.num_src(); }
  int64_t num_scenes() const { return scene_to_category_.num_src(); }

  /// C(i_p): the single pre-defined category of an item (eq. 8).
  int64_t CategoryOfItem(int64_t item) const {
    SCENEREC_DCHECK(item >= 0 && item < num_items());
    return item_category_[static_cast<size_t>(item)];
  }

  /// II(i_p): item neighbors in the item layer (eq. 9).
  std::span<const int64_t> ItemNeighbors(int64_t item) const {
    return item_item_.Neighbors(item);
  }

  /// CC(c_p): related categories in the category layer (eq. 4).
  std::span<const int64_t> CategoryNeighbors(int64_t category) const {
    return category_category_.Neighbors(category);
  }

  /// CS(c_p): scenes the category belongs to (eq. 3).
  std::span<const int64_t> ScenesOfCategory(int64_t category) const {
    return category_to_scene_.Neighbors(category);
  }

  /// IS(i_p): scenes containing the item's category (eq. 10).
  std::span<const int64_t> ScenesOfItem(int64_t item) const {
    return ScenesOfCategory(CategoryOfItem(item));
  }

  /// Members of a scene (categories), the reverse of ScenesOfCategory.
  std::span<const int64_t> CategoriesOfScene(int64_t scene) const {
    return scene_to_category_.Neighbors(scene);
  }

  /// Items assigned to a category (reverse of CategoryOfItem).
  std::span<const int64_t> ItemsOfCategory(int64_t category) const {
    return category_to_item_.Neighbors(category);
  }

  int64_t num_item_item_edges() const { return item_item_.num_edges(); }
  int64_t num_category_category_edges() const {
    return category_category_.num_edges();
  }
  int64_t num_category_scene_edges() const {
    return category_to_scene_.num_edges();
  }

  const CsrGraph& item_item() const { return item_item_; }
  const CsrGraph& category_category() const { return category_category_; }
  const CsrGraph& category_to_scene() const { return category_to_scene_; }
  const CsrGraph& scene_to_category() const { return scene_to_category_; }

  /// Structural sanity: every category id in range, scene membership edges
  /// consistent in both directions, no dangling references. Returns the
  /// first violation found.
  Status Validate() const;

 private:
  std::vector<int64_t> item_category_;
  CsrGraph item_item_;
  CsrGraph category_category_;
  CsrGraph category_to_scene_;
  CsrGraph scene_to_category_;
  CsrGraph category_to_item_;
};

/// Constructs a SceneGraph from raw co-occurrence observations, applying the
/// paper's pipeline: weight accumulation, per-node top-K truncation
/// (k=300 for items, k=100 for categories by default), then symmetrization.
class SceneGraphBuilder {
 public:
  SceneGraphBuilder(int64_t num_items, int64_t num_categories,
                    int64_t num_scenes);

  /// Sets the per-node truncation limits. Defaults follow Section 5.1.
  void set_max_item_neighbors(int64_t k) { max_item_neighbors_ = k; }
  void set_max_category_neighbors(int64_t k) { max_category_neighbors_ = k; }

  /// Declares the category of an item (must be called for every item).
  void SetItemCategory(int64_t item, int64_t category);

  /// Records a co-view of two distinct items with the given count.
  void AddItemCoView(int64_t item_a, int64_t item_b, float count = 1.0f);

  /// Records category-category relevance evidence (co-view count).
  void AddCategoryCoView(int64_t cat_a, int64_t cat_b, float count = 1.0f);

  /// Assigns a category to a scene.
  void AddCategoryToScene(int64_t category, int64_t scene);

  /// Finalizes: truncates to top-K per node, symmetrizes, and builds the
  /// SceneGraph. Fails if some item has no category.
  StatusOr<SceneGraph> Build();

 private:
  int64_t num_items_;
  int64_t num_categories_;
  int64_t num_scenes_;
  int64_t max_item_neighbors_ = 300;
  int64_t max_category_neighbors_ = 100;
  std::vector<int64_t> item_category_;
  std::vector<Edge> item_coviews_;
  std::vector<Edge> category_coviews_;
  std::vector<Edge> category_scene_;
};

}  // namespace scenerec

#endif  // SCENEREC_GRAPH_SCENE_GRAPH_H_
