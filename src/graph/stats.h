#ifndef SCENEREC_GRAPH_STATS_H_
#define SCENEREC_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/bipartite_graph.h"
#include "graph/scene_graph.h"

namespace scenerec {

/// The relation counts reported in Table 1 of the paper, one row per
/// relation family A-B: number of A, number of B, number of A-B edges.
struct DatasetStats {
  std::string name;

  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_categories = 0;
  int64_t num_scenes = 0;

  int64_t user_item_edges = 0;
  int64_t item_item_edges = 0;
  int64_t item_category_edges = 0;  // == num_items (one category per item)
  int64_t category_category_edges = 0;
  int64_t scene_category_edges = 0;

  double mean_user_degree = 0.0;
  double mean_item_item_degree = 0.0;
};

/// Computes Table 1 statistics from the two graphs.
DatasetStats ComputeStats(const std::string& name, const UserItemGraph& ui,
                          const SceneGraph& scene);

/// Renders one dataset's statistics in the layout of Table 1:
///   Relation (A-B): #A-#B (#A-B).
std::string FormatStatsTable(const DatasetStats& stats);

}  // namespace scenerec

#endif  // SCENEREC_GRAPH_STATS_H_
