#ifndef SCENEREC_GRAPH_BIPARTITE_GRAPH_H_
#define SCENEREC_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/csr.h"

namespace scenerec {

/// One observed user-item interaction (an implicit-feedback click).
struct Interaction {
  int64_t user = 0;
  int64_t item = 0;

  friend bool operator==(const Interaction& a, const Interaction& b) {
    return a.user == b.user && a.item == b.item;
  }
};

/// The user-item bipartite graph G of Definition 3.2, stored with both
/// orientations so user modeling (eq. 1) and item modeling (eq. 2) each get
/// O(degree) neighbor access.
class UserItemGraph {
 public:
  UserItemGraph() = default;

  /// Builds from interactions; duplicates collapse into edge weight.
  static UserItemGraph Build(int64_t num_users, int64_t num_items,
                             const std::vector<Interaction>& interactions);

  int64_t num_users() const { return user_to_item_.num_src(); }
  int64_t num_items() const { return user_to_item_.num_dst(); }
  int64_t num_interactions() const { return user_to_item_.num_edges(); }

  /// UI(u): items user `u` interacted with (sorted).
  std::span<const int64_t> ItemsOfUser(int64_t user) const {
    return user_to_item_.Neighbors(user);
  }

  /// IU(i): users who interacted with item `i` (sorted).
  std::span<const int64_t> UsersOfItem(int64_t item) const {
    return item_to_user_.Neighbors(item);
  }

  int64_t UserDegree(int64_t user) const {
    return user_to_item_.OutDegree(user);
  }
  int64_t ItemDegree(int64_t item) const {
    return item_to_user_.OutDegree(item);
  }

  /// True iff user `u` has interacted with item `i`.
  bool HasInteraction(int64_t user, int64_t item) const {
    return user_to_item_.HasEdge(user, item);
  }

  const CsrGraph& user_to_item() const { return user_to_item_; }
  const CsrGraph& item_to_user() const { return item_to_user_; }

 private:
  CsrGraph user_to_item_;
  CsrGraph item_to_user_;
};

}  // namespace scenerec

#endif  // SCENEREC_GRAPH_BIPARTITE_GRAPH_H_
