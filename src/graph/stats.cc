#include "graph/stats.h"

#include <sstream>

#include "common/string_util.h"

namespace scenerec {

DatasetStats ComputeStats(const std::string& name, const UserItemGraph& ui,
                          const SceneGraph& scene) {
  DatasetStats stats;
  stats.name = name;
  stats.num_users = ui.num_users();
  stats.num_items = ui.num_items();
  stats.num_categories = scene.num_categories();
  stats.num_scenes = scene.num_scenes();
  stats.user_item_edges = ui.num_interactions();
  stats.item_item_edges = scene.num_item_item_edges();
  stats.item_category_edges = scene.num_items();
  stats.category_category_edges = scene.num_category_category_edges();
  stats.scene_category_edges = scene.num_category_scene_edges();
  stats.mean_user_degree =
      stats.num_users == 0
          ? 0.0
          : static_cast<double>(stats.user_item_edges) / stats.num_users;
  stats.mean_item_item_degree = scene.item_item().MeanOutDegree();
  return stats;
}

std::string FormatStatsTable(const DatasetStats& s) {
  std::ostringstream out;
  auto row = [&out](const char* relation, int64_t a, int64_t b, int64_t ab) {
    out << "  " << relation << ": " << FormatWithCommas(a) << "-"
        << FormatWithCommas(b) << " (" << FormatWithCommas(ab) << ")\n";
  };
  out << s.name << "\n";
  row("User-Item        ", s.num_users, s.num_items, s.user_item_edges);
  row("Item-Item        ", s.num_items, s.num_items, s.item_item_edges);
  row("Item-Category    ", s.num_items, s.num_categories,
      s.item_category_edges);
  row("Category-Category", s.num_categories, s.num_categories,
      s.category_category_edges);
  row("Scene-Category   ", s.num_scenes, s.num_categories,
      s.scene_category_edges);
  return out.str();
}

}  // namespace scenerec
