#include "data/scene_mining.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace scenerec {

Status SceneMiningConfig::Validate() const {
  if (max_scenes < 0) {
    return Status::InvalidArgument("max_scenes must be non-negative");
  }
  if (max_memberships_per_category <= 0) {
    return Status::InvalidArgument(
        "max_memberships_per_category must be positive");
  }
  if (expansion_threshold <= 0.0 || expansion_threshold > 1.0) {
    return Status::InvalidArgument("expansion_threshold must be in (0, 1]");
  }
  if (seed_weight_floor < 0.0 || seed_weight_floor > 1.0) {
    return Status::InvalidArgument("seed_weight_floor must be in [0, 1]");
  }
  if (min_scene_size < 1 || max_scene_size < min_scene_size) {
    return Status::InvalidArgument("bad scene size range");
  }
  return Status::OK();
}

StatusOr<std::vector<std::vector<int64_t>>> MineScenes(
    int64_t num_categories, const std::vector<Edge>& category_cooccurrence,
    const SceneMiningConfig& config) {
  SCENEREC_RETURN_IF_ERROR(config.Validate());
  if (num_categories <= 0) {
    return Status::InvalidArgument("num_categories must be positive");
  }
  for (const Edge& e : category_cooccurrence) {
    if (e.src < 0 || e.src >= num_categories || e.dst < 0 ||
        e.dst >= num_categories) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (e.weight < 0.0f) {
      return Status::InvalidArgument("negative co-occurrence weight");
    }
  }
  // Symmetrize and accumulate duplicates so lookups see total evidence.
  CsrGraph graph =
      CsrGraph::FromEdges(num_categories, num_categories,
                          MakeSymmetric(category_cooccurrence));

  // Candidate seeds: all (a < b) edges, heaviest first.
  struct Seed {
    int64_t a;
    int64_t b;
    float weight;
  };
  std::vector<Seed> seeds;
  float max_weight = 0.0f;
  for (int64_t a = 0; a < num_categories; ++a) {
    auto neighbors = graph.Neighbors(a);
    auto weights = graph.Weights(a);
    for (size_t j = 0; j < neighbors.size(); ++j) {
      if (neighbors[j] <= a) continue;  // self loops and mirrored pairs
      seeds.push_back({a, neighbors[j], weights[j]});
      max_weight = std::max(max_weight, weights[j]);
    }
  }
  std::sort(seeds.begin(), seeds.end(), [](const Seed& x, const Seed& y) {
    if (x.weight != y.weight) return x.weight > y.weight;
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });

  std::vector<std::vector<int64_t>> scenes;
  std::vector<int64_t> memberships(static_cast<size_t>(num_categories), 0);
  std::vector<std::set<int64_t>> scene_sets;

  for (const Seed& seed : seeds) {
    if (config.max_scenes > 0 &&
        static_cast<int64_t>(scenes.size()) >= config.max_scenes) {
      break;
    }
    if (seed.weight < config.seed_weight_floor * max_weight) break;
    if (memberships[static_cast<size_t>(seed.a)] >=
            config.max_memberships_per_category ||
        memberships[static_cast<size_t>(seed.b)] >=
            config.max_memberships_per_category) {
      continue;
    }
    // Skip if the pair already co-habits a scene: that evidence is covered.
    bool covered = false;
    for (const auto& members : scene_sets) {
      if (members.count(seed.a) > 0 && members.count(seed.b) > 0) {
        covered = true;
        break;
      }
    }
    if (covered) continue;

    // Grow the scene greedily.
    std::vector<int64_t> members{seed.a, seed.b};
    double internal_sum = seed.weight;
    int64_t internal_pairs = 1;
    while (static_cast<int64_t>(members.size()) < config.max_scene_size) {
      const double internal_avg =
          internal_sum / static_cast<double>(internal_pairs);
      int64_t best_candidate = -1;
      double best_avg_link = 0.0;
      for (int64_t candidate = 0; candidate < num_categories; ++candidate) {
        if (memberships[static_cast<size_t>(candidate)] >=
            config.max_memberships_per_category) {
          continue;
        }
        if (std::find(members.begin(), members.end(), candidate) !=
            members.end()) {
          continue;
        }
        double link_sum = 0.0;
        for (int64_t m : members) {
          link_sum += graph.WeightOfEdge(candidate, m);
        }
        const double avg_link =
            link_sum / static_cast<double>(members.size());
        if (avg_link < config.expansion_threshold * internal_avg) continue;
        if (avg_link > best_avg_link) {
          best_avg_link = avg_link;
          best_candidate = candidate;
        }
      }
      if (best_candidate < 0) break;
      internal_sum += best_avg_link * static_cast<double>(members.size());
      internal_pairs += static_cast<int64_t>(members.size());
      members.push_back(best_candidate);
    }
    if (static_cast<int64_t>(members.size()) < config.min_scene_size) {
      continue;
    }
    std::sort(members.begin(), members.end());
    for (int64_t m : members) ++memberships[static_cast<size_t>(m)];
    scene_sets.emplace_back(members.begin(), members.end());
    scenes.push_back(std::move(members));
  }
  return scenes;
}

Status ApplyMinedScenes(const std::vector<std::vector<int64_t>>& scenes,
                        const std::vector<Edge>& category_cooccurrence,
                        Dataset* dataset) {
  SCENEREC_CHECK(dataset != nullptr);
  if (scenes.empty()) {
    return Status::FailedPrecondition("no mined scenes to apply");
  }
  for (const auto& members : scenes) {
    for (int64_t c : members) {
      if (c < 0 || c >= dataset->num_categories) {
        return Status::InvalidArgument(StrFormat(
            "mined scene references invalid category %lld",
            static_cast<long long>(c)));
      }
    }
  }
  std::vector<Edge> edges;
  std::vector<bool> covered(static_cast<size_t>(dataset->num_categories),
                            false);
  for (size_t s = 0; s < scenes.size(); ++s) {
    for (int64_t c : scenes[s]) {
      edges.push_back({c, static_cast<int64_t>(s), 1.0f});
      covered[static_cast<size_t>(c)] = true;
    }
  }
  // Attach uncovered categories to the scene they share the most
  // co-occurrence weight with.
  std::vector<std::set<int64_t>> scene_members(scenes.size());
  for (size_t s = 0; s < scenes.size(); ++s) {
    scene_members[s] = {scenes[s].begin(), scenes[s].end()};
  }
  for (int64_t c = 0; c < dataset->num_categories; ++c) {
    if (covered[static_cast<size_t>(c)]) continue;
    std::vector<double> affinity(scenes.size(), 0.0);
    for (const Edge& e : category_cooccurrence) {
      int64_t other = -1;
      if (e.src == c) other = e.dst;
      if (e.dst == c) other = e.src;
      if (other < 0) continue;
      for (size_t s = 0; s < scenes.size(); ++s) {
        if (scene_members[s].count(other)) affinity[s] += e.weight;
      }
    }
    size_t best = 0;
    for (size_t s = 1; s < scenes.size(); ++s) {
      if (affinity[s] > affinity[best]) best = s;
    }
    edges.push_back({c, static_cast<int64_t>(best), 1.0f});
  }
  dataset->num_scenes = static_cast<int64_t>(scenes.size());
  dataset->category_scene_edges = std::move(edges);
  return dataset->Validate();
}

}  // namespace scenerec
