#ifndef SCENEREC_DATA_SPLIT_H_
#define SCENEREC_DATA_SPLIT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status_or.h"
#include "data/dataset.h"

namespace scenerec {

/// One ranking evaluation instance: the held-out positive item plus sampled
/// unobserved negatives. The model ranks {positive} ∪ negatives and we check
/// where the positive lands (HR@K / NDCG@K).
struct EvalInstance {
  int64_t user = 0;
  int64_t positive_item = 0;
  std::vector<int64_t> negative_items;
};

/// Leave-one-out split following Section 5.3: for every user one random
/// positive is held out for validation and another for the test set, each
/// paired with `num_negatives` sampled unobserved items; the remaining
/// positives form the training set.
struct LeaveOneOutSplit {
  std::vector<Interaction> train;
  std::vector<EvalInstance> validation;
  std::vector<EvalInstance> test;
};

/// Performs the split. Users with fewer than 3 interactions cannot donate
/// validation + test positives and are rejected with FailedPrecondition
/// (the synthetic generator guarantees a minimum, real data should be
/// filtered upstream). Negatives are drawn uniformly from items the user
/// never interacted with. Deterministic given `rng`'s state.
StatusOr<LeaveOneOutSplit> MakeLeaveOneOutSplit(const Dataset& dataset,
                                                int64_t num_negatives,
                                                Rng& rng);

}  // namespace scenerec

#endif  // SCENEREC_DATA_SPLIT_H_
