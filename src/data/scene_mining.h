#ifndef SCENEREC_DATA_SCENE_MINING_H_
#define SCENEREC_DATA_SCENE_MINING_H_

#include <cstdint>
#include <vector>

#include "common/status_or.h"
#include "data/dataset.h"
#include "graph/csr.h"

namespace scenerec {

/// Parameters for automatic scene mining (the paper's stated future work:
/// "scene mining is our future work" — Section 5.1; the published pipeline
/// relies on ~10 human experts instead).
struct SceneMiningConfig {
  /// Stop after this many scenes (0 = unlimited).
  int64_t max_scenes = 0;

  /// A category may belong to at most this many mined scenes (scenes
  /// overlap in real taxonomies: e.g. "Batteries" serves many scenes).
  int64_t max_memberships_per_category = 3;

  /// A candidate category joins a growing scene only if its average
  /// co-occurrence weight with the current members is at least this fraction
  /// of the scene's internal average pair weight.
  double expansion_threshold = 0.5;

  /// Seed edges weaker than this fraction of the strongest edge do not
  /// start new scenes (prunes noise co-occurrences).
  double seed_weight_floor = 0.05;

  /// Mined scenes outside [min, max] member counts are discarded
  /// (Definition 3.1 requires |s| >= 1; singleton scenes carry no
  /// co-occurrence signal so the default minimum is 2).
  int64_t min_scene_size = 2;
  int64_t max_scene_size = 12;

  Status Validate() const;
};

/// Mines scenes — sets of item categories that co-occur — from weighted
/// category co-occurrence evidence (e.g. co-view counts within sessions,
/// exactly the signal the paper's experts consumed).
///
/// Algorithm: greedy seed expansion. Edges are visited from heaviest to
/// lightest; an edge whose endpoints do not already share a scene seeds a
/// new scene, which then greedily absorbs the category with the strongest
/// average connection to the current members while that average stays above
/// `expansion_threshold` of the scene's internal cohesion. Categories may
/// join up to `max_memberships_per_category` scenes, giving overlapping
/// communities. Fully deterministic (ties broken by lower category id).
///
/// Returns scenes as sorted vectors of category ids, in mining order.
/// `num_categories` must cover every edge endpoint.
StatusOr<std::vector<std::vector<int64_t>>> MineScenes(
    int64_t num_categories, const std::vector<Edge>& category_cooccurrence,
    const SceneMiningConfig& config);

/// Replaces `dataset`'s scene layer with mined scenes: rewrites num_scenes
/// and category_scene_edges. Categories left in no mined scene are attached
/// to the scene with which they share the most co-occurrence weight (every
/// category must belong to a scene for eq. (3) to be well defined).
/// Fails if `scenes` is empty.
Status ApplyMinedScenes(const std::vector<std::vector<int64_t>>& scenes,
                        const std::vector<Edge>& category_cooccurrence,
                        Dataset* dataset);

}  // namespace scenerec

#endif  // SCENEREC_DATA_SCENE_MINING_H_
