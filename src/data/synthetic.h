#ifndef SCENEREC_DATA_SYNTHETIC_H_
#define SCENEREC_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status_or.h"
#include "data/dataset.h"

namespace scenerec {

/// Parameters of the synthetic JD-like dataset generator.
///
/// The generator substitutes for the paper's proprietary JD.com click logs
/// (see DESIGN.md §3). It samples a latent scene->category->item hierarchy
/// first and then generates scene-coherent browsing sessions, so that scene
/// co-membership genuinely predicts future clicks — the signal SceneRec is
/// designed to exploit.
struct SyntheticConfig {
  std::string name = "synthetic";

  int64_t num_users = 400;
  int64_t num_items = 4000;
  int64_t num_categories = 100;
  int64_t num_scenes = 120;

  /// Categories per scene, sampled uniformly in this closed range. The JD
  /// datasets average ~4-5 categories per scene.
  int64_t min_categories_per_scene = 3;
  int64_t max_categories_per_scene = 6;

  /// Active scenes per user (their latent interests), uniform closed range.
  int64_t min_scenes_per_user = 2;
  int64_t max_scenes_per_user = 4;

  /// Browsing sessions simulated per user, and items viewed per session.
  int64_t sessions_per_user = 10;
  int64_t session_length = 8;

  /// Probability a session click stays inside the session's scene; the rest
  /// are popularity-driven exploration (noise).
  double in_scene_prob = 0.8;

  /// Zipf exponents for item popularity and category size skew.
  double item_popularity_exponent = 0.8;
  double category_size_exponent = 0.6;

  /// Paper's construction limits (Section 5.1): top-300 item-item and
  /// top-100 category-category co-view edges per node.
  int64_t max_item_neighbors = 300;
  int64_t max_category_neighbors = 100;

  /// Every user is guaranteed at least this many distinct interactions so
  /// that leave-one-out (train/validation/test) is well defined.
  int64_t min_interactions_per_user = 5;

  /// Validates ranges; returns InvalidArgument with an explanation if
  /// inconsistent (e.g. more categories per scene than categories).
  Status Validate() const;
};

/// Named presets mirroring the four JD verticals of Table 1. `scale` in
/// (0, 1] shrinks users/items/sessions linearly (categories and scenes are
/// structural metadata and stay fixed); scale=1 matches the paper's entity
/// counts.
enum class JdPreset { kBabyToy, kElectronics, kFashion, kFoodDrink };

/// Human-readable preset name matching the paper ("Baby & Toy", ...).
const char* JdPresetName(JdPreset preset);

/// All four presets in Table 1 order.
std::vector<JdPreset> AllJdPresets();

/// Returns the generator configuration for a preset at the given scale.
SyntheticConfig MakeJdConfig(JdPreset preset, double scale);

/// Generates a full dataset. Deterministic given (config, seed).
StatusOr<Dataset> GenerateSyntheticDataset(const SyntheticConfig& config,
                                           uint64_t seed);

}  // namespace scenerec

#endif  // SCENEREC_DATA_SYNTHETIC_H_
