#include "data/split.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace scenerec {

StatusOr<LeaveOneOutSplit> MakeLeaveOneOutSplit(const Dataset& dataset,
                                                int64_t num_negatives,
                                                Rng& rng) {
  if (num_negatives <= 0) {
    return Status::InvalidArgument("num_negatives must be positive");
  }
  if (num_negatives >= dataset.num_items) {
    return Status::InvalidArgument(
        "num_negatives must be smaller than the item vocabulary");
  }

  // Group interactions by user.
  std::vector<std::vector<int64_t>> by_user(
      static_cast<size_t>(dataset.num_users));
  for (const Interaction& x : dataset.interactions) {
    by_user[static_cast<size_t>(x.user)].push_back(x.item);
  }

  LeaveOneOutSplit split;
  split.train.reserve(dataset.interactions.size());
  split.validation.reserve(static_cast<size_t>(dataset.num_users));
  split.test.reserve(static_cast<size_t>(dataset.num_users));

  for (int64_t u = 0; u < dataset.num_users; ++u) {
    auto& items = by_user[static_cast<size_t>(u)];
    if (items.size() < 3) {
      return Status::FailedPrecondition(StrFormat(
          "user %lld has %zu interactions; leave-one-out needs >= 3",
          static_cast<long long>(u), items.size()));
    }
    // Pick two distinct positions: one for validation, one for test.
    const size_t vpos = static_cast<size_t>(rng.NextInt(items.size()));
    size_t tpos = static_cast<size_t>(rng.NextInt(items.size() - 1));
    if (tpos >= vpos) ++tpos;
    const int64_t validation_item = items[vpos];
    const int64_t test_item = items[tpos];

    std::unordered_set<int64_t> observed(items.begin(), items.end());
    auto sample_negatives = [&]() {
      std::vector<int64_t> negatives;
      negatives.reserve(static_cast<size_t>(num_negatives));
      std::unordered_set<int64_t> chosen;
      int64_t guard = 0;
      const int64_t guard_limit = num_negatives * 1000;
      while (static_cast<int64_t>(negatives.size()) < num_negatives &&
             guard < guard_limit) {
        const int64_t candidate = static_cast<int64_t>(
            rng.NextInt(static_cast<uint64_t>(dataset.num_items)));
        ++guard;
        if (observed.count(candidate) > 0 || chosen.count(candidate) > 0) {
          continue;
        }
        chosen.insert(candidate);
        negatives.push_back(candidate);
      }
      return negatives;
    };

    EvalInstance validation{u, validation_item, sample_negatives()};
    EvalInstance test{u, test_item, sample_negatives()};
    if (static_cast<int64_t>(validation.negative_items.size()) <
            num_negatives ||
        static_cast<int64_t>(test.negative_items.size()) < num_negatives) {
      return Status::FailedPrecondition(StrFormat(
          "could not sample %lld unobserved negatives for user %lld",
          static_cast<long long>(num_negatives), static_cast<long long>(u)));
    }
    split.validation.push_back(std::move(validation));
    split.test.push_back(std::move(test));

    for (size_t i = 0; i < items.size(); ++i) {
      if (i == vpos || i == tpos) continue;
      split.train.push_back({u, items[i]});
    }
  }
  return split;
}

}  // namespace scenerec
