#ifndef SCENEREC_DATA_SAMPLER_H_
#define SCENEREC_DATA_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/bipartite_graph.h"

namespace scenerec {

/// One BPR training example (Section 4.4): a user, an observed item, and an
/// unobserved (negative) item.
struct BprTriple {
  int64_t user = 0;
  int64_t positive_item = 0;
  int64_t negative_item = 0;
};

/// Draws uniform negatives that the user has not interacted with in the
/// training graph. Stateless apart from the caller's Rng.
class NegativeSampler {
 public:
  /// `graph` must outlive the sampler.
  explicit NegativeSampler(const UserItemGraph& graph);

  /// An item `user` has no training interaction with, uniform over the rest.
  int64_t SampleNegative(int64_t user, Rng& rng) const;

 private:
  const UserItemGraph& graph_;
};

/// Produces shuffled epochs of BPR triples over the training interactions,
/// pairing every observed (user, item) with one fresh negative per epoch —
/// the standard BPR training regime.
class BprBatcher {
 public:
  /// Both references must outlive the batcher.
  BprBatcher(const std::vector<Interaction>& train,
             const UserItemGraph& graph);

  /// All training triples for one epoch, newly shuffled and with newly
  /// sampled negatives.
  std::vector<BprTriple> NextEpoch(Rng& rng) const;

  size_t epoch_size() const { return train_.size(); }

 private:
  const std::vector<Interaction>& train_;
  NegativeSampler negative_sampler_;
};

}  // namespace scenerec

#endif  // SCENEREC_DATA_SAMPLER_H_
