#ifndef SCENEREC_DATA_SESSIONS_H_
#define SCENEREC_DATA_SESSIONS_H_

#include <cstdint>
#include <vector>

#include "common/status_or.h"
#include "graph/csr.h"

namespace scenerec {

/// One view session: a sequence of items viewed by a user within a period
/// of time (Section 5.1). Order matters when a co-view window is used.
struct ViewSession {
  int64_t user = 0;
  std::vector<int64_t> items;
};

/// Parameters of the co-view graph construction pipeline of Section 5.1.
struct CoViewConfig {
  /// Two items are co-viewed if they appear within this many positions of
  /// each other inside one session; 0 means every within-session pair
  /// counts (the default, matching "co-viewed by a user within the same
  /// session").
  int64_t window = 0;

  /// "for each item ... at most top 300 connections are preserved".
  int64_t max_item_neighbors = 300;

  /// "only top 100 connections of each category is preserved".
  int64_t max_category_neighbors = 100;

  Status Validate() const;
};

/// Result of the construction: finalized symmetric unit-weight edge lists
/// ready for SceneGraph::Build / Dataset.
struct CoViewGraphs {
  std::vector<Edge> item_item_edges;
  std::vector<Edge> category_category_edges;
};

/// Runs the paper's construction pipeline on raw sessions:
///  1. accumulate item-item co-view counts over all within-session (or
///     within-window) pairs,
///  2. accumulate category-category counts for cross-category pairs,
///  3. keep the top-K heaviest neighbors per node,
///  4. symmetrize and reset weights to 1 (Definition 3.3).
///
/// `item_category[i]` maps items to categories. Items in sessions must be in
/// [0, item_category.size()); categories in [0, num_categories).
StatusOr<CoViewGraphs> BuildCoViewGraphs(
    const std::vector<ViewSession>& sessions,
    const std::vector<int64_t>& item_category, int64_t num_categories,
    const CoViewConfig& config);

/// Deduplicated (user, item) click pairs from sessions — the user-item
/// bipartite edges implied by "a user is connected to an item if she or he
/// clicked the item". Sorted by (user, item).
std::vector<std::pair<int64_t, int64_t>> ClicksFromSessions(
    const std::vector<ViewSession>& sessions);

}  // namespace scenerec

#endif  // SCENEREC_DATA_SESSIONS_H_
