#include "data/tsv_io.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace scenerec {

namespace {

Status EnsureDirectory(const std::string& dir) {
  struct stat info;
  if (::stat(dir.c_str(), &info) == 0) {
    if ((info.st_mode & S_IFDIR) != 0) return Status::OK();
    return Status::IOError(dir + " exists and is not a directory");
  }
  if (::mkdir(dir.c_str(), 0755) != 0) {
    return Status::IOError("mkdir " + dir + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status WriteLines(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << content;
  out.close();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Parses "a<TAB>b" integer pair lines; skips blank lines.
Status ParsePairs(const std::string& content, const std::string& path,
                  std::vector<std::pair<int64_t, int64_t>>* out) {
  size_t line_number = 0;
  for (const std::string& line : Split(content, '\n')) {
    ++line_number;
    if (Trim(line).empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 2) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 2 tab-separated fields", path.c_str(),
                    line_number));
    }
    auto a = ParseInt64(Trim(fields[0]));
    auto b = ParseInt64(Trim(fields[1]));
    if (!a.ok() || !b.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: bad integer", path.c_str(), line_number));
    }
    out->push_back({a.value(), b.value()});
  }
  return Status::OK();
}

std::string PairsToTsv(const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  std::ostringstream out;
  for (const auto& [a, b] : pairs) out << a << '\t' << b << '\n';
  return out.str();
}

}  // namespace

Status SaveDatasetTsv(const Dataset& dataset, const std::string& dir) {
  SCENEREC_RETURN_IF_ERROR(dataset.Validate());
  SCENEREC_RETURN_IF_ERROR(EnsureDirectory(dir));

  {
    std::ostringstream meta;
    meta << "name\t" << dataset.name << '\n'
         << "num_users\t" << dataset.num_users << '\n'
         << "num_items\t" << dataset.num_items << '\n'
         << "num_categories\t" << dataset.num_categories << '\n'
         << "num_scenes\t" << dataset.num_scenes << '\n';
    SCENEREC_RETURN_IF_ERROR(WriteLines(dir + "/meta.tsv", meta.str()));
  }

  std::vector<std::pair<int64_t, int64_t>> pairs;
  pairs.reserve(dataset.interactions.size());
  for (const Interaction& x : dataset.interactions) {
    pairs.push_back({x.user, x.item});
  }
  SCENEREC_RETURN_IF_ERROR(
      WriteLines(dir + "/interactions.tsv", PairsToTsv(pairs)));

  pairs.clear();
  for (int64_t i = 0; i < dataset.num_items; ++i) {
    pairs.push_back({i, dataset.item_category[static_cast<size_t>(i)]});
  }
  SCENEREC_RETURN_IF_ERROR(
      WriteLines(dir + "/item_category.tsv", PairsToTsv(pairs)));

  auto edges_to_pairs = [](const std::vector<Edge>& edges) {
    std::vector<std::pair<int64_t, int64_t>> result;
    result.reserve(edges.size());
    for (const Edge& e : edges) result.push_back({e.src, e.dst});
    return result;
  };
  SCENEREC_RETURN_IF_ERROR(WriteLines(
      dir + "/item_item.tsv", PairsToTsv(edges_to_pairs(dataset.item_item_edges))));
  SCENEREC_RETURN_IF_ERROR(
      WriteLines(dir + "/category_category.tsv",
                 PairsToTsv(edges_to_pairs(dataset.category_category_edges))));
  SCENEREC_RETURN_IF_ERROR(
      WriteLines(dir + "/category_scene.tsv",
                 PairsToTsv(edges_to_pairs(dataset.category_scene_edges))));
  return Status::OK();
}

StatusOr<Dataset> LoadDatasetTsv(const std::string& dir) {
  Dataset dataset;
  {
    SCENEREC_ASSIGN_OR_RETURN(std::string meta, ReadFile(dir + "/meta.tsv"));
    for (const std::string& line : Split(meta, '\n')) {
      if (Trim(line).empty()) continue;
      const auto fields = Split(line, '\t');
      if (fields.size() != 2) {
        return Status::InvalidArgument("meta.tsv: expected key<TAB>value");
      }
      const std::string key(Trim(fields[0]));
      const std::string value(Trim(fields[1]));
      if (key == "name") {
        dataset.name = value;
      } else {
        auto parsed = ParseInt64(value);
        if (!parsed.ok()) {
          return Status::InvalidArgument("meta.tsv: bad value for " + key);
        }
        if (key == "num_users") {
          dataset.num_users = parsed.value();
        } else if (key == "num_items") {
          dataset.num_items = parsed.value();
        } else if (key == "num_categories") {
          dataset.num_categories = parsed.value();
        } else if (key == "num_scenes") {
          dataset.num_scenes = parsed.value();
        } else {
          return Status::InvalidArgument("meta.tsv: unknown key " + key);
        }
      }
    }
  }

  std::vector<std::pair<int64_t, int64_t>> pairs;
  {
    SCENEREC_ASSIGN_OR_RETURN(std::string content,
                              ReadFile(dir + "/interactions.tsv"));
    SCENEREC_RETURN_IF_ERROR(
        ParsePairs(content, dir + "/interactions.tsv", &pairs));
    for (const auto& [u, i] : pairs) dataset.interactions.push_back({u, i});
  }
  {
    pairs.clear();
    SCENEREC_ASSIGN_OR_RETURN(std::string content,
                              ReadFile(dir + "/item_category.tsv"));
    SCENEREC_RETURN_IF_ERROR(
        ParsePairs(content, dir + "/item_category.tsv", &pairs));
    dataset.item_category.assign(static_cast<size_t>(dataset.num_items), -1);
    for (const auto& [item, category] : pairs) {
      if (item < 0 || item >= dataset.num_items) {
        return Status::InvalidArgument("item_category.tsv: item out of range");
      }
      dataset.item_category[static_cast<size_t>(item)] = category;
    }
  }
  auto load_edges = [&dir](const std::string& file,
                           std::vector<Edge>* out) -> Status {
    std::vector<std::pair<int64_t, int64_t>> local;
    auto content = ReadFile(dir + "/" + file);
    if (!content.ok()) return content.status();
    SCENEREC_RETURN_IF_ERROR(ParsePairs(content.value(), file, &local));
    out->reserve(local.size());
    for (const auto& [a, b] : local) out->push_back({a, b, 1.0f});
    return Status::OK();
  };
  SCENEREC_RETURN_IF_ERROR(
      load_edges("item_item.tsv", &dataset.item_item_edges));
  SCENEREC_RETURN_IF_ERROR(
      load_edges("category_category.tsv", &dataset.category_category_edges));
  SCENEREC_RETURN_IF_ERROR(
      load_edges("category_scene.tsv", &dataset.category_scene_edges));

  SCENEREC_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace scenerec
