#ifndef SCENEREC_DATA_TSV_IO_H_
#define SCENEREC_DATA_TSV_IO_H_

#include <string>

#include "common/status.h"
#include "common/status_or.h"
#include "data/dataset.h"

namespace scenerec {

/// Serializes `dataset` into `dir` as six TSV files (created if missing):
///   meta.tsv               name / entity counts
///   interactions.tsv       user <TAB> item
///   item_category.tsv      item <TAB> category
///   item_item.tsv          item <TAB> item        (symmetric, both rows)
///   category_category.tsv  category <TAB> category
///   category_scene.tsv     category <TAB> scene
/// Overwrites existing files. Returns IOError on filesystem failures.
Status SaveDatasetTsv(const Dataset& dataset, const std::string& dir);

/// Loads a dataset previously written by SaveDatasetTsv and validates it.
StatusOr<Dataset> LoadDatasetTsv(const std::string& dir);

}  // namespace scenerec

#endif  // SCENEREC_DATA_TSV_IO_H_
