#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "common/string_util.h"
#include "data/sessions.h"
#include "graph/csr.h"

namespace scenerec {

Status SyntheticConfig::Validate() const {
  if (num_users <= 0 || num_items <= 0 || num_categories <= 0 ||
      num_scenes <= 0) {
    return Status::InvalidArgument("entity counts must be positive");
  }
  if (min_categories_per_scene < 1 ||
      max_categories_per_scene < min_categories_per_scene) {
    return Status::InvalidArgument("bad categories-per-scene range");
  }
  if (max_categories_per_scene > num_categories) {
    return Status::InvalidArgument(
        "max_categories_per_scene exceeds num_categories");
  }
  if (min_scenes_per_user < 1 || max_scenes_per_user < min_scenes_per_user) {
    return Status::InvalidArgument("bad scenes-per-user range");
  }
  if (max_scenes_per_user > num_scenes) {
    return Status::InvalidArgument("max_scenes_per_user exceeds num_scenes");
  }
  if (sessions_per_user <= 0 || session_length <= 1) {
    return Status::InvalidArgument(
        "need at least one session of length >= 2");
  }
  if (in_scene_prob < 0.0 || in_scene_prob > 1.0) {
    return Status::InvalidArgument("in_scene_prob must be in [0, 1]");
  }
  if (max_item_neighbors <= 0 || max_category_neighbors <= 0) {
    return Status::InvalidArgument("neighbor caps must be positive");
  }
  if (min_interactions_per_user < 3) {
    return Status::InvalidArgument(
        "leave-one-out evaluation needs >= 3 interactions per user");
  }
  return Status::OK();
}

const char* JdPresetName(JdPreset preset) {
  switch (preset) {
    case JdPreset::kBabyToy:
      return "Baby & Toy";
    case JdPreset::kElectronics:
      return "Electronics";
    case JdPreset::kFashion:
      return "Fashion";
    case JdPreset::kFoodDrink:
      return "Food & Drink";
  }
  return "?";
}

std::vector<JdPreset> AllJdPresets() {
  return {JdPreset::kBabyToy, JdPreset::kElectronics, JdPreset::kFashion,
          JdPreset::kFoodDrink};
}

SyntheticConfig MakeJdConfig(JdPreset preset, double scale) {
  SCENEREC_CHECK_GT(scale, 0.0);
  SCENEREC_CHECK_LE(scale, 1.0);
  SyntheticConfig config;
  config.name = JdPresetName(preset);

  // Full-scale entity counts from Table 1.
  int64_t users = 0, items = 0;
  switch (preset) {
    case JdPreset::kBabyToy:
      users = 4521;
      items = 51759;
      config.num_categories = 103;
      config.num_scenes = 323;
      break;
    case JdPreset::kElectronics:
      users = 3842;
      items = 52025;
      config.num_categories = 78;
      config.num_scenes = 54;
      break;
    case JdPreset::kFashion:
      users = 3959;
      items = 53005;
      config.num_categories = 91;
      config.num_scenes = 438;
      break;
    case JdPreset::kFoodDrink:
      users = 3236;
      items = 47402;
      config.num_categories = 105;
      config.num_scenes = 136;
      break;
  }
  config.num_users = std::max<int64_t>(40, std::llround(users * scale));
  config.num_items = std::max<int64_t>(400, std::llround(items * scale));
  // At full scale the JD datasets average ~107-140 interactions per user;
  // sessions shrink with sqrt(scale) so reduced datasets stay trainable but
  // retain enough signal.
  config.sessions_per_user = std::max<int64_t>(
      5, std::llround(16.0 * std::sqrt(scale)));
  config.session_length = 8;
  // Electronics has the fewest, broadest scenes; Fashion the most, most
  // specific ones. Scene sizes follow Table 1's scene-category densities.
  switch (preset) {
    case JdPreset::kBabyToy:   // 1370 edges / 323 scenes ~ 4.2
      config.min_categories_per_scene = 3;
      config.max_categories_per_scene = 6;
      break;
    case JdPreset::kElectronics:  // 281 / 54 ~ 5.2
      config.min_categories_per_scene = 4;
      config.max_categories_per_scene = 7;
      break;
    case JdPreset::kFashion:  // 1646 / 438 ~ 3.8
      config.min_categories_per_scene = 3;
      config.max_categories_per_scene = 5;
      break;
    case JdPreset::kFoodDrink:  // 630 / 136 ~ 4.6
      config.min_categories_per_scene = 3;
      config.max_categories_per_scene = 6;
      break;
  }
  return config;
}

namespace {

/// Internal generation state.
struct Generator {
  const SyntheticConfig& config;
  Rng rng;

  // Latent structure.
  std::vector<std::vector<int64_t>> scene_categories;   // scene -> categories
  std::vector<std::vector<int64_t>> category_scenes;    // category -> scenes
  std::vector<int64_t> item_category;                   // item -> category
  std::vector<std::vector<int64_t>> category_items;     // category -> items
  std::vector<AliasSampler> category_item_sampler;      // popularity per cat
  std::vector<double> item_popularity;
  std::unique_ptr<AliasSampler> global_item_sampler;

  Generator(const SyntheticConfig& cfg, uint64_t seed)
      : config(cfg), rng(seed) {}

  void BuildScenes() {
    scene_categories.resize(static_cast<size_t>(config.num_scenes));
    category_scenes.resize(static_cast<size_t>(config.num_categories));
    // Category popularity is Zipf-skewed so a few broad categories (think
    // "Batteries") appear in many scenes, as in real taxonomies.
    std::vector<double> weights(static_cast<size_t>(config.num_categories));
    for (int64_t c = 0; c < config.num_categories; ++c) {
      weights[static_cast<size_t>(c)] =
          1.0 / std::pow(static_cast<double>(c + 1),
                         config.category_size_exponent);
    }
    AliasSampler category_sampler(weights);
    for (int64_t s = 0; s < config.num_scenes; ++s) {
      const int64_t size = rng.NextInt(config.min_categories_per_scene,
                                       config.max_categories_per_scene + 1);
      std::set<int64_t> members;
      int guard = 0;
      while (static_cast<int64_t>(members.size()) < size && guard < 1000) {
        members.insert(static_cast<int64_t>(category_sampler.Sample(rng)));
        ++guard;
      }
      for (int64_t c : members) {
        scene_categories[static_cast<size_t>(s)].push_back(c);
        category_scenes[static_cast<size_t>(c)].push_back(s);
      }
    }
    // Every category must belong to at least one scene so that eq. (3)
    // aggregation is non-degenerate; attach orphans to a random scene.
    for (int64_t c = 0; c < config.num_categories; ++c) {
      if (category_scenes[static_cast<size_t>(c)].empty()) {
        const int64_t s =
            static_cast<int64_t>(rng.NextInt(config.num_scenes));
        category_scenes[static_cast<size_t>(c)].push_back(s);
        scene_categories[static_cast<size_t>(s)].push_back(c);
      }
    }
  }

  void BuildItems() {
    item_category.resize(static_cast<size_t>(config.num_items));
    category_items.resize(static_cast<size_t>(config.num_categories));
    // Category sizes are skewed: sample each item's category Zipf-style.
    for (int64_t i = 0; i < config.num_items; ++i) {
      const int64_t c = static_cast<int64_t>(rng.NextZipf(
          static_cast<uint64_t>(config.num_categories),
          std::max(0.05, config.category_size_exponent)));
      item_category[static_cast<size_t>(i)] = c;
      category_items[static_cast<size_t>(c)].push_back(i);
    }
    // Categories must be non-empty (they anchor scene signal); move one item
    // into each empty category.
    for (int64_t c = 0; c < config.num_categories; ++c) {
      if (!category_items[static_cast<size_t>(c)].empty()) continue;
      // Steal from the largest category.
      int64_t donor = 0;
      for (int64_t d = 0; d < config.num_categories; ++d) {
        if (category_items[static_cast<size_t>(d)].size() >
            category_items[static_cast<size_t>(donor)].size()) {
          donor = d;
        }
      }
      const int64_t moved = category_items[static_cast<size_t>(donor)].back();
      category_items[static_cast<size_t>(donor)].pop_back();
      category_items[static_cast<size_t>(c)].push_back(moved);
      item_category[static_cast<size_t>(moved)] = c;
    }
    // Popularity: Zipf over a per-run random permutation of items.
    item_popularity.assign(static_cast<size_t>(config.num_items), 0.0);
    std::vector<int64_t> order(static_cast<size_t>(config.num_items));
    for (int64_t i = 0; i < config.num_items; ++i) {
      order[static_cast<size_t>(i)] = i;
    }
    rng.Shuffle(order);
    for (int64_t rank = 0; rank < config.num_items; ++rank) {
      item_popularity[static_cast<size_t>(order[static_cast<size_t>(rank)])] =
          1.0 / std::pow(static_cast<double>(rank + 1),
                         config.item_popularity_exponent);
    }
    global_item_sampler = std::make_unique<AliasSampler>(item_popularity);
    category_item_sampler.reserve(static_cast<size_t>(config.num_categories));
    for (int64_t c = 0; c < config.num_categories; ++c) {
      std::vector<double> weights;
      weights.reserve(category_items[static_cast<size_t>(c)].size());
      for (int64_t item : category_items[static_cast<size_t>(c)]) {
        weights.push_back(item_popularity[static_cast<size_t>(item)]);
      }
      category_item_sampler.emplace_back(weights);
    }
  }

  /// Samples one item for a session anchored at `scene`, honoring
  /// in_scene_prob.
  int64_t SampleSessionItem(int64_t scene) {
    if (rng.NextBernoulli(config.in_scene_prob)) {
      const auto& cats = scene_categories[static_cast<size_t>(scene)];
      const int64_t c =
          cats[static_cast<size_t>(rng.NextInt(cats.size()))];
      const auto& items = category_items[static_cast<size_t>(c)];
      const size_t pick =
          category_item_sampler[static_cast<size_t>(c)].Sample(rng);
      return items[pick];
    }
    return static_cast<int64_t>(global_item_sampler->Sample(rng));
  }
};

}  // namespace

StatusOr<Dataset> GenerateSyntheticDataset(const SyntheticConfig& config,
                                           uint64_t seed) {
  SCENEREC_RETURN_IF_ERROR(config.Validate());
  Generator gen(config, seed);
  gen.BuildScenes();
  gen.BuildItems();

  Dataset dataset;
  dataset.name = config.name;
  dataset.num_users = config.num_users;
  dataset.num_items = config.num_items;
  dataset.num_categories = config.num_categories;
  dataset.num_scenes = config.num_scenes;
  dataset.item_category = gen.item_category;

  // Scene membership edges.
  for (int64_t c = 0; c < config.num_categories; ++c) {
    for (int64_t s : gen.category_scenes[static_cast<size_t>(c)]) {
      dataset.category_scene_edges.push_back({c, s, 1.0f});
    }
  }

  // Simulate browsing sessions. Sessions produce both the click set (the
  // user-item bipartite graph) and co-view evidence (item-item and
  // category-category layers) via the Section 5.1 pipeline in
  // data/sessions.h.
  std::vector<ViewSession> sessions;
  sessions.reserve(
      static_cast<size_t>(config.num_users * config.sessions_per_user));
  for (int64_t u = 0; u < config.num_users; ++u) {
    // The user's latent interests: a few active scenes.
    const int64_t num_active = gen.rng.NextInt(config.min_scenes_per_user,
                                               config.max_scenes_per_user + 1);
    auto active = gen.rng.SampleWithoutReplacement(
        static_cast<uint64_t>(config.num_scenes),
        static_cast<uint64_t>(num_active));

    std::set<int64_t> clicked;
    for (int64_t session = 0; session < config.sessions_per_user; ++session) {
      const int64_t scene = static_cast<int64_t>(
          active[static_cast<size_t>(gen.rng.NextInt(active.size()))]);
      ViewSession view_session;
      view_session.user = u;
      view_session.items.reserve(static_cast<size_t>(config.session_length));
      for (int64_t v = 0; v < config.session_length; ++v) {
        const int64_t item = gen.SampleSessionItem(scene);
        view_session.items.push_back(item);
        clicked.insert(item);
      }
      sessions.push_back(std::move(view_session));
    }
    // Guarantee enough interactions for leave-one-out evaluation: top-up
    // with single-item sessions in the user's active scenes.
    int guard = 0;
    while (static_cast<int64_t>(clicked.size()) <
               config.min_interactions_per_user &&
           guard < 10000) {
      const int64_t scene = static_cast<int64_t>(
          active[static_cast<size_t>(gen.rng.NextInt(active.size()))]);
      const int64_t item = gen.SampleSessionItem(scene);
      if (clicked.insert(item).second) {
        sessions.push_back({u, {item}});
      }
      ++guard;
    }
  }

  for (const auto& [user, item] : ClicksFromSessions(sessions)) {
    dataset.interactions.push_back({user, item});
  }

  CoViewConfig coview_config;
  coview_config.max_item_neighbors = config.max_item_neighbors;
  coview_config.max_category_neighbors = config.max_category_neighbors;
  SCENEREC_ASSIGN_OR_RETURN(
      CoViewGraphs coviews,
      BuildCoViewGraphs(sessions, gen.item_category, config.num_categories,
                        coview_config));
  dataset.item_item_edges = std::move(coviews.item_item_edges);

  // The paper additionally has human labelers confirm category-category
  // relevance. We simulate the consensus label: a pair survives iff the two
  // categories share at least one scene (true relevance) or have very high
  // co-view volume (labelers keep obviously related pairs).
  std::vector<Edge> labeled;
  {
    std::vector<Edge> candidates = std::move(coviews.category_category_edges);
    std::vector<std::set<int64_t>> scene_sets(
        static_cast<size_t>(config.num_categories));
    for (int64_t c = 0; c < config.num_categories; ++c) {
      scene_sets[static_cast<size_t>(c)] = {
          gen.category_scenes[static_cast<size_t>(c)].begin(),
          gen.category_scenes[static_cast<size_t>(c)].end()};
    }
    for (const Edge& e : candidates) {
      bool shares_scene = false;
      for (int64_t s : scene_sets[static_cast<size_t>(e.src)]) {
        if (scene_sets[static_cast<size_t>(e.dst)].count(s) > 0) {
          shares_scene = true;
          break;
        }
      }
      if (shares_scene) labeled.push_back(e);
    }
    // Keep the graph connected enough: if labeling dropped everything for a
    // category, restore its single strongest candidate.
    std::vector<bool> has_edge(static_cast<size_t>(config.num_categories),
                               false);
    for (const Edge& e : labeled) has_edge[static_cast<size_t>(e.src)] = true;
    for (const Edge& e : candidates) {
      if (!has_edge[static_cast<size_t>(e.src)]) {
        labeled.push_back(e);
        labeled.push_back({e.dst, e.src, e.weight});
        has_edge[static_cast<size_t>(e.src)] = true;
      }
    }
  }
  dataset.category_category_edges = std::move(labeled);

  SCENEREC_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace scenerec
