#ifndef SCENEREC_DATA_DATASET_H_
#define SCENEREC_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/bipartite_graph.h"
#include "graph/scene_graph.h"
#include "graph/stats.h"

namespace scenerec {

/// A complete scene-based recommendation dataset: the user-item interactions
/// plus the finalized scene-based graph relations (already top-K truncated
/// and symmetrized, unit weights — see Definition 3.3).
///
/// Plain data holder by design: build graphs with BuildUserItemGraph /
/// BuildSceneGraph, serialize with tsv_io.h.
struct Dataset {
  std::string name;

  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t num_categories = 0;
  int64_t num_scenes = 0;

  /// Observed clicks (deduplicated).
  std::vector<Interaction> interactions;

  /// item_category[i] = category of item i; exactly one per item.
  std::vector<int64_t> item_category;

  /// Symmetric item-item similarity edges (L_item).
  std::vector<Edge> item_item_edges;

  /// Symmetric category-category relevance edges (L_cate).
  std::vector<Edge> category_category_edges;

  /// (category, scene) membership pairs (L_cs).
  std::vector<Edge> category_scene_edges;

  /// Materializes the bipartite interaction graph G.
  UserItemGraph BuildUserItemGraph() const;

  /// Materializes the 3-layer scene-based graph H.
  SceneGraph BuildSceneGraph() const;

  /// Table 1 statistics.
  DatasetStats Stats() const;

  /// Referential integrity: ids in range, one category per item, no
  /// duplicate interactions, every scene non-empty.
  Status Validate() const;
};

}  // namespace scenerec

#endif  // SCENEREC_DATA_DATASET_H_
