#include "data/sessions.h"

#include <algorithm>

#include "common/string_util.h"

namespace scenerec {

Status CoViewConfig::Validate() const {
  if (window < 0) return Status::InvalidArgument("window must be >= 0");
  if (max_item_neighbors <= 0 || max_category_neighbors <= 0) {
    return Status::InvalidArgument("neighbor caps must be positive");
  }
  return Status::OK();
}

namespace {

/// Sorts by (src, dst) and merges duplicate pairs by summing weights.
std::vector<Edge> AccumulatePairWeights(std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  size_t write = 0;
  for (size_t read = 0; read < edges.size(); ++read) {
    if (write > 0 && edges[write - 1].src == edges[read].src &&
        edges[write - 1].dst == edges[read].dst) {
      edges[write - 1].weight += edges[read].weight;
    } else {
      edges[write++] = edges[read];
    }
  }
  edges.resize(write);
  return edges;
}

/// Top-K per source on accumulated weights, then symmetrize with unit
/// weights and deduplicate — the final form required by Definition 3.3.
std::vector<Edge> FinalizeLayer(std::vector<Edge> raw, int64_t k) {
  std::vector<Edge> kept = KeepTopKPerSource(AccumulatePairWeights(std::move(raw)), k);
  kept = MakeSymmetric(std::move(kept));
  for (Edge& e : kept) e.weight = 1.0f;
  std::sort(kept.begin(), kept.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Edge& a, const Edge& b) {
                           return a.src == b.src && a.dst == b.dst;
                         }),
             kept.end());
  return kept;
}

}  // namespace

StatusOr<CoViewGraphs> BuildCoViewGraphs(
    const std::vector<ViewSession>& sessions,
    const std::vector<int64_t>& item_category, int64_t num_categories,
    const CoViewConfig& config) {
  SCENEREC_RETURN_IF_ERROR(config.Validate());
  const int64_t num_items = static_cast<int64_t>(item_category.size());
  if (num_items == 0) return Status::InvalidArgument("no items");
  for (int64_t c : item_category) {
    if (c < 0 || c >= num_categories) {
      return Status::InvalidArgument(
          StrFormat("item category %lld out of range",
                    static_cast<long long>(c)));
    }
  }

  std::vector<Edge> item_coviews;
  std::vector<Edge> category_coviews;
  for (const ViewSession& session : sessions) {
    const auto& items = session.items;
    for (size_t a = 0; a < items.size(); ++a) {
      if (items[a] < 0 || items[a] >= num_items) {
        return Status::InvalidArgument(
            StrFormat("session item %lld out of range",
                      static_cast<long long>(items[a])));
      }
      const size_t end =
          config.window == 0
              ? items.size()
              : std::min(items.size(),
                         a + 1 + static_cast<size_t>(config.window));
      for (size_t b = a + 1; b < end; ++b) {
        if (items[a] == items[b]) continue;
        // Record both directions so per-source top-K sees full counts.
        item_coviews.push_back({items[a], items[b], 1.0f});
        item_coviews.push_back({items[b], items[a], 1.0f});
        const int64_t ca = item_category[static_cast<size_t>(items[a])];
        const int64_t cb = item_category[static_cast<size_t>(items[b])];
        if (ca != cb) {
          category_coviews.push_back({ca, cb, 1.0f});
          category_coviews.push_back({cb, ca, 1.0f});
        }
      }
    }
  }

  CoViewGraphs graphs;
  graphs.item_item_edges =
      FinalizeLayer(std::move(item_coviews), config.max_item_neighbors);
  graphs.category_category_edges = FinalizeLayer(
      std::move(category_coviews), config.max_category_neighbors);
  return graphs;
}

std::vector<std::pair<int64_t, int64_t>> ClicksFromSessions(
    const std::vector<ViewSession>& sessions) {
  std::vector<std::pair<int64_t, int64_t>> clicks;
  for (const ViewSession& session : sessions) {
    for (int64_t item : session.items) {
      clicks.push_back({session.user, item});
    }
  }
  std::sort(clicks.begin(), clicks.end());
  clicks.erase(std::unique(clicks.begin(), clicks.end()), clicks.end());
  return clicks;
}

}  // namespace scenerec
