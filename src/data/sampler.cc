#include "data/sampler.h"

namespace scenerec {

NegativeSampler::NegativeSampler(const UserItemGraph& graph) : graph_(graph) {
  SCENEREC_CHECK_GT(graph.num_items(), 1);
}

int64_t NegativeSampler::SampleNegative(int64_t user, Rng& rng) const {
  // Rejection sampling: user degrees are far below the vocabulary size, so
  // expected retries are ~1.
  const int64_t num_items = graph_.num_items();
  SCENEREC_CHECK_LT(graph_.UserDegree(user), num_items)
      << "user has interacted with every item";
  while (true) {
    const int64_t candidate =
        static_cast<int64_t>(rng.NextInt(static_cast<uint64_t>(num_items)));
    if (!graph_.HasInteraction(user, candidate)) return candidate;
  }
}

BprBatcher::BprBatcher(const std::vector<Interaction>& train,
                       const UserItemGraph& graph)
    : train_(train), negative_sampler_(graph) {}

std::vector<BprTriple> BprBatcher::NextEpoch(Rng& rng) const {
  std::vector<BprTriple> triples;
  triples.reserve(train_.size());
  for (const Interaction& x : train_) {
    triples.push_back(
        {x.user, x.item, negative_sampler_.SampleNegative(x.user, rng)});
  }
  rng.Shuffle(triples);
  return triples;
}

}  // namespace scenerec
