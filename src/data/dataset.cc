#include "data/dataset.h"

#include <set>

#include "common/string_util.h"

namespace scenerec {

UserItemGraph Dataset::BuildUserItemGraph() const {
  return UserItemGraph::Build(num_users, num_items, interactions);
}

SceneGraph Dataset::BuildSceneGraph() const {
  return SceneGraph::Build(num_items, num_categories, num_scenes,
                           item_category, item_item_edges,
                           category_category_edges, category_scene_edges);
}

DatasetStats Dataset::Stats() const {
  return ComputeStats(name, BuildUserItemGraph(), BuildSceneGraph());
}

Status Dataset::Validate() const {
  if (num_users <= 0 || num_items <= 0 || num_categories <= 0 ||
      num_scenes <= 0) {
    return Status::FailedPrecondition("all entity counts must be positive");
  }
  if (static_cast<int64_t>(item_category.size()) != num_items) {
    return Status::FailedPrecondition(StrFormat(
        "item_category has %zu entries for %lld items", item_category.size(),
        static_cast<long long>(num_items)));
  }
  for (int64_t i = 0; i < num_items; ++i) {
    const int64_t c = item_category[static_cast<size_t>(i)];
    if (c < 0 || c >= num_categories) {
      return Status::FailedPrecondition(
          StrFormat("item %lld has invalid category %lld",
                    static_cast<long long>(i), static_cast<long long>(c)));
    }
  }
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const Interaction& x : interactions) {
    if (x.user < 0 || x.user >= num_users || x.item < 0 ||
        x.item >= num_items) {
      return Status::FailedPrecondition(
          StrFormat("interaction (%lld, %lld) out of range",
                    static_cast<long long>(x.user),
                    static_cast<long long>(x.item)));
    }
    if (!seen.insert({x.user, x.item}).second) {
      return Status::FailedPrecondition(
          StrFormat("duplicate interaction (%lld, %lld)",
                    static_cast<long long>(x.user),
                    static_cast<long long>(x.item)));
    }
  }
  for (const Edge& e : item_item_edges) {
    if (e.src < 0 || e.src >= num_items || e.dst < 0 || e.dst >= num_items) {
      return Status::FailedPrecondition("item-item edge out of range");
    }
    if (e.src == e.dst) {
      return Status::FailedPrecondition("item-item self loop");
    }
  }
  for (const Edge& e : category_category_edges) {
    if (e.src < 0 || e.src >= num_categories || e.dst < 0 ||
        e.dst >= num_categories) {
      return Status::FailedPrecondition("category-category edge out of range");
    }
  }
  std::vector<bool> scene_nonempty(static_cast<size_t>(num_scenes), false);
  for (const Edge& e : category_scene_edges) {
    if (e.src < 0 || e.src >= num_categories || e.dst < 0 ||
        e.dst >= num_scenes) {
      return Status::FailedPrecondition("category-scene edge out of range");
    }
    scene_nonempty[static_cast<size_t>(e.dst)] = true;
  }
  for (int64_t s = 0; s < num_scenes; ++s) {
    if (!scene_nonempty[static_cast<size_t>(s)]) {
      return Status::FailedPrecondition(
          StrFormat("scene %lld has no categories",
                    static_cast<long long>(s)));
    }
  }
  return Status::OK();
}

}  // namespace scenerec
