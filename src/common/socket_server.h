#ifndef SCENEREC_COMMON_SOCKET_SERVER_H_
#define SCENEREC_COMMON_SOCKET_SERVER_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/status_or.h"

namespace scenerec {

// Unix-domain-socket request/response server — the shared listener/framing
// substrate of the serving daemon's stats socket (docs/observability.md,
// "Live serving observability") and the seed of the future network front
// end (ROADMAP item 1).
//
// Protocol (one request per connection, text framed):
//   request:  one LF-terminated verb line, e.g. "stats\n"
//   response: "OK <payload-bytes>\n<payload>"   on success
//             "ERR <message>\n"                 on failure
// The byte count frames the payload exactly, so clients never depend on
// EOF timing; `nc -U <path>` still works for eyeballing because the server
// closes the connection after the response.

/// Maps a verb to a response payload (or a Status rendered as ERR).
/// Called on the accept thread; must be thread-safe against the rest of
/// the process but never reentered concurrently by the server itself.
using SocketHandler = std::function<StatusOr<std::string>(const std::string& verb)>;

class UnixSocketServer {
 public:
  UnixSocketServer() = default;
  ~UnixSocketServer();

  UnixSocketServer(const UnixSocketServer&) = delete;
  UnixSocketServer& operator=(const UnixSocketServer&) = delete;

  /// Binds `path` (unlinking any stale socket file first), starts the
  /// accept thread. Connections are served one at a time — this is an
  /// introspection socket, not a data plane.
  Status Start(const std::string& path, SocketHandler handler);

  /// Stops the accept thread, closes the listener and unlinks the socket
  /// file. Idempotent; the destructor calls it.
  void Stop();

  const std::string& path() const { return path_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  std::string path_;
  SocketHandler handler_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> running_{false};
};

/// Client side of the protocol: connects to `path`, sends `verb`, returns
/// the OK payload. ERR responses surface as Status::Internal with the
/// server's message; connect/IO failures as IOError. `timeout_ms` bounds
/// each blocking read/write.
StatusOr<std::string> UnixSocketRequest(const std::string& path,
                                        const std::string& verb,
                                        int timeout_ms = 5000);

}  // namespace scenerec

#endif  // SCENEREC_COMMON_SOCKET_SERVER_H_
