#ifndef SCENEREC_COMMON_RNG_H_
#define SCENEREC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace scenerec {

/// Deterministic pseudo-random number generator (xoshiro256**, seeded through
/// SplitMix64). Every source of randomness in the library flows through an
/// Rng instance so experiments are reproducible from a single --seed value.
///
/// Not thread-safe; give each thread its own instance (e.g. via Split()).
class Rng {
 public:
  /// Seeds the generator. Two Rng instances with the same seed produce
  /// identical streams on all platforms.
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  uint64_t NextInt(uint64_t bound);

  /// Uniform integer in [lo, hi). Requires lo < hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  /// Standard normal (mean 0, stddev 1) via Box–Muller.
  double NextGaussian();

  /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Zipf-distributed integer in [0, n) with exponent `s` (> 0). Rank 0 is
  /// the most probable. Uses inverse-CDF over precomputed weights for small n
  /// callers; for repeated sampling prefer ZipfSampler below.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (Floyd's algorithm). Requires k <= n. Result order is unspecified.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Derives an independent child generator; deterministic in the parent
  /// stream. Use to hand per-worker generators out of one master seed.
  Rng Split();

 private:
  uint64_t state_[4];
};

/// Precomputed Zipf(n, s) inverse-CDF table for repeated hot-key sampling
/// (serving traffic mixes, docs/serving.md#warmup): build once in O(n),
/// draw in O(log n) via binary search. Rank 0 is the most probable; the
/// distribution matches Rng::NextZipf bit-for-bit in probability mass
/// (same normalized weights) but scales to million-entry catalogs where
/// NextZipf's linear scan does not.
class ZipfSampler {
 public:
  /// `n` ranks, exponent `s` > 0.
  ZipfSampler(uint64_t n, double s);

  /// Draws one rank in [0, n), consuming one NextDouble from `rng`.
  uint64_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative normalized weights, cdf_[n-1] == 1
};

/// Precomputed alias table for O(1) sampling from an arbitrary discrete
/// distribution. Build once, sample many times (e.g. popularity-weighted
/// negative sampling over 50k items).
class AliasSampler {
 public:
  /// Builds the table from (unnormalized, non-negative) weights. At least one
  /// weight must be positive.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Draws one index, distributed proportionally to the build weights.
  uint64_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace scenerec

#endif  // SCENEREC_COMMON_RNG_H_
