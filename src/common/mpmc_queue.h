#ifndef SCENEREC_COMMON_MPMC_QUEUE_H_
#define SCENEREC_COMMON_MPMC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "common/check.h"

namespace scenerec {

/// Bounded multi-producer/multi-consumer queue — the request-admission
/// primitive of the serving daemon (src/serve/server.h, docs/serving.md).
///
/// Semantics:
///   - Push blocks while the queue is full and returns false once the queue
///     is closed (the item is NOT enqueued in that case).
///   - Pop blocks while the queue is empty and returns false only when the
///     queue is closed AND drained — every item accepted by Push is handed
///     to exactly one consumer, so closing never drops accepted work.
///   - TryPop / PopUntil are the non-blocking / deadline-bounded variants
///     the admission window is built from: collect whatever is already
///     waiting, then wait at most until the coalescing deadline.
///
/// Plain mutex + two condition variables: the serving hot path amortizes one
/// lock per *batch* of requests (the admission loop drains bursts via
/// TryPop), so a lock-free ring would buy nothing measurable here.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity) : capacity_(capacity) {
    SCENEREC_CHECK_GT(capacity, 0u);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks until there is room (or the queue closes). True iff enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available (or the queue closes and drains).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    return PopLocked(lock, out);
  }

  /// Immediately returns an item if one is waiting; never blocks.
  bool TryPop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    return PopLocked(lock, out);
  }

  /// Waits until `deadline` for an item. False on timeout or closed+empty.
  bool PopUntil(T* out, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_until(lock, deadline,
                          [this] { return closed_ || !items_.empty(); });
    return PopLocked(lock, out);
  }

  /// Closes the queue: subsequent Push calls fail, consumers drain what was
  /// accepted and then see false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  /// Takes the front item if any; wakes one blocked producer on success.
  bool PopLocked(std::unique_lock<std::mutex>& lock, T* out) {
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const size_t capacity_;
  bool closed_ = false;
};

}  // namespace scenerec

#endif  // SCENEREC_COMMON_MPMC_QUEUE_H_
