#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cmath>

namespace scenerec {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

StatusOr<int64_t> ParseInt64(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer");
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("not an integer: " + buffer);
  }
  return static_cast<int64_t>(value);
}

StatusOr<double> ParseDouble(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  std::string buffer(text);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE && !std::isfinite(value)) {
    return Status::OutOfRange("number out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("not a number: " + buffer);
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string FormatFixed(double value, int digits) {
  return StrFormat("%.*f", digits, value);
}

std::string FormatWithCommas(int64_t value) {
  bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string result;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) result.push_back(',');
    result.push_back(*it);
    ++count;
  }
  if (negative) result.push_back('-');
  return std::string(result.rbegin(), result.rend());
}

}  // namespace scenerec
