#ifndef SCENEREC_COMMON_STOPWATCH_H_
#define SCENEREC_COMMON_STOPWATCH_H_

#include <chrono>

namespace scenerec {

/// Wall-clock stopwatch for coarse timing of training epochs and benchmark
/// phases. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace scenerec

#endif  // SCENEREC_COMMON_STOPWATCH_H_
