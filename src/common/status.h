#ifndef SCENEREC_COMMON_STATUS_H_
#define SCENEREC_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace scenerec {

/// Error codes used across the library. Modeled after the RocksDB/Abseil
/// convention: a small closed set of categories plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIOError = 6,
  kAlreadyExists = 7,
  kUnimplemented = 8,
};

/// Returns a stable human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result used by all fallible operations in
/// the library (I/O, parsing, configuration validation). Cheap to copy in the
/// OK case; carries a message only on error.
///
/// Usage:
///   Status s = LoadDataset(path, &dataset);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Requires the enclosing function
/// to return Status.
#define SCENEREC_RETURN_IF_ERROR(expr)                 \
  do {                                                 \
    ::scenerec::Status _status = (expr);               \
    if (!_status.ok()) return _status;                 \
  } while (false)

}  // namespace scenerec

#endif  // SCENEREC_COMMON_STATUS_H_
