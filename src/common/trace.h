#ifndef SCENEREC_COMMON_TRACE_H_
#define SCENEREC_COMMON_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace scenerec {
namespace trace {

// Span-based structured tracing: where did the time go within one epoch, on
// which thread, nested under what (docs/observability.md, "Tracing").
//
// Design in one paragraph: a span is an RAII scope (TRACE_SCOPE) carrying a
// static name, a category, and printf-formatted args. Finished spans are
// recorded into a per-thread fixed-capacity ring buffer — the hot path is
// lock-free: plain stores into memory only the owning thread writes, no
// atomics, no shared cache lines. On overflow the ring overwrites its oldest
// record (drop-oldest) and bumps the `trace/dropped_spans` telemetry counter,
// so a long run degrades to "most recent window" instead of stalling or
// allocating. Export (Snapshot / WriteChromeTrace) walks every thread's
// buffer under the registry mutex and must only run at quiescence — after
// pool joins, like Telemetry::Reset — which is what makes the unsynchronized
// hot-path stores well-defined. Parent/child structure comes from a
// per-thread span stack; ThreadPool::ParallelFor propagates the dispatching
// caller's span id into worker chunks (SpanContext/ContextGuard) so a
// timeline nests cross-thread work under the loop that issued it.
//
// When tracing is disabled (the default), every TRACE_SCOPE reduces to one
// relaxed load of a global bool plus a predictable branch — measured in
// bench_parallel's BM_TrainEpochTrace (see BENCH_trace.json).

/// Global enable flag. Relaxed: flipping it is advisory, not a fence —
/// spans racing with SetEnabled may or may not be recorded.
inline std::atomic<bool> g_enabled{false};

inline bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

/// Which configurable duration floor gates a span's recording. Floors keep
/// high-frequency, sub-microsecond scopes (tiny GEMVs) from flooding the
/// ring while cheap enough to evaluate once per span at destruction.
enum class Floor : uint8_t {
  kNone = 0,    // always record
  kOp = 1,      // autograd per-op spans (TraceOptions::op_floor_ns)
  kKernel = 2,  // GEMM/GEMV kernel spans (TraceOptions::kernel_floor_ns)
};

struct TraceOptions {
  /// Spans retained per thread; the ring drops oldest past this.
  size_t buffer_capacity = 1 << 16;
  /// Record autograd op spans only when duration >= this (ns). 0 keeps
  /// everything so a trace doubles as a per-op flamegraph.
  uint64_t op_floor_ns = 0;
  /// Record kernel (GEMM/GEMV) spans only when duration >= this (ns).
  uint64_t kernel_floor_ns = 2000;
};

namespace internal {

inline constexpr size_t kMaxArgsChars = 48;
inline constexpr int kMaxSpanDepth = 64;

/// One finished span. `name`/`cat` must be pointers to statically allocated
/// strings (literals): records outlive the scopes that wrote them.
struct SpanRecord {
  const char* name;
  const char* cat;
  uint64_t start_ns;  // since the process-wide trace epoch
  uint64_t dur_ns;
  uint64_t id;         // unique per span, never 0
  uint64_t parent_id;  // 0 = root
  char args[kMaxArgsChars];  // NUL-terminated formatted args, "" = none
};

/// Per-thread ring of finished spans. Only the owning thread writes; the
/// exporter reads at quiescence. Registered once in the global registry and
/// kept alive past thread exit so records survive for export.
struct ThreadBuffer {
  ThreadBuffer(size_t capacity, uint32_t index)
      : records(capacity), thread_index(index) {}

  std::vector<SpanRecord> records;  // ring storage, fixed at creation
  uint64_t next = 0;     // total spans ever written; slot = next % size
  uint64_t dropped = 0;  // oldest records overwritten on wrap
  uint64_t next_seq = 0;  // span-id sequence for this thread
  uint32_t thread_index = 0;
};

/// The calling thread's buffer; null until its first recorded span.
extern thread_local constinit ThreadBuffer* t_buffer;

/// Creates + registers this thread's buffer (idempotent), sets t_buffer.
ThreadBuffer& CreateBuffer();

inline ThreadBuffer& Buffer() {
  ThreadBuffer* b = t_buffer;
  return b != nullptr ? *b : CreateBuffer();
}

/// Open-span stack for parent attribution, plus the cross-thread parent
/// installed by ContextGuard (used when the stack is empty).
struct SpanStack {
  uint64_t ids[kMaxSpanDepth];
  int depth = 0;
  uint64_t inherited_parent = 0;
};

extern thread_local constinit SpanStack t_stack;

/// Nanoseconds since the process-wide trace epoch (steady clock).
uint64_t NowNs();

/// Resolves a floor kind against the active TraceOptions.
uint64_t FloorNs(Floor floor);

/// Appends a finished span to the calling thread's ring (drop-oldest).
void Record(const char* name, const char* cat, uint64_t start_ns,
            uint64_t dur_ns, uint64_t id, uint64_t parent_id,
            const char* args);

}  // namespace internal

/// A span id to parent cross-thread work under (see ContextGuard).
struct SpanContext {
  uint64_t span_id = 0;  // 0 = no context
};

/// The innermost open span on this thread (or the inherited cross-thread
/// parent if none). Capture before dispatching work to other threads.
SpanContext CurrentContext();

/// Installs `ctx` as the parent for spans opened on this thread while no
/// local span is on the stack. Used by ThreadPool workers so chunk spans
/// nest under the dispatching caller's span. No-op for a null context.
class ContextGuard {
 public:
  explicit ContextGuard(SpanContext ctx) {
    if (ctx.span_id == 0) {
      active_ = false;
      return;
    }
    active_ = true;
    prev_ = internal::t_stack.inherited_parent;
    internal::t_stack.inherited_parent = ctx.span_id;
  }
  ~ContextGuard() {
    if (active_) internal::t_stack.inherited_parent = prev_;
  }

  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  uint64_t prev_ = 0;
  bool active_;
};

/// RAII span. Construction checks the enable flag (one relaxed load +
/// branch when disabled); destruction records the span unless its duration
/// is under the resolved floor. `name` and `cat` must be static strings.
class SpanScope {
 public:
  explicit SpanScope(const char* name, const char* cat = "",
                     Floor floor = Floor::kNone) {
    if (!Enabled()) {
      armed_ = false;
      return;
    }
    Arm(name, cat, floor);
  }

  /// Variant with printf-style args recorded into the span (truncated to
  /// internal::kMaxArgsChars - 1 chars). Formatting only runs when armed.
  SpanScope(const char* name, const char* cat, Floor floor, const char* fmt,
            ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 5, 6)))
#endif
      ;

  ~SpanScope() {
    if (armed_) Finish();
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool armed() const { return armed_; }
  /// This span's id (0 when unarmed). Feed into SpanContext to parent
  /// work dispatched to other threads.
  uint64_t id() const { return armed_ ? id_ : 0; }

 private:
  void Arm(const char* name, const char* cat, Floor floor);
  void Finish();

  const char* name_;
  const char* cat_;
  uint64_t start_ns_;
  uint64_t id_;
  uint64_t parent_id_;
  uint64_t floor_ns_;
  bool armed_;
  char args_[internal::kMaxArgsChars];
};

// -- Export ------------------------------------------------------------------

/// One exported span (storage-owning copy of a SpanRecord).
struct TraceSpan {
  std::string name;
  std::string cat;
  std::string args;
  uint32_t tid = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t id = 0;
  uint64_t parent_id = 0;
};

/// Point-in-time copy of every thread's retained spans. Take only at
/// quiescence (no instrumented code running concurrently).
struct TraceSnapshot {
  std::vector<TraceSpan> spans;  // sorted by (tid, start_ns)
  uint64_t dropped_spans = 0;

  /// Chrome trace-event JSON: {"traceEvents": [...]} with ph:"X" complete
  /// events (name/cat/ph/pid/tid/ts/dur/args; ts and dur in microseconds)
  /// plus process/thread-name metadata events. Loads in chrome://tracing
  /// and Perfetto.
  std::string ToChromeJson() const;

  /// Top `top_n` span names by exclusive (self) time: total minus the time
  /// spent in same-thread child spans. Rendered as an aligned text table.
  std::string SelfTimeSummary(size_t top_n = 20) const;
};

/// Static facade over the process-wide trace registry.
class Trace {
 public:
  /// Enables recording with `options`. Options apply to buffers created
  /// after the call; already-created thread buffers keep their capacity.
  static void Start(const TraceOptions& options = {});

  /// Stops recording; retained spans stay available for export.
  static void Stop() { SetEnabled(false); }

  /// Start()/Stop() with the current options.
  static void SetEnabled(bool enabled);
  static bool Enabled() { return trace::Enabled(); }

  /// Copies every thread's retained spans. Quiescence-only, like
  /// Telemetry::Reset: callers must join/quiesce parallel work first.
  static TraceSnapshot Snapshot();

  /// Drops every retained span on every thread. Quiescence-only.
  static void Reset();

  /// Snapshot().ToChromeJson() convenience.
  static std::string ToChromeJson();

  /// Writes ToChromeJson() to `path` (truncating). IOError on failure.
  static Status WriteChromeTrace(const std::string& path);

  /// Snapshot().SelfTimeSummary(top_n) convenience.
  static std::string SelfTimeSummary(size_t top_n = 20);

  /// Total spans lost to ring overflow across all threads.
  static uint64_t DroppedSpans();
};

}  // namespace trace
}  // namespace scenerec

#define SCENEREC_TRACE_CONCAT_IMPL_(a, b) a##b
#define SCENEREC_TRACE_CONCAT_(a, b) SCENEREC_TRACE_CONCAT_IMPL_(a, b)

/// Unnamed span scope covering the rest of the enclosing block:
///   TRACE_SCOPE("trainer/forward");
#define TRACE_SCOPE(name)                                            \
  ::scenerec::trace::SpanScope SCENEREC_TRACE_CONCAT_(trace_scope_, \
                                                      __LINE__)(name)

/// Span with printf-style args: TRACE_SCOPE_F("epoch", "epoch=%d", e);
#define TRACE_SCOPE_F(name, ...)                                     \
  ::scenerec::trace::SpanScope SCENEREC_TRACE_CONCAT_(trace_scope_, \
                                                      __LINE__)(     \
      name, "", ::scenerec::trace::Floor::kNone, __VA_ARGS__)

/// Category + floor control for instrumentation sites.
#define SCENEREC_TRACE_SPAN(name, cat, floor)                        \
  ::scenerec::trace::SpanScope SCENEREC_TRACE_CONCAT_(trace_scope_, \
                                                      __LINE__)(name, cat, floor)

#define SCENEREC_TRACE_SPAN_F(name, cat, floor, ...)                 \
  ::scenerec::trace::SpanScope SCENEREC_TRACE_CONCAT_(trace_scope_, \
                                                      __LINE__)(     \
      name, cat, floor, __VA_ARGS__)

#endif  // SCENEREC_COMMON_TRACE_H_
