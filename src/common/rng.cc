#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace scenerec {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextInt(uint64_t bound) {
  SCENEREC_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SCENEREC_CHECK_LT(lo, hi);
  return lo + static_cast<int64_t>(NextInt(static_cast<uint64_t>(hi - lo)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Rng::NextGaussian() {
  // Box–Muller; discard the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  SCENEREC_CHECK_GT(n, 0u);
  SCENEREC_CHECK_GT(s, 0.0);
  // Inverse-CDF by linear scan; adequate for the small n used by the
  // synthetic generator (scene/category counts). Popularity-weighted item
  // sampling goes through AliasSampler instead.
  double norm = 0.0;
  for (uint64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double u = NextDouble() * norm;
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(double(k), s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  SCENEREC_CHECK_LE(k, n);
  // Floyd's algorithm: k iterations, O(k) expected set operations.
  std::vector<uint64_t> result;
  result.reserve(k);
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = NextInt(j + 1);
    bool seen = false;
    for (uint64_t v : result) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    result.push_back(seen ? j : t);
  }
  return result;
}

Rng Rng::Split() { return Rng(Next64()); }

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  SCENEREC_CHECK_GT(n, 0u);
  SCENEREC_CHECK_GT(s, 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = acc;
  }
  const double norm = acc;
  for (double& c : cdf_) c /= norm;
  cdf_[n - 1] = 1.0;  // immune to rounding at the tail
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // First rank whose cumulative mass covers u.
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.size();
  SCENEREC_CHECK_GT(n, 0u);
  double total = 0.0;
  for (double w : weights) {
    SCENEREC_CHECK_GE(w, 0.0);
    total += w;
  }
  SCENEREC_CHECK_GT(total, 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) scaled[i] = weights[i] * n / total;

  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = scaled[l] + scaled[s] - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) prob_[i] = 1.0;
  for (uint32_t i : small) prob_[i] = 1.0;
}

uint64_t AliasSampler::Sample(Rng& rng) const {
  uint64_t column = rng.NextInt(prob_.size());
  return rng.NextDouble() < prob_[column] ? column : alias_[column];
}

}  // namespace scenerec
