#ifndef SCENEREC_COMMON_LOGGING_H_
#define SCENEREC_COMMON_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace scenerec {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_log {

/// One log statement: buffers the streamed message, emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Severity tokens used by the SCENEREC_LOG macro.
inline constexpr LogLevel kLogDEBUG = LogLevel::kDebug;
inline constexpr LogLevel kLogINFO = LogLevel::kInfo;
inline constexpr LogLevel kLogWARNING = LogLevel::kWarning;
inline constexpr LogLevel kLogERROR = LogLevel::kError;

}  // namespace internal_log
}  // namespace scenerec

/// Leveled logging to stderr:
///   SCENEREC_LOG(INFO) << "epoch " << epoch << " loss " << loss;
#define SCENEREC_LOG(severity)                                  \
  ::scenerec::internal_log::LogMessage(                         \
      ::scenerec::internal_log::kLog##severity, __FILE__, __LINE__)

#endif  // SCENEREC_COMMON_LOGGING_H_
