#ifndef SCENEREC_COMMON_STRING_UTIL_H_
#define SCENEREC_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"

namespace scenerec {

/// Splits `text` on `delimiter`, keeping empty fields. "a,,b" -> {a, "", b}.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Parses a base-10 signed integer; the whole string must be consumed.
StatusOr<int64_t> ParseInt64(std::string_view text);

/// Parses a floating point value; the whole string must be consumed.
StatusOr<double> ParseDouble(std::string_view text);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders `value` with `digits` digits after the decimal point, e.g. for
/// metric tables ("0.4298").
std::string FormatFixed(double value, int digits);

/// Groups thousands for readability: 3002806 -> "3,002,806".
std::string FormatWithCommas(int64_t value);

}  // namespace scenerec

#endif  // SCENEREC_COMMON_STRING_UTIL_H_
