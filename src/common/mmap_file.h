#ifndef SCENEREC_COMMON_MMAP_FILE_H_
#define SCENEREC_COMMON_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "common/status_or.h"

namespace scenerec {

/// A whole file mapped read-only (PROT_READ, MAP_PRIVATE). Move-only RAII:
/// the mapping lives exactly as long as the object, so anything that views
/// the mapped bytes (borrowed FloatBuffers, snapshot tensors) must keep the
/// owning object alive — see nn/snapshot.h, which shares a MappedFile
/// through shared_ptr pins.
///
/// The pages are faulted in lazily by the kernel: opening a multi-gigabyte
/// file costs one mmap call, and only the bytes actually scored against are
/// ever read from disk.
class MappedFile {
 public:
  /// Maps `path` read-only. Empty files map successfully with size() == 0.
  static StatusOr<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  void Unmap();

  const char* data_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

}  // namespace scenerec

#endif  // SCENEREC_COMMON_MMAP_FILE_H_
