#include "common/socket_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace scenerec {

namespace {

/// Hard cap on a request line; a verb is a handful of characters, anything
/// longer is a confused client.
constexpr size_t kMaxRequestLine = 1024;

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

void SetIoTimeout(int fd, int timeout_ms) {
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes all of `data` (MSG_NOSIGNAL: a vanished client must not SIGPIPE
/// the daemon). False on any error or timeout.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one LF-terminated line (LF stripped, trailing CR tolerated).
bool ReadLine(int fd, std::string* line) {
  line->clear();
  char c;
  while (line->size() < kMaxRequestLine) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    if (c == '\n') {
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    line->push_back(c);
  }
  return false;
}

bool ReadExact(int fd, size_t bytes, std::string* out) {
  out->clear();
  out->reserve(bytes);
  char buf[4096];
  while (out->size() < bytes) {
    const size_t want = std::min(sizeof(buf), bytes - out->size());
    const ssize_t n = ::recv(fd, buf, want, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    out->append(buf, static_cast<size_t>(n));
  }
  return true;
}

/// One-line-safe rendering of an error message for the ERR frame.
std::string Flatten(const std::string& message) {
  std::string out = message;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

UnixSocketServer::~UnixSocketServer() { Stop(); }

Status UnixSocketServer::Start(const std::string& path,
                               SocketHandler handler) {
  if (running()) return Status::FailedPrecondition("socket server running");
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad unix socket path: \"" + path +
                                   "\" (max " +
                                   std::to_string(sizeof(addr.sun_path) - 1) +
                                   " chars)");
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket(" + path + ")");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // A stale socket file from a dead daemon would make bind fail; the new
  // daemon owns the path.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s = Errno("bind(" + path + ")");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) < 0) {
    const Status s = Errno("listen(" + path + ")");
    ::close(fd);
    ::unlink(path.c_str());
    return s;
  }
  if (::pipe(stop_pipe_) < 0) {
    const Status s = Errno("pipe");
    ::close(fd);
    ::unlink(path.c_str());
    return s;
  }

  path_ = path;
  handler_ = std::move(handler);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void UnixSocketServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the poll in AcceptLoop; the loop notices running_ == false.
  const char byte = 'x';
  [[maybe_unused]] ssize_t ignored = ::write(stop_pipe_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
  stop_pipe_[0] = stop_pipe_[1] = -1;
  ::unlink(path_.c_str());
}

void UnixSocketServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, /*timeout=*/-1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // Stop() signalled
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void UnixSocketServer::HandleConnection(int fd) {
  SetIoTimeout(fd, /*timeout_ms=*/5000);
  std::string verb;
  if (!ReadLine(fd, &verb)) return;
  StatusOr<std::string> reply = handler_(verb);
  if (reply.ok()) {
    const std::string& payload = reply.value();
    SendAll(fd, "OK " + std::to_string(payload.size()) + "\n" + payload);
  } else {
    SendAll(fd, "ERR " + Flatten(reply.status().ToString()) + "\n");
  }
}

StatusOr<std::string> UnixSocketRequest(const std::string& path,
                                        const std::string& verb,
                                        int timeout_ms) {
  sockaddr_un addr{};
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad unix socket path: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  SetIoTimeout(fd, timeout_ms);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s = Errno("connect(" + path + ")");
    ::close(fd);
    return s;
  }
  std::string header;
  std::string payload;
  const bool ok = SendAll(fd, verb + "\n") && ReadLine(fd, &header);
  if (!ok) {
    ::close(fd);
    return Errno("request \"" + verb + "\" on " + path);
  }
  if (header.rfind("ERR ", 0) == 0) {
    ::close(fd);
    return Status::Internal("stats socket: " + header.substr(4));
  }
  if (header.rfind("OK ", 0) != 0) {
    ::close(fd);
    return Status::Internal("stats socket: malformed header \"" + header +
                            "\"");
  }
  size_t bytes = 0;
  try {
    bytes = static_cast<size_t>(std::stoull(header.substr(3)));
  } catch (...) {
    ::close(fd);
    return Status::Internal("stats socket: bad length in \"" + header +
                            "\"");
  }
  if (!ReadExact(fd, bytes, &payload)) {
    ::close(fd);
    return Errno("short read on " + path);
  }
  ::close(fd);
  return payload;
}

}  // namespace scenerec
