#include "common/malloc_tuning.h"

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace scenerec {

void TuneAllocatorForTraining() {
#if defined(__GLIBC__)
  // Keep up to 256 MiB of freed memory pooled instead of trimming, and stop
  // routing medium allocations through mmap (whose unmap on free is a
  // syscall per tensor).
  ::mallopt(M_TRIM_THRESHOLD, 256 * 1024 * 1024);
  ::mallopt(M_MMAP_THRESHOLD, 256 * 1024 * 1024);
#endif
}

}  // namespace scenerec
