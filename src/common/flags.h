#ifndef SCENEREC_COMMON_FLAGS_H_
#define SCENEREC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace scenerec {

/// Minimal command-line flag parser used by the example and benchmark
/// binaries. Accepts `--name=value` and `--name value`; bool flags may omit
/// the value (`--verbose`). Unknown flags are an error so typos surface.
///
///   FlagParser flags;
///   flags.AddInt64("seed", 42, "RNG seed");
///   flags.AddDouble("scale", 1.0, "dataset scale factor");
///   Status s = flags.Parse(argc, argv);
class FlagParser {
 public:
  FlagParser() = default;

  FlagParser(const FlagParser&) = delete;
  FlagParser& operator=(const FlagParser&) = delete;

  /// Registers flags. Names must be unique.
  void AddInt64(const std::string& name, int64_t default_value,
                const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  /// A string flag that may appear bare: `--name` sets `implicit_value`
  /// (without consuming the next argv token), `--name=text` sets `text`.
  /// Read it back with GetString.
  void AddImplicitString(const std::string& name,
                         const std::string& default_value,
                         const std::string& implicit_value,
                         const std::string& help);

  /// Parses argv; returns InvalidArgument on unknown flags or bad values.
  /// Non-flag positional arguments are collected into positional().
  Status Parse(int argc, char** argv);

  /// Typed accessors. The flag must have been registered with the matching
  /// Add* overload.
  int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders a usage/help block listing all registered flags.
  std::string Help() const;

 private:
  enum class Type { kInt64, kDouble, kBool, kString, kImplicitString };

  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
    std::string string_value;
    std::string implicit_value;  // kImplicitString only: value when bare
  };

  Status SetFromString(Flag& flag, const std::string& name,
                       const std::string& text);
  const Flag& GetFlag(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace scenerec

#endif  // SCENEREC_COMMON_FLAGS_H_
