#include "common/flags.h"

#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace scenerec {

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          const std::string& help) {
  SCENEREC_CHECK(flags_.find(name) == flags_.end()) << "duplicate flag" << name;
  Flag flag;
  flag.type = Type::kInt64;
  flag.help = help;
  flag.int_value = default_value;
  flags_.emplace(name, std::move(flag));
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  SCENEREC_CHECK(flags_.find(name) == flags_.end()) << "duplicate flag" << name;
  Flag flag;
  flag.type = Type::kDouble;
  flag.help = help;
  flag.double_value = default_value;
  flags_.emplace(name, std::move(flag));
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  SCENEREC_CHECK(flags_.find(name) == flags_.end()) << "duplicate flag" << name;
  Flag flag;
  flag.type = Type::kBool;
  flag.help = help;
  flag.bool_value = default_value;
  flags_.emplace(name, std::move(flag));
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  SCENEREC_CHECK(flags_.find(name) == flags_.end()) << "duplicate flag" << name;
  Flag flag;
  flag.type = Type::kString;
  flag.help = help;
  flag.string_value = default_value;
  flags_.emplace(name, std::move(flag));
}

void FlagParser::AddImplicitString(const std::string& name,
                                   const std::string& default_value,
                                   const std::string& implicit_value,
                                   const std::string& help) {
  SCENEREC_CHECK(flags_.find(name) == flags_.end()) << "duplicate flag" << name;
  Flag flag;
  flag.type = Type::kImplicitString;
  flag.help = help;
  flag.string_value = default_value;
  flag.implicit_value = implicit_value;
  flags_.emplace(name, std::move(flag));
}

Status FlagParser::SetFromString(Flag& flag, const std::string& name,
                                 const std::string& text) {
  switch (flag.type) {
    case Type::kInt64: {
      auto parsed = ParseInt64(text);
      if (!parsed.ok()) {
        return Status::InvalidArgument("--" + name + ": " +
                                       parsed.status().message());
      }
      flag.int_value = parsed.value();
      return Status::OK();
    }
    case Type::kDouble: {
      auto parsed = ParseDouble(text);
      if (!parsed.ok()) {
        return Status::InvalidArgument("--" + name + ": " +
                                       parsed.status().message());
      }
      flag.double_value = parsed.value();
      return Status::OK();
    }
    case Type::kBool: {
      if (text == "true" || text == "1") {
        flag.bool_value = true;
      } else if (text == "false" || text == "0") {
        flag.bool_value = false;
      } else {
        return Status::InvalidArgument("--" + name +
                                       ": expected true/false, got " + text);
      }
      return Status::OK();
    }
    case Type::kString:
    case Type::kImplicitString:
      flag.string_value = text;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" + Help());
    }
    Flag& flag = it->second;
    if (has_value && value.empty() && flag.type == Type::kImplicitString) {
      // `--telemetry=` is almost always a typo'd `--telemetry` (which takes
      // the implicit value); silently storing "" used to disable the
      // feature the user asked for. Reject it, naming the flag.
      return Status::InvalidArgument(
          "--" + name + "= has an empty value; use --" + name +
          " for the implicit default (\"" + flag.implicit_value +
          "\") or --" + name + "=<value>");
    }
    if (!has_value) {
      if (flag.type == Type::kBool) {
        // `--verbose` with no value means true.
        flag.bool_value = true;
        continue;
      }
      if (flag.type == Type::kImplicitString) {
        // `--telemetry` without `=path` takes the implicit value and never
        // consumes the next token (which would swallow a positional arg).
        flag.string_value = flag.implicit_value;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " expects a value");
      }
      value = argv[++i];
    }
    SCENEREC_RETURN_IF_ERROR(SetFromString(flag, name, value));
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::GetFlag(const std::string& name,
                                            Type type) const {
  auto it = flags_.find(name);
  SCENEREC_CHECK(it != flags_.end()) << "flag not registered:" << name;
  SCENEREC_CHECK(it->second.type == type) << "flag type mismatch:" << name;
  return it->second;
}

int64_t FlagParser::GetInt64(const std::string& name) const {
  return GetFlag(name, Type::kInt64).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return GetFlag(name, Type::kDouble).double_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetFlag(name, Type::kBool).bool_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  SCENEREC_CHECK(it != flags_.end()) << "flag not registered:" << name;
  SCENEREC_CHECK(it->second.type == Type::kString ||
                 it->second.type == Type::kImplicitString)
      << "flag type mismatch:" << name;
  return it->second.string_value;
}

std::string FlagParser::Help() const {
  std::ostringstream out;
  out << "Flags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name;
    switch (flag.type) {
      case Type::kInt64:
        out << "=<int> (default " << flag.int_value << ")";
        break;
      case Type::kDouble:
        out << "=<float> (default " << flag.double_value << ")";
        break;
      case Type::kBool:
        out << "=<bool> (default " << (flag.bool_value ? "true" : "false")
            << ")";
        break;
      case Type::kString:
        out << "=<string> (default \"" << flag.string_value << "\")";
        break;
      case Type::kImplicitString:
        out << "[=<string>] (bare sets \"" << flag.implicit_value << "\")";
        break;
    }
    out << "  " << flag.help << "\n";
  }
  return out.str();
}

}  // namespace scenerec
