#include "common/repr_cache.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/telemetry.h"

namespace scenerec {

namespace {

// Serving telemetry (docs/observability.md): demand-paged representation
// cache behavior. Hit rate = hits / (hits + misses); `repr_cache_bytes` is
// the resident payload, which only grows until the cache reaches capacity
// (eviction reuses slots), so the kMax gauge merge reports the latest value
// no matter which thread inserted last.
const telemetry::Counter t_hits =
    telemetry::RegisterCounter("serve/repr_cache_hits");
const telemetry::Counter t_misses =
    telemetry::RegisterCounter("serve/repr_cache_misses");
const telemetry::Counter t_evictions =
    telemetry::RegisterCounter("serve/repr_cache_evictions");
const telemetry::Gauge g_bytes = telemetry::RegisterGauge(
    "serve/repr_cache_bytes", telemetry::GaugeAgg::kMax);

/// SplitMix64 finalizer: decorrelates shard choice from low key bits so
/// sequential user ids spread across shards.
uint64_t MixKey(int64_t key) {
  uint64_t z = static_cast<uint64_t>(key) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t FloorPow2(int64_t v) {
  int64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

}  // namespace

ReprCache::ReprCache(const Options& options)
    : dim_(options.dim), capacity_(options.capacity) {
  SCENEREC_CHECK_GE(options.capacity, 1);
  SCENEREC_CHECK_GE(options.dim, 1);
  SCENEREC_CHECK_GE(options.num_shards, 1);
  const int64_t num_shards =
      FloorPow2(std::min(options.num_shards, options.capacity));
  shard_mask_ = static_cast<uint64_t>(num_shards - 1);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int64_t s = 0; s < num_shards; ++s) {
    // Exact split: the first (capacity % num_shards) shards take one extra
    // slot, so total slots == capacity.
    const int64_t slots =
        capacity_ / num_shards + (s < capacity_ % num_shards ? 1 : 0);
    auto shard = std::make_unique<Shard>();
    shard->keys.assign(static_cast<size_t>(slots), 0);
    shard->versions.assign(static_cast<size_t>(slots), 0);
    shard->ref.assign(static_cast<size_t>(slots), 0);
    shard->rows.assign(static_cast<size_t>(slots * dim_), 0.0f);
    shard->index.reserve(static_cast<size_t>(slots * 2));
    shards_.push_back(std::move(shard));
  }
}

ReprCache::Shard& ReprCache::ShardFor(int64_t key) {
  return *shards_[MixKey(key) & shard_mask_];
}

bool ReprCache::Lookup(int64_t key, uint64_t version, std::span<float> out) {
  SCENEREC_CHECK_EQ(static_cast<int64_t>(out.size()), dim_);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end() || shard.versions[it->second] != version) {
    ++shard.misses;
    t_misses.Add(1);
    return false;
  }
  const int64_t slot = it->second;
  std::memcpy(out.data(), shard.rows.data() + slot * dim_,
              static_cast<size_t>(dim_) * sizeof(float));
  shard.ref[static_cast<size_t>(slot)] = 1;
  ++shard.hits;
  t_hits.Add(1);
  return true;
}

void ReprCache::Insert(int64_t key, uint64_t version,
                       std::span<const float> row) {
  SCENEREC_CHECK_EQ(static_cast<int64_t>(row.size()), dim_);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const int64_t slots = static_cast<int64_t>(shard.keys.size());
  int64_t slot;
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Same key re-inserted (typically the new publish version): refresh the
    // existing slot in place.
    slot = it->second;
  } else if (shard.used < slots) {
    slot = shard.used++;
    entries_.fetch_add(1, std::memory_order_relaxed);
    shard.index.emplace(key, slot);
  } else {
    // Clock / second-chance sweep: entries hit since the hand last passed
    // get one reprieve (ref cleared), the first cold entry is evicted.
    while (shard.ref[static_cast<size_t>(shard.hand)] != 0) {
      shard.ref[static_cast<size_t>(shard.hand)] = 0;
      shard.hand = (shard.hand + 1) % slots;
    }
    slot = shard.hand;
    shard.hand = (shard.hand + 1) % slots;
    shard.index.erase(shard.keys[static_cast<size_t>(slot)]);
    shard.index.emplace(key, slot);
    ++shard.evictions;
    t_evictions.Add(1);
  }
  shard.keys[static_cast<size_t>(slot)] = key;
  shard.versions[static_cast<size_t>(slot)] = version;
  shard.ref[static_cast<size_t>(slot)] = 1;
  std::memcpy(shard.rows.data() + slot * dim_, row.data(),
              static_cast<size_t>(dim_) * sizeof(float));
  ++shard.insertions;
  g_bytes.Set(static_cast<uint64_t>(
      entries_.load(std::memory_order_relaxed) * dim_ *
      static_cast<int64_t>(sizeof(float))));
}

void ReprCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->index.clear();
    entries_.fetch_sub(shard->used, std::memory_order_relaxed);
    shard->used = 0;
    shard->hand = 0;
    std::fill(shard->ref.begin(), shard->ref.end(), 0);
  }
}

ReprCache::Stats ReprCache::stats() const {
  Stats s;
  s.capacity_bytes = capacity_ * dim_ * static_cast<int64_t>(sizeof(float));
  for (const std::unique_ptr<Shard>& shard : shards_) {
    // Relaxed totals: each field has one writer critical section, and a
    // point-in-time sum over shards is all observability needs.
    std::lock_guard<std::mutex> lock(shard->mu);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.insertions += shard->insertions;
    s.evictions += shard->evictions;
    s.entries += shard->used;
  }
  s.bytes = s.entries * dim_ * static_cast<int64_t>(sizeof(float));
  return s;
}

}  // namespace scenerec
