#ifndef SCENEREC_COMMON_CHECK_H_
#define SCENEREC_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace scenerec {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the SCENEREC_CHECK* macros below; never instantiate directly.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lower-precedence sink that converts a streamed CheckFailure chain to void,
/// so the SCENEREC_CHECK macro can appear in expression position.
struct Voidify {
  void operator&(const CheckFailure&) {}
};

}  // namespace internal_check
}  // namespace scenerec

/// Aborts the process with a diagnostic if `cond` is false. For programmer
/// errors (violated invariants), not for runtime failures — those return
/// Status. Additional context can be streamed:
///   SCENEREC_CHECK(i < size()) << "index" << i;
#define SCENEREC_CHECK(cond)                                       \
  (cond) ? (void)0                                                 \
         : ::scenerec::internal_check::Voidify() &                 \
               ::scenerec::internal_check::CheckFailure(__FILE__,  \
                                                        __LINE__, #cond)

#define SCENEREC_CHECK_OP(a, b, op)                                      \
  ((a)op(b)) ? (void)0                                                   \
             : ::scenerec::internal_check::Voidify() &                   \
                   ::scenerec::internal_check::CheckFailure(             \
                       __FILE__, __LINE__, #a " " #op " " #b)            \
                       << "(" << (a) << " vs " << (b) << ")"

#define SCENEREC_CHECK_EQ(a, b) SCENEREC_CHECK_OP(a, b, ==)
#define SCENEREC_CHECK_NE(a, b) SCENEREC_CHECK_OP(a, b, !=)
#define SCENEREC_CHECK_LT(a, b) SCENEREC_CHECK_OP(a, b, <)
#define SCENEREC_CHECK_LE(a, b) SCENEREC_CHECK_OP(a, b, <=)
#define SCENEREC_CHECK_GT(a, b) SCENEREC_CHECK_OP(a, b, >)
#define SCENEREC_CHECK_GE(a, b) SCENEREC_CHECK_OP(a, b, >=)

/// Like SCENEREC_CHECK but compiled out in NDEBUG builds. Use on hot paths.
#ifdef NDEBUG
#define SCENEREC_DCHECK(cond) SCENEREC_CHECK(true || (cond))
#else
#define SCENEREC_DCHECK(cond) SCENEREC_CHECK(cond)
#endif

#endif  // SCENEREC_COMMON_CHECK_H_
