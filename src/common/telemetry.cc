#include "common/telemetry.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/check.h"

namespace scenerec {
namespace telemetry {

namespace internal {

thread_local constinit ThreadSlab* t_slab = nullptr;

namespace {

/// Non-atomic mirror of a ThreadSlab, accumulating the slabs of exited
/// threads so their contributions survive the thread.
struct RetiredTotals {
  std::array<uint64_t, kMaxCounters> counters{};
  std::array<uint64_t, kMaxGauges> gauge_sum{};
  std::array<uint64_t, kMaxGauges> gauge_max{};
  std::array<HistogramData, kMaxHistograms> hists;
};

/// Registered names + live slabs, behind one mutex. A Meyers singleton so
/// namespace-scope metric registration in any translation unit is safe.
struct Registry {
  std::mutex mu;

  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<GaugeAgg> gauge_aggs;
  std::vector<std::string> hist_names;
  std::vector<std::string> hist_units;

  std::vector<ThreadSlab*> slabs;  // live threads, including the caller's
  RetiredTotals retired;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all threads
  return *registry;
}

uint64_t Load(const std::atomic<uint64_t>& cell) {
  return cell.load(std::memory_order_relaxed);
}

HistogramData LoadHist(const ThreadSlab::HistCell& cell) {
  HistogramData data;
  data.count = Load(cell.count);
  data.sum = Load(cell.sum);
  data.max = Load(cell.max);
  for (int b = 0; b < kHistogramBuckets; ++b) {
    data.buckets[b] = Load(cell.buckets[b]);
  }
  return data;
}

void ZeroSlab(ThreadSlab& slab) {
  for (auto& c : slab.counters) c.store(0, std::memory_order_relaxed);
  for (auto& g : slab.gauges) g.store(0, std::memory_order_relaxed);
  for (auto& h : slab.hists) {
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0, std::memory_order_relaxed);
    h.max.store(0, std::memory_order_relaxed);
    for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
  }
}

/// Folds an exiting thread's slab into the retired totals and drops it from
/// the live list.
void RetireSlab(ThreadSlab* slab) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (int i = 0; i < kMaxCounters; ++i) {
    reg.retired.counters[i] += Load(slab->counters[i]);
  }
  for (int i = 0; i < kMaxGauges; ++i) {
    const uint64_t v = Load(slab->gauges[i]);
    reg.retired.gauge_sum[i] += v;
    reg.retired.gauge_max[i] = std::max(reg.retired.gauge_max[i], v);
  }
  for (int i = 0; i < kMaxHistograms; ++i) {
    reg.retired.hists[i].Merge(LoadHist(slab->hists[i]));
  }
  reg.slabs.erase(std::remove(reg.slabs.begin(), reg.slabs.end(), slab),
                  reg.slabs.end());
}

/// Thread-exit hook: owns the slab, merges it into the retired totals when
/// the thread dies.
struct SlabOwner {
  std::unique_ptr<ThreadSlab> slab = std::make_unique<ThreadSlab>();
  ~SlabOwner() {
    RetireSlab(slab.get());
    t_slab = nullptr;
  }
};

}  // namespace

ThreadSlab& CreateSlab() {
  static thread_local SlabOwner owner;
  if (t_slab == nullptr) {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.slabs.push_back(owner.slab.get());
    t_slab = owner.slab.get();
  }
  return *t_slab;
}

}  // namespace internal

namespace {

/// Finds `name` in `names` or appends it; fails fast past the per-kind cap
/// with a message naming the offending metric and everything already
/// registered (so the overflow is diagnosable without a debugger).
int ResolveId(std::vector<std::string>& names, const std::string& name,
              int cap, const char* kind) {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<int>(i);
  }
  if (static_cast<int>(names.size()) >= cap) {
    std::string registered;
    for (const std::string& n : names) {
      if (!registered.empty()) registered += ", ";
      registered += n;
    }
    SCENEREC_CHECK(false)
        << "telemetry: cannot register " << kind << " \"" << name
        << "\": cap of " << cap << " " << kind
        << " metrics reached (raise kMax* in common/telemetry.h). "
        << "Already registered: " << registered;
  }
  names.push_back(name);
  return static_cast<int>(names.size()) - 1;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Steady-clock epoch for uptime / mono_ns, captured at static-init time —
/// early enough that "uptime" means process lifetime for any realistic use.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

/// Resident set size from /proc/self/statm (second field, in pages).
/// Returns 0 where procfs is unavailable.
uint64_t ReadRssBytes() {
  std::ifstream statm("/proc/self/statm");
  uint64_t vm_pages = 0;
  uint64_t rss_pages = 0;
  if (!(statm >> vm_pages >> rss_pages)) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return rss_pages * static_cast<uint64_t>(page > 0 ? page : 4096);
}

ProcessSample SampleProcess() {
  ProcessSample p;
  const auto elapsed = std::chrono::steady_clock::now() - g_process_start;
  p.mono_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  p.uptime_seconds = static_cast<double>(p.mono_ns) * 1e-9;
  p.rss_bytes = ReadRssBytes();
  return p;
}

/// `serve/request_ns` -> `scenerec_serve_request_ns`.
std::string PromName(const std::string& name) {
  std::string out = "scenerec_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

Counter RegisterCounter(const std::string& name) {
  internal::Registry& reg = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return Counter(
      ResolveId(reg.counter_names, name, kMaxCounters, "counter"));
}

Gauge RegisterGauge(const std::string& name, GaugeAgg agg) {
  internal::Registry& reg = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const int id = ResolveId(reg.gauge_names, name, kMaxGauges, "gauge");
  if (id == static_cast<int>(reg.gauge_aggs.size())) {
    reg.gauge_aggs.push_back(agg);
  } else {
    SCENEREC_CHECK(reg.gauge_aggs[static_cast<size_t>(id)] == agg)
        << "telemetry: gauge " << name
        << " re-registered with a different aggregation";
  }
  return Gauge(id);
}

Histogram RegisterHistogram(const std::string& name, const std::string& unit) {
  internal::Registry& reg = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  const int id =
      ResolveId(reg.hist_names, name, kMaxHistograms, "histogram");
  if (id == static_cast<int>(reg.hist_units.size())) {
    reg.hist_units.push_back(unit);
  }
  return Histogram(id);
}

uint64_t TelemetrySnapshot::CounterValue(const std::string& name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

uint64_t TelemetrySnapshot::GaugeValue(const std::string& name) const {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const HistogramSample* TelemetrySnapshot::FindHistogram(
    const std::string& name) const& {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string TelemetrySnapshot::ToJson() const {
  std::string out = "{\n  \"process\": {";
  out += "\"uptime_seconds\": " + FormatDouble(process.uptime_seconds);
  out += ", \"rss_bytes\": " + std::to_string(process.rss_bytes);
  out += ", \"mono_ns\": " + std::to_string(process.mono_ns);
  out += "},\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(out, counters[i].name);
    out += ": " + std::to_string(counters[i].value);
  }
  out += "\n  },\n  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(out, gauges[i].name);
    out += ": " + std::to_string(gauges[i].value);
  }
  out += "\n  },\n  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    AppendJsonString(out, h.name);
    out += ": {\"unit\": ";
    AppendJsonString(out, h.unit);
    out += ", \"count\": " + std::to_string(h.data.count);
    out += ", \"sum\": " + std::to_string(h.data.sum);
    out += ", \"max\": " + std::to_string(h.data.max);
    out += ", \"mean\": " + FormatDouble(h.data.Mean());
    out += ", \"p50\": " + FormatDouble(h.data.Percentile(0.50));
    out += ", \"p90\": " + FormatDouble(h.data.Percentile(0.90));
    out += ", \"p99\": " + FormatDouble(h.data.Percentile(0.99));
    out += ", \"buckets\": [";
    bool first = true;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (h.data.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "[" + std::to_string(HistogramBucketLow(b)) + ", " +
             std::to_string(HistogramBucketHigh(b)) + ", " +
             std::to_string(h.data.buckets[b]) + "]";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string TelemetrySnapshot::ToPrometheus() const {
  std::string out;
  out += "# TYPE scenerec_process_uptime_seconds gauge\n";
  out += "scenerec_process_uptime_seconds " +
         FormatDouble(process.uptime_seconds) + "\n";
  out += "# TYPE scenerec_process_resident_memory_bytes gauge\n";
  out += "scenerec_process_resident_memory_bytes " +
         std::to_string(process.rss_bytes) + "\n";
  for (const CounterSample& c : counters) {
    const std::string name = PromName(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : gauges) {
    const std::string name = PromName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g.value) + "\n";
  }
  for (const HistogramSample& h : histograms) {
    const std::string name = PromName(h.name);
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (h.data.buckets[b] == 0) continue;
      cumulative += h.data.buckets[b];
      out += name + "_bucket{le=\"" +
             std::to_string(HistogramBucketHigh(b)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.data.count) +
           "\n";
    out += name + "_sum " + std::to_string(h.data.sum) + "\n";
    out += name + "_count " + std::to_string(h.data.count) + "\n";
  }
  return out;
}

TelemetrySnapshot Telemetry::Snapshot() {
  internal::Registry& reg = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  TelemetrySnapshot snapshot;
  snapshot.process = SampleProcess();

  snapshot.counters.resize(reg.counter_names.size());
  for (size_t i = 0; i < reg.counter_names.size(); ++i) {
    snapshot.counters[i].name = reg.counter_names[i];
    uint64_t total = reg.retired.counters[i];
    for (internal::ThreadSlab* slab : reg.slabs) {
      total += slab->counters[i].load(std::memory_order_relaxed);
    }
    snapshot.counters[i].value = total;
  }

  snapshot.gauges.resize(reg.gauge_names.size());
  for (size_t i = 0; i < reg.gauge_names.size(); ++i) {
    GaugeSample& sample = snapshot.gauges[i];
    sample.name = reg.gauge_names[i];
    sample.agg = reg.gauge_aggs[i];
    if (sample.agg == GaugeAgg::kSum) {
      uint64_t total = reg.retired.gauge_sum[i];
      for (internal::ThreadSlab* slab : reg.slabs) {
        total += slab->gauges[i].load(std::memory_order_relaxed);
      }
      sample.value = total;
    } else {
      uint64_t peak = reg.retired.gauge_max[i];
      for (internal::ThreadSlab* slab : reg.slabs) {
        peak = std::max(peak, slab->gauges[i].load(std::memory_order_relaxed));
      }
      sample.value = peak;
    }
  }

  snapshot.histograms.resize(reg.hist_names.size());
  for (size_t i = 0; i < reg.hist_names.size(); ++i) {
    HistogramSample& sample = snapshot.histograms[i];
    sample.name = reg.hist_names[i];
    sample.unit = reg.hist_units[i];
    sample.data = reg.retired.hists[i];
    for (internal::ThreadSlab* slab : reg.slabs) {
      sample.data.Merge(internal::LoadHist(slab->hists[i]));
    }
  }
  return snapshot;
}

void Telemetry::Reset() {
  internal::Registry& reg = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.retired = internal::RetiredTotals{};
  for (internal::ThreadSlab* slab : reg.slabs) internal::ZeroSlab(*slab);
}

std::string Telemetry::ToJson() { return Snapshot().ToJson(); }

std::string Telemetry::ToPrometheus() { return Snapshot().ToPrometheus(); }

Status Telemetry::WriteJsonFile(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open telemetry file: " + path);
  out << ToJson();
  out.flush();
  if (!out) return Status::IOError("failed writing telemetry file: " + path);
  return Status::OK();
}

}  // namespace telemetry
}  // namespace scenerec
