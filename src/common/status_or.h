#ifndef SCENEREC_COMMON_STATUS_OR_H_
#define SCENEREC_COMMON_STATUS_OR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace scenerec {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent. The usual return type of fallible factory functions.
///
///   StatusOr<Dataset> result = Dataset::FromTsv(path);
///   if (!result.ok()) return result.status();
///   Dataset d = std::move(result).value();
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}

  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    SCENEREC_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The error status, or OK if a value is present.
  const Status& status() const { return status_; }

  /// The contained value. Requires ok().
  const T& value() const& {
    SCENEREC_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SCENEREC_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SCENEREC_CHECK(ok()) << "StatusOr::value() on error: " << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define SCENEREC_INTERNAL_CONCAT_IMPL(a, b) a##b
#define SCENEREC_INTERNAL_CONCAT(a, b) SCENEREC_INTERNAL_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a StatusOr expression); on error returns the status from
/// the enclosing function, otherwise assigns the value to `lhs`.
#define SCENEREC_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  SCENEREC_INTERNAL_ASSIGN_OR_RETURN(                                          \
      SCENEREC_INTERNAL_CONCAT(_statusor_, __LINE__), lhs, rexpr)

#define SCENEREC_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                       \
  if (!tmp.ok()) return tmp.status();                       \
  lhs = std::move(tmp).value()

}  // namespace scenerec

#endif  // SCENEREC_COMMON_STATUS_OR_H_
