#include "common/windowed_histogram.h"

#include <algorithm>

#include "common/check.h"

namespace scenerec {
namespace telemetry {

WindowedHistograms::WindowedHistograms(
    const WindowedHistogramOptions& options)
    : options_(options) {
  SCENEREC_CHECK_GT(options_.interval_ns, 0u);
  SCENEREC_CHECK_GE(options_.num_intervals, 2);
}

void WindowedHistograms::AdvanceLocked(int64_t slot) {
  // Zero every slot the ring rolls past; a gap longer than the whole ring
  // clears it outright instead of looping per skipped interval.
  const int64_t steps =
      std::min<int64_t>(slot - current_slot_, options_.num_intervals);
  for (auto& [name, track] : tracks_) {
    for (int64_t s = 1; s <= steps; ++s) {
      track.slots[static_cast<size_t>((current_slot_ + s) %
                                      options_.num_intervals)] =
          HistogramData{};
    }
  }
  current_slot_ = slot;
}

void WindowedHistograms::Tick(const TelemetrySnapshot& snapshot,
                              uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t slot = static_cast<int64_t>(now_ns / options_.interval_ns);
  if (!started_) {
    started_ = true;
    first_tick_ns_ = now_ns;
    current_slot_ = slot;
  } else if (slot > current_slot_) {
    AdvanceLocked(slot);
  }
  last_tick_ns_ = now_ns;

  for (const HistogramSample& sample : snapshot.histograms) {
    auto [it, inserted] = tracks_.try_emplace(sample.name);
    Track& track = it->second;
    if (inserted) {
      // A histogram seen for the first time baselines like the first tick:
      // its pre-existing cumulative total stays out of the window.
      track.unit = sample.unit;
      track.prev = sample.data;
      track.slots.assign(static_cast<size_t>(options_.num_intervals),
                         HistogramData{});
      continue;
    }
    const HistogramData delta = HistogramDelta(sample.data, track.prev);
    track.prev = sample.data;
    if (delta.count > 0) {
      track.slots[static_cast<size_t>(current_slot_ %
                                      options_.num_intervals)]
          .Merge(delta);
    }
  }
}

WindowedHistograms::View WindowedHistograms::Window(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  View view;
  const auto it = tracks_.find(name);
  if (it == tracks_.end()) return view;
  view.found = true;
  view.unit = it->second.unit;
  for (const HistogramData& slot : it->second.slots) {
    view.data.Merge(slot);
  }
  view.window_ns = std::min<uint64_t>(
      options_.interval_ns * static_cast<uint64_t>(options_.num_intervals),
      last_tick_ns_ - first_tick_ns_);
  return view;
}

std::vector<std::string> WindowedHistograms::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tracks_.size());
  for (const auto& [name, track] : tracks_) names.push_back(name);
  return names;
}

uint64_t WindowedHistograms::MaxWindowNs() const {
  return options_.interval_ns * static_cast<uint64_t>(options_.num_intervals);
}

}  // namespace telemetry
}  // namespace scenerec
