#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace scenerec {

namespace {
thread_local bool t_in_worker = false;

// Pool telemetry (docs/observability.md): loop/chunk counts plus the two
// latency distributions that expose scheduling health — per-chunk execution
// time (load balance across lanes) and the caller's post-participation wait
// for stragglers (the cost of imbalance).
const telemetry::Counter t_loops =
    telemetry::RegisterCounter("pool/parallel_for_calls");
const telemetry::Counter t_chunks = telemetry::RegisterCounter("pool/chunks_run");
const telemetry::Histogram t_chunk_ns =
    telemetry::RegisterHistogram("pool/chunk_ns", "ns");
const telemetry::Histogram t_wait_ns =
    telemetry::RegisterHistogram("pool/caller_wait_ns", "ns");
}  // namespace

/// One in-flight ParallelFor. Workers and the caller pull chunk indices
/// from `next` until it passes `num_chunks`; the last finisher signals
/// `done`.
struct ThreadPool::LoopState {
  int64_t n = 0;
  int64_t chunk = 0;       // indices per chunk (last chunk may be short)
  int64_t num_chunks = 0;
  const std::function<void(int64_t, int64_t)>* body = nullptr;

  /// The dispatching caller's span, so worker chunk spans nest under the
  /// ParallelFor that issued them. Written before the state is published
  /// (under the pool mutex), read-only afterwards.
  trace::SpanContext trace_ctx;

  std::atomic<int64_t> next{0};
  std::atomic<int64_t> completed{0};

  std::mutex mutex;
  std::condition_variable done;
  std::exception_ptr error;  // first exception, guarded by mutex
};

ThreadPool::ThreadPool(int64_t num_threads) : num_threads_(num_threads) {
  SCENEREC_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int64_t i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::InWorkerThread() { return t_in_worker; }

int64_t ThreadPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int64_t>(n);
}

void ThreadPool::RunChunks(LoopState& state) {
  // Workers have an empty span stack, so the guard makes chunk spans (and
  // anything the body opens) children of the dispatching caller's span. On
  // the caller itself the stack is non-empty and the guard is inert.
  trace::ContextGuard trace_guard(state.trace_ctx);
  while (true) {
    const int64_t c = state.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= state.num_chunks) return;
    const int64_t begin = c * state.chunk;
    const int64_t end = std::min(state.n, begin + state.chunk);
    try {
      telemetry::ScopedTimer chunk_timer(t_chunk_ns);
      SCENEREC_TRACE_SPAN_F("pool/chunk", "pool", ::scenerec::trace::Floor::kNone,
                            "begin=%lld end=%lld", static_cast<long long>(begin),
                            static_cast<long long>(end));
      (*state.body)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state.mutex);
      if (!state.error) state.error = std::current_exception();
    }
    t_chunks.Add(1);
    if (state.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state.num_chunks) {
      // Last chunk: wake the caller. Lock pairs with the caller's wait to
      // avoid a lost notification between its predicate check and sleep.
      std::lock_guard<std::mutex> lock(state.mutex);
      state.done.notify_all();
    }
  }
}

void ThreadPool::WorkerMain() {
  t_in_worker = true;
  while (true) {
    std::shared_ptr<LoopState> loop;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutdown_ || !pending_.empty(); });
      if (shutdown_ && pending_.empty()) return;
      loop = pending_.back();
      if (loop->next.load(std::memory_order_relaxed) >= loop->num_chunks) {
        // Loop already fully claimed; retire it instead of spinning.
        pending_.pop_back();
        continue;
      }
    }
    RunChunks(*loop);
  }
}

void ThreadPool::ParallelFor(
    int64_t n, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body) {
  SCENEREC_CHECK_GE(n, 0);
  if (n == 0) return;
  grain = std::max<int64_t>(1, grain);
  // Inline when there is nothing to fan out to, the range is one chunk, or
  // we are already inside a worker (nested parallelism runs sequentially).
  if (num_threads_ == 1 || n <= grain || InWorkerThread()) {
    body(0, n);
    return;
  }

  // The dispatch span is the parent every chunk nests under, on whichever
  // thread the chunk lands. It closes after the join, so it also covers the
  // caller's straggler wait.
  trace::SpanScope dispatch_span("pool/parallel_for", "pool",
                                 trace::Floor::kNone, "n=%lld",
                                 static_cast<long long>(n));
  auto state = std::make_shared<LoopState>();
  state->trace_ctx = trace::SpanContext{dispatch_span.id()};
  const int64_t max_chunks = (n + grain - 1) / grain;
  // A few chunks per lane keeps load-balancing without scheduling overhead.
  const int64_t target = std::min<int64_t>(max_chunks, num_threads_ * 4);
  state->chunk = (n + target - 1) / target;
  state->num_chunks = (n + state->chunk - 1) / state->chunk;
  state->n = n;
  state->body = &body;

  t_loops.Add(1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.push_back(state);
  }
  wake_.notify_all();

  // The caller is a full participant: it only sleeps once every chunk has
  // been claimed and is waiting for stragglers.
  RunChunks(*state);
  {
    // Everything from here to loop completion is straggler wait: the time
    // the caller idles because lanes finished unevenly.
    telemetry::ScopedTimer wait_timer(t_wait_ns);
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] {
      return state->completed.load(std::memory_order_acquire) ==
             state->num_chunks;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_.erase(std::remove(pending_.begin(), pending_.end(), state),
                   pending_.end());
  }
  // Move the exception out of the (shared) LoopState before rethrowing so
  // its final release always happens on this thread. A worker still holding
  // the state's shared_ptr must never be the one to destroy the exception:
  // the caller's rethrown copy can share internals with it (e.g. the what()
  // string), and freeing those from a pool thread races with the caller
  // reading them.
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    error = std::move(state->error);
  }
  if (error) std::rethrow_exception(error);
}

int64_t ResolveThreadCount(int64_t requested) {
  SCENEREC_CHECK_GE(requested, 0);
  return requested == 0 ? ThreadPool::HardwareConcurrency() : requested;
}

namespace {
std::mutex g_default_pool_mutex;
std::unique_ptr<ThreadPool> g_default_pool;      // guarded by mutex
int64_t g_default_pool_threads = 0;              // 0 = hardware concurrency
}  // namespace

ThreadPool* DefaultThreadPool() {
  std::lock_guard<std::mutex> lock(g_default_pool_mutex);
  if (g_default_pool == nullptr) {
    g_default_pool =
        std::make_unique<ThreadPool>(ResolveThreadCount(g_default_pool_threads));
  }
  return g_default_pool.get();
}

void SetDefaultThreadPoolThreads(int64_t num_threads) {
  std::lock_guard<std::mutex> lock(g_default_pool_mutex);
  g_default_pool_threads = num_threads;
  g_default_pool.reset();  // next DefaultThreadPool() rebuilds at the new size
}

}  // namespace scenerec
