#ifndef SCENEREC_COMMON_REPR_CACHE_H_
#define SCENEREC_COMMON_REPR_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

namespace scenerec {

/// Fixed-capacity, sharded, demand-paged cache of fixed-width float rows
/// (docs/serving.md#warmup). Built for the serving path's lazy user
/// representations: the catalog's hot set stays resident, cold keys are
/// recomputed on miss, and total memory is bounded by `capacity * dim`
/// floats regardless of how many distinct keys traffic touches.
///
/// Concurrency: keys hash to one of `num_shards` independent shards, each
/// guarded by its own mutex, so concurrent lookups of distinct users rarely
/// contend and a lookup never blocks behind an insert on another shard. All
/// methods are safe to call from any number of threads.
///
/// Eviction is clock / second-chance per shard: every hit sets the entry's
/// reference bit; when a shard is full the clock hand sweeps, clearing set
/// bits and evicting the first entry found cold. Recently-hit (hot) entries
/// therefore survive streams of one-shot cold keys.
///
/// Entries are version-tagged: Lookup(key, version) only returns data
/// inserted under the SAME version, so a publisher invalidates the whole
/// cache lazily by bumping the version it tags — no stop-the-world flush,
/// stale entries are overwritten in place as their keys recur (the serving
/// daemon keys versions by publish sequence; see serve::Server::Publish).
class ReprCache {
 public:
  struct Options {
    /// Total resident entries across all shards. Must be >= 1.
    int64_t capacity = 0;
    /// Floats per entry. Must be >= 1.
    int64_t dim = 0;
    /// Requested shard count; rounded down to a power of two and clamped so
    /// every shard owns at least one slot.
    int64_t num_shards = 16;
  };

  explicit ReprCache(const Options& options);

  ReprCache(const ReprCache&) = delete;
  ReprCache& operator=(const ReprCache&) = delete;

  int64_t dim() const { return dim_; }
  int64_t capacity() const { return capacity_; }
  int64_t num_shards() const { return static_cast<int64_t>(shards_.size()); }

  /// True and fills `out` (size dim()) when `key` is resident with a
  /// matching version. A resident entry under a DIFFERENT version is a miss
  /// (stale: its slot is reclaimed by the next Insert of the same key).
  bool Lookup(int64_t key, uint64_t version, std::span<float> out);

  /// Makes (key, version) resident with a copy of `row` (size dim()),
  /// overwriting any prior version of the same key in place and evicting a
  /// cold entry (clock sweep) when the shard is full.
  void Insert(int64_t key, uint64_t version, std::span<const float> row);

  /// Drops every entry. Not used on the serving path (swaps invalidate by
  /// version instead); tests and tools use it for a cold restart.
  void Clear();

  /// Point-in-time totals over all shards (relaxed per-shard counters —
  /// exact when no insert is concurrent).
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;        ///< absent key OR version mismatch
    uint64_t insertions = 0;
    uint64_t evictions = 0;     ///< occupied slots reclaimed by the clock
    int64_t entries = 0;        ///< resident entries (any version)
    int64_t bytes = 0;          ///< resident payload: entries * dim * 4
    int64_t capacity_bytes = 0; ///< fixed backing storage: capacity * dim * 4
  };
  Stats stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    // Slot-parallel arrays; `rows` is one contiguous [slots, dim] block
    // allocated up front, so a full cache never fragments or reallocates.
    std::vector<int64_t> keys;
    std::vector<uint64_t> versions;
    std::vector<uint8_t> ref;     // clock reference bits
    std::vector<float> rows;
    std::unordered_map<int64_t, int64_t> index;  // key -> slot
    int64_t used = 0;  // slots handed out so far (fill before evicting)
    int64_t hand = 0;  // clock position
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(int64_t key);

  int64_t dim_ = 0;
  int64_t capacity_ = 0;
  uint64_t shard_mask_ = 0;
  std::atomic<int64_t> entries_{0};  // sum of per-shard `used`
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace scenerec

#endif  // SCENEREC_COMMON_REPR_CACHE_H_
