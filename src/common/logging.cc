#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace scenerec {

namespace {
/// Relaxed atomic: tests flip the level while pool workers log, and the
/// filter is advisory — a message racing the flip may use either level.
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Small stable per-thread id for log prefixes (0 = first logging thread,
/// usually main). std::thread::id is unique but unreadable in output.
int LogThreadId() {
  static std::atomic<int> next_id{0};
  thread_local const int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() {
  return g_min_level.load(std::memory_order_relaxed);
}

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the file path for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }

  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%d %H:%M:%S", &tm_buf);

  char prefix[128];
  std::snprintf(prefix, sizeof(prefix), "[%s.%03d %s %s:%d t%d] ", stamp,
                millis, LevelName(level), base, line, LogThreadId());
  stream_ << prefix;
}

LogMessage::~LogMessage() {
  if (level_ < g_min_level.load(std::memory_order_relaxed)) return;
  // One fwrite per message (stdio locks the stream per call), so lines from
  // concurrent threads never interleave mid-message.
  std::string message = stream_.str();
  message += '\n';
  std::fwrite(message.data(), 1, message.size(), stderr);
  std::fflush(stderr);
}

}  // namespace internal_log
}  // namespace scenerec
