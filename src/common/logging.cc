#include "common/logging.h"

#include <chrono>
#include <cstdio>

namespace scenerec {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

namespace internal_log {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Strip directories from the file path for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_min_level) return;
  std::cerr << stream_.str() << std::endl;
}

}  // namespace internal_log
}  // namespace scenerec
