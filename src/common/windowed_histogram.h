#ifndef SCENEREC_COMMON_WINDOWED_HISTOGRAM_H_
#define SCENEREC_COMMON_WINDOWED_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/telemetry.h"

namespace scenerec {
namespace telemetry {

// Rolling-window view over the cumulative telemetry histograms — the thing
// an SLO needs ("p99 over the last 30 seconds") that a process-lifetime
// histogram cannot answer (docs/observability.md, "Live serving
// observability").
//
// Design: the hot path is untouched — instrumented code keeps recording
// into the cumulative per-thread slabs with owner-only writes and the
// disabled-mode one-load-and-branch cost. The windowing happens entirely at
// scrape time: a ticker periodically takes a cumulative Telemetry snapshot,
// diffs it against the previous one (HistogramDelta), and files the delta
// into a ring of per-interval histograms. A window query merges the ring —
// up to `num_intervals * interval_ns` of recent history — into one
// HistogramData whose count/mean/percentiles cover only that window.
// Intervals that pass without a tick are zeroed when the ring advances, so
// an idle daemon's window correctly drains to empty.

struct WindowedHistogramOptions {
  /// Ring resolution: one slot per interval.
  uint64_t interval_ns = 1'000'000'000;
  /// Slots in the ring; the window spans at most num_intervals * interval.
  int num_intervals = 30;
};

class WindowedHistograms {
 public:
  explicit WindowedHistograms(const WindowedHistogramOptions& options);

  /// Folds `snapshot` into the ring at time `now_ns` (any monotonic
  /// nanosecond clock; callers must use the same clock for every tick).
  /// The first tick baselines — it records where the cumulative histograms
  /// stand without attributing boot-to-now history into the window. Call at
  /// interval cadence (a missed tick widens attribution granularity, never
  /// corrupts totals) and/or immediately before querying. Thread-safe.
  void Tick(const TelemetrySnapshot& snapshot, uint64_t now_ns);

  struct View {
    bool found = false;       ///< histogram name ever seen by a tick
    std::string unit;
    HistogramData data;       ///< merged over the covered window
    uint64_t window_ns = 0;   ///< time the merge actually covers
  };

  /// The last-window view of one histogram. `found == false` names an
  /// unknown histogram; a known-but-quiet one returns count == 0.
  View Window(const std::string& name) const;

  /// Every histogram name seen so far, sorted.
  std::vector<std::string> Names() const;

  /// Upper bound of the covered window (num_intervals * interval_ns).
  uint64_t MaxWindowNs() const;

 private:
  struct Track {
    std::string unit;
    HistogramData prev;                ///< cumulative state at last tick
    std::vector<HistogramData> slots;  ///< ring, indexed by interval % n
  };

  void AdvanceLocked(int64_t slot);

  const WindowedHistogramOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Track> tracks_;
  bool started_ = false;
  int64_t current_slot_ = 0;   ///< absolute interval index of the head slot
  uint64_t first_tick_ns_ = 0;
  uint64_t last_tick_ns_ = 0;
};

}  // namespace telemetry
}  // namespace scenerec

#endif  // SCENEREC_COMMON_WINDOWED_HISTOGRAM_H_
