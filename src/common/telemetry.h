#ifndef SCENEREC_COMMON_TELEMETRY_H_
#define SCENEREC_COMMON_TELEMETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"

namespace scenerec {
namespace telemetry {

// Process-wide observability registry: named counters, gauges, and log-scale
// histograms, collected with a thread-local fast path (docs/observability.md).
//
// Design in one paragraph: each metric is registered once (by name) and
// resolves to a slot index into a fixed-layout per-thread slab. Hot-path
// updates touch only the calling thread's slab — a relaxed atomic load/store
// pair that compiles to a plain load+add+store, with no read-modify-write
// instruction, lock, or fence — so instrumenting a kernel costs a branch on
// the global enabled flag plus a couple of moves. Scrapes (Snapshot) merge
// every live slab plus the accumulated slabs of exited threads under the
// registry mutex; relaxed atomics make the cross-thread reads well-defined
// (TSan-clean) at the price of a snapshot being at most one in-flight update
// stale per thread, which is fine for telemetry.
//
// When telemetry is disabled (the default), every update short-circuits on
// one relaxed load of a global bool — measured at well under 1% of an epoch
// in bench_parallel's BM_TrainEpochTelemetry (see BENCH_telemetry.json).

/// Hard caps on registered metrics per kind. The per-thread slab is a fixed
/// array sized by these, so registration past the cap fails fast with a
/// message naming the offending metric and the full registered set — raise
/// them if the instrumented surface grows (last raised for the trace layer,
/// which adds `trace/*` metrics on top of the kernel/pool/train set).
inline constexpr int kMaxCounters = 96;
inline constexpr int kMaxGauges = 48;
inline constexpr int kMaxHistograms = 48;

/// Global enable flag. Relaxed: flipping it is advisory, not a fence —
/// updates racing with SetEnabled may or may not be recorded.
inline std::atomic<bool> g_enabled{false};

inline bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

namespace internal {

/// Per-thread storage for every registered metric. Only the owning thread
/// writes; scrapers read concurrently with relaxed loads. All cells are
/// zero-initialized.
struct ThreadSlab {
  struct HistCell {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
  };

  std::array<std::atomic<uint64_t>, kMaxCounters> counters{};
  std::array<std::atomic<uint64_t>, kMaxGauges> gauges{};
  std::array<HistCell, kMaxHistograms> hists{};
};

/// The calling thread's slab pointer; null until the first recorded update.
/// constinit so access from inline fast paths is a direct TLS load (no
/// dynamic-initialization wrapper).
extern thread_local constinit ThreadSlab* t_slab;

/// Creates + registers this thread's slab (idempotent), sets t_slab.
ThreadSlab& CreateSlab();

inline ThreadSlab& Slab() {
  ThreadSlab* s = t_slab;
  return s != nullptr ? *s : CreateSlab();
}

/// Owner-only increment: a plain load+add+store (no RMW instruction). Safe
/// because each slab cell has exactly one writer — its owning thread.
inline void CellAdd(std::atomic<uint64_t>& cell, uint64_t n) {
  cell.store(cell.load(std::memory_order_relaxed) + n,
             std::memory_order_relaxed);
}

inline void CellMax(std::atomic<uint64_t>& cell, uint64_t v) {
  if (v > cell.load(std::memory_order_relaxed)) {
    cell.store(v, std::memory_order_relaxed);
  }
}

}  // namespace internal

/// Monotonically increasing event/quantity count (merge: sum over threads).
class Counter {
 public:
  void Add(uint64_t n = 1) const {
    if (!Enabled()) return;
    internal::CellAdd(internal::Slab().counters[id_], n);
  }

 private:
  friend Counter RegisterCounter(const std::string& name);
  explicit Counter(int id) : id_(id) {}
  int id_;
};

/// How a gauge's per-thread values combine on scrape.
enum class GaugeAgg {
  kSum,  // e.g. bytes reserved across per-thread arenas
  kMax,  // e.g. high-water marks
};

/// Last-value-wins per thread; cross-thread merge per the registered
/// aggregation.
class Gauge {
 public:
  void Set(uint64_t v) const {
    if (!Enabled()) return;
    internal::Slab().gauges[id_].store(v, std::memory_order_relaxed);
  }

  /// Raises this thread's value to at least v (for kMax gauges).
  void RaiseTo(uint64_t v) const {
    if (!Enabled()) return;
    internal::CellMax(internal::Slab().gauges[id_], v);
  }

 private:
  friend Gauge RegisterGauge(const std::string& name, GaugeAgg agg);
  explicit Gauge(int id) : id_(id) {}
  int id_;
};

/// Log-scale distribution of a non-negative quantity (latency ns, bytes).
class Histogram {
 public:
  void Record(uint64_t value) const {
    if (!Enabled()) return;
    internal::ThreadSlab::HistCell& h = internal::Slab().hists[id_];
    internal::CellAdd(h.count, 1);
    internal::CellAdd(h.sum, value);
    internal::CellMax(h.max, value);
    internal::CellAdd(h.buckets[HistogramBucket(value)], 1);
  }

 private:
  friend Histogram RegisterHistogram(const std::string& name,
                                     const std::string& unit);
  explicit Histogram(int id) : id_(id) {}
  int id_;
};

/// Registration is idempotent by name (the same name returns the same slot)
/// and cheap enough for function-local statics, but instrumented hot paths
/// should register once at namespace scope or via a static local handle.
Counter RegisterCounter(const std::string& name);
Gauge RegisterGauge(const std::string& name, GaugeAgg agg);
Histogram RegisterHistogram(const std::string& name, const std::string& unit);

/// RAII latency timer: reads the clock only when telemetry is enabled at
/// construction, records elapsed nanoseconds into `hist` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram hist)
      : hist_(hist), armed_(Enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (armed_) hist_.Record(ElapsedNs());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  uint64_t ElapsedNs() const {
    if (!armed_) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  Histogram hist_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

// -- Scrape ------------------------------------------------------------------

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  GaugeAgg agg = GaugeAgg::kSum;
  uint64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::string unit;
  HistogramData data;
};

/// Process-level stats sampled at scrape time (not per-thread slabs): wall
/// uptime, resident set size, and a monotonic timestamp two scrapes can be
/// diffed over so clients compute rates (QPS = Δcounter / Δmono_ns).
struct ProcessSample {
  double uptime_seconds = 0.0;
  uint64_t rss_bytes = 0;  ///< 0 when /proc/self/statm is unavailable
  uint64_t mono_ns = 0;    ///< steady-clock ns since process start
};

/// A consistent-enough point-in-time view: metrics registered at scrape time
/// with their values merged across all threads that ever recorded.
struct TelemetrySnapshot {
  ProcessSample process;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Value of a counter/gauge by name; 0 if never registered.
  uint64_t CounterValue(const std::string& name) const;
  uint64_t GaugeValue(const std::string& name) const;
  /// Histogram by name; nullptr if never registered. The pointer aliases
  /// this snapshot's storage, so the rvalue overload is deleted — calling it
  /// on a temporary (`Telemetry::Snapshot().FindHistogram(...)`) would
  /// dangle the moment the full expression ends.
  const HistogramSample* FindHistogram(const std::string& name) const&;
  const HistogramSample* FindHistogram(const std::string& name) const&& =
      delete;

  /// Serializes the snapshot as a stable JSON document:
  ///   {"process": {"uptime_seconds": u, "rss_bytes": r, "mono_ns": m},
  ///    "counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"unit": u, "count": c, "sum": s, "max": m,
  ///                          "mean": x, "p50": a, "p90": b, "p99": d,
  ///                          "buckets": [[low, high, count], ...]}, ...}}
  /// Bucket triples list only non-empty buckets.
  std::string ToJson() const;

  /// Prometheus text exposition (version 0.0.4) of the same data. Metric
  /// names are prefixed `scenerec_` with every non-[a-zA-Z0-9_] character
  /// mapped to '_' (`serve/request_ns` -> `scenerec_serve_request_ns`).
  /// Histograms render as the standard cumulative `_bucket{le="..."}` series
  /// over the log2 bucket edges (non-empty buckets only, plus `+Inf`), with
  /// `_sum` and `_count`. Process stats appear as
  /// `scenerec_process_uptime_seconds` and
  /// `scenerec_process_resident_memory_bytes`.
  std::string ToPrometheus() const;
};

/// Static facade over the process-wide registry.
class Telemetry {
 public:
  /// Turns collection on/off. Off (the default) reduces every instrument to
  /// one relaxed load + predictable branch.
  static void SetEnabled(bool enabled) {
    g_enabled.store(enabled, std::memory_order_relaxed);
  }
  static bool Enabled() { return telemetry::Enabled(); }

  /// Merges every thread's slab (live and exited) into a snapshot.
  static TelemetrySnapshot Snapshot();

  /// Zeroes every metric on every thread. Call only while no instrumented
  /// code is running concurrently (between runs, in tests): updates racing
  /// with Reset may survive it.
  static void Reset();

  /// Snapshot().ToJson() convenience.
  static std::string ToJson();

  /// Snapshot().ToPrometheus() convenience.
  static std::string ToPrometheus();

  /// Writes ToJson() to `path` (truncating). IOError on failure.
  static Status WriteJsonFile(const std::string& path);
};

}  // namespace telemetry
}  // namespace scenerec

#endif  // SCENEREC_COMMON_TELEMETRY_H_
