#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/telemetry.h"

namespace scenerec {
namespace trace {

namespace internal {

thread_local constinit ThreadBuffer* t_buffer = nullptr;
thread_local constinit SpanStack t_stack{};

namespace {

/// Span loss is itself observable: drop-oldest overwrites bump this, so a
/// truncated timeline announces itself in the telemetry dump.
const telemetry::Counter t_dropped_spans =
    telemetry::RegisterCounter("trace/dropped_spans");

/// Active floors, mirrored out of TraceOptions so Arm() reads them without
/// the registry mutex. Relaxed: floors are advisory, like g_enabled.
std::atomic<uint64_t> g_op_floor_ns{TraceOptions{}.op_floor_ns};
std::atomic<uint64_t> g_kernel_floor_ns{TraceOptions{}.kernel_floor_ns};

/// All thread buffers ever created, behind one mutex. Buffers are owned by
/// the registry (not the thread) so records survive thread exit for export.
/// A Meyers singleton, leaked so it outlives every traced thread.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  TraceOptions options;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Epoch())
          .count());
}

uint64_t FloorNs(Floor floor) {
  switch (floor) {
    case Floor::kNone:
      return 0;
    case Floor::kOp:
      return g_op_floor_ns.load(std::memory_order_relaxed);
    case Floor::kKernel:
      return g_kernel_floor_ns.load(std::memory_order_relaxed);
  }
  return 0;
}

ThreadBuffer& CreateBuffer() {
  if (t_buffer == nullptr) {
    Registry& reg = GetRegistry();
    std::lock_guard<std::mutex> lock(reg.mu);
    const uint32_t index = static_cast<uint32_t>(reg.buffers.size());
    reg.buffers.push_back(std::make_unique<ThreadBuffer>(
        std::max<size_t>(1, reg.options.buffer_capacity), index));
    t_buffer = reg.buffers.back().get();
  }
  return *t_buffer;
}

void Record(const char* name, const char* cat, uint64_t start_ns,
            uint64_t dur_ns, uint64_t id, uint64_t parent_id,
            const char* args) {
  ThreadBuffer& buf = Buffer();
  const size_t capacity = buf.records.size();
  if (buf.next >= capacity) {
    // Ring full: this write overwrites the oldest retained span.
    ++buf.dropped;
    t_dropped_spans.Add(1);
  }
  SpanRecord& rec = buf.records[buf.next % capacity];
  rec.name = name;
  rec.cat = cat;
  rec.start_ns = start_ns;
  rec.dur_ns = dur_ns;
  rec.id = id;
  rec.parent_id = parent_id;
  std::snprintf(rec.args, sizeof(rec.args), "%s", args);
  ++buf.next;
}

}  // namespace internal

SpanContext CurrentContext() {
  const internal::SpanStack& stack = internal::t_stack;
  if (stack.depth > 0) {
    const int top = std::min(stack.depth, internal::kMaxSpanDepth) - 1;
    return SpanContext{stack.ids[top]};
  }
  return SpanContext{stack.inherited_parent};
}

SpanScope::SpanScope(const char* name, const char* cat, Floor floor,
                     const char* fmt, ...) {
  if (!Enabled()) {
    armed_ = false;
    return;
  }
  Arm(name, cat, floor);
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(args_, sizeof(args_), fmt, ap);
  va_end(ap);
}

void SpanScope::Arm(const char* name, const char* cat, Floor floor) {
  armed_ = true;
  name_ = name;
  cat_ = cat;
  floor_ns_ = internal::FloorNs(floor);
  args_[0] = '\0';

  internal::ThreadBuffer& buf = internal::Buffer();
  // (thread_index + 1) << 40 | per-thread sequence: unique process-wide
  // without any contended atomic on the hot path, and never 0.
  id_ = (static_cast<uint64_t>(buf.thread_index + 1) << 40) | ++buf.next_seq;

  internal::SpanStack& stack = internal::t_stack;
  if (stack.depth > 0) {
    parent_id_ = stack.ids[std::min(stack.depth, internal::kMaxSpanDepth) - 1];
  } else {
    parent_id_ = stack.inherited_parent;
  }
  if (stack.depth < internal::kMaxSpanDepth) stack.ids[stack.depth] = id_;
  ++stack.depth;  // counts past kMaxSpanDepth; deeper spans parent to the
                  // deepest tracked ancestor

  start_ns_ = internal::NowNs();
}

void SpanScope::Finish() {
  const uint64_t dur_ns = internal::NowNs() - start_ns_;
  internal::SpanStack& stack = internal::t_stack;
  if (stack.depth > 0) --stack.depth;
  if (dur_ns >= floor_ns_) {
    internal::Record(name_, cat_, start_ns_, dur_ns, id_, parent_id_, args_);
  }
}

// -- Export ------------------------------------------------------------------

namespace {

void AppendJsonString(std::string& out, const char* s) {
  out += '"';
  for (; *s; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Microseconds with sub-ns resolution intact (Chrome's ts/dur unit).
std::string FormatMicros(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

TraceSnapshot Trace::Snapshot() {
  internal::Registry& reg = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  TraceSnapshot snapshot;
  for (const auto& buf : reg.buffers) {
    snapshot.dropped_spans += buf->dropped;
    const size_t capacity = buf->records.size();
    const size_t count =
        static_cast<size_t>(std::min<uint64_t>(buf->next, capacity));
    // Oldest retained record first: slot next % capacity once wrapped.
    const size_t first =
        buf->next <= capacity ? 0 : static_cast<size_t>(buf->next % capacity);
    for (size_t i = 0; i < count; ++i) {
      const internal::SpanRecord& rec =
          buf->records[(first + i) % capacity];
      TraceSpan span;
      span.name = rec.name;
      span.cat = rec.cat;
      span.args = rec.args;
      span.tid = buf->thread_index;
      span.start_ns = rec.start_ns;
      span.dur_ns = rec.dur_ns;
      span.id = rec.id;
      span.parent_id = rec.parent_id;
      snapshot.spans.push_back(std::move(span));
    }
  }
  // (tid, start, longest-first, open-order) puts every parent before its
  // children, which the self-time sweep depends on.
  std::sort(snapshot.spans.begin(), snapshot.spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.id < b.id;
            });
  return snapshot;
}

std::string TraceSnapshot::ToChromeJson() const {
  std::string out = "{\"traceEvents\": [\n";
  out +=
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, "
      "\"args\": {\"name\": \"scenerec\"}}";

  uint32_t last_tid = ~0u;
  for (const TraceSpan& span : spans) {
    if (span.tid != last_tid) {
      last_tid = span.tid;
      out += ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
             "\"tid\": " +
             std::to_string(span.tid) + ", \"args\": {\"name\": \"t" +
             std::to_string(span.tid) + "\"}}";
    }
    out += ",\n  {\"name\": ";
    AppendJsonString(out, span.name.c_str());
    out += ", \"cat\": ";
    AppendJsonString(out, span.cat.empty() ? "span" : span.cat.c_str());
    out += ", \"ph\": \"X\", \"pid\": 1, \"tid\": " + std::to_string(span.tid);
    out += ", \"ts\": " + FormatMicros(span.start_ns);
    out += ", \"dur\": " + FormatMicros(span.dur_ns);
    out += ", \"args\": {\"id\": " + std::to_string(span.id);
    out += ", \"parent_id\": " + std::to_string(span.parent_id);
    if (!span.args.empty()) {
      out += ", \"detail\": ";
      AppendJsonString(out, span.args.c_str());
    }
    out += "}}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {\"dropped_spans\": " +
         std::to_string(dropped_spans) + "}}\n";
  return out;
}

std::string TraceSnapshot::SelfTimeSummary(size_t top_n) const {
  struct Agg {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    int64_t self_ns = 0;  // signed: children of floor-dropped parents can
                          // transiently drive a partial window negative
  };
  std::map<std::pair<std::string, std::string>, Agg> by_name;

  // One sweep per thread: spans arrive sorted parent-before-child, so a
  // stack of (end, agg*) attributes each span's duration as child time of
  // its innermost enclosing same-thread span.
  struct Open {
    uint64_t end_ns;
    Agg* agg;
  };
  std::vector<Open> open;
  uint32_t current_tid = ~0u;
  for (const TraceSpan& span : spans) {
    if (span.tid != current_tid) {
      current_tid = span.tid;
      open.clear();
    }
    while (!open.empty() && open.back().end_ns <= span.start_ns) {
      open.pop_back();
    }
    Agg& agg = by_name[{span.name, span.cat}];
    agg.count += 1;
    agg.total_ns += span.dur_ns;
    agg.self_ns += static_cast<int64_t>(span.dur_ns);
    if (!open.empty()) {
      open.back().agg->self_ns -= static_cast<int64_t>(span.dur_ns);
    }
    open.push_back({span.start_ns + span.dur_ns, &agg});
  }

  struct Row {
    const std::string* name;
    const std::string* cat;
    Agg agg;
  };
  std::vector<Row> rows;
  int64_t total_self = 0;
  for (const auto& [key, agg] : by_name) {
    rows.push_back({&key.first, &key.second, agg});
    total_self += std::max<int64_t>(0, agg.self_ns);
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.agg.self_ns > b.agg.self_ns;
  });
  if (rows.size() > top_n) rows.resize(top_n);

  size_t name_width = 4;
  for (const Row& row : rows) {
    name_width = std::max(name_width, row.name->size());
  }

  std::string out = "trace self-time (top " + std::to_string(rows.size()) +
                    " spans by exclusive time)\n";
  char line[256];
  std::snprintf(line, sizeof(line), "  %-*s  %-8s %10s %12s %12s %7s\n",
                static_cast<int>(name_width), "span", "cat", "count",
                "total_ms", "self_ms", "self%");
  out += line;
  for (const Row& row : rows) {
    const double self_ms =
        static_cast<double>(row.agg.self_ns) / 1e6;
    const double total_ms = static_cast<double>(row.agg.total_ns) / 1e6;
    const double pct =
        total_self > 0
            ? 100.0 * static_cast<double>(std::max<int64_t>(0, row.agg.self_ns)) /
                  static_cast<double>(total_self)
            : 0.0;
    std::snprintf(line, sizeof(line),
                  "  %-*s  %-8s %10llu %12.3f %12.3f %6.1f%%\n",
                  static_cast<int>(name_width), row.name->c_str(),
                  row.cat->empty() ? "span" : row.cat->c_str(),
                  static_cast<unsigned long long>(row.agg.count), total_ms,
                  self_ms, pct);
    out += line;
  }
  if (dropped_spans > 0) {
    out += "  (" + std::to_string(dropped_spans) +
           " spans dropped to ring overflow; totals cover the retained "
           "window)\n";
  }
  return out;
}

void Trace::Start(const TraceOptions& options) {
  internal::Registry& reg = internal::GetRegistry();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.options = options;
  }
  internal::g_op_floor_ns.store(options.op_floor_ns,
                                std::memory_order_relaxed);
  internal::g_kernel_floor_ns.store(options.kernel_floor_ns,
                                    std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void Trace::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void Trace::Reset() {
  internal::Registry& reg = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const auto& buf : reg.buffers) {
    buf->next = 0;
    buf->dropped = 0;
    // next_seq is intentionally not reset: span ids stay process-unique.
  }
}

std::string Trace::ToChromeJson() { return Snapshot().ToChromeJson(); }

Status Trace::WriteChromeTrace(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open trace file: " + path);
  out << ToChromeJson();
  out.flush();
  if (!out) return Status::IOError("failed writing trace file: " + path);
  return Status::OK();
}

std::string Trace::SelfTimeSummary(size_t top_n) {
  return Snapshot().SelfTimeSummary(top_n);
}

uint64_t Trace::DroppedSpans() {
  internal::Registry& reg = internal::GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  uint64_t dropped = 0;
  for (const auto& buf : reg.buffers) dropped += buf->dropped;
  return dropped;
}

}  // namespace trace
}  // namespace scenerec
