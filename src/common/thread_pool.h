#ifndef SCENEREC_COMMON_THREAD_POOL_H_
#define SCENEREC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace scenerec {

/// Fixed-size worker pool for data-parallel loops. The unit of work is a
/// half-open index range handed to ParallelFor; tasks are distributed by a
/// shared atomic cursor, so uneven chunks load-balance automatically.
///
/// Concurrency contract:
///   - ParallelFor blocks until every chunk has run and rethrows the first
///     exception thrown by any chunk (remaining chunks still complete, so
///     the loop never leaves work half-dispatched).
///   - The calling thread participates in the loop, so a pool with
///     num_threads == N runs at most N bodies concurrently (N-1 workers
///     plus the caller).
///   - Reentrancy: a ParallelFor issued from inside any pool's worker runs
///     inline on that worker. This makes nested parallelism (e.g. a
///     parallel grid search whose cells train with a parallel trainer)
///     deadlock-free and non-oversubscribing by construction.
///
/// The pool itself is thread-safe: concurrent ParallelFor calls from
/// different threads share the workers.
class ThreadPool {
 public:
  /// Spawns num_threads - 1 workers (the caller is the last lane).
  /// num_threads must be >= 1; 1 means "no workers, run everything inline".
  explicit ThreadPool(int64_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int64_t num_threads() const { return num_threads_; }

  /// Runs body(begin, end) over a partition of [0, n) with chunks of at
  /// least `grain` indices. Blocks until done; rethrows the first chunk
  /// exception. body must be safe to invoke concurrently from multiple
  /// threads for disjoint ranges.
  void ParallelFor(int64_t n, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

  /// True when the calling thread is a worker of ANY ThreadPool. Used to
  /// run nested parallel sections inline instead of fanning out again.
  static bool InWorkerThread();

  /// std::thread::hardware_concurrency with a floor of 1.
  static int64_t HardwareConcurrency();

 private:
  struct LoopState;

  void WorkerMain();
  /// Grabs chunks from `state` until the loop is exhausted.
  static void RunChunks(LoopState& state);

  int64_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  /// Loops waiting for worker participation (usually zero or one).
  std::vector<std::shared_ptr<LoopState>> pending_;
  bool shutdown_ = false;
};

/// Resolves a --threads style setting: 0 means "use every hardware thread",
/// any positive value is taken literally. Negative values are invalid and
/// must be rejected by config validation before reaching here.
int64_t ResolveThreadCount(int64_t requested);

/// Process-wide default pool, created on first use with the thread count
/// last passed to SetDefaultThreadPoolThreads (or hardware concurrency if
/// never configured). Binaries wire their --threads flag through
/// SetDefaultThreadPoolThreads at startup, before any parallel work runs.
ThreadPool* DefaultThreadPool();

/// Configures the default pool size (0 = hardware concurrency). Must be
/// called before the first DefaultThreadPool() use; later calls rebuild the
/// pool, which is only safe while no parallel work is in flight.
void SetDefaultThreadPoolThreads(int64_t num_threads);

}  // namespace scenerec

#endif  // SCENEREC_COMMON_THREAD_POOL_H_
