#ifndef SCENEREC_COMMON_MALLOC_TUNING_H_
#define SCENEREC_COMMON_MALLOC_TUNING_H_

namespace scenerec {

/// Tunes glibc malloc for the allocation pattern of dynamic-graph training:
/// every batch allocates and frees thousands of small-to-medium buffers, and
/// with default settings glibc returns that memory to the kernel each time
/// (madvise/munmap), making the process syscall-bound (observed 3x slowdown).
/// Raises the trim/mmap thresholds so freed blocks are reused instead.
///
/// Call once at the top of main() in training binaries. Safe to call on
/// non-glibc platforms (no-op). Idempotent.
void TuneAllocatorForTraining();

}  // namespace scenerec

#endif  // SCENEREC_COMMON_MALLOC_TUNING_H_
