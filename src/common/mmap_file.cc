#include "common/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace scenerec {

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat " + path + ": " + std::strerror(err));
  }
  MappedFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  file.path_ = path;
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("cannot mmap " + path + ": " +
                             std::strerror(err));
    }
    file.data_ = static_cast<const char*>(addr);
  }
  // The mapping holds its own reference to the file; the descriptor is no
  // longer needed (and keeping it would leak fds across long-lived models).
  ::close(fd);
  return file;
}

MappedFile::~MappedFile() { Unmap(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), path_(std::move(other.path_)) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  Unmap();
  data_ = other.data_;
  size_ = other.size_;
  path_ = std::move(other.path_);
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

void MappedFile::Unmap() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace scenerec
