#ifndef SCENEREC_COMMON_HISTOGRAM_H_
#define SCENEREC_COMMON_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace scenerec {

/// Log-scale (power-of-two) histogram over non-negative 64-bit values —
/// typically nanosecond latencies or byte sizes. Bucket `b` counts values
/// whose bit width is `b`: bucket 0 holds exactly 0, bucket b >= 1 holds the
/// half-open range [2^(b-1), 2^b). 65 buckets cover the full uint64 domain,
/// so Record never clips and two histograms merge bucket-by-bucket without
/// any range negotiation.
///
/// This is the plain, single-owner representation used for snapshots and
/// retired-thread accumulation; the telemetry registry's per-thread slabs
/// keep the same bucket layout in relaxed atomics (see common/telemetry.h).
inline constexpr int kHistogramBuckets = 65;

/// Bucket index of a value: std::bit_width, i.e. 0 for 0, floor(log2(v))+1
/// otherwise.
inline int HistogramBucket(uint64_t value) { return std::bit_width(value); }

/// Inclusive lower bound of bucket `b` (0 for buckets 0 and 1).
inline uint64_t HistogramBucketLow(int b) {
  return b <= 1 ? 0 : uint64_t{1} << (b - 1);
}

/// Inclusive upper bound of bucket `b`.
inline uint64_t HistogramBucketHigh(int b) {
  if (b == 0) return 0;
  if (b >= 64) return ~uint64_t{0};
  return (uint64_t{1} << b) - 1;
}

struct HistogramData {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  void Record(uint64_t value) {
    ++count;
    sum += value;
    if (value > max) max = value;
    ++buckets[HistogramBucket(value)];
  }

  void Merge(const HistogramData& other) {
    count += other.count;
    sum += other.sum;
    if (other.max > max) max = other.max;
    for (int b = 0; b < kHistogramBuckets; ++b) buckets[b] += other.buckets[b];
  }

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Approximate quantile from the bucket boundaries: the midpoint of the
  /// bucket containing the q-th sample (clamped to the observed max, so
  /// p100 of a single sample is exact). q must be in [0, 1].
  double Percentile(double q) const {
    if (count == 0) return 0.0;
    uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count));
    if (target >= count) target = count - 1;
    uint64_t seen = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      seen += buckets[b];
      if (seen > target) {
        const double lo = static_cast<double>(HistogramBucketLow(b));
        double hi = static_cast<double>(HistogramBucketHigh(b));
        if (hi > static_cast<double>(max)) hi = static_cast<double>(max);
        return (lo + hi) / 2.0;
      }
    }
    return static_cast<double>(max);
  }
};

/// Per-interval delta between two cumulative views of the same histogram,
/// `cur` scraped after `prev` — the building block of the rolling-window
/// view (common/windowed_histogram.h). count/sum/buckets subtract exactly
/// (they are monotone); the interval's true max is not recoverable from
/// cumulative state, so the delta carries the tightest available bound: the
/// high edge of its highest non-empty bucket, clamped to the cumulative
/// max. If `cur` is not ahead of `prev` (the registry was Reset between
/// scrapes), the delta restarts from `cur` alone.
inline HistogramData HistogramDelta(const HistogramData& cur,
                                    const HistogramData& prev) {
  if (cur.count < prev.count) return cur;
  HistogramData d;
  d.count = cur.count - prev.count;
  d.sum = cur.sum - prev.sum;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    d.buckets[b] = cur.buckets[b] - prev.buckets[b];
  }
  for (int b = kHistogramBuckets - 1; b >= 0; --b) {
    if (d.buckets[b] > 0) {
      d.max = std::min(HistogramBucketHigh(b), cur.max);
      break;
    }
  }
  return d;
}

}  // namespace scenerec

#endif  // SCENEREC_COMMON_HISTOGRAM_H_
