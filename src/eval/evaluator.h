#ifndef SCENEREC_EVAL_EVALUATOR_H_
#define SCENEREC_EVAL_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "data/split.h"
#include "graph/bipartite_graph.h"
#include "eval/metrics.h"

namespace scenerec {

/// Scores one (user, item) pair; higher means more likely to be clicked.
using ScoreFn = std::function<float(int64_t user, int64_t item)>;

/// Scores one user against a block of candidate items, writing
/// out[r] = score(user, items[r]). The contract (docs/serving.md): out and
/// items have the same length, and every out[r] is bitwise equal to the
/// per-pair ScoreFn result for (user, items[r]) — block scoring is a
/// throughput optimization, never a numerics change.
using BlockScoreFn = std::function<void(
    int64_t user, std::span<const int64_t> items, std::span<float> out)>;

/// Wraps a per-pair scorer as a block scorer (the compatibility fallback
/// for models and tests that only provide ScoreFn).
BlockScoreFn BlockScorerFromPairs(ScoreFn score);

/// Candidates per ScoreBlock dispatch on the full-ranking and Top-N paths.
/// Bounds per-instance scratch (ids + scores) to a few KB so blocks stay
/// cache-resident; rank counting is order-independent, so chunking cannot
/// change metrics.
inline constexpr int64_t kScoreBlockSize = 1024;

/// Runs the paper's ranking protocol (Section 5.3): for every evaluation
/// instance the positive is ranked against its sampled negatives, and HR@K /
/// NDCG@K / MRR are averaged over instances.
///
/// When `pool` is non-null, instances are scored in parallel; `score` must
/// then be safe to call concurrently (see
/// Recommender::PrepareParallelScoring). Per-instance results are reduced
/// in instance order, so the metrics are bitwise identical to a serial run.
///
/// Each instance is scored with ONE block dispatch ([positive, negatives...]),
/// so batching models pay per-candidate cost, not per-call cost.
RankingMetrics EvaluateRanking(const BlockScoreFn& score,
                               const std::vector<EvalInstance>& instances,
                               int64_t k, ThreadPool* pool = nullptr);

/// Per-pair adapter of the above; identical metrics, block size 1 semantics.
RankingMetrics EvaluateRanking(const ScoreFn& score,
                               const std::vector<EvalInstance>& instances,
                               int64_t k, ThreadPool* pool = nullptr);

/// Stricter all-item protocol (as used by the NGCF/KGAT papers): each
/// instance's positive is ranked against the ENTIRE item vocabulary except
/// the user's training interactions (the instance's sampled negative list is
/// ignored). Far more expensive — O(num_items) scores per instance — but
/// free of negative-sampling variance. Same `pool` contract as
/// EvaluateRanking.
///
/// Masking is a candidate-list build step: the unmasked items are collected
/// once per instance and scored in kScoreBlockSize chunks, which turns the
/// protocol into row-batched GEMMs for models with ScoreBlock support.
RankingMetrics EvaluateFullRanking(const BlockScoreFn& score,
                                   const UserItemGraph& train_graph,
                                   const std::vector<EvalInstance>& instances,
                                   int64_t k, ThreadPool* pool = nullptr);

/// Per-pair adapter of the above; identical metrics.
RankingMetrics EvaluateFullRanking(const ScoreFn& score,
                                   const UserItemGraph& train_graph,
                                   const std::vector<EvalInstance>& instances,
                                   int64_t k, ThreadPool* pool = nullptr);

}  // namespace scenerec

#endif  // SCENEREC_EVAL_EVALUATOR_H_
