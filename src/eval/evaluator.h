#ifndef SCENEREC_EVAL_EVALUATOR_H_
#define SCENEREC_EVAL_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/thread_pool.h"
#include "data/split.h"
#include "graph/bipartite_graph.h"
#include "eval/metrics.h"

namespace scenerec {

/// Scores one (user, item) pair; higher means more likely to be clicked.
using ScoreFn = std::function<float(int64_t user, int64_t item)>;

/// Runs the paper's ranking protocol (Section 5.3): for every evaluation
/// instance the positive is ranked against its sampled negatives, and HR@K /
/// NDCG@K / MRR are averaged over instances.
///
/// When `pool` is non-null, instances are scored in parallel; `score` must
/// then be safe to call concurrently (see
/// Recommender::PrepareParallelScoring). Per-instance results are reduced
/// in instance order, so the metrics are bitwise identical to a serial run.
RankingMetrics EvaluateRanking(const ScoreFn& score,
                               const std::vector<EvalInstance>& instances,
                               int64_t k, ThreadPool* pool = nullptr);

/// Stricter all-item protocol (as used by the NGCF/KGAT papers): each
/// instance's positive is ranked against the ENTIRE item vocabulary except
/// the user's training interactions (the instance's sampled negative list is
/// ignored). Far more expensive — O(num_items) scores per instance — but
/// free of negative-sampling variance. Same `pool` contract as
/// EvaluateRanking.
RankingMetrics EvaluateFullRanking(const ScoreFn& score,
                                   const UserItemGraph& train_graph,
                                   const std::vector<EvalInstance>& instances,
                                   int64_t k, ThreadPool* pool = nullptr);

}  // namespace scenerec

#endif  // SCENEREC_EVAL_EVALUATOR_H_
