#include "eval/evaluator.h"

#include "common/check.h"

namespace scenerec {

RankingMetrics EvaluateRanking(const ScoreFn& score,
                               const std::vector<EvalInstance>& instances,
                               int64_t k) {
  SCENEREC_CHECK_GT(k, 0);
  RankingMetrics metrics;
  metrics.num_instances = static_cast<int64_t>(instances.size());
  if (instances.empty()) return metrics;

  double hr_sum = 0.0;
  double ndcg_sum = 0.0;
  double mrr_sum = 0.0;
  std::vector<float> negative_scores;
  for (const EvalInstance& instance : instances) {
    const float positive_score = score(instance.user, instance.positive_item);
    negative_scores.clear();
    negative_scores.reserve(instance.negative_items.size());
    for (int64_t item : instance.negative_items) {
      negative_scores.push_back(score(instance.user, item));
    }
    const int64_t rank = RankOfPositive(positive_score, negative_scores);
    hr_sum += HitRatioAtK(rank, k);
    ndcg_sum += NdcgAtK(rank, k);
    mrr_sum += ReciprocalRank(rank);
  }
  metrics.hr = hr_sum / static_cast<double>(instances.size());
  metrics.ndcg = ndcg_sum / static_cast<double>(instances.size());
  metrics.mrr = mrr_sum / static_cast<double>(instances.size());
  return metrics;
}

RankingMetrics EvaluateFullRanking(const ScoreFn& score,
                                   const UserItemGraph& train_graph,
                                   const std::vector<EvalInstance>& instances,
                                   int64_t k) {
  SCENEREC_CHECK_GT(k, 0);
  RankingMetrics metrics;
  metrics.num_instances = static_cast<int64_t>(instances.size());
  if (instances.empty()) return metrics;

  double hr_sum = 0.0;
  double ndcg_sum = 0.0;
  double mrr_sum = 0.0;
  const int64_t num_items = train_graph.num_items();
  for (const EvalInstance& instance : instances) {
    const float positive_score = score(instance.user, instance.positive_item);
    // Count candidates ranked strictly above the positive, skipping items
    // the user already interacted with during training (standard masking).
    int64_t rank = 0;
    for (int64_t item = 0; item < num_items; ++item) {
      if (item == instance.positive_item) continue;
      if (train_graph.HasInteraction(instance.user, item)) continue;
      if (score(instance.user, item) > positive_score) ++rank;
    }
    hr_sum += HitRatioAtK(rank, k);
    ndcg_sum += NdcgAtK(rank, k);
    mrr_sum += ReciprocalRank(rank);
  }
  metrics.hr = hr_sum / static_cast<double>(instances.size());
  metrics.ndcg = ndcg_sum / static_cast<double>(instances.size());
  metrics.mrr = mrr_sum / static_cast<double>(instances.size());
  return metrics;
}

}  // namespace scenerec
