#include "eval/evaluator.h"

#include <array>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace scenerec {

namespace {

// Evaluator telemetry (docs/observability.md): candidate throughput plus a
// detector for diverged models — any non-finite score marks the whole
// instance NaN, which poisons the aggregate and trips the trainer's
// finite-validation check instead of silently ranking as perfect.
// eval/blocks and eval/block_candidates track the block-scoring fast path:
// their ratio is the realized batch size (docs/serving.md).
const telemetry::Counter t_scored =
    telemetry::RegisterCounter("eval/scored_candidates");
const telemetry::Counter t_instances =
    telemetry::RegisterCounter("eval/instances");
const telemetry::Counter t_nonfinite =
    telemetry::RegisterCounter("eval/nonfinite_scores");
const telemetry::Counter t_blocks = telemetry::RegisterCounter("eval/blocks");
const telemetry::Counter t_block_candidates =
    telemetry::RegisterCounter("eval/block_candidates");

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Per-instance (hr, ndcg, mrr) contributions. Parallel and serial runs
/// both fill an index-addressed table and reduce it in index order, which
/// makes the parallel metrics bitwise identical to the serial ones (the
/// summation order never depends on thread scheduling).
RankingMetrics ReduceInOrder(const std::vector<std::array<double, 3>>& per) {
  RankingMetrics metrics;
  metrics.num_instances = static_cast<int64_t>(per.size());
  double hr_sum = 0.0;
  double ndcg_sum = 0.0;
  double mrr_sum = 0.0;
  for (const auto& m : per) {
    hr_sum += m[0];
    ndcg_sum += m[1];
    mrr_sum += m[2];
  }
  metrics.hr = hr_sum / static_cast<double>(per.size());
  metrics.ndcg = ndcg_sum / static_cast<double>(per.size());
  metrics.mrr = mrr_sum / static_cast<double>(per.size());
  return metrics;
}

/// Runs body(begin, end) over [0, n), chunked with `grain` on the pool when
/// one is supplied (one dispatch per chunk, not per instance — at grain=1
/// the pool's per-chunk bookkeeping dominated small-candidate protocols).
/// The BlockScoreFn must be thread-safe in the parallel case; callers gate
/// on Recommender::PrepareParallelScoring.
void ForEachInstance(ThreadPool* pool, int64_t n, int64_t grain,
                     const std::function<void(int64_t, int64_t)>& body) {
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(n, grain, body);
  } else {
    body(0, n);
  }
}

/// One block-scoring dispatch plus its bookkeeping: scores `items` for
/// `user` into `out` and returns true iff every score came back finite.
bool ScoreBlockChecked(const BlockScoreFn& score, int64_t user,
                       std::span<const int64_t> items, std::span<float> out) {
  SCENEREC_CHECK_EQ(items.size(), out.size());
  if (items.empty()) return true;
  SCENEREC_TRACE_SPAN_F("eval/score_block", "eval", trace::Floor::kOp,
                        "user=%lld candidates=%zu",
                        static_cast<long long>(user), items.size());
  score(user, items, out);
  t_blocks.Add(1);
  t_block_candidates.Add(static_cast<uint64_t>(items.size()));
  bool finite = true;
  for (float s : out) finite = finite && std::isfinite(s);
  return finite;
}

}  // namespace

BlockScoreFn BlockScorerFromPairs(ScoreFn score) {
  SCENEREC_CHECK(score != nullptr);
  return [score = std::move(score)](int64_t user,
                                    std::span<const int64_t> items,
                                    std::span<float> out) {
    SCENEREC_CHECK_EQ(items.size(), out.size());
    for (size_t r = 0; r < items.size(); ++r) out[r] = score(user, items[r]);
  };
}

RankingMetrics EvaluateRanking(const BlockScoreFn& score,
                               const std::vector<EvalInstance>& instances,
                               int64_t k, ThreadPool* pool) {
  SCENEREC_CHECK_GT(k, 0);
  if (instances.empty()) {
    RankingMetrics metrics;
    metrics.num_instances = 0;
    return metrics;
  }

  SCENEREC_TRACE_SPAN_F("eval/ranking", "eval", trace::Floor::kNone,
                        "instances=%zu k=%lld", instances.size(),
                        static_cast<long long>(k));
  std::vector<std::array<double, 3>> per(instances.size());
  // Sampled candidate lists are small (~100), so one instance is little
  // work: chunk several per pool dispatch.
  ForEachInstance(
      pool, static_cast<int64_t>(instances.size()), /*grain=*/8,
      [&](int64_t begin, int64_t end) {
        std::vector<int64_t> candidates;
        std::vector<float> scores;
        for (int64_t idx = begin; idx < end; ++idx) {
          const EvalInstance& instance = instances[static_cast<size_t>(idx)];
          // One block per instance: positive first, then the sampled
          // negatives in instance order.
          candidates.assign(1, instance.positive_item);
          candidates.insert(candidates.end(),
                            instance.negative_items.begin(),
                            instance.negative_items.end());
          scores.resize(candidates.size());
          const bool finite =
              ScoreBlockChecked(score, instance.user, candidates, scores);
          t_instances.Add(1);
          t_scored.Add(static_cast<uint64_t>(candidates.size()));
          if (!finite) {
            t_nonfinite.Add(1);
            per[static_cast<size_t>(idx)] = {kNaN, kNaN, kNaN};
            continue;
          }
          // Same counting as RankOfPositive, off the shared score buffer.
          const float positive_score = scores[0];
          PositiveRank rank;
          for (size_t r = 1; r < scores.size(); ++r) {
            if (scores[r] > positive_score) {
              ++rank.num_above;
            } else if (scores[r] == positive_score) {
              ++rank.num_tied;
            }
          }
          per[static_cast<size_t>(idx)] = {HitRatioAtK(rank, k),
                                           NdcgAtK(rank, k),
                                           ReciprocalRank(rank)};
        }
      });
  return ReduceInOrder(per);
}

RankingMetrics EvaluateRanking(const ScoreFn& score,
                               const std::vector<EvalInstance>& instances,
                               int64_t k, ThreadPool* pool) {
  return EvaluateRanking(BlockScorerFromPairs(score), instances, k, pool);
}

RankingMetrics EvaluateFullRanking(const BlockScoreFn& score,
                                   const UserItemGraph& train_graph,
                                   const std::vector<EvalInstance>& instances,
                                   int64_t k, ThreadPool* pool) {
  SCENEREC_CHECK_GT(k, 0);
  if (instances.empty()) {
    RankingMetrics metrics;
    metrics.num_instances = 0;
    return metrics;
  }

  SCENEREC_TRACE_SPAN_F("eval/full_ranking", "eval", trace::Floor::kNone,
                        "instances=%zu k=%lld", instances.size(),
                        static_cast<long long>(k));
  const int64_t num_items = train_graph.num_items();
  std::vector<std::array<double, 3>> per(instances.size());
  // Each instance scores the whole catalog — plenty of work per index.
  ForEachInstance(
      pool, static_cast<int64_t>(instances.size()), /*grain=*/1,
      [&](int64_t begin, int64_t end) {
        std::vector<int64_t> candidates;
        std::vector<float> scores;
        for (int64_t idx = begin; idx < end; ++idx) {
          const EvalInstance& instance = instances[static_cast<size_t>(idx)];
          // Masking as a candidate-list build step: the positive leads,
          // followed by every item the user has NOT interacted with during
          // training (standard masking; the sampled negatives are ignored).
          candidates.clear();
          candidates.reserve(static_cast<size_t>(num_items));
          candidates.push_back(instance.positive_item);
          for (int64_t item = 0; item < num_items; ++item) {
            if (item == instance.positive_item) continue;
            if (train_graph.HasInteraction(instance.user, item)) continue;
            candidates.push_back(item);
          }
          scores.resize(candidates.size());
          // Chunked block scoring; above/tied counting is order-independent
          // integer arithmetic, so the chunk size cannot change the rank.
          bool finite = true;
          for (size_t offset = 0; offset < candidates.size();
               offset += static_cast<size_t>(kScoreBlockSize)) {
            const size_t len =
                std::min(static_cast<size_t>(kScoreBlockSize),
                         candidates.size() - offset);
            finite = ScoreBlockChecked(
                         score, instance.user,
                         std::span<const int64_t>(candidates).subspan(offset,
                                                                      len),
                         std::span<float>(scores).subspan(offset, len)) &&
                     finite;
          }
          t_instances.Add(1);
          t_scored.Add(static_cast<uint64_t>(candidates.size()));
          if (!finite) {
            t_nonfinite.Add(1);
            per[static_cast<size_t>(idx)] = {kNaN, kNaN, kNaN};
            continue;
          }
          const float positive_score = scores[0];
          PositiveRank rank;
          for (size_t r = 1; r < scores.size(); ++r) {
            if (scores[r] > positive_score) {
              ++rank.num_above;
            } else if (scores[r] == positive_score) {
              ++rank.num_tied;
            }
          }
          per[static_cast<size_t>(idx)] = {HitRatioAtK(rank, k),
                                           NdcgAtK(rank, k),
                                           ReciprocalRank(rank)};
        }
      });
  return ReduceInOrder(per);
}

RankingMetrics EvaluateFullRanking(const ScoreFn& score,
                                   const UserItemGraph& train_graph,
                                   const std::vector<EvalInstance>& instances,
                                   int64_t k, ThreadPool* pool) {
  return EvaluateFullRanking(BlockScorerFromPairs(score), train_graph,
                             instances, k, pool);
}

}  // namespace scenerec
