#include "eval/evaluator.h"

#include <array>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace scenerec {

namespace {

// Evaluator telemetry (docs/observability.md): candidate throughput plus a
// detector for diverged models — any non-finite score marks the whole
// instance NaN, which poisons the aggregate and trips the trainer's
// finite-validation check instead of silently ranking as perfect.
const telemetry::Counter t_scored =
    telemetry::RegisterCounter("eval/scored_candidates");
const telemetry::Counter t_instances =
    telemetry::RegisterCounter("eval/instances");
const telemetry::Counter t_nonfinite =
    telemetry::RegisterCounter("eval/nonfinite_scores");

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Per-instance (hr, ndcg, mrr) contributions. Parallel and serial runs
/// both fill an index-addressed table and reduce it in index order, which
/// makes the parallel metrics bitwise identical to the serial ones (the
/// summation order never depends on thread scheduling).
RankingMetrics ReduceInOrder(const std::vector<std::array<double, 3>>& per) {
  RankingMetrics metrics;
  metrics.num_instances = static_cast<int64_t>(per.size());
  double hr_sum = 0.0;
  double ndcg_sum = 0.0;
  double mrr_sum = 0.0;
  for (const auto& m : per) {
    hr_sum += m[0];
    ndcg_sum += m[1];
    mrr_sum += m[2];
  }
  metrics.hr = hr_sum / static_cast<double>(per.size());
  metrics.ndcg = ndcg_sum / static_cast<double>(per.size());
  metrics.mrr = mrr_sum / static_cast<double>(per.size());
  return metrics;
}

/// Runs body(i) for every i in [0, n), on the pool when one is supplied.
/// The ScoreFn must be thread-safe in the parallel case; callers gate on
/// Recommender::PrepareParallelScoring.
void ForEachInstance(ThreadPool* pool, int64_t n,
                     const std::function<void(int64_t)>& body) {
  if (pool != nullptr && pool->num_threads() > 1) {
    pool->ParallelFor(n, /*grain=*/1, [&body](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) body(i);
    });
  } else {
    for (int64_t i = 0; i < n; ++i) body(i);
  }
}

}  // namespace

RankingMetrics EvaluateRanking(const ScoreFn& score,
                               const std::vector<EvalInstance>& instances,
                               int64_t k, ThreadPool* pool) {
  SCENEREC_CHECK_GT(k, 0);
  if (instances.empty()) {
    RankingMetrics metrics;
    metrics.num_instances = 0;
    return metrics;
  }

  SCENEREC_TRACE_SPAN_F("eval/ranking", "eval", trace::Floor::kNone,
                        "instances=%zu k=%lld", instances.size(),
                        static_cast<long long>(k));
  std::vector<std::array<double, 3>> per(instances.size());
  ForEachInstance(
      pool, static_cast<int64_t>(instances.size()), [&](int64_t idx) {
        const EvalInstance& instance = instances[static_cast<size_t>(idx)];
        const float positive_score =
            score(instance.user, instance.positive_item);
        bool finite = std::isfinite(positive_score);
        std::vector<float> negative_scores;
        negative_scores.reserve(instance.negative_items.size());
        for (int64_t item : instance.negative_items) {
          const float s = score(instance.user, item);
          finite = finite && std::isfinite(s);
          negative_scores.push_back(s);
        }
        t_instances.Add(1);
        t_scored.Add(1 + static_cast<uint64_t>(negative_scores.size()));
        if (!finite) {
          t_nonfinite.Add(1);
          per[static_cast<size_t>(idx)] = {kNaN, kNaN, kNaN};
          return;
        }
        const PositiveRank rank =
            RankOfPositive(positive_score, negative_scores);
        per[static_cast<size_t>(idx)] = {HitRatioAtK(rank, k),
                                         NdcgAtK(rank, k),
                                         ReciprocalRank(rank)};
      });
  return ReduceInOrder(per);
}

RankingMetrics EvaluateFullRanking(const ScoreFn& score,
                                   const UserItemGraph& train_graph,
                                   const std::vector<EvalInstance>& instances,
                                   int64_t k, ThreadPool* pool) {
  SCENEREC_CHECK_GT(k, 0);
  if (instances.empty()) {
    RankingMetrics metrics;
    metrics.num_instances = 0;
    return metrics;
  }

  SCENEREC_TRACE_SPAN_F("eval/full_ranking", "eval", trace::Floor::kNone,
                        "instances=%zu k=%lld", instances.size(),
                        static_cast<long long>(k));
  const int64_t num_items = train_graph.num_items();
  std::vector<std::array<double, 3>> per(instances.size());
  ForEachInstance(
      pool, static_cast<int64_t>(instances.size()), [&](int64_t idx) {
        const EvalInstance& instance = instances[static_cast<size_t>(idx)];
        const float positive_score =
            score(instance.user, instance.positive_item);
        bool finite = std::isfinite(positive_score);
        // Split the candidate set into strictly-above and tied, skipping
        // items the user already interacted with during training (standard
        // masking).
        PositiveRank rank;
        uint64_t scored = 1;
        for (int64_t item = 0; item < num_items; ++item) {
          if (item == instance.positive_item) continue;
          if (train_graph.HasInteraction(instance.user, item)) continue;
          const float s = score(instance.user, item);
          ++scored;
          finite = finite && std::isfinite(s);
          if (s > positive_score) {
            ++rank.num_above;
          } else if (s == positive_score) {
            ++rank.num_tied;
          }
        }
        t_instances.Add(1);
        t_scored.Add(scored);
        if (!finite) {
          t_nonfinite.Add(1);
          per[static_cast<size_t>(idx)] = {kNaN, kNaN, kNaN};
          return;
        }
        per[static_cast<size_t>(idx)] = {HitRatioAtK(rank, k),
                                         NdcgAtK(rank, k),
                                         ReciprocalRank(rank)};
      });
  return ReduceInOrder(per);
}

}  // namespace scenerec
