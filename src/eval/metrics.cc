#include "eval/metrics.h"

#include <cmath>

namespace scenerec {

int64_t RankOfPositive(float positive_score,
                       const std::vector<float>& negative_scores) {
  int64_t rank = 0;
  for (float s : negative_scores) {
    if (s > positive_score) ++rank;
  }
  return rank;
}

double HitRatioAtK(int64_t rank, int64_t k) { return rank < k ? 1.0 : 0.0; }

double NdcgAtK(int64_t rank, int64_t k) {
  if (rank >= k) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

double ReciprocalRank(int64_t rank) {
  return 1.0 / (static_cast<double>(rank) + 1.0);
}

}  // namespace scenerec
