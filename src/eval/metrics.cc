#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

namespace scenerec {

PositiveRank RankOfPositive(float positive_score,
                            const std::vector<float>& negative_scores) {
  PositiveRank rank;
  for (float s : negative_scores) {
    if (s > positive_score) {
      ++rank.num_above;
    } else if (s == positive_score) {
      ++rank.num_tied;
    }
  }
  return rank;
}

double HitRatioAtK(int64_t rank, int64_t k) { return rank < k ? 1.0 : 0.0; }

double NdcgAtK(int64_t rank, int64_t k) {
  if (rank >= k) return 0.0;
  return 1.0 / std::log2(static_cast<double>(rank) + 2.0);
}

double ReciprocalRank(int64_t rank) {
  return 1.0 / (static_cast<double>(rank) + 1.0);
}

double HitRatioAtK(const PositiveRank& rank, int64_t k) {
  // Of the num_tied + 1 equally likely positions, those below k are hits:
  // positions num_above .. min(k, worst + 1) - 1.
  const int64_t slots = rank.num_tied + 1;
  const int64_t hits = std::clamp<int64_t>(k - rank.num_above, 0, slots);
  return static_cast<double>(hits) / static_cast<double>(slots);
}

double NdcgAtK(const PositiveRank& rank, int64_t k) {
  // E[ndcg] over the uniform tie placement. num_tied is bounded by the
  // candidate count, so the loop is cheap relative to scoring.
  double sum = 0.0;
  for (int64_t r = rank.BestRank(); r <= rank.WorstRank(); ++r) {
    sum += NdcgAtK(r, k);
  }
  return sum / static_cast<double>(rank.num_tied + 1);
}

double ReciprocalRank(const PositiveRank& rank) {
  double sum = 0.0;
  for (int64_t r = rank.BestRank(); r <= rank.WorstRank(); ++r) {
    sum += ReciprocalRank(r);
  }
  return sum / static_cast<double>(rank.num_tied + 1);
}

}  // namespace scenerec
