#include "eval/top_n.h"

#include <algorithm>

#include "common/check.h"

namespace scenerec {

std::vector<Recommendation> TopNRecommendations(
    const ScoreFn& score, const UserItemGraph& train_graph, int64_t user,
    int64_t n) {
  SCENEREC_CHECK_GT(n, 0);
  SCENEREC_CHECK(user >= 0 && user < train_graph.num_users());
  std::vector<Recommendation> candidates;
  candidates.reserve(static_cast<size_t>(train_graph.num_items()));
  for (int64_t item = 0; item < train_graph.num_items(); ++item) {
    if (train_graph.HasInteraction(user, item)) continue;
    candidates.push_back({item, score(user, item)});
  }
  const size_t keep = std::min<size_t>(static_cast<size_t>(n),
                                       candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + keep,
                    candidates.end(),
                    [](const Recommendation& a, const Recommendation& b) {
                      return a.score != b.score ? a.score > b.score
                                                : a.item < b.item;
                    });
  candidates.resize(keep);
  return candidates;
}

}  // namespace scenerec
