#include "eval/top_n.h"

#include <algorithm>
#include <span>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace scenerec {

namespace {

// Serving telemetry (docs/observability.md): request rate and candidate
// throughput of the Top-N path.
const telemetry::Counter t_requests =
    telemetry::RegisterCounter("serve/topn_requests");
const telemetry::Counter t_candidates =
    telemetry::RegisterCounter("serve/topn_candidates");

/// Score-descending, lower-item-id-first: a strict total order (no two
/// candidates compare equal), so any correct selection algorithm yields the
/// identical top-n list.
bool Better(const Recommendation& a, const Recommendation& b) {
  return a.score != b.score ? a.score > b.score : a.item < b.item;
}

}  // namespace

std::vector<Recommendation> TopNRecommendations(
    const BlockScoreFn& score, int64_t user,
    std::span<const int64_t> candidates_in, int64_t n) {
  SCENEREC_CHECK_GT(n, 0);
  t_requests.Add(1);
  t_candidates.Add(static_cast<uint64_t>(candidates_in.size()));
  if (candidates_in.empty()) return {};

  // Block-score the candidates in bounded chunks.
  std::vector<float> scores(candidates_in.size());
  for (size_t offset = 0; offset < candidates_in.size();
       offset += static_cast<size_t>(kScoreBlockSize)) {
    const size_t len = std::min(static_cast<size_t>(kScoreBlockSize),
                                candidates_in.size() - offset);
    SCENEREC_TRACE_SPAN_F("serve/score_block", "serve", trace::Floor::kOp,
                          "user=%lld candidates=%zu",
                          static_cast<long long>(user), len);
    score(user, candidates_in.subspan(offset, len),
          std::span<float>(scores).subspan(offset, len));
  }

  std::vector<Recommendation> candidates;
  candidates.reserve(candidates_in.size());
  for (size_t i = 0; i < candidates_in.size(); ++i) {
    candidates.push_back({candidates_in[i], scores[i]});
  }

  // Partial selection: move the n winners to the front in O(candidates),
  // then order just that prefix. Better() is a strict total order, so this
  // is exactly the first n entries a full sort would produce.
  const size_t keep = std::min<size_t>(static_cast<size_t>(n),
                                       candidates.size());
  if (keep < candidates.size()) {
    std::nth_element(candidates.begin(),
                     candidates.begin() + static_cast<ptrdiff_t>(keep),
                     candidates.end(), Better);
    candidates.resize(keep);
  }
  std::sort(candidates.begin(), candidates.end(), Better);
  return candidates;
}

std::vector<Recommendation> TopNRecommendations(
    const BlockScoreFn& score, const UserItemGraph& train_graph, int64_t user,
    int64_t n) {
  SCENEREC_CHECK_GT(n, 0);
  SCENEREC_CHECK(user >= 0 && user < train_graph.num_users());
  SCENEREC_TRACE_SPAN_F("serve/topn", "serve", trace::Floor::kNone,
                        "user=%lld n=%lld", static_cast<long long>(user),
                        static_cast<long long>(n));

  // Candidate-list build step: everything the user has not interacted with.
  std::vector<int64_t> ids;
  ids.reserve(static_cast<size_t>(train_graph.num_items()));
  for (int64_t item = 0; item < train_graph.num_items(); ++item) {
    if (train_graph.HasInteraction(user, item)) continue;
    ids.push_back(item);
  }
  return TopNRecommendations(score, user, ids, n);
}

std::vector<Recommendation> TopNRecommendations(
    const ScoreFn& score, const UserItemGraph& train_graph, int64_t user,
    int64_t n) {
  return TopNRecommendations(BlockScorerFromPairs(score), train_graph, user,
                             n);
}

}  // namespace scenerec
