#include "eval/top_n.h"

#include <algorithm>
#include <span>
#include <unordered_set>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace scenerec {

namespace {

// Serving telemetry (docs/observability.md): request rate and candidate
// throughput of the Top-N path.
const telemetry::Counter t_requests =
    telemetry::RegisterCounter("serve/topn_requests");
const telemetry::Counter t_candidates =
    telemetry::RegisterCounter("serve/topn_candidates");

/// Scores `candidates` in bounded chunks and selects the top n. Candidates
/// must already be unique: both public callers guarantee that (the
/// full-catalog overload by construction, the span overload by deduping).
std::vector<Recommendation> ScoreAndSelect(const BlockScoreFn& score,
                                           int64_t user,
                                           std::span<const int64_t> candidates,
                                           int64_t n) {
  t_requests.Add(1);
  t_candidates.Add(static_cast<uint64_t>(candidates.size()));
  if (candidates.empty() || n <= 0) return {};

  // Per-worker scratch: parallel evaluation calls this from many pool
  // threads, and the score buffer is catalog-sized — retaining it per
  // thread removes the one large allocation of every Top-N request.
  thread_local std::vector<float> scores_scratch;
  std::vector<float>& scores = scores_scratch;
  scores.resize(candidates.size());
  for (size_t offset = 0; offset < candidates.size();
       offset += static_cast<size_t>(kScoreBlockSize)) {
    const size_t len = std::min(static_cast<size_t>(kScoreBlockSize),
                                candidates.size() - offset);
    SCENEREC_TRACE_SPAN_F("serve/score_block", "serve", trace::Floor::kOp,
                          "user=%lld candidates=%zu",
                          static_cast<long long>(user), len);
    score(user, candidates.subspan(offset, len),
          std::span<float>(scores).subspan(offset, len));
  }

  std::vector<Recommendation> scored;
  scored.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scored.push_back({candidates[i], scores[i]});
  }
  return SelectTopN(std::move(scored), n);
}

}  // namespace

bool BetterRecommendation(const Recommendation& a, const Recommendation& b) {
  return a.score != b.score ? a.score > b.score : a.item < b.item;
}

void SelectTopNInPlace(std::vector<Recommendation>* scored, int64_t n) {
  SCENEREC_CHECK(scored != nullptr);
  if (n <= 0) {
    scored->clear();
    return;
  }
  // Partial selection: move the n winners to the front in O(candidates),
  // then order just that prefix. BetterRecommendation is a strict total
  // order, so this is exactly the first n entries a full sort would produce.
  const size_t keep = std::min<size_t>(static_cast<size_t>(n), scored->size());
  if (keep < scored->size()) {
    std::nth_element(scored->begin(),
                     scored->begin() + static_cast<ptrdiff_t>(keep),
                     scored->end(), BetterRecommendation);
    scored->resize(keep);
  }
  std::sort(scored->begin(), scored->end(), BetterRecommendation);
}

std::vector<Recommendation> SelectTopN(std::vector<Recommendation> scored,
                                       int64_t n) {
  SelectTopNInPlace(&scored, n);
  return scored;
}

void UninteractedItems(const UserItemGraph& train_graph, int64_t user,
                       std::vector<int64_t>* out) {
  SCENEREC_CHECK(user >= 0 && user < train_graph.num_users());
  SCENEREC_CHECK(out != nullptr);
  out->clear();
  out->reserve(static_cast<size_t>(train_graph.num_items()));
  for (int64_t item = 0; item < train_graph.num_items(); ++item) {
    if (train_graph.HasInteraction(user, item)) continue;
    out->push_back(item);
  }
}

std::vector<int64_t> UninteractedItems(const UserItemGraph& train_graph,
                                       int64_t user) {
  std::vector<int64_t> ids;
  UninteractedItems(train_graph, user, &ids);
  return ids;
}

std::vector<Recommendation> TopNRecommendations(
    const BlockScoreFn& score, int64_t user,
    std::span<const int64_t> candidates_in, int64_t n) {
  // Dedupe, first occurrence wins: a duplicated candidate must not be
  // scored twice nor hold two ranks. The common case (no duplicates) pays
  // one hash-set pass over the span and no copy of the id list.
  std::unordered_set<int64_t> seen;
  seen.reserve(candidates_in.size() * 2);
  bool unique = true;
  for (const int64_t id : candidates_in) {
    if (!seen.insert(id).second) {
      unique = false;
      break;
    }
  }
  if (unique) return ScoreAndSelect(score, user, candidates_in, n);
  std::vector<int64_t> deduped;
  deduped.reserve(seen.size());
  seen.clear();
  for (const int64_t id : candidates_in) {
    if (seen.insert(id).second) deduped.push_back(id);
  }
  return ScoreAndSelect(score, user, deduped, n);
}

std::vector<Recommendation> TopNRecommendations(
    const BlockScoreFn& score, const UserItemGraph& train_graph, int64_t user,
    int64_t n) {
  SCENEREC_TRACE_SPAN_F("serve/topn", "serve", trace::Floor::kNone,
                        "user=%lld n=%lld", static_cast<long long>(user),
                        static_cast<long long>(n));
  // Candidate ids are unique by construction — no dedupe pass needed.
  return ScoreAndSelect(score, user, UninteractedItems(train_graph, user), n);
}

std::vector<Recommendation> TopNRecommendations(
    const ScoreFn& score, const UserItemGraph& train_graph, int64_t user,
    int64_t n) {
  return TopNRecommendations(BlockScorerFromPairs(score), train_graph, user,
                             n);
}

}  // namespace scenerec
