#ifndef SCENEREC_EVAL_METRICS_H_
#define SCENEREC_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace scenerec {

/// Position of the positive item among {positive} ∪ negatives when ordered
/// by descending score, split into the part that is certain (negatives
/// scoring strictly higher) and the part that depends on tie-breaking
/// (negatives scoring exactly equal). The positive's 0-based rank is
/// `num_above + t` where t is uniform over [0, num_tied] under a random
/// tie order.
struct PositiveRank {
  int64_t num_above = 0;  ///< negatives with score strictly above the positive
  int64_t num_tied = 0;   ///< negatives with score exactly equal

  int64_t BestRank() const { return num_above; }
  int64_t WorstRank() const { return num_above + num_tied; }
};

/// Computes the positive's rank interval. Non-finite negative scores compare
/// false against everything and therefore count as neither above nor tied;
/// callers that need to detect them (the evaluator does) must check score
/// finiteness themselves.
PositiveRank RankOfPositive(float positive_score,
                            const std::vector<float>& negative_scores);

/// Hit Ratio @ K for one instance at an exact rank: 1 if rank < k.
double HitRatioAtK(int64_t rank, int64_t k);

/// NDCG @ K for one instance at an exact rank: 1/log2(rank + 2) if the
/// positive ranks in the top K, else 0. With one relevant item the ideal DCG
/// is 1, so no further normalization is needed.
double NdcgAtK(int64_t rank, int64_t k);

/// Reciprocal rank for one instance at an exact rank: 1 / (rank + 1).
double ReciprocalRank(int64_t rank);

/// Tie-aware metrics: the expected value of the exact-rank metric when the
/// positive is placed uniformly at random among its tied negatives (ranks
/// num_above .. num_above + num_tied, each with probability
/// 1 / (num_tied + 1)). With no ties these reduce to the exact-rank
/// versions. This replaces the old convention of always ranking the
/// positive above tied negatives, which let constant-score models claim
/// perfect metrics.
double HitRatioAtK(const PositiveRank& rank, int64_t k);
double NdcgAtK(const PositiveRank& rank, int64_t k);
double ReciprocalRank(const PositiveRank& rank);

/// Aggregated ranking metrics (means over evaluation instances). The paper
/// reports hr and ndcg; mrr is provided additionally.
struct RankingMetrics {
  double hr = 0.0;
  double ndcg = 0.0;
  double mrr = 0.0;
  int64_t num_instances = 0;
};

}  // namespace scenerec

#endif  // SCENEREC_EVAL_METRICS_H_
