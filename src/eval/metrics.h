#ifndef SCENEREC_EVAL_METRICS_H_
#define SCENEREC_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace scenerec {

/// Rank (0-based) of the positive item among {positive} ∪ negatives when
/// ordered by descending score. Negatives scoring strictly higher than the
/// positive push it down; ties rank the positive above the tied negatives
/// (the convention of the reference NCF evaluation code).
int64_t RankOfPositive(float positive_score,
                       const std::vector<float>& negative_scores);

/// Hit Ratio @ K for one instance: 1 if the positive ranks in the top K.
double HitRatioAtK(int64_t rank, int64_t k);

/// NDCG @ K for one instance: 1/log2(rank + 2) if the positive ranks in the
/// top K, else 0. With one relevant item the ideal DCG is 1, so no further
/// normalization is needed.
double NdcgAtK(int64_t rank, int64_t k);

/// Reciprocal rank for one instance: 1 / (rank + 1). Uncut (no @K).
double ReciprocalRank(int64_t rank);

/// Aggregated ranking metrics (means over evaluation instances). The paper
/// reports hr and ndcg; mrr is provided additionally.
struct RankingMetrics {
  double hr = 0.0;
  double ndcg = 0.0;
  double mrr = 0.0;
  int64_t num_instances = 0;
};

}  // namespace scenerec

#endif  // SCENEREC_EVAL_METRICS_H_
