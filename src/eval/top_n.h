#ifndef SCENEREC_EVAL_TOP_N_H_
#define SCENEREC_EVAL_TOP_N_H_

#include <cstdint>
#include <vector>

#include "eval/evaluator.h"
#include "graph/bipartite_graph.h"

namespace scenerec {

/// One ranked recommendation.
struct Recommendation {
  int64_t item = 0;
  float score = 0.0f;
};

/// The serving-path helper: scores every item the user has NOT interacted
/// with in `train_graph` and returns the `n` highest, ordered by descending
/// score (ties by lower item id). Returns fewer than `n` entries when the
/// user has interacted with almost the whole catalog.
std::vector<Recommendation> TopNRecommendations(const ScoreFn& score,
                                                const UserItemGraph& train_graph,
                                                int64_t user, int64_t n);

}  // namespace scenerec

#endif  // SCENEREC_EVAL_TOP_N_H_
