#ifndef SCENEREC_EVAL_TOP_N_H_
#define SCENEREC_EVAL_TOP_N_H_

#include <cstdint>
#include <span>
#include <vector>

#include "eval/evaluator.h"
#include "graph/bipartite_graph.h"

namespace scenerec {

/// One ranked recommendation.
struct Recommendation {
  int64_t item = 0;
  float score = 0.0f;
};

/// The serving-path helper: scores every item the user has NOT interacted
/// with in `train_graph` and returns the `n` highest, ordered by descending
/// score (ties by lower item id). Returns fewer than `n` entries when the
/// user has interacted with almost the whole catalog.
///
/// The candidate list is scored in kScoreBlockSize blocks (the fast path for
/// models with ScoreBlock support) and the winners are picked by partial
/// selection — O(catalog + n log n), not O(catalog log catalog) — with the
/// same strict total order as a full sort, so the returned list is
/// identical. See docs/serving.md.
std::vector<Recommendation> TopNRecommendations(const BlockScoreFn& score,
                                                const UserItemGraph& train_graph,
                                                int64_t user, int64_t n);

/// Per-pair adapter of the above; identical results.
std::vector<Recommendation> TopNRecommendations(const ScoreFn& score,
                                                const UserItemGraph& train_graph,
                                                int64_t user, int64_t n);

/// The shared selection routine behind the overloads above and the
/// two-stage retrieval path (retrieval/two_stage.h): scores a PRE-BUILT
/// candidate list for `user` (chunked kScoreBlockSize blocks) and returns
/// its top `n` under the same score-desc/lower-id total order. Candidates
/// are taken as given — no interaction masking happens here; duplicates
/// would be scored and ranked twice, so pass a deduplicated list.
std::vector<Recommendation> TopNRecommendations(
    const BlockScoreFn& score, int64_t user,
    std::span<const int64_t> candidates, int64_t n);

}  // namespace scenerec

#endif  // SCENEREC_EVAL_TOP_N_H_
