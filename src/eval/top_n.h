#ifndef SCENEREC_EVAL_TOP_N_H_
#define SCENEREC_EVAL_TOP_N_H_

#include <cstdint>
#include <span>
#include <vector>

#include "eval/evaluator.h"
#include "graph/bipartite_graph.h"

namespace scenerec {

/// One ranked recommendation.
struct Recommendation {
  int64_t item = 0;
  float score = 0.0f;
};

/// The strict total order of every serving surface: score descending, ties
/// by lower item id. No two distinct candidates compare equal, so any
/// correct selection algorithm yields the identical top-n list.
bool BetterRecommendation(const Recommendation& a, const Recommendation& b);

/// The shared partial-selection routine behind every Top-N surface
/// (TopNRecommendations, TwoStageTopN, the serving daemon's batch path):
/// keeps the `n` best entries of `scored` under BetterRecommendation, sorted.
/// O(candidates + n log n) via nth_element — exactly the first n entries a
/// full sort would produce. n <= 0 returns empty; n beyond the candidate
/// count returns everything, sorted.
std::vector<Recommendation> SelectTopN(std::vector<Recommendation> scored,
                                       int64_t n);

/// SelectTopN on the caller's buffer: identical contents and order, but
/// `*scored` shrinks in place to the winners, keeping its capacity — the
/// serving daemon's per-batch scratch path (no per-request allocation).
void SelectTopNInPlace(std::vector<Recommendation>* scored, int64_t n);

/// The full-catalog candidate-list build step: every item `user` has NOT
/// interacted with in `train_graph`, in ascending id order. Duplicate-free
/// by construction. Empty when the user interacted with the whole catalog.
std::vector<int64_t> UninteractedItems(const UserItemGraph& train_graph,
                                       int64_t user);

/// Out-param overload: replaces `*out` with the same list, reusing its
/// capacity (serving scratch reuse).
void UninteractedItems(const UserItemGraph& train_graph, int64_t user,
                       std::vector<int64_t>* out);

/// The serving-path helper: scores every item the user has NOT interacted
/// with in `train_graph` and returns the `n` highest, ordered by descending
/// score (ties by lower item id). Returns fewer than `n` entries when the
/// user has interacted with almost the whole catalog, and an empty list for
/// n <= 0 or a fully interacted catalog (the daemon hits both).
///
/// The candidate list is scored in kScoreBlockSize blocks (the fast path for
/// models with ScoreBlock support) and the winners are picked by partial
/// selection — O(catalog + n log n), not O(catalog log catalog) — with the
/// same strict total order as a full sort, so the returned list is
/// identical. See docs/serving.md.
std::vector<Recommendation> TopNRecommendations(const BlockScoreFn& score,
                                                const UserItemGraph& train_graph,
                                                int64_t user, int64_t n);

/// Per-pair adapter of the above; identical results.
std::vector<Recommendation> TopNRecommendations(const ScoreFn& score,
                                                const UserItemGraph& train_graph,
                                                int64_t user, int64_t n);

/// The candidate-span entry point behind the two-stage retrieval path
/// (retrieval/two_stage.h): scores a PRE-BUILT candidate list for `user`
/// (chunked kScoreBlockSize blocks) and returns its top `n` under the same
/// score-desc/lower-id total order. Candidates are taken as given — no
/// interaction masking happens here — but duplicates ARE removed (first
/// occurrence wins) before scoring, so a repeated id can neither be scored
/// twice nor occupy two ranks of the result.
std::vector<Recommendation> TopNRecommendations(
    const BlockScoreFn& score, int64_t user,
    std::span<const int64_t> candidates, int64_t n);

}  // namespace scenerec

#endif  // SCENEREC_EVAL_TOP_N_H_
