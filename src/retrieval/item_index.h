#ifndef SCENEREC_RETRIEVAL_ITEM_INDEX_H_
#define SCENEREC_RETRIEVAL_ITEM_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "models/recommender.h"

namespace scenerec {

// The candidate-generation half of two-stage serving (docs/retrieval.md):
// an ItemIndex answers "which ~K items maximize query . item (+ bias)" over
// a model's exported item-embedding matrix, without the O(catalog) exact
// scan of TopNRecommendations. Index scores are MODEL scores only under
// RetrievalFidelity::kExactScores; otherwise they merely rank candidates
// and callers rerank the survivors with exact ScoreBlock
// (retrieval/two_stage.h).

/// One retrieved candidate. `score` is the index's inner-product score
/// (after int8 survivors are rescored in float, where applicable) — NOT
/// necessarily the model score; see the fidelity note above.
struct RetrievalCandidate {
  int64_t item = 0;
  float score = 0.0f;
};

/// Per-query work accounting, for tests/benches and the CLI summaries.
struct SearchStats {
  int64_t lists_probed = 0;   // coarse lists visited (1 scan for flat indexes)
  int64_t items_scanned = 0;  // embeddings scored (approximately or exactly)
  int64_t rescored = 0;       // int8 survivors rescored in float
};

/// Read-only ANN index over an exported item-embedding matrix. Search is
/// const and allocation-local, so one index serves concurrent queries
/// (tests/retrieval_test.cc runs it under TSan).
class ItemIndex {
 public:
  virtual ~ItemIndex() = default;

  /// Backend name: "exact", "exact_sq8", "ivf" or "ivf_sq8".
  virtual std::string name() const = 0;
  virtual int64_t num_items() const = 0;
  virtual int64_t dim() const = 0;
  /// Fidelity declared by the exporting model.
  virtual RetrievalFidelity fidelity() const = 0;

  /// Writes the (up to) `k` best candidates into `out`, ordered score-desc
  /// with lower-id tie break (the PR 5 serving order). `query` must have
  /// dim() elements. `stats`, when non-null, is overwritten.
  virtual void Search(std::span<const float> query, int64_t k,
                      std::vector<RetrievalCandidate>* out,
                      SearchStats* stats = nullptr) const = 0;

  /// Batched Search: `queries` holds nq = ks.size() query vectors of dim()
  /// elements back to back; (*outs)[q] receives exactly what
  /// Search(queries[q], ks[q]) would — the serving daemon's shared
  /// retrieval sweep depends on that bitwise equivalence
  /// (tests/retrieval_test.cc asserts it per backend). The base
  /// implementation is a per-query Search loop; backends override it when
  /// one pass over the index can serve every query (ExactIndex scores all
  /// queries per item tile via kernels::GemvMulti while the tile is hot in
  /// cache). `stats`, when non-null, is resized to nq and overwritten.
  virtual void MultiSearch(std::span<const float> queries,
                           std::span<const int64_t> ks,
                           std::vector<std::vector<RetrievalCandidate>>* outs,
                           std::vector<SearchStats>* stats = nullptr) const;
};

/// The strict total order every backend returns results in: score desc,
/// lower item id first — mirrors eval/top_n.cc so the exact backend's list
/// is bitwise comparable against TopNRecommendations.
bool BetterCandidate(const RetrievalCandidate& a, const RetrievalCandidate& b);

/// In-place partial selection of the top `k` under BetterCandidate:
/// truncates `candidates` to min(k, size) entries, sorted.
void SelectTopK(std::vector<RetrievalCandidate>* candidates, int64_t k);

}  // namespace scenerec

#endif  // SCENEREC_RETRIEVAL_ITEM_INDEX_H_
