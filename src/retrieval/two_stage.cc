#include "retrieval/two_stage.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace scenerec {

namespace {
// Retrieval telemetry (docs/observability.md): probe volume, candidate
// throughput and exact-rescore volume of the two-stage path.
const telemetry::Counter t_queries =
    telemetry::RegisterCounter("retrieval/queries");
const telemetry::Counter t_probes =
    telemetry::RegisterCounter("retrieval/probes");
const telemetry::Counter t_candidates =
    telemetry::RegisterCounter("retrieval/candidates");
const telemetry::Counter t_rescored =
    telemetry::RegisterCounter("retrieval/rescored");

/// Interaction filter + budget truncation shared by the single and batched
/// stage-1 paths — `retrieved` is already in serving order, so truncation
/// keeps the best survivors. Both callers must run EXACTLY this loop for
/// the batched path to stay bitwise equal to the per-user one.
std::vector<int64_t> FilterCandidates(
    const UserItemGraph& train_graph, int64_t user, int64_t num_candidates,
    const std::vector<RetrievalCandidate>& retrieved) {
  std::vector<int64_t> ids;
  ids.reserve(static_cast<size_t>(num_candidates));
  for (const RetrievalCandidate& c : retrieved) {
    if (static_cast<int64_t>(ids.size()) >= num_candidates) break;
    if (train_graph.HasInteraction(user, c.item)) continue;
    ids.push_back(c.item);
  }
  return ids;
}

}  // namespace

std::vector<int64_t> RetrieveCandidates(Recommender& model,
                                        const ItemIndex& index,
                                        const UserItemGraph& train_graph,
                                        int64_t user, int64_t num_candidates,
                                        SearchStats* stats) {
  SCENEREC_CHECK_GT(num_candidates, 0);
  SCENEREC_CHECK(user >= 0 && user < train_graph.num_users());
  t_queries.Add(1);

  // Approximate retrieval, over-fetched by the user's training degree so
  // that masking interacted items below cannot eat into the candidate
  // budget.
  std::vector<float> query(static_cast<size_t>(index.dim()));
  model.WriteRetrievalQuery(user, query);
  const int64_t fetch =
      std::min(num_candidates + train_graph.UserDegree(user),
               index.num_items());
  SearchStats local_stats;
  std::vector<RetrievalCandidate> retrieved;
  index.Search(query, fetch, &retrieved, &local_stats);
  t_probes.Add(static_cast<uint64_t>(local_stats.lists_probed));

  std::vector<int64_t> ids =
      FilterCandidates(train_graph, user, num_candidates, retrieved);
  t_candidates.Add(static_cast<uint64_t>(ids.size()));
  t_rescored.Add(static_cast<uint64_t>(ids.size()));
  if (stats != nullptr) {
    *stats = local_stats;
    stats->rescored = static_cast<int64_t>(ids.size());
  }
  return ids;
}

std::vector<std::vector<int64_t>> RetrieveCandidatesBatch(
    Recommender& model, const ItemIndex& index,
    const UserItemGraph& train_graph, std::span<const int64_t> users,
    int64_t num_candidates) {
  SCENEREC_CHECK_GT(num_candidates, 0);
  const int64_t nq = static_cast<int64_t>(users.size());
  if (nq == 0) return {};
  t_queries.Add(static_cast<uint64_t>(nq));

  // Same per-user query vector and degree over-fetch as the single-user
  // path; only the sweep itself is shared.
  const int64_t dim = index.dim();
  std::vector<float> queries(static_cast<size_t>(nq * dim));
  std::vector<int64_t> fetches(static_cast<size_t>(nq));
  for (int64_t q = 0; q < nq; ++q) {
    const int64_t user = users[static_cast<size_t>(q)];
    SCENEREC_CHECK(user >= 0 && user < train_graph.num_users());
    model.WriteRetrievalQuery(
        user, std::span<float>(queries.data() + q * dim,
                               static_cast<size_t>(dim)));
    fetches[static_cast<size_t>(q)] =
        std::min(num_candidates + train_graph.UserDegree(user),
                 index.num_items());
  }
  std::vector<std::vector<RetrievalCandidate>> retrieved;
  std::vector<SearchStats> batch_stats;
  index.MultiSearch(queries, fetches, &retrieved, &batch_stats);

  std::vector<std::vector<int64_t>> ids(static_cast<size_t>(nq));
  for (int64_t q = 0; q < nq; ++q) {
    t_probes.Add(
        static_cast<uint64_t>(batch_stats[static_cast<size_t>(q)].lists_probed));
    ids[static_cast<size_t>(q)] =
        FilterCandidates(train_graph, users[static_cast<size_t>(q)],
                         num_candidates, retrieved[static_cast<size_t>(q)]);
    t_candidates.Add(static_cast<uint64_t>(ids[static_cast<size_t>(q)].size()));
    t_rescored.Add(static_cast<uint64_t>(ids[static_cast<size_t>(q)].size()));
  }
  return ids;
}

std::vector<Recommendation> TwoStageTopN(Recommender& model,
                                         const ItemIndex& index,
                                         const UserItemGraph& train_graph,
                                         int64_t user, int64_t n,
                                         int64_t num_candidates,
                                         SearchStats* stats) {
  SCENEREC_CHECK_GT(n, 0);
  SCENEREC_TRACE_SPAN_F("retrieval/two_stage", "retrieval",
                        trace::Floor::kNone,
                        "user=%lld n=%lld candidates=%lld",
                        static_cast<long long>(user),
                        static_cast<long long>(n),
                        static_cast<long long>(num_candidates));
  // Stage 1: candidate generation (shared with the serving daemon).
  const std::vector<int64_t> ids =
      RetrieveCandidates(model, index, train_graph, user, num_candidates,
                         stats);
  if (ids.empty()) return {};

  // Stage 2: exact rerank through the shared selection routine.
  return TopNRecommendations(model.BlockScorer(), user, ids, n);
}

double RetrievalRecallAtK(Recommender& model, const ItemIndex& index,
                          const ItemIndex& exact, int64_t k,
                          std::span<const int64_t> users) {
  SCENEREC_CHECK_GT(k, 0);
  SCENEREC_CHECK(!users.empty());
  SCENEREC_CHECK_EQ(index.dim(), exact.dim());
  double total = 0.0;
  int64_t counted = 0;
  std::vector<float> query(static_cast<size_t>(index.dim()));
  std::vector<RetrievalCandidate> truth;
  std::vector<RetrievalCandidate> got;
  for (const int64_t user : users) {
    model.WriteRetrievalQuery(user, query);
    exact.Search(query, k, &truth);
    if (truth.empty()) continue;
    index.Search(query, k, &got);
    std::unordered_set<int64_t> got_set;
    got_set.reserve(got.size() * 2);
    for (const RetrievalCandidate& c : got) got_set.insert(c.item);
    int64_t hits = 0;
    for (const RetrievalCandidate& c : truth) {
      hits += got_set.count(c.item) != 0 ? 1 : 0;
    }
    total += static_cast<double>(hits) / static_cast<double>(truth.size());
    counted += 1;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace scenerec
