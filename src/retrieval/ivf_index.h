#ifndef SCENEREC_RETRIEVAL_IVF_INDEX_H_
#define SCENEREC_RETRIEVAL_IVF_INDEX_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "retrieval/item_index.h"
#include "retrieval/quantize.h"

namespace scenerec {

/// IVF (inverted-file) index: a k-means coarse quantizer partitions the
/// items into `nlist` lists; a query scores only the members of its
/// `nprobe` closest lists instead of the whole catalog — the recall/latency
/// knob of two-stage serving (docs/retrieval.md). Construction is fully
/// deterministic (seeded initialization, fixed Lloyd iteration count,
/// ascending-id list order), so building from a live model and from an
/// mmap'd snapshot of the same parameters yields bit-identical structures
/// (tests/retrieval_test.cc compares them field by field).
///
/// List selection ranks centroids by query . centroid — the maximum-inner-
/// product surrogate for the L2 assignment used at build time. With
/// Options::quantize_int8 the member scans run over uint8 codes (shared
/// Sq8Matrix quantization with the exact_sq8 backend) and survivors are
/// rescored in float.
class IvfIndex : public ItemIndex {
 public:
  struct Options {
    int64_t nlist = 0;   // 0 = clamp(sqrt(num_items), 1, num_items)
    int64_t nprobe = 8;  // lists scanned per query
    int64_t kmeans_iterations = 8;
    bool quantize_int8 = false;
    int64_t rescore_factor = 4;
    uint64_t seed = 42;  // coarse-quantizer initialization
  };

  IvfIndex(RetrievalEmbeddings embeddings, Options options);
  explicit IvfIndex(RetrievalEmbeddings embeddings)
      : IvfIndex(std::move(embeddings), Options{}) {}

  std::string name() const override {
    return opt_.quantize_int8 ? "ivf_sq8" : "ivf";
  }
  int64_t num_items() const override { return emb_.num_items; }
  int64_t dim() const override { return emb_.dim; }
  RetrievalFidelity fidelity() const override { return emb_.fidelity; }

  void Search(std::span<const float> query, int64_t k,
              std::vector<RetrievalCandidate>* out,
              SearchStats* stats = nullptr) const override;

  int64_t nlist() const { return nlist_; }
  int64_t nprobe() const { return opt_.nprobe; }
  /// Post-build recall/latency tuning; clamped to [1, nlist].
  void set_nprobe(int64_t nprobe);

  // -- Structure introspection (tests, snapshot_inspect) -----------------
  /// [nlist, dim] row-major k-means centroids.
  std::span<const float> centroids() const { return centroids_; }
  /// Items of list l are list_items()[list_offsets()[l] ..
  /// list_offsets()[l+1]), ascending ids. offsets has nlist+1 entries.
  std::span<const int64_t> list_offsets() const { return list_offsets_; }
  std::span<const int64_t> list_items() const { return list_items_; }
  /// Null when quantize_int8 is off.
  const Sq8Matrix* quantizer() const {
    return opt_.quantize_int8 ? &sq8_ : nullptr;
  }

 private:
  void BuildCoarseQuantizer();

  RetrievalEmbeddings emb_;
  Options opt_;
  int64_t nlist_ = 0;
  std::vector<float> centroids_;      // [nlist, dim]
  std::vector<int64_t> list_offsets_; // [nlist + 1]
  std::vector<int64_t> list_items_;   // [num_items]
  Sq8Matrix sq8_;                     // engaged only under quantize_int8
};

}  // namespace scenerec

#endif  // SCENEREC_RETRIEVAL_IVF_INDEX_H_
