#include "retrieval/index_builder.h"

#include <utility>

#include "common/status.h"
#include "common/telemetry.h"
#include "common/trace.h"
#include "retrieval/exact_index.h"
#include "retrieval/ivf_index.h"

namespace scenerec {

namespace {
const telemetry::Counter t_builds =
    telemetry::RegisterCounter("retrieval/index_builds");
}  // namespace

const char* IndexKindName(IndexKind kind) {
  switch (kind) {
    case IndexKind::kExact:
      return "exact";
    case IndexKind::kExactSq8:
      return "exact_sq8";
    case IndexKind::kIvf:
      return "ivf";
    case IndexKind::kIvfSq8:
      return "ivf_sq8";
  }
  return "unknown";
}

StatusOr<IndexKind> ParseIndexKind(const std::string& name) {
  if (name == "exact") return IndexKind::kExact;
  if (name == "exact_sq8") return IndexKind::kExactSq8;
  if (name == "ivf") return IndexKind::kIvf;
  if (name == "ivf_sq8") return IndexKind::kIvfSq8;
  return Status::InvalidArgument(
      "unknown retrieval backend '" + name +
      "' (expected exact, exact_sq8, ivf or ivf_sq8)");
}

StatusOr<std::unique_ptr<ItemIndex>> IndexBuilder::BuildFromEmbeddings(
    RetrievalEmbeddings embeddings) const {
  SCENEREC_TRACE_SPAN_F("retrieval/build", "retrieval", trace::Floor::kNone,
                        "kind=%s items=%lld dim=%lld",
                        IndexKindName(config_.kind),
                        static_cast<long long>(embeddings.num_items),
                        static_cast<long long>(embeddings.dim));
  t_builds.Add(1);
  switch (config_.kind) {
    case IndexKind::kExact:
    case IndexKind::kExactSq8: {
      ExactIndex::Options opt;
      opt.quantize_int8 = config_.kind == IndexKind::kExactSq8;
      opt.rescore_factor = config_.rescore_factor;
      return std::unique_ptr<ItemIndex>(
          new ExactIndex(std::move(embeddings), opt));
    }
    case IndexKind::kIvf:
    case IndexKind::kIvfSq8: {
      IvfIndex::Options opt;
      opt.nlist = config_.nlist;
      opt.nprobe = config_.nprobe;
      opt.kmeans_iterations = config_.kmeans_iterations;
      opt.quantize_int8 = config_.kind == IndexKind::kIvfSq8;
      opt.rescore_factor = config_.rescore_factor;
      opt.seed = config_.seed;
      return std::unique_ptr<ItemIndex>(
          new IvfIndex(std::move(embeddings), opt));
    }
  }
  return Status::Internal("unreachable index kind");
}

StatusOr<std::unique_ptr<ItemIndex>> IndexBuilder::Build(
    Recommender& model) const {
  if (!model.SupportsRetrievalEmbeddings()) {
    return Status::FailedPrecondition(
        model.name() + " does not export retrieval embeddings");
  }
  return BuildFromEmbeddings(model.ExportItemEmbeddings());
}

StatusOr<std::unique_ptr<ItemIndex>> IndexBuilder::BuildFromSnapshot(
    const std::string& path, const ModelContext& context,
    const ModelFactoryConfig& factory_config,
    std::unique_ptr<Recommender>* model_out) const {
  SCENEREC_ASSIGN_OR_RETURN(std::unique_ptr<Recommender> model,
                            OpenRecommenderFromSnapshot(path, context,
                                                        factory_config));
  SCENEREC_ASSIGN_OR_RETURN(std::unique_ptr<ItemIndex> index, Build(*model));
  if (model_out != nullptr) *model_out = std::move(model);
  return index;
}

}  // namespace scenerec
