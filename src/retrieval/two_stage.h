#ifndef SCENEREC_RETRIEVAL_TWO_STAGE_H_
#define SCENEREC_RETRIEVAL_TWO_STAGE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "eval/top_n.h"
#include "graph/bipartite_graph.h"
#include "models/recommender.h"
#include "retrieval/item_index.h"

namespace scenerec {

/// Two-stage Top-N (docs/retrieval.md): retrieve `num_candidates`
/// approximate candidates from `index`, drop the user's training
/// interactions, then rerank the survivors with the EXACT model
/// (ScoreBlock via the candidate-span TopNRecommendations overload — the
/// same selection routine and tie order as full-catalog serving). The
/// retrieval stage over-fetches by the user's training degree so the
/// interaction filter cannot starve the candidate budget.
///
/// Returned scores are exact model scores. Under kExactScores fidelity
/// with num_candidates >= catalog the result is identical to
/// TopNRecommendations; with a real candidate budget the only possible
/// difference is recall (a true top-n item the index failed to surface).
/// `stats`, when non-null, receives the index's per-query accounting with
/// `rescored` set to the reranked candidate count.
std::vector<Recommendation> TwoStageTopN(Recommender& model,
                                         const ItemIndex& index,
                                         const UserItemGraph& train_graph,
                                         int64_t user, int64_t n,
                                         int64_t num_candidates,
                                         SearchStats* stats = nullptr);

/// Stage 1 of TwoStageTopN on its own: the over-fetched approximate sweep,
/// interaction filter and budget truncation, returning at most
/// `num_candidates` unique unseen item ids in the index's serving order.
/// Sharing this function (or its batched twin below) is what keeps serving
/// daemon results bitwise identical to TwoStageTopN.
std::vector<int64_t> RetrieveCandidates(Recommender& model,
                                        const ItemIndex& index,
                                        const UserItemGraph& train_graph,
                                        int64_t user, int64_t num_candidates,
                                        SearchStats* stats = nullptr);

/// Stage 1 for a whole batch of users through ONE index sweep
/// (ItemIndex::MultiSearch): result [i] is bitwise
/// RetrieveCandidates(users[i]) — same queries, same per-user over-fetch,
/// same filter — but the exact backend streams the item matrix through
/// cache once per batch instead of once per user. This is the shared
/// retrieval sweep of the serving daemon's coalesced batches
/// (src/serve/server.cc ServeBatch); duplicate users are simply scored
/// twice.
std::vector<std::vector<int64_t>> RetrieveCandidatesBatch(
    Recommender& model, const ItemIndex& index,
    const UserItemGraph& train_graph, std::span<const int64_t> users,
    int64_t num_candidates);

/// Recall@k of `index` against `exact` over `users`: the mean fraction of
/// each user's exact top-k (by index scores, unmasked) that the candidate
/// index also returns in its top-k. The quality protocol behind the
/// recall@100 acceptance gate (tests/retrieval_test.cc, bench_retrieval).
double RetrievalRecallAtK(Recommender& model, const ItemIndex& index,
                          const ItemIndex& exact, int64_t k,
                          std::span<const int64_t> users);

}  // namespace scenerec

#endif  // SCENEREC_RETRIEVAL_TWO_STAGE_H_
